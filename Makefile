# Developer entry points. `make ci` is the gate every change must pass:
# vet + build + full test suite + a one-iteration benchmark smoke to
# catch bit-rot in the bench harness without paying full bench time.

GO ?= go

.PHONY: ci vet build test bench-smoke bench tidy

ci: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSignature|BenchmarkDigest' -benchtime=1x ./internal/rsg/

# Full micro+macro benchmarks (minutes); REPRO_FULL_BENCH=1 for the
# unbounded Table 1 cells.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x ./...
