# Developer entry points. `make ci` is the gate every change must pass:
# vet + build + full test suite + race detector over the concurrent
# packages + a one-iteration benchmark smoke to catch bit-rot in the
# bench harness without paying full bench time.

GO ?= go

.PHONY: ci vet build test test-race bench-smoke bench tidy

ci: vet build test test-race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages the parallel fixpoint engine touches: the sharded
# interner (rsg), the Exec-driven bucket reductions (rsrsg), and the
# worker fan-out itself (analysis). -short keeps the heavyweight
# kernels out of the instrumented run.
test-race:
	$(GO) test -race -short ./internal/rsg/ ./internal/rsrsg/ ./internal/analysis/

# One iteration over the benchmark surfaces a change is most likely to
# rot: the digest-core micro-benches, the Figure-1 pipeline, the
# Barnes-Hut L1 macro cell, and the semi-naïve delta on/off A/B pair,
# plus a short run of the determinism suite (worker count x delta mode
# must stay bit-identical).
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSignature|BenchmarkDigest' -benchtime=1x ./internal/rsg/
	$(GO) test -run xxx -bench 'BenchmarkFigure1Pipeline|BenchmarkParallelBarnesHutL1_Workers1$$|BenchmarkDeltaBarnesHutL1_' -benchtime=1x .
	$(GO) test -run TestParallelDeterminism -short -count=1 ./internal/analysis/

# Full micro+macro benchmarks (minutes); REPRO_FULL_BENCH=1 for the
# unbounded Table 1 cells.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x ./...
