# Developer entry points. `make ci` is the gate every change must pass:
# vet + build + full test suite + race detector over the concurrent
# packages + a one-iteration benchmark smoke to catch bit-rot in the
# bench harness without paying full bench time + a one-rep benchtab run
# diffed against the committed snapshot.

GO ?= go

.PHONY: ci vet build test test-race bench-smoke bench-compare bench-sched bench-warm bench fuzz corpus corpus-short service-smoke tidy

ci: vet build test test-race bench-smoke bench-compare bench-sched bench-warm fuzz-short corpus-short service-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages the parallel fixpoint engine touches: the sharded
# interner (rsg), the Exec-driven bucket reductions (rsrsg), the
# worker fan-out itself (analysis), the shared append-only store, and
# the daemon that multiplexes requests over all of them. -short keeps
# the heavyweight kernels out of the instrumented run.
test-race:
	$(GO) test -race -short ./internal/rsg/ ./internal/rsrsg/ ./internal/analysis/ ./internal/store/ ./internal/service/

# One iteration over the benchmark surfaces a change is most likely to
# rot: the digest-core micro-benches, the Figure-1 pipeline, the
# Barnes-Hut L1 macro cell, and the semi-naïve delta on/off A/B pair,
# plus a short run of the determinism suite (worker count x delta mode
# must stay bit-identical).
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkSignature|BenchmarkDigest' -benchtime=1x ./internal/rsg/
	$(GO) test -run xxx -bench 'BenchmarkFigure1Pipeline|BenchmarkParallelBarnesHutL1_Workers1$$|BenchmarkDeltaBarnesHutL1_' -benchtime=1x .
	$(GO) test -run TestParallelDeterminism -short -count=1 ./internal/analysis/

# One-rep benchtab run over the snapshot's cells, printing per-cell
# time/alloc deltas vs the committed BENCH_PR4.json. Single reps are
# noisy; the target exists to keep the harness and the compare path
# exercised, and to make gross regressions visible in CI output.
bench-compare:
	$(GO) run ./cmd/benchtab -kernels barneshut,matvec -levels 1 \
		-visits 1500 -reps 1 -workers 1 -deltamodes on,off -sched rpo,wto \
		-compare BENCH_PR4.json

# Scheduler smoke gate (DESIGN.md §14): on the loop-heavy kernels the
# WTO scheduler must never run more statement visits than the flat RPO
# worklist, and no committed fixture may trip loop-head widening.
bench-sched:
	$(GO) test -run TestSchedSmoke -count=1 ./internal/analysis/

# Persistent-store smoke: the Figure 1 list and Barnes-Hut through the
# cold -> warm -> one-statement-edit trajectory (DESIGN.md §13). Warm
# must do zero transfers; the edit must rerun only the changed
# statement's forward cone. -short keeps Barnes-Hut out of the CI run.
bench-warm:
	$(GO) test -run TestWarmStartSmoke -short -count=1 ./internal/benchprog/

# Full micro+macro benchmarks (minutes); REPRO_FULL_BENCH=1 for the
# unbounded Table 1 cells.
bench:
	$(GO) test -run xxx -bench . -benchtime=1x ./...

# Soundness fuzzing: randomized mini-C programs cross-validated against
# the concrete interpreter at L1/L2/L3, plus the regression corpus.
# Override the generator seed with FUZZ_SEED=N (the nightly job rotates
# it); on a failure, replay the find with
#   go run ./cmd/shapetriage -genseed <printed genseed>
# and shrink it into internal/concrete/testdata/ (DESIGN.md §11).
# `fuzz-short` is the CI slice: corpus sweep + a reduced fuzz pass.
.PHONY: fuzz-short
fuzz:
	FUZZ_SEED=$(FUZZ_SEED) $(GO) test -run 'TestFuzzSoundness|TestCorpusSoundness' -count=1 -v ./internal/concrete/

fuzz-short:
	FUZZ_SEED=$(FUZZ_SEED) $(GO) test -run 'TestFuzzSoundness|TestCorpusSoundness' -count=1 -short ./internal/concrete/

# Memory-safety verdict corpus: every expected-verdict task under
# internal/verdict/testdata/corpus must settle exactly its declared
# verdicts, the per-checker escalation tasks must escalate, and no SAFE
# claim may contradict the interpreter (DESIGN.md §12). `corpus` runs
# the full verdict suite verbosely plus the differential fuzz hook;
# `corpus-short` is the CI slice.
corpus:
	FUZZ_SEED=$(FUZZ_SEED) $(GO) test -run 'TestCorpus|TestFuzzDifferentialVerdicts|TestVerdictDeterminism' -count=1 -v ./internal/verdict/

corpus-short:
	FUZZ_SEED=$(FUZZ_SEED) $(GO) test -run 'TestCorpus|TestFuzzDifferentialVerdicts' -count=1 -short ./internal/verdict/

# Daemon smoke (DESIGN.md §15): build the real shaped/shapec/shapecheck
# binaries, boot shaped over a temp store, round-trip /analyze twice
# through `shapec -remote` (the second must warm-start with the same
# result digest), run `shapecheck -remote` on a corpus task, and drain
# with SIGTERM expecting exit 0.
service-smoke:
	$(GO) test -run TestServiceSmoke -count=1 ./internal/service/
