// Command shapetriage turns a soundness-fuzzer find into an actionable
// bug report: it runs the analysis on a mini-C program (a file or a
// regenerated fuzz seed), cross-validates the result against randomized
// concrete executions, and when a reachable heap escapes the computed
// RSRSG it replays the embedding search with full introspection — the
// report names the failing statement and the exact node property
// (SELIN/SELOUT, SHARED/SHSEL, CYCLELINKS, SPATH, ...) that rejected
// the nearest embedding. DESIGN.md §11 describes the workflow.
//
// Usage:
//
//	shapetriage [flags] <file.c>
//	shapetriage [flags] -genseed N
//
//	-level N     analysis level 1..3 (default 1)
//	-runs N      randomized concrete executions to cross-validate (default 50)
//	-seed N      PRNG seed for the concrete traces (default 1)
//	-genseed N   regenerate the fuzzer program of seed N instead of
//	             reading a file (matches TestFuzzSoundness's "genseed"
//	             failure output)
//	-wide       with -genseed, use the wide-struct generator
//	-legacy      run the engine with its historical soundness bugs
//	             restored (analysis.Options.LegacyUnsound) — for
//	             reproducing fixed bugs on their corpus cases
//	-dot         print the side-by-side DOT pair (concrete heap +
//	             nearest RSG, best partial embedding highlighted)
//	-shrink      delta-debug the program to a minimal case that still
//	             fails, and print it
//	-o FILE      with -shrink, also write the minimal case to FILE
//	             (e.g. internal/concrete/testdata/x.c)
//	-workers N   analysis worker goroutines (0 = GOMAXPROCS)
//
// Exit status: 0 when the analysis covers every observed heap, 1 on a
// soundness violation (the report is printed), 2 on usage or input
// errors.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/analysis"
	"repro/internal/cminic"
	"repro/internal/concrete"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/triage"
)

func main() {
	level := flag.Int("level", 1, "analysis level 1..3")
	runs := flag.Int("runs", 50, "randomized concrete executions")
	seed := flag.Int64("seed", 1, "PRNG seed for the concrete traces")
	genSeed := flag.Int64("genseed", 0, "regenerate the fuzzer program of this seed")
	wide := flag.Bool("wide", false, "with -genseed, use the wide-struct generator")
	legacy := flag.Bool("legacy", false, "restore the engine's historical soundness bugs")
	dot := flag.Bool("dot", false, "print the heap/RSG DOT pair on failure")
	shrink := flag.Bool("shrink", false, "delta-debug to a minimal failing program")
	outFile := flag.String("o", "", "with -shrink, write the minimal case here")
	workers := flag.Int("workers", 0, "analysis worker goroutines")
	flag.Parse()

	src, name, err := loadSource(*genSeed, *wide)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shapetriage:", err)
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := analysis.Options{
		Level:         rsg.Level(*level),
		Workers:       *workers,
		LegacyUnsound: *legacy,
	}
	if opts.Level < rsg.L1 || opts.Level > rsg.L3 {
		fatal(fmt.Errorf("invalid level %d", *level))
	}

	prog, err := compile(src)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	res, err := analysis.Run(prog, opts)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	rep, err := triage.Explain(prog, res, *runs, *seed)
	if err != nil {
		fatal(err)
	}
	if rep == nil {
		fmt.Printf("%s: %s covers all heaps observed over %d runs\n", name, opts.Level, *runs)
		return
	}

	fmt.Print(rep.Text())
	if *dot {
		fmt.Print(rep.DOT())
	}

	if *shrink {
		pred := triage.SoundnessPredicate(opts, *runs, *seed)
		min, err := triage.Shrink(src, pred)
		if err != nil {
			fatal(err)
		}
		n0, _ := triage.StmtCount(src)
		n1, _ := triage.StmtCount(min)
		fmt.Printf("\nshrunk %d -> %d statements:\n%s", n0, n1, min)
		if *outFile != "" {
			if err := os.WriteFile(*outFile, []byte(min), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *outFile)
		}
	}
	os.Exit(1)
}

func loadSource(genSeed int64, wide bool) (src, name string, err error) {
	if genSeed != 0 {
		rng := rand.New(rand.NewSource(genSeed))
		if wide {
			return concrete.GenWideProgram(rng), fmt.Sprintf("genseed %d (wide)", genSeed), nil
		}
		return concrete.GenProgram(rng), fmt.Sprintf("genseed %d", genSeed), nil
	}
	if flag.NArg() != 1 {
		return "", "", fmt.Errorf("usage: shapetriage [flags] <file.c>  |  shapetriage [flags] -genseed N")
	}
	arg := flag.Arg(0)
	b, err := os.ReadFile(arg)
	if err != nil {
		return "", "", err
	}
	return string(b), arg, nil
}

func compile(src string) (*ir.Program, error) {
	file, err := cminic.Parse(src)
	if err != nil {
		return nil, err
	}
	return ir.LowerMain(file)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shapetriage:", err)
	os.Exit(2)
}
