// Command benchtab regenerates the paper's Table 1: the time and space
// the shape-analysis compiler needs to analyze the four benchmark codes
// (S.Mat-Vec, S.Mat-Mat, S.LU fact., Barnes-Hut) at each progressive
// level L1/L2/L3.
//
// The paper measured wall-clock minutes and resident megabytes on a
// Pentium III 500 MHz with 128 MB of memory; this reproduction reports
// wall-clock time, total heap allocation during the run, and the peak
// abstraction size (nodes/links/RSGs). The 128 MB exhaustion that the
// paper reports for Sparse LU at L2/L3 is reproduced with a node
// budget (-lubudget) that aborts the run the same way.
//
// Usage:
//
//	benchtab [-kernels matvec,matmat,lu,barneshut] [-levels 1,2,3]
//	         [-lubudget N] [-timeout d] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/rsg"
)

func main() {
	kernels := flag.String("kernels", "matvec,matmat,lu,barneshut", "comma-separated kernel names")
	levels := flag.String("levels", "1,2,3", "comma-separated levels")
	luBudget := flag.Int("lubudget", 60000, "node budget for the LU kernel at L2/L3 (models the paper's 128 MB machine; 0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Minute, "per-cell wall-clock guard")
	workers := flag.Int("workers", 0, "worker goroutines per cell (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	fmt.Printf("%-10s %-4s %-12s %-12s %-12s %-26s %-9s %s\n",
		"code", "lvl", "time", "peak-heap", "alloc", "peak(nodes/links/graphs)", "memo-hit", "outcome")

	for _, name := range strings.Split(*kernels, ",") {
		k := benchprog.ByName(strings.TrimSpace(name))
		if k == nil {
			fmt.Fprintf(os.Stderr, "benchtab: unknown kernel %q\n", name)
			os.Exit(2)
		}
		prog, err := k.Compile()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		for _, ls := range strings.Split(*levels, ",") {
			var lvl rsg.Level
			switch strings.TrimSpace(ls) {
			case "1":
				lvl = rsg.L1
			case "2":
				lvl = rsg.L2
			case "3":
				lvl = rsg.L3
			default:
				fmt.Fprintf(os.Stderr, "benchtab: bad level %q\n", ls)
				os.Exit(2)
			}
			opts := analysis.Options{Timeout: *timeout, Workers: *workers}
			if k.Name == "lu" && lvl > rsg.L1 {
				opts.NodeBudget = *luBudget
			}
			rep := analysis.RunLevel(prog, lvl, nil, opts)
			outcome := "ok"
			if rep.Err != nil {
				outcome = rep.Err.Error()
			}
			peak := "-"
			memoHit := "-"
			if rep.Result != nil {
				peak = fmt.Sprintf("%d/%d/%d", rep.Result.Stats.PeakNodes,
					rep.Result.Stats.PeakLinks, rep.Result.Stats.PeakGraphs)
				memoHit = fmt.Sprintf("%.1f%%", 100*rep.Result.Stats.MemoHitRate())
			}
			fmt.Printf("%-10s %-4s %-12s %-12s %-12s %-26s %-9s %s\n",
				k.Name, lvl,
				rep.Duration.Round(10*time.Millisecond),
				fmt.Sprintf("%.1f MB", float64(rep.PeakHeapBytes)/(1<<20)),
				fmt.Sprintf("%.1f MB", float64(rep.AllocBytes)/(1<<20)),
				peak, memoHit, outcome)
		}
	}
}
