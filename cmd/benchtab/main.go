// Command benchtab regenerates the paper's Table 1: the time and space
// the shape-analysis compiler needs to analyze the four benchmark codes
// (S.Mat-Vec, S.Mat-Mat, S.LU fact., Barnes-Hut) at each progressive
// level L1/L2/L3.
//
// The paper measured wall-clock minutes and resident megabytes on a
// Pentium III 500 MHz with 128 MB of memory; this reproduction reports
// wall-clock time, total heap allocation during the run, and the peak
// abstraction size (nodes/links/RSGs). The 128 MB exhaustion that the
// paper reports for Sparse LU at L2/L3 is reproduced with a node
// budget (-lubudget) that aborts the run the same way.
//
// With -reps N every cell is measured N times in rep-major order (rep 1
// of every cell, then rep 2, ...), so slow environmental drift hits all
// cells alike — the interleaving that makes delta on/off medians
// comparable — and the table reports per-cell medians. -json FILE
// additionally writes the full machine-readable results.
//
// -persist adds persistent-store modes alongside the storeless cold
// baseline: "warm" measures a re-analysis served entirely from a
// populated store (zero transfers), "edit" measures re-analysis after
// the canonical one-statement tail edit (only the edit's forward cone
// reruns). Store files live under -cache-dir (a temp directory when
// unset) and are populated once per cell before the measurement loop,
// so every rep of a warm/edit cell measures the steady state.
//
// -verdicts appends a memory-safety table: the progressive
// null-deref / use-after-free / leak verdicts for each kernel.
//
// -sched measures the fixpoint schedulers side by side ("wto" is the
// engine default; "rpo,wto" A/Bs the legacy flat worklist against the
// weak-topological-order strategy with the same rep-major interleaving
// as -deltamodes; visits_run and the transfer counts in the JSON are
// the schedule-sensitive columns).
//
// Usage:
//
//	benchtab [-kernels matvec,matmat,lu,barneshut] [-levels 1,2,3]
//	         [-lubudget N] [-timeout d] [-workers N] [-visits N]
//	         [-deltamodes on|on,off] [-sched wto|rpo,wto]
//	         [-persist cold|cold,warm,edit]
//	         [-cache-dir DIR] [-verdicts] [-reps N] [-json out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/rsg"
	"repro/internal/store"
	"repro/internal/verdict"
)

// cell is one benchmark configuration: kernel x level x delta mode x
// scheduler x persistence mode.
type cell struct {
	kernel *benchprog.Kernel
	lvl    rsg.Level
	delta  bool
	sched  analysis.Sched
	// persist is "cold" (storeless baseline), "warm" (re-analysis from
	// a populated store) or "edit" (one-statement tail edit against the
	// base snapshot).
	persist string
	// measured is the kernel each rep compiles and analyzes: the base
	// kernel, or its tail-edited twin for persist == "edit".
	measured *benchprog.Kernel
	opts     analysis.Options

	reps []repMeasurement
}

// repMeasurement is one rep's outcome for one cell.
type repMeasurement struct {
	ns         int64
	allocBytes uint64
	allocObjs  uint64
	rep        analysis.LevelReport
}

// cellResult is the JSON form of one cell's aggregated result.
// MemoHitRate is a pointer so cells where the rate is meaningless —
// no memoizable transfer ran, or delta propagation made repeats
// structurally impossible — emit no memo_hit_rate at all instead of a
// misleading hard 0 (see aggregate).
type cellResult struct {
	Bench            string   `json:"bench"`
	Level            string   `json:"level"`
	Workers          int      `json:"workers"`
	Delta            bool     `json:"delta"`
	Sched            string   `json:"sched"`
	Persist          string   `json:"persist"`
	Visits           int      `json:"visits"`
	Reps             int      `json:"reps"`
	MedianNs         int64    `json:"median_ns"`
	MedianAllocBytes uint64   `json:"median_alloc_bytes"`
	MedianAllocs     uint64   `json:"median_allocs"`
	MemoHitRate      *float64 `json:"memo_hit_rate,omitempty"`
	PoolHitRate      float64  `json:"pool_hit_rate"`
	MaskSpills       uint64   `json:"mask_spills"`
	DeltaTransfers   int      `json:"delta_transfers"`
	FullRecomputes   int      `json:"full_recomputes"`
	DirtyBuckets     int      `json:"dirty_buckets"`
	MemoFull         int      `json:"memo_full"`
	VisitsRun        int      `json:"visits_run"`
	StoreMemoHits    int      `json:"store_memo_hits,omitempty"`
	ReusedStmts      int      `json:"reused_statements,omitempty"`
	ReseededStmts    int      `json:"reseeded_statements,omitempty"`
	PeakNodes        int      `json:"peak_nodes"`
	PeakGraphs       int      `json:"peak_graphs"`
	Outcome          string   `json:"outcome"`
}

// jsonDoc is the top-level -json document.
type jsonDoc struct {
	Generated  string       `json:"generated"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Results    []cellResult `json:"results"`
	// Verdicts maps kernel name -> class -> settled verdict (only with
	// -verdicts).
	Verdicts map[string]map[string]string `json:"verdicts,omitempty"`
}

func main() {
	kernels := flag.String("kernels", "matvec,matmat,lu,barneshut", "comma-separated kernel names")
	levels := flag.String("levels", "1,2,3", "comma-separated levels")
	luBudget := flag.Int("lubudget", 60000, "node budget for the LU kernel at L2/L3 (models the paper's 128 MB machine; 0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Minute, "per-cell wall-clock guard")
	workers := flag.Int("workers", 0, "worker goroutines per cell (0 = GOMAXPROCS, 1 = sequential)")
	visits := flag.Int("visits", 0, "visit bound per cell (0 = run to the fixed point)")
	deltaModes := flag.String("deltamodes", "on", "delta propagation modes to measure: on, off, or on,off")
	schedModes := flag.String("sched", "wto", "fixpoint schedulers to measure: wto, rpo, or rpo,wto")
	persistModes := flag.String("persist", "cold", "persistence modes to measure: any of cold,warm,edit")
	cacheDir := flag.String("cache-dir", "", "directory for persistent analysis stores (default: a temp dir when warm/edit modes run)")
	verdicts := flag.Bool("verdicts", false, "append the memory-safety verdict table (null-deref / use-after-free / leak per kernel)")
	reps := flag.Int("reps", 1, "interleaved repetitions per cell; the table reports medians")
	jsonOut := flag.String("json", "", "write machine-readable results to this file")
	compare := flag.String("compare", "", "print per-cell deltas vs a previous -json snapshot")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the measurement loop to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *reps < 1 {
		*reps = 1
	}
	var modes []bool
	for _, m := range strings.Split(*deltaModes, ",") {
		switch strings.TrimSpace(m) {
		case "on":
			modes = append(modes, true)
		case "off":
			modes = append(modes, false)
		default:
			fmt.Fprintf(os.Stderr, "benchtab: bad -deltamodes entry %q (want on/off)\n", m)
			os.Exit(2)
		}
	}
	var scheds []analysis.Sched
	for _, s := range strings.Split(*schedModes, ",") {
		sched, err := analysis.ParseSched(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: bad -sched entry %q (want wto/rpo)\n", s)
			os.Exit(2)
		}
		scheds = append(scheds, sched)
	}
	var persists []string
	needStore := false
	for _, p := range strings.Split(*persistModes, ",") {
		p = strings.TrimSpace(p)
		switch p {
		case "cold", "warm", "edit":
			persists = append(persists, p)
			needStore = needStore || p != "cold"
		default:
			fmt.Fprintf(os.Stderr, "benchtab: bad -persist entry %q (want cold/warm/edit)\n", p)
			os.Exit(2)
		}
	}
	if needStore && *cacheDir == "" {
		dir, err := os.MkdirTemp("", "benchtab-store-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		*cacheDir = dir
	}
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}

	var cells []*cell
	var stores []*store.Store
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	for _, name := range strings.Split(*kernels, ",") {
		k := benchprog.ByName(strings.TrimSpace(name))
		if k == nil {
			fmt.Fprintf(os.Stderr, "benchtab: unknown kernel %q\n", name)
			os.Exit(2)
		}
		if _, err := k.Compile(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		for _, ls := range strings.Split(*levels, ",") {
			var lvl rsg.Level
			switch strings.TrimSpace(ls) {
			case "1":
				lvl = rsg.L1
			case "2":
				lvl = rsg.L2
			case "3":
				lvl = rsg.L3
			default:
				fmt.Fprintf(os.Stderr, "benchtab: bad level %q\n", ls)
				os.Exit(2)
			}
			for _, delta := range modes {
				for _, sched := range scheds {
					opts := analysis.Options{
						Timeout:   *timeout,
						Workers:   *workers,
						MaxVisits: *visits,
						NoDelta:   !delta,
						Sched:     sched,
					}
					if k.Name == "lu" && lvl > rsg.L1 {
						opts.NodeBudget = *luBudget
					}
					// Warm and edit cells of the same configuration share
					// one store file, populated by a single cold run below.
					// The scheduler is part of the options fingerprint, so
					// each sched gets its own file to keep the populate
					// pass from mixing fingerprints in one store.
					var st *store.Store
					for _, persist := range persists {
						c := &cell{kernel: k, lvl: lvl, delta: delta, sched: sched, persist: persist, measured: k, opts: opts}
						if persist != "cold" {
							if st == nil {
								mode := "on"
								if !delta {
									mode = "off"
								}
								path := filepath.Join(*cacheDir,
									fmt.Sprintf("%s-%s-delta%s-%s.rsgstore", k.Name, lvl, mode, sched))
								var err error
								st, err = store.Open(path)
								if err != nil {
									fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
									os.Exit(1)
								}
								stores = append(stores, st)
							}
							c.opts.Store = st
						}
						if persist == "edit" {
							ek, err := k.TailEdit()
							if err != nil {
								fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
								os.Exit(1)
							}
							c.measured = ek
						}
						cells = append(cells, c)
					}
				}
			}
		}
	}

	// Populate pass: every store gets one cold run of its base kernel so
	// each warm/edit rep below measures the steady state.
	for _, c := range cells {
		if c.persist != "warm" {
			continue
		}
		prog, err := c.kernel.Compile()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		analysis.RunLevel(prog, c.lvl, nil, c.opts)
	}
	populated := make(map[*store.Store]bool)
	for _, c := range cells {
		if c.persist == "warm" {
			populated[c.opts.Store] = true
		}
	}
	for _, c := range cells {
		if c.persist != "edit" || populated[c.opts.Store] {
			continue
		}
		prog, err := c.kernel.Compile()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		analysis.RunLevel(prog, c.lvl, nil, c.opts)
		populated[c.opts.Store] = true
	}

	// Rep-major measurement order: every cell's rep r runs before any
	// cell's rep r+1, so environmental drift is shared across cells.
	for r := 0; r < *reps; r++ {
		for _, c := range cells {
			prog, err := c.measured.Compile()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			rep := analysis.RunLevel(prog, c.lvl, nil, c.opts)
			c.reps = append(c.reps, repMeasurement{
				ns:         rep.Duration.Nanoseconds(),
				allocBytes: rep.AllocBytes,
				allocObjs:  rep.AllocObjects,
				rep:        rep,
			})
		}
	}

	head := "time"
	if *reps > 1 {
		head = fmt.Sprintf("time(med/%d)", *reps)
	}
	fmt.Printf("%-10s %-4s %-6s %-5s %-7s %-13s %-12s %-12s %-10s %-26s %-9s %-9s %s\n",
		"code", "lvl", "delta", "sched", "persist", head, "peak-heap", "alloc", "allocs/op", "peak(nodes/links/graphs)", "memo-hit", "pool-hit", "outcome")

	doc := jsonDoc{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, c := range cells {
		cr := c.aggregate(*workers, *visits)
		doc.Results = append(doc.Results, cr)
		last := c.reps[len(c.reps)-1].rep
		peak := "-"
		// "-" when no memoizable transfer ran (delta propagation
		// bypasses the statement memo), not a fake 0%.
		memoHit := "-"
		poolHit := "-"
		if last.Result != nil {
			peak = fmt.Sprintf("%d/%d/%d", last.Result.Stats.PeakNodes,
				last.Result.Stats.PeakLinks, last.Result.Stats.PeakGraphs)
			if cr.MemoHitRate != nil {
				memoHit = fmt.Sprintf("%.1f%%", 100**cr.MemoHitRate)
			}
			poolHit = fmt.Sprintf("%.1f%%", 100*cr.PoolHitRate)
		}
		mode := "on"
		if !c.delta {
			mode = "off"
		}
		fmt.Printf("%-10s %-4s %-6s %-5s %-7s %-13s %-12s %-12s %-10s %-26s %-9s %-9s %s\n",
			c.kernel.Name, c.lvl, mode, c.sched, c.persist,
			time.Duration(cr.MedianNs).Round(10*time.Millisecond),
			fmt.Sprintf("%.1f MB", float64(last.PeakHeapBytes)/(1<<20)),
			fmt.Sprintf("%.1f MB", float64(cr.MedianAllocBytes)/(1<<20)),
			fmtCount(cr.MedianAllocs),
			peak, memoHit, poolHit, cr.Outcome)
	}

	if *verdicts {
		doc.Verdicts = make(map[string]map[string]string)
		fmt.Printf("\n%-10s %-14s %-16s %s\n", "code", "null-deref", "use-after-free", "leak")
		seen := make(map[string]bool)
		for _, c := range cells {
			if seen[c.kernel.Name] {
				continue
			}
			seen[c.kernel.Name] = true
			prog, err := c.kernel.Compile()
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			rep := verdict.Check(prog, verdict.Options{
				Analysis: analysis.Options{Timeout: *timeout, Workers: *workers},
			})
			row := make(map[string]string)
			for _, cls := range verdict.Classes() {
				row[cls.String()] = rep.VerdictFor(cls).String()
			}
			doc.Verdicts[c.kernel.Name] = row
			fmt.Printf("%-10s %-14s %-16s %s\n", c.kernel.Name,
				row[verdict.NullDeref.String()],
				row[verdict.UseAfterFree.String()],
				row[verdict.Leak.String()])
		}
	}

	if *compare != "" {
		if err := printCompare(*compare, doc.Results); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d results)\n", *jsonOut, len(doc.Results))
	}
}

// aggregate folds a cell's reps into its JSON result: time and
// allocation are per-rep medians; the engine counters are taken from
// the last rep (they are deterministic per configuration).
func (c *cell) aggregate(workers, visits int) cellResult {
	ns := make([]int64, len(c.reps))
	ab := make([]uint64, len(c.reps))
	ao := make([]uint64, len(c.reps))
	for i, m := range c.reps {
		ns[i], ab[i], ao[i] = m.ns, m.allocBytes, m.allocObjs
	}
	last := c.reps[len(c.reps)-1].rep
	cr := cellResult{
		Bench:            c.kernel.Name,
		Level:            c.lvl.String(),
		Workers:          workers,
		Delta:            c.delta,
		Sched:            c.sched.String(),
		Persist:          c.persist,
		Visits:           visits,
		Reps:             len(c.reps),
		MedianNs:         medianI64(ns),
		MedianAllocBytes: medianU64(ab),
		MedianAllocs:     medianU64(ao),
		Outcome:          "ok",
	}
	if last.Err != nil {
		cr.Outcome = last.Err.Error()
	}
	if last.Result != nil {
		st := last.Result.Stats
		// The memo-hit rate is only meaningful when a transfer could
		// repeat: under delta propagation every Δ-graph is by
		// construction new to its statement, so unless dirty buckets
		// forced full recomputes the rate is structurally zero — an
		// artifact of the engine, not a measurement. Emit no rate then
		// (and when no memoizable transfer ran at all), not a hard 0.
		if st.MemoHits+st.MemoMisses > 0 && (!c.delta || st.FullRecomputes > 0) {
			rate := st.MemoHitRate()
			cr.MemoHitRate = &rate
		}
		cr.PoolHitRate = st.PoolHitRate()
		cr.MaskSpills = st.Cache.MaskSpills
		cr.DeltaTransfers = st.DeltaTransfers
		cr.FullRecomputes = st.FullRecomputes
		cr.DirtyBuckets = st.DirtyBuckets
		cr.MemoFull = st.MemoFull
		cr.VisitsRun = st.Visits
		cr.StoreMemoHits = st.StoreMemoHits
		cr.ReusedStmts = st.ReusedStatements
		cr.ReseededStmts = st.ReseededStatements
		cr.PeakNodes = st.PeakNodes
		cr.PeakGraphs = st.PeakGraphs
	}
	return cr
}

// printCompare loads a previous -json snapshot and prints per-cell
// time and allocation deltas against the current results, matching
// cells by (bench, level, delta mode, scheduler, persist mode).
func printCompare(path string, cur []cellResult) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old jsonDoc
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	type key struct {
		bench, level, sched, persist string
		delta                        bool
	}
	base := make(map[key]cellResult, len(old.Results))
	for _, r := range old.Results {
		if r.Persist == "" {
			// Snapshots from before the persist dimension are all cold.
			r.Persist = "cold"
		}
		if r.Sched == "" {
			// Snapshots from before the scheduler dimension were measured
			// on the then-only flat RPO worklist.
			r.Sched = "rpo"
		}
		base[key{r.Bench, r.Level, r.Sched, r.Persist, r.Delta}] = r
	}
	fmt.Printf("\ncompare vs %s (generated %s)\n", path, old.Generated)
	fmt.Printf("%-10s %-4s %-6s %-5s %-22s %-24s %s\n",
		"code", "lvl", "delta", "sched", "time old->new", "allocs old->new", "speedup")
	for _, r := range cur {
		o, ok := base[key{r.Bench, r.Level, r.Sched, r.Persist, r.Delta}]
		if !ok {
			continue
		}
		mode := "on"
		if !r.Delta {
			mode = "off"
		}
		speed := "-"
		if r.MedianNs > 0 {
			speed = fmt.Sprintf("%.2fx", float64(o.MedianNs)/float64(r.MedianNs))
		}
		fmt.Printf("%-10s %-4s %-6s %-5s %-22s %-24s %s\n",
			r.Bench, r.Level, mode, r.Sched,
			fmt.Sprintf("%v -> %v", time.Duration(o.MedianNs).Round(time.Millisecond),
				time.Duration(r.MedianNs).Round(time.Millisecond)),
			fmt.Sprintf("%s -> %s", fmtCount(o.MedianAllocs), fmtCount(r.MedianAllocs)),
			speed)
	}
	return nil
}

// fmtCount renders an object count compactly (1234567 -> "1.23M").
func fmtCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

func medianI64(v []int64) int64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[len(v)/2]
}

func medianU64(v []uint64) uint64 {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[len(v)/2]
}
