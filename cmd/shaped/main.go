// Command shaped is the shape-analysis daemon: an HTTP/JSON service
// exposing the RSRSG analysis (/analyze) and the memory-safety
// checkers (/check) over one shared persistent store (DESIGN.md §15).
//
// Usage:
//
//	shaped [flags]
//
//	-addr A             listen address (default 127.0.0.1:7411)
//	-cache-dir D        persistent analysis store directory; requests
//	                    share one store handle, so repeat submissions
//	                    warm-start and edits re-analyze delta-only.
//	                    Empty runs storeless.
//	-workers N          concurrent requests (default GOMAXPROCS)
//	-queue N            waiting requests beyond the workers before the
//	                    service answers 429 (default 2*workers)
//	-timeout D          default per-request analysis timeout (30s)
//	-max-timeout D      ceiling on requested timeouts (2m)
//	-max-visits N       ceiling on requested visit budgets (200000)
//	-max-node-budget N  ceiling on requested node budgets (0 = none)
//	-analysis-workers N engine goroutines per request (default 1)
//
// SIGINT/SIGTERM drains: the listener closes, in-flight requests run
// to completion, then the store is closed and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent analysis store directory (empty = storeless)")
	workers := flag.Int("workers", 0, "concurrent requests (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued requests beyond the workers (0 = 2*workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request analysis timeout")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "ceiling on requested timeouts")
	maxVisits := flag.Int("max-visits", 200000, "ceiling on requested visit budgets")
	maxNodeBudget := flag.Int("max-node-budget", 0, "ceiling on requested node budgets (0 = none)")
	analysisWorkers := flag.Int("analysis-workers", 1, "engine goroutines per request")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "shutdown drain deadline")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "usage: shaped [flags]\n")
		flag.PrintDefaults()
		os.Exit(2)
	}

	log.SetPrefix("shaped: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	cfg := service.Config{
		Workers:         *workers,
		Queue:           *queue,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxVisits:       *maxVisits,
		MaxNodeBudget:   *maxNodeBudget,
		AnalysisWorkers: *analysisWorkers,
	}
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			log.Fatalf("cache dir: %v", err)
		}
		path := filepath.Join(*cacheDir, "shape.rsgstore")
		st, err := store.Open(path)
		if err != nil {
			log.Fatalf("opening store: %v", err)
		}
		defer st.Close()
		cfg.Store = st
		log.Printf("store %s open (exclusive writer)", path)
	}

	svc := service.New(cfg)
	srv := &http.Server{Addr: *addr, Handler: svc}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	rcfg := svc.Config()
	log.Printf("listening on %s (workers=%d queue=%d timeout=%v/%v max-visits=%d)",
		*addr, rcfg.Workers, rcfg.Queue, rcfg.DefaultTimeout, rcfg.MaxTimeout, rcfg.MaxVisits)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%v: draining (deadline %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain: %v", err)
			os.Exit(1)
		}
		log.Printf("drained")
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}
}
