// Command shapec is the shape-analysis compiler CLI: it parses a mini-C
// source file (or a named built-in kernel), runs the RSRSG analysis at
// a fixed level or progressively, and reports the resulting
// data-structure properties.
//
// Usage:
//
//	shapec [flags] <file.c | kernel-name>
//
//	-level N        analysis level 1..3 (default 1); ignored with -progressive
//	-progressive    escalate L1 -> L2 -> L3 until the kernel's goals hold
//	-dot            print the exit RSRSG in Graphviz dot syntax
//	-ir             print the lowered IR and CFG
//	-stmt N         also dump the RSRSG after statement N
//	-budget N       abort when the abstraction exceeds N live nodes
//	-stats          print memoization counters (transfer-memo hit rate,
//	                graphs frozen, digest cache hits, interning) plus
//	                scheduling counters (requeues, component
//	                stabilizations, widenings) and the visits-per-
//	                statement histogram; with -progressive, one block
//	                per level
//	-sched S        fixpoint scheduler: wto (weak topological order,
//	                default) or rpo (flat reverse postorder; A/B
//	                baseline)
//	-workers N      goroutines for per-graph transfers and bucket
//	                reductions (0 = GOMAXPROCS, 1 = sequential; results
//	                are identical at any value)
//	-nodelta        disable the semi-naïve delta engine and recompute
//	                every statement transfer from the full in-state
//	                (results are identical; A/B escape hatch)
//	-explain        cross-validate the result against randomized concrete
//	                executions; on a cover failure print the triage report
//	                (failing statement + rejecting node property) and exit 1.
//	                cmd/shapetriage offers the full triage toolkit
//	                (trace seeds, legacy engine, DOT pair, shrinking)
//	-cache-dir D    persistent analysis store: repeat runs of the same
//	                program warm-start from the stored fixpoint, and
//	                re-analysis after an edit reruns only the changed
//	                statements' forward cone
//	-remote URL     run the analysis on a shaped daemon via POST
//	                /analyze instead of in-process; prints the outcome,
//	                visit count and canonical result digest. Incompatible
//	                with the flags that need the in-process result
//	                (-progressive, -dot, -ir, -loops, -stmt, -explain,
//	                -cache-dir — the daemon owns the store)
//	-cpuprofile F   write a pprof CPU profile of the run to F
//	-memprofile F   write a pprof allocation profile to F on exit
//
// Built-in kernel names: matvec, matmat, lu, barneshut, slist, dlist,
// btree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/checker"
	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/triage"
)

func main() {
	level := flag.Int("level", 1, "analysis level 1..3")
	progressive := flag.Bool("progressive", false, "run the progressive L1->L2->L3 analysis")
	dot := flag.Bool("dot", false, "print the exit RSRSG as Graphviz dot")
	loops := flag.Bool("loops", false, "print the per-loop dependence report")
	dumpIR := flag.Bool("ir", false, "print the lowered IR")
	stmt := flag.Int("stmt", -1, "dump the RSRSG after this statement id")
	budget := flag.Int("budget", 0, "node budget (0 = unlimited)")
	stats := flag.Bool("stats", false, "print memoization/digest-cache counters")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	noDelta := flag.Bool("nodelta", false, "disable semi-naïve delta propagation (full recompute per visit)")
	schedName := flag.String("sched", "wto", "fixpoint scheduler: wto or rpo")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent analysis store (warm-start and edit-delta re-analysis)")
	remote := flag.String("remote", "", "shaped daemon base URL; run the analysis via POST /analyze instead of in-process")
	explain := flag.Bool("explain", false, "cross-validate against concrete traces; print the triage report on a cover failure")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the analysis to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file on exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: shapec [flags] <file.c | kernel-name>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	arg := flag.Arg(0)

	if *remote != "" {
		for name, set := range map[string]bool{
			"-progressive": *progressive, "-dot": *dot, "-ir": *dumpIR,
			"-loops": *loops, "-explain": *explain,
			"-stmt": *stmt >= 0, "-cache-dir": *cacheDir != "",
		} {
			if set {
				fatal(fmt.Errorf("%s is not supported with -remote (the daemon owns the store and returns digests, not graphs)", name))
			}
		}
		os.Exit(runRemote(*remote, arg, *level, *budget, *stats))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	var prog *ir.Program
	var goals []analysis.Goal
	if k := benchprog.ByName(arg); k != nil {
		p, err := k.Compile()
		if err != nil {
			fatal(err)
		}
		prog = p
		goals = k.Goals
		fmt.Printf("kernel %s — %s\n", k.Name, k.Title)
	} else {
		src, err := os.ReadFile(arg)
		if err != nil {
			fatal(err)
		}
		file, err := cminic.Parse(string(src))
		if err != nil {
			fatal(fmt.Errorf("%s:%v", arg, err))
		}
		p, err := ir.LowerMain(file)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", arg, err))
		}
		prog = p
		goals = []analysis.Goal{checker.NonEmptyExit{}}
		// The store's edit-delta lookup keys on the program name; the
		// source path is the natural "same program, next version"
		// identity for files.
		prog.Name = arg
	}

	if *dumpIR {
		fmt.Println(prog)
	}

	sched, err := analysis.ParseSched(*schedName)
	if err != nil {
		fatal(err)
	}
	opts := analysis.Options{NodeBudget: *budget, Workers: *workers, NoDelta: *noDelta, Sched: sched}
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fatal(err)
		}
		st, err := store.Open(filepath.Join(*cacheDir, "shape.rsgstore"))
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		opts.Store = st
	}

	if *progressive {
		pres := analysis.Progressive(prog, goals, opts)
		fmt.Print(pres.Summary())
		if *stats {
			for _, rep := range pres.Levels {
				if rep.Result != nil {
					printStats(rep.Level.String(), &rep.Result.Stats)
				}
			}
		}
		if res := pres.Final.Result; res != nil {
			printResult(res, *dot, *stmt)
			if *loops {
				fmt.Println("\nloop dependence report:")
				fmt.Print(checker.FormatLoopReports(checker.AnalyzeLoops(res)))
			}
			if *explain {
				explainResult(prog, res)
			}
		}
		return
	}

	opts.Level = rsg.Level(*level)
	if opts.Level < rsg.L1 || opts.Level > rsg.L3 {
		fatal(fmt.Errorf("invalid level %d", *level))
	}
	start := time.Now()
	res, err := analysis.Run(prog, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %v, %d visits, peak %d nodes / %d links / %d graphs\n",
		opts.Level, time.Since(start).Round(time.Millisecond), res.Stats.Visits,
		res.Stats.PeakNodes, res.Stats.PeakLinks, res.Stats.PeakGraphs)
	if *stats {
		printStats(opts.Level.String(), &res.Stats)
	}
	for _, g := range goals {
		ok, detail := g.Met(res)
		fmt.Printf("goal %-35s %-5v %s\n", g.Name(), ok, detail)
	}
	printResult(res, *dot, *stmt)
	if *loops {
		fmt.Println("\nloop dependence report:")
		fmt.Print(checker.FormatLoopReports(checker.AnalyzeLoops(res)))
	}
	if *explain {
		explainResult(prog, res)
	}
}

// printStats renders one level's counters: memoization, scheduling,
// and the visits-per-statement histogram (DESIGN.md §14 — scheduling
// regressions show up here without a profiler).
func printStats(level string, s *analysis.Stats) {
	fmt.Printf("stats %s: %s\n", level, s.CacheSummary())
	fmt.Printf("stats %s: %s\n", level, s.SchedSummary())
	if h := s.VisitHistogram(); h != "" {
		fmt.Printf("stats %s: visits/stmt %s\n", level, h)
	}
}

// explainResult cross-validates the analysis result against randomized
// concrete executions (fixed budget; cmd/shapetriage exposes the knobs)
// and exits 1 with the triage report when a heap escapes coverage.
func explainResult(prog *ir.Program, res *analysis.Result) {
	const runs, seed = 50, 1
	rep, err := triage.Explain(prog, res, runs, seed)
	if err != nil {
		fatal(err)
	}
	if rep == nil {
		fmt.Printf("\nexplain: %s covers all heaps observed over %d runs\n", res.Level, runs)
		return
	}
	fmt.Printf("\nexplain: SOUNDNESS VIOLATION\n%s", rep.Text())
	os.Exit(1)
}

func printResult(res *analysis.Result, dot bool, stmtID int) {
	fmt.Println("\nexit-state summary:")
	fmt.Print(checker.FormatReport(checker.Report(res)))
	if stmtID >= 0 {
		if set := res.Out[stmtID]; set != nil {
			fmt.Printf("\nRSRSG after statement %d (%s): %d RSGs\n%s\n",
				stmtID, res.Program.Stmt(stmtID), set.Len(), set)
		}
	}
	if dot {
		for i, g := range res.ExitSet().Graphs() {
			fmt.Print(rsg.DOT(g, fmt.Sprintf("exit_%d", i)))
		}
	}
}

// runRemote ships the program to a shaped daemon and renders its
// /analyze response; the local exit-code contract is preserved (0 on
// convergence, 1 on any analysis failure, including a 504 timeout).
func runRemote(base, arg string, level, budget int, stats bool) int {
	var name, source string
	if k := benchprog.ByName(arg); k != nil {
		name, source = k.Name, k.Source
		fmt.Printf("kernel %s — %s\n", k.Name, k.Title)
	} else {
		src, err := os.ReadFile(arg)
		if err != nil {
			fatal(err)
		}
		name, source = arg, string(src)
	}
	cl := &service.Client{BaseURL: base}
	resp, err := cl.Analyze(service.AnalyzeRequest{
		Name:       name,
		Source:     source,
		Level:      level,
		NodeBudget: budget,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (remote): %s, %d visits, %v, %d statements reused, result digest %s\n",
		resp.Level, resp.Outcome, resp.Visits,
		(time.Duration(resp.DurationUS) * time.Microsecond).Round(time.Millisecond),
		resp.ReusedStatements, resp.ResultDigest)
	if stats {
		fmt.Printf("stats %s: %s\n", resp.Level, resp.CacheSummary)
		fmt.Printf("stats %s: %s\n", resp.Level, resp.SchedSummary)
	}
	if resp.Outcome != "converged" {
		fmt.Fprintln(os.Stderr, "shapec:", resp.Error)
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shapec:", err)
	os.Exit(1)
}
