// Command rsgdump analyzes a mini-C file (or built-in kernel) and dumps
// the RSRSG of a chosen program point as text or Graphviz dot.
//
// Usage:
//
//	rsgdump [-level N] [-stmt N | -line N | -exit] [-dot] <file.c | kernel>
//
// With -line, every statement lowered from that source line is dumped
// (a C statement can expand to several IR statements).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
)

func main() {
	level := flag.Int("level", 1, "analysis level 1..3")
	stmtID := flag.Int("stmt", -1, "dump after this IR statement id")
	line := flag.Int("line", -1, "dump after every statement of this source line")
	exit := flag.Bool("exit", false, "dump the function exit state")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of text")
	listing := flag.Bool("list", false, "print the IR listing and quit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rsgdump [flags] <file.c | kernel-name>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	prog, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsgdump:", err)
		os.Exit(1)
	}
	if *listing {
		fmt.Print(prog)
		return
	}

	res, err := analysis.Run(prog, analysis.Options{Level: rsg.Level(*level)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsgdump:", err)
		os.Exit(1)
	}

	var targets []int
	switch {
	case *exit || (*stmtID < 0 && *line < 0):
		targets = []int{prog.Exit}
	case *stmtID >= 0:
		targets = []int{*stmtID}
	default:
		for _, s := range prog.Stmts {
			if s.Line == *line {
				targets = append(targets, s.ID)
			}
		}
		if len(targets) == 0 {
			fmt.Fprintf(os.Stderr, "rsgdump: no statement at line %d\n", *line)
			os.Exit(1)
		}
	}

	for _, id := range targets {
		set := res.Out[id]
		if set == nil {
			fmt.Printf("-- statement %d (%s): unreachable\n", id, prog.Stmt(id))
			continue
		}
		fmt.Printf("-- statement %d (%s): %d RSGs\n", id, prog.Stmt(id), set.Len())
		if *dot {
			for i, g := range set.Graphs() {
				fmt.Print(rsg.DOT(g, fmt.Sprintf("s%d_%d", id, i)))
			}
		} else {
			fmt.Println(set)
		}
	}
}

func load(arg string) (*ir.Program, error) {
	if k := benchprog.ByName(arg); k != nil {
		return k.Compile()
	}
	src, err := os.ReadFile(arg)
	if err != nil {
		return nil, err
	}
	file, err := cminic.Parse(string(src))
	if err != nil {
		return nil, err
	}
	return ir.LowerMain(file)
}
