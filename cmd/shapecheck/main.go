// Command shapecheck is the memory-safety verdict client CLI: it runs
// the null-dereference, use-after-free and memory-leak checkers over
// the progressive shape analysis and reports one verdict per property
// (safe@Lk, unsafe, unknown).
//
// Usage:
//
//	shapecheck [flags] <file.c | corpus-dir>
//
//	-v          also print the per-level goal details and, for unsafe
//	            verdicts, the concrete witness trace
//	-alarms     print the surviving alarms of unknown/unsafe verdicts
//	-runs N     concrete executions used to confirm surviving alarms
//	            (default 64)
//	-seed N     base seed of the confirmation executions (default 1)
//	-workers N  analysis worker goroutines (0 = GOMAXPROCS)
//	-remote URL run the checkers on a shaped daemon via POST /check;
//	            expected-verdict headers are still parsed and compared
//	            locally, so the exit-code contract is unchanged
//
// A task file may carry an expected-verdict header:
//
//	// VERDICT: null-deref=safe@L1 use-after-free=safe leak=unsafe
//
// With a header (or a corpus directory, where every task must have
// one), shapecheck compares the settled verdicts against it and exits
// with the number of mismatching tasks (capped at 125). Without a
// header it prints the verdicts and exits 0 unless a verdict is unsafe.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/rsg"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/verdict"
)

func main() {
	verbose := flag.Bool("v", false, "print per-level details and witnesses")
	alarms := flag.Bool("alarms", false, "print surviving alarms")
	runs := flag.Int("runs", 64, "concrete confirmation executions")
	seed := flag.Int64("seed", 1, "confirmation seed")
	workers := flag.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "directory for the persistent analysis store (warm-starts repeat runs)")
	remote := flag.String("remote", "", "shaped daemon base URL; run the checkers via POST /check instead of in-process")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: shapecheck [flags] <file.c | corpus-dir>")
		os.Exit(2)
	}
	if *remote != "" {
		if *cacheDir != "" {
			fatal(fmt.Errorf("-cache-dir is not supported with -remote (the daemon owns the store)"))
		}
		os.Exit(runRemote(*remote, flag.Arg(0), *runs, *seed, *alarms))
	}
	opts := verdict.Options{
		Analysis:    analysis.Options{Workers: *workers},
		ConfirmRuns: *runs,
		ConfirmSeed: *seed,
	}
	var st *store.Store
	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fatal(err)
		}
		var err error
		st, err = store.Open(filepath.Join(*cacheDir, "shapecheck.rsgstore"))
		if err != nil {
			fatal(err)
		}
		opts.Analysis.Store = st
	}

	target := flag.Arg(0)
	info, err := os.Stat(target)
	if err != nil {
		fatal(err)
	}
	var code int
	if info.IsDir() {
		code = runCorpus(target, opts, *verbose, *alarms)
	} else {
		code = runFile(target, opts, *verbose, *alarms)
	}
	if st != nil {
		st.Close()
	}
	os.Exit(code)
}

func runFile(path string, opts verdict.Options, verbose, alarms bool) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if _, ok, _ := verdict.ParseHeader(string(src)); ok {
		tr, err := verdict.RunTask(path, string(src), opts)
		if err != nil {
			fatal(err)
		}
		printTask(tr, verbose, alarms)
		if len(tr.Mismatches) > 0 {
			return 1
		}
		return 0
	}
	// No header: report-only mode.
	prog, err := verdict.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	rep := verdict.Check(prog, opts)
	if rep.Err != nil {
		fatal(rep.Err)
	}
	fmt.Printf("%s:\n", path)
	printReport(rep, verbose, alarms)
	for _, v := range rep.Verdicts {
		if v.Status == verdict.Unsafe {
			return 1
		}
	}
	return 0
}

func runCorpus(dir string, opts verdict.Options, verbose, alarms bool) int {
	results, err := verdict.RunCorpus(dir, opts)
	if err != nil {
		fatal(err)
	}
	bad := 0
	for _, tr := range results {
		printTask(tr, verbose, alarms)
		if len(tr.Mismatches) > 0 {
			bad++
		}
	}
	fmt.Printf("%d/%d tasks match their expected verdicts\n", len(results)-bad, len(results))
	if bad > 125 {
		bad = 125
	}
	return bad
}

func printTask(tr *verdict.TaskResult, verbose, alarms bool) {
	status := "ok"
	if len(tr.Mismatches) > 0 {
		status = "MISMATCH"
	}
	fmt.Printf("%s: %s\n", tr.Path, status)
	printReport(tr.Report, verbose, alarms)
	for _, m := range tr.Mismatches {
		fmt.Printf("    mismatch %s\n", m)
	}
}

func printReport(rep *verdict.Report, verbose, alarms bool) {
	for _, v := range rep.Verdicts {
		fmt.Printf("    %-16s %s\n", v.Class.String()+":", v)
		if alarms {
			for _, a := range v.Alarms {
				fmt.Printf("        alarm: %s\n", a)
			}
		}
		if verbose && v.Witness != nil {
			for _, line := range splitLines(v.Witness.Text()) {
				fmt.Printf("        %s\n", line)
			}
		}
	}
	if verbose {
		fmt.Print(indent(rep.Progressive.Summary()))
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func indent(s string) string {
	var b []byte
	for _, line := range splitLines(s) {
		b = append(b, "    "...)
		b = append(b, line...)
		b = append(b, '\n')
	}
	return string(b)
}

// runRemote runs the target through a shaped daemon's /check endpoint.
// Expected-verdict headers are parsed and compared client-side, so the
// exit-code contract matches the in-process path: a headered file or a
// corpus directory exits with the number of mismatching tasks (capped
// at 125), a headerless file with 1 iff some verdict is unsafe.
func runRemote(base, target string, runs int, seed int64, alarms bool) int {
	cl := &service.Client{BaseURL: base}
	info, err := os.Stat(target)
	if err != nil {
		fatal(err)
	}
	if !info.IsDir() {
		return remoteFile(cl, target, runs, seed, alarms)
	}
	files, err := verdict.CorpusFiles(target)
	if err != nil {
		fatal(err)
	}
	if len(files) == 0 {
		fatal(fmt.Errorf("%s: no .c tasks", target))
	}
	bad := 0
	for _, f := range files {
		if remoteFile(cl, f, runs, seed, alarms) != 0 {
			bad++
		}
	}
	fmt.Printf("%d/%d tasks match their expected verdicts\n", len(files)-bad, len(files))
	if bad > 125 {
		bad = 125
	}
	return bad
}

func remoteFile(cl *service.Client, path string, runs int, seed int64, alarms bool) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	exp, hasHeader, err := verdict.ParseHeader(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	resp, err := cl.Check(service.CheckRequest{
		Name:        path,
		Source:      string(src),
		ConfirmRuns: runs,
		ConfirmSeed: seed,
	})
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if resp.Error != "" {
		fatal(fmt.Errorf("%s: %s", path, resp.Error))
	}

	var mismatches []string
	if hasHeader {
		for _, cv := range resp.Verdicts {
			class, v, err := wireVerdict(cv)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			if e, ok := exp[class]; ok && !e.Matches(v) {
				mismatches = append(mismatches,
					fmt.Sprintf("%s: expected %s, got %s", class, e, v))
			}
		}
	}

	status := "ok"
	if len(mismatches) > 0 {
		status = "MISMATCH"
	}
	fmt.Printf("%s: %s (remote)\n", path, status)
	unsafe := false
	for _, cv := range resp.Verdicts {
		fmt.Printf("    %-16s %s\n", cv.Class+":", cv.Verdict)
		if alarms {
			for _, a := range cv.Alarms {
				fmt.Printf("        alarm: %s\n", a)
			}
		}
		if cv.Status == verdict.Unsafe.String() {
			unsafe = true
		}
	}
	for _, m := range mismatches {
		fmt.Printf("    mismatch %s\n", m)
	}
	if hasHeader {
		if len(mismatches) > 0 {
			return 1
		}
		return 0
	}
	if unsafe {
		return 1
	}
	return 0
}

// wireVerdict reconstructs enough of a verdict.Verdict from its wire
// form for Expectation.Matches.
func wireVerdict(cv service.CheckVerdict) (verdict.Class, verdict.Verdict, error) {
	var v verdict.Verdict
	var class verdict.Class
	found := false
	for _, c := range verdict.Classes() {
		if c.String() == cv.Class {
			class, found = c, true
			break
		}
	}
	if !found {
		return 0, v, fmt.Errorf("unknown verdict class %q in daemon response", cv.Class)
	}
	v.Class = class
	switch cv.Status {
	case verdict.Safe.String():
		v.Status = verdict.Safe
	case verdict.Unsafe.String():
		v.Status = verdict.Unsafe
	case verdict.Unknown.String():
		v.Status = verdict.Unknown
	default:
		return 0, v, fmt.Errorf("unknown verdict status %q in daemon response", cv.Status)
	}
	switch cv.Level {
	case "":
	case rsg.L1.String():
		v.Level = rsg.L1
	case rsg.L2.String():
		v.Level = rsg.L2
	case rsg.L3.String():
		v.Level = rsg.L3
	default:
		return 0, v, fmt.Errorf("unknown verdict level %q in daemon response", cv.Level)
	}
	return class, v, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shapecheck:", err)
	os.Exit(2)
}
