// Benchmark harness reproducing the paper's evaluation artifacts.
//
// One benchmark exists per Table 1 cell (code x level) and per figure:
//
//   - BenchmarkTable1_* measure the full analysis of each benchmark
//     kernel at each progressive level. By default each cell runs a
//     bounded number of engine visits per iteration (benchVisits) so
//     that `go test -bench=.` terminates in minutes; set
//     REPRO_FULL_BENCH=1 to run every cell to its true fixed point —
//     the canonical full-table generator is `go run ./cmd/benchtab`.
//   - BenchmarkFigure1_* measure the Fig. 1 micro-pipeline (DIVIDE,
//     PRUNE, materialization) on the doubly-linked-list RSG.
//   - BenchmarkFigure2Pipeline measures one full symbolic-execution
//     pipeline step (divide -> prune -> interpret -> compress -> union).
//   - BenchmarkFigure3BarnesHut measures the Sect. 5.1 progressive
//     analysis of the Barnes-Hut kernel.
//   - BenchmarkAblation* quantify the design choices DESIGN.md calls
//     out: RSG union on/off, cycle-link pruning on/off, per-statement
//     compression on/off, TOUCH restricted to induction pvars vs all.
//
// Measured values for the full runs are recorded in EXPERIMENTS.md.
package repro_test

import (
	"errors"
	"os"
	"strings"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/rsg"
)

// benchVisits bounds the engine work per bench iteration in the default
// (bounded) mode: enough to push every kernel deep into its loop nest
// while keeping `go test -bench=.` practical.
const benchVisits = 1500

func fullBench() bool { return os.Getenv("REPRO_FULL_BENCH") != "" }

// benchKernel runs one Table 1 cell.
func benchKernel(b *testing.B, name string, lvl rsg.Level, opts analysis.Options) {
	k := benchprog.ByName(name)
	if k == nil {
		b.Fatalf("unknown kernel %s", name)
	}
	prog, err := k.Compile()
	if err != nil {
		b.Fatal(err)
	}
	opts.Level = lvl
	if !fullBench() && opts.MaxVisits == 0 {
		opts.MaxVisits = benchVisits
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Run(prog, opts)
		if err != nil && !errors.Is(err, analysis.ErrNoConvergence) &&
			!errors.Is(err, analysis.ErrBudgetExceeded) {
			b.Fatal(err)
		}
		if res != nil {
			b.ReportMetric(float64(res.Stats.Visits), "visits")
			b.ReportMetric(float64(res.Stats.PeakNodes), "peak-nodes")
			b.ReportMetric(float64(res.Stats.PeakGraphs), "peak-graphs")
		}
	}
}

// ---- Table 1: time and space per code per level -----------------------

func BenchmarkTable1_MatVec_L1(b *testing.B) { benchKernel(b, "matvec", rsg.L1, analysis.Options{}) }
func BenchmarkTable1_MatVec_L2(b *testing.B) { benchKernel(b, "matvec", rsg.L2, analysis.Options{}) }
func BenchmarkTable1_MatVec_L3(b *testing.B) { benchKernel(b, "matvec", rsg.L3, analysis.Options{}) }

func BenchmarkTable1_MatMat_L1(b *testing.B) { benchKernel(b, "matmat", rsg.L1, analysis.Options{}) }
func BenchmarkTable1_MatMat_L2(b *testing.B) { benchKernel(b, "matmat", rsg.L2, analysis.Options{}) }
func BenchmarkTable1_MatMat_L3(b *testing.B) { benchKernel(b, "matmat", rsg.L3, analysis.Options{}) }

// The LU factorization is the paper's heaviest row: 12'15" at L1 and an
// out-of-memory abort at L2/L3 on the 128 MB machine. The L2/L3 cells
// reproduce the abort through the node budget.
func BenchmarkTable1_LU_L1(b *testing.B) { benchKernel(b, "lu", rsg.L1, analysis.Options{}) }
func BenchmarkTable1_LU_L2(b *testing.B) {
	benchKernel(b, "lu", rsg.L2, analysis.Options{NodeBudget: 60000})
}
func BenchmarkTable1_LU_L3(b *testing.B) {
	benchKernel(b, "lu", rsg.L3, analysis.Options{NodeBudget: 60000})
}

func BenchmarkTable1_BarnesHut_L1(b *testing.B) {
	benchKernel(b, "barneshut", rsg.L1, analysis.Options{})
}
func BenchmarkTable1_BarnesHut_L2(b *testing.B) {
	benchKernel(b, "barneshut", rsg.L2, analysis.Options{})
}
func BenchmarkTable1_BarnesHut_L3(b *testing.B) {
	benchKernel(b, "barneshut", rsg.L3, analysis.Options{})
}

// ---- Figure 1: the x->nxt = NULL micro-pipeline ------------------------

// fig1Source builds the Fig. 1(a) doubly-linked list and executes the
// statement the figure walks through.
const fig1Source = `
struct elem { int val; struct elem *nxt; struct elem *prv; };
void main(void) {
    struct elem *first;
    struct elem *last;
    struct elem *e;
    struct elem *x;
    first = malloc(sizeof(struct elem));
    first->nxt = NULL;
    first->prv = NULL;
    last = first;
    while (more) {
        e = malloc(sizeof(struct elem));
        e->nxt = NULL;
        e->prv = last;
        last->nxt = e;
        last = e;
    }
    e = NULL;
    x = first;
    x->nxt = NULL;
}
`

func BenchmarkFigure1Pipeline(b *testing.B) {
	prog, err := repro.Compile(fig1Source)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Run(prog, analysis.Options{Level: rsg.L1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 2: one symbolic-execution pipeline step --------------------

func BenchmarkFigure2Pipeline(b *testing.B) {
	// Fix point of the list builder, then repeatedly push its exit
	// RSRSG through one destructive statement: the per-sentence
	// divide/prune/interpret/compress/union pipeline of Fig. 2.
	prog, err := repro.Compile(fig1Source)
	if err != nil {
		b.Fatal(err)
	}
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
	if err != nil {
		b.Fatal(err)
	}
	in := res.ExitSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := analysis.PipelineStep(rsg.L1, in, "first", "nxt")
		if out.Len() == 0 {
			b.Fatal("pipeline produced no graphs")
		}
	}
}

// ---- Figure 3: the Barnes-Hut progressive case study -------------------

func BenchmarkFigure3BarnesHut(b *testing.B) {
	prog, k := repro.MustKernel("barneshut")
	opts := analysis.Options{}
	if !fullBench() {
		opts.MaxVisits = benchVisits
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pres := analysis.Progressive(prog, k.Goals, opts)
		if pres.Final == nil {
			b.Fatal("no final level")
		}
	}
}

// ---- Ablations ----------------------------------------------------------

func BenchmarkAblationBaseline(b *testing.B) {
	benchKernel(b, "slist", rsg.L1, analysis.Options{})
}

// BenchmarkAblationNoJoin disables the RSG union; the paper credits the
// union with keeping the RSRSGs small ("greatly reduces the number of
// RSGs and leads to a practicable analysis").
func BenchmarkAblationNoJoin(b *testing.B) {
	benchKernel(b, "slist", rsg.L1, analysis.Options{DisableJoin: true, MaxVisits: benchVisits})
}

// BenchmarkAblationNoCyclePrune disables the NL_PRUNE cycle-link rule;
// the paper credits pruning for the Barnes-Hut L2 < L1 cost paradox.
func BenchmarkAblationNoCyclePrune(b *testing.B) {
	benchKernel(b, "dlist", rsg.L1, analysis.Options{DisableCyclePrune: true, MaxVisits: benchVisits})
}

func BenchmarkAblationCyclePruneBaseline(b *testing.B) {
	benchKernel(b, "dlist", rsg.L1, analysis.Options{MaxVisits: benchVisits})
}

// BenchmarkAblationNoCompress skips the per-statement COMPRESS phase.
func BenchmarkAblationNoCompress(b *testing.B) {
	benchKernel(b, "slist", rsg.L1, analysis.Options{NoCompress: true, MaxVisits: benchVisits})
}

// BenchmarkAblationTouchAllPvars widens TOUCH to every pvar at L3; the
// paper restricts TOUCH to induction pvars "to avoid the explosion in
// the number of nodes".
func BenchmarkAblationTouchAllPvars(b *testing.B) {
	benchKernel(b, "slist", rsg.L3, analysis.Options{TouchAllPvars: true, MaxVisits: benchVisits})
}

func BenchmarkAblationTouchInductionOnly(b *testing.B) {
	benchKernel(b, "slist", rsg.L3, analysis.Options{MaxVisits: benchVisits})
}

// ---- Parallel engine scaling -------------------------------------------

// The parallel engine fans per-graph transfers and per-alias-bucket
// reductions over Options.Workers goroutines; output digests are
// bit-identical at every worker count (see internal/analysis
// TestParallelDeterminism), so these benchmarks measure pure speedup.
// Measured numbers are recorded in CHANGES.md.

func benchParallelBarnesHut(b *testing.B, workers int) {
	benchKernel(b, "barneshut", rsg.L1, analysis.Options{Workers: workers, MaxVisits: benchVisits})
}

func BenchmarkParallelBarnesHutL1_Workers1(b *testing.B) { benchParallelBarnesHut(b, 1) }
func BenchmarkParallelBarnesHutL1_Workers2(b *testing.B) { benchParallelBarnesHut(b, 2) }
func BenchmarkParallelBarnesHutL1_Workers4(b *testing.B) { benchParallelBarnesHut(b, 4) }
func BenchmarkParallelBarnesHutL1_Workers8(b *testing.B) { benchParallelBarnesHut(b, 8) }

// ---- Semi-naïve delta propagation A/B ----------------------------------

// The delta engine transfers only the graphs newly admitted to a
// statement's in-state and re-reduces only the dirtied alias buckets
// (DESIGN.md §8); per-statement digests are bit-identical either way
// (see internal/analysis TestParallelDeterminism), so the On/Off pair
// measures pure speedup. For interleaved medians use
// `go run ./cmd/benchtab -reps N -deltamodes on,off`.

func BenchmarkDeltaBarnesHutL1_On(b *testing.B) {
	benchKernel(b, "barneshut", rsg.L1, analysis.Options{Workers: 1, MaxVisits: benchVisits})
}

func BenchmarkDeltaBarnesHutL1_Off(b *testing.B) {
	benchKernel(b, "barneshut", rsg.L1, analysis.Options{Workers: 1, MaxVisits: benchVisits, NoDelta: true})
}

// ---- Digest-core regression checks -------------------------------------

// TestTransferMemoHitRateBarnesHut asserts the transfer memoization
// floor on the full-recompute path (NoDelta): within the bounded
// Barnes-Hut L1 run the same RSGs flow through the same statements
// often enough that at least half of the per-graph transfers must be
// served from the digest-keyed memo. (Measured: ~57% at 3000 visits,
// ~65% at the full fixed point.) The default (delta) path eliminates
// those repeats before the memo is even probed — a statement's
// in-state never re-admits an absorbed digest, so every delta-path
// probe is a first-time miss; the test pins that the delta run steps
// no more graphs than the memoized full run deduplicated down to.
func TestTransferMemoHitRateBarnesHut(t *testing.T) {
	prog, _ := repro.MustKernel("barneshut")
	full, err := analysis.Run(prog, analysis.Options{Level: rsg.L1, MaxVisits: 3000, NoDelta: true})
	if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatal(err)
	}
	rate := full.Stats.MemoHitRate()
	t.Logf("nodelta: memo hits=%d misses=%d rate=%.1f%%", full.Stats.MemoHits, full.Stats.MemoMisses, 100*rate)
	if rate < 0.50 {
		t.Errorf("transfer-memo hit rate %.1f%% below the 50%% floor", 100*rate)
	}
	if full.Stats.Cache.GraphsFrozen == 0 || full.Stats.Cache.DigestsComputed == 0 {
		t.Error("cache counters not populated")
	}
	if full.Stats.DeltaTransfers != 0 || full.Stats.FullRecomputes == 0 {
		t.Errorf("NoDelta run used the delta path: delta=%d full=%d",
			full.Stats.DeltaTransfers, full.Stats.FullRecomputes)
	}

	delta, err := analysis.Run(prog, analysis.Options{Level: rsg.L1, MaxVisits: 3000})
	if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatal(err)
	}
	t.Logf("delta: memo hits=%d misses=%d delta-transfers=%d dirty-buckets=%d",
		delta.Stats.MemoHits, delta.Stats.MemoMisses,
		delta.Stats.DeltaTransfers, delta.Stats.DirtyBuckets)
	if delta.Stats.DeltaTransfers == 0 {
		t.Error("default run never used the delta path")
	}
	if delta.Stats.MemoMisses > full.Stats.MemoMisses {
		t.Errorf("delta run stepped more graphs (%d) than the memoized full run (%d)",
			delta.Stats.MemoMisses, full.Stats.MemoMisses)
	}
}

// TestFigurePipelinesUnderFreezeGuard runs the figure workloads with
// the freeze guard armed (every graph entering an RSRSG is frozen, so
// any transfer that mutated its input in place would panic).
func TestFigurePipelinesUnderFreezeGuard(t *testing.T) {
	prog, err := repro.Compile(fig1Source)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		res, err := analysis.Run(prog, analysis.Options{Level: lvl})
		if err != nil {
			t.Fatalf("%v: %v", lvl, err)
		}
		in := res.ExitSet()
		before := in.Digest()
		if out := analysis.PipelineStep(lvl, in, "first", "nxt"); out.Len() == 0 {
			t.Fatalf("%v: pipeline produced no graphs", lvl)
		}
		if in.Digest() != before {
			t.Fatalf("%v: pipeline step mutated its input set", lvl)
		}
	}
}

// ---- Worklist micro-benchmark ------------------------------------------

// deepLoopSource builds a mini-C program with a deep while-nest: the
// worst case for the former O(S) worklist pop, which re-scanned the RPO
// slice from the top on every iteration of every loop level.
func deepLoopSource(depth int) string {
	var b strings.Builder
	b.WriteString("struct node { int v; struct node *nxt; };\n")
	b.WriteString("void main(void) {\n")
	b.WriteString("    struct node *h;\n    struct node *p;\n")
	b.WriteString("    h = malloc(sizeof(struct node));\n")
	b.WriteString("    h->nxt = NULL;\n")
	for i := 0; i < depth; i++ {
		b.WriteString("    while (more) {\n")
		b.WriteString("        p = h;\n")
		b.WriteString("        p->nxt = NULL;\n")
	}
	b.WriteString("        p = h;\n")
	for i := 0; i < depth; i++ {
		b.WriteString("    }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// BenchmarkDeepLoopNestWorklist measures fixed-point scheduling cost on
// a 24-deep loop nest; transfer work is trivial (every body statement
// is a memo hit after round one), so worklist overhead dominates.
func BenchmarkDeepLoopNestWorklist(b *testing.B) {
	prog, err := repro.Compile(deepLoopSource(24))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.Visits), "visits")
	}
}
