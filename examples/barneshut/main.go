// Barneshut: reproduce the paper's Sect. 5.1 case study. The Barnes-Hut
// N-body kernel (octree + body list + explicit traversal stack) is the
// code for which the progressive analysis earns its keep: the sparse
// kernels finish at L1, but proving that the force-computation loop of
// step (iii) visits each octree node through a single live reference
// requires the TOUCH property — level L3.
//
// Run with:
//
//	go run ./examples/barneshut           # progressive L1 -> L3 (slow)
//	go run ./examples/barneshut -level 1  # one fixed level
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	level := flag.Int("level", 0, "fixed analysis level (0 = progressive)")
	flag.Parse()

	prog, k := repro.MustKernel("barneshut")
	fmt.Printf("=== %s — %s ===\n", k.Name, k.Title)
	fmt.Printf("IR: %d statements, %d loops, %d pointer variables\n\n",
		len(prog.Stmts), len(prog.Loops), len(prog.PtrVars))

	if *level != 0 {
		res, err := repro.AnalyzeProgram(prog, repro.Options{Level: repro.Level(*level)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %v, %d visits\n", res.Level,
			res.Stats.Duration.Round(1000000), res.Stats.Visits)
		for _, g := range k.Goals {
			ok, detail := g.Met(res)
			fmt.Printf("goal %-34s %-5v %s\n", g.Name(), ok, detail)
		}
		fmt.Println()
		fmt.Print(repro.FormatReport(repro.Report(res)))
		return
	}

	pres := repro.AnalyzeProgressive(prog, k.Goals, repro.Options{})
	fmt.Print(pres.Summary())
	fmt.Printf("\nachieved level: %s (paper: L%d)\n", pres.AchievedLevel(), k.PaperLevel)
	if pres.Final.Result != nil {
		fmt.Println("\nexit-state structure summary (compare with the paper's Fig. 3(b)):")
		fmt.Print(repro.FormatReport(repro.Report(pres.Final.Result)))
	}
}
