// Quickstart: analyze a small C program that builds and then splices a
// doubly-linked list, and walk the paper's Fig. 1 pipeline on it.
//
// Run with:
//
//	go run ./examples/quickstart
//
// The program prints, for each analysis level, the per-struct shape
// summary at the function exit, and then dumps the RSRSG right after
// the destructive x->nxt = NULL statement — the exact statement the
// paper's Fig. 1 walks through (division, pruning, materialization,
// link removal).
package main

import (
	"fmt"
	"log"

	"repro"
)

// src builds a doubly-linked list of unbounded length, points x at its
// head and then cuts the list with x->nxt = NULL — the paper's Fig. 1
// scenario.
const src = `
struct elem { int val; struct elem *nxt; struct elem *prv; };

void main(void) {
    struct elem *first;
    struct elem *last;
    struct elem *e;
    struct elem *x;

    first = malloc(sizeof(struct elem));
    first->nxt = NULL;
    first->prv = NULL;
    last = first;
    while (more) {
        e = malloc(sizeof(struct elem));
        e->nxt = NULL;
        e->prv = last;
        last->nxt = e;
        last = e;
    }
    e = NULL;

    x = first;
    x->nxt = NULL;   /* Fig. 1: cut the list after the first element */
}
`

func main() {
	prog, err := repro.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	for _, lvl := range []repro.Level{repro.L1, repro.L2, repro.L3} {
		res, err := repro.AnalyzeProgram(prog, repro.Options{Level: lvl})
		if err != nil {
			log.Fatalf("%s: %v", lvl, err)
		}
		fmt.Printf("=== %s: %d visits, %v ===\n", lvl,
			res.Stats.Visits, res.Stats.Duration.Round(1000000))
		fmt.Print(repro.FormatReport(repro.Report(res)))
		fmt.Println()
	}

	// Show the abstract state right after the destructive update. Find
	// the statement by its printable form.
	res, err := repro.AnalyzeProgram(prog, repro.Options{Level: repro.L1})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range prog.Stmts {
		if s.String() == "x->nxt = NULL" {
			set := res.Out[s.ID]
			fmt.Printf("RSRSG after `%s` (statement %d): %d RSGs\n", s, s.ID, set.Len())
			fmt.Println(set)
		}
	}
}
