// Sparse: analyze the paper's three sparse-algebra kernels (matrix by
// vector, matrix by matrix, LU factorization) with the progressive
// driver and show that each one is accurately analyzed at level L1 —
// the Sect. 5 result that motivates progressive analysis: most codes
// never need the expensive configurations.
//
// Run with:
//
//	go run ./examples/sparse             # matvec only (fast)
//	go run ./examples/sparse -all        # all three kernels
package main

import (
	"flag"
	"fmt"
	"log"
)

import "repro"

func main() {
	all := flag.Bool("all", false, "run matmat and lu too (slow)")
	flag.Parse()

	names := []string{"matvec"}
	if *all {
		names = []string{"matvec", "matmat", "lu"}
	}

	for _, name := range names {
		prog, k := repro.MustKernel(name)
		fmt.Printf("=== %s — %s ===\n", k.Name, k.Title)

		pres := repro.AnalyzeProgressive(prog, k.Goals, repro.Options{})
		fmt.Print(pres.Summary())

		achieved := pres.AchievedLevel()
		fmt.Printf("accurate at %s (paper: L%d)\n", achieved, k.PaperLevel)
		if pres.Final.Result == nil {
			log.Fatalf("%s: analysis failed", name)
		}
		fmt.Print(repro.FormatReport(repro.Report(pres.Final.Result)))
		fmt.Println()
	}
}
