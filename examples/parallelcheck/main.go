// Parallelcheck: the end-to-end use case the paper motivates in its
// introduction — run the shape analysis, then decide which loops can be
// executed in parallel because their iterations access independent
// data regions.
//
// The program under analysis builds a list of independent work items,
// each owning a private chain of sub-items, then traverses the outer
// list. Because the analysis proves no sharing anywhere (SHARED and
// every SHSEL false), the traversal loop's iterations touch disjoint
// regions and the loop is reported parallelizable. A second structure
// deliberately shares one cell to show the negative verdict.
//
// Run with:
//
//	go run ./examples/parallelcheck
package main

import (
	"fmt"
	"log"

	"repro"
)

const src = `
struct item { int v; struct item *nxt; struct sub *subs; };
struct sub  { int v; struct sub *nxt; };

void main(void) {
    struct item *work;
    struct item *it;
    struct sub *s;
    struct item *p;
    struct sub *q;

    /* build the work list, each item owning a private sub-chain */
    work = NULL;
    while (moreitems) {
        it = malloc(sizeof(struct item));
        it->nxt = work;
        it->subs = NULL;
        work = it;
        while (moresubs) {
            s = malloc(sizeof(struct sub));
            s->nxt = it->subs;
            it->subs = s;
        }
    }
    it = NULL;
    s = NULL;

    /* the candidate parallel loop: per-item traversal */
    p = work;
    while (p != NULL) {
        q = p->subs;
        while (q != NULL) {
            acc = acc + 1;   /* consume q's payload */
            q = q->nxt;
        }
        p = p->nxt;
    }
}
`

func main() {
	res, err := repro.Analyze(src, repro.Options{Level: repro.L1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shape summary at exit:")
	fmt.Print(repro.FormatReport(repro.Report(res)))

	fmt.Println("\nloop dependence report:")
	reports := repro.AnalyzeLoops(res)
	fmt.Print(repro.FormatLoopReports(reports))

	parallel := 0
	for _, r := range reports {
		if r.Parallelizable {
			parallel++
		}
	}
	fmt.Printf("\n%d of %d loops provably traverse independent regions\n",
		parallel, len(reports))
}
