package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/verdict"
)

// soloDigests runs the analysis storeless in-process and returns the
// per-statement digest map in the service's wire format — the ground
// truth the daemon's responses must match bit-for-bit.
func soloDigests(t *testing.T, kernel string, level rsg.Level) map[string]string {
	t.Helper()
	prog := compileKernel(t, kernel)
	res, err := analysis.Run(prog, analysis.Options{Level: level})
	if err != nil {
		t.Fatalf("solo run %s: %v", kernel, err)
	}
	out := make(map[string]string, len(res.Out))
	for id, set := range res.Out {
		out[strconv.Itoa(id)] = set.Digest().String()
	}
	return out
}

func compileKernel(t *testing.T, kernel string) *ir.Program {
	t.Helper()
	k := benchprog.ByName(kernel)
	if k == nil {
		t.Fatalf("unknown kernel %q", kernel)
	}
	prog, err := k.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", kernel, err)
	}
	return prog
}

// newServer starts a Service over a fresh persistent store.
func newServer(t *testing.T, cfg service.Config) (*httptest.Server, *store.Store) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(filepath.Join(t.TempDir(), "shape.rsgstore"))
		if err != nil {
			t.Fatalf("opening store: %v", err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
	}
	srv := httptest.NewServer(service.New(cfg))
	t.Cleanup(srv.Close)
	return srv, cfg.Store
}

func postJSON(t *testing.T, url string, req, resp any) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	if r.StatusCode == http.StatusOK && resp != nil {
		if err := json.Unmarshal(buf.Bytes(), resp); err != nil {
			t.Fatalf("decode %s response: %v\n%s", url, err, buf.String())
		}
	}
	return r.StatusCode, buf.String()
}

// TestAnalyzeMatchesSoloRun pins the service's core determinism
// contract: an /analyze response over the shared persistent store
// carries per-statement digests bit-identical to a solo storeless
// analysis.Run of the same program — including on the second,
// warm-started submission.
func TestAnalyzeMatchesSoloRun(t *testing.T) {
	srv, _ := newServer(t, service.Config{Workers: 2})
	for _, kernel := range []string{"matvec", "slist"} {
		want := soloDigests(t, kernel, rsg.L1)
		for round := 0; round < 2; round++ {
			var resp service.AnalyzeResponse
			code, body := postJSON(t, srv.URL+"/analyze", service.AnalyzeRequest{
				Name:    kernel,
				Source:  benchprog.ByName(kernel).Source,
				Level:   1,
				Digests: true,
			}, &resp)
			if code != http.StatusOK {
				t.Fatalf("%s round %d: status %d: %s", kernel, round, code, body)
			}
			if resp.Outcome != "converged" {
				t.Fatalf("%s round %d: outcome %q (%s)", kernel, round, resp.Outcome, resp.Error)
			}
			if !reflect.DeepEqual(resp.StmtDigests, want) {
				t.Fatalf("%s round %d: service digests diverge from solo run\nservice: %v\nsolo:    %v",
					kernel, round, resp.StmtDigests, want)
			}
			if round == 1 && resp.ReusedStatements == 0 {
				t.Errorf("%s round 1: expected a snapshot warm-start, got 0 reused statements", kernel)
			}
		}
	}
}

// TestConcurrentMixedRequests drives 8 simultaneous requests — a mix
// of /analyze and /check across different programs — through one
// shared store, and checks every /analyze digest map against its solo
// storeless run and every /check verdict line against a solo
// verdict.Check.
func TestConcurrentMixedRequests(t *testing.T) {
	srv, st := newServer(t, service.Config{Workers: 8, Queue: 8})

	analyzeKernels := []string{"matvec", "slist", "dlist", "matvec"}
	checkKernels := []string{"slist", "dlist", "slist", "dlist"}

	wantDigests := make(map[string]map[string]string)
	for _, k := range analyzeKernels {
		if wantDigests[k] == nil {
			wantDigests[k] = soloDigests(t, k, rsg.L1)
		}
	}
	wantVerdicts := make(map[string][]string)
	for _, k := range checkKernels {
		if wantVerdicts[k] == nil {
			rep := verdict.Check(compileKernel(t, k), verdict.Options{})
			if rep.Err != nil {
				t.Fatalf("solo check %s: %v", k, rep.Err)
			}
			for _, v := range rep.Verdicts {
				wantVerdicts[k] = append(wantVerdicts[k], v.Class.String()+"="+v.String())
			}
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(analyzeKernels)+len(checkKernels))
	for i, kernel := range analyzeKernels {
		wg.Add(1)
		go func(i int, kernel string) {
			defer wg.Done()
			var resp service.AnalyzeResponse
			code, body := postJSON(t, srv.URL+"/analyze", service.AnalyzeRequest{
				Name:    kernel,
				Source:  benchprog.ByName(kernel).Source,
				Level:   1,
				Digests: true,
			}, &resp)
			if code != http.StatusOK {
				errc <- fmt.Errorf("analyze[%d] %s: status %d: %s", i, kernel, code, body)
				return
			}
			if !reflect.DeepEqual(resp.StmtDigests, wantDigests[kernel]) {
				errc <- fmt.Errorf("analyze[%d] %s: digests diverge from solo run", i, kernel)
			}
		}(i, kernel)
	}
	for i, kernel := range checkKernels {
		wg.Add(1)
		go func(i int, kernel string) {
			defer wg.Done()
			var resp service.CheckResponse
			code, body := postJSON(t, srv.URL+"/check", service.CheckRequest{
				Name:   kernel,
				Source: benchprog.ByName(kernel).Source,
			}, &resp)
			if code != http.StatusOK {
				errc <- fmt.Errorf("check[%d] %s: status %d: %s", i, kernel, code, body)
				return
			}
			var got []string
			for _, v := range resp.Verdicts {
				got = append(got, v.Class+"="+v.Verdict)
			}
			if !reflect.DeepEqual(got, wantVerdicts[kernel]) {
				errc <- fmt.Errorf("check[%d] %s: verdicts %v, want %v", i, kernel, got, wantVerdicts[kernel])
			}
		}(i, kernel)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if g, _, _ := st.Counts(); g == 0 {
		t.Error("shared store recorded no graphs across 8 requests")
	}
}

// TestTimeoutReturns504WhileOthersComplete pins the isolation
// property: a request burning its (tiny, clamped) budget answers 504
// with exactly one "after <dur> (<n> visits)" suffix, while a
// well-budgeted request running concurrently completes normally.
func TestTimeoutReturns504WhileOthersComplete(t *testing.T) {
	srv, _ := newServer(t, service.Config{Workers: 4})

	var wg sync.WaitGroup
	wg.Add(1)
	var slowCode int
	var slowBody string
	go func() {
		defer wg.Done()
		slowCode, slowBody = postJSON(t, srv.URL+"/analyze", service.AnalyzeRequest{
			Name:      "bh-timeout",
			Source:    benchprog.ByName("barneshut").Source,
			Level:     3,
			TimeoutMS: 1,
		}, nil)
	}()

	var resp service.AnalyzeResponse
	code, body := postJSON(t, srv.URL+"/analyze", service.AnalyzeRequest{
		Name:   "matvec",
		Source: benchprog.ByName("matvec").Source,
		Level:  1,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("concurrent healthy request failed: status %d: %s", code, body)
	}
	if resp.Outcome != "converged" {
		t.Fatalf("concurrent healthy request outcome %q", resp.Outcome)
	}

	wg.Wait()
	if slowCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out request: status %d, want 504: %s", slowCode, slowBody)
	}
	if n := strings.Count(slowBody, "after"); n != 1 {
		t.Fatalf("timeout body carries %d 'after' suffixes, want 1: %s", n, slowBody)
	}
	if !strings.Contains(slowBody, "visits)") {
		t.Fatalf("timeout body lost the visit count: %s", slowBody)
	}
}

// TestStatsEndpoint checks that /stats surfaces the store counts, the
// aggregate engine counters and the per-endpoint blocks after traffic.
func TestStatsEndpoint(t *testing.T) {
	srv, _ := newServer(t, service.Config{Workers: 2})

	var resp service.AnalyzeResponse
	code, body := postJSON(t, srv.URL+"/analyze", service.AnalyzeRequest{
		Name:   "slist",
		Source: benchprog.ByName("slist").Source,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", code, body)
	}

	r, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer r.Body.Close()
	var stats service.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Store == nil || stats.Store.Snapshots == 0 {
		t.Errorf("stats store block missing or empty: %+v", stats.Store)
	}
	if stats.Analysis.Runs == 0 || stats.Analysis.Visits == 0 {
		t.Errorf("aggregate analysis counters empty: %+v", stats.Analysis)
	}
	ep, ok := stats.Endpoints["analyze"]
	if !ok || ep.Requests != 1 || ep.OK != 1 {
		t.Errorf("analyze endpoint counters wrong: %+v", ep)
	}
	if ep.TotalUS <= 0 || ep.MaxUS <= 0 {
		t.Errorf("analyze latency counters empty: %+v", ep)
	}
	if _, ok := stats.Endpoints["check"]; !ok {
		t.Errorf("check endpoint block missing")
	}
	if stats.UptimeUS <= 0 {
		t.Errorf("uptime not positive: %d", stats.UptimeUS)
	}
}

// TestBadRequests pins the 4xx paths: junk JSON, empty source, and a
// bogus level never reach the engine.
func TestBadRequests(t *testing.T) {
	srv, _ := newServer(t, service.Config{Workers: 1})

	r, err := http.Post(srv.URL+"/analyze", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("junk JSON: status %d, want 400", r.StatusCode)
	}

	code, _ := postJSON(t, srv.URL+"/analyze", service.AnalyzeRequest{Source: ""}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("empty source: status %d, want 400", code)
	}

	code, _ = postJSON(t, srv.URL+"/analyze", service.AnalyzeRequest{Source: "int main(){}", Level: 9}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("level 9: status %d, want 400", code)
	}

	g, err := http.Get(srv.URL + "/analyze")
	if err != nil {
		t.Fatalf("GET /analyze: %v", err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze: status %d, want 405", g.StatusCode)
	}
}
