// Package service implements shaped, the shape-analysis daemon: an
// HTTP/JSON front end over the analysis engine and the memory-safety
// checkers, sharing one persistent store across all requests
// (DESIGN.md §15).
//
// Endpoints:
//
//	POST /analyze  — one analysis.Run at a requested level; responds
//	                 with the outcome, engine stats and the canonical
//	                 per-statement RSRSG digests.
//	POST /check    — the internal/verdict memory-safety checkers;
//	                 responds with one verdict per class.
//	GET  /stats    — store counts, aggregate engine counters, and
//	                 per-endpoint request/latency/queue counters.
//	GET  /healthz  — liveness probe.
//
// Admission is a bounded worker pool: at most Config.Workers requests
// execute concurrently, at most Config.Queue more wait; past that the
// service answers 429 immediately. Per-request budgets (timeout, visit
// cap, node budget) are taken from the request but clamped by the
// server-side ceilings, so no client can pin a worker indefinitely; a
// run that exceeds its timeout answers 504 while the other workers
// keep serving.
package service

import (
	"encoding/json"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/store"
)

// Config tunes the service. The zero value of every field selects a
// sensible default; Store may be nil to run storeless.
type Config struct {
	// Store is the shared persistent analysis store backing every
	// request. All requests run over this one handle; the store's own
	// locking makes the concurrent accesses safe, and its flock makes
	// this process the file's single writer. Nil disables persistence.
	Store *store.Store
	// Workers bounds the requests executing concurrently (default
	// GOMAXPROCS).
	Workers int
	// Queue bounds the requests waiting for a worker (default
	// 2*Workers). A request arriving when all workers are busy and the
	// queue is full is rejected with 429.
	Queue int
	// DefaultTimeout applies to requests that send no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout is the ceiling on per-request timeouts (default 2m).
	// Requests asking for more are clamped down to it.
	MaxTimeout time.Duration
	// MaxVisits is the ceiling on per-request visit budgets (default
	// 200000, the engine default).
	MaxVisits int
	// MaxNodeBudget is the ceiling on per-request node budgets;
	// 0 leaves the budget unlimited unless the request sets one.
	MaxNodeBudget int
	// AnalysisWorkers is the engine worker count used inside each
	// request (default 1: request-level parallelism already fills the
	// machine, and digests are worker-count independent anyway).
	AnalysisWorkers int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Queue < 0 {
		out.Queue = 0
	} else if out.Queue == 0 {
		out.Queue = 2 * out.Workers
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 30 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 2 * time.Minute
	}
	if out.MaxVisits <= 0 {
		out.MaxVisits = 200000
	}
	if out.AnalysisWorkers <= 0 {
		out.AnalysisWorkers = 1
	}
	return out
}

// epStats is one endpoint's counter block. All fields are atomics so
// handlers update them without a lock.
type epStats struct {
	requests atomic.Int64 // admitted or not
	ok       atomic.Int64 // 2xx responses
	rejected atomic.Int64 // 429 queue-overflow rejections
	timeouts atomic.Int64 // 504 budget timeouts
	failures atomic.Int64 // 4xx/5xx other than 429/504
	queued   atomic.Int64 // admissions that had to wait for a worker
	totalUS  atomic.Int64 // summed handler latency (µs), admitted only
	maxUS    atomic.Int64 // peak handler latency (µs)
}

func (e *epStats) observe(d time.Duration) {
	us := d.Microseconds()
	e.totalUS.Add(us)
	for {
		cur := e.maxUS.Load()
		if us <= cur || e.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// aggStats accumulates analysis.Stats across every completed /analyze
// and /check run, for the /stats endpoint.
type aggStats struct {
	runs            atomic.Int64
	visits          atomic.Int64
	memoHits        atomic.Int64
	memoMisses      atomic.Int64
	reusedStmts     atomic.Int64
	graphsFrozen    atomic.Int64
	digestsComputed atomic.Int64
	internHits      atomic.Int64
	internMisses    atomic.Int64
}

func (a *aggStats) add(s *analysis.Stats) {
	a.runs.Add(1)
	a.visits.Add(int64(s.Visits))
	a.memoHits.Add(int64(s.MemoHits))
	a.memoMisses.Add(int64(s.MemoMisses))
	a.reusedStmts.Add(int64(s.ReusedStatements))
	a.graphsFrozen.Add(int64(s.Cache.GraphsFrozen))
	a.digestsComputed.Add(int64(s.Cache.DigestsComputed))
	a.internHits.Add(int64(s.Cache.InternHits))
	a.internMisses.Add(int64(s.Cache.InternMisses))
}

// Service is the daemon's http.Handler.
type Service struct {
	cfg   Config
	start time.Time
	mux   *http.ServeMux

	// sem holds one token per executing request; queue holds one per
	// waiting request. A request first claims a queue-or-run slot via
	// queue (full ⇒ 429), then blocks for a sem token.
	sem   chan struct{}
	queue chan struct{}

	inFlight  atomic.Int64
	queuedNow atomic.Int64

	analyzeEP epStats
	checkEP   epStats
	agg       aggStats
}

// New builds a Service from cfg (zero fields defaulted).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:   cfg,
		start: time.Now(),
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.Workers),
		queue: make(chan struct{}, cfg.Queue),
	}
	s.mux.HandleFunc("/analyze", s.handleAnalyze)
	s.mux.HandleFunc("/check", s.handleCheck)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return s
}

// Config returns the resolved (post-default) configuration.
func (s *Service) Config() Config { return s.cfg }

func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// admit claims a worker slot for the request, waiting in the bounded
// queue if all workers are busy. It returns a release func on success;
// on overflow or client abandonment it writes the error response and
// returns ok=false.
func (s *Service) admit(w http.ResponseWriter, r *http.Request, ep *epStats) (release func(), ok bool) {
	ep.requests.Add(1)
	// Fast path: a worker is free right now.
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return s.release, true
	default:
	}
	// All workers busy: claim a queue slot or reject.
	select {
	case s.queue <- struct{}{}:
	default:
		ep.rejected.Add(1)
		writeError(w, http.StatusTooManyRequests, "service: worker pool and queue full")
		return nil, false
	}
	ep.queued.Add(1)
	s.queuedNow.Add(1)
	defer func() {
		s.queuedNow.Add(-1)
		<-s.queue
	}()
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return s.release, true
	case <-r.Context().Done():
		ep.failures.Add(1)
		writeError(w, http.StatusServiceUnavailable, "service: client gave up while queued")
		return nil, false
	}
}

func (s *Service) release() {
	s.inFlight.Add(-1)
	<-s.sem
}

// EndpointStats is the JSON form of one endpoint's counters.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Rejected int64 `json:"rejected"`
	Timeouts int64 `json:"timeouts"`
	Failures int64 `json:"failures"`
	Queued   int64 `json:"queued"`
	TotalUS  int64 `json:"total_us"`
	MaxUS    int64 `json:"max_us"`
	MeanUS   int64 `json:"mean_us"`
}

func (e *epStats) snapshot() EndpointStats {
	out := EndpointStats{
		Requests: e.requests.Load(),
		OK:       e.ok.Load(),
		Rejected: e.rejected.Load(),
		Timeouts: e.timeouts.Load(),
		Failures: e.failures.Load(),
		Queued:   e.queued.Load(),
		TotalUS:  e.totalUS.Load(),
		MaxUS:    e.maxUS.Load(),
	}
	if served := out.OK + out.Timeouts + out.Failures; served > 0 {
		out.MeanUS = out.TotalUS / served
	}
	return out
}

// StoreStats is the JSON form of the shared store's state.
type StoreStats struct {
	Graphs    int  `json:"graphs"`
	Memos     int  `json:"memos"`
	Snapshots int  `json:"snapshots"`
	ReadOnly  bool `json:"read_only"`
}

// AnalysisTotals aggregates analysis.Stats across all completed runs.
type AnalysisTotals struct {
	Runs            int64 `json:"runs"`
	Visits          int64 `json:"visits"`
	MemoHits        int64 `json:"memo_hits"`
	MemoMisses      int64 `json:"memo_misses"`
	ReusedStmts     int64 `json:"reused_statements"`
	GraphsFrozen    int64 `json:"graphs_frozen"`
	DigestsComputed int64 `json:"digests_computed"`
	InternHits      int64 `json:"intern_hits"`
	InternMisses    int64 `json:"intern_misses"`
}

// StatsResponse is the GET /stats payload.
type StatsResponse struct {
	UptimeUS  int64                    `json:"uptime_us"`
	Workers   int                      `json:"workers"`
	Queue     int                      `json:"queue"`
	InFlight  int64                    `json:"in_flight"`
	QueuedNow int64                    `json:"queued_now"`
	Store     *StoreStats              `json:"store,omitempty"`
	Analysis  AnalysisTotals           `json:"analysis"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "service: GET only")
		return
	}
	resp := StatsResponse{
		UptimeUS:  time.Since(s.start).Microseconds(),
		Workers:   s.cfg.Workers,
		Queue:     s.cfg.Queue,
		InFlight:  s.inFlight.Load(),
		QueuedNow: s.queuedNow.Load(),
		Analysis: AnalysisTotals{
			Runs:            s.agg.runs.Load(),
			Visits:          s.agg.visits.Load(),
			MemoHits:        s.agg.memoHits.Load(),
			MemoMisses:      s.agg.memoMisses.Load(),
			ReusedStmts:     s.agg.reusedStmts.Load(),
			GraphsFrozen:    s.agg.graphsFrozen.Load(),
			DigestsComputed: s.agg.digestsComputed.Load(),
			InternHits:      s.agg.internHits.Load(),
			InternMisses:    s.agg.internMisses.Load(),
		},
		Endpoints: map[string]EndpointStats{
			"analyze": s.analyzeEP.snapshot(),
			"check":   s.checkEP.snapshot(),
		},
	}
	if st := s.cfg.Store; st != nil {
		g, m, sn := st.Counts()
		resp.Store = &StoreStats{Graphs: g, Memos: m, Snapshots: sn, ReadOnly: st.ReadOnly()}
	}
	writeJSON(w, http.StatusOK, resp)
}
