package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/verdict"
)

// maxBodyBytes bounds request bodies; mini-C sources are small.
const maxBodyBytes = 4 << 20

// AnalyzeRequest is the POST /analyze payload.
type AnalyzeRequest struct {
	// Name identifies the program in the store (snapshot warm-start and
	// edit-delta keying). Empty derives a stable name from the source
	// hash, so resubmitting identical source still warm-starts.
	Name string `json:"name,omitempty"`
	// Source is the mini-C program text.
	Source string `json:"source"`
	// Level is the analysis level 1..3 (default 1).
	Level int `json:"level,omitempty"`
	// TimeoutMS is the wall-clock budget; 0 means the server default,
	// and values above the server ceiling are clamped down to it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxVisits bounds statement transfers (0 = engine default);
	// clamped by the server ceiling.
	MaxVisits int `json:"max_visits,omitempty"`
	// NodeBudget bounds live abstract nodes (0 = server ceiling, or
	// unlimited when the server has none); clamped by the ceiling.
	NodeBudget int `json:"node_budget,omitempty"`
	// Digests asks for the full per-statement digest map in the
	// response (the fold over it is always returned).
	Digests bool `json:"digests,omitempty"`
}

// AnalyzeResponse is the POST /analyze payload on success (including
// the non-convergence and budget-exceeded outcomes, which are resource
// verdicts, not transport failures).
type AnalyzeResponse struct {
	Name    string `json:"name"`
	Level   string `json:"level"`
	Outcome string `json:"outcome"` // converged | no-convergence | budget-exceeded
	Error   string `json:"error,omitempty"`
	Visits  int    `json:"visits"`
	// DurationUS is the engine wall-clock, not the request latency.
	DurationUS int64 `json:"duration_us"`
	// ReusedStatements counts out-states restored from a store snapshot.
	ReusedStatements int `json:"reused_statements"`
	// ResultDigest folds every statement's RSRSG digest into one hex
	// digest: equal iff the whole result is bit-identical.
	ResultDigest string `json:"result_digest,omitempty"`
	// ExitDigest is the RSRSG digest at the function exit.
	ExitDigest string `json:"exit_digest,omitempty"`
	// StmtDigests maps statement ID to its RSRSG digest (with
	// AnalyzeRequest.Digests only).
	StmtDigests map[string]string `json:"stmt_digests,omitempty"`
	// SharedTallies mirrors analysis.Stats.SharedTallies.
	SharedTallies bool   `json:"shared_tallies"`
	CacheSummary  string `json:"cache_summary"`
	SchedSummary  string `json:"sched_summary"`
}

// CheckRequest is the POST /check payload.
type CheckRequest struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
	// TimeoutMS/MaxVisits/NodeBudget clamp exactly as in /analyze and
	// apply to every level of the progressive run.
	TimeoutMS  int64 `json:"timeout_ms,omitempty"`
	MaxVisits  int   `json:"max_visits,omitempty"`
	NodeBudget int   `json:"node_budget,omitempty"`
	// ConfirmRuns/ConfirmSeed tune the randomized alarm confirmation
	// (defaults 64 / 1).
	ConfirmRuns int   `json:"confirm_runs,omitempty"`
	ConfirmSeed int64 `json:"confirm_seed,omitempty"`
}

// CheckVerdict is one class's settled verdict.
type CheckVerdict struct {
	Class string `json:"class"`
	// Verdict is the corpus-header syntax: "safe@L2", "unsafe", ...
	Verdict string   `json:"verdict"`
	Status  string   `json:"status"`
	Level   string   `json:"level,omitempty"` // safe verdicts only
	Alarms  []string `json:"alarms,omitempty"`
}

// CheckResponse is the POST /check payload on success.
type CheckResponse struct {
	Name       string         `json:"name"`
	Verdicts   []CheckVerdict `json:"verdicts"`
	DurationUS int64          `json:"duration_us"`
	// Error is set when every level of the progressive run failed (the
	// verdicts are all unknown then).
	Error string `json:"error,omitempty"`
}

// decodeBody reads one JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "service: POST only")
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "service: reading body: "+err.Error())
		return false
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("service: body exceeds %d bytes", maxBodyBytes))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "service: decoding request: "+err.Error())
		return false
	}
	return true
}

// compileSource parses and lowers the request source, naming the
// program for store keying.
func compileSource(name, source string) (*ir.Program, error) {
	if source == "" {
		return nil, errors.New("empty source")
	}
	prog, err := verdict.Compile(source)
	if err != nil {
		return nil, err
	}
	if name == "" {
		sum := sha256.Sum256([]byte(source))
		name = "src-" + hex.EncodeToString(sum[:6])
	}
	prog.Name = name
	return prog, nil
}

// clampBudgets folds the request budgets and the server ceilings into
// engine options.
func (s *Service) clampBudgets(opts *analysis.Options, timeoutMS int64, maxVisits, nodeBudget int) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	opts.Timeout = timeout

	visits := maxVisits
	if visits <= 0 || visits > s.cfg.MaxVisits {
		visits = s.cfg.MaxVisits
	}
	opts.MaxVisits = visits

	budget := nodeBudget
	if max := s.cfg.MaxNodeBudget; max > 0 && (budget <= 0 || budget > max) {
		budget = max
	}
	if budget > 0 {
		opts.NodeBudget = budget
	}
}

// levelFromRequest validates the requested analysis level.
func levelFromRequest(lvl int) (rsg.Level, error) {
	switch lvl {
	case 0, 1:
		return rsg.L1, nil
	case 2:
		return rsg.L2, nil
	case 3:
		return rsg.L3, nil
	}
	return 0, fmt.Errorf("level %d out of range 1..3", lvl)
}

// resultDigests renders the per-statement digest map and its canonical
// fold. The fold hashes (id, digest) pairs in ascending statement-ID
// order, so two results agree iff every statement's RSRSG is
// bit-identical.
func resultDigests(res *analysis.Result) (fold string, stmts map[string]string, exit string) {
	ids := make([]int, 0, len(res.Out))
	for id := range res.Out {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h := sha256.New()
	stmts = make(map[string]string, len(ids))
	var buf [8]byte
	for _, id := range ids {
		d := res.Out[id].Digest()
		binary.BigEndian.PutUint64(buf[:], uint64(id))
		h.Write(buf[:])
		h.Write(d[:])
		stmts[strconv.Itoa(id)] = d.String()
	}
	sum := h.Sum(nil)
	fold = hex.EncodeToString(sum[:16])
	if ex := res.ExitSet(); ex != nil {
		exit = ex.Digest().String()
	}
	return fold, stmts, exit
}

func (s *Service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !decodeBody(w, r, &req) {
		s.analyzeEP.failures.Add(1)
		s.analyzeEP.requests.Add(1)
		return
	}
	level, err := levelFromRequest(req.Level)
	if err != nil {
		s.analyzeEP.failures.Add(1)
		s.analyzeEP.requests.Add(1)
		writeError(w, http.StatusBadRequest, "service: "+err.Error())
		return
	}
	release, ok := s.admit(w, r, &s.analyzeEP)
	if !ok {
		return
	}
	defer release()
	start := time.Now()

	// Run mutates the program (induction annotation, symbol
	// resolution), so every request compiles its own.
	prog, err := compileSource(req.Name, req.Source)
	if err != nil {
		s.analyzeEP.failures.Add(1)
		writeError(w, http.StatusBadRequest, "service: compile: "+err.Error())
		return
	}

	opts := analysis.Options{
		Level:   level,
		Workers: s.cfg.AnalysisWorkers,
		Store:   s.cfg.Store,
	}
	s.clampBudgets(&opts, req.TimeoutMS, req.MaxVisits, req.NodeBudget)

	res, runErr := analysis.Run(prog, opts)
	s.agg.add(&res.Stats)

	resp := AnalyzeResponse{
		Name:             prog.Name,
		Level:            level.String(),
		Outcome:          "converged",
		Visits:           res.Stats.Visits,
		DurationUS:       res.Stats.Duration.Microseconds(),
		ReusedStatements: res.Stats.ReusedStatements,
		SharedTallies:    res.Stats.SharedTallies,
		CacheSummary:     res.Stats.CacheSummary(),
		SchedSummary:     res.Stats.SchedSummary(),
	}
	switch {
	case runErr == nil:
	case errors.Is(runErr, analysis.ErrTimeout):
		s.analyzeEP.timeouts.Add(1)
		s.analyzeEP.observe(time.Since(start))
		writeError(w, http.StatusGatewayTimeout, "service: "+runErr.Error())
		return
	case errors.Is(runErr, analysis.ErrNoConvergence):
		resp.Outcome = "no-convergence"
		resp.Error = runErr.Error()
	case errors.Is(runErr, analysis.ErrBudgetExceeded):
		resp.Outcome = "budget-exceeded"
		resp.Error = runErr.Error()
	default:
		s.analyzeEP.failures.Add(1)
		s.analyzeEP.observe(time.Since(start))
		writeError(w, http.StatusInternalServerError, "service: "+runErr.Error())
		return
	}
	// A budget abort leaves the out-states mid-flight; digests are only
	// meaningful for converged and visit-bounded results.
	if resp.Outcome != "budget-exceeded" {
		fold, stmts, exit := resultDigests(res)
		resp.ResultDigest = fold
		resp.ExitDigest = exit
		if req.Digests {
			resp.StmtDigests = stmts
		}
	}
	s.analyzeEP.ok.Add(1)
	s.analyzeEP.observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req CheckRequest
	if !decodeBody(w, r, &req) {
		s.checkEP.failures.Add(1)
		s.checkEP.requests.Add(1)
		return
	}
	release, ok := s.admit(w, r, &s.checkEP)
	if !ok {
		return
	}
	defer release()
	start := time.Now()

	prog, err := compileSource(req.Name, req.Source)
	if err != nil {
		s.checkEP.failures.Add(1)
		writeError(w, http.StatusBadRequest, "service: compile: "+err.Error())
		return
	}

	vopts := verdict.Options{
		Analysis: analysis.Options{
			Workers: s.cfg.AnalysisWorkers,
			Store:   s.cfg.Store,
		},
		ConfirmRuns: req.ConfirmRuns,
		ConfirmSeed: req.ConfirmSeed,
	}
	s.clampBudgets(&vopts.Analysis, req.TimeoutMS, req.MaxVisits, req.NodeBudget)

	rep := verdict.Check(prog, vopts)
	if rep.Progressive != nil {
		for i := range rep.Progressive.Levels {
			if lr := &rep.Progressive.Levels[i]; lr.Result != nil {
				s.agg.add(&lr.Result.Stats)
			}
		}
	}
	if rep.Err != nil && errors.Is(rep.Err, analysis.ErrTimeout) {
		s.checkEP.timeouts.Add(1)
		s.checkEP.observe(time.Since(start))
		writeError(w, http.StatusGatewayTimeout, "service: "+rep.Err.Error())
		return
	}

	resp := CheckResponse{
		Name:       prog.Name,
		DurationUS: time.Since(start).Microseconds(),
	}
	if rep.Err != nil {
		resp.Error = rep.Err.Error()
	}
	for _, v := range rep.Verdicts {
		cv := CheckVerdict{
			Class:   v.Class.String(),
			Verdict: v.String(),
			Status:  v.Status.String(),
		}
		if v.Status == verdict.Safe {
			cv.Level = v.Level.String()
		}
		for _, a := range v.Alarms {
			cv.Alarms = append(cv.Alarms, a.String())
		}
		resp.Verdicts = append(resp.Verdicts, cv)
	}
	s.checkEP.ok.Add(1)
	s.checkEP.observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}
