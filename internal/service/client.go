package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client is a minimal client for a shaped daemon; the CLIs' -remote
// modes use it so the wire types stay defined in one place.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// HTTP overrides the transport; nil uses http.DefaultClient. The
	// daemon enforces the analysis timeout server-side, so the default
	// client's lack of one is fine for interactive use.
	HTTP *http.Client
}

// StatusError is a non-2xx daemon response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("shaped: HTTP %d: %s", e.Code, e.Msg)
}

// IsTimeout reports whether the daemon answered 504 — the request's
// analysis budget expired server-side.
func (e *StatusError) IsTimeout() bool { return e.Code == http.StatusGatewayTimeout }

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	cl := c.HTTP
	if cl == nil {
		cl = http.DefaultClient
	}
	r, err := cl.Post(strings.TrimRight(c.BaseURL, "/")+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK {
		var eb errorBody
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &StatusError{Code: r.StatusCode, Msg: msg}
	}
	return json.Unmarshal(data, resp)
}

// Analyze runs one POST /analyze round trip.
func (c *Client) Analyze(req AnalyzeRequest) (*AnalyzeResponse, error) {
	var resp AnalyzeResponse
	if err := c.post("/analyze", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Check runs one POST /check round trip.
func (c *Client) Check(req CheckRequest) (*CheckResponse, error) {
	var resp CheckResponse
	if err := c.post("/check", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches GET /stats.
func (c *Client) Stats() (*StatsResponse, error) {
	cl := c.HTTP
	if cl == nil {
		cl = http.DefaultClient
	}
	r, err := cl.Get(strings.TrimRight(c.BaseURL, "/") + "/stats")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if r.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: r.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	var resp StatsResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
