package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tinyProgram converges in a handful of visits.
const tinyProgram = `
struct cell { struct cell *nxt; };
void main(void) {
	struct cell *p;
	p = malloc(sizeof(struct cell));
	p->nxt = NULL;
	p = NULL;
}
`

func analyzeBody(t *testing.T) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(AnalyzeRequest{Name: "tiny", Source: tinyProgram})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return bytes.NewReader(b)
}

// TestAdmissionRejectsOnOverflow pins the 429 path deterministically:
// with one worker (whose token the test holds) and a zero queue, a
// request is rejected immediately without touching the engine.
func TestAdmissionRejectsOnOverflow(t *testing.T) {
	s := New(Config{Workers: 1, Queue: -1}) // -1 ⇒ queue capacity 0
	s.sem <- struct{}{}                     // occupy the only worker
	defer func() { <-s.sem }()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/analyze", analyzeBody(t))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "queue full") {
		t.Fatalf("unexpected 429 body: %s", rec.Body.String())
	}
	if got := s.analyzeEP.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if got := s.analyzeEP.requests.Load(); got != 1 {
		t.Fatalf("requests counter = %d, want 1", got)
	}
}

// TestAdmissionQueuesThenRuns pins the queue path: with the worker
// busy and one queue slot, a request waits, is counted as queued, and
// completes once the worker frees up.
func TestAdmissionQueuesThenRuns(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 1})
	s.sem <- struct{}{} // occupy the only worker

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/analyze", analyzeBody(t))
		s.ServeHTTP(rec, req)
		done <- rec
	}()

	// Wait until the request parks in the queue, then free the worker.
	deadline := time.Now().Add(5 * time.Second)
	for s.queuedNow.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// A second request overflows the single queue slot while the first
	// still waits.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/analyze", analyzeBody(t)))
	if rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", rec2.Code)
	}

	<-s.sem // release the worker; the queued request proceeds
	rec := <-done
	if rec.Code != http.StatusOK {
		t.Fatalf("queued request: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := s.analyzeEP.queued.Load(); got != 1 {
		t.Fatalf("queued counter = %d, want 1", got)
	}
	if got := s.analyzeEP.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}
