package service_test

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServiceSmoke is the end-to-end exercise behind `make
// service-smoke`: it builds the real shaped/shapec/shapecheck
// binaries, boots the daemon over a temp store, round-trips /analyze
// twice through `shapec -remote` (the second run must warm-start from
// the store), runs `shapecheck -remote` on a corpus task, and drains
// the daemon with SIGTERM expecting a clean exit.
func TestServiceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test builds and boots real binaries; skipped in -short")
	}
	dir := t.TempDir()

	bins := map[string]string{}
	for _, cmd := range []string{"shaped", "shapec", "shapecheck"} {
		bin := filepath.Join(dir, cmd)
		out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
		bins[cmd] = bin
	}

	// Pick a port; the tiny close-to-bind window is fine for a smoke
	// test on a loopback interface.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("probing for a port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	cacheDir := filepath.Join(dir, "cache")
	daemon := exec.Command(bins["shaped"], "-addr", addr, "-cache-dir", cacheDir, "-workers", "2")
	daemon.Stdout = os.Stderr
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatalf("starting shaped: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill()

	waitHealthy(t, base, exited)

	// Round 1: cold analysis via the remote client mode.
	out1 := runCmd(t, bins["shapec"], "-remote", base, "slist")
	if !strings.Contains(out1, "converged") {
		t.Fatalf("cold remote analyze did not converge:\n%s", out1)
	}
	digest1 := digestLine(t, out1)

	// Round 2: same program again — the daemon must warm-start from
	// its store and return the identical result digest.
	out2 := runCmd(t, bins["shapec"], "-remote", base, "slist")
	if !strings.Contains(out2, "converged") {
		t.Fatalf("warm remote analyze did not converge:\n%s", out2)
	}
	if d := digestLine(t, out2); d != digest1 {
		t.Fatalf("warm-start digest %s differs from cold digest %s", d, digest1)
	}
	if !warmStarted(out2) {
		t.Fatalf("second round reused no statements (no warm start):\n%s", out2)
	}

	// A corpus task through the remote checkers.
	task := filepath.Join("..", "verdict", "testdata", "corpus", "cycle_walk_safe.c")
	if _, err := os.Stat(task); err != nil {
		t.Fatalf("corpus task missing: %v", err)
	}
	out3 := runCmd(t, bins["shapecheck"], "-remote", base, task)
	if !strings.Contains(out3, "ok (remote)") {
		t.Fatalf("remote corpus check did not match its header:\n%s", out3)
	}

	// Graceful drain: SIGTERM, exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("shaped exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shaped did not drain within 30s of SIGTERM")
	}
}

func waitHealthy(t *testing.T, base string, exited <-chan error) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		select {
		case err := <-exited:
			t.Fatalf("shaped exited during startup: %v", err)
		default:
		}
		r, err := http.Get(base + "/healthz")
		if err == nil {
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("shaped never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// digestLine extracts the "result digest <hex>" suffix of shapec's
// remote summary line.
func digestLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "result digest "); i >= 0 {
			return strings.TrimSpace(line[i+len("result digest "):])
		}
	}
	t.Fatalf("no result digest in output:\n%s", out)
	return ""
}

// warmStarted reports a non-zero "N statements reused" figure.
func warmStarted(out string) bool {
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "statements reused"); i >= 0 {
			var n int
			fields := strings.Fields(line[:i])
			if len(fields) == 0 {
				return false
			}
			if _, err := fmt.Sscanf(fields[len(fields)-1], "%d", &n); err == nil {
				return n > 0
			}
		}
	}
	return false
}
