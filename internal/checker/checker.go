// Package checker implements client queries over analysis results: the
// data-structure properties a parallelizing pass would consume
// (Sect. 1 of the paper: "a subsequent analysis would detect whether or
// not certain sections of the code can be parallelized because they
// access independent data regions"). Its Goal types also drive the
// progressive driver's escalation decisions.
package checker

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/rsg"
)

// NoSharedSelector is the accuracy goal "no node of struct `Struct` is
// shared through selector `Sel` at the function exit". This is exactly
// the paper's Barnes-Hut criterion: at L1 the body selector of the
// octree leaves looks shared (several leaves might reference the same
// body), which is resolved at L2 (Sect. 5.1).
type NoSharedSelector struct {
	Struct string
	Sel    string
}

// Name implements Goal.
func (g NoSharedSelector) Name() string {
	return fmt.Sprintf("no-shsel(%s,%s)", g.Struct, g.Sel)
}

// Met implements Goal.
func (g NoSharedSelector) Met(res *analysis.Result) (bool, string) {
	return scanNodes(res, func(n *rsg.Node) (bool, string) {
		if n.Type == g.Struct && n.SharedBy(g.Sel) {
			return false, fmt.Sprintf("node %s is shared by %s", n, g.Sel)
		}
		return true, ""
	})
}

// NoShared is the goal "no node of struct `Struct` carries the SHARED
// attribute at the function exit".
type NoShared struct {
	Struct string
}

// Name implements Goal.
func (g NoShared) Name() string { return fmt.Sprintf("no-shared(%s)", g.Struct) }

// Met implements Goal.
func (g NoShared) Met(res *analysis.Result) (bool, string) {
	return scanNodes(res, func(n *rsg.Node) (bool, string) {
		if n.Type == g.Struct && n.Shared {
			return false, fmt.Sprintf("node %s is shared", n)
		}
		return true, ""
	})
}

// NonEmptyExit is the sanity goal "the function exit is reachable with
// at least one configuration".
type NonEmptyExit struct{}

// Name implements Goal.
func (NonEmptyExit) Name() string { return "non-empty-exit" }

// Met implements Goal.
func (NonEmptyExit) Met(res *analysis.Result) (bool, string) {
	s := res.ExitSet()
	if s == nil || s.Len() == 0 {
		return false, "no configuration reaches the exit"
	}
	return true, fmt.Sprintf("%d RSGs at exit", s.Len())
}

// UnsharedDuringLoop is the goal "within the loop whose header is at
// source line Line, no node of struct `Struct` both carries a non-empty
// TOUCH set and is shared through `Sel`" — the L3 criterion that the
// traversal of step (iii) of Barnes-Hut visits each octree node through
// exactly one live reference, enabling a parallel traversal. Below L3
// the goal fails by definition (TOUCH is not tracked, so the sharing
// introduced by the traversal stack cannot be discharged).
type UnsharedDuringLoop struct {
	Struct string
	Sel    string
	Line   int
}

// Name implements Goal.
func (g UnsharedDuringLoop) Name() string {
	return fmt.Sprintf("loop@%d-parallel(%s,%s)", g.Line, g.Struct, g.Sel)
}

// MinLevel implements analysis.LevelGated: the goal is defined only
// where TOUCH sets are tracked.
func (g UnsharedDuringLoop) MinLevel() rsg.Level { return rsg.L3 }

// Met implements Goal.
func (g UnsharedDuringLoop) Met(res *analysis.Result) (bool, string) {
	if !res.Level.UseTouch() {
		return false, "TOUCH tracking requires L3"
	}
	var loopID = -1
	for _, l := range res.Program.Loops {
		if l.Line == g.Line {
			loopID = l.ID
			break
		}
	}
	if loopID < 0 {
		return false, fmt.Sprintf("no loop at line %d", g.Line)
	}
	for id := range res.Program.Loops[loopID].Body {
		set := res.Out[id]
		if set == nil {
			continue
		}
		for _, gr := range set.Graphs() {
			for _, n := range gr.Nodes() {
				if n.Type == g.Struct && !n.Touch.Empty() && n.SharedBy(g.Sel) {
					return false, fmt.Sprintf("stmt %d: touched node %s shared by %s", id, n, g.Sel)
				}
			}
		}
	}
	return true, "visited nodes never shared inside the loop"
}

// scanNodes applies a predicate to every node of every exit RSG.
func scanNodes(res *analysis.Result, f func(*rsg.Node) (bool, string)) (bool, string) {
	s := res.ExitSet()
	if s == nil {
		return false, "no exit state"
	}
	for _, g := range s.Graphs() {
		for _, n := range g.Nodes() {
			if ok, detail := f(n); !ok {
				return false, detail
			}
		}
	}
	return true, "holds in all exit RSGs"
}

// TypeSummary describes the abstract state of one struct type at the
// function exit.
type TypeSummary struct {
	Struct     string
	Nodes      int
	Summaries  int
	Shared     int
	SharedSels []string
}

// Report summarizes the exit RSRSG per struct type.
func Report(res *analysis.Result) []TypeSummary {
	byType := make(map[string]*TypeSummary)
	shsel := make(map[string]map[string]struct{})
	s := res.ExitSet()
	if s == nil {
		return nil
	}
	for _, g := range s.Graphs() {
		for _, n := range g.Nodes() {
			ts := byType[n.Type]
			if ts == nil {
				ts = &TypeSummary{Struct: n.Type}
				byType[n.Type] = ts
				shsel[n.Type] = make(map[string]struct{})
			}
			ts.Nodes++
			if !n.Singleton {
				ts.Summaries++
			}
			if n.Shared {
				ts.Shared++
			}
			for _, sel := range n.ShSel.Sorted() {
				shsel[n.Type][sel] = struct{}{}
			}
		}
	}
	var out []TypeSummary
	for typ, ts := range byType {
		for sel := range shsel[typ] {
			ts.SharedSels = append(ts.SharedSels, sel)
		}
		sort.Strings(ts.SharedSels)
		out = append(out, *ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Struct < out[j].Struct })
	return out
}

// FormatReport renders the type summaries as an aligned table.
func FormatReport(summaries []TypeSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %6s %10s %7s %s\n", "struct", "nodes", "summaries", "shared", "shared-selectors")
	for _, ts := range summaries {
		fmt.Fprintf(&b, "%-16s %6d %10d %7d %s\n",
			ts.Struct, ts.Nodes, ts.Summaries, ts.Shared, strings.Join(ts.SharedSels, ","))
	}
	return b.String()
}
