package checker

import (
	"strings"
	"testing"

	"repro/internal/rsg"
)

const traverseSrc = `
struct node { int v; struct node *nxt; };
void main(void) {
    struct node *h;
    struct node *p;
    h = malloc(sizeof(struct node));
    h->nxt = NULL;
    p = h;
    while (build) {
        p->nxt = malloc(sizeof(struct node));
        p = p->nxt;
        p->nxt = NULL;
    }
    p = h;
    while (p != NULL) {
        p = p->nxt;
    }
}`

func TestAnalyzeLoopsListTraversal(t *testing.T) {
	res := analyze(t, traverseSrc, rsg.L1)
	reports := AnalyzeLoops(res)
	if len(reports) != 2 {
		t.Fatalf("got %d loop reports, want 2", len(reports))
	}
	build, trav := reports[0], reports[1]

	if build.Parallelizable {
		t.Error("the build loop stores pointers and must not be judged parallelizable")
	}
	if !build.WritesHeap {
		t.Error("the build loop stores pointers")
	}

	if !trav.Traversal || len(trav.Induction) == 0 {
		t.Errorf("the second loop traverses via p: %+v", trav)
	}
	if trav.WritesHeap {
		t.Error("the traversal loop performs no pointer stores")
	}
	if !trav.Parallelizable {
		t.Errorf("an unshared list traversal is parallelizable: %+v", trav)
	}
}

const sharedTraverseSrc = `
struct node { int v; struct node *nxt; struct node *other; };
void main(void) {
    struct node *h;
    struct node *p;
    struct node *x;
    h = malloc(sizeof(struct node));
    h->nxt = NULL;
    x = malloc(sizeof(struct node));
    h->other = x;
    p = h;
    while (build) {
        p->nxt = malloc(sizeof(struct node));
        p = p->nxt;
        p->nxt = NULL;
        p->other = x;
    }
    p = h;
    while (p != NULL) {
        p = p->nxt;
    }
}`

func TestAnalyzeLoopsSharedStructure(t *testing.T) {
	res := analyze(t, sharedTraverseSrc, rsg.L1)
	reports := AnalyzeLoops(res)
	if len(reports) != 2 {
		t.Fatalf("got %d loop reports, want 2", len(reports))
	}
	trav := reports[1]
	if trav.Parallelizable {
		t.Errorf("every element shares x through `other`; traversal must not be judged parallelizable: %+v", trav)
	}
	if len(trav.SharedTypes) == 0 {
		t.Error("shared types must be reported")
	}
	txt := FormatLoopReports(reports)
	if !strings.Contains(txt, "node") {
		t.Errorf("report rendering:\n%s", txt)
	}
}
