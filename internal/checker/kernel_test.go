// Kernel-level goal coverage: the golden digests bound matvec and lu
// at 300 visits, so the NoShared/NoSharedSelector goals had never been
// evaluated on a converged exit state of the paper's sparse kernels.
// (External test package: benchprog imports checker.)
package checker_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/rsg"
)

func compileKernel(t *testing.T, name string) *ir.Program {
	t.Helper()
	k := benchprog.ByName(name)
	if k == nil {
		t.Fatalf("no kernel %q", name)
	}
	prog, err := k.Compile()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return prog
}

// TestMatVecGoalsAtL1 runs the sparse matrix-vector kernel to its full
// L1 fixed point and checks every declared goal, matching the paper's
// claim that S.Mat-Vec is accurately analyzed at level L1.
func TestMatVecGoalsAtL1(t *testing.T) {
	t.Parallel()
	prog := compileKernel(t, "matvec")
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range benchprog.ByName("matvec").Goals {
		ok, detail := g.Met(res)
		if !ok {
			t.Errorf("matvec: %s failed at L1: %s", g.Name(), detail)
		}
	}
}

// TestLUGoalsAtL1 does the same for the LU factorization kernel — the
// heaviest destructive-update mix in the suite, also reported accurate
// at L1. The full fixed point takes ~20s, so -short skips it.
func TestLUGoalsAtL1(t *testing.T) {
	if testing.Short() {
		t.Skip("full LU fixed point is slow; run without -short")
	}
	t.Parallel()
	prog := compileKernel(t, "lu")
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range benchprog.ByName("lu").Goals {
		ok, detail := g.Met(res)
		if !ok {
			t.Errorf("lu: %s failed at L1: %s", g.Name(), detail)
		}
	}
}

// TestMatVecLoopGoalAtL3 points the TOUCH-based loop goal at every
// loop of the matvec kernel: the traversals visit each cell through
// exactly one live reference, so the goal must hold at L3 on all of
// them (and stay gated below L3 via LevelGated).
func TestMatVecLoopGoalAtL3(t *testing.T) {
	t.Parallel()
	prog := compileKernel(t, "matvec")
	if len(prog.Loops) == 0 {
		t.Fatal("matvec has no loops")
	}
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L3})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range prog.Loops {
		g := checker.UnsharedDuringLoop{Struct: "cell", Sel: "nxt", Line: l.Line}
		var gated analysis.LevelGated = g
		if gated.MinLevel() != rsg.L3 {
			t.Fatalf("MinLevel = %v, want L3", gated.MinLevel())
		}
		ok, detail := g.Met(res)
		if !ok {
			t.Errorf("matvec: %s failed at L3: %s", g.Name(), detail)
		}
	}
}
