package checker

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
)

func analyze(t *testing.T, src string, lvl rsg.Level) *analysis.Result {
	t.Helper()
	f, err := cminic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.LowerMain(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	res, err := analysis.Run(p, analysis.Options{Level: lvl})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

const listSrc = `
struct node { int v; struct node *nxt; };
void main(void) {
    struct node *h;
    struct node *p;
    h = malloc(sizeof(struct node));
    h->nxt = NULL;
    p = h;
    while (c) {
        p->nxt = malloc(sizeof(struct node));
        p = p->nxt;
        p->nxt = NULL;
    }
}`

const sharedSrc = `
struct node { int v; struct node *nxt; };
void main(void) {
    struct node *a;
    struct node *b;
    struct node *t;
    a = malloc(sizeof(struct node));
    b = malloc(sizeof(struct node));
    t = malloc(sizeof(struct node));
    a->nxt = t;
    b->nxt = t;
}`

func TestNoSharedGoals(t *testing.T) {
	res := analyze(t, listSrc, rsg.L1)
	if ok, d := (NoShared{Struct: "node"}).Met(res); !ok {
		t.Errorf("list must be unshared: %s", d)
	}
	if ok, _ := (NoSharedSelector{Struct: "node", Sel: "nxt"}).Met(res); !ok {
		t.Error("list must be unshared by nxt")
	}

	res = analyze(t, sharedSrc, rsg.L1)
	if ok, _ := (NoShared{Struct: "node"}).Met(res); ok {
		t.Error("t is referenced twice; NoShared must fail")
	}
	if ok, _ := (NoSharedSelector{Struct: "node", Sel: "nxt"}).Met(res); ok {
		t.Error("t is referenced twice through nxt; NoSharedSelector must fail")
	}
}

func TestNonEmptyExit(t *testing.T) {
	res := analyze(t, listSrc, rsg.L1)
	if ok, _ := (NonEmptyExit{}).Met(res); !ok {
		t.Error("exit must be reachable")
	}
	// A guaranteed NULL dereference leaves no exit configuration.
	res = analyze(t, `
struct node { int v; struct node *nxt; };
void main(void) {
    struct node *p;
    p = NULL;
    p->nxt = NULL;
}`, rsg.L1)
	if ok, _ := (NonEmptyExit{}).Met(res); ok {
		t.Error("unavoidable NULL dereference must empty the exit state")
	}
}

func TestUnsharedDuringLoopRequiresL3(t *testing.T) {
	g := UnsharedDuringLoop{Struct: "node", Sel: "nxt", Line: 9}
	res := analyze(t, listSrc, rsg.L2)
	if ok, d := g.Met(res); ok {
		t.Errorf("below L3 the goal must fail: %s", d)
	}
	res = analyze(t, listSrc, rsg.L3)
	ok, d := g.Met(res)
	if !ok {
		t.Errorf("L3 list loop: %s", d)
	}
}

func TestUnsharedDuringLoopUnknownLine(t *testing.T) {
	res := analyze(t, listSrc, rsg.L3)
	g := UnsharedDuringLoop{Struct: "node", Sel: "nxt", Line: 999}
	if ok, d := g.Met(res); ok || !strings.Contains(d, "no loop") {
		t.Errorf("unknown line must fail with a clear message, got %v %q", ok, d)
	}
}

func TestReportSummaries(t *testing.T) {
	res := analyze(t, sharedSrc, rsg.L1)
	sums := Report(res)
	if len(sums) != 1 || sums[0].Struct != "node" {
		t.Fatalf("summaries = %+v", sums)
	}
	s := sums[0]
	if s.Shared == 0 {
		t.Error("shared node not reported")
	}
	if len(s.SharedSels) != 1 || s.SharedSels[0] != "nxt" {
		t.Errorf("shared selectors = %v", s.SharedSels)
	}
	txt := FormatReport(sums)
	if !strings.Contains(txt, "node") || !strings.Contains(txt, "nxt") {
		t.Errorf("formatted report incomplete:\n%s", txt)
	}
}

func TestGoalNames(t *testing.T) {
	names := []string{
		NoSharedSelector{Struct: "a", Sel: "b"}.Name(),
		NoShared{Struct: "a"}.Name(),
		NonEmptyExit{}.Name(),
		UnsharedDuringLoop{Struct: "a", Sel: "b", Line: 3}.Name(),
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("goal names must be unique and non-empty: %v", names)
		}
		seen[n] = true
	}
}
