package checker

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// LoopReport is the dependence summary of one loop: the judgement a
// parallelizing pass (the "subsequent analysis" of the paper's
// Sect. 1) would consume.
type LoopReport struct {
	// Loop identifies the loop (source line of its statement).
	LoopID int
	Line   int
	// Traversal reports whether the loop advances induction pvars over
	// a recursive structure (a candidate for parallel iteration).
	Traversal bool
	// Induction lists the loop's induction pvars.
	Induction []string
	// WritesHeap reports whether the body performs pointer stores.
	WritesHeap bool
	// SharedTypes lists struct types whose nodes carry SHARED inside
	// the loop body — potential cross-iteration dependences.
	SharedTypes []string
	// Parallelizable is the summary verdict: a traversal loop that
	// performs no pointer stores and whose visited node types are never
	// shared cannot have two iterations reaching the same location, so
	// iterations access independent regions. (Scalar updates of the
	// visited cells — the Barnes-Hut force accumulation — do not block
	// the verdict; destructive pointer updates do.)
	Parallelizable bool
}

// AnalyzeLoops produces a LoopReport for every loop of the analyzed
// program, from the per-statement RSRSGs of res.
func AnalyzeLoops(res *analysis.Result) []LoopReport {
	prog := res.Program
	var out []LoopReport
	for _, loop := range prog.Loops {
		rep := LoopReport{LoopID: loop.ID, Line: loop.Line}
		for p := range loop.Induction {
			rep.Induction = append(rep.Induction, p)
		}
		sort.Strings(rep.Induction)
		rep.Traversal = len(rep.Induction) > 0

		sharedTypes := map[string]struct{}{}
		visitedTypes := map[string]struct{}{}
		for id := range loop.Body {
			s := prog.Stmt(id)
			switch s.Op {
			case ir.OpSelNil, ir.OpSelCopy:
				rep.WritesHeap = true
			}
			set := res.Out[id]
			if set == nil {
				continue
			}
			for _, g := range set.Graphs() {
				for _, n := range g.Nodes() {
					// Types the loop's induction pvars actually visit.
					for _, p := range rep.Induction {
						if t := g.PvarTarget(p); t != nil && t.ID == n.ID {
							visitedTypes[n.Type] = struct{}{}
						}
					}
					if n.Shared || !n.ShSel.Empty() {
						sharedTypes[n.Type] = struct{}{}
					}
				}
			}
		}
		for t := range sharedTypes {
			rep.SharedTypes = append(rep.SharedTypes, t)
		}
		sort.Strings(rep.SharedTypes)

		// Verdict: a pointer-store-free traversal whose visited types
		// never appear shared.
		rep.Parallelizable = rep.Traversal && !rep.WritesHeap
		for t := range visitedTypes {
			if _, shared := sharedTypes[t]; shared {
				rep.Parallelizable = false
			}
		}
		if !rep.Traversal {
			rep.Parallelizable = false
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LoopID < out[j].LoopID })
	return out
}

// FormatLoopReports renders the loop table.
func FormatLoopReports(reports []LoopReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %-10s %-12s %-8s %-20s %s\n",
		"loop", "line", "traversal", "induction", "writes", "shared-types", "parallelizable")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-6d %-6d %-10v %-12s %-8v %-20s %v\n",
			r.LoopID, r.Line, r.Traversal, strings.Join(r.Induction, ","),
			r.WritesHeap, strings.Join(r.SharedTypes, ","), r.Parallelizable)
	}
	return b.String()
}
