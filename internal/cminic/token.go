// Package cminic implements the frontend for the C subset the shape
// analyzer consumes: a lexer, a recursive-descent parser, and the type
// table of struct declarations.
//
// The subset covers what the paper's benchmark kernels need: struct
// declarations with pointer and scalar fields, one or more function
// bodies with local declarations, assignments over pointer access
// paths, malloc/free, NULL, if/else, while, for, break, continue and
// return, plus opaque scalar expressions. Function calls other than
// malloc/free are rejected — the paper's compiler has no
// interprocedural analysis either (Sect. 6), and its authors manually
// inlined and de-recursified the Barnes-Hut traversals; our kernels
// arrive already in that form.
package cminic

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	STRING
	CHARLIT
	PUNCT   // one of the operator/punctuation strings below
	KEYWORD // one of the keyword strings below
)

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of file"
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case NUMBER:
		return fmt.Sprintf("number %q", t.Text)
	case STRING:
		return fmt.Sprintf("string %s", t.Text)
	case CHARLIT:
		return fmt.Sprintf("char %s", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Is reports whether the token is the given punctuation or keyword.
func (t Token) Is(text string) bool {
	return (t.Kind == PUNCT || t.Kind == KEYWORD) && t.Text == text
}

var keywords = map[string]bool{
	"struct": true, "int": true, "void": true, "char": true,
	"long": true, "short": true, "float": true, "double": true,
	"unsigned": true, "signed": true, "const": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"break": true, "continue": true, "return": true,
	"sizeof": true, "typedef": true,
	"NULL": true, "malloc": true, "calloc": true, "free": true,
}

// punct2 and punct1 list the multi- and single-character operators, in
// the order the lexer tries them.
var punct2 = []string{"->", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/="}

const punct1 = "{}()[];,.*=<>!&|+-/%^~?:"

// Error is a frontend diagnostic with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
