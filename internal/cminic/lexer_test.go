package cminic

import "testing"

func kinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasicTokens(t *testing.T) {
	toks := kinds(t, "struct node { int v; struct node *nxt; };")
	want := []struct {
		kind Kind
		text string
	}{
		{KEYWORD, "struct"}, {IDENT, "node"}, {PUNCT, "{"},
		{KEYWORD, "int"}, {IDENT, "v"}, {PUNCT, ";"},
		{KEYWORD, "struct"}, {IDENT, "node"}, {PUNCT, "*"}, {IDENT, "nxt"}, {PUNCT, ";"},
		{PUNCT, "}"}, {PUNCT, ";"}, {EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d: got (%v,%q), want (%v,%q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexArrowVsMinus(t *testing.T) {
	toks := kinds(t, "a->b - c")
	if !toks[1].Is("->") {
		t.Errorf("expected ->, got %v", toks[1])
	}
	if !toks[3].Is("-") {
		t.Errorf("expected -, got %v", toks[3])
	}
}

func TestLexComments(t *testing.T) {
	toks := kinds(t, "a /* inline */ b // to end\nc")
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("comments not stripped: %v", toks)
	}
}

func TestLexPreprocessorSkipped(t *testing.T) {
	toks := kinds(t, "#include <stdio.h>\nx")
	if len(toks) != 2 || toks[0].Text != "x" {
		t.Fatalf("preprocessor line not skipped: %v", toks)
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks := kinds(t, "a\nb\n  c")
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 {
		t.Errorf("wrong lines: %v", toks)
	}
	if toks[2].Col != 3 {
		t.Errorf("wrong column for c: %d", toks[2].Col)
	}
}

func TestLexStringAndCharLiterals(t *testing.T) {
	toks := kinds(t, `x = "he\"llo"; y = 'a';`)
	found := 0
	for _, tok := range toks {
		if tok.Kind == STRING || tok.Kind == CHARLIT {
			found++
		}
	}
	if found != 2 {
		t.Errorf("expected 2 literals, got %d: %v", found, toks)
	}
}

func TestLexNumbers(t *testing.T) {
	toks := kinds(t, "i = 42 + 3.14;")
	nums := 0
	for _, tok := range toks {
		if tok.Kind == NUMBER {
			nums++
		}
	}
	if nums != 2 {
		t.Errorf("expected 2 numbers, got %d", nums)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Lex("a /* never closed"); err == nil {
		t.Error("expected error for unterminated comment")
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := Lex(`a = "oops`); err == nil {
		t.Error("expected error for unterminated string")
	}
}

func TestLexUnexpectedCharacter(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("expected error for @")
	}
}
