package cminic

import "strings"

// Lex tokenizes the source, stripping // and /* */ comments and
// #-preprocessor lines. It returns the token stream terminated by an
// EOF token.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			// Preprocessor line: skip to end of line.
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errf(startLine, startCol, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := IDENT
		if keywords[text] {
			kind = KEYWORD
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && (isIdentCont(l.peek()) || l.peek() == '.') {
			l.advance()
		}
		return Token{Kind: NUMBER, Text: l.src[start:l.pos], Line: line, Col: col}, nil

	case c == '"':
		start := l.pos
		l.advance()
		for {
			if l.pos >= len(l.src) {
				return Token{}, errf(line, col, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '\\' && l.pos < len(l.src) {
				l.advance()
			} else if ch == '"' {
				break
			}
		}
		return Token{Kind: STRING, Text: l.src[start:l.pos], Line: line, Col: col}, nil

	case c == '\'':
		start := l.pos
		l.advance()
		for {
			if l.pos >= len(l.src) {
				return Token{}, errf(line, col, "unterminated character literal")
			}
			ch := l.advance()
			if ch == '\\' && l.pos < len(l.src) {
				l.advance()
			} else if ch == '\'' {
				break
			}
		}
		return Token{Kind: CHARLIT, Text: l.src[start:l.pos], Line: line, Col: col}, nil
	}

	for _, p := range punct2 {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance()
			l.advance()
			return Token{Kind: PUNCT, Text: p, Line: line, Col: col}, nil
		}
	}
	if strings.IndexByte(punct1, c) >= 0 {
		l.advance()
		return Token{Kind: PUNCT, Text: string(c), Line: line, Col: col}, nil
	}
	return Token{}, errf(line, col, "unexpected character %q", string(c))
}
