package cminic

import "strings"

// Parse lexes and parses a translation unit of the supported C subset.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, file: &File{Types: make(map[string]*StructDecl)}}
	p.ptrVars = make(map[string]string)
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

type parser struct {
	toks []Token
	pos  int
	file *File
	// ptrVars maps declared pointer-variable names to their pointee
	// struct; globals and every function's locals share the map (the
	// analysis is per-function; the kernels do not reuse names with
	// conflicting types).
	ptrVars map[string]string
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) la(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(text string) bool {
	if p.cur().Is(text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	t := p.cur()
	return errf(t.Line, t.Col, "expected %q, found %s", text, t)
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != IDENT {
		return t, errf(t.Line, t.Col, "expected identifier, found %s", t)
	}
	p.next()
	return t, nil
}

var scalarTypeKeywords = map[string]bool{
	"int": true, "char": true, "long": true, "short": true,
	"float": true, "double": true, "unsigned": true, "signed": true,
	"const": true,
}

func (p *parser) parseFile() error {
	for p.cur().Kind != EOF {
		t := p.cur()
		switch {
		case t.Is("struct") && p.la(2).Is("{"):
			if err := p.parseStructDecl(); err != nil {
				return err
			}
		case t.Is("typedef"):
			if err := p.parseTypedef(); err != nil {
				return err
			}
		case t.Is("void") || t.Is("int"):
			// Function definition or global scalar declaration.
			if p.la(1).Kind == IDENT && p.la(2).Is("(") {
				if err := p.parseFunc(); err != nil {
					return err
				}
			} else {
				if _, err := p.parseDeclStmts(); err != nil {
					return err
				}
			}
		case t.Is("struct"):
			// Global pointer declaration: struct T *x;
			if _, err := p.parseDeclStmts(); err != nil {
				return err
			}
		default:
			return errf(t.Line, t.Col, "unexpected %s at top level", t)
		}
	}
	if len(p.file.Funcs) == 0 {
		return errf(1, 1, "no function definition found")
	}
	p.file.PtrVars = p.PtrVars()
	return nil
}

func (p *parser) parseTypedef() error {
	start := p.next() // typedef
	if !p.cur().Is("struct") {
		return errf(start.Line, start.Col, "only `typedef struct` is supported")
	}
	if err := p.parseStructBody(); err != nil {
		return err
	}
	// `typedef struct X { ... } Y;` — the alias name is ignored; the
	// kernels reference `struct X` directly.
	if p.cur().Kind == IDENT {
		p.next()
	}
	return p.expect(";")
}

// parseStructDecl parses `struct Name { fields } ;`.
func (p *parser) parseStructDecl() error {
	if err := p.parseStructBody(); err != nil {
		return err
	}
	return p.expect(";")
}

func (p *parser) parseStructBody() error {
	if err := p.expect("struct"); err != nil {
		return err
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	decl := &StructDecl{Name: nameTok.Text, Line: nameTok.Line}
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.cur().Is("}") {
		if p.cur().Kind == EOF {
			return errf(nameTok.Line, nameTok.Col, "unterminated struct %s", nameTok.Text)
		}
		if err := p.parseFieldDecl(decl); err != nil {
			return err
		}
	}
	p.next() // }
	if _, dup := p.file.Types[decl.Name]; dup {
		return errf(nameTok.Line, nameTok.Col, "struct %s redeclared", decl.Name)
	}
	p.file.Structs = append(p.file.Structs, decl)
	p.file.Types[decl.Name] = decl
	return nil
}

// parseFieldDecl parses one member declaration inside a struct body.
func (p *parser) parseFieldDecl(decl *StructDecl) error {
	t := p.cur()
	pointee := ""
	switch {
	case t.Is("struct"):
		p.next()
		nt, err := p.expectIdent()
		if err != nil {
			return err
		}
		pointee = nt.Text
	case t.Kind == KEYWORD && scalarTypeKeywords[t.Text]:
		for p.cur().Kind == KEYWORD && scalarTypeKeywords[p.cur().Text] {
			p.next()
		}
	default:
		return errf(t.Line, t.Col, "unsupported struct member starting with %s", t)
	}

	for {
		stars := 0
		for p.accept("*") {
			stars++
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return err
		}
		fieldPointee := ""
		if pointee != "" {
			if stars != 1 {
				return errf(nameTok.Line, nameTok.Col,
					"field %s: only single-level struct pointers are supported", nameTok.Text)
			}
			fieldPointee = pointee
		} else if stars > 0 {
			// Pointer to scalar: treated as opaque scalar data.
			fieldPointee = ""
		}
		// Array suffix: scalar payload, size ignored.
		for p.accept("[") {
			for !p.cur().Is("]") && p.cur().Kind != EOF {
				p.next()
			}
			if err := p.expect("]"); err != nil {
				return err
			}
			if fieldPointee != "" {
				return errf(nameTok.Line, nameTok.Col,
					"field %s: arrays of struct pointers are not supported", nameTok.Text)
			}
		}
		decl.Fields = append(decl.Fields, &Field{
			Name: nameTok.Text, PointsTo: fieldPointee, Line: nameTok.Line,
		})
		if !p.accept(",") {
			break
		}
	}
	return p.expect(";")
}

func (p *parser) parseFunc() error {
	p.next() // return type keyword
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	p.accept("void")
	if err := p.expect(")"); err != nil {
		t := p.cur()
		return errf(t.Line, t.Col,
			"function %s: parameters are not supported (the analysis is intraprocedural)", nameTok.Text)
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	p.file.Funcs = append(p.file.Funcs, &FuncDecl{
		Name: nameTok.Text, Body: body, Line: nameTok.Line,
	})
	return nil
}

func (p *parser) parseBlock() (*Block, error) {
	open := p.cur()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	blk := &Block{Line: open.Line}
	for !p.cur().Is("}") {
		if p.cur().Kind == EOF {
			return nil, errf(open.Line, open.Col, "unterminated block")
		}
		stmts, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, stmts...)
	}
	p.next() // }
	return blk, nil
}

// parseStmt parses one statement; declarations with multiple
// declarators expand into several DeclStmts, hence the slice.
func (p *parser) parseStmt() ([]Stmt, error) {
	t := p.cur()
	switch {
	case t.Is(";"):
		p.next()
		return []Stmt{&EmptyStmt{Line: t.Line}}, nil
	case t.Is("{"):
		blk, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return []Stmt{blk}, nil
	case t.Is("struct") || (t.Kind == KEYWORD && scalarTypeKeywords[t.Text]):
		return p.parseDeclStmts()
	case t.Is("if"):
		s, err := p.parseIf()
		return wrap(s), err
	case t.Is("while"):
		s, err := p.parseWhile()
		return wrap(s), err
	case t.Is("do"):
		s, err := p.parseDoWhile()
		return wrap(s), err
	case t.Is("for"):
		s, err := p.parseFor()
		return wrap(s), err
	case t.Is("break"):
		p.next()
		return []Stmt{&BreakStmt{Line: t.Line}}, p.expect(";")
	case t.Is("continue"):
		p.next()
		return []Stmt{&ContinueStmt{Line: t.Line}}, p.expect(";")
	case t.Is("return"):
		p.next()
		p.skipToSemi()
		return []Stmt{&ReturnStmt{Line: t.Line}}, p.expect(";")
	case t.Is("free"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return []Stmt{&FreeStmt{Arg: path, Line: t.Line}}, p.expect(";")
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return []Stmt{s}, nil
	}
}

func wrap(s Stmt) []Stmt {
	if s == nil {
		return nil
	}
	return []Stmt{s}
}

// parseDeclStmts parses a local or global declaration line.
func (p *parser) parseDeclStmts() ([]Stmt, error) {
	t := p.cur()
	pointee := ""
	if t.Is("struct") {
		p.next()
		nt, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		pointee = nt.Text
	} else {
		for p.cur().Kind == KEYWORD && scalarTypeKeywords[p.cur().Text] {
			p.next()
		}
	}

	var out []Stmt
	for {
		stars := 0
		for p.accept("*") {
			stars++
		}
		nameTok, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		declPointee := ""
		if pointee != "" {
			if stars != 1 {
				return nil, errf(nameTok.Line, nameTok.Col,
					"%s: only single-level struct pointers are supported", nameTok.Text)
			}
			declPointee = pointee
		}
		for p.accept("[") { // scalar arrays
			for !p.cur().Is("]") && p.cur().Kind != EOF {
				p.next()
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			if declPointee != "" {
				return nil, errf(nameTok.Line, nameTok.Col,
					"%s: arrays of struct pointers are not supported", nameTok.Text)
			}
		}
		decl := &DeclStmt{Name: nameTok.Text, PointsTo: declPointee, Line: nameTok.Line}
		if declPointee != "" {
			if prev, ok := p.ptrVars[nameTok.Text]; ok && prev != declPointee {
				return nil, errf(nameTok.Line, nameTok.Col,
					"%s redeclared with a different pointee (%s vs %s)", nameTok.Text, prev, declPointee)
			}
			p.ptrVars[nameTok.Text] = declPointee
		}
		if p.accept("=") {
			init, err := p.parseRHS(declPointee != "")
			if err != nil {
				return nil, err
			}
			decl.Init = init
		}
		out = append(out, decl)
		if !p.accept(",") {
			break
		}
	}
	return out, p.expect(";")
}

// parseSimpleStmt parses an assignment or an opaque expression
// statement terminated by ';'.
func (p *parser) parseSimpleStmt() (Stmt, error) {
	start := p.cur()
	if start.Kind != IDENT {
		// Unknown construct: consume as opaque.
		p.skipToSemi()
		return &EmptyStmt{Line: start.Line}, p.expect(";")
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch {
	case t.Is("="):
		p.next()
		isPtr := p.pathIsPointer(path)
		rhs, err := p.parseRHS(isPtr)
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: path, RHS: rhs, IsScalar: !isPtr, Line: start.Line}, nil
	case t.Is("+=") || t.Is("-=") || t.Is("*=") || t.Is("/=") || t.Is("++") || t.Is("--"):
		// Compound scalar update.
		p.skipToSemi()
		return &AssignStmt{LHS: path, RHS: &OpaqueExpr{Text: "compound"},
			IsScalar: true, Line: start.Line}, p.expect(";")
	default:
		// Expression statement (e.g. a bare call): opaque.
		p.skipToSemi()
		return &EmptyStmt{Line: start.Line}, p.expect(";")
	}
}

// pathIsPointer reports whether the access path denotes a
// pointer-to-struct value: a declared pointer variable whose selector
// chain ends in a pointer field (or has no selectors).
func (p *parser) pathIsPointer(path *Path) bool {
	typ, ok := p.ptrVars[path.Base]
	if !ok {
		return false
	}
	for _, sel := range path.Sels {
		decl := p.file.Types[typ]
		if decl == nil {
			return false
		}
		f := decl.Selector(sel)
		if f == nil || f.PointsTo == "" {
			return false
		}
		typ = f.PointsTo
	}
	return true
}

// PathType resolves the struct type an access path points to, walking
// the selector chain; ok is false when the path is not pointer-typed.
func (f *File) PathType(ptrVars map[string]string, path *Path) (string, bool) {
	typ, ok := ptrVars[path.Base]
	if !ok {
		return "", false
	}
	for _, sel := range path.Sels {
		decl := f.Types[typ]
		if decl == nil {
			return "", false
		}
		fd := decl.Selector(sel)
		if fd == nil || fd.PointsTo == "" {
			return "", false
		}
		typ = fd.PointsTo
	}
	return typ, true
}

// PtrVars returns a copy of the declared pointer-variable table
// (name -> pointee struct).
func (p *parser) PtrVars() map[string]string {
	out := make(map[string]string, len(p.ptrVars))
	for k, v := range p.ptrVars {
		out[k] = v
	}
	return out
}

// parsePath parses `ident (-> ident | . ident)*`, folding `.` accesses
// into compound selector names.
func (p *parser) parsePath() (*Path, error) {
	baseTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	path := &Path{Base: baseTok.Text, Line: baseTok.Line}
	for {
		switch {
		case p.cur().Is("->"):
			p.next()
			sel, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			path.Sels = append(path.Sels, sel.Text)
		case p.cur().Is("."):
			p.next()
			sel, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if len(path.Sels) == 0 {
				// `v.f` on a non-pointer local: opaque scalar access;
				// record it as a compound base so it stays non-pointer.
				path.Base = path.Base + "." + sel.Text
			} else {
				path.Sels[len(path.Sels)-1] += "." + sel.Text
			}
		case p.cur().Is("["):
			// Array subscript: scalar payload; consume the index.
			p.next()
			depth := 1
			for depth > 0 && p.cur().Kind != EOF {
				if p.cur().Is("[") {
					depth++
				} else if p.cur().Is("]") {
					depth--
				}
				p.next()
			}
		default:
			return path, nil
		}
	}
}

// parseRHS parses the right-hand side of an assignment. ptrContext
// selects pointer interpretation: NULL/0, malloc, casted malloc, or an
// access path; anything else is opaque.
func (p *parser) parseRHS(ptrContext bool) (Expr, error) {
	if !ptrContext {
		p.skipToSemiOrComma()
		return &OpaqueExpr{Text: "scalar"}, nil
	}
	// Optional cast `(struct T *)`.
	if p.cur().Is("(") && p.la(1).Is("struct") {
		save := p.pos
		p.next() // (
		p.next() // struct
		if p.cur().Kind == IDENT && p.la(1).Is("*") && p.la(2).Is(")") {
			p.next()
			p.next()
			p.next()
		} else {
			p.pos = save
		}
	}
	t := p.cur()
	switch {
	case t.Is("NULL"):
		p.next()
		return &NullExpr{}, nil
	case t.Kind == NUMBER && t.Text == "0":
		p.next()
		return &NullExpr{}, nil
	case t.Is("malloc") || t.Is("calloc"):
		return p.parseMalloc()
	case t.Kind == IDENT:
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &PathExpr{Path: path}, nil
	default:
		return nil, errf(t.Line, t.Col, "unsupported pointer right-hand side starting with %s", t)
	}
}

// parseMalloc parses `malloc(sizeof(struct T))` and the calloc variant,
// extracting the allocated struct type.
func (p *parser) parseMalloc() (Expr, error) {
	callTok := p.next() // malloc | calloc
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var structName string
	depth := 1
	for depth > 0 {
		t := p.cur()
		if t.Kind == EOF {
			return nil, errf(callTok.Line, callTok.Col, "unterminated %s call", callTok.Text)
		}
		if t.Is("(") {
			depth++
		} else if t.Is(")") {
			depth--
			if depth == 0 {
				p.next()
				break
			}
		} else if t.Is("struct") && p.la(1).Kind == IDENT {
			structName = p.la(1).Text
		}
		p.next()
	}
	if structName == "" {
		return nil, errf(callTok.Line, callTok.Col,
			"%s: cannot determine allocated struct type (use sizeof(struct T))", callTok.Text)
	}
	return &MallocExpr{Type: structName}, nil
}

func (p *parser) skipToSemi() {
	for !p.cur().Is(";") && p.cur().Kind != EOF {
		p.next()
	}
}

func (p *parser) skipToSemiOrComma() {
	depth := 0
	for p.cur().Kind != EOF {
		t := p.cur()
		if t.Is("(") || t.Is("[") {
			depth++
		} else if t.Is(")") || t.Is("]") {
			if depth == 0 {
				return
			}
			depth--
		} else if depth == 0 && (t.Is(";") || t.Is(",")) {
			return
		}
		p.next()
	}
}

// parseCondition parses a parenthesized condition, recognizing the
// pointer-NULL comparison patterns the analysis can refine on.
func (p *parser) parseCondition() (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	expr := p.recognizeCond()
	// Skip the remainder of the condition up to the matching ')'.
	depth := 1
	var raw []string
	for depth > 0 {
		t := p.cur()
		if t.Kind == EOF {
			return nil, errf(t.Line, t.Col, "unterminated condition")
		}
		if t.Is("(") {
			depth++
		} else if t.Is(")") {
			depth--
			if depth == 0 {
				p.next()
				break
			}
		}
		raw = append(raw, t.Text)
		p.next()
	}
	if expr == nil {
		expr = &OpaqueExpr{Text: strings.Join(raw, " ")}
	}
	return expr, nil
}

// recognizeCond tries to match the refinable condition patterns at the
// current position without consuming tokens on failure. On success the
// matched tokens are consumed (the caller still skips to the ')').
func (p *parser) recognizeCond() Expr {
	save := p.pos

	negated := false
	if p.cur().Is("!") && !p.la(1).Is("=") {
		negated = true
		p.next()
	}
	if p.cur().Kind != IDENT {
		p.pos = save
		return nil
	}
	path, err := p.parsePath()
	if err != nil || !p.pathIsPointer(path) {
		p.pos = save
		return nil
	}
	t := p.cur()
	switch {
	case t.Is(")"):
		// `(p)` or `(!p)`
		return &CmpNullExpr{Path: path, Equal: negated}
	case t.Is("==") || t.Is("!="):
		eq := t.Is("==")
		p.next()
		rt := p.cur()
		if rt.Is("NULL") || (rt.Kind == NUMBER && rt.Text == "0") {
			p.next()
			if p.cur().Is(")") && !negated {
				return &CmpNullExpr{Path: path, Equal: eq}
			}
			p.pos = save
			return nil
		}
		if rt.Kind == IDENT {
			other, err := p.parsePath()
			if err == nil && p.pathIsPointer(other) && p.cur().Is(")") && !negated {
				return &CmpPathExpr{A: path, B: other, Equal: eq}
			}
		}
		p.pos = save
		return nil
	default:
		p.pos = save
		return nil
	}
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.next() // if
	cond, err := p.parseCondition()
	if err != nil {
		return nil, err
	}
	thenStmts, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	stmt := &IfStmt{Cond: cond, Then: blockOf(thenStmts, t.Line), Line: t.Line}
	if p.accept("else") {
		elseStmts, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmt.Else = blockOf(elseStmts, t.Line)
	}
	return stmt, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	cond, err := p.parseCondition()
	if err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: blockOf(body, t.Line), Line: t.Line}, nil
}

func (p *parser) parseDoWhile() (Stmt, error) {
	t := p.next() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expect("while"); err != nil {
		return nil, err
	}
	cond, err := p.parseCondition()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: blockOf(body, t.Line), DoWhile: true, Line: t.Line}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	stmt := &ForStmt{Line: t.Line}
	if !p.cur().Is(";") {
		init, err := p.parseSimpleStmt() // consumes the ';'
		if err != nil {
			return nil, err
		}
		stmt.Init = init
	} else {
		p.next()
	}
	if !p.cur().Is(";") {
		// The middle clause ends at ';': recognize or treat as opaque.
		cond := p.recognizeCond()
		var raw []string
		for !p.cur().Is(";") && p.cur().Kind != EOF {
			raw = append(raw, p.cur().Text)
			p.next()
		}
		if cond == nil {
			cond = &OpaqueExpr{Text: strings.Join(raw, " ")}
		}
		stmt.Cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.cur().Is(")") {
		post, err := p.parsePostClause()
		if err != nil {
			return nil, err
		}
		stmt.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	stmt.Body = blockOf(body, t.Line)
	return stmt, nil
}

// parsePostClause parses the third for-header clause (up to the ')').
func (p *parser) parsePostClause() (Stmt, error) {
	start := p.cur()
	if start.Kind != IDENT {
		p.skipToCloseParen()
		return &EmptyStmt{Line: start.Line}, nil
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch {
	case t.Is("="):
		p.next()
		isPtr := p.pathIsPointer(path)
		var rhs Expr
		if isPtr {
			rhs, err = p.parseRHS(true)
			if err != nil {
				return nil, err
			}
		} else {
			p.skipToCloseParen()
			rhs = &OpaqueExpr{Text: "scalar"}
		}
		return &AssignStmt{LHS: path, RHS: rhs, IsScalar: !isPtr, Line: start.Line}, nil
	default:
		p.skipToCloseParen()
		return &AssignStmt{LHS: path, RHS: &OpaqueExpr{Text: "compound"},
			IsScalar: true, Line: start.Line}, nil
	}
}

func (p *parser) skipToCloseParen() {
	depth := 0
	for p.cur().Kind != EOF {
		t := p.cur()
		if t.Is("(") {
			depth++
		} else if t.Is(")") {
			if depth == 0 {
				return
			}
			depth--
		}
		p.next()
	}
}

func blockOf(s interface{}, line int) *Block {
	switch v := s.(type) {
	case *Block:
		return v
	case []Stmt:
		if len(v) == 1 {
			if b, ok := v[0].(*Block); ok {
				return b
			}
		}
		return &Block{Stmts: v, Line: line}
	case Stmt:
		if b, ok := v.(*Block); ok {
			return b
		}
		return &Block{Stmts: []Stmt{v}, Line: line}
	}
	return &Block{Line: line}
}
