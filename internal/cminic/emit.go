package cminic

import (
	"fmt"
	"strings"
)

// Format renders the AST back to parseable mini-C source. The triage
// shrinker edits the AST (dropping statements and fields) and re-emits
// each candidate through here before re-running the compile → analysis
// → trace-check predicate.
//
// The emission normalizes what the parser abstracts anyway: scalar
// members and locals all come back as `int`, scalar right-hand sides as
// `0`, and opaque conditions as their recorded token text. Pointer
// structure — the only thing the analysis sees — round-trips exactly.
func Format(f *File) string {
	var b strings.Builder
	for _, s := range f.Structs {
		fmt.Fprintf(&b, "struct %s {", s.Name)
		for _, fd := range s.Fields {
			if fd.PointsTo != "" {
				fmt.Fprintf(&b, " struct %s *%s;", fd.PointsTo, fd.Name)
			} else {
				fmt.Fprintf(&b, " int %s;", fd.Name)
			}
		}
		b.WriteString(" };\n")
	}
	for _, fn := range f.Funcs {
		fmt.Fprintf(&b, "void %s(void) {\n", fn.Name)
		emitStmts(&b, fn.Body.Stmts, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func emitStmts(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		emitStmt(b, s, depth)
	}
}

func emitStmt(b *strings.Builder, s Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	switch v := s.(type) {
	case *Block:
		b.WriteString(ind + "{\n")
		emitStmts(b, v.Stmts, depth+1)
		b.WriteString(ind + "}\n")
	case *DeclStmt:
		if v.PointsTo != "" {
			fmt.Fprintf(b, "%sstruct %s *%s", ind, v.PointsTo, v.Name)
		} else {
			fmt.Fprintf(b, "%sint %s", ind, v.Name)
		}
		if v.Init != nil {
			fmt.Fprintf(b, " = %s", emitExpr(v.Init))
		}
		b.WriteString(";\n")
	case *AssignStmt:
		fmt.Fprintf(b, "%s%s;\n", ind, emitAssign(v))
	case *IfStmt:
		fmt.Fprintf(b, "%sif (%s) {\n", ind, emitCond(v.Cond))
		emitBody(b, v.Then, depth+1)
		if v.Else != nil {
			b.WriteString(ind + "} else {\n")
			emitBody(b, v.Else, depth+1)
		}
		b.WriteString(ind + "}\n")
	case *WhileStmt:
		if v.DoWhile {
			b.WriteString(ind + "do {\n")
			emitBody(b, v.Body, depth+1)
			fmt.Fprintf(b, "%s} while (%s);\n", ind, emitCond(v.Cond))
		} else {
			fmt.Fprintf(b, "%swhile (%s) {\n", ind, emitCond(v.Cond))
			emitBody(b, v.Body, depth+1)
			b.WriteString(ind + "}\n")
		}
	case *ForStmt:
		init, post := "", ""
		if a, ok := v.Init.(*AssignStmt); ok {
			init = emitAssign(a)
		}
		if a, ok := v.Post.(*AssignStmt); ok {
			post = emitAssign(a)
		}
		cond := ""
		if v.Cond != nil {
			cond = emitCond(v.Cond)
		}
		fmt.Fprintf(b, "%sfor (%s; %s; %s) {\n", ind, init, cond, post)
		emitBody(b, v.Body, depth+1)
		b.WriteString(ind + "}\n")
	case *FreeStmt:
		fmt.Fprintf(b, "%sfree(%s);\n", ind, v.Arg)
	case *BreakStmt:
		b.WriteString(ind + "break;\n")
	case *ContinueStmt:
		b.WriteString(ind + "continue;\n")
	case *ReturnStmt:
		b.WriteString(ind + "return;\n")
	case *EmptyStmt:
		b.WriteString(ind + ";\n")
	}
}

// emitBody emits a statement that syntactically sits inside braces the
// caller already printed, flattening a Block one level.
func emitBody(b *strings.Builder, s Stmt, depth int) {
	if blk, ok := s.(*Block); ok {
		emitStmts(b, blk.Stmts, depth)
		return
	}
	if s != nil {
		emitStmt(b, s, depth)
	}
}

// emitAssign renders an assignment without the terminating semicolon
// (for-header clauses reuse it).
func emitAssign(v *AssignStmt) string {
	if v.IsScalar {
		// The parser records scalar right-hand sides opaquely; any
		// scalar value round-trips to the same IR noop.
		return fmt.Sprintf("%s = 0", v.LHS)
	}
	return fmt.Sprintf("%s = %s", v.LHS, emitExpr(v.RHS))
}

func emitExpr(e Expr) string {
	switch v := e.(type) {
	case *NullExpr:
		return "NULL"
	case *MallocExpr:
		return fmt.Sprintf("malloc(sizeof(struct %s))", v.Type)
	case *PathExpr:
		return v.Path.String()
	case *OpaqueExpr:
		if v.Text == "" {
			return "0"
		}
		return v.Text
	default:
		return "0"
	}
}

func emitCond(e Expr) string {
	switch v := e.(type) {
	case *CmpNullExpr:
		op := "!="
		if v.Equal {
			op = "=="
		}
		return fmt.Sprintf("%s %s NULL", v.Path, op)
	case *CmpPathExpr:
		op := "!="
		if v.Equal {
			op = "=="
		}
		return fmt.Sprintf("%s %s %s", v.A, op, v.B)
	case *OpaqueExpr:
		if v.Text == "" {
			return "cond"
		}
		return v.Text
	case nil:
		return "cond"
	default:
		return "cond"
	}
}
