package cminic

import (
	"fmt"
	"strings"
)

// File is a parsed translation unit.
type File struct {
	Structs []*StructDecl
	Funcs   []*FuncDecl
	// Types indexes the struct declarations by name.
	Types map[string]*StructDecl
	// PtrVars maps every declared pointer variable (globals and locals
	// of all functions) to its pointee struct name.
	PtrVars map[string]string
}

// StructDecl is one struct type declaration.
type StructDecl struct {
	Name   string
	Fields []*Field
	Line   int
}

// Field is one struct member.
type Field struct {
	Name string
	// PointsTo is the pointee struct name for pointer-to-struct fields;
	// empty for scalar (non-pointer or non-struct) members, which the
	// analysis ignores.
	PointsTo string
	Line     int
}

// Selectors returns the names of the pointer-to-struct fields: the
// selector set S contributed by this type.
func (s *StructDecl) Selectors() []string {
	var out []string
	for _, f := range s.Fields {
		if f.PointsTo != "" {
			out = append(out, f.Name)
		}
	}
	return out
}

// Selector returns the field with the given name, or nil.
func (s *StructDecl) Selector(name string) *Field {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// FuncDecl is one function definition. Only the body is analyzed;
// parameters are rejected by the parser (the paper's compiler is
// intraprocedural).
type FuncDecl struct {
	Name string
	Body *Block
	Line int
}

// Stmt is the interface of all statement AST nodes.
type Stmt interface {
	stmtNode()
	Pos() int
}

// Block is a `{ ... }` statement list.
type Block struct {
	Stmts []Stmt
	Line  int
}

// DeclStmt declares a local variable, optionally with an initializer.
// PointsTo is set for pointer-to-struct declarations; scalar locals are
// recorded with PointsTo == "".
type DeclStmt struct {
	Name     string
	PointsTo string
	Init     Expr // nil when absent
	Line     int
}

// AssignStmt is `LHS = RHS;`. Scalar assignments are parsed but carry
// IsScalar so the lowering can discard them.
type AssignStmt struct {
	LHS      *Path
	RHS      Expr
	IsScalar bool
	Line     int
}

// IfStmt is `if (Cond) Then else Else`.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
	Line int
}

// WhileStmt is `while (Cond) Body` or, when DoWhile is set,
// `do Body while (Cond);`.
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
	Line    int
}

// ForStmt is `for (Init; Cond; Post) Body`; each header part may be nil.
type ForStmt struct {
	Init Stmt // AssignStmt or nil
	Cond Expr // nil = always true
	Post Stmt // AssignStmt or nil
	Body Stmt
	Line int
}

// FreeStmt is `free(Arg);`.
type FreeStmt struct {
	Arg  *Path
	Line int
}

// BreakStmt is `break;`.
type BreakStmt struct{ Line int }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ Line int }

// ReturnStmt is `return;` or `return expr;` (the value is opaque).
type ReturnStmt struct{ Line int }

// EmptyStmt is `;`.
type EmptyStmt struct{ Line int }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*FreeStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*EmptyStmt) stmtNode()    {}

// Pos returns the source line of the statement.
func (s *Block) Pos() int        { return s.Line }
func (s *DeclStmt) Pos() int     { return s.Line }
func (s *AssignStmt) Pos() int   { return s.Line }
func (s *IfStmt) Pos() int       { return s.Line }
func (s *WhileStmt) Pos() int    { return s.Line }
func (s *ForStmt) Pos() int      { return s.Line }
func (s *FreeStmt) Pos() int     { return s.Line }
func (s *BreakStmt) Pos() int    { return s.Line }
func (s *ContinueStmt) Pos() int { return s.Line }
func (s *ReturnStmt) Pos() int   { return s.Line }
func (s *EmptyStmt) Pos() int    { return s.Line }

// Expr is the interface of all expression AST nodes that can appear on
// the right-hand side of an assignment or inside a condition.
type Expr interface {
	exprNode()
}

// NullExpr is the literal NULL (or the constant 0 in pointer context).
type NullExpr struct{}

// MallocExpr is `malloc(sizeof(struct T))` (or calloc).
type MallocExpr struct{ Type string }

// PathExpr is a pointer access path used as a value.
type PathExpr struct{ Path *Path }

// OpaqueExpr is any scalar expression; the analysis treats it as a
// non-deterministic value. Pointers mentioned inside are recorded so
// conditions like `p != NULL` can refine the analysis.
type OpaqueExpr struct{ Text string }

// CmpNullExpr is a recognized pointer-NULL comparison used in a
// condition: Path == NULL (Equal) or Path != NULL (!Equal). Bare `p`
// conditions are (p != NULL); `!p` is (p == NULL).
type CmpNullExpr struct {
	Path  *Path
	Equal bool
}

// CmpPathExpr is a recognized pointer-pointer comparison `a == b` /
// `a != b` in a condition; the analysis treats it as opaque but the
// parser keeps the structure for diagnostics.
type CmpPathExpr struct {
	A, B  *Path
	Equal bool
}

func (*NullExpr) exprNode()    {}
func (*MallocExpr) exprNode()  {}
func (*PathExpr) exprNode()    {}
func (*OpaqueExpr) exprNode()  {}
func (*CmpNullExpr) exprNode() {}
func (*CmpPathExpr) exprNode() {}

// Path is a pointer access path: Base pvar followed by zero or more
// `->sel` steps. Sub-struct member access `a.b` inside a step is folded
// into the selector name ("a.b").
type Path struct {
	Base string
	Sels []string
	Line int
}

// String renders the path in C syntax.
func (p *Path) String() string {
	if len(p.Sels) == 0 {
		return p.Base
	}
	return p.Base + "->" + strings.Join(p.Sels, "->")
}

// Clone returns an independent copy of the path.
func (p *Path) Clone() *Path {
	sels := make([]string, len(p.Sels))
	copy(sels, p.Sels)
	return &Path{Base: p.Base, Sels: sels, Line: p.Line}
}

func (f *File) String() string {
	var b strings.Builder
	for _, s := range f.Structs {
		fmt.Fprintf(&b, "struct %s { %d fields }\n", s.Name, len(s.Fields))
	}
	for _, fn := range f.Funcs {
		fmt.Fprintf(&b, "func %s { %d stmts }\n", fn.Name, len(fn.Body.Stmts))
	}
	return b.String()
}
