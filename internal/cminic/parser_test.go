package cminic

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

const prologue = `
struct node { int val; struct node *nxt; struct leaf *down; };
struct leaf { int v; struct leaf *sib; };
`

func wrapMain(body string) string {
	return prologue + "\nvoid main(void) {\n struct node *p;\n struct node *q;\n struct leaf *l;\n" + body + "\n}\n"
}

func TestParseStructs(t *testing.T) {
	f := parse(t, wrapMain(""))
	if len(f.Structs) != 2 {
		t.Fatalf("got %d structs", len(f.Structs))
	}
	n := f.Types["node"]
	if n == nil {
		t.Fatal("struct node missing")
	}
	sels := n.Selectors()
	if len(sels) != 2 || sels[0] != "nxt" || sels[1] != "down" {
		t.Errorf("node selectors = %v", sels)
	}
	if n.Selector("val").PointsTo != "" {
		t.Errorf("val must be scalar")
	}
}

func TestParseDeclWithInit(t *testing.T) {
	f := parse(t, prologue+`
void main(void) {
    struct node *p = NULL;
    struct node *q = malloc(sizeof(struct node));
    struct node *r = q;
}`)
	fn := f.Funcs[0]
	decls := 0
	for _, s := range fn.Body.Stmts {
		if d, ok := s.(*DeclStmt); ok {
			decls++
			switch d.Name {
			case "p":
				if _, ok := d.Init.(*NullExpr); !ok {
					t.Errorf("p init: %T", d.Init)
				}
			case "q":
				m, ok := d.Init.(*MallocExpr)
				if !ok || m.Type != "node" {
					t.Errorf("q init: %#v", d.Init)
				}
			case "r":
				pe, ok := d.Init.(*PathExpr)
				if !ok || pe.Path.Base != "q" {
					t.Errorf("r init: %#v", d.Init)
				}
			}
		}
	}
	if decls != 3 {
		t.Errorf("got %d decls", decls)
	}
}

func TestParseCastedMalloc(t *testing.T) {
	f := parse(t, wrapMain(`p = (struct node *) malloc(sizeof(struct node));`))
	found := false
	walkStmts(f.Funcs[0].Body, func(s Stmt) {
		if a, ok := s.(*AssignStmt); ok && !a.IsScalar {
			if m, ok := a.RHS.(*MallocExpr); ok && m.Type == "node" {
				found = true
			}
		}
	})
	if !found {
		t.Error("casted malloc not recognized")
	}
}

func TestParsePointerPaths(t *testing.T) {
	f := parse(t, wrapMain(`p->nxt->down = l->sib;`))
	var assign *AssignStmt
	walkStmts(f.Funcs[0].Body, func(s Stmt) {
		if a, ok := s.(*AssignStmt); ok && !a.IsScalar {
			assign = a
		}
	})
	if assign == nil {
		t.Fatal("no pointer assignment found")
	}
	if assign.LHS.String() != "p->nxt->down" {
		t.Errorf("LHS = %s", assign.LHS)
	}
	rhs := assign.RHS.(*PathExpr)
	if rhs.Path.String() != "l->sib" {
		t.Errorf("RHS = %s", rhs.Path)
	}
}

func TestParseScalarAssignIsScalar(t *testing.T) {
	f := parse(t, wrapMain(`p->val = 3; i = i + 1;`))
	scalars := 0
	walkStmts(f.Funcs[0].Body, func(s Stmt) {
		if a, ok := s.(*AssignStmt); ok && a.IsScalar {
			scalars++
		}
	})
	if scalars != 2 {
		t.Errorf("got %d scalar assignments, want 2", scalars)
	}
}

func TestParseConditions(t *testing.T) {
	src := wrapMain(`
if (p) { q = p; }
if (!p) { q = NULL; }
if (p == NULL) { q = NULL; }
if (p->nxt != NULL) { q = p; }
if (i < 10) { q = p; }
while (p != q) { p = NULL; }
`)
	f := parse(t, src)
	var conds []Expr
	walkStmts(f.Funcs[0].Body, func(s Stmt) {
		switch st := s.(type) {
		case *IfStmt:
			conds = append(conds, st.Cond)
		case *WhileStmt:
			conds = append(conds, st.Cond)
		}
	})
	if len(conds) != 6 {
		t.Fatalf("got %d conditions", len(conds))
	}
	if c, ok := conds[0].(*CmpNullExpr); !ok || c.Equal {
		t.Errorf("cond 0 (`p`): %#v", conds[0])
	}
	if c, ok := conds[1].(*CmpNullExpr); !ok || !c.Equal {
		t.Errorf("cond 1 (`!p`): %#v", conds[1])
	}
	if c, ok := conds[2].(*CmpNullExpr); !ok || !c.Equal {
		t.Errorf("cond 2 (`p == NULL`): %#v", conds[2])
	}
	if c, ok := conds[3].(*CmpNullExpr); !ok || c.Equal || c.Path.String() != "p->nxt" {
		t.Errorf("cond 3 (`p->nxt != NULL`): %#v", conds[3])
	}
	if _, ok := conds[4].(*OpaqueExpr); !ok {
		t.Errorf("cond 4 (`i < 10`): %#v", conds[4])
	}
	if _, ok := conds[5].(*CmpPathExpr); !ok {
		t.Errorf("cond 5 (`p != q`): %#v", conds[5])
	}
}

func TestParseControlFlow(t *testing.T) {
	src := wrapMain(`
while (c1) { p = NULL; }
do { p = NULL; } while (c2);
for (i = 0; i < n; i = i + 1) { p = NULL; }
for (;;) { break; }
if (c3) { continue_target = 1; } else { other = 2; }
return;
`)
	f := parse(t, src)
	var whiles, dos, fors, ifs, rets int
	walkStmts(f.Funcs[0].Body, func(s Stmt) {
		switch st := s.(type) {
		case *WhileStmt:
			whiles++
			if st.DoWhile {
				dos++
			}
		case *ForStmt:
			fors++
		case *IfStmt:
			ifs++
		case *ReturnStmt:
			rets++
		}
	})
	if whiles != 2 || dos != 1 || fors != 2 || ifs != 1 || rets != 1 {
		t.Errorf("control counts: while=%d do=%d for=%d if=%d ret=%d", whiles, dos, fors, ifs, rets)
	}
}

func TestParseFree(t *testing.T) {
	f := parse(t, wrapMain(`free(p);`))
	found := false
	walkStmts(f.Funcs[0].Body, func(s Stmt) {
		if fr, ok := s.(*FreeStmt); ok && fr.Arg.Base == "p" {
			found = true
		}
	})
	if !found {
		t.Error("free statement not parsed")
	}
}

func TestParseTypedefStruct(t *testing.T) {
	f := parse(t, `
typedef struct cell { int v; struct cell *nxt; } Cell;
void main(void) { struct cell *p; p = NULL; }
`)
	if f.Types["cell"] == nil {
		t.Error("typedef struct body not registered")
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, `void main(int argc) { }`, "parameters are not supported")
	parseErr(t, `struct a { struct b **x; }; void main(void) {}`, "single-level")
	parseErr(t, prologue+`void main(void) { struct node *p; p = malloc(10); }`, "sizeof")
	parseErr(t, `int x;`, "no function")
	parseErr(t, prologue+`void main(void) { struct node *p; struct leaf *p; }`, "redeclared")
	parseErr(t, `struct a { int x; }; struct a { int y; }; void main(void) {}`, "redeclared")
}

func TestPathTypeResolution(t *testing.T) {
	f := parse(t, wrapMain(``))
	typ, ok := f.PathType(f.PtrVars, &Path{Base: "p", Sels: []string{"nxt", "down"}})
	if !ok || typ != "leaf" {
		t.Errorf("PathType(p->nxt->down) = %q, %v", typ, ok)
	}
	if _, ok := f.PathType(f.PtrVars, &Path{Base: "p", Sels: []string{"val"}}); ok {
		t.Error("scalar field must not resolve as pointer path")
	}
	if _, ok := f.PathType(f.PtrVars, &Path{Base: "i"}); ok {
		t.Error("undeclared base must not resolve")
	}
}

func walkInto(s Stmt, f func(Stmt)) {
	if b, ok := s.(*Block); ok {
		walkStmts(b, f)
	} else if s != nil {
		f(s)
	}
}

// walkStmts applies f to every statement recursively.
func walkStmts(b *Block, f func(Stmt)) {
	for _, s := range b.Stmts {
		f(s)
		switch st := s.(type) {
		case *Block:
			walkStmts(st, f)
		case *IfStmt:
			walkInto(st.Then, f)
			if st.Else != nil {
				walkInto(st.Else, f)
			}
		case *WhileStmt:
			walkInto(st.Body, f)
		case *ForStmt:
			if st.Init != nil {
				f(st.Init)
			}
			walkInto(st.Body, f)
			if st.Post != nil {
				f(st.Post)
			}
		}
	}
}
