package cminic

import (
	"testing"
)

// emitRoundtripSrc exercises every construct the emitter handles:
// structs with scalar and pointer fields, declarations, the six pointer
// statements, if/else, while, do-while, for, free, break/continue,
// return, and opaque scalar code.
const emitRoundtripSrc = `
struct node { int v; struct node *nxt; struct node *prv; };
struct leaf { int w; };

void main(void) {
    struct node *p;
    struct node *q;
    int i;
    p = malloc(sizeof(struct node));
    q = NULL;
    p->nxt = p;
    p->prv = NULL;
    q = p->nxt;
    i = 0;
    if (p != NULL) {
        q = p;
    } else {
        q = NULL;
    }
    while (p->nxt != NULL) {
        p = p->nxt;
        if (cond) { break; }
        continue;
    }
    do {
        i = i + 1;
    } while (i < 10);
    for (p = q; p != NULL; p = p->nxt) {
        free(p->prv);
    }
    free(q);
    return;
}
`

// TestFormatRoundtrip checks that Format output parses and that a
// second parse → Format cycle is a fixed point: the shrinker depends on
// structural candidate diffs being stable under re-emission.
func TestFormatRoundtrip(t *testing.T) {
	f1, err := Parse(emitRoundtripSrc)
	if err != nil {
		t.Fatalf("parse input: %v", err)
	}
	out1 := Format(f1)
	f2, err := Parse(out1)
	if err != nil {
		t.Fatalf("re-parse emitted source: %v\n%s", err, out1)
	}
	out2 := Format(f2)
	if out1 != out2 {
		t.Fatalf("Format is not a fixed point:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
}

// TestFormatPreservesStructure compares the parse trees across the
// roundtrip: same structs, fields, and statement counts.
func TestFormatPreservesStructure(t *testing.T) {
	f1, err := Parse(emitRoundtripSrc)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(Format(f1))
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Structs) != len(f2.Structs) {
		t.Fatalf("struct count changed: %d -> %d", len(f1.Structs), len(f2.Structs))
	}
	for i := range f1.Structs {
		if f1.Structs[i].Name != f2.Structs[i].Name {
			t.Errorf("struct %d renamed: %s -> %s", i, f1.Structs[i].Name, f2.Structs[i].Name)
		}
		if len(f1.Structs[i].Fields) != len(f2.Structs[i].Fields) {
			t.Errorf("struct %s field count changed: %d -> %d", f1.Structs[i].Name,
				len(f1.Structs[i].Fields), len(f2.Structs[i].Fields))
		}
	}
	if n1, n2 := countStmts(f1), countStmts(f2); n1 != n2 {
		t.Fatalf("statement count changed across roundtrip: %d -> %d", n1, n2)
	}
}

func countStmts(f *File) int {
	n := 0
	var walk func(s Stmt)
	walkBlock := func(blk *Block) {
		if blk == nil {
			return
		}
		for _, s := range blk.Stmts {
			walk(s)
		}
	}
	walk = func(s Stmt) {
		n++
		switch v := s.(type) {
		case *Block:
			n-- // the wrapper itself is not a statement unit
			walkBlock(v)
		case *IfStmt:
			if b, ok := v.Then.(*Block); ok {
				walkBlock(b)
			}
			if b, ok := v.Else.(*Block); ok {
				walkBlock(b)
			}
		case *WhileStmt:
			if b, ok := v.Body.(*Block); ok {
				walkBlock(b)
			}
		case *ForStmt:
			if b, ok := v.Body.(*Block); ok {
				walkBlock(b)
			}
		}
	}
	for _, fn := range f.Funcs {
		walkBlock(fn.Body)
	}
	return n
}
