package absem

import (
	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// StepFree is the per-graph semantics of "free(x)". sels lists the
// pointer selectors of the freed struct type.
func StepFree(ctx *Context, g *rsg.Graph, x string, sels []string) []*rsg.Graph {
	syms := make([]rsg.Sym, len(sels))
	for i, sel := range sels {
		syms[i] = rsg.SelSym(sel)
	}
	return StepFreeSym(ctx, g, rsg.PvarSym(x), syms)
}

// StepFreeSym is StepFree addressed by interned symbols.
//
// free(NULL) is a no-op (as in C). Otherwise the freed cell's outgoing
// references die with it, which is exactly the effect of "x->sel =
// NULL" for every selector of its type — so the transfer composes the
// proven-sound StepSelNilSym over the selector list (division fixes
// SELIN on the former targets, PRUNE discards infeasible branches, and
// garbage collection drops structure that was only reachable through
// the freed cell, mirroring the concrete interpreter's GC of cells
// stranded by the free). Finally the dialect nullifies x itself
// (StepNilSym), so a subsequent dereference of x is an ordinary NULL
// dereference. The freed cell's node survives only while other
// (dangling) references keep it reachable; it then over-approximates a
// deallocated cell, which is sound — embeddings never require nodes to
// be populated.
func StepFreeSym(ctx *Context, g *rsg.Graph, x rsg.Sym, sels []rsg.Sym) []*rsg.Graph {
	if g.PvarTargetSym(x) == nil {
		return []*rsg.Graph{g}
	}
	cur := []*rsg.Graph{g}
	for _, sel := range sels {
		var next []*rsg.Graph
		for _, h := range cur {
			next = append(next, StepSelNilSym(ctx, h, x, sel)...)
		}
		cur = next
	}
	var out []*rsg.Graph
	for _, h := range cur {
		out = append(out, StepNilSym(ctx, h, x)...)
	}
	return out
}

// XFree is the abstract semantics of "free(x)" over an RSRSG.
func XFree(ctx *Context, in *rsrsg.Set, x string, sels []string) *rsrsg.Set {
	return mapStep(ctx, in, func(g *rsg.Graph) []*rsg.Graph { return StepFree(ctx, g, x, sels) })
}
