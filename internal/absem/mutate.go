package absem

import "repro/internal/rsg"

// unlink performs the strong update "a->sel = NULL" on the graph, where
// a is a singleton (pvar-referenced) node and b its materialized single
// sel target. Unlike the speculative removals of DIVIDE, this models a
// real heap mutation, so the property state of both endpoints is
// updated to the new truth before any pruning runs.
func unlink(g *rsg.Graph, a rsg.NodeID, sel string, b rsg.NodeID) {
	g.RemoveLink(a, sel, b)
	na, nb := g.Node(a), g.Node(b)

	// Source: the reference definitely no longer exists.
	na.ClearOut(sel)
	// Cycle pairs of a that started with sel lost their only witness.
	for pair := range na.Cycle {
		if pair.Out == sel {
			na.Cycle.Remove(pair)
		}
	}

	if nb == nil {
		return
	}
	// Destination: update the incoming state for sel.
	srcs := g.Sources(b, sel)
	if len(srcs) == 0 {
		nb.ClearIn(sel)
		nb.ShSel.Remove(sel)
	} else {
		definite := false
		for _, s := range srcs {
			if g.DefiniteLink(s, sel, b) {
				definite = true
				break
			}
		}
		if !definite {
			nb.SelIn.Remove(sel)
			nb.MarkPossibleIn(sel)
		}
		if nb.Singleton {
			// Re-count sharing through sel: only provable when every
			// remaining source is a singleton.
			allSingleton := true
			for _, s := range srcs {
				if sn := g.Node(s); sn == nil || !sn.Singleton {
					allSingleton = false
					break
				}
			}
			if allSingleton && len(srcs) < 2 {
				nb.ShSel.Remove(sel)
			}
		}
	}
	// Cycle pairs of b returning through sel whose witness was a.
	for pair := range nb.Cycle {
		if pair.In == sel && g.HasLink(b, pair.Out, a) {
			nb.Cycle.Remove(pair)
		}
	}
	refreshShared(g, nb)
}

// link performs the strong update "a->sel = b" on the graph. The caller
// has already ensured a has no sel link (unlink ran first) and both a
// and b are singleton nodes (a is pvar-referenced; b is a pvar target).
func link(g *rsg.Graph, a rsg.NodeID, sel string, b rsg.NodeID) {
	na, nb := g.Node(a), g.Node(b)

	hadSelIn := len(g.Sources(b, sel)) > 0
	hadHeapIn := g.HeapInDegree(b) > 0

	g.AddLink(a, sel, b)
	na.MarkDefiniteOut(sel)

	if nb.Singleton {
		nb.MarkDefiniteIn(sel)
		if hadSelIn {
			nb.ShSel.Add(sel)
			nb.Shared = true
		}
		if hadHeapIn {
			nb.Shared = true
		}
	} else {
		// Conservative path (not reached by the standard semantics,
		// which always links to pvar targets, i.e. singletons).
		nb.MarkPossibleIn(sel)
		if hadSelIn {
			nb.ShSel.Add(sel)
			nb.Shared = true
		}
	}

	// New definite cycles through the link.
	for _, selIn := range g.OutSelectors(b) {
		if g.DefiniteLink(b, selIn, a) {
			na.Cycle.Add(rsg.CyclePair{Out: sel, In: selIn})
			nb.Cycle.Add(rsg.CyclePair{Out: selIn, In: sel})
		}
	}
	if a == b {
		// Self reference: a->sel == a closes <sel, sel'> for every
		// definite sel' self link, including sel itself.
		if g.DefiniteLink(a, sel, a) {
			na.Cycle.Add(rsg.CyclePair{Out: sel, In: sel})
		}
	}
}

// refreshShared lowers SHARED when the graph proves at most one heap
// reference remains into a singleton node (all sources singleton).
func refreshShared(g *rsg.Graph, n *rsg.Node) {
	if !n.Singleton || !n.Shared {
		return
	}
	if len(n.ShSel) > 0 {
		return
	}
	total := 0
	for _, l := range g.InLinks(n.ID) {
		sn := g.Node(l.Src)
		if sn == nil || !sn.Singleton {
			return // unknown multiplicity: keep the conservative flag
		}
		total++
	}
	if total < 2 {
		n.Shared = false
	}
}
