package absem

import "repro/internal/rsg"

// unlink performs the strong update "a->sel = NULL" on the graph, where
// a is a singleton (pvar-referenced) node and b its materialized single
// sel target. Unlike the speculative removals of DIVIDE, this models a
// real heap mutation, so the property state of both endpoints is
// updated to the new truth before any pruning runs.
func unlink(g *rsg.Graph, a rsg.NodeID, sel string, b rsg.NodeID) {
	unlinkSym(g, a, rsg.SelSym(sel), b)
}

func unlinkSym(g *rsg.Graph, a rsg.NodeID, sel rsg.Sym, b rsg.NodeID) {
	selName := rsg.SelName(sel)
	g.RemoveLinkSym(a, sel, b)
	na, nb := g.Node(a), g.Node(b)

	// Source: the reference definitely no longer exists.
	na.ClearOutSym(sel)
	// Cycle pairs of a that started with sel lost their only witness.
	for _, pair := range na.Cycle.Sorted() {
		if pair.Out == selName {
			na.Cycle.Remove(pair)
		}
	}

	if nb == nil {
		return
	}
	// Destination: update the incoming state for sel.
	srcs := g.SourcesSym(b, sel)
	if len(srcs) == 0 {
		nb.ClearInSym(sel)
		nb.ShSel.RemoveSym(sel)
	} else {
		definite := false
		for _, s := range srcs {
			if g.DefiniteLinkSym(s, sel, b) {
				definite = true
				break
			}
		}
		if !definite {
			nb.SelIn.RemoveSym(sel)
			nb.MarkPossibleInSym(sel)
		}
		if nb.Singleton {
			// Re-count sharing through sel: only provable when every
			// remaining source is a singleton.
			allSingleton := true
			for _, s := range srcs {
				if sn := g.Node(s); sn == nil || !sn.Singleton {
					allSingleton = false
					break
				}
			}
			if allSingleton && len(srcs) < 2 {
				nb.ShSel.RemoveSym(sel)
			}
		}
	}
	// Cycle pairs of b returning through sel whose witness was a.
	for _, pair := range nb.Cycle.Sorted() {
		if pair.In == selName && g.HasLink(b, pair.Out, a) {
			nb.Cycle.Remove(pair)
		}
	}
	refreshShared(g, nb)
}

// link performs the strong update "a->sel = b" on the graph. The caller
// has already ensured a has no sel link (unlink ran first) and both a
// and b are singleton nodes (a is pvar-referenced; b is a pvar target).
func link(g *rsg.Graph, a rsg.NodeID, sel string, b rsg.NodeID) {
	linkSym(g, a, rsg.SelSym(sel), b, false)
}

func linkSym(g *rsg.Graph, a rsg.NodeID, sel rsg.Sym, b rsg.NodeID, legacy bool) {
	selName := rsg.SelName(sel)
	na, nb := g.Node(a), g.Node(b)

	hadSelIn := len(g.SourcesSym(b, sel)) > 0
	hadHeapIn := g.HeapInDegree(b) > 0

	g.AddLinkSym(a, sel, b)
	na.MarkDefiniteOutSym(sel)

	// Cycle pairs of a starting with sel were vacuously true while a had
	// no sel reference (MERGE_NODES keeps such pairs across JOIN); the
	// new reference ends the vacuity, so they only survive if b closes
	// them — which the re-derivation below re-adds. The legacy ablation
	// keeps the stale pairs, restoring the historical unsoundness.
	if !legacy {
		for _, pair := range na.Cycle.Sorted() {
			if pair.Out == selName {
				na.Cycle.Remove(pair)
			}
		}
	}

	if nb.Singleton {
		nb.MarkDefiniteInSym(sel)
		if hadSelIn {
			nb.ShSel.AddSym(sel)
			nb.Shared = true
		}
		if hadHeapIn {
			nb.Shared = true
		}
	} else {
		// Conservative path (not reached by the standard semantics,
		// which always links to pvar targets, i.e. singletons).
		nb.MarkPossibleInSym(sel)
		if hadSelIn {
			nb.ShSel.AddSym(sel)
			nb.Shared = true
		}
	}

	// New definite cycles through the link.
	for _, selIn := range g.OutSelectors(b) {
		if g.DefiniteLink(b, selIn, a) {
			na.Cycle.Add(rsg.CyclePair{Out: selName, In: selIn})
			nb.Cycle.Add(rsg.CyclePair{Out: selIn, In: selName})
		}
	}
	if a == b {
		// Self reference: a->sel == a closes <sel, sel'> for every
		// definite sel' self link, including sel itself.
		if g.DefiniteLinkSym(a, sel, a) {
			na.Cycle.Add(rsg.CyclePair{Out: selName, In: selName})
		}
	}
}

// refreshShared lowers SHARED when the graph proves at most one heap
// reference remains into a singleton node (all sources singleton).
func refreshShared(g *rsg.Graph, n *rsg.Node) {
	if !n.Singleton || !n.Shared {
		return
	}
	if !n.ShSel.Empty() {
		return
	}
	total := 0
	for _, l := range g.InLinks(n.ID) {
		sn := g.Node(l.Src)
		if sn == nil || !sn.Singleton {
			return // unknown multiplicity: keep the conservative flag
		}
		total++
	}
	if total < 2 {
		n.Shared = false
	}
}
