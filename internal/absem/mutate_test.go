package absem

import (
	"testing"

	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// buildPair returns a graph with a -s-> b, both singletons, pvars x->a
// and y->b.
func buildPair(t *testing.T) (*rsg.Graph, *rsg.Node, *rsg.Node) {
	t.Helper()
	g := rsg.NewGraph()
	a := rsg.NewNode("t")
	a.Singleton = true
	g.AddNode(a)
	b := rsg.NewNode("t")
	b.Singleton = true
	g.AddNode(b)
	g.SetPvar("x", a.ID)
	g.SetPvar("y", b.ID)
	link(g, a.ID, "s", b.ID)
	return g, a, b
}

func TestLinkSetsState(t *testing.T) {
	g, a, b := buildPair(t)
	if !a.SelOut.Has("s") {
		t.Error("link must set definite SELOUT on the source")
	}
	if !b.SelIn.Has("s") {
		t.Error("link must set definite SELIN on the target")
	}
	if b.Shared || b.SharedBy("s") {
		t.Error("single reference is not sharing")
	}
	if !g.HasLink(a.ID, "s", b.ID) {
		t.Error("link missing")
	}
}

func TestLinkDetectsSharing(t *testing.T) {
	g, _, b := buildPair(t)
	c := rsg.NewNode("t")
	c.Singleton = true
	g.AddNode(c)
	g.SetPvar("z", c.ID)
	link(g, c.ID, "s", b.ID)
	if !b.SharedBy("s") || !b.Shared {
		t.Errorf("second s reference must set SHSEL and SHARED: %s", b)
	}

	// A reference through a different selector sets SHARED only.
	g2, _, b2 := buildPair(t)
	c2 := rsg.NewNode("t")
	c2.Singleton = true
	g2.AddNode(c2)
	g2.SetPvar("z", c2.ID)
	link(g2, c2.ID, "r", b2.ID)
	if b2.SharedBy("r") || b2.SharedBy("s") {
		t.Errorf("one reference per selector: no SHSEL, got %s", b2)
	}
	if !b2.Shared {
		t.Errorf("two total references must set SHARED: %s", b2)
	}
}

func TestLinkCreatesCycleInfo(t *testing.T) {
	g, a, b := buildPair(t)
	link(g, b.ID, "r", a.ID)
	if !b.Cycle.Has(rsg.CyclePair{Out: "r", In: "s"}) {
		t.Errorf("Cycle(b) = %s, want <r,s>", b.Cycle)
	}
	if !a.Cycle.Has(rsg.CyclePair{Out: "s", In: "r"}) {
		t.Errorf("Cycle(a) = %s, want <s,r>", a.Cycle)
	}
}

func TestUnlinkClearsState(t *testing.T) {
	g, a, b := buildPair(t)
	link(g, b.ID, "r", a.ID) // cycle a <-> b
	unlink(g, a.ID, "s", b.ID)
	if a.SelOut.Has("s") || a.PosSelOut.Has("s") {
		t.Errorf("source out state not cleared: %s", a)
	}
	if b.SelIn.Has("s") || b.PosSelIn.Has("s") {
		t.Errorf("target in state not cleared: %s", b)
	}
	if !a.Cycle.Empty() {
		t.Errorf("Cycle(a) must drop pairs starting with s: %s", a.Cycle)
	}
	if b.Cycle.Has(rsg.CyclePair{Out: "r", In: "s"}) {
		t.Errorf("Cycle(b) must drop pairs returning through s: %s", b.Cycle)
	}
	if g.HasLink(a.ID, "s", b.ID) {
		t.Error("link still present")
	}
}

func TestUnlinkUnshares(t *testing.T) {
	g, _, b := buildPair(t)
	c := rsg.NewNode("t")
	c.Singleton = true
	g.AddNode(c)
	g.SetPvar("z", c.ID)
	link(g, c.ID, "s", b.ID)
	if !b.SharedBy("s") {
		t.Fatal("precondition: b shared by s")
	}
	unlink(g, c.ID, "s", b.ID)
	if b.SharedBy("s") {
		t.Errorf("one singleton-sourced reference remains; SHSEL must clear: %s", b)
	}
	if b.Shared {
		t.Errorf("SHARED must clear when one reference remains: %s", b)
	}
}

func TestSelfLinkCycle(t *testing.T) {
	g := rsg.NewGraph()
	a := rsg.NewNode("t")
	a.Singleton = true
	g.AddNode(a)
	g.SetPvar("x", a.ID)
	link(g, a.ID, "s", a.ID)
	if !a.Cycle.Has(rsg.CyclePair{Out: "s", In: "s"}) {
		t.Errorf("self link must record <s,s>: %s", a.Cycle)
	}
	// Self reference counts as a heap reference: not shared though
	// (single reference).
	if a.Shared {
		t.Errorf("self link alone is one reference: %s", a)
	}
}

// TestStepFunctionsShareUnchangedGraphs verifies the no-op fast paths
// used by the engine memo: the same *Graph pointer comes back.
func TestStepFunctionsShareUnchangedGraphs(t *testing.T) {
	ctx := &Context{Level: rsg.L1}
	g := rsg.NewGraph()

	if out := StepNil(ctx, g, "x"); len(out) != 1 || out[0] != g {
		t.Error("StepNil on a NULL pvar must share the graph")
	}
	if out := StepCopy(ctx, g, "x", "y"); len(out) != 1 || out[0] != g {
		t.Error("StepCopy with both NULL must share the graph")
	}
	if out := StepEraseTouch(ctx, g, rsg.NewPvarSet("p")); len(out) != 1 || out[0] != g {
		t.Error("StepEraseTouch with no touched nodes must share the graph")
	}
}

func TestStepDereferenceNullReturnsNil(t *testing.T) {
	d := &Diagnostics{}
	ctx := &Context{Level: rsg.L1, Diags: d}
	g := rsg.NewGraph()
	if out := StepSelNil(ctx, g, "x", "s"); out != nil {
		t.Error("StepSelNil through NULL must produce no successors")
	}
	if out := StepSelCopy(ctx, g, "x", "s", "y"); out != nil {
		t.Error("StepSelCopy through NULL must produce no successors")
	}
	if out := StepLoad(ctx, g, "x", "y", "s"); out != nil {
		t.Error("StepLoad through NULL must produce no successors")
	}
	if d.NullDerefs != 3 {
		t.Errorf("NullDerefs = %d, want 3", d.NullDerefs)
	}
}

func TestSetAndStepAgree(t *testing.T) {
	// The Set-level wrappers must agree with mapping the Step functions
	// manually.
	c := ctx(rsg.L1)
	s := XMalloc(c, empty(), "a", "node")
	s = XMalloc(c, s, "b", "node")
	s = XSelCopy(c, s, "a", "nxt", "b")

	manual := rsrsg.New()
	for _, g := range s.Graphs() {
		for _, og := range StepSelNil(c, g, "a", "nxt") {
			manual.Add(og)
		}
	}
	manual.Reduce(rsg.L1, c.Opts)

	viaSet := XSelNil(c, s, "a", "nxt")
	if !manual.Equal(viaSet) {
		t.Errorf("Set wrapper and Step mapping disagree:\n%s\nvs\n%s", manual, viaSet)
	}
}
