// Package absem implements the abstract semantics of the paper's six
// simple pointer statements over RSRSGs (Sect. 2, Fig. 2):
//
//	x = NULL        x = malloc       x = y
//	x->sel = NULL   x->sel = y       x = y->sel
//
// Every statement follows the Fig. 2 pipeline: each input RSG is
// divided and pruned, the abstract effect of the statement is applied
// (materializing summary nodes where a strong update is needed), each
// result is compressed, and the resulting graphs are reduced into the
// output RSRSG by joining compatible ones.
//
// The per-graph transfer functions (StepNil, StepLoad, ...) live in
// stepgraph.go; the Set-level functions here map them over an RSRSG and
// reduce. The analysis engine calls the per-graph functions directly so
// it can memoize them per (statement, graph-signature).
//
// More complex pointer statements are built from these six plus
// temporary pvars by the frontend (internal/ir).
package absem

import (
	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// Context carries the per-statement analysis configuration.
type Context struct {
	// Level is the progressive analysis level (L1/L2/L3).
	Level rsg.Level
	// Opts tunes the RSRSG reduction.
	Opts rsrsg.Options
	// InLoop reports whether the statement is inside a loop body; TOUCH
	// information is only maintained there (Sect. 3).
	InLoop bool
	// Induction holds the induction pvars of the enclosing loops; only
	// these are eligible for TOUCH sets.
	Induction rsg.PvarSet
	// Diags accumulates analysis diagnostics; may be nil. The counters
	// reflect first computations: the engine memoizes per-graph
	// transfers, and cache hits do not recount.
	Diags *Diagnostics
	// DisableCyclePrune turns the NL_PRUNE cycle-link rule off; only the
	// ablation benchmarks set it.
	DisableCyclePrune bool
	// NoCompress skips per-statement compression; only the ablation
	// benchmarks set it.
	NoCompress bool
	// LegacyUnsound restores the engine's two historical soundness bugs:
	// PRUNE is routed to rsg.PruneLegacyShare (pre-anchoring share
	// eviction) and re-linking keeps the stale vacuous CYCLELINKS pairs
	// JOIN can leave behind. Only the triage tooling sets it, to
	// reproduce and regression-test historical soundness failures.
	LegacyUnsound bool
}

// Diagnostics counts noteworthy abstract events.
type Diagnostics struct {
	// NullDerefs counts graph branches dropped because a dereferenced
	// pvar could be NULL.
	NullDerefs int
	// InfeasibleBranches counts division branches discarded by PRUNE.
	InfeasibleBranches int
	// Materializations counts summary-node focus operations.
	Materializations int
	// Joins counts RSG unions performed during reduction.
	Joins int
	// Compressions counts node merges performed by COMPRESS.
	Compressions int
}

// Add accumulates o's counters into d. The parallel engine gives each
// transfer worker a private Diagnostics and folds them back through
// Add in job order, so the totals match a sequential run.
func (d *Diagnostics) Add(o Diagnostics) {
	d.NullDerefs += o.NullDerefs
	d.InfeasibleBranches += o.InfeasibleBranches
	d.Materializations += o.Materializations
	d.Joins += o.Joins
	d.Compressions += o.Compressions
}

func (c *Context) touchEligibleSym(x rsg.Sym) bool {
	return c.Level.UseTouch() && c.InLoop && c.Induction.HasSym(x)
}

func (c *Context) compress(g *rsg.Graph) {
	if c.NoCompress {
		return
	}
	n := rsg.Compress(g, c.Level)
	if c.Diags != nil {
		c.Diags.Compressions += n
	}
}

func (c *Context) reduce(graphs []*rsg.Graph) *rsrsg.Set {
	out := rsrsg.New()
	for _, g := range graphs {
		out.AddStats(g, c.Opts.Stats)
	}
	joins := out.Reduce(c.Level, c.Opts)
	if c.Diags != nil {
		c.Diags.Joins += joins
	}
	return out
}

// mapStep applies a per-graph transfer over the set and reduces.
func mapStep(ctx *Context, in *rsrsg.Set, f func(*rsg.Graph) []*rsg.Graph) *rsrsg.Set {
	var out []*rsg.Graph
	for _, g := range in.Graphs() {
		out = append(out, f(g)...)
	}
	return ctx.reduce(out)
}

// XNil is the abstract semantics of "x = NULL".
func XNil(ctx *Context, in *rsrsg.Set, x string) *rsrsg.Set {
	return mapStep(ctx, in, func(g *rsg.Graph) []*rsg.Graph { return StepNil(ctx, g, x) })
}

// XMalloc is the abstract semantics of "x = malloc(sizeof(struct typ))".
func XMalloc(ctx *Context, in *rsrsg.Set, x, typ string) *rsrsg.Set {
	return mapStep(ctx, in, func(g *rsg.Graph) []*rsg.Graph { return StepMalloc(ctx, g, x, typ) })
}

// XCopy is the abstract semantics of "x = y".
func XCopy(ctx *Context, in *rsrsg.Set, x, y string) *rsrsg.Set {
	if x == y {
		return in.Clone()
	}
	return mapStep(ctx, in, func(g *rsg.Graph) []*rsg.Graph { return StepCopy(ctx, g, x, y) })
}

// XSelNil is the abstract semantics of "x->sel = NULL".
func XSelNil(ctx *Context, in *rsrsg.Set, x, sel string) *rsrsg.Set {
	return mapStep(ctx, in, func(g *rsg.Graph) []*rsg.Graph { return StepSelNil(ctx, g, x, sel) })
}

// XSelCopy is the abstract semantics of "x->sel = y".
func XSelCopy(ctx *Context, in *rsrsg.Set, x, sel, y string) *rsrsg.Set {
	return mapStep(ctx, in, func(g *rsg.Graph) []*rsg.Graph { return StepSelCopy(ctx, g, x, sel, y) })
}

// XLoad is the abstract semantics of "x = y->sel".
func XLoad(ctx *Context, in *rsrsg.Set, x, y, sel string) *rsrsg.Set {
	return mapStep(ctx, in, func(g *rsg.Graph) []*rsg.Graph { return StepLoad(ctx, g, x, y, sel) })
}

// EraseTouch removes the given induction pvars from every TOUCH set in
// the RSRSG; the analysis engine applies it on loop-exit edges, because
// "after exiting a loop body the TOUCH information regarding the ipvars
// of this loop are not needed any more" (Sect. 3).
func EraseTouch(ctx *Context, in *rsrsg.Set, ipvars rsg.PvarSet) *rsrsg.Set {
	if ipvars.Empty() {
		return in.Clone()
	}
	return mapStep(ctx, in, func(g *rsg.Graph) []*rsg.Graph { return StepEraseTouch(ctx, g, ipvars) })
}

func divide(ctx *Context, g *rsg.Graph, x, sel rsg.Sym) []rsg.Division {
	var divs []rsg.Division
	if ctx.LegacyUnsound {
		divs = rsg.DivideLegacyShareSym(g, x, sel)
	} else {
		divs = rsg.DivideSym(g, x, sel)
	}
	if ctx.Diags != nil {
		// Count branches the division pruned away as infeasible.
		n := g.PvarTargetSym(x)
		want := len(g.TargetsSym(n.ID, sel))
		if !n.SelOut.HasSym(sel) {
			want++
		}
		if d := want - len(divs); d > 0 {
			ctx.Diags.InfeasibleBranches += d
		}
	}
	return divs
}

func materialize(ctx *Context, g *rsg.Graph, src rsg.NodeID, sel rsg.Sym) rsg.NodeID {
	targets := g.TargetsSym(src, sel)
	if len(targets) == 1 {
		if t := g.Node(targets[0]); t != nil && !t.Singleton {
			if ctx.Diags != nil {
				ctx.Diags.Materializations++
			}
		}
	}
	return rsg.MaterializeSym(g, src, sel)
}

func prune(ctx *Context, g *rsg.Graph) bool {
	pruneFn := rsg.Prune
	if ctx.LegacyUnsound {
		pruneFn = rsg.PruneLegacyShare
	}
	if ctx.DisableCyclePrune {
		return pruneWithoutCycles(g, pruneFn)
	}
	ok := pruneFn(g)
	if !ok && ctx.Diags != nil {
		ctx.Diags.InfeasibleBranches++
	}
	return ok
}

// pruneWithoutCycles is the ablation variant: it blanks the CYCLELINKS
// sets so NL_PRUNE never fires, then restores them.
func pruneWithoutCycles(g *rsg.Graph, pruneFn func(*rsg.Graph) bool) bool {
	saved := make(map[rsg.NodeID]rsg.CycleSet)
	for _, n := range g.Nodes() {
		saved[n.ID] = n.Cycle
		n.Cycle = rsg.NewCycleSet()
	}
	ok := pruneFn(g)
	for _, n := range g.Nodes() {
		if c, found := saved[n.ID]; found {
			n.Cycle = c
		}
	}
	return ok
}
