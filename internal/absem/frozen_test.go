package absem

import (
	"testing"

	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// TestStepsNeverMutateFrozenInputs drives every per-graph transfer over
// frozen input graphs. The freeze guard turns any in-place mutation of
// an input into a panic, so simply completing the calls proves the
// clone-before-mutate discipline; the digest check additionally catches
// mutations of shared sub-structures (node property sets) that the
// graph-level guard cannot see.
func TestStepsNeverMutateFrozenInputs(t *testing.T) {
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		c := ctx(lvl)
		c.Induction = rsg.NewPvarSet("p")
		set := buildList(t, c)

		for _, g := range set.Graphs() {
			if !g.Frozen() {
				t.Fatal("set members must be frozen")
			}
			before := g.Digest()
			steps := []func(){
				func() { StepNil(c, g, "head") },
				func() { StepNil(c, g, "unbound") },
				func() { StepMalloc(c, g, "head", "node") },
				func() { StepMalloc(c, g, "fresh", "node") },
				func() { StepCopy(c, g, "p", "head") },
				func() { StepCopy(c, g, "fresh", "head") },
				func() { StepSelNil(c, g, "head", "nxt") },
				func() { StepSelCopy(c, g, "head", "nxt", "p") },
				func() { StepLoad(c, g, "p", "head", "nxt") },
			}
			for i, step := range steps {
				step()
				if g.Digest() != before {
					t.Fatalf("level %v: step %d mutated its frozen input", lvl, i)
				}
			}
		}

		// The set-level pipelines (divide/prune/materialize/compress)
		// must leave the input set's members untouched too.
		beforeSet := set.Digest()
		_ = XSelNil(c, set, "head", "nxt")
		_ = XLoad(c, set, "p", "head", "nxt")
		_ = AssumeNull(c, set, "p")
		_ = AssumeNonNull(c, set, "head")
		_ = EraseTouch(c, set, rsg.NewPvarSet("p"))
		if set.Digest() != beforeSet {
			t.Fatalf("level %v: set-level pipeline mutated its input set", lvl)
		}
	}
}

// TestEraseTouchOnFrozen exercises the touch-erasure clone path (it
// rewrites node TOUCH sets) against frozen members specifically.
func TestEraseTouchOnFrozen(t *testing.T) {
	c := ctx(rsg.L3)
	c.Induction = rsg.NewPvarSet("p")
	set := buildList(t, c)
	out := EraseTouch(c, set, rsg.NewPvarSet("p"))
	for _, g := range out.Graphs() {
		if !g.Frozen() {
			t.Fatal("EraseTouch output members must be frozen set members")
		}
	}
}

// TestSetMembersAlwaysFrozen: every construction path into an RSRSG
// freezes, so the analysis engine can share graphs across sets freely.
func TestSetMembersAlwaysFrozen(t *testing.T) {
	c := ctx(rsg.L1)
	s := empty()
	s = XMalloc(c, s, "x", "t")
	s = XSelNil(c, s, "x", "nxt")
	u := rsrsg.Union(rsg.L1, s, empty(), c.Opts)
	for _, g := range u.Graphs() {
		if !g.Frozen() {
			t.Fatal("union output member not frozen")
		}
	}
}
