package absem

import (
	"repro/internal/rsg"
)

// StepNil is the per-graph semantics of "x = NULL". The input graph is
// never mutated; when the statement is a no-op for this graph, the
// graph itself is returned (callers treat graphs as immutable).
func StepNil(ctx *Context, g *rsg.Graph, x string) []*rsg.Graph {
	if g.PvarTarget(x) == nil {
		return []*rsg.Graph{g}
	}
	g2 := g.Clone()
	g2.ClearPvar(x)
	g2.CollectGarbage()
	ctx.compress(g2)
	return []*rsg.Graph{g2}
}

// StepMalloc is the per-graph semantics of "x = malloc(...)".
func StepMalloc(ctx *Context, g *rsg.Graph, x, typ string) []*rsg.Graph {
	g2 := g.Clone()
	g2.ClearPvar(x)
	g2.CollectGarbage()
	n := rsg.NewNode(typ)
	n.Singleton = true
	g2.AddNode(n)
	g2.SetPvar(x, n.ID)
	ctx.compress(g2)
	return []*rsg.Graph{g2}
}

// StepCopy is the per-graph semantics of "x = y".
func StepCopy(ctx *Context, g *rsg.Graph, x, y string) []*rsg.Graph {
	if x == y {
		return []*rsg.Graph{g}
	}
	if g.PvarTarget(y) == nil && g.PvarTarget(x) == nil {
		return []*rsg.Graph{g}
	}
	g2 := g.Clone()
	yt := g2.PvarTarget(y)
	g2.ClearPvar(x)
	if yt != nil {
		g2.SetPvar(x, yt.ID)
		if ctx.touchEligible(x) {
			yt.Touch.Add(x)
		}
	}
	g2.CollectGarbage()
	ctx.compress(g2)
	return []*rsg.Graph{g2}
}

// StepSelNil is the per-graph semantics of "x->sel = NULL". A nil
// result list means the graph has no successor configuration (NULL
// dereference).
func StepSelNil(ctx *Context, g *rsg.Graph, x, sel string) []*rsg.Graph {
	if g.PvarTarget(x) == nil {
		if ctx.Diags != nil {
			ctx.Diags.NullDerefs++
		}
		return nil
	}
	var out []*rsg.Graph
	for _, div := range divide(ctx, g, x, sel) {
		g2 := div.G
		if div.Target >= 0 {
			src := g2.PvarTarget(x)
			nm := materialize(ctx, g2, src.ID, sel)
			unlink(g2, src.ID, sel, nm)
		}
		if !prune(ctx, g2) {
			continue
		}
		g2.CollectGarbage()
		ctx.compress(g2)
		out = append(out, g2)
	}
	return out
}

// StepSelCopy is the per-graph semantics of "x->sel = y".
func StepSelCopy(ctx *Context, g *rsg.Graph, x, sel, y string) []*rsg.Graph {
	if g.PvarTarget(x) == nil {
		if ctx.Diags != nil {
			ctx.Diags.NullDerefs++
		}
		return nil
	}
	var out []*rsg.Graph
	for _, div := range divide(ctx, g, x, sel) {
		g2 := div.G
		src := g2.PvarTarget(x)
		if div.Target >= 0 {
			nm := materialize(ctx, g2, src.ID, sel)
			unlink(g2, src.ID, sel, nm)
		}
		if yt := g2.PvarTarget(y); yt != nil {
			link(g2, src.ID, sel, yt.ID)
		}
		if !prune(ctx, g2) {
			continue
		}
		g2.CollectGarbage()
		ctx.compress(g2)
		out = append(out, g2)
	}
	return out
}

// StepLoad is the per-graph semantics of "x = y->sel".
func StepLoad(ctx *Context, g *rsg.Graph, x, y, sel string) []*rsg.Graph {
	if g.PvarTarget(y) == nil {
		if ctx.Diags != nil {
			ctx.Diags.NullDerefs++
		}
		return nil
	}
	var out []*rsg.Graph
	for _, div := range divide(ctx, g, y, sel) {
		g2 := div.G
		if div.Target < 0 {
			g2.ClearPvar(x)
		} else {
			src := g2.PvarTarget(y)
			nm := materialize(ctx, g2, src.ID, sel)
			g2.ClearPvar(x)
			g2.SetPvar(x, nm)
			if ctx.touchEligible(x) {
				g2.Node(nm).Touch.Add(x)
			}
		}
		if !prune(ctx, g2) {
			continue
		}
		g2.CollectGarbage()
		ctx.compress(g2)
		out = append(out, g2)
	}
	return out
}

// StepEraseTouch removes the given induction pvars from every TOUCH set
// of one graph.
func StepEraseTouch(ctx *Context, g *rsg.Graph, ipvars rsg.PvarSet) []*rsg.Graph {
	if len(ipvars) == 0 {
		return []*rsg.Graph{g}
	}
	touched := false
	for _, n := range g.Nodes() {
		for p := range ipvars {
			if n.Touch.Has(p) {
				touched = true
			}
		}
	}
	if !touched {
		return []*rsg.Graph{g}
	}
	g2 := g.Clone()
	for _, n := range g2.Nodes() {
		for p := range ipvars {
			n.Touch.Remove(p)
		}
	}
	ctx.compress(g2)
	return []*rsg.Graph{g2}
}
