package absem

import (
	"repro/internal/rsg"
)

// The per-graph transfer functions come in two addressing modes: the
// *Sym forms take interned symbols and are what the analysis engine
// calls on every visit (the IR resolves names to Syms at lowering
// time, so the hot path never hashes a string); the string forms are
// thin interning wrappers kept for tests and ad-hoc callers.

// StepNil is the per-graph semantics of "x = NULL". The input graph is
// never mutated; when the statement is a no-op for this graph, the
// graph itself is returned (callers treat graphs as immutable).
func StepNil(ctx *Context, g *rsg.Graph, x string) []*rsg.Graph {
	return StepNilSym(ctx, g, rsg.PvarSym(x))
}

// StepNilSym is StepNil addressed by interned pvar.
func StepNilSym(ctx *Context, g *rsg.Graph, x rsg.Sym) []*rsg.Graph {
	if g.PvarTargetSym(x) == nil {
		return []*rsg.Graph{g}
	}
	g2 := g.Clone()
	g2.ClearPvarSym(x)
	g2.CollectGarbage()
	ctx.compress(g2)
	return []*rsg.Graph{g2}
}

// StepMalloc is the per-graph semantics of "x = malloc(...)".
func StepMalloc(ctx *Context, g *rsg.Graph, x, typ string) []*rsg.Graph {
	return StepMallocSym(ctx, g, rsg.PvarSym(x), rsg.TypeSym(typ))
}

// StepMallocSym is StepMalloc addressed by interned pvar and type.
func StepMallocSym(ctx *Context, g *rsg.Graph, x, typ rsg.Sym) []*rsg.Graph {
	g2 := g.Clone()
	g2.ClearPvarSym(x)
	g2.CollectGarbage()
	n := rsg.NewNode(rsg.TypeName(typ))
	n.Singleton = true
	g2.AddNode(n)
	g2.SetPvarSym(x, n.ID)
	ctx.compress(g2)
	return []*rsg.Graph{g2}
}

// StepCopy is the per-graph semantics of "x = y".
func StepCopy(ctx *Context, g *rsg.Graph, x, y string) []*rsg.Graph {
	return StepCopySym(ctx, g, rsg.PvarSym(x), rsg.PvarSym(y))
}

// StepCopySym is StepCopy addressed by interned pvars.
func StepCopySym(ctx *Context, g *rsg.Graph, x, y rsg.Sym) []*rsg.Graph {
	if x == y {
		return []*rsg.Graph{g}
	}
	if g.PvarTargetSym(y) == nil && g.PvarTargetSym(x) == nil {
		return []*rsg.Graph{g}
	}
	g2 := g.Clone()
	yt := g2.PvarTargetSym(y)
	g2.ClearPvarSym(x)
	if yt != nil {
		g2.SetPvarSym(x, yt.ID)
		if ctx.touchEligibleSym(x) {
			yt.Touch.AddSym(x)
		}
	}
	g2.CollectGarbage()
	ctx.compress(g2)
	return []*rsg.Graph{g2}
}

// StepSelNil is the per-graph semantics of "x->sel = NULL". A nil
// result list means the graph has no successor configuration (NULL
// dereference).
func StepSelNil(ctx *Context, g *rsg.Graph, x, sel string) []*rsg.Graph {
	return StepSelNilSym(ctx, g, rsg.PvarSym(x), rsg.SelSym(sel))
}

// StepSelNilSym is StepSelNil addressed by interned pvar and selector.
func StepSelNilSym(ctx *Context, g *rsg.Graph, x, sel rsg.Sym) []*rsg.Graph {
	if g.PvarTargetSym(x) == nil {
		if ctx.Diags != nil {
			ctx.Diags.NullDerefs++
		}
		return nil
	}
	var out []*rsg.Graph
	for _, div := range divide(ctx, g, x, sel) {
		g2 := div.G
		if div.Target >= 0 {
			src := g2.PvarTargetSym(x)
			nm := materialize(ctx, g2, src.ID, sel)
			unlinkSym(g2, src.ID, sel, nm)
		}
		if !prune(ctx, g2) {
			continue
		}
		g2.CollectGarbage()
		ctx.compress(g2)
		out = append(out, g2)
	}
	return out
}

// StepSelCopy is the per-graph semantics of "x->sel = y".
func StepSelCopy(ctx *Context, g *rsg.Graph, x, sel, y string) []*rsg.Graph {
	return StepSelCopySym(ctx, g, rsg.PvarSym(x), rsg.SelSym(sel), rsg.PvarSym(y))
}

// StepSelCopySym is StepSelCopy addressed by interned symbols.
func StepSelCopySym(ctx *Context, g *rsg.Graph, x, sel, y rsg.Sym) []*rsg.Graph {
	if g.PvarTargetSym(x) == nil {
		if ctx.Diags != nil {
			ctx.Diags.NullDerefs++
		}
		return nil
	}
	var out []*rsg.Graph
	for _, div := range divide(ctx, g, x, sel) {
		g2 := div.G
		src := g2.PvarTargetSym(x)
		if div.Target >= 0 {
			nm := materialize(ctx, g2, src.ID, sel)
			unlinkSym(g2, src.ID, sel, nm)
		}
		if yt := g2.PvarTargetSym(y); yt != nil {
			linkSym(g2, src.ID, sel, yt.ID, ctx.LegacyUnsound)
		}
		if !prune(ctx, g2) {
			continue
		}
		g2.CollectGarbage()
		ctx.compress(g2)
		out = append(out, g2)
	}
	return out
}

// StepLoad is the per-graph semantics of "x = y->sel".
func StepLoad(ctx *Context, g *rsg.Graph, x, y, sel string) []*rsg.Graph {
	return StepLoadSym(ctx, g, rsg.PvarSym(x), rsg.PvarSym(y), rsg.SelSym(sel))
}

// StepLoadSym is StepLoad addressed by interned symbols.
func StepLoadSym(ctx *Context, g *rsg.Graph, x, y, sel rsg.Sym) []*rsg.Graph {
	if g.PvarTargetSym(y) == nil {
		if ctx.Diags != nil {
			ctx.Diags.NullDerefs++
		}
		return nil
	}
	var out []*rsg.Graph
	for _, div := range divide(ctx, g, y, sel) {
		g2 := div.G
		if div.Target < 0 {
			g2.ClearPvarSym(x)
		} else {
			src := g2.PvarTargetSym(y)
			nm := materialize(ctx, g2, src.ID, sel)
			g2.ClearPvarSym(x)
			g2.SetPvarSym(x, nm)
			if ctx.touchEligibleSym(x) {
				g2.Node(nm).Touch.AddSym(x)
			}
		}
		if !prune(ctx, g2) {
			continue
		}
		g2.CollectGarbage()
		ctx.compress(g2)
		out = append(out, g2)
	}
	return out
}

// StepEraseTouch removes the given induction pvars from every TOUCH set
// of one graph.
func StepEraseTouch(ctx *Context, g *rsg.Graph, ipvars rsg.PvarSet) []*rsg.Graph {
	if ipvars.Empty() {
		return []*rsg.Graph{g}
	}
	touched := false
	for _, n := range g.Nodes() {
		if n.Touch.Intersects(ipvars) {
			touched = true
			break
		}
	}
	if !touched {
		return []*rsg.Graph{g}
	}
	g2 := g.Clone()
	for _, n := range g2.Nodes() {
		n.Touch = n.Touch.Minus(ipvars)
	}
	ctx.compress(g2)
	return []*rsg.Graph{g2}
}
