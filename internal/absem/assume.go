package absem

import (
	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// AssumeNull filters the RSRSG down to the configurations where x is
// NULL. Within one RSG a pvar either references a node (non-NULL in
// every covered configuration) or is absent from PL (NULL in every
// covered configuration), so the filter is exact at graph granularity.
// It implements the true edge of an `if (x == NULL)` condition.
func AssumeNull(ctx *Context, in *rsrsg.Set, x string) *rsrsg.Set {
	return in.Filter(func(g *rsg.Graph) bool { return g.PvarTarget(x) == nil })
}

// AssumeNonNull filters the RSRSG down to the configurations where x
// references a node; the true edge of `if (x != NULL)`.
func AssumeNonNull(ctx *Context, in *rsrsg.Set, x string) *rsrsg.Set {
	return in.Filter(func(g *rsg.Graph) bool { return g.PvarTarget(x) != nil })
}
