package absem

import (
	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// AssumeNull filters the RSRSG down to the configurations where x is
// NULL. Within one RSG a pvar either references a node (non-NULL in
// every covered configuration) or is absent from PL (NULL in every
// covered configuration), so the filter is exact at graph granularity.
// It implements the true edge of an `if (x == NULL)` condition.
func AssumeNull(ctx *Context, in *rsrsg.Set, x string) *rsrsg.Set {
	return AssumeNullSym(ctx, in, rsg.PvarSym(x))
}

// AssumeNullSym is AssumeNull addressed by interned pvar.
func AssumeNullSym(ctx *Context, in *rsrsg.Set, x rsg.Sym) *rsrsg.Set {
	return in.Filter(func(g *rsg.Graph) bool { return g.PvarTargetSym(x) == nil })
}

// AssumeNonNull filters the RSRSG down to the configurations where x
// references a node; the true edge of `if (x != NULL)`.
func AssumeNonNull(ctx *Context, in *rsrsg.Set, x string) *rsrsg.Set {
	return AssumeNonNullSym(ctx, in, rsg.PvarSym(x))
}

// AssumeNonNullSym is AssumeNonNull addressed by interned pvar.
func AssumeNonNullSym(ctx *Context, in *rsrsg.Set, x rsg.Sym) *rsrsg.Set {
	return in.Filter(func(g *rsg.Graph) bool { return g.PvarTargetSym(x) != nil })
}

// AssumeNullDelta is the semi-naïve variant of AssumeNull: instead of
// re-filtering the whole in-state, it folds an in-state membership
// delta into the cached filter result. Because the filter is a plain
// per-graph predicate, applying the delta yields exactly the set a full
// AssumeNull over the new in-state would build.
func AssumeNullDelta(ctx *Context, cached *rsrsg.Set, added []*rsg.Graph, removed []rsg.Digest, x string) {
	AssumeNullDeltaSym(ctx, cached, added, removed, rsg.PvarSym(x))
}

// AssumeNullDeltaSym is AssumeNullDelta addressed by interned pvar.
func AssumeNullDeltaSym(ctx *Context, cached *rsrsg.Set, added []*rsg.Graph, removed []rsg.Digest, x rsg.Sym) {
	assumeDelta(cached, ctx.Opts.Stats, added, removed, func(g *rsg.Graph) bool { return g.PvarTargetSym(x) == nil })
}

// AssumeNonNullDelta is the semi-naïve variant of AssumeNonNull.
func AssumeNonNullDelta(ctx *Context, cached *rsrsg.Set, added []*rsg.Graph, removed []rsg.Digest, x string) {
	AssumeNonNullDeltaSym(ctx, cached, added, removed, rsg.PvarSym(x))
}

// AssumeNonNullDeltaSym is AssumeNonNullDelta addressed by interned pvar.
func AssumeNonNullDeltaSym(ctx *Context, cached *rsrsg.Set, added []*rsg.Graph, removed []rsg.Digest, x rsg.Sym) {
	assumeDelta(cached, ctx.Opts.Stats, added, removed, func(g *rsg.Graph) bool { return g.PvarTargetSym(x) != nil })
}

func assumeDelta(cached *rsrsg.Set, rec *rsg.RunStats, added []*rsg.Graph, removed []rsg.Digest, pred func(*rsg.Graph) bool) {
	for _, dig := range removed {
		cached.Remove(dig)
	}
	for _, g := range added {
		if pred(g) {
			cached.AddStats(g, rec)
		}
	}
}

// EraseMemo caches EraseTouch results per loop-exit edge. The erased
// ipvar set of an edge is static, so the result is fully determined by
// the input RSRSG; during the fixed point the same predecessor
// out-state crosses the same edge many times, and the memo skips the
// per-graph re-stepping and re-reduction on every repeat. The cached
// set is returned as-is — callers (the engine's in-state accumulation)
// only read it.
type EraseMemo struct {
	m map[uint64]eraseMemoEntry
}

type eraseMemoEntry struct {
	n   int
	dig rsg.Digest
	out *rsrsg.Set
}

// Apply returns EraseTouch(ctx, in, ipvars), served from the memo when
// the edge's input set is unchanged since the last visit.
func (em *EraseMemo) Apply(ctx *Context, edge uint64, in *rsrsg.Set, ipvars rsg.PvarSet) *rsrsg.Set {
	if e, ok := em.m[edge]; ok && e.n == in.Len() && e.dig == in.Digest() {
		return e.out
	}
	out := EraseTouch(ctx, in, ipvars)
	if em.m == nil {
		em.m = make(map[uint64]eraseMemoEntry)
	}
	em.m[edge] = eraseMemoEntry{n: in.Len(), dig: in.Digest(), out: out}
	return out
}
