package absem

import (
	"testing"

	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

func ctx(lvl rsg.Level) *Context {
	return &Context{Level: lvl, Diags: &Diagnostics{}}
}

func single(g *rsg.Graph) *rsrsg.Set {
	s := rsrsg.New()
	s.Add(g)
	return s
}

func empty() *rsrsg.Set {
	return single(rsg.NewGraph())
}

// buildList executes, abstractly, the statement sequence that builds a
// singly-linked list of unbounded length:
//
//	head = malloc; head->nxt = NULL; p = head;
//	loop { q = malloc; q->nxt = NULL; p->nxt = q; p = q; }
//
// iterating the loop body until the RSRSG reaches a fixed point, and
// returns the final set.
func buildList(t *testing.T, c *Context) *rsrsg.Set {
	t.Helper()
	s := empty()
	s = XMalloc(c, s, "head", "node")
	s = XSelNil(c, s, "head", "nxt")
	s = XCopy(c, s, "p", "head")

	body := func(in *rsrsg.Set) *rsrsg.Set {
		out := XMalloc(c, in, "q", "node")
		out = XSelNil(c, out, "q", "nxt")
		out = XSelCopy(c, out, "p", "nxt", "q")
		out = XCopy(c, out, "p", "q")
		out = XNil(c, out, "q")
		return out
	}
	// Fixed point over "zero or more iterations".
	cur := s
	for i := 0; i < 50; i++ {
		next := rsrsg.Union(c.Level, cur, body(cur), c.Opts)
		if next.Equal(cur) {
			return cur
		}
		cur = next
	}
	t.Fatalf("list construction did not reach a fixed point in 50 iterations")
	return nil
}

func TestMallocCreatesSingleton(t *testing.T) {
	c := ctx(rsg.L1)
	s := XMalloc(c, empty(), "x", "node")
	if s.Len() != 1 {
		t.Fatalf("got %d graphs, want 1", s.Len())
	}
	g := s.Graphs()[0]
	n := g.PvarTarget("x")
	if n == nil {
		t.Fatal("x does not reference the fresh node")
	}
	if !n.Singleton || n.Shared || n.Type != "node" {
		t.Errorf("fresh node has wrong properties: %s", n)
	}
	if g.NumNodes() != 1 || g.NumLinks() != 0 {
		t.Errorf("fresh graph should have exactly the malloc node, got:\n%s", g)
	}
}

func TestNilDropsUnreachable(t *testing.T) {
	c := ctx(rsg.L1)
	s := XMalloc(c, empty(), "x", "node")
	s = XNil(c, s, "x")
	g := s.Graphs()[0]
	if g.NumNodes() != 0 {
		t.Errorf("after x = NULL the heap node is garbage and must be collected, got:\n%s", g)
	}
}

func TestCopyAliases(t *testing.T) {
	c := ctx(rsg.L1)
	s := XMalloc(c, empty(), "x", "node")
	s = XCopy(c, s, "y", "x")
	g := s.Graphs()[0]
	xt, yt := g.PvarTarget("x"), g.PvarTarget("y")
	if xt == nil || yt == nil || xt.ID != yt.ID {
		t.Fatalf("x and y must alias after x = y:\n%s", g)
	}
	if xt.Shared {
		t.Errorf("pvar references do not count toward SHARED")
	}
}

func TestSelfCopyIsIdentity(t *testing.T) {
	c := ctx(rsg.L1)
	s := XMalloc(c, empty(), "x", "node")
	s2 := XCopy(c, s, "x", "x")
	if !s.Equal(s2) {
		t.Errorf("x = x must not change the RSRSG")
	}
}

func TestSelCopyLinksAndShareInfo(t *testing.T) {
	c := ctx(rsg.L1)
	s := XMalloc(c, empty(), "a", "node")
	s = XMalloc(c, s, "b", "node")
	s = XSelCopy(c, s, "a", "nxt", "b")
	g := s.Graphs()[0]
	at, bt := g.PvarTarget("a"), g.PvarTarget("b")
	if !g.HasLink(at.ID, "nxt", bt.ID) {
		t.Fatalf("missing <a,nxt,b> link:\n%s", g)
	}
	if !at.SelOut.Has("nxt") {
		t.Errorf("nxt must be definite in SELOUT(a)")
	}
	if !bt.SelIn.Has("nxt") {
		t.Errorf("nxt must be definite in SELIN(b)")
	}
	if bt.Shared || bt.SharedBy("nxt") {
		t.Errorf("a single reference must not set the share attributes: %s", bt)
	}
}

func TestSelCopySharingDetected(t *testing.T) {
	c := ctx(rsg.L1)
	s := XMalloc(c, empty(), "a", "node")
	s = XMalloc(c, s, "b", "node")
	s = XMalloc(c, s, "t", "node")
	s = XSelCopy(c, s, "a", "nxt", "t")
	s = XSelCopy(c, s, "b", "nxt", "t")
	g := s.Graphs()[0]
	tt := g.PvarTarget("t")
	if !tt.Shared || !tt.SharedBy("nxt") {
		t.Errorf("t is referenced twice through nxt; SHARED and SHSEL(nxt) must hold: %s", tt)
	}

	// Removing one of the two references makes the target unshared
	// again (the remaining sources are all singletons, so the analysis
	// can prove it).
	s = XSelNil(c, s, "b", "nxt")
	g = s.Graphs()[0]
	tt = g.PvarTarget("t")
	if tt.SharedBy("nxt") {
		t.Errorf("after b->nxt = NULL only one nxt reference remains: %s", tt)
	}
	if tt.Shared {
		t.Errorf("after b->nxt = NULL the node is not shared: %s", tt)
	}
}

func TestSelNilOnNullSelectorIsNoop(t *testing.T) {
	c := ctx(rsg.L1)
	s := XMalloc(c, empty(), "a", "node")
	s2 := XSelNil(c, s, "a", "nxt") // a->nxt is already NULL
	if s2.Len() != 1 {
		t.Fatalf("got %d graphs, want 1", s2.Len())
	}
	g := s2.Graphs()[0]
	if g.NumLinks() != 0 || g.NumNodes() != 1 {
		t.Errorf("a->nxt = NULL on a fresh node must keep the graph trivial:\n%s", g)
	}
}

func TestNullDereferenceDropsGraph(t *testing.T) {
	c := ctx(rsg.L1)
	s := empty()
	s2 := XSelNil(c, s, "a", "nxt") // a is NULL
	if s2.Len() != 0 {
		t.Fatalf("dereferencing NULL must produce no successor configuration")
	}
	if c.Diags.NullDerefs != 1 {
		t.Errorf("NullDerefs = %d, want 1", c.Diags.NullDerefs)
	}
}

func TestLoadMaterializesTraversal(t *testing.T) {
	c := ctx(rsg.L1)
	s := buildList(t, c)

	// Traverse one step: p2 = head->nxt.
	s2 := XLoad(c, s, "p2", "head", "nxt")
	if s2.Len() == 0 {
		t.Fatal("traversal produced no graphs")
	}
	for _, g := range s2.Graphs() {
		p2 := g.PvarTarget("p2")
		if p2 == nil {
			continue // branch where head->nxt == NULL (single-element list)
		}
		if !p2.Singleton {
			t.Errorf("p2 must reference a materialized singleton: %s\n%s", p2, g)
		}
		if p2.SharedBy("nxt") {
			t.Errorf("list element must not be shared by nxt: %s", p2)
		}
	}
}

func TestListFixedPointShape(t *testing.T) {
	c := ctx(rsg.L1)
	s := buildList(t, c)

	if s.Len() == 0 {
		t.Fatal("empty RSRSG after list construction")
	}
	if s.Len() > 4 {
		t.Errorf("list fixed point should stay small, got %d graphs", s.Len())
	}
	for _, g := range s.Graphs() {
		for _, n := range g.Nodes() {
			if n.Shared {
				t.Errorf("singly-linked list nodes are never shared: %s\n%s", n, g)
			}
			if n.SharedBy("nxt") {
				t.Errorf("list nodes are never shared by nxt: %s\n%s", n, g)
			}
		}
		// head references the first element.
		if g.PvarTarget("head") == nil {
			t.Errorf("head lost its reference:\n%s", g)
		}
	}
}

func TestTouchTracking(t *testing.T) {
	c := ctx(rsg.L3)
	c.InLoop = true
	c.Induction = rsg.NewPvarSet("p")

	s := XMalloc(c, empty(), "head", "node")
	s = XCopy(c, s, "p", "head")
	g := s.Graphs()[0]
	if !g.PvarTarget("p").Touch.Has("p") {
		t.Errorf("p = head inside a loop must record the visit of induction pvar p: %s",
			g.PvarTarget("p"))
	}

	// Erasing the loop's ipvars clears the sets.
	s = EraseTouch(c, s, rsg.NewPvarSet("p"))
	g = s.Graphs()[0]
	if !g.PvarTarget("p").Touch.Empty() {
		t.Errorf("EraseTouch must clear the loop's induction pvars")
	}
}

func TestTouchIgnoredBelowL3(t *testing.T) {
	c := ctx(rsg.L2)
	c.InLoop = true
	c.Induction = rsg.NewPvarSet("p")
	s := XMalloc(c, empty(), "head", "node")
	s = XCopy(c, s, "p", "head")
	g := s.Graphs()[0]
	if !g.PvarTarget("p").Touch.Empty() {
		t.Errorf("TOUCH sets must not be built below L3")
	}
}
