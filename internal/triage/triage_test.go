package triage

import (
	"os"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
)

// hubRelinkSrc is the undistilled reproducer of the L1 hub-rotation
// soundness gap: a hub with two selectors into one target, a loop that
// links back into the hub and rotates `p = q`. Under the legacy
// (pre-anchoring) PRUNE it yields an RSRSG that misses reachable heaps;
// the fixed engine covers them. The committed corpus case
// internal/concrete/testdata/hub_rotation.c is this program after
// Shrink.
const hubRelinkSrc = `
struct node { int v; struct node *nxt; struct node *prv; };

void main(void) {
    struct node *h;
    struct node *p;
    struct node *q;
    h = malloc(sizeof(struct node));
    p = malloc(sizeof(struct node));
    h->nxt = p;
    h->prv = p;
    while (cond) {
        q = malloc(sizeof(struct node));
        q->nxt = h;
        p->nxt = q;
        h->prv = q;
        p = q;
    }
}
`

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := cminic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.LowerMain(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func legacyOpts() analysis.Options {
	return analysis.Options{Level: rsg.L1, MaxVisits: 50000, LegacyUnsound: true}
}

func fixedOpts() analysis.Options {
	return analysis.Options{Level: rsg.L1, MaxVisits: 50000}
}

// TestExplainNamesLegacyFailure drives the explainer over the legacy
// engine's unsound result: the report must name the failing statement
// and the node property that rejected the nearest embedding, and the
// DOT pair must carry both clusters.
func TestExplainNamesLegacyFailure(t *testing.T) {
	prog := compileSrc(t, hubRelinkSrc)
	res, err := analysis.Run(prog, legacyOpts())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explain(prog, res, 25, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("legacy engine unexpectedly covers the hub-rotation heaps; the ablation lost its bug")
	}
	text := rep.Text()
	if !strings.Contains(text, rep.Fail.Stmt) {
		t.Errorf("report does not name the failing statement %q:\n%s", rep.Fail.Stmt, text)
	}
	if !strings.Contains(text, "statement context:") || !strings.Contains(text, ">>") {
		t.Errorf("report lacks the statement context:\n%s", text)
	}
	nearest := rep.Fail.Nearest()
	if nearest == nil && !rep.Fail.EmptySet && len(rep.Fail.Graphs) > 0 {
		t.Fatalf("no nearest RSG in a non-empty failure")
	}
	if nearest != nil {
		if nearest.Headline.Kind == "" {
			t.Errorf("nearest RSG has no rejecting property")
		}
		if !strings.Contains(text, string(nearest.Headline.Kind)) {
			t.Errorf("report does not name the rejecting property %s:\n%s", nearest.Headline.Kind, text)
		}
	}
	dot := rep.DOT()
	if !strings.Contains(dot, "cluster_heap") {
		t.Errorf("DOT pair lacks the concrete-heap cluster:\n%s", dot)
	}
	if nearest != nil && !strings.Contains(dot, "cluster_nearest") {
		t.Errorf("DOT pair lacks the nearest-RSG cluster:\n%s", dot)
	}
}

// TestFixedEngineCoversHubRelink pins the fix: the same program under
// the current engine has no cover failure at any level.
func TestFixedEngineCoversHubRelink(t *testing.T) {
	prog := compileSrc(t, hubRelinkSrc)
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		res, err := analysis.Run(prog, analysis.Options{Level: lvl, MaxVisits: 50000})
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		rep, err := Explain(prog, res, 25, 42)
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		if rep != nil {
			t.Fatalf("%s: unexpected cover failure:\n%s", lvl, rep.Text())
		}
	}
}

// TestShrinkerProperties is the shrinker's contract on the hub-rotation
// find: the output still fails the pre-fix (legacy) engine, no longer
// fails the fixed engine, and is no larger than the input in
// statements.
func TestShrinkerProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking runs the analysis per candidate")
	}
	legacy := SoundnessPredicate(legacyOpts(), 10, 42)
	fixed := SoundnessPredicate(fixedOpts(), 10, 42)
	out, err := Shrink(hubRelinkSrc, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if !legacy(out) {
		t.Fatalf("shrunk program no longer fails the legacy engine:\n%s", out)
	}
	if fixed(out) {
		t.Fatalf("shrunk program still fails the fixed engine:\n%s", out)
	}
	nIn, err := StmtCount(hubRelinkSrc)
	if err != nil {
		t.Fatal(err)
	}
	nOut, err := StmtCount(out)
	if err != nil {
		t.Fatalf("shrunk program does not parse: %v\n%s", err, out)
	}
	if nOut > nIn {
		t.Fatalf("shrunk program grew: %d -> %d statements\n%s", nIn, nOut, out)
	}
	t.Logf("shrunk %d -> %d statements:\n%s", nIn, nOut, out)
}

// TestHubRotationCorpusBeforeAfter pins the committed corpus case:
// failing on the legacy engine, covered by the fixed one (the fixed
// side is also swept by TestCorpusSoundness at L1/L2/L3).
func TestHubRotationCorpusBeforeAfter(t *testing.T) {
	b, err := os.ReadFile("../concrete/testdata/hub_rotation.c")
	if err != nil {
		t.Fatal(err)
	}
	src := string(b)
	if !SoundnessPredicate(legacyOpts(), 10, 42)(src) {
		t.Fatalf("hub_rotation.c no longer fails the legacy engine")
	}
	if SoundnessPredicate(fixedOpts(), 10, 42)(src) {
		t.Fatalf("hub_rotation.c fails the fixed engine")
	}
}
