// Package triage turns soundness-fuzzer finds into actionable bug
// reports: a cover-diff explainer that replays the concrete/abstract
// embedding check with full introspection, and a ddmin shrinker that
// delta-debugs a failing mini-C program down to a minimal corpus case.
// DESIGN.md §11 describes the workflow (fuzz find → explain → shrink →
// corpus → fix); cmd/shapetriage and `shapec -explain` are the CLIs.
package triage

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/concrete"
	"repro/internal/ir"
)

// Report is one explained soundness violation.
type Report struct {
	Fail *concrete.CoverFailure
	Prog *ir.Program
}

// Explain cross-validates the analysis result against `runs` randomized
// concrete executions and, when a heap escapes coverage, replays the
// embedding search with introspection. It returns nil (no error) when
// every observed heap is covered.
func Explain(prog *ir.Program, res *analysis.Result, runs int, seed int64) (*Report, error) {
	fail, err := concrete.FindCoverFailure(prog, res.Out, res.Level, runs, seed)
	if err != nil || fail == nil {
		return nil, err
	}
	return &Report{Fail: fail, Prog: prog}, nil
}

// Text renders the full report: the cover-diff plus the failing
// statement in its IR neighborhood.
func (r *Report) Text() string {
	var b strings.Builder
	b.WriteString(r.Fail.String())
	b.WriteString("statement context:\n")
	for id := r.Fail.StmtID - 2; id <= r.Fail.StmtID+2; id++ {
		if id < 0 || id >= len(r.Prog.Stmts) {
			continue
		}
		marker := "   "
		if id == r.Fail.StmtID {
			marker = ">> "
		}
		fmt.Fprintf(&b, "%s%4d: %s\n", marker, id, r.Prog.Stmt(id))
	}
	return b.String()
}

// DOT renders the side-by-side pair: the uncovered concrete heap and
// the nearest RSG, with the best partial embedding highlighted on both.
func (r *Report) DOT() string { return r.Fail.DOT() }
