package triage

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cminic"
	"repro/internal/concrete"
	"repro/internal/ir"
)

// Predicate reports whether a candidate source still exhibits the
// failure being distilled. Candidates that do not compile must return
// false. Predicates must be deterministic: the shrinker assumes a
// candidate that failed once fails always.
type Predicate func(src string) bool

// SoundnessPredicate builds the standard shrinking predicate: compile →
// analysis at opts → FindCoverFailure over `runs` traces. It holds when
// the program still demonstrates a soundness violation. Analysis errors
// (non-convergence, budget) count as "does not fail": the shrinker must
// not wander from a soundness bug to a resource bug.
func SoundnessPredicate(opts analysis.Options, runs int, seed int64) Predicate {
	return func(src string) bool {
		file, err := cminic.Parse(src)
		if err != nil {
			return false
		}
		prog, err := ir.LowerMain(file)
		if err != nil {
			return false
		}
		res, err := analysis.Run(prog, opts)
		if err != nil {
			return false
		}
		fail, err := concrete.FindCoverFailure(prog, res.Out, res.Level, runs, seed)
		return err == nil && fail != nil
	}
}

// Shrink delta-debugs src at statement and struct-field granularity to
// a smaller program that still satisfies fails. Three passes iterate to
// a fixed point: ddmin over removable statements, unwrapping of
// control-flow wrappers (if/while/for replaced by their body), and
// unused-field elimination. Every candidate is re-emitted through
// cminic.Format and re-tested from source, so the result is a
// committable corpus case. The output is 1-minimal at statement level:
// removing any single remaining statement stops the failure.
func Shrink(src string, fails Predicate) (string, error) {
	if _, err := cminic.Parse(src); err != nil {
		return "", fmt.Errorf("triage: input does not parse: %w", err)
	}
	if !fails(src) {
		return "", fmt.Errorf("triage: input does not fail the predicate")
	}
	// Normalize through the emitter so candidate diffs are structural.
	if norm := reemit(src); norm != "" && fails(norm) {
		src = norm
	}
	for {
		next, c1 := shrinkStatements(src, fails)
		next, c2 := unwrapWrappers(next, fails)
		next, c3 := dropFields(next, fails)
		src = next
		if !c1 && !c2 && !c3 {
			return src, nil
		}
	}
}

// StmtCount returns the number of statement units in the program (the
// metric Shrink minimizes); the shrinker's property test uses it.
func StmtCount(src string) (int, error) {
	file, err := cminic.Parse(src)
	if err != nil {
		return 0, err
	}
	return countUnits(file), nil
}

func reemit(src string) string {
	file, err := cminic.Parse(src)
	if err != nil {
		return ""
	}
	return cminic.Format(file)
}

// shrinkStatements is ddmin over the statement units: repeatedly try
// dropping chunks of halving size; after any success restart at coarse
// granularity on the reduced program.
func shrinkStatements(src string, fails Predicate) (string, bool) {
	changed := false
	for {
		file, err := cminic.Parse(src)
		if err != nil {
			return src, changed
		}
		n := countUnits(file)
		if n == 0 {
			return src, changed
		}
		improved := false
		for gran := 2; ; gran *= 2 {
			if gran > n {
				gran = n
			}
			for c := 0; c < gran && !improved; c++ {
				lo, hi := c*n/gran, (c+1)*n/gran
				if lo == hi {
					continue
				}
				cand := emitWithout(file, lo, hi)
				if fails(cand) {
					src = cand
					changed, improved = true, true
				}
			}
			if improved || gran == n {
				break
			}
		}
		if !improved {
			return src, changed
		}
	}
}

// unwrapWrappers tries replacing each if/while/for by its body.
func unwrapWrappers(src string, fails Predicate) (string, bool) {
	changed := false
	for {
		file, err := cminic.Parse(src)
		if err != nil {
			return src, changed
		}
		n := countUnits(file)
		improved := false
		for i := 0; i < n && !improved; i++ {
			cand, ok := emitUnwrapped(file, i)
			if ok && fails(cand) {
				src = cand
				changed, improved = true, true
			}
		}
		if !improved {
			return src, changed
		}
	}
}

// dropFields tries removing each struct field (the statement passes
// have already removed the statements that used it, or the candidate
// simply stops failing and is discarded).
func dropFields(src string, fails Predicate) (string, bool) {
	changed := false
	for {
		file, err := cminic.Parse(src)
		if err != nil {
			return src, changed
		}
		improved := false
		for si := 0; si < len(file.Structs) && !improved; si++ {
			for fi := 0; fi < len(file.Structs[si].Fields) && !improved; fi++ {
				cand := emitWithoutField(file, si, fi)
				if fails(cand) {
					src = cand
					changed, improved = true, true
				}
			}
		}
		if !improved {
			return src, changed
		}
	}
}

// rebuilder walks a File in pre-order, numbering every statement slot
// (a statement inside any block, recursively) and rebuilding the tree
// with the drop/unwrap edits applied. Child slots are numbered even
// under a dropped parent so slot indices agree across candidates built
// from the same parse.
type rebuilder struct {
	idx       int
	keepLo    int // slots in [keepLo, keepHi) are dropped
	keepHi    int
	unwrap    int // slot replaced by its body (-1 = none)
	unwrapped bool
	// dropStruct/dropField name one struct field to remove (-1 = none).
	dropStruct int
	dropField  int
}

func newRebuilder() *rebuilder {
	return &rebuilder{keepLo: -1, keepHi: -1, unwrap: -1, dropStruct: -1, dropField: -1}
}

func (r *rebuilder) dropping(si, fi int) bool {
	return si == r.dropStruct && fi == r.dropField
}

func countUnits(f *cminic.File) int {
	r := newRebuilder()
	r.file(f)
	return r.idx
}

func emitWithout(f *cminic.File, lo, hi int) string {
	r := newRebuilder()
	r.keepLo, r.keepHi = lo, hi
	return cminic.Format(r.file(f))
}

// emitUnwrapped replaces slot i by its body; ok=false when slot i is
// not an if/while/for.
func emitUnwrapped(f *cminic.File, i int) (string, bool) {
	r := newRebuilder()
	r.unwrap = i
	out := cminic.Format(r.file(f))
	return out, r.unwrapped
}

func emitWithoutField(f *cminic.File, si, fi int) string {
	r := newRebuilder()
	r.dropStruct, r.dropField = si, fi
	return cminic.Format(r.file(f))
}

func (r *rebuilder) file(f *cminic.File) *cminic.File {
	out := &cminic.File{}
	for si, s := range f.Structs {
		ns := &cminic.StructDecl{Name: s.Name, Line: s.Line}
		for fi, fd := range s.Fields {
			if r.dropping(si, fi) {
				continue
			}
			ns.Fields = append(ns.Fields, fd)
		}
		out.Structs = append(out.Structs, ns)
	}
	for _, fn := range f.Funcs {
		out.Funcs = append(out.Funcs, &cminic.FuncDecl{
			Name: fn.Name, Body: r.block(fn.Body), Line: fn.Line,
		})
	}
	return out
}

func (r *rebuilder) block(blk *cminic.Block) *cminic.Block {
	out := &cminic.Block{Line: blk.Line}
	for _, s := range blk.Stmts {
		i := r.idx
		r.idx++
		ns := r.stmt(s) // always recurse: child slot numbering is positional
		if i >= r.keepLo && i < r.keepHi {
			continue
		}
		if i == r.unwrap {
			if body := wrapperBody(ns); body != nil {
				r.unwrapped = true
				out.Stmts = append(out.Stmts, body.Stmts...)
				continue
			}
		}
		out.Stmts = append(out.Stmts, ns)
	}
	return out
}

func (r *rebuilder) stmt(s cminic.Stmt) cminic.Stmt {
	switch v := s.(type) {
	case *cminic.Block:
		return r.block(v)
	case *cminic.IfStmt:
		ns := &cminic.IfStmt{Cond: v.Cond, Line: v.Line}
		ns.Then = r.stmtAsBlock(v.Then)
		if v.Else != nil {
			ns.Else = r.stmtAsBlock(v.Else)
		}
		return ns
	case *cminic.WhileStmt:
		return &cminic.WhileStmt{Cond: v.Cond, Body: r.stmtAsBlock(v.Body),
			DoWhile: v.DoWhile, Line: v.Line}
	case *cminic.ForStmt:
		// Init and Post travel with the loop: they are not separate
		// slots (removing them alone rarely preserves parseability of
		// the intent, and the whole loop is already one removable slot).
		return &cminic.ForStmt{Init: v.Init, Cond: v.Cond, Post: v.Post,
			Body: r.stmtAsBlock(v.Body), Line: v.Line}
	default:
		return s
	}
}

func (r *rebuilder) stmtAsBlock(s cminic.Stmt) *cminic.Block {
	if blk, ok := s.(*cminic.Block); ok {
		return r.block(blk)
	}
	if s == nil {
		return &cminic.Block{}
	}
	// The parser normalizes all wrapper bodies to *Block; defensive.
	blk := &cminic.Block{Stmts: []cminic.Stmt{s}}
	return r.block(blk)
}

// wrapperBody extracts the body of an unwrappable statement (the Then
// branch for an if: the Else variant would be a second candidate, but
// the statement passes already remove else-less wrappers whole).
func wrapperBody(s cminic.Stmt) *cminic.Block {
	switch v := s.(type) {
	case *cminic.IfStmt:
		if b, ok := v.Then.(*cminic.Block); ok {
			return b
		}
	case *cminic.WhileStmt:
		if b, ok := v.Body.(*cminic.Block); ok {
			return b
		}
	case *cminic.ForStmt:
		if b, ok := v.Body.(*cminic.Block); ok {
			return b
		}
	}
	return nil
}
