package triage

import (
	"fmt"
	"strings"

	"repro/internal/concrete"
	"repro/internal/ir"
)

// Witness is a concrete counterexample backing an UNSAFE memory-safety
// verdict: one recorded execution that faults (null dereference,
// use-after-free, double free) or strands still-allocated cells.
type Witness struct {
	Prog  *ir.Program
	Trace *concrete.Trace
	// Seed reproduces the execution via concrete.RunSeed.
	Seed int64
}

// NewWitness wraps a faulting or leaking trace for reporting.
func NewWitness(prog *ir.Program, tr *concrete.Trace, seed int64) *Witness {
	return &Witness{Prog: prog, Trace: tr, Seed: seed}
}

// Text renders the witness: the violation kind, the faulting statement
// in its IR neighborhood, and the tail of the execution with the heap
// the fault ran into.
func (w *Witness) Text() string {
	var b strings.Builder
	tr := w.Trace
	switch {
	case tr.Fault != concrete.FaultNone:
		fmt.Fprintf(&b, "%s at stmt %d (seed %d): %s\n",
			tr.Fault, tr.FaultStmt, w.Seed, w.Prog.Stmt(tr.FaultStmt))
		w.stmtContext(&b, tr.FaultStmt)
	case len(tr.Leaks) > 0:
		l := tr.Leaks[0]
		fmt.Fprintf(&b, "leak at stmt %d (seed %d): %s strands cell L%d",
			l.StmtID, w.Seed, w.Prog.Stmt(l.StmtID), l.Loc)
		if len(tr.Leaks) > 1 {
			fmt.Fprintf(&b, " (+%d more)", len(tr.Leaks)-1)
		}
		b.WriteString("\n")
		w.stmtContext(&b, l.StmtID)
	default:
		fmt.Fprintf(&b, "trace (seed %d): no violation recorded\n", w.Seed)
		return b.String()
	}
	if n := len(tr.Steps); n > 0 {
		b.WriteString("execution tail:\n")
		lo := n - 5
		if lo < 0 {
			lo = 0
		}
		for _, st := range tr.Steps[lo:] {
			fmt.Fprintf(&b, "    %4d: %s\n", st.StmtID, w.Prog.Stmt(st.StmtID))
		}
		b.WriteString("heap before the violation:\n")
		for _, line := range strings.Split(strings.TrimRight(tr.Steps[n-1].Heap.String(), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// stmtContext prints the statement in its IR neighborhood, mirroring
// Report.Text.
func (w *Witness) stmtContext(b *strings.Builder, stmtID int) {
	b.WriteString("statement context:\n")
	for id := stmtID - 2; id <= stmtID+2; id++ {
		if id < 0 || id >= len(w.Prog.Stmts) {
			continue
		}
		marker := "   "
		if id == stmtID {
			marker = ">> "
		}
		fmt.Fprintf(b, "%s%4d: %s\n", marker, id, w.Prog.Stmt(id))
	}
}
