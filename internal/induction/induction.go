// Package induction identifies induction pointer variables: the pvars a
// loop uses to traverse recursive data structures. The paper (Sect. 3)
// restricts TOUCH sets to these pvars — following Hwang and Saltz's
// access-path-expression analysis — to avoid a node explosion at
// analysis level L3.
//
// The criterion implemented here is the APE cycle test: pvar p is an
// induction pvar of loop L when the body of L contains a def-use cycle
// from p back to p built from copies (x = y) and loads (x = y->sel)
// that traverses at least one load — i.e. each iteration advances p
// along a selector path, directly (p = p->next) or through temporaries
// (t = p->next; p = t).
package induction

import (
	"repro/internal/ir"
)

// Annotate computes the induction pvar set of every loop in the program
// and stores it in the loops' Induction fields. It returns the union
// over all loops.
func Annotate(p *ir.Program) map[string]struct{} {
	all := make(map[string]struct{})
	for _, loop := range p.Loops {
		set := loopInduction(p, loop)
		loop.Induction = set
		for pv := range set {
			all[pv] = struct{}{}
		}
	}
	return all
}

// edge is one def-use step: dst gets its value from src, advancing
// `weight` selectors (0 for copies, 1 for loads).
type edge struct {
	dst    string
	weight int
}

// loopInduction runs the cycle test for one loop.
func loopInduction(p *ir.Program, loop *ir.Loop) map[string]struct{} {
	adj := make(map[string][]edge)
	vars := make(map[string]struct{})
	for id := range loop.Body {
		s := p.Stmt(id)
		switch s.Op {
		case ir.OpCopy:
			adj[s.Y] = append(adj[s.Y], edge{dst: s.X, weight: 0})
			vars[s.X] = struct{}{}
			vars[s.Y] = struct{}{}
		case ir.OpLoad:
			adj[s.Y] = append(adj[s.Y], edge{dst: s.X, weight: 1})
			vars[s.X] = struct{}{}
			vars[s.Y] = struct{}{}
		}
	}

	out := make(map[string]struct{})
	for v := range vars {
		if hasAdvancingCycle(adj, v) {
			out[v] = struct{}{}
		}
	}
	return out
}

// hasAdvancingCycle reports whether start can reach itself through the
// def-use edges with at least one load on the way.
func hasAdvancingCycle(adj map[string][]edge, start string) bool {
	// State: (pvar, sawLoad). BFS over at most 2*|vars| states.
	type state struct {
		v       string
		sawLoad bool
	}
	seen := map[state]struct{}{}
	queue := []state{{start, false}}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		for _, e := range adj[st.v] {
			ns := state{e.dst, st.sawLoad || e.weight > 0}
			if ns.v == start && ns.sawLoad {
				return true
			}
			if _, ok := seen[ns]; ok {
				continue
			}
			seen[ns] = struct{}{}
			queue = append(queue, ns)
		}
	}
	return false
}
