package induction

import (
	"testing"

	"repro/internal/cminic"
	"repro/internal/ir"
)

func annotate(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := cminic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := ir.LowerMain(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	Annotate(p)
	return p
}

const prologue = `
struct node { int v; struct node *nxt; struct node *prv; };
`

func TestDirectTraversalPvar(t *testing.T) {
	p := annotate(t, prologue+`
void main(void) {
    struct node *p;
    p = malloc(sizeof(struct node));
    while (c) {
        p = p->nxt;
    }
}`)
	if len(p.Loops) != 1 {
		t.Fatalf("loops = %d", len(p.Loops))
	}
	if _, ok := p.Loops[0].Induction["p"]; !ok {
		t.Errorf("p = p->nxt makes p an induction pvar: %v", p.Loops[0].Induction)
	}
}

func TestTraversalThroughTemp(t *testing.T) {
	// q = p->nxt; p = q — a copy chain with one load: p advances.
	p := annotate(t, prologue+`
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    while (c) {
        q = p->nxt;
        p = q;
    }
}`)
	ind := p.Loops[0].Induction
	if _, ok := ind["p"]; !ok {
		t.Errorf("p advances through q; induction = %v", ind)
	}
	if _, ok := ind["q"]; !ok {
		t.Errorf("q is on the advancing cycle too; induction = %v", ind)
	}
}

func TestMallocAdvanceIsNotInduction(t *testing.T) {
	// The list-building pattern p = q with q = malloc: no load cycle.
	p := annotate(t, prologue+`
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    while (c) {
        q = malloc(sizeof(struct node));
        p->nxt = q;
        p = q;
    }
}`)
	ind := p.Loops[0].Induction
	if len(ind) != 0 {
		t.Errorf("no pvar traverses existing structure; induction = %v", ind)
	}
}

func TestPerLoopSets(t *testing.T) {
	p := annotate(t, prologue+`
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    while (a) {
        q = malloc(sizeof(struct node));
        p->nxt = q;
        p = q;
    }
    q = p;
    while (b) {
        q = q->prv;
    }
}`)
	if len(p.Loops) != 2 {
		t.Fatalf("loops = %d", len(p.Loops))
	}
	if len(p.Loops[0].Induction) != 0 {
		t.Errorf("build loop induction = %v", p.Loops[0].Induction)
	}
	if _, ok := p.Loops[1].Induction["q"]; !ok {
		t.Errorf("traversal loop induction = %v", p.Loops[1].Induction)
	}
}

func TestNestedLoopInduction(t *testing.T) {
	p := annotate(t, prologue+`
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    while (a) {
        q = p;
        while (b) {
            q = q->nxt;
        }
        p = p->nxt;
    }
}`)
	if len(p.Loops) != 2 {
		t.Fatalf("loops = %d", len(p.Loops))
	}
	outer, inner := p.Loops[0], p.Loops[1]
	if _, ok := outer.Induction["p"]; !ok {
		t.Errorf("outer induction = %v", outer.Induction)
	}
	if _, ok := inner.Induction["q"]; !ok {
		t.Errorf("inner induction = %v", inner.Induction)
	}
	// q's advancing statement is only in the inner loop, but the outer
	// loop body contains it too — q advances per outer iteration as
	// well, so it appears in both sets.
	if _, ok := outer.Induction["q"]; !ok {
		t.Errorf("outer should also see q advancing: %v", outer.Induction)
	}
	// p does not advance within the inner loop.
	if _, ok := inner.Induction["p"]; ok {
		t.Errorf("inner must not contain p: %v", inner.Induction)
	}
}

func TestAnnotateReturnsUnion(t *testing.T) {
	p := annotate(t, prologue+`
void main(void) {
    struct node *p;
    p = malloc(sizeof(struct node));
    while (c) { p = p->nxt; }
}`)
	all := Annotate(p)
	if _, ok := all["p"]; !ok {
		t.Errorf("union = %v", all)
	}
}
