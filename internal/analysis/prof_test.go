package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/rsg"
)

// TestProfileMatVec exists to hang a CPU profile on the heaviest
// supported kernel; skipped in -short runs.
func TestProfileMatVec(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling helper")
	}
	k := benchprog.MatVec()
	prog, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("visits=%d", res.Stats.Visits)
}
