package analysis_test

// Tests for the semi-naïve delta engine (DESIGN.md §8): the delta path
// must actually carry the run (vacuity guard for the determinism
// property's delta dimension), NoDelta must force the full path, and
// the clock-evicting transfer memo must keep results bit-identical
// when it thrashes.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/rsg"
)

// TestDeltaPathCarriesRun guards the delta determinism dimension
// against vacuity: a default bounded Barnes-Hut run must serve
// statement visits from the delta path, and a NoDelta run must not.
func TestDeltaPathCarriesRun(t *testing.T) {
	prog, _ := compileKernel(t, "barneshut")
	on, err := analysis.Run(prog, analysis.Options{Level: rsg.L1, MaxVisits: 1500, Workers: 1})
	if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatal(err)
	}
	if on.Stats.DeltaTransfers == 0 {
		t.Fatal("default run never used the delta path; delta determinism checks are vacuous")
	}
	if on.Stats.DirtyBuckets == 0 {
		t.Error("delta run re-reduced no alias buckets — the accumulator never saw a delta")
	}
	if !strings.Contains(on.Stats.CacheSummary(), "delta(") {
		t.Errorf("CacheSummary lacks the delta counters: %s", on.Stats.CacheSummary())
	}

	off, err := analysis.Run(prog, analysis.Options{Level: rsg.L1, MaxVisits: 1500, Workers: 1, NoDelta: true})
	if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatal(err)
	}
	if off.Stats.DeltaTransfers != 0 {
		t.Errorf("NoDelta run reported %d delta transfers", off.Stats.DeltaTransfers)
	}
	if off.Stats.FullRecomputes == 0 {
		t.Error("NoDelta run reported no full recomputes")
	}
	if got, want := fingerprint(on), fingerprint(off); got != want {
		t.Fatal("delta and NoDelta runs diverged (see TestParallelDeterminism for the full matrix)")
	}
}

// TestTransferMemoEviction forces the per-statement transfer memo past
// its capacity: the clock sweep must actually evict (MemoFull > 0) and
// the run's per-statement digests must match an uncapped run exactly —
// eviction may only cost recomputation, never change results. NoDelta
// keeps the memo hot (the delta path probes each digest once per
// statement, so a capped memo would simply stop mattering).
func TestTransferMemoEviction(t *testing.T) {
	prog, _ := compileKernel(t, "barneshut")
	ref, err := analysis.Run(prog, analysis.Options{Level: rsg.L1, MaxVisits: 1500, Workers: 1, NoDelta: true})
	if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatal(err)
	}
	if ref.Stats.MemoFull != 0 {
		t.Fatalf("uncapped run evicted %d memo entries", ref.Stats.MemoFull)
	}

	restore := analysis.SetMemoCapForTest(4)
	defer restore()
	capped, err := analysis.Run(prog, analysis.Options{Level: rsg.L1, MaxVisits: 1500, Workers: 1, NoDelta: true})
	if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatal(err)
	}
	if capped.Stats.MemoFull == 0 {
		t.Fatal("memoCap=4 run never evicted; the eviction path is untested")
	}
	if capped.Stats.MemoHits == 0 {
		t.Error("capped memo served no hits at all — cap too small to retain anything")
	}
	if got, want := fingerprint(capped), fingerprint(ref); got != want {
		t.Fatal("memo eviction changed per-statement digests")
	}
	t.Logf("capped: hits=%d misses=%d evictions=%d", capped.Stats.MemoHits,
		capped.Stats.MemoMisses, capped.Stats.MemoFull)
}
