package analysis

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sort"

	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/rsrsg"
	"repro/internal/store"
)

// This file wires the persistent content-addressed store (DESIGN.md
// §13) into the engine. With Options.Store set, a run consults the
// store before analyzing and records into it afterwards; without it,
// nothing here executes. Three modes fall out of the planning step:
//
//   - warm: an eligible snapshot of this exact (program digest, options
//     fingerprint) exists — restore every statement's out-state and
//     return the recorded outcome without a single transfer;
//   - edit: a converged snapshot of a *previous version* of the program
//     (same name, same fingerprint) exists — diff statement digests,
//     restore the out-states of unchanged statements outside the
//     changed statements' forward cone, and seed the worklist with only
//     the cone;
//   - cold: no usable snapshot — run normally and, on a clean outcome,
//     record the per-statement fixpoint as a new snapshot.
//
// Independently of the mode, the per-statement transfer memo gains a
// persistent tier: in-memory misses probe the store by (transfer key,
// input digest), and computed parts are written through. Every store
// read failure — absent record, corrupt bytes, digest mismatch —
// degrades to a miss (ultimately to a cold run), never to a wrong
// result: graphs are re-digested on decode and verified against their
// content address.

// persistSchema versions the key derivation: bumping it orphans every
// existing store entry (they simply stop matching), which is the
// invalidation story for semantics changes in the engine. Schema 2:
// the WTO scheduler landed (DESIGN.md §14) — widening points moved,
// so pre-WTO snapshots must not warm-start either scheduler.
const persistSchema = 2

type persistMode int

const (
	persistOff persistMode = iota
	persistCold
	persistWarm
	persistEdit
)

// persistPlan is the planning result consumed by Run.
type persistPlan struct {
	mode     persistMode
	fp       uint64
	progDig  store.Key
	stmtDigs []ir.StmtDigest
	// restore maps statement IDs to their snapshot out-states (all
	// visited statements for warm; reachable non-cone statements for
	// edit).
	restore map[int]*rsrsg.Set
	// seed lists the statements the edit mode pushes onto the worklist:
	// the changed statements plus their forward cone, restricted to the
	// entry-reachable part of the new CFG.
	seed []int
	// outcome is the recorded outcome a warm run replays (nil or
	// ErrNoConvergence).
	outcome error
}

// optionsFingerprint hashes every option that changes analysis
// *results* — level, reduction and soundness knobs, and the widening
// threshold. Budgets (MaxVisits, NodeBudget, Timeout) are deliberately
// excluded and handled by the snapshot eligibility rules; Workers and
// NoDelta are excluded because any setting produces bit-identical
// digests (DESIGN.md §7–8).
func optionsFingerprint(opts Options) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putBool := func(b bool) {
		if b {
			put(1)
		} else {
			put(0)
		}
	}
	put(persistSchema)
	put(uint64(opts.Level))
	put(uint64(opts.MaxGraphsPerStmt))
	putBool(opts.DisableJoin)
	putBool(opts.DisableCyclePrune)
	putBool(opts.NoCompress)
	putBool(opts.TouchAllPvars)
	putBool(opts.LegacyUnsound)
	// The scheduler and its widening thresholds are result-affecting:
	// the two schedulers agree only on runs that converge without
	// widening, and bounded runs snapshot a schedule-dependent prefix.
	// Keying the fingerprint on them keeps snapshots exchangeable only
	// within one schedule.
	put(uint64(opts.Sched))
	put(widenAfter)
	put(widenHeadAfter)
	return h.Sum64()
}

// stmtTransferKeys derives each statement's persistent transfer-memo
// key: fingerprint + context-free transfer digest. Under TouchAllPvars
// the effective induction set is the whole pvar table, which the
// transfer digest does not see, so the sorted pvar list is mixed in.
func stmtTransferKeys(prog *ir.Program, opts Options, fp uint64) []store.Key {
	tds := prog.TransferDigests()
	var extra []byte
	if opts.TouchAllPvars {
		names := make([]string, 0, len(prog.PtrVars))
		for v := range prog.PtrVars {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			extra = binary.AppendUvarint(extra, uint64(len(v)))
			extra = append(extra, v...)
		}
	}
	var fpb [8]byte
	binary.LittleEndian.PutUint64(fpb[:], fp)
	keys := make([]store.Key, len(tds))
	for i := range tds {
		h := sha256.New()
		h.Write(fpb[:])
		h.Write(tds[i][:])
		h.Write(extra)
		copy(keys[i][:], h.Sum(nil)[:16])
	}
	return keys
}

// warmEligible decides whether a snapshot may be served wholesale for a
// request with the given (defaulted) options. A converged snapshot is
// the fixpoint: any visit budget at least as large as the visits the
// recording run used reaches the identical state. A non-converged
// snapshot is a budget-bounded prefix — a pure function of program,
// options and the exact budget — so it serves only exact-budget
// matches. NodeBudget must match exactly in both cases: a smaller
// budget could have aborted the recording run earlier.
func warmEligible(snap *store.Snapshot, opts Options) bool {
	if opts.NodeBudget != snap.NodeBudget {
		return false
	}
	if snap.Converged {
		return opts.MaxVisits >= snap.Visits
	}
	return opts.MaxVisits == snap.VisitBudget
}

// planPersist probes the store and produces the run plan. Called after
// option defaulting and induction annotation (the digests need both).
// Also arms the engine's persistent memo tier (stmtKeys) whenever a
// store is configured, regardless of the mode chosen.
func (e *engineRun) planPersist(prog *ir.Program, opts Options) *persistPlan {
	if opts.Store == nil {
		return &persistPlan{mode: persistOff}
	}
	st := opts.Store
	fp := optionsFingerprint(opts)
	e.store = st
	e.stmtKeys = stmtTransferKeys(prog, opts, fp)
	plan := &persistPlan{
		mode:     persistCold,
		fp:       fp,
		progDig:  store.Key(prog.Digest()),
		stmtDigs: prog.StmtDigests(),
	}
	if !opts.forceEditDelta {
		if snap, ok := st.Snapshot(plan.progDig, fp); ok {
			if warmEligible(snap, opts) && len(snap.Stmts) == len(prog.Stmts) {
				if restore, ok := loadSnapshotOuts(st, snap, nil, e.rec); ok {
					plan.mode = persistWarm
					plan.restore = restore
					if !snap.Converged {
						plan.outcome = ErrNoConvergence
					}
					return plan
				}
			}
			// A snapshot for this exact program exists but cannot be
			// served (budget mismatch, or its graphs are unreadable):
			// run cold rather than edit-delta against it.
			return plan
		}
	}
	prev, ok := st.SnapshotByName(prog.Name, fp)
	if !ok || !prev.Converged {
		return plan
	}
	e.planEdit(plan, prog, prev)
	return plan
}

// planEdit upgrades a cold plan to edit-delta against prev when the
// diff supports it. The algorithm (DESIGN.md §13):
//
//  1. changed(t) := t's contextual statement digest differs from the
//     snapshot's record at the same ID (or has no record). The digest
//     covers the operation, operands, loop context AND the predecessor
//     wiring with its per-edge TOUCH-erase sets, so CFG rewiring marks
//     every statement whose in-flow changed.
//  2. cone := forward closure of the changed set over the new CFG's
//     successor edges. Every predecessor of a non-cone statement is
//     itself non-cone (a cone predecessor would pull it in), so the
//     snapshot values of non-cone statements remain valid fixpoint
//     values: their entire dataflow past is unchanged.
//  3. Restore the out-states of entry-reachable non-cone statements;
//     seed the worklist with the entry-reachable cone (except the
//     entry, whose out-state is the axiom entry set, never computed).
//
// Statements that became reachable or unreachable are always in the
// cone: reachability can only change through a successor-list edit,
// which changes the successors' predecessor lists and hence their
// digests.
func (e *engineRun) planEdit(plan *persistPlan, prog *ir.Program, prev *store.Snapshot) {
	n := len(prog.Stmts)
	prevByID := make(map[int]*store.SnapStmt, len(prev.Stmts))
	for i := range prev.Stmts {
		prevByID[prev.Stmts[i].ID] = &prev.Stmts[i]
	}
	reachable := make([]bool, n)
	{
		stack := []int{prog.Entry}
		reachable[prog.Entry] = true
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range prog.Stmts[id].Succs {
				if !reachable[s] {
					reachable[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	cone := make([]bool, n)
	var stack []int
	mark := func(id int) {
		if !cone[id] {
			cone[id] = true
			stack = append(stack, id)
		}
	}
	for id := 0; id < n; id++ {
		ss := prevByID[id]
		if ss == nil || ss.Digest != store.Key(plan.stmtDigs[id]) {
			mark(id)
		} else if reachable[id] && !ss.HasOut {
			// Defensive: reachable now, never visited before. The digest
			// match should make this impossible; treat it as changed
			// rather than leaving a reachable statement unanalyzed.
			mark(id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range prog.Stmts[id].Succs {
			mark(s)
		}
	}
	skip := func(id int) bool { return id >= n || cone[id] || !reachable[id] }
	restore, ok := loadSnapshotOuts(e.store, prev, skip, e.rec)
	if !ok {
		return // a referenced graph is unreadable: stay cold
	}
	var seed []int
	for id := 0; id < n; id++ {
		if cone[id] && reachable[id] && id != prog.Entry {
			seed = append(seed, id)
		}
	}
	plan.mode = persistEdit
	plan.restore = restore
	plan.seed = seed
}

// loadSnapshotOuts materializes the out-states recorded in a snapshot,
// skipping statements for which skip returns true. Returns ok=false if
// any referenced graph cannot be loaded and verified.
func loadSnapshotOuts(st *store.Store, snap *store.Snapshot, skip func(id int) bool, rec *rsg.RunStats) (map[int]*rsrsg.Set, bool) {
	out := make(map[int]*rsrsg.Set, len(snap.Stmts))
	for _, ss := range snap.Stmts {
		if !ss.HasOut || (skip != nil && skip(ss.ID)) {
			continue
		}
		graphs := make([]*rsg.Graph, len(ss.Out))
		for i, d := range ss.Out {
			g, ok := st.Graph(d)
			if !ok {
				return nil, false
			}
			graphs[i] = g
		}
		out[ss.ID] = rsrsg.RestoreSetStats(graphs, rec)
	}
	return out, true
}

// persistFinish records a cold run's outcome as a snapshot. Only cold
// (unseeded) runs write snapshots — a warm run would be a no-op
// rewrite, and recording seeded runs would let any seeding bug
// propagate through the store. Clean outcomes only: a converged
// fixpoint, or the deterministic bounded prefix of an ErrNoConvergence
// run. Timeouts and budget aborts are machine-dependent cut points and
// are not recorded. Returns err unchanged so call sites can tail-call.
func (e *engineRun) persistFinish(plan *persistPlan, prog *ir.Program, res *Result, err error) error {
	if plan.mode != persistCold {
		return err
	}
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		return err
	}
	snap := &store.Snapshot{
		Prog:        plan.progDig,
		Name:        prog.Name,
		Fp:          plan.fp,
		Converged:   err == nil,
		VisitBudget: e.opts.MaxVisits,
		NodeBudget:  e.opts.NodeBudget,
		Visits:      res.Stats.Visits,
		Stmts:       make([]store.SnapStmt, 0, len(prog.Stmts)),
	}
	for id := range prog.Stmts {
		ss := store.SnapStmt{ID: id, Digest: store.Key(plan.stmtDigs[id])}
		if out := res.Out[id]; out != nil {
			putErr := error(nil)
			out.ForEachEntry(func(g *rsg.Graph, _ rsg.Digest) {
				if e := e.store.PutGraph(g); e != nil {
					putErr = e
				}
			})
			if putErr != nil {
				return err // disk trouble: skip the snapshot, keep the outcome
			}
			ss.HasOut = true
			ss.Out = out.MemberDigests()
		}
		snap.Stmts = append(snap.Stmts, ss)
	}
	_ = e.store.PutSnapshot(snap)
	return err
}

// storeMemoGet probes the persistent transfer-memo tier for one
// (statement, input digest) pair and rebuilds the cached part.
func (e *engineRun) storeMemoGet(id int, in rsg.Digest) (*rsrsg.Set, bool) {
	digs, ok := e.store.Memo(e.stmtKeys[id], in)
	if !ok {
		return nil, false
	}
	graphs := make([]*rsg.Graph, len(digs))
	for i, d := range digs {
		g, ok := e.store.Graph(d)
		if !ok {
			return nil, false
		}
		graphs[i] = g
	}
	return rsrsg.RestoreSetStats(graphs, e.rec), true
}

// storeMemoPut writes one computed transfer part through to the store:
// member graphs first (content-addressed, so duplicates are free), then
// the memo record. Best-effort — a write failure only loses caching.
func (e *engineRun) storeMemoPut(id int, in rsg.Digest, part *rsrsg.Set) {
	putErr := error(nil)
	part.ForEachEntry(func(g *rsg.Graph, _ rsg.Digest) {
		if e := e.store.PutGraph(g); e != nil {
			putErr = e
		}
	})
	if putErr != nil {
		return
	}
	_ = e.store.PutMemo(e.stmtKeys[id], in, part.MemberDigests())
}
