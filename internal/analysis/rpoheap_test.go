package analysis

// Direct unit tests for the worklist's hand-rolled min-heap and the
// pending-set dedup in its rpoSched wrapper — previously only covered
// transitively through whole-engine runs.

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ir"
)

func TestRPOHeapPopsSorted(t *testing.T) {
	var h rpoHeap
	in := []int{5, 1, 9, 3, 7, 0, 8, 2, 6, 4}
	for _, x := range in {
		h.push(x)
	}
	for want := 0; want < len(in); want++ {
		if got := h.pop(); got != want {
			t.Fatalf("pop %d, want %d", got, want)
		}
	}
	if h.len() != 0 {
		t.Fatalf("%d elements left after draining", h.len())
	}
}

func TestRPOHeapDuplicatePushes(t *testing.T) {
	// The heap itself admits duplicates (dedup is the scheduler's
	// pending bitmap, not the heap's job) and must pop every copy in
	// nondecreasing order.
	var h rpoHeap
	for _, x := range []int{3, 1, 3, 2, 1, 3} {
		h.push(x)
	}
	want := []int{1, 1, 2, 3, 3, 3}
	for i, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop #%d = %d, want %d", i, got, w)
		}
	}
}

func TestRPOHeapInterleavedPushPop(t *testing.T) {
	// Randomized interleaving against a reference sorted multiset: at
	// every pop, the heap must yield the minimum of what remains.
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var h rpoHeap
		var ref []int
		for step := 0; step < 200; step++ {
			if h.len() == 0 || r.Intn(2) == 0 {
				x := r.Intn(64)
				h.push(x)
				ref = append(ref, x)
				continue
			}
			sort.Ints(ref)
			if got := h.pop(); got != ref[0] {
				t.Fatalf("trial %d step %d: pop %d, want min %d", trial, step, got, ref[0])
			}
			ref = ref[1:]
		}
		sort.Ints(ref)
		for _, w := range ref {
			if got := h.pop(); got != w {
				t.Fatalf("trial %d drain: pop %d, want %d", trial, got, w)
			}
		}
	}
}

func TestRPOSchedPendingDedup(t *testing.T) {
	// A diamond CFG: 0 -> {1,2} -> 3. Re-pushing a pending statement
	// must be absorbed (push reports false, the statement is visited
	// once), and a statement re-pushed after its visit re-enters.
	p := &ir.Program{Entry: 0}
	for id, succs := range [][]int{{1, 2}, {3}, {3}, {}} {
		p.Stmts = append(p.Stmts, &ir.Stmt{ID: id, Succs: succs})
	}
	s := newRPOSched(p)
	if !s.push(3) || !s.push(1) {
		t.Fatal("fresh pushes must report newly-enqueued")
	}
	if s.push(3) {
		t.Fatal("duplicate push of a pending statement must be absorbed")
	}
	var order []int
	err := s.run(func(id int) error {
		order = append(order, id)
		if id == 1 && len(order) == 1 {
			// Re-push a popped statement mid-run: it must come back.
			if !s.push(1) {
				t.Fatal("re-push after pop must enqueue")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// RPO order of the diamond is 0,1,2,3 (or 0,2,1,3 depending on DFS
	// edge order — succ order makes it 0,1,2,3), so pending {1,3} pops
	// 1 first, the re-pushed 1 next, then 3; each exactly once per push.
	want := []int{1, 1, 3}
	if len(order) != len(want) {
		t.Fatalf("visited %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("visited %v, want %v", order, want)
		}
	}
}
