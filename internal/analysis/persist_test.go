package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/store"
)

// The persistence test programs are small list kernels in the mini-C
// dialect; persistSrcV2 is persistSrc plus the canonical one-statement
// tail edit (`head = NULL;` before the closing brace).
const persistSrc = `
struct node { int val; struct node *nxt; };

void main(void) {
    struct node *head;
    struct node *p;
    struct node *q;
    head = malloc(sizeof(struct node));
    head->nxt = NULL;
    p = head;
    while (more) {
        q = malloc(sizeof(struct node));
        q->nxt = NULL;
        p->nxt = q;
        p = q;
    }
    q = NULL;
    p = head;
    while (p != NULL) {
        p = p->nxt;
    }
}
`

const persistSrcV2 = `
struct node { int val; struct node *nxt; };

void main(void) {
    struct node *head;
    struct node *p;
    struct node *q;
    head = malloc(sizeof(struct node));
    head->nxt = NULL;
    p = head;
    while (more) {
        q = malloc(sizeof(struct node));
        q->nxt = NULL;
        p->nxt = q;
        p = q;
    }
    q = NULL;
    p = head;
    while (p != NULL) {
        p = p->nxt;
    }
    head = NULL;
}
`

func compileSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := cminic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.LowerMain(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

func openStore(t *testing.T, path string) *store.Store {
	t.Helper()
	st, err := store.Open(path)
	if err != nil {
		t.Fatalf("store open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// outDigests snapshots the per-statement set digests of a result.
func outDigests(res *Result) map[int]rsg.Digest {
	out := make(map[int]rsg.Digest, len(res.Out))
	for id, s := range res.Out {
		out[id] = s.Digest()
	}
	return out
}

func sameDigests(t *testing.T, label string, want, got map[int]rsg.Digest) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: statement coverage differs: want %d out-states, got %d", label, len(want), len(got))
	}
	for id, d := range want {
		if got[id] != d {
			t.Fatalf("%s: digest mismatch at stmt %d:\nwant %x\ngot  %x", label, id, d, got[id])
		}
	}
}

// TestPersistDeterminismMatrix is the persist dimension of the
// determinism matrix: cold, warm-from-store, and a zero-statement
// edit-delta run must produce bit-identical per-statement set digests
// at sched {wto,rpo} × workers {1,4} × delta {on,off} — and the
// store-backed cold run must match the storeless baseline. Each
// scheduler replays only its own snapshots (the fingerprint covers
// Sched), so the matrix proves warm/edit replay is bit-identical from
// both WTO- and RPO-written stores.
func TestPersistDeterminismMatrix(t *testing.T) {
	for _, sched := range []Sched{SchedWTO, SchedRPO} {
		for _, workers := range []int{1, 4} {
			for _, noDelta := range []bool{false, true} {
				name := fmt.Sprintf("sched=%v/workers=%d/delta=%v", sched, workers, !noDelta)
				t.Run(name, func(t *testing.T) {
					opts := Options{Sched: sched, Workers: workers, NoDelta: noDelta}

					// Reference: storeless cold run.
					ref, err := Run(compileSrc(t, persistSrc), opts)
					if err != nil {
						t.Fatalf("baseline: %v", err)
					}
					want := outDigests(ref)

					st := openStore(t, filepath.Join(t.TempDir(), "cache.rsgstore"))
					opts.Store = st

					// Cold with store: identical digests, snapshot recorded.
					cold, err := Run(compileSrc(t, persistSrc), opts)
					if err != nil {
						t.Fatalf("cold: %v", err)
					}
					sameDigests(t, "cold-with-store", want, outDigests(cold))
					if cold.Stats.ReusedStatements != 0 || cold.Stats.ReseededStatements != 0 {
						t.Fatalf("cold run reports reuse: %+v", cold.Stats)
					}

					// Warm: zero work, identical digests.
					warm, err := Run(compileSrc(t, persistSrc), opts)
					if err != nil {
						t.Fatalf("warm: %v", err)
					}
					sameDigests(t, "warm", want, outDigests(warm))
					if warm.Stats.Visits != 0 || warm.Stats.DeltaTransfers != 0 || warm.Stats.FullRecomputes != 0 {
						t.Fatalf("warm run did work: %+v", warm.Stats)
					}
					if warm.Stats.ReusedStatements != len(want) {
						t.Fatalf("warm reused %d statements, want %d", warm.Stats.ReusedStatements, len(want))
					}

					// Zero-statement edit-delta: the diff/seed machinery runs
					// with an empty cone and must also be a zero-work replay.
					zopts := opts
					zopts.forceEditDelta = true
					zero, err := Run(compileSrc(t, persistSrc), zopts)
					if err != nil {
						t.Fatalf("zero-edit: %v", err)
					}
					sameDigests(t, "zero-edit", want, outDigests(zero))
					if zero.Stats.Visits != 0 || zero.Stats.ReseededStatements != 0 {
						t.Fatalf("zero-edit run did work: %+v", zero.Stats)
					}
					if zero.Stats.ReusedStatements != len(want) {
						t.Fatalf("zero-edit reused %d statements, want %d", zero.Stats.ReusedStatements, len(want))
					}
				})
			}
		}
	}
}

// TestPersistWarmAcrossReopen: a warm start must survive closing and
// reopening the store file — the cross-process scenario the
// name-based codec exists for.
func TestPersistWarmAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.rsgstore")
	ref, err := Run(compileSrc(t, persistSrc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := outDigests(ref)

	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(compileSrc(t, persistSrc), Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := openStore(t, path)
	warm, err := Run(compileSrc(t, persistSrc), Options{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	sameDigests(t, "warm-after-reopen", want, outDigests(warm))
	if warm.Stats.Visits != 0 {
		t.Fatalf("reopened warm run did %d visits", warm.Stats.Visits)
	}
}

// TestPersistOneStatementEdit: after appending one statement at the
// tail, the edit-delta run must re-analyze only the changed statement's
// forward cone — and still match the edited program's cold digests
// bit for bit.
func TestPersistOneStatementEdit(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := Options{Workers: workers}
			// Reference: storeless cold run of the EDITED program.
			ref, err := Run(compileSrc(t, persistSrcV2), opts)
			if err != nil {
				t.Fatal(err)
			}
			want := outDigests(ref)

			st := openStore(t, filepath.Join(t.TempDir(), "cache.rsgstore"))
			opts.Store = st
			// Populate with the BASE program.
			if _, err := Run(compileSrc(t, persistSrc), opts); err != nil {
				t.Fatal(err)
			}
			// Analyze the edited program against the base snapshot.
			edited := compileSrc(t, persistSrcV2)
			nStmts := len(edited.Stmts)
			res, err := Run(edited, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameDigests(t, "edit-delta", want, outDigests(res))
			if res.Stats.ReseededStatements == 0 {
				t.Fatalf("edit run did not take the edit-delta path: %+v", res.Stats)
			}
			if res.Stats.ReseededStatements >= nStmts/2 {
				t.Fatalf("edit cone too large: %d of %d statements reseeded",
					res.Stats.ReseededStatements, nStmts)
			}
			if res.Stats.ReusedStatements == 0 {
				t.Fatalf("edit run restored nothing: %+v", res.Stats)
			}
			if res.Stats.ReusedStatements+res.Stats.ReseededStatements < nStmts-2 {
				t.Fatalf("reuse+reseed covers too little: %d+%d of %d",
					res.Stats.ReusedStatements, res.Stats.ReseededStatements, nStmts)
			}
		})
	}
}

// TestPersistNonConvergedSnapshot: a budget-bounded run's snapshot is
// the deterministic prefix of the fixpoint iteration; it may only be
// replayed for the exact same budget, and the replay reports the same
// ErrNoConvergence outcome with zero work.
func TestPersistNonConvergedSnapshot(t *testing.T) {
	budget := 10
	ref, err := Run(compileSrc(t, persistSrc), Options{MaxVisits: budget})
	if err != ErrNoConvergence {
		t.Fatalf("baseline outcome: %v", err)
	}
	want := outDigests(ref)

	st := openStore(t, filepath.Join(t.TempDir(), "cache.rsgstore"))
	if _, err := Run(compileSrc(t, persistSrc), Options{MaxVisits: budget, Store: st}); err != ErrNoConvergence {
		t.Fatalf("populate outcome: %v", err)
	}

	warm, err := Run(compileSrc(t, persistSrc), Options{MaxVisits: budget, Store: st})
	if err != ErrNoConvergence {
		t.Fatalf("warm outcome: %v", err)
	}
	sameDigests(t, "bounded-warm", want, outDigests(warm))
	if warm.Stats.Visits != 0 {
		t.Fatalf("bounded warm run did %d visits", warm.Stats.Visits)
	}

	// A different budget must NOT be served from the bounded snapshot.
	other, err := Run(compileSrc(t, persistSrc), Options{MaxVisits: budget + 1, Store: st})
	if err != ErrNoConvergence {
		t.Fatalf("other-budget outcome: %v", err)
	}
	if other.Stats.Visits == 0 {
		t.Fatalf("bounded snapshot served a different budget")
	}
}

// TestPersistFingerprintInvalidation: runs under different
// result-changing options must not share snapshots.
func TestPersistFingerprintInvalidation(t *testing.T) {
	st := openStore(t, filepath.Join(t.TempDir(), "cache.rsgstore"))
	if _, err := Run(compileSrc(t, persistSrc), Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	// Fingerprinted options: each variant keys a distinct snapshot, so
	// none is served the default-options result and the original still
	// warm-starts afterwards.
	variants := []Options{
		{Store: st, Level: rsg.L2},
		{Store: st, DisableJoin: true},
		{Store: st, MaxGraphsPerStmt: 8},
		// The scheduler is fingerprinted (widening points differ), so a
		// WTO-written snapshot must not warm-start an RPO run.
		{Store: st, Sched: SchedRPO},
	}
	for i, opts := range variants {
		res, err := Run(compileSrc(t, persistSrc), opts)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if res.Stats.Visits == 0 {
			t.Fatalf("variant %d was served the default-options snapshot", i)
		}
	}
	res, err := Run(compileSrc(t, persistSrc), Options{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Visits != 0 {
		t.Fatalf("original options no longer warm-start")
	}
	// NodeBudget is not fingerprinted — it shares the snapshot key and is
	// gated by an exact-match check instead, so a mismatched budget runs
	// cold rather than being served the default-budget snapshot.
	res, err = Run(compileSrc(t, persistSrc), Options{Store: st, NodeBudget: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Visits == 0 {
		t.Fatalf("node-budget variant was served a mismatched snapshot")
	}
}

// TestPersistCorruptedStoreFallsBackToCold: damaging the store file in
// assorted ways must never panic a run and never change its digests —
// at worst the run degrades to cold.
func TestPersistCorruptedStoreFallsBackToCold(t *testing.T) {
	ref, err := Run(compileSrc(t, persistSrc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := outDigests(ref)

	base := filepath.Join(t.TempDir(), "cache.rsgstore")
	st, err := store.Open(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(compileSrc(t, persistSrc), Options{Store: st}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	pristine, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"truncated_60pct", pristine[:len(pristine)*6/10]},
		{"truncated_20pct", pristine[:len(pristine)*2/10]},
		{"flipped_mid", flip(pristine, len(pristine)/2)},
		{"flipped_late", flip(pristine, len(pristine)-5)},
		{"garbage_appended", append(append([]byte(nil), pristine...), 0xde, 0xad, 0xbe, 0xef)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cache.rsgstore")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := store.Open(path)
			if err != nil {
				// The mutation destroyed the header: the store refuses
				// the file, the caller runs storeless. Still correct.
				st = nil
			} else {
				defer st.Close()
			}
			res, err := Run(compileSrc(t, persistSrc), Options{Store: st})
			if err != nil {
				t.Fatalf("run with damaged store: %v", err)
			}
			sameDigests(t, tc.name, want, outDigests(res))
		})
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

// TestPersistStoreMemoTier: with the snapshot path disabled (different
// budget so no warm hit), the persistent transfer-memo tier must serve
// parts across runs.
func TestPersistStoreMemoTier(t *testing.T) {
	st := openStore(t, filepath.Join(t.TempDir(), "cache.rsgstore"))
	if _, err := Run(compileSrc(t, persistSrc), Options{Store: st, MaxVisits: 10}); err != ErrNoConvergence {
		t.Fatalf("populate: %v", err)
	}
	// MaxVisits 11: the bounded snapshot (budget 10) is not eligible, so
	// the run recomputes — but the store memo serves the transfers it
	// already saw.
	res, err := Run(compileSrc(t, persistSrc), Options{Store: st, MaxVisits: 11})
	if err != ErrNoConvergence {
		t.Fatalf("rerun: %v", err)
	}
	if res.Stats.StoreMemoHits == 0 {
		t.Fatalf("store memo tier never hit: %+v", res.Stats)
	}
}
