package analysis_test

// Scheduling smoke gate (`make bench-sched`, wired into `make ci`):
// the WTO recursive strategy exists to cut scheduling waste, so it
// must never take *more* statement transfers than the flat RPO
// worklist on the benchmark surfaces — the Figure 1 list pipeline and
// the Barnes-Hut and matvec kernels. A regression here means the
// component structure or the stabilization loop rotted.

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rsg"
)

func TestSchedSmoke(t *testing.T) {
	fixtures := []struct {
		name      string
		src       func(t *testing.T) *ir.Program
		maxVisits int
	}{
		{"fig1", func(t *testing.T) *ir.Program { return compileSrc(t, fig1PipelineSource) }, 0},
		{"barneshut", func(t *testing.T) *ir.Program { p, _ := compileKernel(t, "barneshut"); return p }, 60000},
		{"matvec", func(t *testing.T) *ir.Program { p, _ := compileKernel(t, "matvec"); return p }, 60000},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			if testing.Short() && fx.name == "barneshut" {
				t.Skip("short mode")
			}
			prog := fx.src(t)
			run := func(sched analysis.Sched) *analysis.Result {
				res, err := analysis.Run(prog, analysis.Options{
					Level: rsg.L1, MaxVisits: fx.maxVisits, Sched: sched,
				})
				if err != nil && !(fx.maxVisits > 0 && errors.Is(err, analysis.ErrNoConvergence)) {
					t.Fatalf("sched=%s: %v", sched, err)
				}
				return res
			}
			rpo := run(analysis.SchedRPO)
			wto := run(analysis.SchedWTO)
			t.Logf("rpo: visits=%d requeues=%d; wto: visits=%d requeues=%d comp-stabs=%d widenings=%d",
				rpo.Stats.Visits, rpo.Stats.Requeues,
				wto.Stats.Visits, wto.Stats.Requeues, wto.Stats.ComponentStabilizations, wto.Stats.Widenings)
			if wto.Stats.Visits > rpo.Stats.Visits {
				t.Errorf("wto took %d visits, rpo %d — the recursive strategy must not schedule worse",
					wto.Stats.Visits, rpo.Stats.Visits)
			}
			if wto.Stats.Widenings > 0 {
				t.Errorf("wto widened %d times on a converging benchmark fixture — widenHeadAfter is too low",
					wto.Stats.Widenings)
			}
		})
	}
}
