package analysis_test

// Property test tying the two schedulers' views of the CFG together:
// on the reducible CFGs the mini-C dialect produces, the flat RPO and
// the WTO loop forest must classify exactly the same edges as back
// edges, and every back edge must target the head of a WTO component
// containing its source — the invariant that lets the recursive
// strategy confine iteration to components. Runs over every bench
// kernel and 200 generator-fuzzed programs.

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/concrete"
	"repro/internal/ir"
)

func checkWTOAgreesWithRPO(t *testing.T, name string, prog *ir.Program) {
	t.Helper()
	rpo := analysis.ReversePostOrderForTest(prog)
	idx := make([]int, len(prog.Stmts))
	for i, id := range rpo {
		idx[id] = i
	}
	w := prog.WTO()
	for _, s := range prog.Stmts {
		for _, succ := range s.Succs {
			rpoBack := idx[succ] <= idx[s.ID]
			wtoBack := w.Pos[succ] <= w.Pos[s.ID]
			if rpoBack != wtoBack {
				t.Errorf("%s: edge %d->%d is rpo-back=%v but wto-back=%v (reducible CFGs must agree)",
					name, s.ID, succ, rpoBack, wtoBack)
				continue
			}
			if !wtoBack {
				continue
			}
			c := w.HeadComp[w.Pos[succ]]
			if c < 0 {
				t.Errorf("%s: back edge %d->%d targets a non-head", name, s.ID, succ)
				continue
			}
			if !w.InComponent(c, w.Pos[s.ID]) {
				t.Errorf("%s: back edge %d->%d escapes its target's component [%d,%d)",
					name, s.ID, succ, w.Comps[c].Start, w.Comps[c].End)
			}
		}
	}
}

func TestWTOAgreesWithRPO(t *testing.T) {
	for _, k := range benchprog.All() {
		prog, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		checkWTOAgreesWithRPO(t, k.Name, prog)
	}
	checkWTOAgreesWithRPO(t, "fig1", compileSrc(t, fig1PipelineSource))

	// 200 fuzzed programs from the soundness fuzzer's generators
	// (fixed seed: this is a property sweep, not a rotating fuzz job).
	r := rand.New(rand.NewSource(94))
	n := 200
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		var src string
		switch i % 3 {
		case 0:
			src = concrete.GenProgram(r)
		case 1:
			src = concrete.GenFreeProgram(r)
		default:
			src = concrete.GenWideProgram(r)
		}
		prog := compileSrc(t, src)
		checkWTOAgreesWithRPO(t, "fuzz", prog)
		if t.Failed() {
			t.Fatalf("fuzz program %d:\n%s", i, src)
		}
	}
}
