package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// Fixpoint scheduling (DESIGN.md §14). The engine's worklist loop is
// parameterized over a scheduler: the order in which pending
// statements are visited is a pure performance choice (the in-state
// accumulation makes the dataflow monotone under any order), but it
// decides how many visits the fixed point costs. Two schedulers exist:
//
//   - SchedWTO (default): Bourdoncle's recursive iteration strategy
//     over the weak topological order — each loop component is
//     stabilized to a local fixed point before the order advances past
//     it, so an inner-loop ripple never re-fires outer statements.
//   - SchedRPO: the flat reverse-postorder min-heap this repo used
//     through PR 8, kept for A/B comparison (`shapec -sched rpo`,
//     `benchtab -sched rpo,wto`).

// Sched selects the engine's fixpoint scheduler.
type Sched int

const (
	// SchedWTO iterates the weak topological order with the recursive
	// strategy (innermost components stabilize first). The default.
	SchedWTO Sched = iota
	// SchedRPO pops pending statements in flat reverse-postorder.
	SchedRPO
)

// String returns the CLI name of the scheduler ("wto", "rpo").
func (s Sched) String() string {
	switch s {
	case SchedWTO:
		return "wto"
	case SchedRPO:
		return "rpo"
	}
	return fmt.Sprintf("sched(%d)", int(s))
}

// ParseSched parses a CLI scheduler name.
func ParseSched(name string) (Sched, error) {
	switch name {
	case "wto":
		return SchedWTO, nil
	case "rpo":
		return SchedRPO, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (want rpo or wto)", name)
}

// worklist abstracts the engine's scheduling policy. push enqueues a
// statement (returning whether it was newly enqueued — duplicates are
// absorbed by a pending set) and run drains the worklist through the
// visit callback, which may push further statements; run returns when
// no statement is pending or visit returns an error. widenNow reports
// whether the statement's next transfer must widen (union with its
// previous out-state), given its post-increment visit count.
type worklist interface {
	push(id int) bool
	run(visit func(id int) error) error
	widenNow(id, visits int) bool
}

// rpoSched is the legacy flat scheduler: a binary min-heap over RPO
// positions with a pending bitmap for dedup, and the global
// visits-per-statement widening cap.
type rpoSched struct {
	rpo      []int
	rpoIndex []int
	pending  []bool
	heap     rpoHeap
}

func newRPOSched(prog *ir.Program) *rpoSched {
	rpo := reversePostOrder(prog)
	rpoIndex := make([]int, len(prog.Stmts))
	for i, id := range rpo {
		rpoIndex[id] = i
	}
	return &rpoSched{rpo: rpo, rpoIndex: rpoIndex, pending: make([]bool, len(prog.Stmts))}
}

func (s *rpoSched) push(id int) bool {
	if s.pending[id] {
		return false
	}
	s.pending[id] = true
	s.heap.push(s.rpoIndex[id])
	return true
}

func (s *rpoSched) run(visit func(int) error) error {
	for s.heap.len() > 0 {
		id := s.rpo[s.heap.pop()]
		s.pending[id] = false
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

func (s *rpoSched) widenNow(_, visits int) bool { return visits > widenAfter }

// wtoSched implements the recursive iteration strategy over the WTO.
// pending is the usual per-statement bitmap; pendingIn[c] counts the
// pending statements inside component c's range (heads count in their
// own component), maintained along the Encl/Parent chain on every
// push/clear, so a sweep skips entire stabilized components in O(1)
// and a component's stabilization loop has an exact termination test.
type wtoSched struct {
	w            *ir.WTO
	pending      []bool
	pendingTotal int
	visited      int
	pendingIn    []int
	// rounds[c] counts component c's stabilization rounds cumulatively
	// across re-entries; past widenHeadAfter the head's transfers widen
	// (loop-head widening — straight-line statements never widen).
	rounds []int
	widen  []bool // indexed by statement ID; only heads are ever set
	stabs  int
}

func newWTOSched(prog *ir.Program) *wtoSched {
	w := prog.WTO()
	return &wtoSched{
		w:         w,
		pending:   make([]bool, len(prog.Stmts)),
		pendingIn: make([]int, len(w.Comps)),
		rounds:    make([]int, len(w.Comps)),
		widen:     make([]bool, len(prog.Stmts)),
	}
}

func (s *wtoSched) push(id int) bool {
	if s.pending[id] {
		return false
	}
	s.pending[id] = true
	s.pendingTotal++
	for c := s.w.Encl[s.w.Pos[id]]; c >= 0; c = s.w.Comps[c].Parent {
		s.pendingIn[c]++
	}
	return true
}

func (s *wtoSched) clear(id int) {
	s.pending[id] = false
	s.pendingTotal--
	s.visited++
	for c := s.w.Encl[s.w.Pos[id]]; c >= 0; c = s.w.Comps[c].Parent {
		s.pendingIn[c]--
	}
}

func (s *wtoSched) run(visit func(int) error) error {
	// One top-level sweep visits every pending statement: by the WTO
	// property, a visit can only push statements behind the cursor when
	// they share a component with it, and stabilize() does not advance
	// past a component until nothing inside is pending. A fixed point
	// mid-run can still re-arm earlier top-level positions in theory
	// (it cannot — edges backward in the order stay inside components —
	// but the outer loop and progress check make that assumption
	// checkable rather than load-bearing).
	for s.pendingTotal > 0 {
		visited := s.visited
		if err := s.sweep(0, len(s.w.Order), visit); err != nil {
			return err
		}
		if s.pendingTotal > 0 && s.visited == visited {
			return fmt.Errorf("analysis: wto scheduler made no progress with %d pending statements", s.pendingTotal)
		}
	}
	return nil
}

// sweep advances through positions [start, end), visiting pending
// plain statements in order and stabilizing components whose range
// holds any pending statement; stabilized components are skipped
// wholesale.
func (s *wtoSched) sweep(start, end int, visit func(int) error) error {
	for pos := start; pos < end; {
		if c := s.w.HeadComp[pos]; c >= 0 {
			if s.pendingIn[c] > 0 {
				if err := s.stabilize(c, visit); err != nil {
					return err
				}
			}
			pos = s.w.Comps[c].End
			continue
		}
		if id := s.w.Order[pos]; s.pending[id] {
			s.clear(id)
			if err := visit(id); err != nil {
				return err
			}
		}
		pos++
	}
	return nil
}

// stabilize iterates component c — head first, then its body in order
// (inner components recursively stabilized) — until nothing inside it
// is pending. Only then does the enclosing sweep move on, so outer
// statements never re-fire on an inner ripple.
func (s *wtoSched) stabilize(c int, visit func(int) error) error {
	head := s.w.Comps[c].Head
	start, end := s.w.Comps[c].Start, s.w.Comps[c].End
	for s.pendingIn[c] > 0 {
		s.stabs++
		s.rounds[c]++
		if s.rounds[c] > widenHeadAfter {
			s.widen[head] = true
		}
		if s.pending[head] {
			s.clear(head)
			if err := visit(head); err != nil {
				return err
			}
		}
		if err := s.sweep(start+1, end, visit); err != nil {
			return err
		}
	}
	return nil
}

func (s *wtoSched) widenNow(id, _ int) bool { return s.widen[id] }

// widenHeadAfter is the cumulative stabilization-round count past
// which a component head's transfers widen under SchedWTO. The
// analogue of widenAfter (which SchedRPO keeps), but per component and
// much lower: a round re-fires the head at most once, so this bounds
// head visits directly, and non-head statements rely on the heads of
// their enclosing components for termination. Covered by the options
// fingerprint: changing it changes results and must orphan snapshots.
const widenHeadAfter = 256

// reversePostOrder computes an RPO over the CFG from the entry.
func reversePostOrder(prog *ir.Program) []int {
	seen := make([]bool, len(prog.Stmts))
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range prog.Stmts[id].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(prog.Entry)
	for id := range prog.Stmts {
		if !seen[id] {
			dfs(id)
		}
	}
	out := make([]int, len(post))
	for i, id := range post {
		out[len(post)-1-i] = id
	}
	return out
}

// rpoHeap is a binary min-heap of RPO positions. A hand-rolled int heap
// (rather than container/heap) keeps pushes and pops allocation-free.
type rpoHeap struct{ a []int }

func (h *rpoHeap) len() int { return len(h.a) }

func (h *rpoHeap) push(x int) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *rpoHeap) pop() int {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= last {
			break
		}
		c := l
		if r < last && h.a[r] < h.a[l] {
			c = r
		}
		if h.a[i] <= h.a[c] {
			break
		}
		h.a[i], h.a[c] = h.a[c], h.a[i]
		i = c
	}
	return top
}
