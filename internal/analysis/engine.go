// Package analysis implements the symbolic-execution engine of the
// paper: an iterative abstract interpretation over the statement-level
// CFG that computes, for every sentence, the RSRSG approximating all
// memory configurations after its execution (Sect. 2, Fig. 2), and the
// progressive driver that escalates through the analysis levels
// L1 -> L2 -> L3 (Sect. 5).
package analysis

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/absem"
	"repro/internal/induction"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/rsrsg"
	"repro/internal/store"
)

// Options configures one analysis run.
type Options struct {
	// Level is the progressive analysis level (default L1).
	Level rsg.Level
	// MaxGraphsPerStmt bounds the RSGs kept per statement; compatible
	// graphs are force-joined past the bound. 0 means the default (64).
	MaxGraphsPerStmt int
	// MaxVisits bounds the total number of statement transfers before
	// the engine reports non-convergence. 0 means the default (200000).
	MaxVisits int
	// NodeBudget bounds the total number of live RSG nodes across all
	// per-statement RSRSGs; exceeding it aborts the run with
	// ErrBudgetExceeded. It models the paper's 128 MB machine on which
	// the Sparse LU analysis runs out of memory at L2/L3. 0 = unlimited.
	NodeBudget int
	// DisableJoin, DisableCyclePrune and NoCompress are ablation knobs
	// (see DESIGN.md).
	DisableJoin       bool
	DisableCyclePrune bool
	NoCompress        bool
	// TouchAllPvars widens TOUCH eligibility from induction pvars to
	// every pvar (ablation of the paper's restriction).
	TouchAllPvars bool
	// LegacyUnsound restores the engine's historical soundness bugs
	// (pre-anchoring PRUNE share eviction and stale vacuous CYCLELINKS
	// pairs on re-link; see absem.Context.LegacyUnsound). Only the
	// triage tooling sets it, to reproduce historical failures on
	// demand.
	LegacyUnsound bool
	// Timeout aborts the run with ErrTimeout when the fixed point takes
	// longer than this wall-clock duration. 0 = no limit.
	Timeout time.Duration
	// Workers is the number of goroutines used for the per-graph
	// abstract transfers and the per-alias-bucket RSRSG reductions.
	// 0 means GOMAXPROCS; 1 forces a fully sequential run. Any value
	// produces bit-identical per-statement digests: inputs are frozen,
	// each unit of parallel work is independent, and results are joined
	// in canonical digest order (see DESIGN.md §7).
	Workers int
	// Sched selects the fixpoint scheduler (DESIGN.md §14): SchedWTO
	// (the zero value, default) stabilizes each loop component of the
	// weak topological order before advancing past it; SchedRPO is the
	// legacy flat reverse-postorder worklist, kept for A/B comparison.
	// The two reach the same fixed point whenever no widening fires;
	// the choice is covered by the persistent-store options fingerprint
	// because widening points differ between them.
	Sched Sched
	// NoDelta disables the semi-naïve delta transfer (DESIGN.md §8):
	// every visit recomputes out = F(in) from the full in-state instead
	// of folding F(Δin) into the statement's cached out-state. Results
	// are bit-identical either way; the flag exists for A/B benchmarking
	// and as an escape hatch.
	NoDelta bool
	// Store, when set, backs the run with the persistent
	// content-addressed analysis store (DESIGN.md §13): the transfer
	// memo gains a cross-process tier, a repeat run of the same program
	// warm-starts from its recorded snapshot, and a changed program is
	// re-analyzed edit-delta — only the changed statements and their
	// forward cone. Nil disables persistence entirely.
	Store *store.Store
	// forceEditDelta makes the planner take the edit-delta path even
	// when an exact snapshot would warm-start the run — the zero-edit
	// case. Test-only (unexported): it exercises the diff/seed machinery
	// on a program with no changes, which must still be bit-identical.
	forceEditDelta bool
}

// ErrBudgetExceeded reports that the abstraction outgrew NodeBudget.
var ErrBudgetExceeded = errors.New("analysis: node budget exceeded (out of memory)")

// ErrNoConvergence reports that the fixed point was not reached within
// MaxVisits statement transfers.
var ErrNoConvergence = errors.New("analysis: fixed point not reached within the visit budget")

// ErrTimeout reports that the run exceeded Options.Timeout.
var ErrTimeout = errors.New("analysis: wall-clock timeout exceeded")

// timeoutError is ErrTimeout decorated with the run's elapsed time and
// visit count. The coordinator can observe a timeout at two points —
// the pre-visit deadline check and the cancellation surfacing through
// a transfer fan-out — and both route through wrapTimeout, which
// refuses to decorate twice, so a timeout always carries exactly one
// "after <dur> (<n> visits)" suffix no matter how many layers it
// crosses.
type timeoutError struct {
	dur    time.Duration
	visits int
}

func (e *timeoutError) Error() string {
	return fmt.Sprintf("%v after %v (%d visits)", ErrTimeout, e.dur, e.visits)
}

func (e *timeoutError) Unwrap() error { return ErrTimeout }

// wrapTimeout decorates a timeout error with elapsed time and visit
// count, idempotently: a non-timeout error and an already-decorated
// timeout pass through unchanged.
func wrapTimeout(err error, start time.Time, visits int) error {
	if !errors.Is(err, ErrTimeout) {
		return err
	}
	var te *timeoutError
	if errors.As(err, &te) {
		return err
	}
	return &timeoutError{dur: time.Since(start).Round(time.Millisecond), visits: visits}
}

// Stats aggregates engine counters for one run.
type Stats struct {
	// Visits is the number of statement transfers executed.
	Visits int
	// Sched is the scheduler the run used.
	Sched Sched
	// Requeues counts worklist pushes that re-enqueued a statement
	// after it had already been transferred at least once — the
	// scheduling waste a better iteration order drives down (pushes of
	// never-yet-visited statements are the dataflow itself, not waste).
	Requeues int
	// ComponentStabilizations counts WTO component iteration rounds:
	// each round visits the component head (if pending) and sweeps the
	// body once. 0 under SchedRPO and on loop-free programs.
	ComponentStabilizations int
	// Widenings counts visits whose transfer was widened (out-state
	// unioned with its previous value): visits past widenAfter under
	// SchedRPO, component-head visits past widenHeadAfter rounds under
	// SchedWTO. Runs that converge with Widenings == 0 reach a
	// schedule-independent fixed point.
	Widenings int
	// VisitCounts is the per-statement transfer count, indexed by
	// statement ID (VisitHistogram renders its distribution).
	VisitCounts []int
	// Duration is the wall-clock time of the run.
	Duration time.Duration
	// PeakNodes/PeakLinks/PeakGraphs track the largest total
	// abstraction size observed across all statements.
	PeakNodes  int
	PeakLinks  int
	PeakGraphs int
	// FinalNodes/FinalLinks/FinalGraphs describe the fixed point.
	FinalNodes  int
	FinalLinks  int
	FinalGraphs int
	// MemoHits/MemoMisses count per-graph transfer-memo lookups: a hit
	// means the statement's abstract semantics were skipped because the
	// input graph's digest was seen at this statement before.
	MemoHits   int
	MemoMisses int
	// Workers is the resolved worker count of the run (Options.Workers
	// after defaulting 0 to GOMAXPROCS).
	Workers int
	// ParallelTransfers counts statement transfers whose memo misses
	// were fanned out over the worker pool; ParallelJobs counts the
	// per-graph jobs those fan-outs dispatched.
	ParallelTransfers int
	ParallelJobs      int
	// DeltaTransfers counts statement visits served by the semi-naïve
	// delta path (only new in-graphs stepped, only dirty alias buckets
	// re-reduced); FullRecomputes counts visits of delta-eligible ops
	// that recomputed F(in) from scratch (NoDelta runs, the widening
	// fallback, TOUCH-erasure fallback). DirtyBuckets totals the alias
	// buckets re-reduced across all delta visits.
	DeltaTransfers int
	FullRecomputes int
	DirtyBuckets   int
	// MemoFull counts transfer-memo insertions that evicted another
	// entry because the statement's cache was at capacity.
	MemoFull int
	// StoreMemoHits counts in-memory memo misses that were served from
	// the persistent store's transfer-memo tier instead of recomputed.
	StoreMemoHits int
	// ReusedStatements counts statements whose out-states were restored
	// from a store snapshot (every visited statement on a warm start;
	// the reachable statements outside the changed cone on an edit-delta
	// run). ReseededStatements counts the statements an edit-delta run
	// seeded back onto the worklist — the changed statements plus their
	// forward cone. Both are 0 on cold runs.
	ReusedStatements   int
	ReseededStatements int
	// Cache holds the rsg digest/intern counters of this run. The
	// GraphsFrozen/DigestsComputed/InternHits/InternMisses fields (and
	// the funnel's share of DigestCacheHits) come from a per-run
	// recorder threaded through the reduction layer, so they are exact
	// even when several Runs overlap in one process (the daemon's
	// steady state). PoolGets/PoolNews/MaskSpills are deltas of the
	// process-global scratch-pool tallies, which have no per-run
	// identity; see SharedTallies.
	Cache rsg.CacheStats
	// SharedTallies reports that at least one other Run was active at
	// some point during this run. Only the pool/spill fields of Cache
	// are affected — they are global deltas and then include the
	// overlapping runs' checkouts too; the recorder-backed fields stay
	// exact regardless.
	SharedTallies bool
}

// MemoHitRate returns the fraction of per-graph transfers served from
// the memo, or 0 when no memoizable transfer ran.
func (s *Stats) MemoHitRate() float64 {
	total := s.MemoHits + s.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(total)
}

// CacheSummary renders the memoization counters in one line.
func (s *Stats) CacheSummary() string {
	shared := ""
	if s.SharedTallies {
		shared = " [shared: concurrent runs, pool/spill tallies over-count]"
	}
	return fmt.Sprintf(
		"memo(hits=%d misses=%d rate=%.1f%%) delta(transfers=%d full=%d dirty=%d memo-full=%d) frozen=%d digests(computed=%d cached=%d) intern(hits=%d misses=%d) pool(gets=%d news=%d hit=%.1f%%) mask-spills=%d%s",
		s.MemoHits, s.MemoMisses, 100*s.MemoHitRate(),
		s.DeltaTransfers, s.FullRecomputes, s.DirtyBuckets, s.MemoFull,
		s.Cache.GraphsFrozen, s.Cache.DigestsComputed, s.Cache.DigestCacheHits,
		s.Cache.InternHits, s.Cache.InternMisses,
		s.Cache.PoolGets, s.Cache.PoolNews, 100*s.PoolHitRate(), s.Cache.MaskSpills, shared)
}

// SchedSummary renders the scheduling counters in one line.
func (s *Stats) SchedSummary() string {
	return fmt.Sprintf("sched(%s: visits=%d requeues=%d comp-stabs=%d widenings=%d)",
		s.Sched, s.Visits, s.Requeues, s.ComponentStabilizations, s.Widenings)
}

// VisitHistogram renders the visits-per-statement distribution in
// power-of-two buckets, e.g. "0:2 1:14 2:3 3-4:6 5-8:1". Statements
// piling into the high buckets are the ones the scheduler re-fires.
func (s *Stats) VisitHistogram() string {
	if len(s.VisitCounts) == 0 {
		return ""
	}
	zero := 0
	var buckets []int // buckets[b] counts v with ceil(log2(v)) == b
	for _, v := range s.VisitCounts {
		if v <= 0 {
			zero++
			continue
		}
		b := 0
		for hi := 1; hi < v; hi <<= 1 {
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	out := fmt.Sprintf("0:%d", zero)
	for b, n := range buckets {
		if n == 0 {
			continue
		}
		lo, hi := 1, 1
		if b > 0 {
			lo, hi = 1<<(b-1)+1, 1<<b
		}
		if lo == hi {
			out += fmt.Sprintf(" %d:%d", lo, n)
		} else {
			out += fmt.Sprintf(" %d-%d:%d", lo, hi, n)
		}
	}
	return out
}

// PoolHitRate returns the fraction of scratch-pool checkouts served
// without allocating a fresh scratch, or 0 when no checkout happened.
func (s *Stats) PoolHitRate() float64 {
	if s.Cache.PoolGets == 0 {
		return 0
	}
	return float64(s.Cache.PoolGets-s.Cache.PoolNews) / float64(s.Cache.PoolGets)
}

// Result is the outcome of one analysis run.
type Result struct {
	Program *ir.Program
	Level   rsg.Level
	// Out maps every statement ID to the RSRSG after its execution.
	Out map[int]*rsrsg.Set
	// Diags aggregates the abstract-semantics diagnostics.
	Diags absem.Diagnostics
	Stats Stats
}

// ExitSet returns the RSRSG at the function exit.
func (r *Result) ExitSet() *rsrsg.Set { return r.Out[r.Program.Exit] }

// Run executes the symbolic analysis to its fixed point.
func Run(prog *ir.Program, opts Options) (*Result, error) {
	if opts.Level == 0 {
		opts.Level = rsg.L1
	}
	if opts.MaxGraphsPerStmt == 0 {
		opts.MaxGraphsPerStmt = 64
	}
	if opts.MaxVisits == 0 {
		opts.MaxVisits = 200000
	}
	induction.Annotate(prog)
	// Idempotent; lowering already resolved Syms, but hand-built
	// programs (tests, benchmarks) may not have.
	prog.ResolveSyms()

	res := &Result{
		Program: prog,
		Level:   opts.Level,
		Out:     make(map[int]*rsrsg.Set, len(prog.Stmts)),
	}
	res.Stats.Sched = opts.Sched
	start := time.Now()
	// The digest/freeze/intern counters come from the run's private
	// recorder (eng.rec, threaded through rsrsg.Options.Stats), so they
	// are exact under overlapping runs. The scratch-pool tallies are
	// process-global with no per-run identity; detect overlapping runs
	// so their delta can be flagged as shared rather than silently
	// double-counted.
	myEpoch := runEpoch.Add(1)
	shared := activeRuns.Add(1) > 1
	cacheBase := rsg.ReadCacheStats()
	eng := newEngineRun(opts, start)
	defer eng.cancel(nil)
	defer func() {
		res.Stats.Duration = time.Since(start)
		pools := rsg.ReadCacheStats().Sub(cacheBase)
		res.Stats.Cache = eng.rec.Snapshot()
		res.Stats.Cache.PoolGets = pools.PoolGets
		res.Stats.Cache.PoolNews = pools.PoolNews
		res.Stats.Cache.MaskSpills = pools.MaskSpills
		if runEpoch.Load() != myEpoch {
			shared = true
		}
		activeRuns.Add(-1)
		res.Stats.SharedTallies = shared
		res.Stats.Workers = eng.workers
		res.Stats.MemoHits = int(eng.memoHits.Load())
		res.Stats.MemoMisses = int(eng.memoMisses.Load())
		res.Stats.ParallelTransfers = int(eng.parallelTransfers.Load())
		res.Stats.ParallelJobs = int(eng.parallelJobs.Load())
		res.Stats.DeltaTransfers = eng.deltaTransfers
		res.Stats.FullRecomputes = eng.fullRecomputes
		res.Stats.DirtyBuckets = eng.dirtyBuckets
		res.Stats.MemoFull = eng.memoFull
		res.Stats.StoreMemoHits = int(eng.storeMemoHits.Load())
	}()

	reduceOpts := eng.reduceOpts

	// Entry state: one empty RSG (all pvars NULL, empty heap).
	entrySet := rsrsg.New()
	entrySet.AddStats(rsg.NewGraph(), eng.rec)
	res.Out[prog.Entry] = entrySet
	// Running abstraction-size totals, updated whenever an out-state is
	// replaced, so the per-visit peak/budget accounting is O(1) instead
	// of rescanning every out-set.
	curNodes, curLinks, curGraphs := entrySet.NumNodes(), entrySet.NumLinks(), entrySet.Len()

	// Persistence planning (DESIGN.md §13): probe the store for a warm
	// snapshot of this exact program or a converged snapshot of a
	// previous version to edit-delta against. applyRestore folds
	// restored out-states into the result with the running size totals
	// kept consistent (the entry's restored set replaces the seeded one;
	// they are identical by construction).
	plan := eng.planPersist(prog, opts)
	applyRestore := func(m map[int]*rsrsg.Set) {
		for id, set := range m {
			if old := res.Out[id]; old != nil {
				curNodes -= old.NumNodes()
				curLinks -= old.NumLinks()
				curGraphs -= old.Len()
			}
			res.Out[id] = set
			curNodes += set.NumNodes()
			curLinks += set.NumLinks()
			curGraphs += set.Len()
		}
	}
	switch plan.mode {
	case persistWarm:
		// Wholesale restore: zero transfers, zero visits; the recorded
		// outcome (converged, or the bounded prefix's ErrNoConvergence)
		// is replayed as-is.
		applyRestore(plan.restore)
		res.Stats.ReusedStatements = len(plan.restore)
		if err := res.observeSize(opts, curNodes, curLinks, curGraphs); err != nil {
			return res, err
		}
		res.finalSize(curNodes, curLinks, curGraphs)
		return res, plan.outcome
	case persistEdit:
		applyRestore(plan.restore)
		res.Stats.ReusedStatements = len(plan.restore)
		res.Stats.ReseededStatements = len(plan.seed)
	}

	// Scheduling (DESIGN.md §14): the WTO recursive strategy stabilizes
	// each loop component before the order advances past it; the legacy
	// flat RPO min-heap stays behind Options.Sched for A/B. Either way
	// changes ripple forward through the CFG before loops re-fire.
	var sched worklist
	var wto *wtoSched
	if opts.Sched == SchedRPO {
		sched = newRPOSched(prog)
	} else {
		wto = newWTOSched(prog)
		sched = wto
	}
	visits := make([]int, len(prog.Stmts))
	inState := make(map[int]*rsrsg.Set, len(prog.Stmts))
	push := func(id int) {
		if sched.push(id) && visits[id] > 0 {
			res.Stats.Requeues++
		}
	}
	pushSuccs := func(id int) {
		for _, s := range prog.Stmts[id].Succs {
			push(s)
		}
	}
	if plan.mode == persistEdit {
		// Edit-delta seeding: only the changed statements and their
		// forward cone re-enter the worklist. Their non-cone
		// predecessors' out-states were restored above, so the first
		// visit of each seeded statement admits the converged in-flow
		// directly via MergeDelta instead of recomputing it.
		for _, id := range plan.seed {
			push(id)
		}
	} else {
		pushSuccs(prog.Entry)
	}

	debug := os.Getenv("REPRO_DEBUG") != ""
	var contribs []*rsrsg.Set
	visit := func(id int) error {
		if res.Stats.Visits >= opts.MaxVisits {
			return ErrNoConvergence
		}
		if opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			return wrapTimeout(ErrTimeout, start, res.Stats.Visits)
		}
		res.Stats.Visits++
		if debug && res.Stats.Visits%50 == 0 {
			// Totals come from the running counters; only the
			// biggest-statement probe still scans, and only here.
			big, bigID := 0, -1
			for sid, s := range res.Out {
				if s.Len() > big {
					big, bigID = s.Len(), sid
				}
			}
			fmt.Printf("[debug] visit=%d t=%v stmt=%d (%s) total nodes=%d graphs=%d biggest stmt=%d with %d graphs\n",
				res.Stats.Visits, time.Since(start).Round(time.Millisecond),
				id, prog.Stmt(id), curNodes, curGraphs, bigID, big)
		}

		stmt := prog.Stmt(id)
		ctx := &absem.Context{
			Level:             opts.Level,
			Opts:              reduceOpts,
			InLoop:            prog.InLoop(id),
			Diags:             &res.Diags,
			DisableCyclePrune: opts.DisableCyclePrune,
			NoCompress:        opts.NoCompress,
			LegacyUnsound:     opts.LegacyUnsound,
		}
		if opts.Level.UseTouch() {
			if opts.TouchAllPvars {
				ctx.Induction = allPvars(prog)
			} else {
				ind := rsg.NewPvarSet()
				for p := range prog.InductionFor(id) {
					ind.Add(p)
				}
				ctx.Induction = ind
			}
		} else {
			ctx.Induction = rsg.NewPvarSet()
		}

		// in-states accumulate monotonically: every predecessor's current
		// out-state is folded in incrementally (only genuinely new
		// graphs are processed), with TOUCH erasure applied on
		// loop-exit edges. All contributions of the visit are admitted
		// in one batched merge — one alias-bucket reduction round and
		// one net delta instead of a round per predecessor — so the
		// per-round fixed costs (bucket snapshots, task dispatch,
		// delta netting) amortize across a statement's whole pending
		// delta. The accumulation makes the dataflow monotone
		// regardless of transfer non-monotonicities, guaranteeing the
		// fixed point terminates. The net membership delta across all
		// predecessor merges feeds the semi-naïve transfer below.
		in := inState[id]
		if in == nil {
			in = rsrsg.New()
			inState[id] = in
		}
		contribs = contribs[:0]
		for _, pred := range stmt.Preds {
			po := res.Out[pred]
			if po == nil {
				continue
			}
			contribution := po
			if opts.Level.UseTouch() {
				if erase := exitedInduction(prog, pred, id, opts.TouchAllPvars); !erase.Empty() {
					// TOUCH erasure rewrites graphs rather than filtering
					// members, so the delta path's per-part bookkeeping does
					// not reach through it; the statement permanently falls
					// back to full recomputation (DESIGN.md §8). The erase
					// itself is memoized per edge — its ipvar set is static,
					// so the result is a pure function of the input set.
					eng.markNoDelta(id)
					if opts.NoDelta {
						contribution = absem.EraseTouch(ctx, po, erase)
					} else {
						contribution = eng.eraseMemo.Apply(ctx, eraseEdgeKey(pred, id), po, erase)
					}
				}
			}
			contribs = append(contribs, contribution)
		}
		delta := in.MergeDeltaBatch(opts.Level, contribs, reduceOpts)
		if !delta.Changed && res.Out[id] != nil {
			return nil
		}

		// Standard dataflow: out = F(in), computed semi-naïvely from the
		// in-state delta when the statement is eligible. If a statement
		// is revisited pathologically often (transfer non-monotonicity
		// making the out-state oscillate), fall back to accumulating its
		// out-states — a widening that forces monotone growth and hence
		// stabilization. SchedRPO widens any statement past widenAfter
		// visits; SchedWTO widens component heads past widenHeadAfter
		// stabilization rounds (body statements cannot out-oscillate a
		// stabilized head: each round re-fires them at most once, so
		// bounding the head's rounds bounds them too). Widening composes
		// the previous out-state into the new one, so such a statement
		// leaves the delta path (which tracks F(in) only) for good; the
		// switch is one-way, keeping the delta caches complete whenever
		// they are consulted.
		visits[id]++
		widen := sched.widenNow(id, visits[id])
		if widen {
			res.Stats.Widenings++
			eng.markNoDelta(id)
		}
		out, err := eng.transferAny(ctx, stmt, in, delta)
		if err != nil {
			return wrapTimeout(err, start, res.Stats.Visits)
		}
		if widen {
			out = rsrsg.Union(opts.Level, res.Out[id], out, reduceOpts)
		}
		if old := res.Out[id]; old == nil || !out.Equal(old) {
			if old != nil {
				curNodes -= old.NumNodes()
				curLinks -= old.NumLinks()
				curGraphs -= old.Len()
			}
			curNodes += out.NumNodes()
			curLinks += out.NumLinks()
			curGraphs += out.Len()
			res.Out[id] = out
			pushSuccs(id)
		}

		return res.observeSize(opts, curNodes, curLinks, curGraphs)
	}

	err := sched.run(visit)
	res.Stats.VisitCounts = visits
	if wto != nil {
		res.Stats.ComponentStabilizations = wto.stabs
	}
	if err != nil {
		if errors.Is(err, ErrNoConvergence) {
			return res, eng.persistFinish(plan, prog, res, ErrNoConvergence)
		}
		return res, err
	}
	res.finalSize(curNodes, curLinks, curGraphs)
	return res, eng.persistFinish(plan, prog, res, nil)
}

// widenAfter is the visit count past which a statement's out-state is
// widened by union with its previous value (see the worklist loop). A
// package-level constant because the options fingerprint covers it: a
// change here changes results, which must invalidate stored snapshots.
const widenAfter = 1000

// eraseEdgeKey packs a CFG edge into the EraseMemo key space.
func eraseEdgeKey(pred, id int) uint64 {
	return uint64(uint32(pred))<<32 | uint64(uint32(id))
}

func allPvars(prog *ir.Program) rsg.PvarSet {
	s := rsg.NewPvarSet()
	for p := range prog.PtrVars {
		s.Add(p)
	}
	return s
}

// exitedInduction returns the induction pvars of the loops left by the
// edge pred -> id.
func exitedInduction(prog *ir.Program, pred, id int, all bool) rsg.PvarSet {
	loops := prog.LoopsExited(pred, id)
	out := rsg.NewPvarSet()
	for _, l := range loops {
		if all {
			// Ablation: every pvar was TOUCH-eligible; erase all on exit.
			return allPvars(prog)
		}
		for p := range l.Induction {
			out.Add(p)
		}
	}
	return out
}

// transferMemo caches the per-graph transfer results of every
// statement, keyed by the input graph's canonical digest (graphs inside
// an RSRSG are frozen, so the digest is memoized and the lookup is a
// 16-byte comparison — no signature strings are built or hashed).
// During the fixed point the same graphs flow through a statement many
// times; only the delta of each round is computed afresh. The
// per-statement context (level, induction sets, ablation flags) is
// constant within one run, so the digest fully determines the result.
type transferMemo map[int]*stmtMemo

// memoCap bounds the cached input graphs per statement; past it the
// memo evicts with a clock (second-chance) sweep instead of refusing
// inserts, so long runs keep their hit rate. A variable (not a const)
// only so the eviction test can shrink it.
var memoCap = 8192

// activeRuns/runEpoch let Run detect overlapping analyses for the
// Stats.SharedTallies flag: activeRuns counts runs currently inside
// Run, and runEpoch increments on every Run start so a run that begins
// and ends entirely inside another one is still observed (the
// enclosing run sees the epoch move).
var (
	activeRuns atomic.Int64
	runEpoch   atomic.Uint64
)

// stepGraph dispatches one graph through a statement's per-graph
// abstract semantics.
func stepGraph(ctx *absem.Context, s *ir.Stmt, g *rsg.Graph) []*rsg.Graph {
	switch s.Op {
	case ir.OpNil:
		return absem.StepNilSym(ctx, g, s.XSym)
	case ir.OpMalloc:
		return absem.StepMallocSym(ctx, g, s.XSym, s.TypeSym)
	case ir.OpCopy:
		return absem.StepCopySym(ctx, g, s.XSym, s.YSym)
	case ir.OpSelNil:
		return absem.StepSelNilSym(ctx, g, s.XSym, s.SelSym)
	case ir.OpSelCopy:
		return absem.StepSelCopySym(ctx, g, s.XSym, s.SelSym, s.YSym)
	case ir.OpLoad:
		return absem.StepLoadSym(ctx, g, s.XSym, s.YSym, s.SelSym)
	case ir.OpFree:
		return absem.StepFreeSym(ctx, g, s.XSym, s.SelSyms)
	}
	return []*rsg.Graph{g}
}

// observeSize folds the engine's running abstraction-size totals into
// the peak statistics and enforces the node budget. The totals are
// maintained incrementally by the worklist loop, so this is O(1) per
// visit.
func (r *Result) observeSize(opts Options, nodes, links, graphs int) error {
	if nodes > r.Stats.PeakNodes {
		r.Stats.PeakNodes = nodes
	}
	if links > r.Stats.PeakLinks {
		r.Stats.PeakLinks = links
	}
	if graphs > r.Stats.PeakGraphs {
		r.Stats.PeakGraphs = graphs
	}
	if opts.NodeBudget > 0 && nodes > opts.NodeBudget {
		return fmt.Errorf("%w: %d nodes > budget %d", ErrBudgetExceeded, nodes, opts.NodeBudget)
	}
	return nil
}

func (r *Result) finalSize(nodes, links, graphs int) {
	r.Stats.FinalNodes = nodes
	r.Stats.FinalLinks = links
	r.Stats.FinalGraphs = graphs
}
