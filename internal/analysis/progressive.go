package analysis

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/absem"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// Goal is an accuracy requirement evaluated on an analysis result. The
// progressive driver escalates to the next level while any goal is
// unmet — the paper's "the compiler has to focus more" criterion
// (Sect. 5: the sparse codes are accurate at L1; Barnes-Hut needs L3).
type Goal interface {
	// Name identifies the goal in reports.
	Name() string
	// Met evaluates the goal; detail explains the verdict.
	Met(res *Result) (ok bool, detail string)
}

// LevelGated marks a goal that is undefined below a minimum analysis
// level (e.g. a TOUCH-based criterion below L3). The progressive
// driver reports such a goal as unmet below its minimum level without
// evaluating it, and callers that pin a single level can skip gated
// goals outright instead of guessing from the failure detail.
type LevelGated interface {
	Goal
	// MinLevel is the lowest level at which Met is meaningful.
	MinLevel() rsg.Level
}

// LevelReport describes one level's run within a progressive analysis.
type LevelReport struct {
	Level rsg.Level
	// Result is nil when the run aborted (e.g. budget exceeded).
	Result *Result
	Err    error
	// GoalsMet reports whether every goal held at this level.
	GoalsMet bool
	// GoalDetail holds one line per goal.
	GoalDetail []string
	// Duration is the wall-clock time of the level.
	Duration time.Duration
	// AllocBytes is the total heap allocation performed by the level's
	// run; AllocObjects the matching object count (runtime Mallocs
	// delta); PeakHeapBytes samples the live heap every 50 ms during
	// the run — the closer analogue of the paper's resident "Space
	// (MB)" column (see EXPERIMENTS.md).
	AllocBytes    uint64
	AllocObjects  uint64
	PeakHeapBytes uint64
}

// ProgressiveResult is the outcome of a progressive analysis.
type ProgressiveResult struct {
	Levels []LevelReport
	// Final is the last level run.
	Final *LevelReport
}

// AchievedLevel returns the level of the last completed run.
func (p *ProgressiveResult) AchievedLevel() rsg.Level {
	if p.Final == nil {
		return 0
	}
	return p.Final.Level
}

// Progressive runs the paper's progressive analysis: L1 first, then L2
// and L3, stopping as soon as every goal is met (or after L3). opts
// applies to every level; opts.Level is ignored.
func Progressive(prog *ir.Program, goals []Goal, opts Options) *ProgressiveResult {
	out := &ProgressiveResult{}
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		rep := RunLevel(prog, lvl, goals, opts)
		out.Levels = append(out.Levels, rep)
		out.Final = &out.Levels[len(out.Levels)-1]
		if rep.Err == nil && rep.GoalsMet {
			break
		}
	}
	return out
}

// RunLevel executes one level with time and allocation measurement and
// goal evaluation.
func RunLevel(prog *ir.Program, lvl rsg.Level, goals []Goal, opts Options) LevelReport {
	opts.Level = lvl
	rep := LevelReport{Level: lvl}

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()

	// Sample the live heap while the run executes.
	stopSampler := make(chan struct{})
	peakCh := make(chan uint64, 1)
	go func() {
		var peak uint64
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopSampler:
				peakCh <- peak
				return
			case <-ticker.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()

	res, err := Run(prog, opts)

	rep.Duration = time.Since(start)
	close(stopSampler)
	rep.PeakHeapBytes = <-peakCh
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > rep.PeakHeapBytes {
		rep.PeakHeapBytes = after.HeapAlloc
	}
	rep.AllocBytes = after.TotalAlloc - before.TotalAlloc
	rep.AllocObjects = after.Mallocs - before.Mallocs

	rep.Result = res
	rep.Err = err
	if err != nil {
		rep.GoalsMet = false
		rep.GoalDetail = append(rep.GoalDetail, fmt.Sprintf("run failed: %v", err))
		return rep
	}
	rep.GoalsMet = true
	for _, g := range goals {
		if lg, isGated := g.(LevelGated); isGated && lvl < lg.MinLevel() {
			rep.GoalsMet = false
			rep.GoalDetail = append(rep.GoalDetail,
				fmt.Sprintf("%-30s %-5v requires %s", g.Name(), false, lg.MinLevel()))
			continue
		}
		ok, detail := g.Met(res)
		rep.GoalDetail = append(rep.GoalDetail,
			fmt.Sprintf("%-30s %-5v %s", g.Name(), ok, detail))
		if !ok {
			rep.GoalsMet = false
		}
	}
	return rep
}

// PipelineStep pushes an RSRSG through the abstract semantics of one
// destructive sentence, "x->sel = NULL": the full Fig. 2 per-sentence
// pipeline (division, pruning, materialization, interpretation,
// compression and union). Exposed for the figure-reproduction
// benchmarks and tests.
func PipelineStep(lvl rsg.Level, in *rsrsg.Set, x, sel string) *rsrsg.Set {
	ctx := &absem.Context{Level: lvl, Induction: rsg.NewPvarSet()}
	return absem.XSelNil(ctx, in, x, sel)
}

// Summary renders a human-readable progressive report.
func (p *ProgressiveResult) Summary() string {
	var b strings.Builder
	for _, rep := range p.Levels {
		fmt.Fprintf(&b, "%s: time=%v peak-heap=%.1f MB alloc=%.1f MB", rep.Level,
			rep.Duration.Round(time.Millisecond),
			float64(rep.PeakHeapBytes)/(1<<20), float64(rep.AllocBytes)/(1<<20))
		if rep.Result != nil {
			fmt.Fprintf(&b, " visits=%d peak(nodes=%d links=%d graphs=%d)",
				rep.Result.Stats.Visits, rep.Result.Stats.PeakNodes,
				rep.Result.Stats.PeakLinks, rep.Result.Stats.PeakGraphs)
			fmt.Fprintf(&b, " %s", rep.Result.Stats.CacheSummary())
		}
		if rep.Err != nil {
			fmt.Fprintf(&b, " ERROR: %v", rep.Err)
		}
		fmt.Fprintf(&b, " goals-met=%v\n", rep.GoalsMet)
		for _, d := range rep.GoalDetail {
			fmt.Fprintf(&b, "    %s\n", d)
		}
	}
	return b.String()
}
