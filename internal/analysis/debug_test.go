package analysis

import (
	"testing"
	"time"

	"repro/internal/rsg"
)

const treeBuildSrc = `
struct tnode { int key; struct tnode *left; struct tnode *right; };

void main(void) {
    struct tnode *root;
    struct tnode *cur;
    struct tnode *kid;
    root = malloc(sizeof(struct tnode));
    root->left = NULL;
    root->right = NULL;
    while (grow) {
        cur = root;
        while (descend) {
            if (goleft) {
                if (cur->left == NULL) {
                    kid = malloc(sizeof(struct tnode));
                    kid->left = NULL;
                    kid->right = NULL;
                    cur->left = kid;
                }
                cur = cur->left;
            } else {
                if (cur->right == NULL) {
                    kid = malloc(sizeof(struct tnode));
                    kid->left = NULL;
                    kid->right = NULL;
                    cur->right = kid;
                }
                cur = cur->right;
            }
        }
    }
}
`

// TestTreeBuildConverges watches the fixed point of the binary-tree
// construction kernel; it is the stress test for the join machinery.
func TestTreeBuildConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	prog := compile(t, treeBuildSrc)
	start := time.Now()
	res, err := Run(prog, Options{Level: rsg.L1, MaxVisits: 20000})
	if err != nil {
		t.Fatalf("after %v (visits=%d peak nodes=%d graphs=%d): %v",
			time.Since(start), res.Stats.Visits, res.Stats.PeakNodes, res.Stats.PeakGraphs, err)
	}
	t.Logf("converged in %v: visits=%d peak(nodes=%d links=%d graphs=%d)",
		time.Since(start), res.Stats.Visits, res.Stats.PeakNodes,
		res.Stats.PeakLinks, res.Stats.PeakGraphs)
	if res.ExitSet().Len() == 0 {
		t.Fatal("no configuration reaches the exit")
	}
}
