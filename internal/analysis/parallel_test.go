package analysis_test

// Tests for the parallel fixpoint engine (DESIGN.md §7): the
// determinism property (any worker count produces bit-identical
// per-statement digests), prompt cancellation of in-flight workers on
// Timeout/NodeBudget, goroutine hygiene, and the CacheShared overlap
// flag on the process-global rsg counters.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rsg"
)

// fig1PipelineSource is the Fig. 1(a) working example: build a doubly
// linked list, then traverse it with a second pointer.
const fig1PipelineSource = `
struct elem { int val; struct elem *nxt; struct elem *prv; };
void main(void) {
    struct elem *list;
    struct elem *p;
    struct elem *e;
    list = malloc(sizeof(struct elem));
    list->nxt = NULL;
    list->prv = NULL;
    p = list;
    while (more) {
        e = malloc(sizeof(struct elem));
        e->nxt = NULL;
        e->prv = p;
        p->nxt = e;
        p = e;
    }
    p = list;
    while (go) {
        p = p->nxt;
    }
}
`

// popFreeSource builds a list and deallocates it by popping the head —
// the free-heavy counterpart of fig1 for the determinism matrix.
const popFreeSource = `
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    p = NULL;
    while (cond) {
        q = malloc(sizeof(struct node));
        q->nxt = p;
        p = q;
    }
    q = NULL;
    while (p != NULL) {
        q = p->nxt;
        free(p);
        p = q;
    }
}
`

// fingerprint renders the per-statement RSRSG membership as sorted
// canonical digests — the object the determinism property quantifies
// over. Digests are sorted so the fingerprint is independent of the
// sets' internal entry order.
func fingerprint(res *analysis.Result) string {
	ids := make([]int, 0, len(res.Out))
	for id := range res.Out {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		var digs []string
		res.Out[id].ForEachEntry(func(g *rsg.Graph, dig rsg.Digest) {
			digs = append(digs, fmt.Sprintf("%x", dig))
		})
		sort.Strings(digs)
		fmt.Fprintf(&b, "%d: %s\n", id, strings.Join(digs, " "))
	}
	return b.String()
}

// TestParallelDeterminism runs the determinism property over the
// fixture programs x levels L1-L3 x scheduler {wto,rpo} x Workers in
// {1,2,4,8} x delta propagation {on,off}: within one scheduler every
// configuration must produce identical per-statement digest sets, and
// a repeated run of the last configuration must agree with the first
// (no hidden schedule dependence). Across schedulers the fingerprints
// are also compared — but only on fixtures that run to their fixed
// point without widening, where the fixed point is schedule-
// independent; bounded kernels stop at a visit-count prefix whose
// contents legitimately differ per scheduler. The heavy kernels run
// under a visit bound — partial fixed points exercise the same code
// paths and must be just as deterministic, and they catch any
// delta/full divergence long before the fixed point would mask it.
func TestParallelDeterminism(t *testing.T) {
	fixtures := []struct {
		name      string
		prog      func(t *testing.T) *ir.Program
		maxVisits int
	}{
		{"fig1", func(t *testing.T) *ir.Program { return compileSrc(t, fig1PipelineSource) }, 0},
		{"barneshut", func(t *testing.T) *ir.Program { p, _ := compileKernel(t, "barneshut"); return p }, 300},
		{"lu", func(t *testing.T) *ir.Program { p, _ := compileKernel(t, "lu"); return p }, 300},
		// popFreeSource exercises the OpFree transfer (and its delta memo
		// path) in the matrix: deallocation must be just as schedule-
		// independent as the constructive sentences.
		{"popfree", func(t *testing.T) *ir.Program { return compileSrc(t, popFreeSource) }, 0},
	}
	type config struct {
		sched   analysis.Sched
		workers int
		noDelta bool
	}
	scheds := []analysis.Sched{analysis.SchedWTO, analysis.SchedRPO}
	var configs []config
	for _, sched := range scheds {
		if testing.Short() {
			for _, w := range []int{1, 4} {
				configs = append(configs, config{sched, w, false}, config{sched, w, true})
			}
		} else {
			for _, w := range []int{1, 2, 4, 8} {
				configs = append(configs, config{sched, w, false})
			}
			configs = append(configs, config{sched, 1, true}, config{sched, 8, true})
		}
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			prog := fx.prog(t)
			for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
				want := map[analysis.Sched]string{}
				wantErr := map[analysis.Sched]error{}
				widenings := map[analysis.Sched]int{}
				first := map[analysis.Sched]config{}
				for _, cfg := range configs {
					res, err := analysis.Run(prog, analysis.Options{
						Level: lvl, MaxVisits: fx.maxVisits, Sched: cfg.sched,
						Workers: cfg.workers, NoDelta: cfg.noDelta,
					})
					if fx.maxVisits > 0 && errors.Is(err, analysis.ErrNoConvergence) {
						err = nil // bounded run: the partial state is the fixture
					}
					ref, seen := first[cfg.sched]
					if !seen {
						first[cfg.sched] = cfg
						wantErr[cfg.sched] = err
						widenings[cfg.sched] = res.Stats.Widenings
					} else if (err == nil) != (wantErr[cfg.sched] == nil) {
						t.Fatalf("%s %v: %+v error %v, %+v error %v",
							fx.name, lvl, ref, wantErr[cfg.sched], cfg, err)
					}
					if err != nil {
						t.Fatalf("%s %v %+v: %v", fx.name, lvl, cfg, err)
					}
					got := fingerprint(res)
					if !seen {
						want[cfg.sched] = got
						continue
					}
					if got != want[cfg.sched] {
						t.Fatalf("%s %v: %+v diverged from %+v:\n--- want\n%s\n--- got\n%s",
							fx.name, lvl, cfg, ref, want[cfg.sched], got)
					}
				}
				// Cross-scheduler agreement: a run that converges without
				// widening reaches the schedule-independent fixed point, so
				// WTO and RPO must land on identical digests there.
				if fx.maxVisits == 0 && widenings[analysis.SchedWTO] == 0 && widenings[analysis.SchedRPO] == 0 {
					if want[analysis.SchedWTO] != want[analysis.SchedRPO] {
						t.Fatalf("%s %v: wto and rpo fixed points diverged with no widening:\n--- wto\n%s\n--- rpo\n%s",
							fx.name, lvl, want[analysis.SchedWTO], want[analysis.SchedRPO])
					}
				}
				// Schedule independence: a second run of the last
				// configuration must reproduce the first bit for bit.
				last := configs[len(configs)-1]
				res, err := analysis.Run(prog, analysis.Options{
					Level: lvl, MaxVisits: fx.maxVisits, Sched: last.sched,
					Workers: last.workers, NoDelta: last.noDelta,
				})
				if err != nil && !(fx.maxVisits > 0 && errors.Is(err, analysis.ErrNoConvergence)) {
					t.Fatalf("%s %v repeat %+v: %v", fx.name, lvl, last, err)
				}
				if got := fingerprint(res); got != want[last.sched] {
					t.Fatalf("%s %v: repeated %+v run disagrees with itself", fx.name, lvl, last)
				}
			}
		})
	}
}

// TestParallelFanoutHappens guards the harness against vacuity: the
// bounded Barnes-Hut run must actually dispatch parallel transfer jobs
// (otherwise the determinism test would only ever compare sequential
// runs with themselves).
func TestParallelFanoutHappens(t *testing.T) {
	prog, _ := compileKernel(t, "barneshut")
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1, MaxVisits: 1500, Workers: 4})
	if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatal(err)
	}
	if res.Stats.Workers != 4 {
		t.Fatalf("resolved workers = %d, want 4", res.Stats.Workers)
	}
	if res.Stats.ParallelTransfers == 0 || res.Stats.ParallelJobs == 0 {
		t.Fatalf("no parallel fan-out happened (transfers=%d jobs=%d); determinism tests would be vacuous",
			res.Stats.ParallelTransfers, res.Stats.ParallelJobs)
	}
}

// deepLoopSrc emits a depth-deep nest of list-building loops — the
// visit count explodes with depth, making the program a reliable way
// to keep the engine busy long enough for cancellation to land
// mid-run.
func deepLoopSrc(depth int) string {
	var b strings.Builder
	b.WriteString("struct elem { int v; struct elem *nxt; struct elem *prv; };\n")
	b.WriteString("void main(void) {\n    struct elem *l;\n    struct elem *t;\n    l = NULL;\n")
	for i := 0; i < depth; i++ {
		b.WriteString(strings.Repeat("    ", i+1) + "while (c) {\n")
	}
	pad := strings.Repeat("    ", depth+1)
	b.WriteString(pad + "t = malloc(sizeof(struct elem));\n")
	b.WriteString(pad + "t->nxt = l;\n")
	b.WriteString(pad + "l = t;\n")
	for i := depth - 1; i >= 0; i-- {
		b.WriteString(strings.Repeat("    ", i+1) + "}\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// expectNoGoroutineLeak fails the test if the goroutine count does not
// return to its pre-run baseline shortly after the engine returns (the
// worker pool is per-call, so any survivor is a leak).
func expectNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before run, %d two seconds after", base, runtime.NumGoroutine())
}

// TestTimeoutCancelsWorkersPromptly runs the Barnes-Hut kernel with a
// ~1ms budget: the run must fail with ErrTimeout well before the
// program converges, and every worker goroutine must be gone right
// after the return. (The deep loop nest used to serve this purpose,
// but the flat graph representation converges it in under a
// millisecond; the kernel stays orders of magnitude above the budget.)
func TestTimeoutCancelsWorkersPromptly(t *testing.T) {
	prog, _ := compileKernel(t, "barneshut")
	base := runtime.NumGoroutine()
	begin := time.Now()
	_, err := analysis.Run(prog, analysis.Options{
		Level: rsg.L3, Timeout: time.Millisecond, Workers: 4,
	})
	elapsed := time.Since(begin)
	if !errors.Is(err, analysis.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// The surfaced error carries exactly one elapsed/visits suffix no
	// matter which coordinator path observed the deadline.
	if n := strings.Count(err.Error(), "after"); n != 1 {
		t.Fatalf("timeout error carries %d 'after' suffixes, want 1: %q", n, err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("1ms timeout honoured only after %v", elapsed)
	}
	expectNoGoroutineLeak(t, base)
}

// TestNodeBudgetCancelsWorkers aborts the same nest on a tiny node
// budget: ErrBudgetExceeded, promptly, and no goroutines left behind.
func TestNodeBudgetCancelsWorkers(t *testing.T) {
	prog := compileSrc(t, deepLoopSrc(6))
	base := runtime.NumGoroutine()
	begin := time.Now()
	_, err := analysis.Run(prog, analysis.Options{
		Level: rsg.L3, NodeBudget: 4, Workers: 4,
	})
	elapsed := time.Since(begin)
	if !errors.Is(err, analysis.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("budget of 4 nodes honoured only after %v", elapsed)
	}
	expectNoGoroutineLeak(t, base)
}

// TestVisitBudgetWithWorkers checks the third cancellation source
// under a parallel run: MaxVisits still yields ErrNoConvergence and a
// clean pool.
func TestVisitBudgetWithWorkers(t *testing.T) {
	prog := compileSrc(t, deepLoopSrc(6))
	base := runtime.NumGoroutine()
	_, err := analysis.Run(prog, analysis.Options{
		Level: rsg.L3, MaxVisits: 25, Workers: 4,
	})
	if !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
	expectNoGoroutineLeak(t, base)
}

// TestPerRunCacheStats pins the Stats.Cache contract after the per-run
// recorder fix: the digest/freeze/intern fields are exact per run even
// when two runs overlap in one process — the deltas of the global rsg
// counters partition across the runs' recorders instead of each run
// seeing both runs' traffic — while only the process-global pool/spill
// tallies carry the SharedTallies caveat.
func TestPerRunCacheStats(t *testing.T) {
	prog, _ := compileKernel(t, "barneshut")
	solo, err := analysis.Run(prog, analysis.Options{Level: rsg.L1, MaxVisits: 100, Workers: 1})
	if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
		t.Fatal(err)
	}
	if solo.Stats.SharedTallies {
		t.Fatal("solo run reports SharedTallies")
	}
	if strings.Contains(solo.Stats.CacheSummary(), "shared") {
		t.Fatal("solo CacheSummary carries the shared marker")
	}
	// A warm intern table (repeat runs in one process) can make every
	// intern a hit, so only the digest computations are unconditional.
	if solo.Stats.Cache.DigestsComputed == 0 || solo.Stats.Cache.InternHits+solo.Stats.Cache.InternMisses == 0 {
		t.Fatalf("solo recorder saw no work: %+v", solo.Stats.Cache)
	}

	progA, _ := compileKernel(t, "barneshut")
	progB, _ := compileKernel(t, "barneshut")
	base := rsg.ReadCacheStats()
	var ready, done sync.WaitGroup
	start := make(chan struct{})
	results := make([]*analysis.Result, 2)
	for i, p := range []*ir.Program{progA, progB} {
		ready.Add(1)
		done.Add(1)
		go func(i int, p *ir.Program) {
			defer done.Done()
			ready.Done()
			<-start
			res, err := analysis.Run(p, analysis.Options{Level: rsg.L1, MaxVisits: 300, Workers: 2})
			if err != nil && !errors.Is(err, analysis.ErrNoConvergence) {
				t.Errorf("concurrent run %d: %v", i, err)
			}
			results[i] = res
		}(i, p)
	}
	ready.Wait()
	close(start)
	done.Wait()
	if t.Failed() {
		return
	}
	global := rsg.ReadCacheStats().Sub(base)
	a, b := results[0].Stats.Cache, results[1].Stats.Cache

	// Exactness: every freeze and intern in the process during the window
	// went through one run's reduction funnel, so the two recorders must
	// partition the global delta — the old global-delta attribution would
	// instead report (almost) the full total for both runs.
	if a.GraphsFrozen+b.GraphsFrozen != global.GraphsFrozen {
		t.Errorf("GraphsFrozen not partitioned: %d + %d != %d", a.GraphsFrozen, b.GraphsFrozen, global.GraphsFrozen)
	}
	if a.InternMisses+b.InternMisses != global.InternMisses {
		t.Errorf("InternMisses not partitioned: %d + %d != %d", a.InternMisses, b.InternMisses, global.InternMisses)
	}
	if a.InternHits+b.InternHits != global.InternHits {
		t.Errorf("InternHits not partitioned: %d + %d != %d", a.InternHits, b.InternHits, global.InternHits)
	}
	// Digest counters are recorded where the funnel computes them; the
	// engine also reads digests of frozen graphs outside it, so the
	// recorders bound the global delta from below.
	if sum := a.DigestsComputed + b.DigestsComputed; sum > global.DigestsComputed {
		t.Errorf("DigestsComputed over-attributed: %d > %d", sum, global.DigestsComputed)
	}
	if sum := a.DigestCacheHits + b.DigestCacheHits; sum > global.DigestCacheHits {
		t.Errorf("DigestCacheHits over-attributed: %d > %d", sum, global.DigestCacheHits)
	}
	// Identical programs share the intern table, so whichever run gets
	// there second (or any run on a warm table) may legitimately freeze
	// nothing — but each run still computes digests of its own graphs.
	for i, res := range results {
		if c := res.Stats.Cache; c.DigestsComputed == 0 {
			t.Errorf("run %d recorder saw no work: %+v", i, c)
		}
	}

	if !results[0].Stats.SharedTallies && !results[1].Stats.SharedTallies {
		t.Fatal("two overlapping runs and neither reports SharedTallies")
	}
	for i, res := range results {
		if res.Stats.SharedTallies && !strings.Contains(res.Stats.CacheSummary(), "shared") {
			t.Fatalf("run %d: SharedTallies set but CacheSummary lacks the marker", i)
		}
	}
}
