package analysis_test

// Representation-equivalence property test (DESIGN.md §10): the
// per-statement canonical digests of fig1/barneshut/lu/matvec at every
// level are pinned to golden values recorded from the map-based
// pre-refactor encoding. The canonical signature format (canon.go) is
// defined over names, not over any in-memory layout, so any faithful
// re-encoding of the RSG must reproduce these bytes exactly.
//
// Regenerate with REPRO_UPDATE_GOLDEN=1 — but only ever from a tree
// whose digests are already trusted; the file is the contract.

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rsg"
)

const goldenDigestFile = "testdata/golden_digests.json"

// goldenFixtures mirrors the determinism suite: fig1 runs to its fixed
// point, the kernels run under a visit bound (partial fixed points are
// just as representation-sensitive and far cheaper).
var goldenFixtures = []struct {
	name      string
	src       func(t *testing.T) *ir.Program
	maxVisits int
}{
	{"fig1", func(t *testing.T) *ir.Program { return compileSrc(t, fig1PipelineSource) }, 0},
	{"barneshut", func(t *testing.T) *ir.Program { p, _ := compileKernel(t, "barneshut"); return p }, 300},
	{"lu", func(t *testing.T) *ir.Program { p, _ := compileKernel(t, "lu"); return p }, 300},
	{"matvec", func(t *testing.T) *ir.Program { p, _ := compileKernel(t, "matvec"); return p }, 300},
}

func TestGoldenDigestEquivalence(t *testing.T) {
	update := os.Getenv("REPRO_UPDATE_GOLDEN") != ""
	golden := map[string]string{}
	if !update {
		raw, err := os.ReadFile(goldenDigestFile)
		if err != nil {
			t.Fatalf("missing golden digests (run with REPRO_UPDATE_GOLDEN=1 to record): %v", err)
		}
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]string{}
	for _, fx := range goldenFixtures {
		prog := fx.src(t)
		for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
			key := fx.name + "/" + lvl.String()
			// Pinned to the RPO scheduler: the goldens were recorded under
			// it, and the kernels' bounded runs stop at a visit-count
			// prefix whose contents are schedule-dependent. The goldens
			// pin representation equivalence, not scheduling; the sched
			// dimension is covered by the determinism matrix instead.
			res, err := analysis.Run(prog, analysis.Options{Level: lvl, MaxVisits: fx.maxVisits, Sched: analysis.SchedRPO})
			if err != nil && !(fx.maxVisits > 0 && errors.Is(err, analysis.ErrNoConvergence)) {
				t.Fatalf("%s: %v", key, err)
			}
			got[key] = fingerprint(res)
		}
	}
	if update {
		if err := os.MkdirAll(filepath.Dir(goldenDigestFile), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDigestFile, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden fingerprints", len(got))
		return
	}
	if len(got) != len(golden) {
		t.Fatalf("fixture set drifted: %d cells computed, %d recorded", len(got), len(golden))
	}
	for key, want := range golden {
		if got[key] != want {
			t.Errorf("%s: per-statement digests diverged from the pre-refactor encoding\n--- want\n%s\n--- got\n%s",
				key, clip(want), clip(got[key]))
		}
	}
}

// clip bounds a fingerprint dump so a divergence stays readable.
func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}
