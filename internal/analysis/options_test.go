package analysis

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rsg"
)

const optListSrc = `
struct node { int val; struct node *nxt; };
void main(void) {
    struct node *head;
    struct node *p;
    head = malloc(sizeof(struct node));
    head->nxt = NULL;
    p = head;
    while (cond) {
        p->nxt = malloc(sizeof(struct node));
        p = p->nxt;
        p->nxt = NULL;
    }
}
`

func TestAblationOptionsStillSoundOnList(t *testing.T) {
	prog := compile(t, optListSrc)
	cases := []struct {
		name string
		opts Options
	}{
		{"disable-join", Options{Level: rsg.L1, DisableJoin: true}},
		{"no-cycle-prune", Options{Level: rsg.L1, DisableCyclePrune: true}},
		{"no-compress", Options{Level: rsg.L1, NoCompress: true, MaxVisits: 3000}},
		{"touch-all", Options{Level: rsg.L3, TouchAllPvars: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Run(prog, c.opts)
			if err != nil {
				if c.name == "no-compress" && errors.Is(err, ErrNoConvergence) {
					// Without COMPRESS the abstraction cannot reach a
					// fixed point on an unbounded builder — exactly why
					// the paper compresses after every sentence.
					return
				}
				t.Fatalf("%v", err)
			}
			exit := res.ExitSet()
			if exit == nil || exit.Len() == 0 {
				t.Fatal("no exit configuration")
			}
			for _, g := range exit.Graphs() {
				if g.PvarTarget("head") == nil {
					t.Errorf("head lost:\n%s", g)
				}
				for _, n := range g.Nodes() {
					if n.SharedBy("nxt") {
						t.Errorf("list node shared by nxt: %s", n)
					}
				}
			}
		})
	}
}

func TestDisableJoinGrowsSets(t *testing.T) {
	prog := compile(t, optListSrc)
	base, err := Run(prog, Options{Level: rsg.L1})
	if err != nil {
		t.Fatal(err)
	}
	nojoin, err := Run(prog, Options{Level: rsg.L1, DisableJoin: true, MaxVisits: 5000})
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		t.Fatal(err)
	}
	if nojoin.Stats.PeakGraphs <= base.Stats.PeakGraphs {
		t.Errorf("disabling the union should retain more RSGs: %d vs %d",
			nojoin.Stats.PeakGraphs, base.Stats.PeakGraphs)
	}
}

func TestTimeoutOption(t *testing.T) {
	prog := compile(t, optListSrc)
	_, err := Run(prog, Options{Level: rsg.L1, Timeout: time.Nanosecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestMaxVisitsOption(t *testing.T) {
	prog := compile(t, optListSrc)
	_, err := Run(prog, Options{Level: rsg.L1, MaxVisits: 3})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	prog := compile(t, optListSrc)
	res, err := Run(prog, Options{}) // zero options: L1, default caps
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != rsg.L1 {
		t.Errorf("default level = %s", res.Level)
	}
}

func TestResultDiagnostics(t *testing.T) {
	prog := compile(t, `
struct node { int val; struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    p->nxt = NULL;
    q = p->nxt;
    q->nxt = NULL;   /* q is NULL here: guaranteed null dereference */
}`)
	res, err := Run(prog, Options{Level: rsg.L1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diags.NullDerefs == 0 {
		t.Error("the guaranteed NULL dereference must be diagnosed")
	}
	if res.ExitSet().Len() != 0 {
		t.Error("no configuration survives the dereference")
	}
}
