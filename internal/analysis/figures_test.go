package analysis_test

// Reproduction tests for the paper's figures and the Sect. 5
// progressive-analysis narrative. The heavyweight Barnes-Hut runs are
// skipped with -short.

import (
	"os"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchprog"
	"repro/internal/checker"
	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
)

func compileKernel(t testing.TB, name string) (*ir.Program, *benchprog.Kernel) {
	t.Helper()
	k := benchprog.ByName(name)
	if k == nil {
		t.Fatalf("unknown kernel %s", name)
	}
	prog, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return prog, k
}

func compileSrc(t testing.TB, src string) *ir.Program {
	t.Helper()
	f, err := cminic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.LowerMain(f)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestFigure2PipelineCounts traces the Fig. 2 per-sentence pipeline: a
// destructive statement first divides the input RSGs (count can grow),
// then compression and the RSG union shrink the result back down.
func TestFigure2PipelineCounts(t *testing.T) {
	prog := compileSrc(t, `
struct elem { int val; struct elem *nxt; struct elem *prv; };
void main(void) {
    struct elem *first;
    struct elem *last;
    struct elem *e;
    first = malloc(sizeof(struct elem));
    first->nxt = NULL;
    first->prv = NULL;
    last = first;
    while (more) {
        e = malloc(sizeof(struct elem));
        e->nxt = NULL;
        e->prv = last;
        last->nxt = e;
        last = e;
    }
    e = NULL;
}`)
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
	if err != nil {
		t.Fatal(err)
	}
	in := res.ExitSet()
	if in.Len() == 0 {
		t.Fatal("empty input RSRSG")
	}
	out := analysis.PipelineStep(rsg.L1, in, "first", "nxt")
	if out.Len() == 0 {
		t.Fatal("pipeline produced no graphs")
	}
	// The union keeps the RSRSG practicable: the output stays within a
	// small factor of the input even though division multiplies the
	// intermediate graphs.
	if out.Len() > 4*in.Len()+4 {
		t.Errorf("union failed to reduce: %d in, %d out", in.Len(), out.Len())
	}
	// Soundness smoke check: first must still reference its node in
	// every output graph (the statement only cuts first->nxt).
	for _, g := range out.Graphs() {
		if g.PvarTarget("first") == nil {
			t.Errorf("first lost its reference:\n%s", g)
		}
		if len(g.Targets(g.PvarTarget("first").ID, "nxt")) != 0 {
			t.Errorf("first->nxt must be NULL after the statement:\n%s", g)
		}
	}
}

// TestProgressiveEscalationSparse verifies the Sect. 5 narrative for
// the sparse codes: accurate at L1, so the progressive driver stops
// after one level.
func TestProgressiveEscalationSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse kernels take ~1 min")
	}
	prog, k := compileKernel(t, "matvec")
	pres := analysis.Progressive(prog, k.Goals, analysis.Options{})
	if got := pres.AchievedLevel(); got != rsg.L1 {
		t.Errorf("matvec should be accurate at L1, achieved %s\n%s", got, pres.Summary())
	}
	if len(pres.Levels) != 1 {
		t.Errorf("driver ran %d levels, want 1", len(pres.Levels))
	}
}

// TestFigure3BarnesHutL1 checks the L1 state of the Sect. 5.1 case
// study: the structure is captured (octree, body list, stack), the
// octree nodes are shared through the stack's node selector, and the
// TOUCH-based step (iii) goal cannot be established yet.
func TestFigure3BarnesHutL1(t *testing.T) {
	if testing.Short() {
		t.Skip("Barnes-Hut L1 takes ~1 min")
	}
	prog, k := compileKernel(t, "barneshut")
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
	if err != nil {
		t.Fatal(err)
	}
	// The octree is genuinely shared through `node` (children entries
	// and stack frames both reference onodes) — Fig. 3's n2/n3/n4
	// sharing.
	sharedOnode := false
	for _, g := range res.ExitSet().Graphs() {
		for _, n := range g.Nodes() {
			if n.Type == "onode" && n.SharedBy("node") {
				sharedOnode = true
			}
		}
	}
	if !sharedOnode {
		t.Error("octree nodes should appear shared by `node` (stack + children)")
	}
	// The step (iii) goal needs TOUCH, i.e. L3.
	for _, g := range k.Goals {
		if ul, ok := g.(checker.UnsharedDuringLoop); ok {
			if met, _ := ul.Met(res); met {
				t.Error("the TOUCH goal must not be established at L1")
			}
		}
	}
	// SHSEL(body-list node, body) stays false: no two octree leaves
	// reference the same body. (The paper's own L1 is imprecise here
	// and only proves it at L2; see EXPERIMENTS.md.)
	goal := checker.NoSharedSelector{Struct: "body", Sel: "body"}
	if met, detail := goal.Met(res); !met {
		t.Errorf("SHSEL(body) expected false: %s", detail)
	}
}

// TestFigure3BarnesHutL2 checks the intermediate level of the Sect. 5.1
// narrative: the body-sharing property holds (the paper's L2 result),
// the octree nodes remain shared through the stack's node selector, and
// the step (iii) goal still fails — TOUCH is an L3 property.
func TestFigure3BarnesHutL2(t *testing.T) {
	if testing.Short() {
		t.Skip("Barnes-Hut L2 takes over a minute")
	}
	prog, k := compileKernel(t, "barneshut")
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L2})
	if err != nil {
		t.Fatal(err)
	}
	if met, detail := (checker.NoSharedSelector{Struct: "body", Sel: "body"}).Met(res); !met {
		t.Errorf("SHSEL(body) must be false at L2 (the paper's own L2 result): %s", detail)
	}
	sharedOnode := false
	for _, g := range res.ExitSet().Graphs() {
		for _, n := range g.Nodes() {
			if n.Type == "onode" && n.SharedBy("node") {
				sharedOnode = true
			}
		}
	}
	if !sharedOnode {
		t.Error("octree nodes remain shared through `node` at L2 (stack + children)")
	}
	for _, g := range k.Goals {
		if ul, ok := g.(checker.UnsharedDuringLoop); ok {
			if met, _ := ul.Met(res); met {
				t.Error("the TOUCH goal must not be established at L2")
			}
		}
	}
}

// TestFigure3BarnesHutProgressive runs the full progressive analysis;
// the paper's criterion (step (iii) parallel-traversal proof) requires
// L3.
func TestFigure3BarnesHutProgressive(t *testing.T) {
	if os.Getenv("REPRO_FULL_TEST") == "" {
		t.Skip("runs the Barnes-Hut kernel at all three levels (tens of minutes); set REPRO_FULL_TEST=1")
	}
	prog, k := compileKernel(t, "barneshut")
	pres := analysis.Progressive(prog, k.Goals, analysis.Options{})
	if got := pres.AchievedLevel(); got != rsg.L3 {
		t.Errorf("Barnes-Hut needs L3 per the paper, achieved %s\n%s", got, pres.Summary())
	}
	if len(pres.Levels) != 3 {
		t.Errorf("driver ran %d levels, want all 3", len(pres.Levels))
	}
	// L1 and L2 must have failed on the TOUCH goal specifically.
	for _, rep := range pres.Levels[:len(pres.Levels)-1] {
		if rep.GoalsMet {
			t.Errorf("%s reported all goals met; escalation story broken", rep.Level)
		}
	}
}

// TestTable1LUBudgetAbort reproduces the paper's Sparse LU behaviour:
// the analysis aborts at L2/L3 under the memory budget that models the
// 128 MB machine.
func TestTable1LUBudgetAbort(t *testing.T) {
	prog, _ := compileKernel(t, "lu")
	_, err := analysis.Run(prog, analysis.Options{Level: rsg.L2, NodeBudget: 4000})
	if err == nil {
		t.Fatal("LU at L2 under a tight budget must abort")
	}
}
