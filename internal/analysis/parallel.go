package analysis

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/absem"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// This file implements the parallel evaluation layer of the engine
// (DESIGN.md §7). The fixed-point loop itself stays sequential — the
// per-statement worklist order is load-bearing for convergence speed —
// but the two hot inner loops fan out over a worker pool:
//
//   1. per-graph abstract transfers: the graphs of a statement's
//      incoming RSRSG are independent frozen inputs, so their memo
//      misses are dispatched as parallel jobs;
//   2. per-alias-bucket reductions inside rsrsg (Reduce/MergeDelta/
//      UnionAll), reached through the rsrsg.Options.Exec hook.
//
// Determinism is by construction, not by luck: every parallel unit
// writes to a pre-assigned slot, results are joined in the same
// canonical order the sequential engine uses (input-entry order for
// transfers, sorted alias-key order for buckets), and per-worker
// diagnostics are folded back in job-index order. Workers=1 and
// Workers=N therefore produce bit-identical per-statement digests.

// parallelFanoutMin is the minimum number of memo misses at one
// statement before the engine pays the goroutine fan-out cost; below
// it the misses run inline on the coordinator.
const parallelFanoutMin = 2

// engineRun is the per-Run mutable state shared between the worklist
// coordinator and the transfer workers. The memo is only touched by
// the coordinator (probes before fan-out, inserts after join); the
// counters are atomics because rsrsg bucket tasks also run on workers.
type engineRun struct {
	opts       Options
	reduceOpts rsrsg.Options
	workers    int
	ctx        context.Context
	cancel     context.CancelCauseFunc
	memo       transferMemo

	memoHits          atomic.Int64
	memoMisses        atomic.Int64
	parallelTransfers atomic.Int64
	parallelJobs      atomic.Int64
}

// newEngineRun resolves the worker count, arms the cancellation
// context (deadline when Options.Timeout is set) and builds the
// reduction options, wiring the executor hook in when parallel.
func newEngineRun(opts Options, start time.Time) *engineRun {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &engineRun{
		opts:    opts,
		workers: workers,
		memo:    make(transferMemo),
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	e.ctx, e.cancel = ctx, cancel
	if opts.Timeout > 0 {
		// The deadline reaches into in-flight workers: a long transfer
		// fan-out stops at the next job boundary instead of running to
		// completion after the budget is gone. Run cancels the cause-
		// carrying parent on every return, so workers never outlive it.
		dctx, dcancel := context.WithDeadlineCause(ctx, start.Add(opts.Timeout), ErrTimeout)
		e.ctx = dctx
		parent := cancel
		e.cancel = func(cause error) {
			dcancel()
			parent(cause)
		}
	}
	e.reduceOpts = rsrsg.Options{
		DisableJoin: opts.DisableJoin,
		MaxGraphs:   opts.MaxGraphsPerStmt,
	}
	if workers > 1 {
		e.reduceOpts.Exec = e.exec
	}
	return e
}

// cancelErr maps the context's cancellation cause onto the engine's
// sentinel errors (the deadline carries ErrTimeout as its cause).
func (e *engineRun) cancelErr() error {
	if cause := context.Cause(e.ctx); cause != nil {
		return cause
	}
	return e.ctx.Err()
}

// exec is the rsrsg.Options.Exec hook: it runs the bucket tasks of one
// reduction over the worker pool. Tasks always run to completion —
// a reduction must not observe partially-written buckets — so
// cancellation is handled at the coordinator's granularity, not here.
func (e *engineRun) exec(tasks []func()) {
	e.runParallel(len(tasks), func(i int) { tasks[i]() })
}

// runParallel executes f(0..n-1) on up to e.workers goroutines and
// returns once every call has completed. Goroutines are spawned per
// call and pull indices from a shared atomic counter: no persistent
// pool means nested fan-outs cannot deadlock and a finished call
// provably leaks nothing.
func (e *engineRun) runParallel(n int, f func(int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// transfer computes out = F(in) for one statement. Memoizable ops
// probe the per-statement digest cache on the coordinator; the misses
// are dispatched over the worker pool when there are enough of them.
// Each job steps one frozen graph through the abstract semantics into
// its pre-assigned slot with a private diagnostics block and no nested
// executor; the coordinator then folds diagnostics and memo inserts
// back in input-entry order and joins the parts exactly as the
// sequential engine would, so the result digest is worker-count
// independent.
func (e *engineRun) transfer(ctx *absem.Context, s *ir.Stmt, in *rsrsg.Set) (*rsrsg.Set, error) {
	switch s.Op {
	case ir.OpAssumeNull:
		return absem.AssumeNull(ctx, in, s.X), nil
	case ir.OpAssumeNonNull:
		return absem.AssumeNonNull(ctx, in, s.X), nil
	case ir.OpNil, ir.OpMalloc, ir.OpCopy, ir.OpSelNil, ir.OpSelCopy, ir.OpLoad:
		cache := e.memo[s.ID]
		if cache == nil {
			cache = make(map[rsg.Digest]*rsrsg.Set)
			e.memo[s.ID] = cache
		}
		type job struct {
			g    *rsg.Graph
			dig  rsg.Digest
			slot int
		}
		var parts []*rsrsg.Set
		var jobs []job
		in.ForEachEntry(func(g *rsg.Graph, dig rsg.Digest) {
			if part, ok := cache[dig]; ok {
				e.memoHits.Add(1)
				parts = append(parts, part)
				return
			}
			e.memoMisses.Add(1)
			jobs = append(jobs, job{g: g, dig: dig, slot: len(parts)})
			parts = append(parts, nil)
		})
		if e.workers > 1 && len(jobs) >= parallelFanoutMin {
			e.parallelTransfers.Add(1)
			e.parallelJobs.Add(int64(len(jobs)))
			diags := make([]absem.Diagnostics, len(jobs))
			e.runParallel(len(jobs), func(i int) {
				if e.ctx.Err() != nil {
					return
				}
				// Each worker gets a private shallow copy of the
				// context: its own diagnostics block (folded back in
				// index order below) and no executor, so workers never
				// nest parallelism. Everything else in the context is
				// read-only during a transfer.
				jctx := *ctx
				jctx.Diags = &diags[i]
				jctx.Opts.Exec = nil
				parts[jobs[i].slot] = stepGraphSet(&jctx, s, jobs[i].g)
			})
			if e.ctx.Err() != nil {
				return nil, e.cancelErr()
			}
			if ctx.Diags != nil {
				for i := range diags {
					ctx.Diags.Add(diags[i])
				}
			}
		} else {
			for _, j := range jobs {
				parts[j.slot] = stepGraphSet(ctx, s, j.g)
			}
		}
		for _, j := range jobs {
			if len(cache) < memoCap {
				cache[j.dig] = parts[j.slot]
			}
		}
		return rsrsg.UnionAll(e.opts.Level, parts, e.reduceOpts), nil
	default: // OpNoop, OpEntry, OpExit
		return in.Clone(), nil
	}
}

// stepGraphSet steps one graph through a statement's abstract
// semantics and collects the outputs into a fresh set.
func stepGraphSet(ctx *absem.Context, s *ir.Stmt, g *rsg.Graph) *rsrsg.Set {
	part := rsrsg.New()
	for _, og := range stepGraph(ctx, s, g) {
		part.Add(og)
	}
	return part
}
