package analysis

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/absem"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/rsrsg"
	"repro/internal/store"
)

// This file implements the parallel evaluation layer of the engine
// (DESIGN.md §7). The fixed-point loop itself stays sequential — the
// per-statement worklist order is load-bearing for convergence speed —
// but the two hot inner loops fan out over a worker pool:
//
//   1. per-graph abstract transfers: the graphs of a statement's
//      incoming RSRSG are independent frozen inputs, so their memo
//      misses are dispatched as parallel jobs;
//   2. per-alias-bucket reductions inside rsrsg (Reduce/MergeDelta/
//      UnionAll), reached through the rsrsg.Options.Exec hook.
//
// Determinism is by construction, not by luck: every parallel unit
// writes to a pre-assigned slot, results are joined in the same
// canonical order the sequential engine uses (input-entry order for
// transfers, sorted alias-key order for buckets), and per-worker
// diagnostics are folded back in job-index order. Workers=1 and
// Workers=N therefore produce bit-identical per-statement digests.

// parallelFanoutMin is the minimum number of memo misses at one
// statement before the engine pays the goroutine fan-out cost; below
// it the misses run inline on the coordinator.
const parallelFanoutMin = 2

// engineRun is the per-Run mutable state shared between the worklist
// coordinator and the transfer workers. The memo is only touched by
// the coordinator (probes before fan-out, inserts after join); the
// counters are atomics because rsrsg bucket tasks also run on workers.
type engineRun struct {
	opts       Options
	reduceOpts rsrsg.Options
	workers    int
	ctx        context.Context
	cancel     context.CancelCauseFunc
	memo       transferMemo
	// rec is the run's private digest/freeze/intern recorder, threaded
	// through reduceOpts.Stats into every reduction and restore of this
	// run; Run snapshots it into Stats.Cache, which is what keeps cache
	// stats exact when several Runs overlap in one process.
	rec *rsg.RunStats

	memoHits          atomic.Int64
	memoMisses        atomic.Int64
	parallelTransfers atomic.Int64
	parallelJobs      atomic.Int64
	storeMemoHits     atomic.Int64

	// Persistent memo tier (persist.go), armed by planPersist when
	// Options.Store is set: stmtKeys holds each statement's transfer key
	// (options fingerprint + context-free transfer digest). Probes and
	// write-throughs run on the coordinator only, like the in-memory
	// memo.
	store    *store.Store
	stmtKeys []store.Key

	// Semi-naïve transfer state (DESIGN.md §8), coordinator-only: the
	// worklist loop is sequential, so plain fields suffice. noDelta
	// lists statements permanently retired to the full path (widening,
	// TOUCH-erasure edges, missing delta state); delta holds each
	// eligible statement's cached transfer state.
	noDelta   map[int]struct{}
	delta     map[int]*stmtDelta
	eraseMemo absem.EraseMemo
	// joinCache (reduceOpts.Joins) is shared across every in-state
	// merge and accumulator re-reduction of a delta run: the same
	// canonical graph pairs recur at successive program points as
	// out-states propagate through the CFG, so pairwise compat/join
	// work done for one statement is reused by its successors. Nil on
	// NoDelta runs, which measure the stateless full path.
	joinCache *rsrsg.JoinCache

	deltaTransfers int
	fullRecomputes int
	dirtyBuckets   int
	memoFull       int
}

// stmtDelta is one statement's cached semi-naïve transfer state.
type stmtDelta struct {
	// acc accumulates a memoizable op's out-state incrementally; parts
	// maps each live in-graph digest to its transfer part so members
	// joined away by the in-state reduction can be retracted from the
	// accumulator by refcount.
	acc   *rsrsg.Accum
	parts map[rsg.Digest]*rsrsg.Set
	// filtered is an Assume op's cached filter result, updated in place
	// from the in-state membership delta.
	filtered *rsrsg.Set
}

// useDelta reports whether the statement is still on the delta path.
func (e *engineRun) useDelta(id int) bool {
	if e.opts.NoDelta {
		return false
	}
	_, off := e.noDelta[id]
	return !off
}

// markNoDelta permanently retires a statement from the delta path and
// drops its cached state. The switch is one-way: a statement whose
// in-state deltas were not consumed even once has stale caches, so it
// must never rejoin.
func (e *engineRun) markNoDelta(id int) {
	e.noDelta[id] = struct{}{}
	delete(e.delta, id)
}

func (e *engineRun) deltaState(id int) *stmtDelta {
	ds := e.delta[id]
	if ds == nil {
		ds = &stmtDelta{}
		e.delta[id] = ds
	}
	return ds
}

// newEngineRun resolves the worker count, arms the cancellation
// context (deadline when Options.Timeout is set) and builds the
// reduction options, wiring the executor hook in when parallel.
func newEngineRun(opts Options, start time.Time) *engineRun {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &engineRun{
		opts:    opts,
		workers: workers,
		memo:    make(transferMemo),
		rec:     &rsg.RunStats{},
		noDelta: make(map[int]struct{}),
		delta:   make(map[int]*stmtDelta),
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	e.ctx, e.cancel = ctx, cancel
	if opts.Timeout > 0 {
		// The deadline reaches into in-flight workers: a long transfer
		// fan-out stops at the next job boundary instead of running to
		// completion after the budget is gone. Run cancels the cause-
		// carrying parent on every return, so workers never outlive it.
		dctx, dcancel := context.WithDeadlineCause(ctx, start.Add(opts.Timeout), ErrTimeout)
		e.ctx = dctx
		parent := cancel
		e.cancel = func(cause error) {
			dcancel()
			parent(cause)
		}
	}
	e.reduceOpts = rsrsg.Options{
		DisableJoin: opts.DisableJoin,
		MaxGraphs:   opts.MaxGraphsPerStmt,
		Stats:       e.rec,
	}
	if workers > 1 {
		e.reduceOpts.Exec = e.exec
	}
	if !opts.NoDelta {
		// The join cache belongs to the semi-naïve subsystem: delta runs
		// reuse pairwise compat/join work across visits and statements,
		// while -nodelta measures the stateless PR 2 path, which
		// recomputes every reduction from scratch. Results are identical
		// either way — the cached primitives are pure functions.
		e.joinCache = rsrsg.NewJoinCache()
		e.reduceOpts.Joins = e.joinCache
	}
	return e
}

// cancelErr maps the context's cancellation cause onto the engine's
// sentinel errors (the deadline carries ErrTimeout as its cause).
func (e *engineRun) cancelErr() error {
	if cause := context.Cause(e.ctx); cause != nil {
		return cause
	}
	return e.ctx.Err()
}

// exec is the rsrsg.Options.Exec hook: it runs the bucket tasks of one
// reduction over the worker pool. Tasks always run to completion —
// a reduction must not observe partially-written buckets — so
// cancellation is handled at the coordinator's granularity, not here.
func (e *engineRun) exec(tasks []func()) {
	e.runParallel(len(tasks), func(i int) { tasks[i]() })
}

// runParallel executes f(0..n-1) on up to e.workers goroutines and
// returns once every call has completed. Goroutines are spawned per
// call and pull indices from a shared atomic counter: no persistent
// pool means nested fan-outs cannot deadlock and a finished call
// provably leaks nothing.
func (e *engineRun) runParallel(n int, f func(int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// transferAny computes out = F(in) for one statement, through the
// semi-naïve delta path when the statement is eligible and through the
// full recomputation otherwise. A delta attempt that finds its cached
// state unusable retires the statement and recomputes in full; either
// way the result digest is identical (DESIGN.md §8).
func (e *engineRun) transferAny(ctx *absem.Context, s *ir.Stmt, in *rsrsg.Set, d rsrsg.Delta) (*rsrsg.Set, error) {
	if e.useDelta(s.ID) {
		out, ok, err := e.transferDelta(ctx, s, in, d)
		if err != nil {
			return nil, err
		}
		if ok {
			return out, nil
		}
		e.markNoDelta(s.ID)
	}
	return e.transfer(ctx, s, in)
}

// transfer computes out = F(in) for one statement from the full
// in-state: every member graph's part is recalled or recomputed, then
// joined. This is the fallback path of the semi-naïve engine and the
// only path under Options.NoDelta.
func (e *engineRun) transfer(ctx *absem.Context, s *ir.Stmt, in *rsrsg.Set) (*rsrsg.Set, error) {
	switch s.Op {
	case ir.OpAssumeNull:
		e.fullRecomputes++
		return absem.AssumeNullSym(ctx, in, s.XSym), nil
	case ir.OpAssumeNonNull:
		e.fullRecomputes++
		return absem.AssumeNonNullSym(ctx, in, s.XSym), nil
	case ir.OpNil, ir.OpMalloc, ir.OpCopy, ir.OpSelNil, ir.OpSelCopy, ir.OpLoad, ir.OpFree:
		e.fullRecomputes++
		parts, err := e.partsFor(ctx, s, in.Graphs())
		if err != nil {
			return nil, err
		}
		return rsrsg.UnionAll(e.opts.Level, parts, e.reduceOpts), nil
	default: // OpNoop, OpEntry, OpExit
		return in.Clone(), nil
	}
}

// transferDelta computes out = F(in) semi-naïvely: only the in-state
// delta's Added graphs are stepped, their parts folded into the
// statement's accumulator, Removed members' parts retracted, and only
// the dirtied alias buckets re-reduced. Per-bucket reduction is a pure
// function of the bucket's entry set, so the result is bit-identical
// to the full path's UnionAll over every member's part. Returns
// ok=false (without touching the cached state) when a removed member's
// part was never recorded — the caller then retires the statement and
// recomputes in full.
func (e *engineRun) transferDelta(ctx *absem.Context, s *ir.Stmt, in *rsrsg.Set, d rsrsg.Delta) (*rsrsg.Set, bool, error) {
	switch s.Op {
	case ir.OpAssumeNull, ir.OpAssumeNonNull:
		ds := e.deltaState(s.ID)
		if ds.filtered == nil {
			// First visit: seed the cache with the full filter. The
			// engine only consults the delta path from a statement's
			// first visit onward, so later visits fold pure membership
			// deltas into this seed.
			if s.Op == ir.OpAssumeNull {
				ds.filtered = absem.AssumeNullSym(ctx, in, s.XSym)
			} else {
				ds.filtered = absem.AssumeNonNullSym(ctx, in, s.XSym)
			}
		} else if s.Op == ir.OpAssumeNull {
			absem.AssumeNullDeltaSym(ctx, ds.filtered, d.Added, d.Removed, s.XSym)
		} else {
			absem.AssumeNonNullDeltaSym(ctx, ds.filtered, d.Added, d.Removed, s.XSym)
		}
		e.deltaTransfers++
		return ds.filtered.Clone(), true, nil
	case ir.OpNil, ir.OpMalloc, ir.OpCopy, ir.OpSelNil, ir.OpSelCopy, ir.OpLoad, ir.OpFree:
		ds := e.deltaState(s.ID)
		if ds.acc == nil {
			ds.acc = rsrsg.NewAccum(e.opts.Level)
			ds.parts = make(map[rsg.Digest]*rsrsg.Set)
		}
		removeParts := make([]*rsrsg.Set, 0, len(d.Removed))
		for _, dig := range d.Removed {
			p, ok := ds.parts[dig]
			if !ok {
				return nil, false, nil
			}
			removeParts = append(removeParts, p)
		}
		for _, dig := range d.Removed {
			delete(ds.parts, dig)
		}
		addParts, err := e.partsFor(ctx, s, d.Added)
		if err != nil {
			return nil, false, err
		}
		for i, g := range d.Added {
			ds.parts[g.Digest()] = addParts[i]
		}
		out, dirty := ds.acc.MergeDeltaDirty(addParts, removeParts, e.reduceOpts)
		e.deltaTransfers++
		e.dirtyBuckets += dirty
		return out, true, nil
	default: // OpNoop, OpEntry, OpExit
		return in.Clone(), true, nil
	}
}

// partsFor recalls or computes the per-graph transfer parts for the
// given (frozen) input graphs of a memoizable statement. Memo probes
// run on the coordinator; the misses are dispatched over the worker
// pool when there are enough of them. Each job steps one graph through
// the abstract semantics into its pre-assigned slot with a private
// diagnostics block and no nested executor; the coordinator then folds
// diagnostics and memo inserts back in input order, so the parts (and
// everything joined from them) are worker-count independent. Shared by
// the full transfer (all in-graphs) and the delta transfer (Δin only).
func (e *engineRun) partsFor(ctx *absem.Context, s *ir.Stmt, graphs []*rsg.Graph) ([]*rsrsg.Set, error) {
	cache := e.memo[s.ID]
	if cache == nil {
		cache = newStmtMemo()
		e.memo[s.ID] = cache
	}
	type job struct {
		g    *rsg.Graph
		dig  rsg.Digest
		slot int
	}
	parts := make([]*rsrsg.Set, 0, len(graphs))
	var jobs []job
	for _, g := range graphs {
		dig := g.Digest()
		if part, ok := cache.get(dig); ok {
			e.memoHits.Add(1)
			parts = append(parts, part)
			continue
		}
		e.memoMisses.Add(1)
		// Second tier: the persistent store. A hit rebuilds the part
		// from content-addressed graphs (digest-verified on decode) and
		// fills the in-memory cache so repeats stay off the disk.
		if e.store != nil {
			if part, ok := e.storeMemoGet(s.ID, dig); ok {
				e.storeMemoHits.Add(1)
				cache.put(dig, part)
				parts = append(parts, part)
				continue
			}
		}
		jobs = append(jobs, job{g: g, dig: dig, slot: len(parts)})
		parts = append(parts, nil)
	}
	if e.workers > 1 && len(jobs) >= parallelFanoutMin {
		e.parallelTransfers.Add(1)
		e.parallelJobs.Add(int64(len(jobs)))
		diags := make([]absem.Diagnostics, len(jobs))
		e.runParallel(len(jobs), func(i int) {
			if e.ctx.Err() != nil {
				return
			}
			// Each worker gets a private shallow copy of the
			// context: its own diagnostics block (folded back in
			// index order below) and no executor, so workers never
			// nest parallelism. Everything else in the context is
			// read-only during a transfer.
			jctx := *ctx
			jctx.Diags = &diags[i]
			jctx.Opts.Exec = nil
			parts[jobs[i].slot] = stepGraphSet(&jctx, s, jobs[i].g)
		})
		if e.ctx.Err() != nil {
			return nil, e.cancelErr()
		}
		if ctx.Diags != nil {
			for i := range diags {
				ctx.Diags.Add(diags[i])
			}
		}
	} else {
		for _, j := range jobs {
			parts[j.slot] = stepGraphSet(ctx, s, j.g)
		}
	}
	for _, j := range jobs {
		if cache.put(j.dig, parts[j.slot]) {
			e.memoFull++
		}
		if e.store != nil {
			e.storeMemoPut(s.ID, j.dig, parts[j.slot])
		}
	}
	return parts, nil
}

// stmtMemo is one statement's transfer memo: input-graph digest →
// transfer part. Past memoCap entries it evicts with a clock
// (second-chance) sweep: probes mark their slot used; an insert at
// capacity advances the hand, clearing used marks, and replaces the
// first cold slot — within two laps one is guaranteed. Memo values are
// pure functions of the digest, so eviction can only cost
// recomputation, never change results.
type stmtMemo struct {
	m    map[rsg.Digest]*memoSlot
	ring []rsg.Digest
	hand int
}

type memoSlot struct {
	part *rsrsg.Set
	used bool
}

func newStmtMemo() *stmtMemo {
	return &stmtMemo{m: make(map[rsg.Digest]*memoSlot)}
}

func (c *stmtMemo) get(dig rsg.Digest) (*rsrsg.Set, bool) {
	slot, ok := c.m[dig]
	if !ok {
		return nil, false
	}
	slot.used = true
	return slot.part, true
}

// put inserts dig → part and reports whether a resident entry was
// evicted to make room.
func (c *stmtMemo) put(dig rsg.Digest, part *rsrsg.Set) bool {
	if _, ok := c.m[dig]; ok {
		return false
	}
	if len(c.ring) < memoCap {
		c.ring = append(c.ring, dig)
		c.m[dig] = &memoSlot{part: part}
		return false
	}
	for {
		victim := c.m[c.ring[c.hand]]
		if victim.used {
			victim.used = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.m, c.ring[c.hand])
		c.ring[c.hand] = dig
		c.hand = (c.hand + 1) % len(c.ring)
		c.m[dig] = &memoSlot{part: part}
		return true
	}
}

// stepGraphSet steps one graph through a statement's abstract
// semantics and collects the outputs into a fresh set.
func stepGraphSet(ctx *absem.Context, s *ir.Stmt, g *rsg.Graph) *rsrsg.Set {
	part := rsrsg.New()
	for _, og := range stepGraph(ctx, s, g) {
		part.AddStats(og, ctx.Opts.Stats)
	}
	return part
}
