package analysis

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"
)

// timeoutMsgRE is the complete surface format of a run's timeout error:
// the sentinel text plus exactly one elapsed/visits suffix.
var timeoutMsgRE = regexp.MustCompile(
	`^analysis: wall-clock timeout exceeded after [0-9][0-9.]*(ns|µs|us|ms|s|m) \([0-9]+ visits\)$`)

// TestWrapTimeoutMessage pins the formatted timeout message: the two
// coordinator wrap sites (the pre-visit deadline check and the
// transfer-error surfacing) both route through wrapTimeout, and the
// resulting error must carry the sentinel plus exactly one
// "after <dur> (<n> visits)" suffix.
func TestWrapTimeoutMessage(t *testing.T) {
	start := time.Now().Add(-42 * time.Millisecond)

	// The pre-visit check wraps the bare sentinel.
	err := wrapTimeout(ErrTimeout, start, 17)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("wrapped error lost the sentinel: %v", err)
	}
	msg := err.Error()
	if !timeoutMsgRE.MatchString(msg) {
		t.Fatalf("timeout message %q does not match %v", msg, timeoutMsgRE)
	}
	if n := strings.Count(msg, "after"); n != 1 {
		t.Fatalf("timeout message carries %d 'after' suffixes, want 1: %q", n, msg)
	}
	if !strings.Contains(msg, "(17 visits)") {
		t.Fatalf("timeout message lost the visit count: %q", msg)
	}

	// The transfer-error site may receive an error that was already
	// decorated upstream; re-wrapping must be the identity, never a
	// second suffix.
	again := wrapTimeout(err, start, 99)
	if again != err {
		t.Fatalf("re-wrapping decorated a decorated timeout: %v", again)
	}
	if n := strings.Count(again.Error(), "after"); n != 1 {
		t.Fatalf("double wrap stacked suffixes: %q", again.Error())
	}

	// Non-timeout errors pass through untouched.
	other := errors.New("analysis: something else")
	if got := wrapTimeout(other, start, 3); got != other {
		t.Fatalf("wrapTimeout altered a non-timeout error: %v", got)
	}
	if got := wrapTimeout(nil, start, 3); got != nil {
		t.Fatalf("wrapTimeout invented an error from nil: %v", got)
	}

	// A timeout that picked up foreign wrapping layers (fmt-wrapped by
	// an intermediate) still gains exactly one suffix.
	foreign := fmt.Errorf("transfer: %w", ErrTimeout)
	wrapped := wrapTimeout(foreign, start, 5)
	if n := strings.Count(wrapped.Error(), "after"); n != 1 {
		t.Fatalf("foreign-wrapped timeout got %d suffixes: %q", n, wrapped.Error())
	}
	if !errors.Is(wrapped, ErrTimeout) {
		t.Fatalf("foreign-wrapped timeout lost the sentinel: %v", wrapped)
	}
}
