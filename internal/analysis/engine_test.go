package analysis

import (
	"testing"

	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
)

// compile parses and lowers a mini-C source.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := cminic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.LowerMain(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

const listBuildSrc = `
struct node { int val; struct node *nxt; };

void main(void) {
    struct node *head;
    struct node *p;
    struct node *q;
    head = malloc(sizeof(struct node));
    head->nxt = NULL;
    p = head;
    while (cond) {
        q = malloc(sizeof(struct node));
        q->nxt = NULL;
        p->nxt = q;
        p = q;
    }
}
`

func TestListBuildL1(t *testing.T) {
	prog := compile(t, listBuildSrc)
	res, err := Run(prog, Options{Level: rsg.L1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	exit := res.ExitSet()
	if exit == nil || exit.Len() == 0 {
		t.Fatal("no configuration reaches the exit")
	}
	for _, g := range exit.Graphs() {
		if g.PvarTarget("head") == nil {
			t.Errorf("head must be non-NULL at exit:\n%s", g)
		}
		for _, n := range g.Nodes() {
			if n.Shared {
				t.Errorf("list node wrongly shared: %s\n%s", n, g)
			}
			if n.SharedBy("nxt") {
				t.Errorf("list node wrongly shared by nxt: %s\n%s", n, g)
			}
		}
	}
}

const listTraverseSrc = `
struct node { int val; struct node *nxt; };

void main(void) {
    struct node *head;
    struct node *p;
    struct node *q;
    head = malloc(sizeof(struct node));
    head->nxt = NULL;
    p = head;
    while (cond) {
        q = malloc(sizeof(struct node));
        q->nxt = NULL;
        p->nxt = q;
        p = q;
    }
    p = head;
    while (p != NULL) {
        p = p->nxt;
    }
}
`

func TestListTraverseTerminates(t *testing.T) {
	prog := compile(t, listTraverseSrc)
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		res, err := Run(prog, Options{Level: lvl})
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		exit := res.ExitSet()
		if exit == nil || exit.Len() == 0 {
			t.Fatalf("%s: no configuration reaches the exit", lvl)
		}
		for _, g := range exit.Graphs() {
			// After `while (p != NULL)`, p must be NULL at exit.
			if g.PvarTarget("p") != nil {
				t.Errorf("%s: p must be NULL at exit:\n%s", lvl, g)
			}
			for _, n := range g.Nodes() {
				if n.Shared || n.SharedBy("nxt") {
					t.Errorf("%s: traversal must not introduce sharing: %s", lvl, n)
				}
			}
		}
	}
}

func TestInductionPvarsDetected(t *testing.T) {
	prog := compile(t, listTraverseSrc)
	// Loops: the build loop (p advances via p = q after q->... hmm, p
	// advances via copies from fresh mallocs, not loads: NOT induction)
	// and the traversal loop (p = p->nxt: induction).
	if len(prog.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(prog.Loops))
	}
	run(t, prog) // annotate via Run
	traversal := prog.Loops[1]
	if _, ok := traversal.Induction["p"]; !ok {
		t.Errorf("p must be an induction pvar of the traversal loop, got %v", traversal.Induction)
	}
	build := prog.Loops[0]
	if _, ok := build.Induction["p"]; ok {
		t.Errorf("p in the build loop is advanced by malloc+copy, not a load; got %v", build.Induction)
	}
}

func run(t *testing.T, prog *ir.Program) *Result {
	t.Helper()
	res, err := Run(prog, Options{Level: rsg.L3})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

const dlistBuildSrc = `
struct elem { int val; struct elem *nxt; struct elem *prv; };

void main(void) {
    struct elem *first;
    struct elem *last;
    struct elem *e;
    first = malloc(sizeof(struct elem));
    first->nxt = NULL;
    first->prv = NULL;
    last = first;
    while (cond) {
        e = malloc(sizeof(struct elem));
        e->nxt = NULL;
        e->prv = last;
        last->nxt = e;
        last = e;
    }
}
`

func TestDoublyListBuild(t *testing.T) {
	prog := compile(t, dlistBuildSrc)
	res, err := Run(prog, Options{Level: rsg.L1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	exit := res.ExitSet()
	if exit.Len() == 0 {
		t.Fatal("no configuration reaches the exit")
	}
	for _, g := range exit.Graphs() {
		for _, n := range g.Nodes() {
			// A doubly-linked list shares no location through a single
			// selector (each element has exactly one nxt-in and one
			// prv-in reference).
			if n.SharedBy("nxt") {
				t.Errorf("wrongly shared by nxt: %s\n%s", n, g)
			}
			if n.SharedBy("prv") {
				t.Errorf("wrongly shared by prv: %s\n%s", n, g)
			}
		}
	}
}

func TestBudgetAborts(t *testing.T) {
	prog := compile(t, dlistBuildSrc)
	_, err := Run(prog, Options{Level: rsg.L1, NodeBudget: 1})
	if err == nil {
		t.Fatal("expected budget-exceeded error")
	}
}
