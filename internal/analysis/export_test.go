package analysis

import "repro/internal/ir"

// SetMemoCapForTest shrinks the per-statement transfer-memo capacity so
// tests can force clock eviction, returning a restore func.
func SetMemoCapForTest(n int) func() {
	old := memoCap
	memoCap = n
	return func() { memoCap = old }
}

// ReversePostOrderForTest exposes the engine's RPO for the scheduling
// property tests (external test package), which cross-check it against
// the WTO loop forest.
func ReversePostOrderForTest(p *ir.Program) []int { return reversePostOrder(p) }
