package analysis

// SetMemoCapForTest shrinks the per-statement transfer-memo capacity so
// tests can force clock eviction, returning a restore func.
func SetMemoCapForTest(n int) func() {
	old := memoCap
	memoCap = n
	return func() { memoCap = old }
}
