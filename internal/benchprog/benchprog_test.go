package benchprog

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/rsg"
)

func TestAllKernelsCompile(t *testing.T) {
	for _, k := range All() {
		prog, err := k.Compile()
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if prog.Exit <= prog.Entry {
			t.Errorf("%s: degenerate CFG", k.Name)
		}
	}
}

func TestTeachingKernelsAccurateAtL1(t *testing.T) {
	for _, k := range []*Kernel{SinglyList(), DoublyList(), BinaryTree()} {
		prog, err := k.Compile()
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		for _, g := range k.Goals {
			// The interface{ loopGoal() } assertion used here before
			// could never match (no goal has that method); LevelGated
			// is the real mechanism for skipping L3-only goals.
			if lg, isGated := g.(analysis.LevelGated); isGated && rsg.L1 < lg.MinLevel() {
				continue
			}
			ok, detail := g.Met(res)
			if !ok {
				t.Errorf("%s: goal %s failed at L1: %s", k.Name, g.Name(), detail)
			}
		}
	}
}
