package benchprog

import (
	"repro/internal/analysis"
	"repro/internal/checker"
)

// MatVec is the paper's "S.Mat-Vec" benchmark: sparse matrix by vector
// multiplication. The matrix is a linked list of rows, each row a
// linked list of element cells; the vectors are linked lists. The
// paper reports this code is accurately analyzed at level L1.
func MatVec() *Kernel {
	return &Kernel{
		Name:       "matvec",
		Title:      "S.Mat-Vec (sparse matrix by vector)",
		PaperLevel: 1,
		Goals: []analysis.Goal{
			checker.NonEmptyExit{},
			// Rows and cells form trees of lists: nothing is shared.
			checker.NoShared{Struct: "row"},
			checker.NoShared{Struct: "cell"},
			checker.NoShared{Struct: "vnode"},
			checker.NoSharedSelector{Struct: "cell", Sel: "nxt"},
			checker.NoSharedSelector{Struct: "vnode", Sel: "nxt"},
		},
		Source: `
/* Sparse matrix: list of rows; each row a list of cells (col, val). */
struct row  { int idx; struct row *nxtrow; struct cell *cells; };
struct cell { int col; int val; struct cell *nxt; };
/* Sparse vector: list of (idx, val) nodes. */
struct vnode { int idx; int val; struct vnode *nxt; };

void main(void) {
    struct row *A;
    struct row *r;
    struct row *rp;
    struct cell *c;
    struct cell *cp;
    struct vnode *x;
    struct vnode *v;
    struct vnode *vp;
    struct vnode *y;
    struct vnode *yv;
    struct vnode *yp;
    int acc;

    /* --- build the sparse matrix A --- */
    A = NULL;
    rp = NULL;
    while (morerows) {
        r = malloc(sizeof(struct row));
        r->nxtrow = NULL;
        r->cells = NULL;
        if (A == NULL) {
            A = r;
        } else {
            rp->nxtrow = r;
        }
        rp = r;
        cp = NULL;
        while (morecells) {
            c = malloc(sizeof(struct cell));
            c->nxt = NULL;
            if (cp == NULL) {
                r->cells = c;
            } else {
                cp->nxt = c;
            }
            cp = c;
        }
    }
    r = NULL;
    rp = NULL;
    c = NULL;
    cp = NULL;

    /* --- build the sparse vector x --- */
    x = NULL;
    vp = NULL;
    while (moreentries) {
        v = malloc(sizeof(struct vnode));
        v->nxt = NULL;
        if (x == NULL) {
            x = v;
        } else {
            vp->nxt = v;
        }
        vp = v;
    }
    v = NULL;
    vp = NULL;

    /* --- y = A * x --- */
    y = NULL;
    yp = NULL;
    r = A;
    while (r != NULL) {
        acc = 0;
        c = r->cells;
        while (c != NULL) {
            /* find the matching x entry */
            v = x;
            while (v != NULL) {
                if (match) {
                    acc = acc + 1; /* acc += c->val * v->val */
                }
                v = v->nxt;
            }
            c = c->nxt;
        }
        if (nonzero) {
            yv = malloc(sizeof(struct vnode));
            yv->nxt = NULL;
            if (y == NULL) {
                y = yv;
            } else {
                yp->nxt = yv;
            }
            yp = yv;
        }
        r = r->nxtrow;
    }
}
`,
	}
}

// MatMat is the paper's "S.Mat-Mat" benchmark: sparse matrix by matrix
// multiplication C = A * B. Each result row is accumulated by searching
// the row for the target column and appending a fresh cell when absent
// — one more traversal level than Mat-Vec (matching the paper's cost
// ratio between the two codes; the middle-of-list insertion pattern
// that makes abstractions explode lives in the LU kernel, where the
// paper reports exactly that explosion). Accurate at L1.
func MatMat() *Kernel {
	return &Kernel{
		Name:       "matmat",
		Title:      "S.Mat-Mat (sparse matrix by matrix)",
		PaperLevel: 1,
		Goals: []analysis.Goal{
			checker.NonEmptyExit{},
			checker.NoShared{Struct: "row"},
			checker.NoShared{Struct: "cell"},
			checker.NoSharedSelector{Struct: "row", Sel: "nxtrow"},
			checker.NoSharedSelector{Struct: "cell", Sel: "nxt"},
		},
		Source: `
struct row  { int idx; struct row *nxtrow; struct cell *cells; };
struct cell { int col; int val; struct cell *nxt; };

void main(void) {
    struct row *A;
    struct row *B;
    struct row *C;
    struct row *r;
    struct row *rp;
    struct row *ra;
    struct row *rb;
    struct row *rc;
    struct cell *c;
    struct cell *cp;
    struct cell *ca;
    struct cell *cb;
    struct cell *cc;
    struct cell *ct;
    struct cell *nu;

    /* --- build A --- */
    A = NULL;
    rp = NULL;
    while (morerowsA) {
        r = malloc(sizeof(struct row));
        r->nxtrow = NULL;
        r->cells = NULL;
        if (A == NULL) { A = r; } else { rp->nxtrow = r; }
        rp = r;
        cp = NULL;
        while (morecellsA) {
            c = malloc(sizeof(struct cell));
            c->nxt = NULL;
            if (cp == NULL) { r->cells = c; } else { cp->nxt = c; }
            cp = c;
        }
    }
    /* --- build B --- */
    B = NULL;
    rp = NULL;
    while (morerowsB) {
        r = malloc(sizeof(struct row));
        r->nxtrow = NULL;
        r->cells = NULL;
        if (B == NULL) { B = r; } else { rp->nxtrow = r; }
        rp = r;
        cp = NULL;
        while (morecellsB) {
            c = malloc(sizeof(struct cell));
            c->nxt = NULL;
            if (cp == NULL) { r->cells = c; } else { cp->nxt = c; }
            cp = c;
        }
    }
    r = NULL;
    rp = NULL;
    c = NULL;
    cp = NULL;

    /* --- C = A * B --- */
    C = NULL;
    rp = NULL;
    ra = A;
    while (ra != NULL) {
        /* result row for this A row */
        rc = malloc(sizeof(struct row));
        rc->nxtrow = NULL;
        rc->cells = NULL;
        if (C == NULL) { C = rc; } else { rp->nxtrow = rc; }
        rp = rc;
        ct = NULL;

        ca = ra->cells;
        while (ca != NULL) {
            /* find the B row matching ca's column */
            rb = B;
            while (rb != NULL) {
                if (rowmatch) {
                    /* accumulate rb's cells into the result row rc */
                    cb = rb->cells;
                    while (cb != NULL) {
                        /* search rc's cells for the target column */
                        cc = rc->cells;
                        while (cc != NULL) {
                            if (found) {
                                break;
                            }
                            cc = cc->nxt;
                        }
                        if (cc != NULL) {
                            /* accumulate in place: scalar update */
                            dummy = 0;
                        } else {
                            nu = malloc(sizeof(struct cell));
                            nu->nxt = NULL;
                            if (ct == NULL) {
                                rc->cells = nu;
                            } else {
                                ct->nxt = nu;
                            }
                            ct = nu;
                        }
                        cc = NULL;
                        cb = cb->nxt;
                    }
                }
                rb = rb->nxtrow;
            }
            ca = ca->nxt;
        }
        ra = ra->nxtrow;
    }
}
`,
	}
}

// LU is the paper's "S.LU fact." benchmark: an in-place sparse LU
// factorization over a matrix stored as a list of columns, each column
// a linked list of entries. The update loop inserts fill-in entries in
// the middle of columns and deletes cancelled entries, the heaviest mix
// of destructive updates in the suite — the paper reports 12'15" and
// 99.46 MB at L1, and that the compiler runs out of memory at L2/L3 on
// its 128 MB machine.
func LU() *Kernel {
	return &Kernel{
		Name:       "lu",
		Title:      "S.LU fact. (sparse LU factorization)",
		PaperLevel: 1,
		Goals: []analysis.Goal{
			checker.NonEmptyExit{},
			checker.NoShared{Struct: "col"},
			checker.NoSharedSelector{Struct: "entry", Sel: "nxt"},
		},
		Source: `
struct col   { int idx; struct col *nxtcol; struct entry *ents; };
struct entry { int rowidx; int val; struct entry *nxt; };

void main(void) {
    struct col *M;
    struct col *k;
    struct col *j;
    struct col *cp;
    struct col *nc;
    struct entry *e;
    struct entry *ep;
    struct entry *piv;
    struct entry *t;
    struct entry *prev;
    struct entry *nu;

    /* --- build the sparse matrix: list of columns of entries --- */
    M = NULL;
    cp = NULL;
    while (morecols) {
        nc = malloc(sizeof(struct col));
        nc->nxtcol = NULL;
        nc->ents = NULL;
        if (M == NULL) { M = nc; } else { cp->nxtcol = nc; }
        cp = nc;
        ep = NULL;
        while (moreents) {
            e = malloc(sizeof(struct entry));
            e->nxt = NULL;
            if (ep == NULL) { nc->ents = e; } else { ep->nxt = e; }
            ep = e;
        }
    }
    nc = NULL;
    cp = NULL;
    e = NULL;
    ep = NULL;

    /* --- right-looking factorization --- */
    k = M;
    while (k != NULL) {
        /* find the pivot entry of column k */
        piv = k->ents;
        while (piv != NULL) {
            if (ispivot) {
                break;
            }
            piv = piv->nxt;
        }
        /* update the trailing columns */
        j = k->nxtcol;
        while (j != NULL) {
            /* scale and subtract: walk column j alongside column k */
            t = k->ents;
            while (t != NULL) {
                /* locate the row position in column j */
                prev = NULL;
                e = j->ents;
                while (e != NULL) {
                    if (found) {
                        break;
                    }
                    prev = e;
                    e = e->nxt;
                }
                if (e != NULL) {
                    if (cancels) {
                        /* the update zeroed the entry: unlink it */
                        if (prev == NULL) {
                            j->ents = e->nxt;
                        } else {
                            prev->nxt = e->nxt;
                        }
                        e->nxt = NULL;
                        free(e);
                    } else {
                        dummy = 0; /* in-place numeric update */
                    }
                } else {
                    /* fill-in: insert a new entry after prev */
                    nu = malloc(sizeof(struct entry));
                    if (prev == NULL) {
                        nu->nxt = j->ents;
                        j->ents = nu;
                    } else {
                        nu->nxt = prev->nxt;
                        prev->nxt = nu;
                    }
                }
                t = t->nxt;
            }
            j = j->nxtcol;
        }
        k = k->nxtcol;
    }
}
`,
	}
}
