package benchprog

import (
	"repro/internal/analysis"
	"repro/internal/checker"
)

// BarnesHut is the paper's Barnes-Hut N-body benchmark (Sect. 5.1).
// The data structure is the paper's Fig. 3(a): the bodies live in a
// singly-linked list headed by Lbodies; the octree represents the
// recursive subdivision of space, each octree node holding a linked
// list of children entries; leaves reference their body in the Lbodies
// list. The recursive traversals arrive manually inlined and converted
// to loops over an explicit stack whose frames reference octree nodes —
// exactly the transformation the paper's authors applied by hand.
//
// The three algorithm steps are:
//
//	(i)   build the octree, inserting every body;
//	(ii)  compute centers of mass by a stack-driven tree walk;
//	(iii) for each body, walk the tree to accumulate forces.
//
// The paper reports: L1 leaves SHSEL(body) imprecisely true on the
// Lbodies middle node; L2 fixes it through C_SPATH1; the stack's node
// references keep octree nodes shared at L2; L3's TOUCH property
// resolves step (iii), enabling a parallel force phase.
func BarnesHut() *Kernel {
	return &Kernel{
		Name:       "barneshut",
		Title:      "Barnes-Hut N-body simulation",
		PaperLevel: 3,
		Goals: []analysis.Goal{
			checker.NonEmptyExit{},
			// The Sect. 5.1 criterion: no two octree leaves reference
			// the same body (SHSEL(n6, body) = false in Fig. 3(b)).
			checker.NoSharedSelector{Struct: "body", Sel: "body"},
			// The step (iii) criterion: during the force loop, visited
			// octree nodes are not shared through the stack's node
			// selector (requires TOUCH, i.e. L3).
			checker.UnsharedDuringLoop{Struct: "onode", Sel: "node", Line: 94},
		},
		Source: barnesHutSource,
	}
}

// barnesHutSource is the inlined, stack-driven Barnes-Hut kernel. Line
// numbers matter: the UnsharedDuringLoop goal names the loop at the
// line of the step (iii) outer `while`.
const barnesHutSource = `struct body  { int mass; int pos; struct body *nxt; };
struct onode { int cmass; struct child *children; struct body *body; };
struct child { struct child *nxt; struct onode *node; };
struct stack { struct stack *nxt; struct onode *node; };

void main(void) {
    struct body *Lbodies;
    struct body *b;
    struct onode *root;
    struct onode *cur;
    struct onode *kid;
    struct child *ch;
    struct child *ce;
    struct stack *S;
    struct stack *f;
    struct onode *n2;

    /* ---- build the Lbodies list ---- */
    Lbodies = NULL;
    while (morebodies) {
        b = malloc(sizeof(struct body));
        b->nxt = Lbodies;
        Lbodies = b;
    }
    b = NULL;

    /* ---- step (i): build the octree, inserting each body ---- */
    root = malloc(sizeof(struct onode));
    root->children = NULL;
    root->body = NULL;

    b = Lbodies;
    while (b != NULL) {
        cur = root;
        while (descend) {
            if (cur->children == NULL) {
                /* subdivide: generate the list of children */
                while (morechildren) {
                    ce = malloc(sizeof(struct child));
                    kid = malloc(sizeof(struct onode));
                    kid->children = NULL;
                    kid->body = NULL;
                    ce->node = kid;
                    ce->nxt = cur->children;
                    cur->children = ce;
                }
                ce = NULL;
                kid = NULL;
            }
            /* pick the subsquare the body falls into */
            ch = cur->children;
            while (pickednext) {
                if (ch->nxt == NULL) {
                    break;
                }
                ch = ch->nxt;
            }
            cur = ch->node;
            ch = NULL;
        }
        /* cur is the leaf subsquare for this body */
        cur->body = b;
        b = b->nxt;
    }
    cur = NULL;

    /* ---- step (ii): centers of mass, stack-driven walk ---- */
    S = malloc(sizeof(struct stack));
    S->nxt = NULL;
    S->node = root;
    while (S != NULL) {
        n2 = S->node;
        S = S->nxt;
        ch = n2->children;
        while (ch != NULL) {
            f = malloc(sizeof(struct stack));
            f->nxt = S;
            f->node = ch->node;
            S = f;
            ch = ch->nxt;
        }
        total = total + 1; /* accumulate mass of n2 */
    }
    n2 = NULL;
    f = NULL;
    ch = NULL;

    /* ---- step (iii): force computation per body ---- */
    b = Lbodies;
    while (b != NULL) {
        S = malloc(sizeof(struct stack));
        S->nxt = NULL;
        S->node = root;
        while (S != NULL) {
            n2 = S->node;
            S = S->nxt;
            if (farenough) {
                force = force + 1; /* use n2's center of mass */
            } else {
                ch = n2->children;
                while (ch != NULL) {
                    f = malloc(sizeof(struct stack));
                    f->nxt = S;
                    f->node = ch->node;
                    S = f;
                    ch = ch->nxt;
                }
            }
        }
        n2 = NULL;
        f = NULL;
        ch = NULL;
        b = b->nxt;
    }
}
`
