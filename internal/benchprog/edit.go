package benchprog

import (
	"fmt"
	"regexp"
	"strings"
)

// This file provides the canonical one-statement edit used by the
// persistence benchmarks (DESIGN.md §13): appending `<pvar> = NULL;`
// immediately before the closing brace of main. The edit is downstream
// of every loop, so its forward cone is a handful of tail statements —
// the best case edit-delta re-analysis is designed around, and the one
// benchtab's edit column measures.

// ptrDeclRe matches a local pointer declaration, e.g.
// "struct node *head;" — the first one names the edit's pvar.
var ptrDeclRe = regexp.MustCompile(`struct\s+\w+\s*\*\s*(\w+)\s*;`)

// TailEditSource returns src with one statement `<pvar> = NULL;`
// inserted before the final closing brace, where pvar is the first
// pointer variable declared in the source. Errors if no pointer
// declaration or closing brace is found.
func TailEditSource(src string) (string, error) {
	// Search from main onward: matches before it are struct fields, not
	// local pointer variables.
	body := src
	if i := strings.Index(src, "main"); i >= 0 {
		body = src[i:]
	}
	m := ptrDeclRe.FindStringSubmatch(body)
	if m == nil {
		return "", fmt.Errorf("benchprog: no pointer declaration found for tail edit")
	}
	pvar := m[1]
	i := strings.LastIndex(src, "}")
	if i < 0 {
		return "", fmt.Errorf("benchprog: no closing brace found for tail edit")
	}
	return src[:i] + "    " + pvar + " = NULL;\n" + src[i:], nil
}

// TailEdit returns a copy of the kernel with the one-statement tail
// edit applied to its source. The name is preserved — the edited
// program is "the next version of" the original, which is exactly the
// identity the store's edit-delta lookup keys on.
func (k *Kernel) TailEdit() (*Kernel, error) {
	src, err := TailEditSource(k.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	edited := *k
	edited.Source = src
	return &edited, nil
}
