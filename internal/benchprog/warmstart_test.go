package benchprog

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/store"
)

// TestTailEdit checks the canonical one-statement edit: the edited
// kernel still compiles and has exactly one more statement than the
// original.
func TestTailEdit(t *testing.T) {
	for _, k := range All() {
		t.Run(k.Name, func(t *testing.T) {
			base, err := k.Compile()
			if err != nil {
				t.Fatal(err)
			}
			ek, err := k.TailEdit()
			if err != nil {
				t.Fatal(err)
			}
			edited, err := ek.Compile()
			if err != nil {
				t.Fatalf("edited source does not compile: %v", err)
			}
			if got, want := len(edited.Stmts), len(base.Stmts)+1; got != want {
				t.Fatalf("edited program has %d statements, want %d", got, want)
			}
			if edited.Name != base.Name {
				t.Fatalf("tail edit changed the program name: %q vs %q", edited.Name, base.Name)
			}
		})
	}
}

// editCone recomputes the edit-delta seed set the way the engine does:
// statements whose digest changed between base and edited, closed
// forward over the edited CFG.
func editCone(base, edited []ir.StmtDigest, prog *ir.Program) map[int]bool {
	cone := make(map[int]bool)
	var stack []int
	for id := range edited {
		if id >= len(base) || base[id] != edited[id] {
			cone[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, succ := range prog.Stmts[id].Succs {
			if !cone[succ] {
				cone[succ] = true
				stack = append(stack, succ)
			}
		}
	}
	return cone
}

// warmKernel runs the cold/warm/edit trajectory for one kernel at the
// given visit budget and asserts the tentpole's acceptance criteria:
// the warm run does zero transfers, and the edit run re-analyzes only
// the changed statement's forward cone. Cold and warm are digest-checked
// against storeless cold references. The edit run's contract is
// cone-aware (DESIGN.md §13): every statement outside the forward cone
// must be bit-identical to a cold run of the edited kernel; statements
// inside the cone are a deterministic continuation from the restored
// converged state, which can be strictly more precise than cold (cold
// accumulates transient predecessor outputs into tail in-states; the
// continuation merges only converged ones). With exactIdentity the cone
// itself must also match cold — true whenever the tail join is
// confluent, which holds for the list kernels.
func warmKernel(t *testing.T, k *Kernel, visits int, exactIdentity bool) {
	t.Helper()
	opts := analysis.Options{MaxVisits: visits}

	refDigs := func(k *Kernel) map[int]rsg.Digest {
		prog, err := k.Compile()
		if err != nil {
			t.Fatal(err)
		}
		res, err := analysis.Run(prog, opts)
		if err != nil {
			t.Fatalf("%s: storeless reference: %v", k.Name, err)
		}
		out := make(map[int]rsg.Digest, len(res.Out))
		for id, s := range res.Out {
			out[id] = s.Digest()
		}
		return out
	}
	check := func(label string, want map[int]rsg.Digest, res *analysis.Result) {
		t.Helper()
		if len(res.Out) != len(want) {
			t.Fatalf("%s: %d out-states, want %d", label, len(res.Out), len(want))
		}
		for id, d := range want {
			if got := res.Out[id].Digest(); got != d {
				t.Fatalf("%s: digest mismatch at stmt %d", label, id)
			}
		}
	}

	want := refDigs(k)
	st, err := store.Open(filepath.Join(t.TempDir(), k.Name+".rsgstore"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sopts := opts
	sopts.Store = st

	// Cold populate.
	prog, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := analysis.Run(prog, sopts)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	check("cold", want, cold)

	// Warm: zero full transfers, zero delta transfers, zero visits.
	prog2, err := k.Compile()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := analysis.Run(prog2, sopts)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	check("warm", want, warm)
	if warm.Stats.FullRecomputes != 0 || warm.Stats.DeltaTransfers != 0 || warm.Stats.Visits != 0 {
		t.Fatalf("warm run did work: %+v", warm.Stats)
	}
	if warm.Stats.ReusedStatements == 0 {
		t.Fatalf("warm run restored nothing: %+v", warm.Stats)
	}

	// Edit: one appended tail statement; only its forward cone reruns.
	ek, err := k.TailEdit()
	if err != nil {
		t.Fatal(err)
	}
	wantEdit := refDigs(ek)
	eprog, err := ek.Compile()
	if err != nil {
		t.Fatal(err)
	}
	edit, err := analysis.Run(eprog, sopts)
	if err != nil {
		t.Fatalf("edit: %v", err)
	}
	if edit.Stats.ReseededStatements == 0 {
		t.Fatalf("edit run did not take the edit-delta path: %+v", edit.Stats)
	}
	if n := len(eprog.Stmts); edit.Stats.ReseededStatements >= n/2 {
		t.Fatalf("edit cone too large: %d of %d statements reseeded",
			edit.Stats.ReseededStatements, n)
	}
	if exactIdentity {
		check("edit", wantEdit, edit)
	} else {
		cone := editCone(prog.StmtDigests(), eprog.StmtDigests(), eprog)
		drift := 0
		for id, d := range wantEdit {
			got := edit.Out[id]
			if got == nil {
				t.Fatalf("edit: missing out-state for stmt %d", id)
			}
			if got.Digest() == d {
				continue
			}
			if !cone[id] {
				t.Fatalf("edit: digest mismatch OUTSIDE the edit cone at stmt %d", id)
			}
			drift++
		}
		// A second edit run from the same snapshot must replay the same
		// continuation bit for bit.
		eprog2, err := ek.Compile()
		if err != nil {
			t.Fatal(err)
		}
		edit2, err := analysis.Run(eprog2, sopts)
		if err != nil {
			t.Fatalf("edit repeat: %v", err)
		}
		for id, s := range edit.Out {
			if edit2.Out[id] == nil || edit2.Out[id].Digest() != s.Digest() {
				t.Fatalf("edit continuation is not deterministic at stmt %d", id)
			}
		}
		t.Logf("%s: %d of %d cone stmts drifted (more precise than cold)", k.Name, drift, len(cone))
	}
	t.Logf("%s: warm reused %d stmts; edit reseeded %d of %d stmts",
		k.Name, warm.Stats.ReusedStatements, edit.Stats.ReseededStatements, len(eprog.Stmts))
}

// TestWarmStartSmoke is the bench-warm smoke gate: Figure 1's doubly
// linked list plus the Barnes-Hut force kernel, each through the
// cold/warm/edit trajectory at a converging visit budget.
func TestWarmStartSmoke(t *testing.T) {
	warmKernel(t, DoublyList(), 60000, true)
	if testing.Short() {
		t.Skip("skipping barneshut warm-start in -short mode")
	}
	warmKernel(t, BarnesHut(), 60000, false)
}
