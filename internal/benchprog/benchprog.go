// Package benchprog holds the benchmark kernels of the paper's
// evaluation (Sect. 5), written in the analyzable mini-C subset:
//
//   - sparse matrix by vector multiplication,
//   - sparse matrix by matrix multiplication,
//   - sparse LU factorization,
//   - the Barnes-Hut N-body simulation.
//
// The Barnes-Hut kernel arrives in the same form the paper's authors
// fed their compiler: the recursive octree traversals manually inlined
// and converted into loops driven by an explicit stack (Sect. 5.1).
//
// Two small teaching kernels (singly and doubly linked lists) are
// included for the examples and tests.
package benchprog

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/checker"
	"repro/internal/cminic"
	"repro/internal/ir"
)

// Kernel bundles one benchmark program with the accuracy goals its
// progressive analysis must satisfy.
type Kernel struct {
	// Name is the short identifier used by the benchmark harness.
	Name string
	// Title is the paper's name for the code.
	Title string
	// Source is the mini-C program text.
	Source string
	// Goals drive the progressive driver's escalation. The paper's
	// sparse codes meet their goals at L1; Barnes-Hut needs L3.
	Goals []analysis.Goal
	// PaperLevel is the level at which the paper reports the analysis
	// becomes accurate.
	PaperLevel int
}

// Compile parses and lowers the kernel.
func (k *Kernel) Compile() (*ir.Program, error) {
	file, err := cminic.Parse(k.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	prog, err := ir.LowerMain(file)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", k.Name, err)
	}
	// Every kernel lowers a function called "main"; rename the program
	// after the kernel so persistent-store by-name keys (edit-delta
	// lookups) are unique per kernel. Digests do not cover Name.
	prog.Name = k.Name
	return prog, nil
}

// Kernels returns the paper's four benchmark kernels in Table 1 order.
func Kernels() []*Kernel {
	return []*Kernel{MatVec(), MatMat(), LU(), BarnesHut()}
}

// ByName returns the kernel with the given name (including the teaching
// kernels), or nil.
func ByName(name string) *Kernel {
	for _, k := range All() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// All returns every kernel, benchmarks first.
func All() []*Kernel {
	ks := Kernels()
	ks = append(ks, SinglyList(), DoublyList(), BinaryTree())
	return ks
}

// Names returns the sorted kernel names.
func Names() []string {
	var out []string
	for _, k := range All() {
		out = append(out, k.Name)
	}
	sort.Strings(out)
	return out
}

// SinglyList is a teaching kernel: build then traverse a singly-linked
// list.
func SinglyList() *Kernel {
	return &Kernel{
		Name:       "slist",
		Title:      "Singly-linked list",
		PaperLevel: 1,
		Goals: []analysis.Goal{
			checker.NonEmptyExit{},
			checker.NoShared{Struct: "node"},
			checker.NoSharedSelector{Struct: "node", Sel: "nxt"},
		},
		Source: `
struct node { int val; struct node *nxt; };

void main(void) {
    struct node *head;
    struct node *p;
    struct node *q;
    head = malloc(sizeof(struct node));
    head->nxt = NULL;
    p = head;
    while (more) {
        q = malloc(sizeof(struct node));
        q->nxt = NULL;
        p->nxt = q;
        p = q;
    }
    q = NULL;
    p = head;
    while (p != NULL) {
        p = p->nxt;
    }
}
`,
	}
}

// DoublyList is a teaching kernel: build, traverse and splice a
// doubly-linked list (the structure of the paper's Fig. 1).
func DoublyList() *Kernel {
	return &Kernel{
		Name:       "dlist",
		Title:      "Doubly-linked list",
		PaperLevel: 1,
		Goals: []analysis.Goal{
			checker.NonEmptyExit{},
			checker.NoSharedSelector{Struct: "elem", Sel: "nxt"},
			checker.NoSharedSelector{Struct: "elem", Sel: "prv"},
		},
		Source: `
struct elem { int val; struct elem *nxt; struct elem *prv; };

void main(void) {
    struct elem *first;
    struct elem *last;
    struct elem *e;
    struct elem *p;
    first = malloc(sizeof(struct elem));
    first->nxt = NULL;
    first->prv = NULL;
    last = first;
    while (more) {
        e = malloc(sizeof(struct elem));
        e->nxt = NULL;
        e->prv = last;
        last->nxt = e;
        last = e;
    }
    e = NULL;
    /* forward traversal */
    p = first;
    while (p != NULL) {
        p = p->nxt;
    }
    /* backward traversal */
    p = last;
    while (p != NULL) {
        p = p->prv;
    }
}
`,
	}
}

// BinaryTree is a teaching kernel: build a binary tree top-down, then
// traverse it with an explicit stack.
func BinaryTree() *Kernel {
	return &Kernel{
		Name:       "btree",
		Title:      "Binary tree with stack traversal",
		PaperLevel: 1,
		Goals: []analysis.Goal{
			checker.NonEmptyExit{},
			checker.NoSharedSelector{Struct: "tnode", Sel: "left"},
			checker.NoSharedSelector{Struct: "tnode", Sel: "right"},
		},
		Source: `
struct tnode { int key; struct tnode *left; struct tnode *right; };
struct frame { struct frame *nxt; struct tnode *node; };

void main(void) {
    struct tnode *root;
    struct tnode *cur;
    struct tnode *kid;
    struct frame *S;
    struct frame *f;

    root = malloc(sizeof(struct tnode));
    root->left = NULL;
    root->right = NULL;

    /* grow the tree: repeatedly descend and attach a leaf */
    while (grow) {
        cur = root;
        while (descend) {
            if (goleft) {
                if (cur->left == NULL) {
                    kid = malloc(sizeof(struct tnode));
                    kid->left = NULL;
                    kid->right = NULL;
                    cur->left = kid;
                }
                cur = cur->left;
            } else {
                if (cur->right == NULL) {
                    kid = malloc(sizeof(struct tnode));
                    kid->left = NULL;
                    kid->right = NULL;
                    cur->right = kid;
                }
                cur = cur->right;
            }
        }
    }
    kid = NULL;
    cur = NULL;

    /* iterative traversal with an explicit stack */
    S = malloc(sizeof(struct frame));
    S->nxt = NULL;
    S->node = root;
    while (S != NULL) {
        cur = S->node;
        S = S->nxt;
        if (cur->left != NULL) {
            f = malloc(sizeof(struct frame));
            f->nxt = S;
            f->node = cur->left;
            S = f;
        }
        if (cur->right != NULL) {
            f = malloc(sizeof(struct frame));
            f->nxt = S;
            f->node = cur->right;
            S = f;
        }
    }
}
`,
	}
}
