package rsg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based invariants of the graph operations, checked over
// randomized inputs with testing/quick.

// TestPropertyCompressIdempotent: COMPRESS reaches a fixed point — a
// second application never merges again, at every level.
func TestPropertyCompressIdempotent(t *testing.T) {
	for _, lvl := range []Level{L1, L2, L3} {
		lvl := lvl
		err := quick.Check(func(seed int64) bool {
			g := randomGraph(rand.New(rand.NewSource(seed)))
			Compress(g, lvl)
			return Compress(g, lvl) == 0
		}, &quick.Config{MaxCount: 120})
		if err != nil {
			t.Errorf("%s: %v", lvl, err)
		}
	}
}

// TestPropertyCompressPreservesPvars: summarization may fuse nodes but
// never loses a pointer variable's reference.
func TestPropertyCompressPreservesPvars(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		before := g.Pvars()
		Compress(g, L1)
		after := g.Pvars()
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if before[i] != after[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyCompressNeverGrows: node and link counts never increase.
func TestPropertyCompressNeverGrows(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		n0, l0 := g.NumNodes(), g.NumLinks()
		Compress(g, L1)
		return g.NumNodes() <= n0 && g.NumLinks() <= l0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyJoinSymmetricSignature: joining two compatible graphs in
// either order yields signature-identical results after compression
// (the union is a set-level operation; operand order is an artifact).
func TestPropertyJoinSymmetricSignature(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := randomGraph(r)
		g2 := randomGraph(r)
		if !Compatible(L1, g1, g2) {
			return true // vacuous
		}
		a := Join(L1, g1, g2)
		Compress(a, L1)
		b := Join(L1, g2, g1)
		Compress(b, L1)
		// Both must at least agree on the alias relation and sizes;
		// exact signature equality can differ when the greedy matching
		// picks different non-pvar pairs, so compare the observable
		// alias structure and pvar-node properties.
		if AliasKey(a) != AliasKey(b) {
			return false
		}
		for _, p := range a.Pvars() {
			na, nb := a.PvarTarget(p), b.PvarTarget(p)
			if na.Shared != nb.Shared || !na.ShSel.Equal(nb.ShSel) ||
				!na.SelIn.Equal(nb.SelIn) || !na.SelOut.Equal(nb.SelOut) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyJoinPreservesLinksOfBoth: every link of either operand
// survives the join (translated through the node map) — the paper's
// N/PL/NL union equations.
func TestPropertyJoinPreservesLinkCount(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1 := randomGraph(r)
		g2 := randomGraph(r)
		if !Compatible(L1, g1, g2) {
			return true
		}
		j := Join(L1, g1, g2)
		// The join can only deduplicate links (when both operands map a
		// link onto the same merged pair), never invent or drop beyond
		// the operands' union.
		if j.NumLinks() > g1.NumLinks()+g2.NumLinks() {
			return false
		}
		if j.NumLinks() < g1.NumLinks() && j.NumLinks() < g2.NumLinks() {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 150})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyPruneIdempotent: once PRUNE accepts a graph, a second
// pass removes nothing.
func TestPropertyPruneIdempotent(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		if !Prune(g) {
			return true // infeasible random graph: nothing to check
		}
		sig := Signature(g)
		if !Prune(g) {
			return false
		}
		return Signature(g) == sig
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestPropertyDivideBranchesAreSubgraphs: every division branch only
// removes links (never adds nodes or links) relative to the input.
func TestPropertyDivideBranchesAreSubgraphs(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		if g.PvarTarget("p") == nil {
			return true
		}
		for _, d := range Divide(g, "p", "s") {
			for _, l := range d.G.Links() {
				if !g.HasLink(l.Src, l.Sel, l.Dst) {
					return false
				}
			}
			if d.G.NumNodes() > g.NumNodes() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
