package rsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// This file implements the canonical binary codec for frozen graphs —
// the wire format of the persistent analysis store (DESIGN.md §13).
// The encoding is name-based: selector, pvar and type names are written
// as strings (through a per-graph string table), never as Sym values,
// because Sym numbering depends on interning order and does not survive
// a process restart. The canonical digest is itself computed from names
// in canonical order (canon.go), so
//
//	DecodeFrozen(EncodeFrozen(g)).Digest() == g.Digest()
//
// bit for bit, in any process — the round-trip property the store's
// content addressing relies on (and that codec_test.go fuzzes).

// codecVersion is bumped on any incompatible format change; the store
// treats a version mismatch as a cache miss, never an error.
const codecVersion = 1

var errCodec = errors.New("rsg: malformed graph encoding")

// encBuf accumulates the encoding; strings are interned into a local
// table on first use and referenced by index afterwards, which keeps
// repeated selector names to one byte each.
type encBuf struct {
	out     []byte
	strs    []string
	strIdx  map[string]uint64
	scratch []Sym
}

func (e *encBuf) uvarint(v uint64) { e.out = binary.AppendUvarint(e.out, v) }

// str appends the string-table reference for s (0 is the empty string;
// table entries start at 1).
func (e *encBuf) str(s string) {
	if s == "" {
		e.uvarint(0)
		return
	}
	idx, ok := e.strIdx[s]
	if !ok {
		e.strs = append(e.strs, s)
		idx = uint64(len(e.strs))
		e.strIdx[s] = idx
	}
	e.uvarint(idx)
}

// syms appends a Sym set as a name list in lexicographic order (the
// canonical order shared with the signature encoding).
func (e *encBuf) syms(b bitset, t *symSpace) {
	e.scratch = b.collectSyms(e.scratch[:0])
	snap := t.load()
	snap.sortByRank(e.scratch)
	e.uvarint(uint64(len(e.scratch)))
	for _, y := range e.scratch {
		e.str(snap.names[y-1])
	}
}

// EncodeFrozen serializes a frozen graph into the compact canonical
// binary form. Panics if the graph is not frozen: encoding is meant for
// interned graphs whose digest is pinned, so the store can trust that
// the bytes written under a digest key really decode back to it.
func EncodeFrozen(g *Graph) []byte {
	if !g.frozen {
		panic("rsg: EncodeFrozen on unfrozen graph (Freeze or Intern first)")
	}
	e := &encBuf{
		out:    make([]byte, 0, 64+32*len(g.ids)),
		strIdx: make(map[string]uint64, 16),
	}
	// Body first; the string table is prepended afterwards so decoding
	// can read it up front.
	e.uvarint(uint64(len(g.ids)))
	selSnap := selTab.load()
	for i, id := range g.ids {
		n := g.nodes[i]
		e.uvarint(uint64(id))
		e.str(n.Type)
		var flags byte
		if n.Singleton {
			flags |= 1
		}
		if n.Shared {
			flags |= 2
		}
		e.out = append(e.out, flags)
		e.syms(n.ShSel.b, &selTab)
		e.syms(n.SelIn.b, &selTab)
		e.syms(n.SelOut.b, &selTab)
		e.syms(n.PosSelIn.b, &selTab)
		e.syms(n.PosSelOut.b, &selTab)
		pairs := n.Cycle.Sorted()
		e.uvarint(uint64(len(pairs)))
		for _, p := range pairs {
			e.str(p.Out)
			e.str(p.In)
		}
		e.syms(n.Touch.b, &pvarTab)
	}
	pvarSnap := pvarTab.load()
	e.uvarint(uint64(len(g.pl)))
	for _, pe := range g.pl {
		e.str(pvarSnap.names[pe.sym-1])
		e.uvarint(uint64(pe.id))
	}
	e.uvarint(uint64(len(g.outE)))
	for _, ed := range g.outE {
		e.uvarint(uint64(ed.a))
		e.str(selSnap.names[ed.sel-1])
		e.uvarint(uint64(ed.b))
	}
	e.uvarint(uint64(g.nextID))

	// Assemble: version, string table, body.
	hdr := make([]byte, 0, 16+len(e.out))
	hdr = append(hdr, codecVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(e.strs)))
	for _, s := range e.strs {
		hdr = binary.AppendUvarint(hdr, uint64(len(s)))
		hdr = append(hdr, s...)
	}
	return append(hdr, e.out...)
}

// decBuf is the decoding cursor.
type decBuf struct {
	data []byte
	strs []string
}

func (d *decBuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		return 0, errCodec
	}
	d.data = d.data[n:]
	return v, nil
}

func (d *decBuf) str() (string, error) {
	idx, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if idx == 0 {
		return "", nil
	}
	if idx > uint64(len(d.strs)) {
		return "", errCodec
	}
	return d.strs[idx-1], nil
}

func (d *decBuf) syms(t *symSpace) (bitset, error) {
	n, err := d.uvarint()
	if err != nil {
		return bitset{}, err
	}
	var b bitset
	for i := uint64(0); i < n; i++ {
		s, err := d.str()
		if err != nil {
			return bitset{}, err
		}
		b.addSym(t.intern(s))
	}
	return b, nil
}

// maxDecodeNodes bounds a single decoded graph, so a corrupt length
// prefix cannot drive an allocation of arbitrary size.
const maxDecodeNodes = 1 << 20

// DecodeFrozen reconstructs a graph from EncodeFrozen bytes, interning
// every name into the process-local symbol tables, and returns it
// frozen. The decoded graph's digest is recomputed from scratch by the
// freeze, so a caller holding the expected digest can verify the bytes
// were not corrupted by comparing (the store does).
func DecodeFrozen(data []byte) (*Graph, error) {
	if len(data) < 1 || data[0] != codecVersion {
		return nil, fmt.Errorf("%w: bad version", errCodec)
	}
	d := &decBuf{data: data[1:]}
	nStrs, err := d.uvarint()
	if err != nil || nStrs > uint64(len(d.data)) {
		return nil, errCodec
	}
	d.strs = make([]string, nStrs)
	for i := range d.strs {
		ln, err := d.uvarint()
		if err != nil || ln > uint64(len(d.data)) {
			return nil, errCodec
		}
		d.strs[i] = string(d.data[:ln])
		d.data = d.data[ln:]
	}

	g := &Graph{}
	nNodes, err := d.uvarint()
	if err != nil || nNodes > maxDecodeNodes {
		return nil, errCodec
	}
	g.ids = make([]NodeID, 0, nNodes)
	g.nodes = make([]*Node, 0, nNodes)
	backing := make([]Node, nNodes)
	for i := uint64(0); i < nNodes; i++ {
		id, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		n := &backing[i]
		n.ID = NodeID(id)
		if n.Type, err = d.str(); err != nil {
			return nil, err
		}
		if len(d.data) < 1 {
			return nil, errCodec
		}
		flags := d.data[0]
		d.data = d.data[1:]
		n.Singleton = flags&1 != 0
		n.Shared = flags&2 != 0
		if n.ShSel.b, err = d.syms(&selTab); err != nil {
			return nil, err
		}
		if n.SelIn.b, err = d.syms(&selTab); err != nil {
			return nil, err
		}
		if n.SelOut.b, err = d.syms(&selTab); err != nil {
			return nil, err
		}
		if n.PosSelIn.b, err = d.syms(&selTab); err != nil {
			return nil, err
		}
		if n.PosSelOut.b, err = d.syms(&selTab); err != nil {
			return nil, err
		}
		nPairs, err := d.uvarint()
		if err != nil || nPairs > uint64(len(d.data)) {
			return nil, errCodec
		}
		for j := uint64(0); j < nPairs; j++ {
			var p CyclePair
			if p.Out, err = d.str(); err != nil {
				return nil, err
			}
			if p.In, err = d.str(); err != nil {
				return nil, err
			}
			n.Cycle.Add(p)
		}
		if n.Touch.b, err = d.syms(&pvarTab); err != nil {
			return nil, err
		}
		g.ids = append(g.ids, n.ID)
		g.nodes = append(g.nodes, n)
	}
	// Node IDs are encoded in ascending order; reject out-of-order input
	// rather than silently building an unsearchable graph.
	for i := 1; i < len(g.ids); i++ {
		if g.ids[i] <= g.ids[i-1] {
			return nil, errCodec
		}
	}

	nPl, err := d.uvarint()
	if err != nil || nPl > uint64(len(d.data)) {
		return nil, errCodec
	}
	g.pl = make([]plEntry, 0, nPl)
	for i := uint64(0); i < nPl; i++ {
		name, err := d.str()
		if err != nil || name == "" {
			return nil, errCodec
		}
		id, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if g.posOf(NodeID(id)) < 0 {
			return nil, errCodec
		}
		g.pl = append(g.pl, plEntry{sym: pvarTab.intern(name), id: NodeID(id)})
	}
	nOut, err := d.uvarint()
	if err != nil || nOut > uint64(len(d.data)) {
		return nil, errCodec
	}
	g.outE = make([]edge, 0, nOut)
	for i := uint64(0); i < nOut; i++ {
		src, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		sel, err := d.str()
		if err != nil || sel == "" {
			return nil, errCodec
		}
		dst, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if g.posOf(NodeID(src)) < 0 || g.posOf(NodeID(dst)) < 0 {
			return nil, errCodec
		}
		g.outE = append(g.outE, edge{a: NodeID(src), sel: selTab.intern(sel), b: NodeID(dst)})
	}
	nextID, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	g.nextID = NodeID(nextID)

	// Interning may have assigned different ranks than the encoding
	// process had (rank order equals name order for any fixed symbol
	// set, but the decode-side tables can hold extra names); re-sort the
	// ordered slices under the local snapshots and rebuild the reverse
	// edge list, so the flat representation's invariants hold exactly.
	if pvarSnap := pvarTab.load(); pvarSnap != nil {
		sort.SliceStable(g.pl, func(i, j int) bool {
			return pvarSnap.rankOf(g.pl[i].sym) < pvarSnap.rankOf(g.pl[j].sym)
		})
	}
	if selSnap := selTab.load(); selSnap != nil {
		sort.SliceStable(g.outE, func(i, j int) bool { return outLess(selSnap, g.outE[i], g.outE[j]) })
		g.inE = make([]edge, 0, len(g.outE))
		for _, ed := range g.outE {
			g.inE = append(g.inE, edge{a: ed.b, sel: ed.sel, b: ed.a})
		}
		sort.SliceStable(g.inE, func(i, j int) bool { return inLess(selSnap, g.inE[i], g.inE[j]) })
	}
	return g.Freeze(), nil
}
