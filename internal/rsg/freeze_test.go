package rsg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mustPanic runs f and reports an error unless it panics.
func mustPanic(t *testing.T, op string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s on a frozen graph did not panic", op)
		}
	}()
	f()
}

func TestFrozenMutatorsPanic(t *testing.T) {
	g, n1, _, _ := dlist(true)
	g.Freeze()

	mustPanic(t, "AddNode", func() { g.AddNode(NewNode("elem")) })
	mustPanic(t, "SetPvar", func() { g.SetPvar("y", n1.ID) })
	mustPanic(t, "ClearPvar", func() { g.ClearPvar("x") })
	mustPanic(t, "AddLink", func() { g.AddLink(n1.ID, "prv", n1.ID) })
	mustPanic(t, "RemoveLink", func() { g.RemoveLink(n1.ID, "nxt", n1.ID) })
	mustPanic(t, "RemoveNode", func() { g.RemoveNode(n1.ID) })
}

func TestFreezeIdempotent(t *testing.T) {
	g, _, _, _ := dlist(true)
	g.Freeze()
	d := g.Digest()
	g.Freeze() // second freeze is a no-op
	if g.Digest() != d {
		t.Fatal("digest changed across repeated Freeze")
	}
	if !g.Frozen() {
		t.Fatal("Frozen() is false after Freeze")
	}
}

func TestCloneOfFrozenIsMutable(t *testing.T) {
	g, n1, _, _ := dlist(true)
	g.Freeze()
	c := g.Clone()
	if c.Frozen() {
		t.Fatal("clone of a frozen graph must be mutable")
	}
	// All mutators must work on the clone and leave the original intact.
	c.SetPvar("y", n1.ID)
	c.AddLink(n1.ID, "prv", n1.ID)
	c.RemoveLink(n1.ID, "prv", n1.ID)
	c.ClearPvar("y")
	if Signature(c) != Signature(g) {
		t.Fatal("round-trip mutations on the clone should restore the signature")
	}
}

// TestFrozenViewsMatchUnfrozen checks that the cached views built at
// freeze time agree with the live computation on the mutable graph.
func TestFrozenViewsMatchUnfrozen(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		sig := Signature(g)
		alias := AliasKey(g)
		ids := append([]NodeID{}, g.NodeIDs()...)
		pvars := append([]string{}, g.Pvars()...)

		f := g.Clone()
		f.Freeze()
		if Signature(f) != sig || AliasKey(f) != alias {
			return false
		}
		if len(f.NodeIDs()) != len(ids) || len(f.Pvars()) != len(pvars) {
			return false
		}
		for _, id := range ids {
			sels := g.OutSelectors(id)
			if len(sels) != len(f.OutSelectors(id)) {
				return false
			}
			for _, sel := range sels {
				if len(g.Targets(id, sel)) != len(f.Targets(id, sel)) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

// TestDigestEquivalentToSignature is the randomized property test: for
// random graph pairs, DigestEqual(a, b) <=> Signature(a) == Signature(b).
func TestDigestEquivalentToSignature(t *testing.T) {
	err := quick.Check(func(seedA, seedB int64) bool {
		a := randomGraph(rand.New(rand.NewSource(seedA)))
		b := randomGraph(rand.New(rand.NewSource(seedB)))
		return DigestEqual(a, b) == (Signature(a) == Signature(b))
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
	// Equal-by-construction pairs, including across freezing.
	err = quick.Check(func(seed int64) bool {
		a := randomGraph(rand.New(rand.NewSource(seed)))
		b := a.Clone()
		b.Freeze()
		return DigestEqual(a, b) && Signature(a) == Signature(b)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestDigestMemoizedOnFrozen(t *testing.T) {
	g, _, _, _ := slist()
	before := ReadCacheStats()
	g.Freeze()
	g.Digest()
	g.Digest()
	delta := ReadCacheStats().Sub(before)
	if delta.GraphsFrozen != 1 {
		t.Fatalf("GraphsFrozen = %d, want 1", delta.GraphsFrozen)
	}
	if delta.DigestsComputed != 1 {
		t.Fatalf("DigestsComputed = %d, want 1 (freeze-time only)", delta.DigestsComputed)
	}
	if delta.DigestCacheHits < 2 {
		t.Fatalf("DigestCacheHits = %d, want >= 2", delta.DigestCacheHits)
	}
}

func TestInternReturnsCanonicalInstance(t *testing.T) {
	a, _, _, _ := dlist(true)
	b, _, _, _ := dlist(true)
	ia := Intern(a)
	ib := Intern(b)
	if ia != ib {
		t.Fatal("interning two structurally identical graphs must return one instance")
	}
	if !ia.Frozen() {
		t.Fatal("interned graphs must be frozen")
	}
	c, _, _, _ := slist()
	if Intern(c) == ia {
		t.Fatal("structurally different graphs must not intern to the same instance")
	}
}

func TestHashMatchesDigestHex(t *testing.T) {
	g, _, _, _ := dlist(false)
	if Hash(g) != g.Digest().String() {
		t.Fatal("Hash must be the hex form of Digest")
	}
	if len(Hash(g)) != 32 {
		t.Fatalf("Hash length = %d, want 32 hex chars (16 bytes)", len(Hash(g)))
	}
}

func TestDigestLessIsStrictOrder(t *testing.T) {
	a, _, _, _ := dlist(true)
	b, _, _, _ := slist()
	da, db := a.Digest(), b.Digest()
	if da.Less(da) {
		t.Fatal("Less must be irreflexive")
	}
	if da.Less(db) == db.Less(da) {
		t.Fatal("distinct digests must be strictly ordered")
	}
}
