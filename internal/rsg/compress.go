package rsg

// Compress applies the paper's COMPRESS function (Sect. 3.1) to the
// graph in place: every maximal group of chain-compatible nodes
// (C_NODES_RSG) is summarized into one node via MERGE_COMP_NODES, and
// PL/NL are remapped through MAP_RSG. The process repeats until no two
// nodes are compatible, because a merge changes SPATHs and structure
// and can enable further merges. Returns the number of merges applied.
func Compress(g *Graph, lvl Level) int {
	total := 0
	for {
		merges := compressOnce(g, lvl)
		if merges == 0 {
			return total
		}
		total += merges
	}
}

// compressOnce performs one summarization round.
func compressOnce(g *Graph, lvl Level) int {
	ids := g.NodeIDs()
	if len(ids) < 2 {
		return 0
	}
	spaths := g.SPaths()
	structure := g.StructureOf()

	// Bucket by the equality-checked properties so the pairwise
	// C_NODES_RSG tests only run within plausible groups.
	buckets := make(map[string][]NodeID)
	var order []string
	for _, id := range ids {
		n := g.Node(id)
		key := n.propertyKey() + "|" + structure[id]
		if _, ok := buckets[key]; !ok {
			order = append(order, key)
		}
		buckets[key] = append(buckets[key], id)
	}

	// Union-find for chain compatibility (the paper summarizes chains
	// n1..nk with C_NODES_RSG(n_i, n_{i+1}) for consecutive pairs).
	parent := make(map[NodeID]NodeID, len(ids))
	for _, id := range ids {
		parent[id] = id
	}
	var find func(NodeID) NodeID
	find = func(x NodeID) NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	merges := 0
	for _, key := range order {
		group := buckets[key]
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if find(a) == find(b) {
					continue
				}
				na, nb := g.Node(a), g.Node(b)
				if CNodesRSG(lvl, na, nb, spaths[a], spaths[b], structure[a], structure[b]) {
					ra, rb := find(a), find(b)
					if ra < rb {
						parent[rb] = ra
					} else {
						parent[ra] = rb
					}
					merges++
				}
			}
		}
	}
	if merges == 0 {
		return 0
	}

	// Collect the groups (deterministic order by root id).
	groups := make(map[NodeID][]*Node)
	for _, id := range ids {
		r := find(id)
		groups[r] = append(groups[r], g.Node(id))
	}
	for root, members := range groups {
		if len(members) < 2 {
			continue
		}
		summarizeGroup(g, members)
		_ = root
	}
	return merges
}

// summarizeGroup replaces the member nodes by one summary node,
// retargeting PL and NL (the MAP_RSG of the paper).
func summarizeGroup(g *Graph, members []*Node) {
	merged := MergeCompNodes(g, members, true)
	memberSet := make(map[NodeID]struct{}, len(members))
	for _, m := range members {
		memberSet[m.ID] = struct{}{}
	}

	// Gather the remapped links and pvar references before mutating.
	var newLinks []Link
	for _, l := range g.Links() {
		_, srcIn := memberSet[l.Src]
		_, dstIn := memberSet[l.Dst]
		if !srcIn && !dstIn {
			continue
		}
		newLinks = append(newLinks, l)
	}
	var pvars []string
	for _, m := range members {
		pvars = append(pvars, g.PvarsOf(m.ID)...)
	}

	node := g.AddNode(merged)
	mapID := func(id NodeID) NodeID {
		if _, ok := memberSet[id]; ok {
			return node.ID
		}
		return id
	}
	for _, l := range newLinks {
		g.AddLink(mapID(l.Src), l.Sel, mapID(l.Dst))
	}
	for _, p := range pvars {
		g.SetPvar(p, node.ID)
	}
	for _, m := range members {
		g.RemoveNode(m.ID)
	}
}
