package rsg

import "sort"

// Compress applies the paper's COMPRESS function (Sect. 3.1) to the
// graph in place: every maximal group of chain-compatible nodes
// (C_NODES_RSG) is summarized into one node via MERGE_COMP_NODES, and
// PL/NL are remapped through MAP_RSG. The process repeats until no two
// nodes are compatible, because a merge changes SPATHs and structure
// and can enable further merges. Returns the number of merges applied.
func Compress(g *Graph, lvl Level) int {
	total := 0
	for {
		merges := compressOnce(g, lvl)
		if merges == 0 {
			return total
		}
		total += merges
	}
}

// compressOnce performs one summarization round.
func compressOnce(g *Graph, lvl Level) int {
	n := len(g.ids)
	if n < 2 {
		return 0
	}
	spaths := make([]SPathSet, n)
	g.spathsByPos(spaths)
	structure := g.StructureOf()

	// Bucket by the equality-checked properties so the pairwise
	// C_NODES_RSG tests only run within plausible groups. Buckets hold
	// node positions; the slices stay valid because nothing is removed
	// until the groups are summarized.
	buckets := make(map[string][]int)
	var order []string
	for pos, id := range g.ids {
		key := g.nodes[pos].propertyKey() + "|" + structure[id]
		if _, ok := buckets[key]; !ok {
			order = append(order, key)
		}
		buckets[key] = append(buckets[key], pos)
	}

	// Union-find for chain compatibility (the paper summarizes chains
	// n1..nk with C_NODES_RSG(n_i, n_{i+1}) for consecutive pairs).
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	merges := 0
	for _, key := range order {
		group := buckets[key]
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if find(int32(a)) == find(int32(b)) {
					continue
				}
				na, nb := g.nodes[a], g.nodes[b]
				if CNodesRSG(lvl, na, nb, spaths[a], spaths[b], structure[na.ID], structure[nb.ID]) {
					ra, rb := find(int32(a)), find(int32(b))
					if ra < rb {
						parent[rb] = ra
					} else {
						parent[ra] = rb
					}
					merges++
				}
			}
		}
	}
	if merges == 0 {
		return 0
	}

	// Collect the groups, processed in ascending root position so the
	// fresh summary-node IDs are assigned deterministically.
	groupsByRoot := make(map[int32][]*Node)
	var roots []int32
	for pos := range g.ids {
		r := find(int32(pos))
		if _, ok := groupsByRoot[r]; !ok {
			roots = append(roots, r)
		}
		groupsByRoot[r] = append(groupsByRoot[r], g.nodes[pos])
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		members := groupsByRoot[r]
		if len(members) < 2 {
			continue
		}
		summarizeGroup(g, members)
	}
	return merges
}

// summarizeGroup replaces the member nodes by one summary node,
// retargeting PL and NL (the MAP_RSG of the paper).
func summarizeGroup(g *Graph, members []*Node) {
	merged := MergeCompNodes(g, members, true)
	memberIDs := make([]NodeID, len(members))
	for i, m := range members {
		memberIDs[i] = m.ID
	}
	sort.Slice(memberIDs, func(i, j int) bool { return memberIDs[i] < memberIDs[j] })
	inGroup := func(id NodeID) bool {
		i := sort.Search(len(memberIDs), func(i int) bool { return memberIDs[i] >= id })
		return i < len(memberIDs) && memberIDs[i] == id
	}

	// Gather the remapped links and pvar references before mutating.
	var touching []edge
	for _, e := range g.outE {
		if inGroup(e.a) || inGroup(e.b) {
			touching = append(touching, e)
		}
	}
	var pvars []string
	for _, m := range members {
		pvars = append(pvars, g.PvarsOf(m.ID)...)
	}

	node := g.AddNode(merged)
	mapID := func(id NodeID) NodeID {
		if inGroup(id) {
			return node.ID
		}
		return id
	}
	for _, e := range touching {
		g.AddLinkSym(mapID(e.a), e.sel, mapID(e.b))
	}
	for _, p := range pvars {
		g.SetPvar(p, node.ID)
	}
	for _, id := range memberIDs {
		g.RemoveNode(id)
	}
}
