package rsg

import (
	"fmt"
	"sort"
	"strings"
)

// Link is one NL entry <Src, Sel, Dst>: locations represented by Src may
// reference locations represented by Dst through selector Sel.
type Link struct {
	Src NodeID
	Sel string
	Dst NodeID
}

// String renders the link as "<n1,sel,n2>".
func (l Link) String() string {
	return fmt.Sprintf("<n%d,%s,n%d>", l.Src, l.Sel, l.Dst)
}

// edge is the internal NL encoding: one entry of a flat sorted slice.
// In outE, a is the source and b the destination; in inE, a is the
// destination and b the source. Selectors are interned Syms; ordering
// uses the selector's name rank, so iterating a slice yields names in
// lexicographic order (later interns never reorder existing ranks
// relative to each other, so sortedness is permanent).
type edge struct {
	a   NodeID
	sel Sym
	b   NodeID
}

// plEntry is one PL entry pvar -> node, kept sorted by pvar name rank.
type plEntry struct {
	sym Sym // interned pvar name
	id  NodeID
}

// Graph is one Reference Shape Graph: RSG = (N, P, S, PL, NL).
// The pvar set P and selector set S are implicit (P is the domain the
// program declares; S is derivable from the type table); the graph
// stores N, PL and NL. Within one RSG a pvar references at most one
// node: a pointer variable holds a single value per concrete
// configuration and the abstract semantics keep the distinct
// possibilities in distinct RSGs of the RSRSG.
//
// The representation is flat (DESIGN.md §10): nodes live in a pair of
// parallel slices sorted by ID, PL is a small sorted slice, and NL is a
// pair of sorted edge slices (forward and reverse). Lookups are binary
// searches, iteration is linear and allocation-free, and Clone is a
// handful of slice copies.
type Graph struct {
	ids    []NodeID  // sorted ascending
	nodes  []*Node   // parallel to ids
	pl     []plEntry // sorted by pvar name rank
	outE   []edge    // sorted by (src, rank(sel), dst)
	inE    []edge    // sorted by (dst, src, rank(sel))
	nextID NodeID

	// Freeze contract (see freeze.go): once frozen, every mutating
	// method panics, the derived views below are served from the caches
	// built at freeze time, and the canonical digest is memoized.
	// Callers must treat slices returned by a frozen graph as read-only.
	frozen  bool
	digest  Digest
	cPvars  []string
	cAlias  string
	cLinks  []Link
	cSPaths map[NodeID]SPathSet
}

// NewGraph returns an empty RSG (no nodes; every pvar NULL).
func NewGraph() *Graph { return &Graph{} }

// Clone returns a deep copy of the graph. Node IDs are preserved. The
// clone is always mutable, even when the receiver is frozen: cloning is
// the one sanctioned way to derive a new graph from a frozen handle.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		ids:    append([]NodeID(nil), g.ids...),
		nodes:  make([]*Node, len(g.nodes)),
		pl:     append([]plEntry(nil), g.pl...),
		outE:   append([]edge(nil), g.outE...),
		inE:    append([]edge(nil), g.inE...),
		nextID: g.nextID,
	}
	// One backing array for every node copy: the value sets inside Node
	// are copy-on-write, so a struct copy is a correct deep clone and
	// the per-node heap allocation of the map era is gone.
	backing := make([]Node, len(g.nodes))
	for i, n := range g.nodes {
		backing[i] = *n
		c.nodes[i] = &backing[i]
	}
	return c
}

// posOf returns the slice position of a node ID, or -1.
func (g *Graph) posOf(id NodeID) int {
	lo, hi := 0, len(g.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(g.ids) && g.ids[lo] == id {
		return lo
	}
	return -1
}

// AddNode inserts n into the graph, assigning it a fresh ID, and
// returns the node.
func (g *Graph) AddNode(n *Node) *Node {
	g.mustMutate("AddNode")
	g.nextID++
	n.ID = g.nextID
	g.ids = append(g.ids, n.ID) // fresh IDs are maximal, order holds
	g.nodes = append(g.nodes, n)
	return n
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node {
	if i := g.posOf(id); i >= 0 {
		return g.nodes[i]
	}
	return nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.ids) }

// NumLinks returns the number of NL entries.
func (g *Graph) NumLinks() int { return len(g.outE) }

// NodeIDs returns all node IDs in ascending order. On a frozen graph
// the internal slice is returned; callers must not modify it.
func (g *Graph) NodeIDs() []NodeID {
	if g.frozen {
		return g.ids
	}
	return append([]NodeID(nil), g.ids...)
}

// Nodes returns all nodes ordered by ID.
func (g *Graph) Nodes() []*Node {
	return append([]*Node(nil), g.nodes...)
}

// plIndex returns the position of pvar sym in pl, or -1.
func (g *Graph) plIndex(sym Sym) int {
	for i := range g.pl {
		if g.pl[i].sym == sym {
			return i
		}
	}
	return -1
}

// SetPvar makes pvar reference the node with the given ID.
func (g *Graph) SetPvar(pvar string, id NodeID) {
	g.SetPvarSym(pvarTab.intern(pvar), id)
}

// SetPvarSym is SetPvar addressed by interned pvar.
func (g *Graph) SetPvarSym(sym Sym, id NodeID) {
	g.mustMutate("SetPvar")
	if g.posOf(id) < 0 {
		panic(fmt.Sprintf("rsg: SetPvar(%s, n%d): no such node", pvarTab.name(sym), id))
	}
	if i := g.plIndex(sym); i >= 0 {
		g.pl[i].id = id
		return
	}
	snap := pvarTab.load()
	r := snap.rankOf(sym)
	i := sort.Search(len(g.pl), func(i int) bool { return snap.rankOf(g.pl[i].sym) >= r })
	g.pl = append(g.pl, plEntry{})
	copy(g.pl[i+1:], g.pl[i:])
	g.pl[i] = plEntry{sym: sym, id: id}
}

// ClearPvar makes pvar NULL.
func (g *Graph) ClearPvar(pvar string) {
	g.ClearPvarSym(pvarTab.lookup(pvar))
}

// ClearPvarSym is ClearPvar addressed by interned pvar.
func (g *Graph) ClearPvarSym(sym Sym) {
	g.mustMutate("ClearPvar")
	if i := g.plIndex(sym); i >= 0 {
		g.pl = append(g.pl[:i], g.pl[i+1:]...)
	}
}

// PvarTarget returns the node a pvar references, or nil when the pvar
// is NULL.
func (g *Graph) PvarTarget(pvar string) *Node {
	return g.PvarTargetSym(pvarTab.lookup(pvar))
}

// PvarTargetSym is PvarTarget addressed by interned pvar.
func (g *Graph) PvarTargetSym(sym Sym) *Node {
	if sym == 0 {
		return nil
	}
	if i := g.plIndex(sym); i >= 0 {
		return g.Node(g.pl[i].id)
	}
	return nil
}

// Pvars returns the pvars with a non-NULL reference, sorted. On a
// frozen graph the cached slice is returned; callers must not modify it.
func (g *Graph) Pvars() []string {
	if g.frozen {
		return g.cPvars
	}
	if len(g.pl) == 0 {
		return nil
	}
	out := make([]string, len(g.pl))
	snap := pvarTab.load()
	for i, e := range g.pl {
		out[i] = snap.names[e.sym-1]
	}
	return out
}

// PvarsOf returns the sorted pvars that reference the given node.
func (g *Graph) PvarsOf(id NodeID) []string {
	var out []string
	for _, e := range g.pl {
		if e.id == id {
			out = append(out, pvarTab.name(e.sym))
		}
	}
	return out
}

// pvarReferenced reports whether any pvar references the node.
func (g *Graph) pvarReferenced(id NodeID) bool {
	for _, e := range g.pl {
		if e.id == id {
			return true
		}
	}
	return false
}

func outLess(snap *symSnap, x, y edge) bool {
	if x.a != y.a {
		return x.a < y.a
	}
	if x.sel != y.sel {
		return snap.rank[x.sel-1] < snap.rank[y.sel-1]
	}
	return x.b < y.b
}

func inLess(snap *symSnap, x, y edge) bool {
	if x.a != y.a {
		return x.a < y.a
	}
	if x.b != y.b {
		return x.b < y.b
	}
	if x.sel == y.sel {
		return false
	}
	return snap.rank[x.sel-1] < snap.rank[y.sel-1]
}

// outRun returns the contiguous outE entries with source id.
func (g *Graph) outRun(id NodeID) []edge { return edgeRun(g.outE, id) }

// inRun returns the contiguous inE entries with destination id.
func (g *Graph) inRun(id NodeID) []edge { return edgeRun(g.inE, id) }

func edgeRun(edges []edge, id NodeID) []edge {
	lo := sort.Search(len(edges), func(i int) bool { return edges[i].a >= id })
	hi := lo
	for hi < len(edges) && edges[hi].a == id {
		hi++
	}
	return edges[lo:hi]
}

// AddLink inserts the NL entry <src, sel, dst>. It is idempotent.
func (g *Graph) AddLink(src NodeID, sel string, dst NodeID) {
	g.AddLinkSym(src, selTab.intern(sel), dst)
}

// AddLinkSym is AddLink addressed by interned selector.
func (g *Graph) AddLinkSym(src NodeID, sel Sym, dst NodeID) {
	g.mustMutate("AddLink")
	if g.posOf(src) < 0 {
		panic(fmt.Sprintf("rsg: AddLink: no src node n%d", src))
	}
	if g.posOf(dst) < 0 {
		panic(fmt.Sprintf("rsg: AddLink: no dst node n%d", dst))
	}
	snap := selTab.load()
	e := edge{src, sel, dst}
	i := sort.Search(len(g.outE), func(i int) bool { return !outLess(snap, g.outE[i], e) })
	if i < len(g.outE) && g.outE[i] == e {
		return
	}
	g.outE = insertEdge(g.outE, i, e)
	f := edge{dst, sel, src}
	j := sort.Search(len(g.inE), func(i int) bool { return !inLess(snap, g.inE[i], f) })
	g.inE = insertEdge(g.inE, j, f)
}

func insertEdge(s []edge, i int, e edge) []edge {
	s = append(s, edge{})
	copy(s[i+1:], s[i:])
	s[i] = e
	return s
}

func removeEdgeAt(s []edge, i int) []edge {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// RemoveLink deletes the NL entry <src, sel, dst> if present.
func (g *Graph) RemoveLink(src NodeID, sel string, dst NodeID) {
	g.RemoveLinkSym(src, selTab.lookup(sel), dst)
}

// RemoveLinkSym is RemoveLink addressed by interned selector.
func (g *Graph) RemoveLinkSym(src NodeID, sel Sym, dst NodeID) {
	g.mustMutate("RemoveLink")
	if sel == 0 {
		return
	}
	snap := selTab.load()
	e := edge{src, sel, dst}
	i := sort.Search(len(g.outE), func(i int) bool { return !outLess(snap, g.outE[i], e) })
	if i >= len(g.outE) || g.outE[i] != e {
		return
	}
	g.outE = removeEdgeAt(g.outE, i)
	f := edge{dst, sel, src}
	j := sort.Search(len(g.inE), func(i int) bool { return !inLess(snap, g.inE[i], f) })
	if j < len(g.inE) && g.inE[j] == f {
		g.inE = removeEdgeAt(g.inE, j)
	}
}

// HasLink reports whether <src, sel, dst> is in NL.
func (g *Graph) HasLink(src NodeID, sel string, dst NodeID) bool {
	return g.HasLinkSym(src, selTab.lookup(sel), dst)
}

// HasLinkSym is HasLink addressed by interned selector.
func (g *Graph) HasLinkSym(src NodeID, sel Sym, dst NodeID) bool {
	if sel == 0 {
		return false
	}
	snap := selTab.load()
	e := edge{src, sel, dst}
	i := sort.Search(len(g.outE), func(i int) bool { return !outLess(snap, g.outE[i], e) })
	return i < len(g.outE) && g.outE[i] == e
}

// Targets returns the sorted destinations of src through sel. The
// returned slice is freshly allocated.
func (g *Graph) Targets(src NodeID, sel string) []NodeID {
	return g.TargetsSym(src, selTab.lookup(sel))
}

// TargetsSym is Targets addressed by interned selector.
func (g *Graph) TargetsSym(src NodeID, sel Sym) []NodeID {
	var out []NodeID
	for _, e := range g.outRun(src) {
		if e.sel == sel {
			out = append(out, e.b)
		}
	}
	return out
}

// hasTarget reports whether src has at least one sel destination.
func (g *Graph) hasTarget(src NodeID, sel Sym) bool {
	for _, e := range g.outRun(src) {
		if e.sel == sel {
			return true
		}
	}
	return false
}

// soleTarget returns the single sel destination of src, or ok=false
// when there are zero or several.
func (g *Graph) soleTarget(src NodeID, sel Sym) (NodeID, bool) {
	run := g.outRun(src)
	for i, e := range run {
		if e.sel == sel {
			// Same-sel entries are contiguous.
			if i+1 < len(run) && run[i+1].sel == sel {
				return 0, false
			}
			return e.b, true
		}
	}
	return 0, false
}

// countTargets returns the number of sel destinations of src.
func (g *Graph) countTargets(src NodeID, sel Sym) int {
	n := 0
	for _, e := range g.outRun(src) {
		if e.sel == sel {
			n++
		}
	}
	return n
}

// Sources returns the sorted origins of sel links into dst.
func (g *Graph) Sources(dst NodeID, sel string) []NodeID {
	return g.SourcesSym(dst, selTab.lookup(sel))
}

// SourcesSym is Sources addressed by interned selector.
func (g *Graph) SourcesSym(dst NodeID, sel Sym) []NodeID {
	var out []NodeID
	for _, e := range g.inRun(dst) {
		if e.sel == sel {
			out = append(out, e.b)
		}
	}
	return out
}

// countSources returns the number of sel origins into dst.
func (g *Graph) countSources(dst NodeID, sel Sym) int {
	n := 0
	for _, e := range g.inRun(dst) {
		if e.sel == sel {
			n++
		}
	}
	return n
}

// OutSelectors returns the sorted selectors with at least one outgoing
// link from src. The returned slice is freshly allocated.
func (g *Graph) OutSelectors(src NodeID) []string {
	run := g.outRun(src)
	if len(run) == 0 {
		return nil
	}
	// The run is rank-ordered, so distinct selectors appear in name order.
	out := make([]string, 0, len(run))
	snap := selTab.load()
	var last Sym
	for _, e := range run {
		if e.sel != last {
			out = append(out, snap.names[e.sel-1])
			last = e.sel
		}
	}
	return out
}

// eachOutSelector calls f for every distinct selector out of src, in
// name order, without allocating.
func (g *Graph) eachOutSelector(src NodeID, f func(Sym)) {
	var last Sym
	for _, e := range g.outRun(src) {
		if e.sel != last {
			f(e.sel)
			last = e.sel
		}
	}
}

// inSelectorSyms appends the distinct selectors into dst to syms in
// name order.
func (g *Graph) inSelectorSyms(dst NodeID, syms []Sym) []Sym {
	run := g.inRun(dst)
	if len(run) == 0 {
		return syms
	}
	base := len(syms)
	for _, e := range run {
		dup := false
		for _, y := range syms[base:] {
			if y == e.sel {
				dup = true
				break
			}
		}
		if !dup {
			syms = append(syms, e.sel)
		}
	}
	// The run is (src, rank)-ordered, so dedup order is not name order.
	selTab.load().sortByRank(syms[base:])
	return syms
}

// InSelectors returns the sorted selectors with at least one incoming
// link into dst.
func (g *Graph) InSelectors(dst NodeID) []string {
	var tmp [8]Sym
	syms := g.inSelectorSyms(dst, tmp[:0])
	if len(syms) == 0 {
		return nil
	}
	out := make([]string, len(syms))
	snap := selTab.load()
	for i, y := range syms {
		out[i] = snap.names[y-1]
	}
	return out
}

// InLinks returns all links into dst, sorted by (Src, Sel).
func (g *Graph) InLinks(dst NodeID) []Link {
	run := g.inRun(dst)
	if len(run) == 0 {
		return nil
	}
	out := make([]Link, len(run))
	snap := selTab.load()
	for i, e := range run {
		out[i] = Link{Src: e.b, Sel: snap.names[e.sel-1], Dst: dst}
	}
	return out
}

// OutLinks returns all links out of src, sorted by (Sel, Dst).
func (g *Graph) OutLinks(src NodeID) []Link {
	run := g.outRun(src)
	if len(run) == 0 {
		return nil
	}
	out := make([]Link, len(run))
	snap := selTab.load()
	for i, e := range run {
		out[i] = Link{Src: src, Sel: snap.names[e.sel-1], Dst: e.b}
	}
	return out
}

// Links returns every NL entry, sorted by (Src, Sel, Dst). On a frozen
// graph the cached slice is returned; callers must not modify it.
func (g *Graph) Links() []Link {
	if g.frozen {
		return g.cLinks
	}
	if len(g.outE) == 0 {
		return nil
	}
	out := make([]Link, len(g.outE))
	snap := selTab.load()
	for i, e := range g.outE {
		out[i] = Link{Src: e.a, Sel: snap.names[e.sel-1], Dst: e.b}
	}
	return out
}

// ForEachLink calls f for every NL entry; the order is unspecified (use
// it when the order is irrelevant: cloning, counting).
func (g *Graph) ForEachLink(f func(Link)) {
	snap := selTab.load()
	for _, e := range g.outE {
		f(Link{Src: e.a, Sel: snap.names[e.sel-1], Dst: e.b})
	}
}

// RemoveNode deletes a node, all its links and any pvar references to it.
func (g *Graph) RemoveNode(id NodeID) {
	g.mustMutate("RemoveNode")
	i := g.posOf(id)
	if i < 0 {
		return
	}
	g.outE = filterEdges(g.outE, id)
	g.inE = filterEdges(g.inE, id)
	for j := len(g.pl) - 1; j >= 0; j-- {
		if g.pl[j].id == id {
			g.pl = append(g.pl[:j], g.pl[j+1:]...)
		}
	}
	g.ids = append(g.ids[:i], g.ids[i+1:]...)
	g.nodes = append(g.nodes[:i], g.nodes[i+1:]...)
}

// filterEdges removes every edge touching id, in place.
func filterEdges(edges []edge, id NodeID) []edge {
	out := edges[:0]
	for _, e := range edges {
		if e.a != id && e.b != id {
			out = append(out, e)
		}
	}
	return out
}

// HeapInDegree returns the number of distinct incoming links (any
// selector) into the node — heap references only, pvars excluded.
func (g *Graph) HeapInDegree(id NodeID) int { return len(g.inRun(id)) }

// String renders the graph in a compact deterministic text form.
func (g *Graph) String() string {
	var b strings.Builder
	b.WriteString("RSG{\n")
	for _, e := range g.pl {
		fmt.Fprintf(&b, "  %s -> n%d\n", pvarTab.name(e.sym), e.id)
	}
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	b.WriteString("}")
	return b.String()
}
