package rsg

import (
	"fmt"
	"sort"
	"strings"
)

// Link is one NL entry <Src, Sel, Dst>: locations represented by Src may
// reference locations represented by Dst through selector Sel.
type Link struct {
	Src NodeID
	Sel string
	Dst NodeID
}

// String renders the link as "<n1,sel,n2>".
func (l Link) String() string {
	return fmt.Sprintf("<n%d,%s,n%d>", l.Src, l.Sel, l.Dst)
}

// Graph is one Reference Shape Graph: RSG = (N, P, S, PL, NL).
// The pvar set P and selector set S are implicit (P is the domain the
// program declares; S is derivable from the type table); the graph
// stores N, PL and NL. Within one RSG a pvar references at most one
// node: a pointer variable holds a single value per concrete
// configuration and the abstract semantics keep the distinct
// possibilities in distinct RSGs of the RSRSG.
type Graph struct {
	nodes  map[NodeID]*Node
	pl     map[string]NodeID                         // pvar -> node
	out    map[NodeID]map[string]map[NodeID]struct{} // src -> sel -> dsts
	in     map[NodeID]map[string]map[NodeID]struct{} // dst -> sel -> srcs
	nextID NodeID
	nLinks int

	// Freeze contract (see freeze.go): once frozen, every mutating
	// method panics, the sorted views below are served from the caches
	// built at freeze time, and the canonical digest is memoized.
	// Callers must treat slices returned by a frozen graph as read-only.
	frozen   bool
	digest   Digest
	cIDs     []NodeID
	cPvars   []string
	cAlias   string
	cOutSels map[NodeID][]string
	cTargets map[NodeID]map[string][]NodeID
	cLinks   []Link
	cSPaths  map[NodeID]SPathSet
}

// NewGraph returns an empty RSG (no nodes; every pvar NULL).
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[NodeID]*Node),
		pl:    make(map[string]NodeID),
		out:   make(map[NodeID]map[string]map[NodeID]struct{}),
		in:    make(map[NodeID]map[string]map[NodeID]struct{}),
	}
}

// Clone returns a deep copy of the graph. Node IDs are preserved. The
// clone is always mutable, even when the receiver is frozen: cloning is
// the one sanctioned way to derive a new graph from a frozen handle.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.nextID = g.nextID
	for id, n := range g.nodes {
		c.nodes[id] = n.Clone()
	}
	for p, id := range g.pl {
		c.pl[p] = id
	}
	g.ForEachLink(func(l Link) { c.addLinkRaw(l) })
	return c
}

// AddNode inserts n into the graph, assigning it a fresh ID, and
// returns the node.
func (g *Graph) AddNode(n *Node) *Node {
	g.mustMutate("AddNode")
	g.nextID++
	n.ID = g.nextID
	g.nodes[n.ID] = n
	return n
}

// adoptNode inserts a node preserving its ID; used by clone-like
// operations that rebuild a graph from pieces of others.
func (g *Graph) adoptNode(n *Node) {
	g.mustMutate("adoptNode")
	g.nodes[n.ID] = n
	if n.ID > g.nextID {
		g.nextID = n.ID
	}
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id NodeID) *Node { return g.nodes[id] }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of NL entries.
func (g *Graph) NumLinks() int { return g.nLinks }

// NodeIDs returns all node IDs in ascending order. On a frozen graph
// the cached slice is returned; callers must not modify it.
func (g *Graph) NodeIDs() []NodeID {
	if g.frozen {
		return g.cIDs
	}
	ids := make([]int, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]NodeID, len(ids))
	for i, id := range ids {
		out[i] = NodeID(id)
	}
	return out
}

// Nodes returns all nodes ordered by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, id := range g.NodeIDs() {
		out = append(out, g.nodes[id])
	}
	return out
}

// SetPvar makes pvar reference the node with the given ID.
func (g *Graph) SetPvar(pvar string, id NodeID) {
	g.mustMutate("SetPvar")
	if _, ok := g.nodes[id]; !ok {
		panic(fmt.Sprintf("rsg: SetPvar(%s, n%d): no such node", pvar, id))
	}
	g.pl[pvar] = id
}

// ClearPvar makes pvar NULL.
func (g *Graph) ClearPvar(pvar string) {
	g.mustMutate("ClearPvar")
	delete(g.pl, pvar)
}

// PvarTarget returns the node a pvar references, or nil when the pvar
// is NULL.
func (g *Graph) PvarTarget(pvar string) *Node {
	id, ok := g.pl[pvar]
	if !ok {
		return nil
	}
	return g.nodes[id]
}

// Pvars returns the pvars with a non-NULL reference, sorted. On a
// frozen graph the cached slice is returned; callers must not modify it.
func (g *Graph) Pvars() []string {
	if g.frozen {
		return g.cPvars
	}
	out := make([]string, 0, len(g.pl))
	for p := range g.pl {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// PvarsOf returns the sorted pvars that reference the given node.
func (g *Graph) PvarsOf(id NodeID) []string {
	var out []string
	for p, t := range g.pl {
		if t == id {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// AddLink inserts the NL entry <src, sel, dst>. It is idempotent.
func (g *Graph) AddLink(src NodeID, sel string, dst NodeID) {
	g.mustMutate("AddLink")
	if _, ok := g.nodes[src]; !ok {
		panic(fmt.Sprintf("rsg: AddLink: no src node n%d", src))
	}
	if _, ok := g.nodes[dst]; !ok {
		panic(fmt.Sprintf("rsg: AddLink: no dst node n%d", dst))
	}
	g.addLinkRaw(Link{src, sel, dst})
}

func (g *Graph) addLinkRaw(l Link) {
	bySel := g.out[l.Src]
	if bySel == nil {
		bySel = make(map[string]map[NodeID]struct{})
		g.out[l.Src] = bySel
	}
	dsts := bySel[l.Sel]
	if dsts == nil {
		dsts = make(map[NodeID]struct{})
		bySel[l.Sel] = dsts
	}
	if _, dup := dsts[l.Dst]; !dup {
		g.nLinks++
	}
	dsts[l.Dst] = struct{}{}

	bySel = g.in[l.Dst]
	if bySel == nil {
		bySel = make(map[string]map[NodeID]struct{})
		g.in[l.Dst] = bySel
	}
	srcs := bySel[l.Sel]
	if srcs == nil {
		srcs = make(map[NodeID]struct{})
		bySel[l.Sel] = srcs
	}
	srcs[l.Src] = struct{}{}
}

// RemoveLink deletes the NL entry <src, sel, dst> if present.
func (g *Graph) RemoveLink(src NodeID, sel string, dst NodeID) {
	g.mustMutate("RemoveLink")
	if bySel := g.out[src]; bySel != nil {
		if dsts := bySel[sel]; dsts != nil {
			if _, had := dsts[dst]; had {
				g.nLinks--
			}
			delete(dsts, dst)
			if len(dsts) == 0 {
				delete(bySel, sel)
			}
		}
		if len(bySel) == 0 {
			delete(g.out, src)
		}
	}
	if bySel := g.in[dst]; bySel != nil {
		if srcs := bySel[sel]; srcs != nil {
			delete(srcs, src)
			if len(srcs) == 0 {
				delete(bySel, sel)
			}
		}
		if len(bySel) == 0 {
			delete(g.in, dst)
		}
	}
}

// HasLink reports whether <src, sel, dst> is in NL.
func (g *Graph) HasLink(src NodeID, sel string, dst NodeID) bool {
	if bySel := g.out[src]; bySel != nil {
		if dsts := bySel[sel]; dsts != nil {
			_, ok := dsts[dst]
			return ok
		}
	}
	return false
}

// Targets returns the sorted destinations of src through sel. On a
// frozen graph the cached slice is returned; callers must not modify it.
func (g *Graph) Targets(src NodeID, sel string) []NodeID {
	if g.frozen {
		return g.cTargets[src][sel]
	}
	bySel := g.out[src]
	if bySel == nil {
		return nil
	}
	dsts := bySel[sel]
	ids := make([]NodeID, 0, len(dsts))
	for id := range dsts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Sources returns the sorted origins of sel links into dst.
func (g *Graph) Sources(dst NodeID, sel string) []NodeID {
	bySel := g.in[dst]
	if bySel == nil {
		return nil
	}
	srcs := bySel[sel]
	ids := make([]NodeID, 0, len(srcs))
	for id := range srcs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// OutSelectors returns the sorted selectors with at least one outgoing
// link from src. On a frozen graph the cached slice is returned;
// callers must not modify it.
func (g *Graph) OutSelectors(src NodeID) []string {
	if g.frozen {
		return g.cOutSels[src]
	}
	bySel := g.out[src]
	out := make([]string, 0, len(bySel))
	for sel := range bySel {
		out = append(out, sel)
	}
	sort.Strings(out)
	return out
}

// InSelectors returns the sorted selectors with at least one incoming
// link into dst.
func (g *Graph) InSelectors(dst NodeID) []string {
	bySel := g.in[dst]
	out := make([]string, 0, len(bySel))
	for sel := range bySel {
		out = append(out, sel)
	}
	sort.Strings(out)
	return out
}

// InLinks returns all links into dst, sorted by (Sel, Src).
func (g *Graph) InLinks(dst NodeID) []Link {
	var links []Link
	for sel, srcs := range g.in[dst] {
		for src := range srcs {
			links = append(links, Link{src, sel, dst})
		}
	}
	sortLinks(links)
	return links
}

// OutLinks returns all links out of src, sorted by (Sel, Dst).
func (g *Graph) OutLinks(src NodeID) []Link {
	var links []Link
	for sel, dsts := range g.out[src] {
		for dst := range dsts {
			links = append(links, Link{src, sel, dst})
		}
	}
	sortLinks(links)
	return links
}

// Links returns every NL entry, sorted by (Src, Sel, Dst). The order is
// produced structurally (sorted nodes, then sorted selectors, then
// sorted targets) instead of one big comparison sort, because this is
// the hottest function of the analysis. On a frozen graph the cached
// slice is returned; callers must not modify it.
func (g *Graph) Links() []Link {
	if g.frozen {
		return g.cLinks
	}
	links := make([]Link, 0, 16)
	for _, src := range g.NodeIDs() {
		bySel := g.out[src]
		if len(bySel) == 0 {
			continue
		}
		for _, sel := range g.OutSelectors(src) {
			for _, dst := range g.Targets(src, sel) {
				links = append(links, Link{src, sel, dst})
			}
		}
	}
	return links
}

// ForEachLink calls f for every NL entry in unspecified order; use it
// when the order is irrelevant (cloning, counting).
func (g *Graph) ForEachLink(f func(Link)) {
	for src, bySel := range g.out {
		for sel, dsts := range bySel {
			for dst := range dsts {
				f(Link{src, sel, dst})
			}
		}
	}
}

func sortLinks(links []Link) {
	sort.Slice(links, func(i, j int) bool {
		a, b := links[i], links[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Sel != b.Sel {
			return a.Sel < b.Sel
		}
		return a.Dst < b.Dst
	})
}

// RemoveNode deletes a node, all its links and any pvar references to it.
func (g *Graph) RemoveNode(id NodeID) {
	g.mustMutate("RemoveNode")
	for _, l := range g.InLinks(id) {
		g.RemoveLink(l.Src, l.Sel, l.Dst)
	}
	for _, l := range g.OutLinks(id) {
		g.RemoveLink(l.Src, l.Sel, l.Dst)
	}
	for p, t := range g.pl {
		if t == id {
			delete(g.pl, p)
		}
	}
	delete(g.nodes, id)
}

// HeapInDegree returns the number of distinct incoming links (any
// selector) into the node — heap references only, pvars excluded.
func (g *Graph) HeapInDegree(id NodeID) int {
	n := 0
	for _, srcs := range g.in[id] {
		n += len(srcs)
	}
	return n
}

// String renders the graph in a compact deterministic text form.
func (g *Graph) String() string {
	var b strings.Builder
	b.WriteString("RSG{\n")
	for _, p := range g.Pvars() {
		fmt.Fprintf(&b, "  %s -> n%d\n", p, g.pl[p])
	}
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	b.WriteString("}")
	return b.String()
}
