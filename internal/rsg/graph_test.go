package rsg

import "testing"

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	b := g.AddNode(NewNode("t"))
	if a.ID == b.ID {
		t.Fatal("IDs must be unique")
	}
	g.SetPvar("x", a.ID)
	g.AddLink(a.ID, "nxt", b.ID)

	if g.NumNodes() != 2 || g.NumLinks() != 1 {
		t.Errorf("sizes: %d nodes %d links", g.NumNodes(), g.NumLinks())
	}
	if !g.HasLink(a.ID, "nxt", b.ID) || g.HasLink(b.ID, "nxt", a.ID) {
		t.Error("HasLink wrong")
	}
	if got := g.Targets(a.ID, "nxt"); len(got) != 1 || got[0] != b.ID {
		t.Errorf("Targets = %v", got)
	}
	if got := g.Sources(b.ID, "nxt"); len(got) != 1 || got[0] != a.ID {
		t.Errorf("Sources = %v", got)
	}
	if g.PvarTarget("x").ID != a.ID || g.PvarTarget("y") != nil {
		t.Error("PvarTarget wrong")
	}
	if got := g.PvarsOf(a.ID); len(got) != 1 || got[0] != "x" {
		t.Errorf("PvarsOf = %v", got)
	}
}

func TestGraphLinkCountMaintained(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	b := g.AddNode(NewNode("t"))
	g.AddLink(a.ID, "s", b.ID)
	g.AddLink(a.ID, "s", b.ID) // idempotent
	if g.NumLinks() != 1 {
		t.Errorf("duplicate add counted: %d", g.NumLinks())
	}
	g.RemoveLink(a.ID, "s", b.ID)
	g.RemoveLink(a.ID, "s", b.ID) // idempotent
	if g.NumLinks() != 0 {
		t.Errorf("count after removals: %d", g.NumLinks())
	}
}

func TestGraphRemoveNode(t *testing.T) {
	g, _, n2, _ := dlist(true)
	links := g.NumLinks()
	g.RemoveNode(n2.ID)
	if g.Node(n2.ID) != nil {
		t.Fatal("node still present")
	}
	for _, l := range g.Links() {
		if l.Src == n2.ID || l.Dst == n2.ID {
			t.Errorf("stale link %v", l)
		}
	}
	if g.NumLinks() >= links {
		t.Error("links not removed")
	}
}

func TestGraphCloneIndependence(t *testing.T) {
	g, n1, n2, _ := dlist(true)
	c := g.Clone()
	c.RemoveLink(n1.ID, "nxt", n2.ID)
	c.Node(n1.ID).Shared = true
	c.ClearPvar("x")
	if !g.HasLink(n1.ID, "nxt", n2.ID) {
		t.Error("clone shares links")
	}
	if g.Node(n1.ID).Shared {
		t.Error("clone shares nodes")
	}
	if g.PvarTarget("x") == nil {
		t.Error("clone shares pvars")
	}
	if Signature(c) == Signature(g) {
		t.Error("modified clone should differ")
	}
}

func TestReachableAndGC(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	b := g.AddNode(NewNode("t"))
	orphan := g.AddNode(NewNode("t"))
	g.SetPvar("x", a.ID)
	g.AddLink(a.ID, "s", b.ID)
	g.AddLink(orphan.ID, "s", b.ID)
	b.MarkDefiniteIn("s")

	removed := g.CollectGarbage()
	if removed != 1 || g.Node(orphan.ID) != nil {
		t.Fatalf("GC removed %d nodes", removed)
	}
	// The orphan's link into b demotes the definite SELIN entry.
	if b.SelIn.Has("s") {
		t.Error("definite SELIN must be demoted when its witness is collected")
	}
	if !b.PosSelIn.Has("s") {
		t.Error("the demoted entry must appear in PosSELIN")
	}
}

func TestDefiniteLink(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	b := g.AddNode(NewNode("t"))
	c := g.AddNode(NewNode("t"))
	a.Singleton = true
	g.AddLink(a.ID, "s", b.ID)

	if g.DefiniteLink(a.ID, "s", b.ID) {
		t.Error("without SELOUT the link is not definite")
	}
	a.MarkDefiniteOut("s")
	if !g.DefiniteLink(a.ID, "s", b.ID) {
		t.Error("definite link not recognized")
	}
	g.AddLink(a.ID, "s", c.ID)
	if g.DefiniteLink(a.ID, "s", b.ID) {
		t.Error("two candidate targets: not definite")
	}
	// Summary sources are never definite.
	d := g.AddNode(NewNode("t"))
	d.MarkDefiniteOut("s")
	g.AddLink(d.ID, "s", b.ID)
	if g.DefiniteLink(d.ID, "s", b.ID) {
		t.Error("summary source must not yield a definite link")
	}
}

func TestStructureOf(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	b := g.AddNode(NewNode("t"))
	c := g.AddNode(NewNode("t"))
	d := g.AddNode(NewNode("t"))
	g.SetPvar("x", a.ID)
	g.SetPvar("y", c.ID)
	g.AddLink(a.ID, "s", b.ID)

	st := g.StructureOf()
	if st[a.ID] != st[b.ID] {
		t.Error("connected nodes must share a structure id")
	}
	if st[a.ID] == st[c.ID] {
		t.Error("separate components must have different structure ids")
	}
	if st[c.ID] == st[d.ID] {
		t.Error("unreachable node must not share y's structure")
	}
}

func TestSPathOf(t *testing.T) {
	g, n1, n2, n3 := dlist(true)
	sp1 := g.SPathOf(n1.ID)
	if !sp1.Has(SPath{Pvar: "x"}) {
		t.Errorf("n1 SPATH missing <x,.>: %s", sp1)
	}
	// last->prv reaches both n1 and n2.
	if !sp1.Has(SPath{Pvar: "last", Sel: "prv"}) {
		t.Errorf("n1 SPATH missing <last,prv>: %s", sp1)
	}
	sp2 := g.SPathOf(n2.ID)
	if !sp2.Has(SPath{Pvar: "x", Sel: "nxt"}) || !sp2.Has(SPath{Pvar: "last", Sel: "prv"}) {
		t.Errorf("n2 SPATH = %s", sp2)
	}
	sp3 := g.SPathOf(n3.ID)
	if !sp3.Has(SPath{Pvar: "last"}) || !sp3.Has(SPath{Pvar: "x", Sel: "nxt"}) {
		t.Errorf("n3 SPATH = %s", sp3)
	}
	// SPaths (bulk) must agree with SPathOf.
	all := g.SPaths()
	for _, id := range g.NodeIDs() {
		if !all[id].Equal(g.SPathOf(id)) {
			t.Errorf("SPaths[%d] disagrees with SPathOf", id)
		}
	}
}

func TestHeapInDegree(t *testing.T) {
	g, n1, n2, _ := dlist(true)
	// n1 is referenced by n2.prv and n3.prv (heap) and by pvar x (not
	// counted).
	if d := g.HeapInDegree(n1.ID); d != 2 {
		t.Errorf("HeapInDegree(n1) = %d, want 2", d)
	}
	_ = n2
}
