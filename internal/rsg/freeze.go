package rsg

import (
	"sync"
	"sync/atomic"
)

// This file implements the freeze contract: a Graph can be frozen into
// an immutable handle, after which every mutating method panics, the
// sorted adjacency/pvar views are served from caches built once, and the
// canonical binary digest is memoized. Frozen graphs are safely
// shareable — between RSRSGs, across cache layers, and (in a future
// sharded engine) across goroutines, because no code path may write to
// them. The only way to derive a new graph from a frozen one is Clone,
// which returns an unfrozen deep copy.

// Freeze makes the graph immutable, builds the cached sorted views
// (NodeIDs, Pvars, OutSelectors, Targets, AliasKey) and computes the
// canonical digest. Freezing is idempotent; it returns the receiver for
// chaining.
func (g *Graph) Freeze() *Graph {
	if g.frozen {
		return g
	}
	cacheStats.digestsComputed.Add(1)
	return g.freezeWithDigest(computeDigest(g), nil)
}

// freezeWithDigest freezes g reusing an already-computed digest (Intern
// probes the digest before deciding whether the freeze is needed). The
// flat encoding already *is* the sorted view, so freezing only pins the
// few derived results that are expensive to recompute (alias key,
// SPATHs, name-resolved links, pvar names). rec, when non-nil, also
// attributes the freeze to one run's RunStats.
func (g *Graph) freezeWithDigest(d Digest, rec *RunStats) *Graph {
	g.cPvars = g.Pvars()
	g.cAlias = aliasKey(g)
	g.cLinks = g.Links()
	g.cSPaths = g.SPaths()
	g.frozen = true
	g.digest = d
	cacheStats.graphsFrozen.Add(1)
	rec.addFrozen()
	return g
}

// Frozen reports whether the graph has been frozen.
func (g *Graph) Frozen() bool { return g.frozen }

// mustMutate panics when the graph is frozen. Every mutating Graph
// method calls it, enforcing the "graphs inside a Set are immutable"
// contract with the type system instead of convention.
func (g *Graph) mustMutate(op string) {
	if g.frozen {
		panic("rsg: " + op + " on frozen graph (Clone before mutating)")
	}
}

// Digest returns the 128-bit canonical digest of the graph: two graphs
// have equal digests iff their Signatures are equal (up to hash
// collision, negligible at 128 bits). On a frozen graph the digest was
// memoized at freeze time and this is a field read; on a mutable graph
// it is recomputed from scratch on every call.
func (g *Graph) Digest() Digest {
	if g.frozen {
		cacheStats.digestHits.Add(1)
		return g.digest
	}
	cacheStats.digestsComputed.Add(1)
	return computeDigest(g)
}

// DigestEqual reports whether two graphs have the same canonical form,
// i.e. Signature(a) == Signature(b).
func DigestEqual(a, b *Graph) bool { return a.Digest() == b.Digest() }

// ---- interning ---------------------------------------------------------

// internCap bounds the global intern table; when a shard fills its
// share, that shard is reset wholesale (an epoch flip) so memory stays
// bounded while the steady-state working set of a fixed point keeps
// hitting.
const internCap = 1 << 15

// internShards splits the intern table by digest prefix so concurrent
// workers interning unrelated graphs do not serialize on one mutex.
// Structurally identical graphs always hash to the same shard (same
// digest), so the one-canonical-instance guarantee is per-digest and
// therefore global. Must be a power of two.
const internShards = 64

const internShardCap = internCap / internShards

// shard is one lock-striped slice of the intern table. The padding
// keeps neighbouring shard locks on distinct cache lines so they do not
// false-share under contention.
type shard struct {
	mu  sync.Mutex
	tab map[Digest]*Graph
	_   [40]byte
}

var internTab [internShards]shard

func internShard(d Digest) *shard {
	return &internTab[int(d[0])&(internShards-1)]
}

// Intern freezes g and returns the canonical instance for its digest:
// the first graph interned with a given canonical form is returned for
// every later structurally-identical graph, so signature-identical
// graphs created independently (e.g. by transfers at different program
// points) collapse to one shared immutable object.
//
// The digest is probed before freezing: a duplicate is discarded
// immediately, so only graphs that become the canonical instance pay
// for the freeze-time view construction.
//
// Intern is safe for concurrent use. The concurrency contract of the
// package is: frozen graphs are immutable and freely shareable across
// goroutines; an *unfrozen* graph (including the g passed here) must be
// owned by a single goroutine until it is frozen or interned.
func Intern(g *Graph) *Graph { return InternStats(g, nil) }

// internLocked inserts or retrieves the canonical instance for a frozen
// graph; the shard mutex must be held. rec, when non-nil, also
// attributes the hit/miss to one run's RunStats.
func (s *shard) internLocked(g *Graph, d Digest, rec *RunStats) *Graph {
	if old, ok := s.tab[d]; ok {
		if old == g {
			return g
		}
		cacheStats.internHits.Add(1)
		rec.addInternHit()
		return old
	}
	if s.tab == nil || len(s.tab) >= internShardCap {
		s.tab = make(map[Digest]*Graph, 64)
	}
	s.tab[d] = g
	cacheStats.internMisses.Add(1)
	rec.addInternMiss()
	return g
}

// ---- observability counters -------------------------------------------

// CacheStats is a snapshot of the package-global digest/freeze/intern
// counters. The counters only ever grow; subtract two snapshots (Sub)
// to attribute activity to one analysis run.
type CacheStats struct {
	// GraphsFrozen counts Graph.Freeze calls that froze a graph.
	GraphsFrozen uint64
	// DigestsComputed counts full digest computations (one per freeze,
	// plus any Digest call on an unfrozen graph).
	DigestsComputed uint64
	// DigestCacheHits counts Digest calls served from the frozen cache.
	DigestCacheHits uint64
	// InternHits counts Intern calls that returned an existing canonical
	// instance; InternMisses counts first-time interns.
	InternHits   uint64
	InternMisses uint64
	// PoolGets counts scratch-buffer checkouts from the canon/kernel
	// pools; PoolNews counts the subset that had to allocate a fresh
	// scratch (a low PoolNews/PoolGets ratio means the pools are doing
	// their job).
	PoolGets uint64
	PoolNews uint64
	// MaskSpills counts insertions of a >64th symbol into a bitmask set
	// (the rare spill-slice path of SelSet/PvarSet).
	MaskSpills uint64
}

var cacheStats struct {
	graphsFrozen    atomic.Uint64
	digestsComputed atomic.Uint64
	digestHits      atomic.Uint64
	internHits      atomic.Uint64
	internMisses    atomic.Uint64
	poolGets        atomic.Uint64
	poolNews        atomic.Uint64
	maskSpills      atomic.Uint64
}

// ReadCacheStats returns the current counter values.
func ReadCacheStats() CacheStats {
	return CacheStats{
		GraphsFrozen:    cacheStats.graphsFrozen.Load(),
		DigestsComputed: cacheStats.digestsComputed.Load(),
		DigestCacheHits: cacheStats.digestHits.Load(),
		InternHits:      cacheStats.internHits.Load(),
		InternMisses:    cacheStats.internMisses.Load(),
		PoolGets:        cacheStats.poolGets.Load(),
		PoolNews:        cacheStats.poolNews.Load(),
		MaskSpills:      cacheStats.maskSpills.Load(),
	}
}

// Sub returns the counter-wise difference s - base.
func (s CacheStats) Sub(base CacheStats) CacheStats {
	return CacheStats{
		GraphsFrozen:    s.GraphsFrozen - base.GraphsFrozen,
		DigestsComputed: s.DigestsComputed - base.DigestsComputed,
		DigestCacheHits: s.DigestCacheHits - base.DigestCacheHits,
		InternHits:      s.InternHits - base.InternHits,
		InternMisses:    s.InternMisses - base.InternMisses,
		PoolGets:        s.PoolGets - base.PoolGets,
		PoolNews:        s.PoolNews - base.PoolNews,
		MaskSpills:      s.MaskSpills - base.MaskSpills,
	}
}
