package rsg

import "fmt"

// Materialize extracts the single concrete location referenced by
// <src, sel> out of a summary node, the focusing step of the abstract
// semantics (the paper's Fig. 1(d), where node n4 is materialized from
// the summary n2 before the x->nxt link can be safely removed).
//
// Preconditions: src is a singleton node (pvar-referenced nodes always
// are) and, after DIVIDE, it has exactly one sel destination. When that
// destination is already a singleton, nothing needs to change and it is
// returned as-is.
//
// Otherwise the summary t is split into the materialized singleton
// n_mat (returned) and the remainder t (which keeps representing the
// other locations and may cover zero locations in some configurations —
// embeddings are not required to be surjective):
//
//   - <src, sel, t> is retargeted to n_mat.
//   - Every other incoming link of t is duplicated onto n_mat, except
//     incoming sel links when SHSEL(t, sel) is false: the materialized
//     location already carries its only sel reference.
//   - Every outgoing link of t is duplicated onto n_mat. Self links are
//     expanded over {n_mat, t} under the same SHSEL constraint.
//   - n_mat inherits t's properties, with sel added to its definite
//     SELIN set.
//
// The duplication is deliberately conservative; the caller runs PRUNE
// afterwards, and the CYCLELINKS/SHSEL rules cut the spurious links
// (exactly how the paper's example arrives at Fig. 1(d)).
func Materialize(g *Graph, src NodeID, sel string) NodeID {
	s := g.Node(src)
	if s == nil {
		panic(fmt.Sprintf("rsg: Materialize: no node n%d", src))
	}
	targets := g.Targets(src, sel)
	if len(targets) != 1 {
		panic(fmt.Sprintf("rsg: Materialize(n%d, %s): %d targets, want 1 (divide first)",
			src, sel, len(targets)))
	}
	tID := targets[0]
	t := g.Node(tID)
	if t.Singleton {
		return tID
	}

	exclusiveSel := !t.SharedBy(sel) // each location has at most one sel ref

	nm := t.Clone()
	nm.Singleton = true
	nm.MarkDefiniteIn(sel)
	nm = g.AddNode(nm)

	// Retarget the triggering link.
	g.RemoveLink(src, sel, tID)
	g.AddLink(src, sel, nm.ID)

	// Incoming links of t (excluding self links, handled below).
	for _, l := range g.InLinks(tID) {
		if l.Src == tID {
			continue
		}
		if l.Sel == sel && exclusiveSel {
			continue // n_mat's only sel reference is the one from src
		}
		g.AddLink(l.Src, l.Sel, nm.ID)
	}

	// Outgoing links of t (excluding self links).
	for _, l := range g.OutLinks(tID) {
		if l.Dst == tID {
			continue
		}
		g.AddLink(nm.ID, l.Sel, l.Dst)
	}

	// Self links <t, sel', t> expand over {n_mat, t}.
	for _, selPrime := range g.OutSelectors(tID) {
		if !g.HasLink(tID, selPrime, tID) {
			continue
		}
		blockedIntoNm := selPrime == sel && exclusiveSel
		// t -> n_mat
		if !blockedIntoNm {
			g.AddLink(tID, selPrime, nm.ID)
		}
		// n_mat -> t
		g.AddLink(nm.ID, selPrime, tID)
		// n_mat -> n_mat
		if !blockedIntoNm {
			g.AddLink(nm.ID, selPrime, nm.ID)
		}
	}

	return nm.ID
}
