package rsg

import "fmt"

// Materialize extracts the single concrete location referenced by
// <src, sel> out of a summary node, the focusing step of the abstract
// semantics (the paper's Fig. 1(d), where node n4 is materialized from
// the summary n2 before the x->nxt link can be safely removed).
//
// Preconditions: src is a singleton node (pvar-referenced nodes always
// are) and, after DIVIDE, it has exactly one sel destination. When that
// destination is already a singleton, nothing needs to change and it is
// returned as-is.
//
// Otherwise the summary t is split into the materialized singleton
// n_mat (returned) and the remainder t (which keeps representing the
// other locations and may cover zero locations in some configurations —
// embeddings are not required to be surjective):
//
//   - <src, sel, t> is retargeted to n_mat.
//   - Every other incoming link of t is duplicated onto n_mat, except
//     incoming sel links when SHSEL(t, sel) is false: the materialized
//     location already carries its only sel reference.
//   - Every outgoing link of t is duplicated onto n_mat. Self links are
//     expanded over {n_mat, t} under the same SHSEL constraint.
//   - n_mat inherits t's properties, with sel added to its definite
//     SELIN set.
//
// The duplication is deliberately conservative; the caller runs PRUNE
// afterwards, and the CYCLELINKS/SHSEL rules cut the spurious links
// (exactly how the paper's example arrives at Fig. 1(d)).
func Materialize(g *Graph, src NodeID, sel string) NodeID {
	return MaterializeSym(g, src, selTab.lookup(sel))
}

// MaterializeSym is Materialize addressed by interned selector.
func MaterializeSym(g *Graph, src NodeID, sel Sym) NodeID {
	s := g.Node(src)
	if s == nil {
		panic(fmt.Sprintf("rsg: Materialize: no node n%d", src))
	}
	tID, ok := g.soleTarget(src, sel)
	if !ok {
		panic(fmt.Sprintf("rsg: Materialize(n%d, %s): %d targets, want 1 (divide first)",
			src, selTab.name(sel), g.countTargets(src, sel)))
	}
	t := g.Node(tID)
	if t.Singleton {
		return tID
	}

	exclusiveSel := !t.SharedBySym(sel) // each location has at most one sel ref

	nm := t.Clone()
	nm.Singleton = true
	nm.MarkDefiniteInSym(sel)
	nm = g.AddNode(nm)

	// Retarget the triggering link.
	g.RemoveLinkSym(src, sel, tID)
	g.AddLinkSym(src, sel, nm.ID)

	// Snapshot t's links before duplicating: AddLink mutates the runs.
	ws := getWorkScratch()

	// Incoming links of t (excluding self links, handled below).
	ws.edges = append(ws.edges[:0], g.inRun(tID)...)
	for _, e := range ws.edges {
		if e.b == tID {
			continue
		}
		if e.sel == sel && exclusiveSel {
			continue // n_mat's only sel reference is the one from src
		}
		g.AddLinkSym(e.b, e.sel, nm.ID)
	}

	// Outgoing links of t (excluding self links).
	ws.edges = append(ws.edges[:0], g.outRun(tID)...)
	for _, e := range ws.edges {
		if e.b == tID {
			continue
		}
		g.AddLinkSym(nm.ID, e.sel, e.b)
	}

	// Self links <t, sel', t> expand over {n_mat, t}.
	for _, e := range ws.edges {
		if e.b != tID {
			continue
		}
		selPrime := e.sel
		blockedIntoNm := selPrime == sel && exclusiveSel
		// t -> n_mat
		if !blockedIntoNm {
			g.AddLinkSym(tID, selPrime, nm.ID)
		}
		// n_mat -> t
		g.AddLinkSym(nm.ID, selPrime, tID)
		// n_mat -> n_mat
		if !blockedIntoNm {
			g.AddLinkSym(nm.ID, selPrime, nm.ID)
		}
	}
	putWorkScratch(ws)

	return nm.ID
}
