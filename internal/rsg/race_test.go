package rsg

import (
	"sync"
	"testing"
)

// buildChain returns an unfrozen list-shaped graph of the given length
// whose canonical form depends only on length (and pvar name), so
// concurrent builders can create structurally identical graphs
// independently.
func buildChain(pvar string, length int) *Graph {
	g := NewGraph()
	var prev *Node
	for i := 0; i < length; i++ {
		n := NewNode("node")
		n.Singleton = true
		g.AddNode(n)
		if prev == nil {
			g.SetPvar(pvar, n.ID)
		} else {
			g.AddLink(prev.ID, "nxt", n.ID)
			prev.MarkDefiniteOut("nxt")
			n.MarkDefiniteIn("nxt")
		}
		prev = n
	}
	return g
}

// TestInternConcurrent hammers the sharded interner from many
// goroutines with a mix of identical and distinct graphs: every
// goroutine interning a structurally identical graph must receive the
// same canonical instance, and distinct shapes must stay distinct.
// Run with -race to exercise the shard locking.
func TestInternConcurrent(t *testing.T) {
	const goroutines = 16
	const shapes = 8
	const rounds = 50

	canon := make([][]*Graph, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got := make([]*Graph, shapes)
			for r := 0; r < rounds; r++ {
				for s := 0; s < shapes; s++ {
					g := Intern(buildChain("p", s+1))
					if got[s] == nil {
						got[s] = g
					} else if got[s] != g {
						// The shard may have epoch-flipped between
						// rounds, which legitimately changes the
						// canonical instance; digests must still agree.
						if got[s].Digest() != g.Digest() {
							t.Errorf("worker %d shape %d: digest changed across interns", w, s)
						}
						got[s] = g
					}
					if !g.Frozen() {
						t.Errorf("worker %d: interned graph not frozen", w)
					}
				}
			}
			canon[w] = got
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for s := 0; s < shapes; s++ {
		want := canon[0][s].Digest()
		for w := 1; w < goroutines; w++ {
			if canon[w][s].Digest() != want {
				t.Fatalf("shape %d: worker %d disagrees on canonical digest", s, w)
			}
		}
	}
	for s := 1; s < shapes; s++ {
		if canon[0][s].Digest() == canon[0][s-1].Digest() {
			t.Fatalf("shapes %d and %d collide", s-1, s)
		}
	}
}

// TestFrozenGraphSharedReads exercises the read paths of one frozen
// graph from many goroutines (the sharing pattern of the parallel
// engine); run with -race to verify freeze-time caches are safe to
// share.
func TestFrozenGraphSharedReads(t *testing.T) {
	g := buildChain("p", 6)
	g.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = g.Digest()
				_ = g.NodeIDs()
				_ = g.Pvars()
				_ = g.SPaths()
				_ = g.Links()
				_ = AliasKey(g)
				for _, id := range g.NodeIDs() {
					_ = g.Targets(id, "nxt")
					_ = g.OutSelectors(id)
				}
				c := g.Clone()
				if c.NumNodes() != g.NumNodes() {
					t.Error("clone lost nodes")
					return
				}
			}
		}()
	}
	wg.Wait()
}
