package rsg

import "testing"

// Micro-benchmarks of the core graph operations; the end-to-end
// Table 1 and figure benchmarks live in the repository root.

func BenchmarkSignature(b *testing.B) {
	g, _, _, _ := dlist(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Signature(g)
	}
}

// BenchmarkDigest measures computing the binary digest of a mutable
// graph (hashes the signature bytes on every call, no string built).
func BenchmarkDigest(b *testing.B) {
	g, _, _, _ := dlist(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Digest()
	}
}

// BenchmarkDigestFrozen measures the frozen fast path: the digest is
// memoized at freeze time, so this is a field read.
func BenchmarkDigestFrozen(b *testing.B) {
	g, _, _, _ := dlist(true)
	g.Freeze()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Digest()
	}
}

func BenchmarkClone(b *testing.B) {
	g, _, _, _ := dlist(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Clone()
	}
}

func BenchmarkCompressChain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, _ := chain(16)
		b.StartTimer()
		Compress(g, L1)
	}
}

func BenchmarkDivide(b *testing.B) {
	g, _, _, _ := dlist(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Divide(g, "x", "nxt")
	}
}

func BenchmarkPrune(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g, n1, _, _ := dlist(true)
		divs := Divide(g, "x", "nxt")
		branch := divs[0].G.Clone()
		Materialize(branch, n1.ID, "nxt")
		b.StartTimer()
		Prune(branch)
	}
}

func BenchmarkJoin(b *testing.B) {
	g1, _, _, _ := dlist(true)
	g2, _, _, _ := dlist(true)
	g2.Node(2).MarkPossibleOut("aux")
	if !Compatible(L1, g1, g2) {
		b.Fatal("fixture graphs must be compatible")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Join(L1, g1, g2)
	}
}

func BenchmarkMaterialize(b *testing.B) {
	g, n1, n2, _ := dlist(true)
	divs := Divide(g, "x", "nxt")
	var branch *Graph
	for _, d := range divs {
		if d.Target == n2.ID {
			branch = d.G
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := branch.Clone()
		_ = Materialize(c, n1.ID, "nxt")
	}
}
