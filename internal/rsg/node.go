package rsg

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within one Graph. IDs are never reused within
// a graph, which keeps traces and DOT dumps stable.
type NodeID int

// Node is one RSG node. A node represents one or more memory locations
// that share the properties below (Sect. 3 of the paper). The property
// fields SELIN/SELOUT/PosSELIN/PosSELOUT, SHARED/SHSEL, CYCLELINKS and
// TOUCH are analysis *state*: they are maintained by the abstract
// semantics and merged by MERGE_NODES, not recomputed from the graph
// (except for freshly materialized singleton nodes, where the graph is
// exact). STRUCTURE and SPATH are derived properties recomputed on
// demand (see derive.go).
type Node struct {
	ID NodeID

	// Type is the struct type of the represented locations (the TYPE
	// property). Nodes of different types are never summarized.
	Type string

	// Singleton reports that in every concrete configuration covered by
	// the graph this node stands for exactly one location. malloc and
	// materialization create singletons; intra-graph summarization
	// (COMPRESS) clears the flag; inter-graph JOIN preserves it when
	// both merged nodes are singletons.
	Singleton bool

	// Shared is the SHARED property: at least one represented location
	// may be referenced more than once from other memory locations
	// (pvar references do not count).
	Shared bool

	// ShSel is the per-selector share property SHSEL(n, sel): at least
	// one represented location may be referenced more than once through
	// selector sel. Only true entries are stored.
	ShSel SelSet

	// SelIn / SelOut are the definite reference-pattern sets: every
	// represented location is referenced through each selector in SelIn
	// and references another location through each selector in SelOut.
	SelIn  SelSet
	SelOut SelSet

	// PosSelIn / PosSelOut are the possible reference-pattern sets:
	// some (but not necessarily all) represented locations have the
	// reference. Kept disjoint from the definite sets.
	PosSelIn  SelSet
	PosSelOut SelSet

	// Cycle is the CYCLELINKS property: definite simple cycles
	// <sel_out, sel_in> every represented location participates in.
	Cycle CycleSet

	// Touch is the TOUCH property: the set of induction pvars that have
	// visited the represented locations inside the current loop nest.
	// Only maintained at analysis level L3.
	Touch PvarSet
}

// NewNode returns a fresh node of the given type with empty property
// sets. The caller assigns the ID via Graph.AddNode.
func NewNode(typ string) *Node {
	return &Node{Type: typ}
}

// Clone returns a deep copy of the node (same ID). The property sets
// are copy-on-write values, so this is a single allocation.
func (n *Node) Clone() *Node {
	c := *n
	return &c
}

// SharedBy reports SHSEL(n, sel).
func (n *Node) SharedBy(sel string) bool { return n.ShSel.Has(sel) }

// SharedBySym is SharedBy addressed by interned selector.
func (n *Node) SharedBySym(sel Sym) bool { return n.ShSel.HasSym(sel) }

// MarkDefiniteOut records that every represented location has an
// outgoing sel reference, demoting any "possible" entry.
func (n *Node) MarkDefiniteOut(sel string) { n.MarkDefiniteOutSym(selTab.intern(sel)) }

// MarkDefiniteOutSym is MarkDefiniteOut addressed by interned selector.
func (n *Node) MarkDefiniteOutSym(sel Sym) {
	n.SelOut.AddSym(sel)
	n.PosSelOut.RemoveSym(sel)
}

// MarkDefiniteIn records that every represented location has an
// incoming sel reference, demoting any "possible" entry.
func (n *Node) MarkDefiniteIn(sel string) { n.MarkDefiniteInSym(selTab.intern(sel)) }

// MarkDefiniteInSym is MarkDefiniteIn addressed by interned selector.
func (n *Node) MarkDefiniteInSym(sel Sym) {
	n.SelIn.AddSym(sel)
	n.PosSelIn.RemoveSym(sel)
}

// MarkPossibleOut records a possible outgoing sel reference unless the
// reference is already definite.
func (n *Node) MarkPossibleOut(sel string) { n.MarkPossibleOutSym(selTab.intern(sel)) }

// MarkPossibleOutSym is MarkPossibleOut addressed by interned selector.
func (n *Node) MarkPossibleOutSym(sel Sym) {
	if !n.SelOut.HasSym(sel) {
		n.PosSelOut.AddSym(sel)
	}
}

// MarkPossibleIn records a possible incoming sel reference unless the
// reference is already definite.
func (n *Node) MarkPossibleIn(sel string) { n.MarkPossibleInSym(selTab.intern(sel)) }

// MarkPossibleInSym is MarkPossibleIn addressed by interned selector.
func (n *Node) MarkPossibleInSym(sel Sym) {
	if !n.SelIn.HasSym(sel) {
		n.PosSelIn.AddSym(sel)
	}
}

// ClearOut removes sel from both outgoing reference-pattern sets.
func (n *Node) ClearOut(sel string) { n.ClearOutSym(selTab.lookup(sel)) }

// ClearOutSym is ClearOut addressed by interned selector.
func (n *Node) ClearOutSym(sel Sym) {
	n.SelOut.RemoveSym(sel)
	n.PosSelOut.RemoveSym(sel)
}

// ClearIn removes sel from both incoming reference-pattern sets.
func (n *Node) ClearIn(sel string) { n.ClearInSym(selTab.lookup(sel)) }

// ClearInSym is ClearIn addressed by interned selector.
func (n *Node) ClearInSym(sel Sym) {
	n.SelIn.RemoveSym(sel)
	n.PosSelIn.RemoveSym(sel)
}

// propertyKey returns a deterministic string encoding of the node's
// summarization-relevant intrinsic properties (everything C_NODES_RSG
// compares except STRUCTURE and SPATH, which depend on the graph).
func (n *Node) propertyKey() string {
	buf := make([]byte, 0, 64)
	buf = append(buf, n.Type...)
	buf = append(buf, '|')
	if n.Shared {
		buf = append(buf, 'S')
	} else {
		buf = append(buf, 's')
	}
	buf = append(buf, '|')
	buf = n.ShSel.appendTo(buf)
	buf = append(buf, '|')
	buf = n.SelIn.appendTo(buf)
	buf = append(buf, '|')
	buf = n.SelOut.appendTo(buf)
	buf = append(buf, '|')
	buf = n.Touch.appendTo(buf)
	return string(buf)
}

// String renders a compact human-readable description of the node.
func (n *Node) String() string {
	var flags []string
	if n.Singleton {
		flags = append(flags, "1")
	} else {
		flags = append(flags, "*")
	}
	if n.Shared {
		flags = append(flags, "shared")
	}
	if !n.ShSel.Empty() {
		flags = append(flags, "shsel="+n.ShSel.String())
	}
	if !n.Cycle.Empty() {
		flags = append(flags, "cyc="+n.Cycle.String())
	}
	if !n.Touch.Empty() {
		flags = append(flags, "touch="+n.Touch.String())
	}
	sort.Strings(flags[1:])
	return fmt.Sprintf("n%d:%s[%s in=%s/%s out=%s/%s]",
		n.ID, n.Type, strings.Join(flags, " "),
		n.SelIn, n.PosSelIn, n.SelOut, n.PosSelOut)
}
