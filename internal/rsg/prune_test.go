package rsg

import "testing"

func TestNPruneStaleOut(t *testing.T) {
	g := NewGraph()
	h := g.AddNode(NewNode("t"))
	h.Singleton = true
	g.SetPvar("x", h.ID)
	mid := g.AddNode(NewNode("t"))
	mid.MarkDefiniteOut("nxt") // definite out with no witnessing link
	g.AddLink(h.ID, "nxt", mid.ID)
	h.MarkDefiniteOut("nxt")
	mid.MarkDefiniteIn("nxt")

	// mid's unwitnessed definite SELOUT prunes mid; that removes the
	// witness of h's definite nxt reference, and since h is
	// pvar-referenced the whole graph collapses as infeasible — the
	// iterative cascade of Sect. 4.2.
	if Prune(g) {
		t.Fatalf("contradictory chain must make the graph infeasible:\n%s", g)
	}
	// A pvar-referenced node violating N_PRUNE directly is also
	// infeasible:
	g2 := NewGraph()
	h2 := g2.AddNode(NewNode("t"))
	h2.Singleton = true
	h2.MarkDefiniteOut("nxt")
	g2.SetPvar("x", h2.ID)
	if Prune(g2) {
		t.Error("pvar-referenced node violating N_PRUNE must make the graph infeasible")
	}
}

func TestNPruneStaleIn(t *testing.T) {
	g := NewGraph()
	h := g.AddNode(NewNode("t"))
	h.Singleton = true
	g.SetPvar("x", h.ID)
	a := g.AddNode(NewNode("t"))
	a.MarkDefiniteIn("prv") // nothing references a through prv
	g.AddLink(h.ID, "nxt", a.ID)
	a.MarkPossibleIn("nxt")
	h.MarkPossibleOut("nxt")

	if !Prune(g) {
		t.Fatal("feasible graph rejected")
	}
	if g.Node(a.ID) != nil {
		t.Errorf("node with unwitnessed definite SELIN must be pruned:\n%s", g)
	}
}

func TestNLPruneCycleRule(t *testing.T) {
	// a -s-> b with Cycle(a) = {<s,r>} but b has no r link back to a.
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	a.Singleton = true
	g.SetPvar("x", a.ID)
	b := g.AddNode(NewNode("t"))
	c := g.AddNode(NewNode("t"))
	g.AddLink(a.ID, "s", b.ID)
	g.AddLink(a.ID, "s", c.ID)
	a.MarkDefiniteOut("s")
	a.Cycle.Add(CyclePair{Out: "s", In: "r"})
	b.MarkPossibleIn("s")
	c.MarkPossibleIn("s")
	// Only c points back.
	g.AddLink(c.ID, "r", a.ID)
	c.MarkDefiniteOut("r")
	a.MarkPossibleIn("r")

	if !Prune(g) {
		t.Fatal("feasible graph rejected")
	}
	if g.HasLink(a.ID, "s", b.ID) {
		t.Error("link to non-cycle-closing candidate must be pruned")
	}
	if !g.HasLink(a.ID, "s", c.ID) {
		t.Error("cycle-closing link must survive")
	}
	if g.Node(b.ID) != nil {
		t.Error("b became unreachable and must be collected")
	}
}

func TestSharePruneSelector(t *testing.T) {
	// b not shared by s; a definite link exists; a second candidate
	// link must be evicted.
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	a.Singleton = true
	a.MarkDefiniteOut("s")
	g.SetPvar("x", a.ID)
	other := g.AddNode(NewNode("t"))
	other.MarkPossibleOut("s")
	g.SetPvar("y", other.ID)
	b := g.AddNode(NewNode("t"))
	b.Singleton = true
	b.MarkDefiniteIn("s")
	g.AddLink(a.ID, "s", b.ID)
	g.AddLink(other.ID, "s", b.ID)

	if !Prune(g) {
		t.Fatal("feasible graph rejected")
	}
	if g.HasLink(other.ID, "s", b.ID) {
		t.Errorf("SHSEL=false plus a definite link must evict other candidates:\n%s", g)
	}
	if !g.HasLink(a.ID, "s", b.ID) {
		t.Error("the definite link must survive")
	}
}

func TestSharePruneRespectsSharedFlag(t *testing.T) {
	// Same as above but b IS shared by s: both links stay.
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	a.Singleton = true
	a.MarkDefiniteOut("s")
	g.SetPvar("x", a.ID)
	other := g.AddNode(NewNode("t"))
	other.MarkPossibleOut("s")
	g.SetPvar("y", other.ID)
	b := g.AddNode(NewNode("t"))
	b.Singleton = true
	b.Shared = true
	b.ShSel.Add("s")
	b.MarkDefiniteIn("s")
	g.AddLink(a.ID, "s", b.ID)
	g.AddLink(other.ID, "s", b.ID)

	if !Prune(g) {
		t.Fatal("feasible graph rejected")
	}
	if !g.HasLink(other.ID, "s", b.ID) || !g.HasLink(a.ID, "s", b.ID) {
		t.Errorf("shared target keeps all incoming candidates:\n%s", g)
	}
}

func TestSharePruneTotal(t *testing.T) {
	// SHARED=false: one definite in-link evicts links through any other
	// selector too.
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	a.Singleton = true
	a.MarkDefiniteOut("s")
	g.SetPvar("x", a.ID)
	other := g.AddNode(NewNode("t"))
	other.MarkPossibleOut("r")
	g.SetPvar("y", other.ID)
	b := g.AddNode(NewNode("t"))
	b.Singleton = true
	b.MarkDefiniteIn("s")
	b.MarkPossibleIn("r")
	g.AddLink(a.ID, "s", b.ID)
	g.AddLink(other.ID, "r", b.ID)

	if !Prune(g) {
		t.Fatal("feasible graph rejected")
	}
	if g.HasLink(other.ID, "r", b.ID) {
		t.Errorf("unshared target with a definite reference admits no other in-links:\n%s", g)
	}
}

func TestPruneIdempotent(t *testing.T) {
	g, _, _, _ := dlist(true)
	if !Prune(g) {
		t.Fatal("dlist must be feasible")
	}
	sig := Signature(g)
	if !Prune(g) {
		t.Fatal("second prune rejected the graph")
	}
	if Signature(g) != sig {
		t.Error("prune must be idempotent on a stable graph")
	}
}

func TestPruneKeepsConsistentDlist(t *testing.T) {
	g, n1, n2, n3 := dlist(true)
	if !Prune(g) {
		t.Fatal("dlist must be feasible")
	}
	// The fixture is self-consistent: nothing may be removed.
	for _, l := range []Link{
		{n1.ID, "nxt", n2.ID}, {n1.ID, "nxt", n3.ID},
		{n2.ID, "nxt", n2.ID}, {n2.ID, "nxt", n3.ID},
		{n2.ID, "prv", n2.ID}, {n2.ID, "prv", n1.ID},
		{n3.ID, "prv", n2.ID}, {n3.ID, "prv", n1.ID},
	} {
		if !g.HasLink(l.Src, l.Sel, l.Dst) {
			t.Errorf("consistent link %v was pruned", l)
		}
	}
}
