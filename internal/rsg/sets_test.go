package rsg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSelSetBasics(t *testing.T) {
	s := NewSelSet("a", "b")
	if !s.Has("a") || !s.Has("b") || s.Has("c") {
		t.Error("membership wrong")
	}
	s.Add("c")
	s.Remove("a")
	if s.Has("a") || !s.Has("c") {
		t.Error("add/remove wrong")
	}
	if s.String() != "{b,c}" {
		t.Errorf("String = %s", s)
	}
}

func TestSelSetAlgebra(t *testing.T) {
	a := NewSelSet("x", "y")
	b := NewSelSet("y", "z")
	if u := a.Union(b); !u.Equal(NewSelSet("x", "y", "z")) {
		t.Errorf("union = %s", u)
	}
	if i := a.Intersect(b); !i.Equal(NewSelSet("y")) {
		t.Errorf("intersect = %s", i)
	}
	if m := a.Minus(b); !m.Equal(NewSelSet("x")) {
		t.Errorf("minus = %s", m)
	}
	// Clone independence.
	c := a.Clone()
	c.Add("w")
	if a.Has("w") {
		t.Error("clone aliases the original")
	}
}

func TestSelSetAlgebraProperties(t *testing.T) {
	// Property-based checks of the set algebra used by MERGE_NODES.
	gen := func(r *rand.Rand) SelSet {
		s := NewSelSet()
		for _, sel := range []string{"a", "b", "c", "d"} {
			if r.Intn(2) == 0 {
				s.Add(sel)
			}
		}
		return s
	}
	cfg := &quick.Config{MaxCount: 200}

	// Union is commutative; intersection distributes over union.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		left := a.Intersect(b.Union(c))
		right := a.Intersect(b).Union(a.Intersect(c))
		return left.Equal(right)
	}, cfg); err != nil {
		t.Error(err)
	}

	// (A ∪ B) \ (A ∩ B) == symmetric difference parts.
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		sym := a.Union(b).Minus(a.Intersect(b))
		want := a.Minus(b).Union(b.Minus(a))
		return sym.Equal(want)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestPvarSetBasics(t *testing.T) {
	s := NewPvarSet("p", "q")
	if !s.Equal(NewPvarSet("q", "p")) {
		t.Error("order must not matter")
	}
	if s.Equal(NewPvarSet("p")) {
		t.Error("different sizes must differ")
	}
	if s.String() != "{p,q}" {
		t.Errorf("String = %s", s)
	}
}

func TestCycleSetBasics(t *testing.T) {
	s := NewCycleSet(CyclePair{Out: "nxt", In: "prv"})
	if !s.Has(CyclePair{Out: "nxt", In: "prv"}) {
		t.Error("missing pair")
	}
	if s.Has(CyclePair{Out: "prv", In: "nxt"}) {
		t.Error("pairs are ordered")
	}
	s.Add(CyclePair{Out: "a", In: "b"})
	if s.String() != "{<a,b>,<nxt,prv>}" {
		t.Errorf("String = %s", s)
	}
	c := s.Clone()
	c.Remove(CyclePair{Out: "a", In: "b"})
	if !s.Has(CyclePair{Out: "a", In: "b"}) {
		t.Error("clone aliases the original")
	}
}

func TestSPathBasics(t *testing.T) {
	zero := SPath{Pvar: "p"}
	one := SPath{Pvar: "p", Sel: "nxt"}
	if zero.Len() != 0 || one.Len() != 1 {
		t.Error("lengths wrong")
	}
	s := NewSPathSet(zero, one, SPath{Pvar: "q", Sel: "prv"})
	if z := s.ZeroLen(); z.Len() != 1 || !z.Has(zero) {
		t.Errorf("ZeroLen = %s", z)
	}
	if o := s.OneLen(); o.Len() != 2 {
		t.Errorf("OneLen = %s", o)
	}
	if !s.Intersects(NewSPathSet(one)) {
		t.Error("Intersects false negative")
	}
	if s.Intersects(NewSPathSet(SPath{Pvar: "z"})) {
		t.Error("Intersects false positive")
	}
	if s.String() != "{<p,.>,<p,nxt>,<q,prv>}" {
		t.Errorf("String = %s", s)
	}
}

func TestCSPathModes(t *testing.T) {
	// Same zero paths, disjoint one paths.
	a := NewSPathSet(SPath{Pvar: "p", Sel: "nxt"})
	b := NewSPathSet(SPath{Pvar: "q", Sel: "prv"})
	if !CSPath(a, b, 0) {
		t.Error("C_SPATH0 only compares zero-length paths")
	}
	if CSPath(a, b, 1) {
		t.Error("C_SPATH1 must reject disjoint one-length path sets")
	}
	// Shared one path.
	c := NewSPathSet(SPath{Pvar: "p", Sel: "nxt"}, SPath{Pvar: "r", Sel: "s"})
	if !CSPath(a, c, 1) {
		t.Error("C_SPATH1 must accept sets sharing a one-length path")
	}
	// Both empty one-length sets.
	e1, e2 := NewSPathSet(), NewSPathSet()
	if !CSPath(e1, e2, 1) {
		t.Error("C_SPATH1 must accept two empty sets")
	}
	// Different zero paths always incompatible.
	z1 := NewSPathSet(SPath{Pvar: "p"})
	z2 := NewSPathSet(SPath{Pvar: "q"})
	if CSPath(z1, z2, 0) || CSPath(z1, z2, 1) {
		t.Error("different zero-length paths must be incompatible")
	}
}
