package rsg

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the package-level symbol table (DESIGN.md §10).
// Selector, pvar and type names are interned to dense small-int Sym IDs
// in three separate namespaces, so the hot representation (bitmask sets,
// flat edge lists) can work on integers while pretty-printing recovers
// the names through the reverse mapping.
//
// Tables are append-only and process-global, like the intern table: the
// IR of a program is finite and known after parsing, so the working set
// stabilizes immediately and lookups are lock-free reads of an atomic
// snapshot. Canonical emission never depends on Sym *values* — only on
// the name order recovered via the snapshot's rank array — so digests
// are independent of interning order and identical to the pre-Sym
// encoding byte for byte.

// Sym is an interned symbol ID within one namespace (selectors, pvars
// or type names). 0 is reserved for "no symbol"; valid Syms start at 1.
type Sym uint32

// symSnap is one immutable published state of a namespace. rank[s-1] is
// the position of name s in the lexicographic order of all interned
// names: for any fixed set of Syms the rank order equals the name
// order, and later interns never reorder existing symbols relative to
// each other.
type symSnap struct {
	names []string
	rank  []int32
	index map[string]Sym
}

type symSpace struct {
	mu   sync.Mutex
	snap atomic.Pointer[symSnap]
}

var (
	selTab  symSpace
	pvarTab symSpace
	typeTab symSpace
)

// intern returns the Sym for name, assigning the next free ID on first
// sight. The fast path is a lock-free map probe of the current snapshot.
func (t *symSpace) intern(name string) Sym {
	if snap := t.snap.Load(); snap != nil {
		if s, ok := snap.index[name]; ok {
			return s
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.snap.Load()
	var names []string
	if old != nil {
		if s, ok := old.index[name]; ok {
			return s
		}
		names = old.names
	}
	n := len(names)
	next := make([]string, n+1)
	copy(next, names)
	next[n] = name
	index := make(map[string]Sym, n+1)
	for i, nm := range next {
		index[nm] = Sym(i + 1)
	}
	order := make([]int, n+1)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return next[order[a]] < next[order[b]] })
	rank := make([]int32, n+1)
	for r, i := range order {
		rank[i] = int32(r)
	}
	t.snap.Store(&symSnap{names: next, rank: rank, index: index})
	return Sym(n + 1)
}

// lookup returns the Sym for name without interning, or 0.
func (t *symSpace) lookup(name string) Sym {
	if snap := t.snap.Load(); snap != nil {
		return snap.index[name]
	}
	return 0
}

// name returns the interned name of s ("" for Sym 0).
func (t *symSpace) name(s Sym) string {
	if s == 0 {
		return ""
	}
	return t.snap.Load().names[s-1]
}

// load returns the current snapshot (nil before the first intern).
func (t *symSpace) load() *symSnap { return t.snap.Load() }

// rankOf returns the lexicographic rank of s in the given snapshot.
func (snap *symSnap) rankOf(s Sym) int32 { return snap.rank[s-1] }

// sortByRank orders syms by their interned name (insertion sort: the
// slices here are property sets and selector runs, nearly always tiny).
func (snap *symSnap) sortByRank(syms []Sym) {
	for i := 1; i < len(syms); i++ {
		for j := i; j > 0 && snap.rank[syms[j]-1] < snap.rank[syms[j-1]-1]; j-- {
			syms[j], syms[j-1] = syms[j-1], syms[j]
		}
	}
}

// SelSym interns a selector name.
func SelSym(name string) Sym { return selTab.intern(name) }

// SelName returns the selector name of s.
func SelName(s Sym) string { return selTab.name(s) }

// PvarSym interns a pointer-variable name.
func PvarSym(name string) Sym { return pvarTab.intern(name) }

// PvarName returns the pvar name of s.
func PvarName(s Sym) string { return pvarTab.name(s) }

// TypeSym interns a struct type name.
func TypeSym(name string) Sym { return typeTab.intern(name) }

// TypeName returns the type name of s.
func TypeName(s Sym) string { return typeTab.name(s) }

// SymCounts reports the number of interned selectors, pvars and type
// names (for `-stats` style dumps).
func SymCounts() (sels, pvars, types int) {
	if s := selTab.load(); s != nil {
		sels = len(s.names)
	}
	if s := pvarTab.load(); s != nil {
		pvars = len(s.names)
	}
	if s := typeTab.load(); s != nil {
		types = len(s.names)
	}
	return
}
