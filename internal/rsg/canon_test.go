package rsg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSignatureIgnoresNodeIDs(t *testing.T) {
	// Build the same structure twice with different insertion orders.
	build := func(reverse bool) *Graph {
		g := NewGraph()
		var a, b *Node
		if reverse {
			b = g.AddNode(NewNode("t"))
			a = g.AddNode(NewNode("t"))
		} else {
			a = g.AddNode(NewNode("t"))
			b = g.AddNode(NewNode("t"))
		}
		a.Singleton = true
		a.MarkDefiniteOut("s")
		b.MarkDefiniteIn("s")
		g.SetPvar("x", a.ID)
		g.AddLink(a.ID, "s", b.ID)
		return g
	}
	if Signature(build(false)) != Signature(build(true)) {
		t.Error("signature must not depend on node insertion order")
	}
	if Hash(build(false)) != Hash(build(true)) {
		t.Error("hash must not depend on node insertion order")
	}
}

func TestSignatureDistinguishesProperties(t *testing.T) {
	g1 := oneNode("t", "x")
	g2 := oneNode("t", "x")
	g2.PvarTarget("x").Shared = true
	if Signature(g1) == Signature(g2) {
		t.Error("SHARED must be part of the signature")
	}
	g3 := oneNode("t", "x")
	g3.PvarTarget("x").Touch.Add("p")
	if Signature(g1) == Signature(g3) {
		t.Error("TOUCH must be part of the signature")
	}
	g4 := oneNode("u", "x")
	if Signature(g1) == Signature(g4) {
		t.Error("TYPE must be part of the signature")
	}
}

func TestSignatureDistinguishesLinks(t *testing.T) {
	g1, _, _, _ := dlist(true)
	g2, n1, n2, _ := dlist(true)
	g2.RemoveLink(n1.ID, "nxt", n2.ID)
	if Signature(g1) == Signature(g2) {
		t.Error("links must be part of the signature")
	}
}

func TestSignatureStableUnderClone(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		return Signature(g) == Signature(g.Clone())
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

// randomGraph builds a small random RSG with pvars anchoring it.
func randomGraph(r *rand.Rand) *Graph {
	g := NewGraph()
	n := 2 + r.Intn(5)
	nodes := make([]*Node, n)
	types := []string{"a", "b"}
	sels := []string{"s", "u"}
	for i := range nodes {
		nd := NewNode(types[r.Intn(len(types))])
		nd.Singleton = r.Intn(2) == 0
		if r.Intn(3) == 0 {
			nd.Shared = true
		}
		g.AddNode(nd)
		nodes[i] = nd
	}
	g.SetPvar("p", nodes[0].ID)
	if r.Intn(2) == 0 {
		g.SetPvar("q", nodes[r.Intn(n)].ID)
	}
	links := r.Intn(2 * n)
	for i := 0; i < links; i++ {
		src := nodes[r.Intn(n)]
		dst := nodes[r.Intn(n)]
		sel := sels[r.Intn(len(sels))]
		g.AddLink(src.ID, sel, dst.ID)
		src.MarkPossibleOut(sel)
		dst.MarkPossibleIn(sel)
	}
	return g
}

func TestCanonicalOrderCoversAllNodes(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)))
		cs := getCanonScratch()
		canonicalOrder(g, cs)
		order := make([]NodeID, len(cs.order))
		for i, pos := range cs.order {
			order[i] = g.ids[pos]
		}
		putCanonScratch(cs)
		if len(order) != g.NumNodes() {
			return false
		}
		seen := map[NodeID]bool{}
		for _, id := range order {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}
