package rsg

import "sync"

// canonScratch is the reusable working state of one signature/digest
// computation (DESIGN.md §10). Everything in it is position-indexed
// (parallel to Graph.ids), grown as needed and recycled through a
// sync.Pool: digesting is the per-freeze hot path and must not allocate
// proportionally to the graph on every call.
//
// Pool discipline: a scratch may only be used between get/put by one
// goroutine, and nothing reachable from it may escape — byte slices are
// copied (or hashed) before put, and pointerful slices are cleared so
// the pool does not pin dead graphs.
type canonScratch struct {
	spaths  []SPathSet
	local   []string
	idx     []int32
	seen    []bool
	order   []int // canonical order, as positions into Graph.ids
	queue   []int
	targets []int
	dsts    []int
	buf     []byte // descriptor scratch
	sig     []byte // signature accumulation buffer
}

var canonPool = sync.Pool{New: func() any {
	cacheStats.poolNews.Add(1)
	return new(canonScratch)
}}

func getCanonScratch() *canonScratch {
	cacheStats.poolGets.Add(1)
	return canonPool.Get().(*canonScratch)
}

func putCanonScratch(cs *canonScratch) {
	// Drop references into the graph we just encoded; keep capacities.
	for i := range cs.spaths {
		cs.spaths[i] = SPathSet{}
	}
	for i := range cs.local {
		cs.local[i] = ""
	}
	cs.spaths = cs.spaths[:0]
	cs.local = cs.local[:0]
	cs.idx = cs.idx[:0]
	cs.seen = cs.seen[:0]
	cs.order = cs.order[:0]
	cs.queue = cs.queue[:0]
	cs.targets = cs.targets[:0]
	cs.dsts = cs.dsts[:0]
	cs.buf = cs.buf[:0]
	cs.sig = cs.sig[:0]
	canonPool.Put(cs)
}

// workScratch is the reusable working state of the mutation kernels
// (PRUNE, garbage collection, COMPRESS). Same pool discipline as
// canonScratch: single-goroutine use between get/put, nothing escapes.
type workScratch struct {
	marks   []bool
	stack   []int
	nodeIDs []NodeID
	edges   []edge
}

var workPool = sync.Pool{New: func() any {
	cacheStats.poolNews.Add(1)
	return new(workScratch)
}}

func getWorkScratch() *workScratch {
	cacheStats.poolGets.Add(1)
	return workPool.Get().(*workScratch)
}

func putWorkScratch(ws *workScratch) {
	ws.marks = ws.marks[:0]
	ws.stack = ws.stack[:0]
	ws.nodeIDs = ws.nodeIDs[:0]
	ws.edges = ws.edges[:0]
	workPool.Put(ws)
}

// grow returns s resized to n, reusing capacity.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func growStrings(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	return s[:n]
}

func growSPathSets(s []SPathSet, n int) []SPathSet {
	if cap(s) < n {
		s = make([]SPathSet, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = SPathSet{}
	}
	return s
}
