package rsg

import "testing"

// oneNode builds a graph with a single typed node referenced by the
// given pvars.
func oneNode(typ string, pvars ...string) *Graph {
	g := NewGraph()
	n := NewNode(typ)
	n.Singleton = true
	g.AddNode(n)
	for _, p := range pvars {
		g.SetPvar(p, n.ID)
	}
	return g
}

func TestAliasKey(t *testing.T) {
	g1 := oneNode("t", "x", "y")
	g2 := oneNode("t", "y", "x")
	if AliasKey(g1) != AliasKey(g2) {
		t.Error("alias key must be order independent")
	}
	g3 := oneNode("t", "x")
	if AliasKey(g1) == AliasKey(g3) {
		t.Error("different alias partitions must have different keys")
	}
	// NULL-ness matters: y bound vs unbound.
	g4 := NewGraph()
	a := g4.AddNode(NewNode("t"))
	b := g4.AddNode(NewNode("t"))
	g4.SetPvar("x", a.ID)
	g4.SetPvar("y", b.ID)
	if AliasKey(g1) == AliasKey(g4) {
		t.Error("aliased vs separate pvars must differ")
	}
}

func TestCompatibleRequiresAlias(t *testing.T) {
	g1 := oneNode("t", "x", "y")
	g2 := oneNode("t", "x")
	if Compatible(L1, g1, g2) {
		t.Error("different alias relations are incompatible")
	}
	g3 := oneNode("t", "x", "y")
	if !Compatible(L1, g1, g3) {
		t.Error("identical graphs must be compatible")
	}
}

func TestCompatibleRequiresShareAgreement(t *testing.T) {
	g1 := oneNode("t", "x")
	g2 := oneNode("t", "x")
	g2.PvarTarget("x").Shared = true
	if Compatible(L1, g1, g2) {
		t.Error("SHARED mismatch on pvar targets must block the join")
	}
	g2.PvarTarget("x").Shared = false
	g2.PvarTarget("x").ShSel.Add("nxt")
	if Compatible(L1, g1, g2) {
		t.Error("SHSEL mismatch on pvar targets must block the join")
	}
}

func TestCompatibleTouchAtL3(t *testing.T) {
	g1 := oneNode("t", "x")
	g2 := oneNode("t", "x")
	g2.PvarTarget("x").Touch.Add("p")
	if !Compatible(L2, g1, g2) {
		t.Error("TOUCH is ignored below L3")
	}
	if Compatible(L3, g1, g2) {
		t.Error("TOUCH mismatch must block the join at L3")
	}
}

func TestJoinMergesPvarTargets(t *testing.T) {
	// g1: x -> a (a has out s); g2: x -> b (b has no links).
	g1 := oneNode("t", "x")
	a := g1.PvarTarget("x")
	c := g1.AddNode(NewNode("u"))
	a.MarkDefiniteOut("s")
	g1.AddLink(a.ID, "s", c.ID)
	cNode := g1.Node(c.ID)
	cNode.MarkDefiniteIn("s")

	g2 := oneNode("t", "x")

	if !Compatible(L1, g1, g2) {
		t.Fatal("graphs should be compatible (join gate ignores refpat)")
	}
	j := Join(L1, g1, g2)
	xt := j.PvarTarget("x")
	if xt == nil {
		t.Fatal("x lost in join")
	}
	// Merged node: s definite in only one input -> possible in result.
	if xt.SelOut.Has("s") {
		t.Error("SELOUT must intersect to empty")
	}
	if !xt.PosSelOut.Has("s") {
		t.Error("s must be a possible out selector after the merge")
	}
	// Links of both inputs survive (translated).
	if j.NumLinks() != 1 {
		t.Errorf("joined graph has %d links, want 1", j.NumLinks())
	}
	if j.NumNodes() != 2 {
		t.Errorf("joined graph has %d nodes, want 2", j.NumNodes())
	}
}

func TestJoinCoversBothInputs(t *testing.T) {
	// Joining a 1-chain and a 2-chain graph: result must embed both
	// shapes (checked structurally: head with and without out link).
	g1 := oneNode("t", "h")
	g2 := NewGraph()
	h := NewNode("t")
	h.Singleton = true
	h.MarkDefiniteOut("nxt")
	g2.AddNode(h)
	tl := NewNode("t")
	tl.Singleton = true
	tl.MarkDefiniteIn("nxt")
	g2.AddNode(tl)
	g2.AddLink(h.ID, "nxt", tl.ID)
	g2.SetPvar("h", h.ID)

	if !Compatible(L1, g1, g2) {
		t.Fatal("expected compatible")
	}
	j := Join(L1, g1, g2)
	ht := j.PvarTarget("h")
	if ht == nil {
		t.Fatal("h lost")
	}
	// nxt must be possible (present in g2, absent in g1).
	if ht.SelOut.Has("nxt") || !ht.PosSelOut.Has("nxt") {
		t.Errorf("join lost the optional nxt reference: %s", ht)
	}
}

func TestJoinPreservesTotalPvars(t *testing.T) {
	g1 := oneNode("t", "x", "y")
	g2 := oneNode("t", "x", "y")
	j := Join(L1, g1, g2)
	if j.PvarTarget("x") == nil || j.PvarTarget("y") == nil {
		t.Error("pvars lost in join")
	}
	if j.PvarTarget("x").ID != j.PvarTarget("y").ID {
		t.Error("alias relation broken by join")
	}
}
