package rsg

import (
	"strings"
	"testing"
)

func TestDOTOutput(t *testing.T) {
	g, n1, n2, _ := dlist(true)
	n2.Touch.Add("p")
	out := DOT(g, "fig1")
	for _, want := range []string{
		`digraph "fig1"`,
		"pv_x -> n1",
		"pv_last -> n3",
		`label="nxt"`,
		`label="prv"`,
		"peripheries=2", // the summary node
		"touch={p}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	_ = n1
}

func TestDOTSharedShading(t *testing.T) {
	g := oneNode("t", "x")
	g.PvarTarget("x").Shared = true
	out := DOT(g, "s")
	if !strings.Contains(out, "fillcolor") {
		t.Errorf("shared nodes must be shaded:\n%s", out)
	}
}

func TestSanitizeDot(t *testing.T) {
	g := NewGraph()
	n := g.AddNode(NewNode("t"))
	g.SetPvar("__t1_node", n.ID)
	out := DOT(g, "weird name-with.dots")
	if !strings.Contains(out, "pv___t1_node") {
		t.Errorf("pvar name not sanitized:\n%s", out)
	}
}

func TestGraphStringDeterministic(t *testing.T) {
	g, _, _, _ := dlist(true)
	if g.String() != g.String() {
		t.Error("String must be deterministic")
	}
	if !strings.Contains(g.String(), "x -> n1") {
		t.Errorf("String output:\n%s", g)
	}
}
