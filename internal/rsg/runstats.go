package rsg

import "sync/atomic"

// RunStats is a per-run recorder for the digest/freeze/intern counters.
// The package-global cacheStats tallies are whole-process truth; a
// process running several analyses at once (the daemon's steady state)
// cannot attribute a global delta to one run. Callers that want exact
// attribution allocate one RunStats per run and pass it through the
// recorder-aware entry points (InternStats, DigestStats); every
// recorded operation bumps both the recorder and the global counters,
// so ReadCacheStats stays complete while Snapshot is run-exact.
//
// A nil *RunStats is valid everywhere and records nothing.
type RunStats struct {
	graphsFrozen    atomic.Uint64
	digestsComputed atomic.Uint64
	digestHits      atomic.Uint64
	internHits      atomic.Uint64
	internMisses    atomic.Uint64
}

func (r *RunStats) addFrozen() {
	if r != nil {
		r.graphsFrozen.Add(1)
	}
}

func (r *RunStats) addComputed() {
	if r != nil {
		r.digestsComputed.Add(1)
	}
}

func (r *RunStats) addDigestHit() {
	if r != nil {
		r.digestHits.Add(1)
	}
}

func (r *RunStats) addInternHit() {
	if r != nil {
		r.internHits.Add(1)
	}
}

func (r *RunStats) addInternMiss() {
	if r != nil {
		r.internMisses.Add(1)
	}
}

// Snapshot returns the recorded counters in CacheStats form. Only the
// per-run-attributable fields are populated; PoolGets/PoolNews/
// MaskSpills stay zero — the scratch pools and mask spill paths are
// process-shared infrastructure with no per-run identity, so those
// tallies remain global-only.
func (r *RunStats) Snapshot() CacheStats {
	if r == nil {
		return CacheStats{}
	}
	return CacheStats{
		GraphsFrozen:    r.graphsFrozen.Load(),
		DigestsComputed: r.digestsComputed.Load(),
		DigestCacheHits: r.digestHits.Load(),
		InternHits:      r.internHits.Load(),
		InternMisses:    r.internMisses.Load(),
	}
}

// DigestStats is Digest with per-run attribution: the computation (or
// frozen-cache hit) is recorded into rec as well as the global
// counters. A nil rec makes it identical to Digest.
func (g *Graph) DigestStats(rec *RunStats) Digest {
	if g.frozen {
		cacheStats.digestHits.Add(1)
		rec.addDigestHit()
		return g.digest
	}
	cacheStats.digestsComputed.Add(1)
	rec.addComputed()
	return computeDigest(g)
}

// InternStats is Intern with per-run attribution: the digest
// computation, freeze, and intern hit/miss are recorded into rec as
// well as the global counters. A nil rec makes it identical to Intern.
func InternStats(g *Graph, rec *RunStats) *Graph {
	if g.frozen {
		s := internShard(g.digest)
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.internLocked(g, g.digest, rec)
	}
	d := g.DigestStats(rec)
	s := internShard(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.tab[d]; ok {
		cacheStats.internHits.Add(1)
		rec.addInternHit()
		return old
	}
	g.freezeWithDigest(d, rec)
	return s.internLocked(g, d, rec)
}
