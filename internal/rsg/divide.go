package rsg

// Division is one result of DIVIDE: a pruned graph in which the node
// referenced by the dividing pvar has a single destination through the
// dividing selector. Target is that destination, or -1 for the branch
// in which the selector is NULL.
type Division struct {
	G      *Graph
	Target NodeID
}

// Divide implements the paper's DIVIDE(rsg, x, sel) operation
// (Sect. 4.1): the graph is split into one graph per possible
// destination of x->sel, so that each resulting graph carries a single
// <n, sel, n_i> link out of x's node. Each result is pruned; infeasible
// branches are dropped.
//
// Beyond the paper's formula, a NULL branch (all <n, sel, *> links
// removed) is produced when the selector is not definite in x's node's
// SELOUT set: the summarized configurations may include ones where
// x->sel is NULL, and a sound abstract semantics must account for them.
//
// The pvar x must reference a node; callers handle the x == NULL case
// (a would-be NULL dereference) before dividing.
func Divide(g *Graph, x string, sel string) []Division {
	return DivideSym(g, pvarTab.lookup(x), selTab.lookup(sel))
}

// DivideSym is Divide addressed by interned pvar and selector.
func DivideSym(g *Graph, x, sel Sym) []Division {
	return divideSym(g, x, sel, Prune)
}

// DivideLegacyShareSym is DivideSym with the pre-anchoring PRUNE on the
// division branches (see PruneLegacyShare); only the triage ablation
// routes here.
func DivideLegacyShareSym(g *Graph, x, sel Sym) []Division {
	return divideSym(g, x, sel, PruneLegacyShare)
}

func divideSym(g *Graph, x, sel Sym, pruneFn func(*Graph) bool) []Division {
	n := g.PvarTargetSym(x)
	if n == nil {
		return nil
	}
	targets := g.TargetsSym(n.ID, sel)
	var out []Division

	for _, t := range targets {
		gi := g.Clone()
		for _, other := range targets {
			if other != t {
				gi.RemoveLinkSym(n.ID, sel, other)
			}
		}
		// In this branch the reference definitely exists and has this
		// single destination.
		src := gi.Node(n.ID)
		src.MarkDefiniteOutSym(sel)
		dst := gi.Node(t)
		if dst.Singleton {
			dst.MarkDefiniteInSym(sel)
		} else {
			dst.MarkPossibleInSym(sel)
		}
		if pruneFn(gi) {
			out = append(out, Division{G: gi, Target: t})
		}
	}

	if !n.SelOut.HasSym(sel) {
		// NULL branch: x->sel may be NULL in some covered configuration.
		gi := g.Clone()
		for _, t := range targets {
			gi.RemoveLinkSym(n.ID, sel, t)
		}
		src := gi.Node(n.ID)
		src.ClearOutSym(sel)
		for _, t := range targets {
			if dst := gi.Node(t); dst != nil && dst.Singleton {
				gi.RefreshSingleton(t)
			}
		}
		if pruneFn(gi) {
			out = append(out, Division{G: gi, Target: -1})
		}
	}
	return out
}
