package rsg

// MergeNodes implements the paper's MERGE_NODES(n1, n2) = n (Sect. 3.1).
// It builds the summary node that stands for all locations of n1 and n2.
// g1 and g2 supply the NL context of each node for the CYCLELINKS merge
// rule; for intra-graph summarization they are the same graph. The
// returned node has no ID; the caller installs it.
//
// Property rules, verbatim from the paper:
//
//	SELINset(n)     = SELINset(n1) ∩ SELINset(n2)
//	SELOUTset(n)    = SELOUTset(n1) ∩ SELOUTset(n2)
//	PosSELINset(n)  = (SELINset(n1) ∪ SELINset(n2) ∪ PosSELINset(n1)
//	                   ∪ PosSELINset(n2)) \ SELINset(n)
//	PosSELOUTset(n) = symmetric
//	CYCLELINKS(n)   = pairs in both, plus a pair of one node whose first
//	                  selector is not a link selector of the other node
//
// TYPE, STRUCTURE, SHARED, SHSEL and TOUCH must already agree for the
// merge to be allowed (C_NODES/C_NODES_RSG); they carry over. SHSEL and
// SHARED are taken as the disjunction anyway so that the function stays
// conservative if a caller merges under a weaker predicate.
//
// intraGraph reports whether the two nodes belong to the same RSG
// (COMPRESS): then the summary stands for several locations at once and
// loses the Singleton flag. Across graphs (JOIN) the merged node is
// still a per-configuration singleton when both inputs are.
func MergeNodes(g1 *Graph, n1 *Node, g2 *Graph, n2 *Node, intraGraph bool) *Node {
	n := NewNode(n1.Type)

	n.Singleton = n1.Singleton && n2.Singleton && !intraGraph

	n.Shared = n1.Shared || n2.Shared
	n.ShSel = n1.ShSel.Union(n2.ShSel)

	n.SelIn = n1.SelIn.Intersect(n2.SelIn)
	n.SelOut = n1.SelOut.Intersect(n2.SelOut)
	n.PosSelIn = n1.SelIn.Union(n2.SelIn).
		Union(n1.PosSelIn).Union(n2.PosSelIn).
		Minus(n.SelIn)
	n.PosSelOut = n1.SelOut.Union(n2.SelOut).
		Union(n1.PosSelOut).Union(n2.PosSelOut).
		Minus(n.SelOut)

	n.Cycle = mergeCycleLinks(g1, n1, g2, n2)

	// TOUCH must be equal under C_NODES at L3; at lower levels it is
	// unused. Union keeps the merge conservative either way.
	n.Touch = n1.Touch.Union(n2.Touch)
	return n
}

// mergeCycleLinks applies the paper's CYCLELINKS merge rule. A pair
// survives when it is present in both nodes, or when it is present in
// one node and the other node has no outgoing link through the pair's
// first selector (so the rule is vacuously true for its locations).
func mergeCycleLinks(g1 *Graph, n1 *Node, g2 *Graph, n2 *Node) CycleSet {
	var out CycleSet
	hasOut := func(g *Graph, n *Node, sel string) bool {
		if g == nil {
			return true // no context: keep only common pairs
		}
		return g.hasTarget(n.ID, selTab.lookup(sel))
	}
	for _, p := range n1.Cycle.Sorted() {
		if n2.Cycle.Has(p) || !hasOut(g2, n2, p.Out) {
			out.Add(p)
		}
	}
	for _, p := range n2.Cycle.Sorted() {
		if n1.Cycle.Has(p) || !hasOut(g1, n1, p.Out) {
			out.Add(p)
		}
	}
	return out
}

// MergeCompNodes folds a group of pairwise chain-compatible nodes of one
// graph into a single summary node, the paper's MERGE_COMP_NODES.
func MergeCompNodes(g *Graph, nodes []*Node, intraGraph bool) *Node {
	if len(nodes) == 0 {
		return nil
	}
	acc := nodes[0]
	for _, n := range nodes[1:] {
		merged := MergeNodes(g, acc, g, n, intraGraph)
		// Give the accumulator a transient identity inside g for the
		// CYCLELINKS context checks of subsequent merges: the first
		// node's links act as the representative (conservative).
		merged.ID = nodes[0].ID
		acc = merged
	}
	return acc
}
