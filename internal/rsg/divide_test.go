package rsg

import "testing"

func TestDivideNullBranchOnly(t *testing.T) {
	// x's node has no sel links and sel not definite: single NULL branch.
	g := oneNode("t", "x")
	divs := Divide(g, "x", "s")
	if len(divs) != 1 || divs[0].Target != -1 {
		t.Fatalf("divs = %+v, want one NULL branch", divs)
	}
}

func TestDivideDefiniteNoNullBranch(t *testing.T) {
	g, _, _, _ := slist()
	divs := Divide(g, "head", "nxt")
	for _, d := range divs {
		if d.Target == -1 {
			t.Error("nxt is definite in SELOUT(head): no NULL branch expected")
		}
	}
	if len(divs) != 2 {
		t.Errorf("expected 2 branches (middle summary, tail), got %d", len(divs))
	}
}

func TestDividePossibleSelAddsNullBranch(t *testing.T) {
	// h -s-> a with s only possible: target branch + NULL branch.
	g := NewGraph()
	h := NewNode("t")
	h.Singleton = true
	h.MarkPossibleOut("s")
	g.AddNode(h)
	a := NewNode("t")
	a.MarkPossibleIn("s")
	g.AddNode(a)
	g.AddLink(h.ID, "s", a.ID)
	g.SetPvar("x", h.ID)

	divs := Divide(g, "x", "s")
	var nullBranch, targetBranch bool
	for _, d := range divs {
		if d.Target == -1 {
			nullBranch = true
			// The NULL branch drops the possible-out marker and the
			// unreachable target.
			if d.G.Node(a.ID) != nil {
				t.Errorf("NULL branch must collect the unreachable target:\n%s", d.G)
			}
		} else {
			targetBranch = true
			// In the kept branch the reference is definite.
			if !d.G.Node(h.ID).SelOut.Has("s") {
				t.Error("kept branch must promote s to definite SELOUT")
			}
		}
	}
	if !nullBranch || !targetBranch {
		t.Errorf("want both branches, got %+v", divs)
	}
}

func TestDivideOnNullPvar(t *testing.T) {
	g := NewGraph()
	if divs := Divide(g, "x", "s"); divs != nil {
		t.Errorf("dividing through a NULL pvar must yield nothing, got %d", len(divs))
	}
}

func TestDivideDoesNotMutateInput(t *testing.T) {
	g, _, _, _ := dlist(true)
	sig := Signature(g)
	Divide(g, "x", "nxt")
	if Signature(g) != sig {
		t.Error("Divide must not mutate its input")
	}
}

func TestMaterializeSingletonIsIdentity(t *testing.T) {
	g := NewGraph()
	a := NewNode("t")
	a.Singleton = true
	a.MarkDefiniteOut("s")
	g.AddNode(a)
	b := NewNode("t")
	b.Singleton = true
	b.MarkDefiniteIn("s")
	g.AddNode(b)
	g.AddLink(a.ID, "s", b.ID)
	g.SetPvar("x", a.ID)

	if got := Materialize(g, a.ID, "s"); got != b.ID {
		t.Errorf("materializing a singleton target must return it, got n%d", got)
	}
	if g.NumNodes() != 2 {
		t.Error("no node may be created")
	}
}

func TestMaterializeSummaryProperties(t *testing.T) {
	g, h, m, _ := slist()
	// Divide first: keep only the head -> middle branch.
	divs := Divide(g, "head", "nxt")
	var branch *Graph
	for _, d := range divs {
		if d.Target == m.ID {
			branch = d.G
		}
	}
	if branch == nil {
		t.Fatal("no branch targeting the middle summary")
	}
	nm := Materialize(branch, h.ID, "nxt")
	if nm == m.ID {
		t.Fatal("expected a fresh materialized node")
	}
	n := branch.Node(nm)
	if !n.Singleton {
		t.Error("materialized node must be singleton")
	}
	if !n.SelIn.Has("nxt") {
		t.Error("materialized node definitely has the triggering reference")
	}
	// The summary keeps representing the other locations.
	if branch.Node(m.ID) == nil {
		t.Error("the remainder summary must survive")
	}
	// x's reference is retargeted exclusively.
	ts := branch.Targets(h.ID, "nxt")
	if len(ts) != 1 || ts[0] != nm {
		t.Errorf("head nxt targets = %v, want [%d]", ts, nm)
	}
	// SHSEL(m, nxt) = false: no other nxt link may enter the
	// materialized node.
	if srcs := branch.Sources(nm, "nxt"); len(srcs) != 1 || srcs[0] != h.ID {
		t.Errorf("materialized node nxt sources = %v, want only the head", srcs)
	}
}

func TestMaterializePanicsWithoutDivision(t *testing.T) {
	g := NewGraph()
	a := NewNode("t")
	a.Singleton = true
	g.AddNode(a)
	b := g.AddNode(NewNode("t"))
	c := g.AddNode(NewNode("t"))
	g.AddLink(a.ID, "s", b.ID)
	g.AddLink(a.ID, "s", c.ID)
	g.SetPvar("x", a.ID)
	defer func() {
		if recover() == nil {
			t.Error("Materialize with two candidate targets must panic (divide first)")
		}
	}()
	Materialize(g, a.ID, "s")
}
