package rsg

// Test fixtures shared across the rsg test files.

// dlist builds the paper's Fig. 1(a) RSG: a doubly-linked list of two
// or more elements, with pvar x referencing the first element and
// (optionally) pvar last referencing the final one.
//
//	n1: first element   (singleton)
//	n2: middle elements (summary)
//	n3: last element    (singleton)
//
// Links: n1 -nxt-> {n2,n3}; n2 -nxt-> {n2,n3}; n2 -prv-> {n2,n1};
// n3 -prv-> {n2,n1}.
func dlist(withLast bool) (*Graph, *Node, *Node, *Node) {
	g := NewGraph()

	n1 := NewNode("elem")
	n1.Singleton = true
	n1.MarkDefiniteIn("prv")
	n1.MarkDefiniteOut("nxt")
	n1.Cycle.Add(CyclePair{Out: "nxt", In: "prv"})
	g.AddNode(n1)

	n2 := NewNode("elem")
	n2.Singleton = false
	n2.Shared = true // middles carry one nxt-in and one prv-in reference
	n2.MarkDefiniteIn("nxt")
	n2.MarkDefiniteIn("prv")
	n2.MarkDefiniteOut("nxt")
	n2.MarkDefiniteOut("prv")
	n2.Cycle.Add(CyclePair{Out: "nxt", In: "prv"})
	n2.Cycle.Add(CyclePair{Out: "prv", In: "nxt"})
	g.AddNode(n2)

	n3 := NewNode("elem")
	n3.Singleton = true
	n3.MarkDefiniteIn("nxt")
	n3.MarkDefiniteOut("prv")
	n3.Cycle.Add(CyclePair{Out: "prv", In: "nxt"})
	g.AddNode(n3)

	g.AddLink(n1.ID, "nxt", n2.ID)
	g.AddLink(n1.ID, "nxt", n3.ID)
	g.AddLink(n2.ID, "nxt", n2.ID)
	g.AddLink(n2.ID, "nxt", n3.ID)
	g.AddLink(n2.ID, "prv", n2.ID)
	g.AddLink(n2.ID, "prv", n1.ID)
	g.AddLink(n3.ID, "prv", n2.ID)
	g.AddLink(n3.ID, "prv", n1.ID)

	g.SetPvar("x", n1.ID)
	if withLast {
		g.SetPvar("last", n3.ID)
	}
	return g, n1, n2, n3
}

// slist builds a singly-linked list RSG of two or more elements with
// pvar head at the front:
//
//	h: first element (singleton), m: middles (summary), t: last (singleton)
func slist() (*Graph, *Node, *Node, *Node) {
	g := NewGraph()

	h := NewNode("node")
	h.Singleton = true
	h.MarkDefiniteOut("nxt")
	g.AddNode(h)

	m := NewNode("node")
	m.MarkDefiniteIn("nxt")
	m.MarkDefiniteOut("nxt")
	g.AddNode(m)

	t := NewNode("node")
	t.Singleton = true
	t.MarkDefiniteIn("nxt")
	g.AddNode(t)

	g.AddLink(h.ID, "nxt", m.ID)
	g.AddLink(h.ID, "nxt", t.ID)
	g.AddLink(m.ID, "nxt", m.ID)
	g.AddLink(m.ID, "nxt", t.ID)

	g.SetPvar("head", h.ID)
	return g, h, m, t
}
