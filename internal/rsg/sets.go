// Package rsg implements Reference Shape Graphs (RSGs), the core
// abstraction of Corbera, Asenjo and Zapata, "Progressive Shape Analysis
// for Real C Codes" (ICPP 2001).
//
// An RSG is a finite graph that over-approximates a set of concrete
// memory configurations. Nodes summarize memory locations that share a
// set of properties (type, structure, reference pattern, share
// information, cycle links, simple paths and touch sets); edges record
// pointer-variable references (PL) and selector links between nodes (NL).
//
// The package provides the graph operations the paper defines:
// COMPRESS (node summarization, Sect. 3.1), DIVIDE (Sect. 4.1),
// PRUNE (Sect. 4.2), JOIN (Sect. 4.3) and the materialization step used
// by the abstract semantics (Fig. 1(d)).
package rsg

import (
	"math/bits"
	"sort"
	"strings"
)

// bitset is the shared core of the symbol sets: Syms 1..64 live in a
// 64-bit mask, larger Syms spill into a sorted slice. Mutations of the
// spill are copy-on-write, so a plain struct copy of a set (Node.Clone
// shares the slices) can never be corrupted by later mutations of
// either copy; the mask is a value and copies trivially.
type bitset struct {
	mask  uint64
	spill []Sym // sorted ascending; Syms > 64 only
}

func (s bitset) hasSym(y Sym) bool {
	if y == 0 {
		return false
	}
	if y <= 64 {
		return s.mask&(1<<(y-1)) != 0
	}
	i := sort.Search(len(s.spill), func(i int) bool { return s.spill[i] >= y })
	return i < len(s.spill) && s.spill[i] == y
}

func (s *bitset) addSym(y Sym) {
	if y == 0 {
		return
	}
	if y <= 64 {
		s.mask |= 1 << (y - 1)
		return
	}
	i := sort.Search(len(s.spill), func(i int) bool { return s.spill[i] >= y })
	if i < len(s.spill) && s.spill[i] == y {
		return
	}
	cacheStats.maskSpills.Add(1)
	next := make([]Sym, len(s.spill)+1)
	copy(next, s.spill[:i])
	next[i] = y
	copy(next[i+1:], s.spill[i:])
	s.spill = next
}

func (s *bitset) removeSym(y Sym) {
	if y == 0 {
		return
	}
	if y <= 64 {
		s.mask &^= 1 << (y - 1)
		return
	}
	i := sort.Search(len(s.spill), func(i int) bool { return s.spill[i] >= y })
	if i >= len(s.spill) || s.spill[i] != y {
		return
	}
	next := make([]Sym, 0, len(s.spill)-1)
	next = append(next, s.spill[:i]...)
	next = append(next, s.spill[i+1:]...)
	if len(next) == 0 {
		next = nil
	}
	s.spill = next
}

func (s bitset) size() int { return bits.OnesCount64(s.mask) + len(s.spill) }

func (s bitset) empty() bool { return s.mask == 0 && len(s.spill) == 0 }

func (s bitset) equal(o bitset) bool {
	if s.mask != o.mask || len(s.spill) != len(o.spill) {
		return false
	}
	for i, y := range s.spill {
		if o.spill[i] != y {
			return false
		}
	}
	return true
}

// eachSym calls f for every member in ascending Sym order.
func (s bitset) eachSym(f func(Sym)) {
	m := s.mask
	for m != 0 {
		b := bits.TrailingZeros64(m)
		f(Sym(b + 1))
		m &= m - 1
	}
	for _, y := range s.spill {
		f(y)
	}
}

func (s bitset) union(o bitset) bitset {
	out := bitset{mask: s.mask | o.mask, spill: mergeSpills(s.spill, o.spill)}
	return out
}

func (s bitset) intersect(o bitset) bitset {
	out := bitset{mask: s.mask & o.mask}
	if len(s.spill) > 0 && len(o.spill) > 0 {
		for _, y := range s.spill {
			if o.hasSym(y) {
				out.spill = append(out.spill, y)
			}
		}
	}
	return out
}

func (s bitset) minus(o bitset) bitset {
	out := bitset{mask: s.mask &^ o.mask}
	for _, y := range s.spill {
		if !o.hasSym(y) {
			out.spill = append(out.spill, y)
		}
	}
	return out
}

func (s bitset) intersects(o bitset) bool {
	if s.mask&o.mask != 0 {
		return true
	}
	for _, y := range s.spill {
		if o.hasSym(y) {
			return true
		}
	}
	return false
}

func mergeSpills(a, b []Sym) []Sym {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]Sym, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// collectSyms appends the members to dst in ascending Sym order.
func (s bitset) collectSyms(dst []Sym) []Sym {
	m := s.mask
	for m != 0 {
		b := bits.TrailingZeros64(m)
		dst = append(dst, Sym(b+1))
		m &= m - 1
	}
	return append(dst, s.spill...)
}

// sortedNames returns the member names in lexicographic order.
func (s bitset) sortedNames(t *symSpace) []string {
	n := s.size()
	if n == 0 {
		return nil
	}
	var tmp [16]Sym
	syms := s.collectSyms(tmp[:0])
	snap := t.load()
	snap.sortByRank(syms)
	out := make([]string, n)
	for i, y := range syms {
		out[i] = snap.names[y-1]
	}
	return out
}

// appendNames appends "{a,b,c}" with names in lexicographic order — the
// canonical signature element format, byte-identical to the map-based
// encoding this replaced.
func (s bitset) appendNames(t *symSpace, buf []byte) []byte {
	buf = append(buf, '{')
	if !s.empty() {
		var tmp [16]Sym
		syms := s.collectSyms(tmp[:0])
		snap := t.load()
		snap.sortByRank(syms)
		for i, y := range syms {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, snap.names[y-1]...)
		}
	}
	return append(buf, '}')
}

// SelSet is a set of selector names (struct pointer fields), stored as
// a bitmask over interned selector Syms with a rare spill slice for
// programs with more than 64 distinct selectors.
type SelSet struct {
	b bitset
}

// NewSelSet builds a selector set from the given names.
func NewSelSet(sels ...string) SelSet {
	var s SelSet
	for _, sel := range sels {
		s.Add(sel)
	}
	return s
}

// Has reports whether sel is in the set.
func (s SelSet) Has(sel string) bool { return s.b.hasSym(selTab.lookup(sel)) }

// HasSym reports whether the interned selector y is in the set.
func (s SelSet) HasSym(y Sym) bool { return s.b.hasSym(y) }

// Add inserts sel into the set.
func (s *SelSet) Add(sel string) { s.b.addSym(selTab.intern(sel)) }

// AddSym inserts the interned selector y into the set.
func (s *SelSet) AddSym(y Sym) { s.b.addSym(y) }

// Remove deletes sel from the set.
func (s *SelSet) Remove(sel string) { s.b.removeSym(selTab.lookup(sel)) }

// RemoveSym deletes the interned selector y from the set.
func (s *SelSet) RemoveSym(y Sym) { s.b.removeSym(y) }

// Len returns the number of selectors in the set.
func (s SelSet) Len() int { return s.b.size() }

// Empty reports whether the set has no members.
func (s SelSet) Empty() bool { return s.b.empty() }

// Clone returns an independent copy of the set.
func (s SelSet) Clone() SelSet { return s } // mutations are copy-on-write

// Equal reports whether two sets hold the same selectors.
func (s SelSet) Equal(o SelSet) bool { return s.b.equal(o.b) }

// Union returns a new set with all elements of s and o.
func (s SelSet) Union(o SelSet) SelSet { return SelSet{s.b.union(o.b)} }

// Intersect returns a new set with the elements common to s and o.
func (s SelSet) Intersect(o SelSet) SelSet { return SelSet{s.b.intersect(o.b)} }

// Minus returns a new set with the elements of s not in o.
func (s SelSet) Minus(o SelSet) SelSet { return SelSet{s.b.minus(o.b)} }

// EachSym calls f for every member in ascending Sym order.
func (s SelSet) EachSym(f func(Sym)) { s.b.eachSym(f) }

// Sorted returns the selectors in lexicographic order.
func (s SelSet) Sorted() []string { return s.b.sortedNames(&selTab) }

// String renders the set as "{a,b,c}" with sorted elements.
func (s SelSet) String() string { return string(s.appendTo(make([]byte, 0, 16))) }

// appendTo appends the String form to buf without intermediate strings;
// used by the signature/digest encoder.
func (s SelSet) appendTo(buf []byte) []byte { return s.b.appendNames(&selTab, buf) }

// PvarSet is a set of pointer-variable names (bitmask over interned
// pvar Syms). It is used for TOUCH sets and for alias groups.
type PvarSet struct {
	b bitset
}

// NewPvarSet builds a pvar set from the given names.
func NewPvarSet(pvars ...string) PvarSet {
	var s PvarSet
	for _, p := range pvars {
		s.Add(p)
	}
	return s
}

// Has reports whether p is in the set.
func (s PvarSet) Has(p string) bool { return s.b.hasSym(pvarTab.lookup(p)) }

// HasSym reports whether the interned pvar y is in the set.
func (s PvarSet) HasSym(y Sym) bool { return s.b.hasSym(y) }

// Add inserts p into the set.
func (s *PvarSet) Add(p string) { s.b.addSym(pvarTab.intern(p)) }

// AddSym inserts the interned pvar y into the set.
func (s *PvarSet) AddSym(y Sym) { s.b.addSym(y) }

// Remove deletes p from the set.
func (s *PvarSet) Remove(p string) { s.b.removeSym(pvarTab.lookup(p)) }

// RemoveSym deletes the interned pvar y from the set.
func (s *PvarSet) RemoveSym(y Sym) { s.b.removeSym(y) }

// Len returns the number of pvars in the set.
func (s PvarSet) Len() int { return s.b.size() }

// Empty reports whether the set has no members.
func (s PvarSet) Empty() bool { return s.b.empty() }

// Clone returns an independent copy of the set.
func (s PvarSet) Clone() PvarSet { return s } // mutations are copy-on-write

// Equal reports whether two sets hold the same pvars.
func (s PvarSet) Equal(o PvarSet) bool { return s.b.equal(o.b) }

// Union returns a new set with all elements of s and o.
func (s PvarSet) Union(o PvarSet) PvarSet { return PvarSet{s.b.union(o.b)} }

// Minus returns a new set with the elements of s not in o.
func (s PvarSet) Minus(o PvarSet) PvarSet { return PvarSet{s.b.minus(o.b)} }

// Intersects reports whether the two sets share a member.
func (s PvarSet) Intersects(o PvarSet) bool { return s.b.intersects(o.b) }

// EachSym calls f for every member in ascending Sym order.
func (s PvarSet) EachSym(f func(Sym)) { s.b.eachSym(f) }

// Sorted returns the pvars in lexicographic order.
func (s PvarSet) Sorted() []string { return s.b.sortedNames(&pvarTab) }

// String renders the set as "{p,q}" with sorted elements.
func (s PvarSet) String() string { return string(s.appendTo(make([]byte, 0, 16))) }

// appendTo appends the String form to buf without intermediate strings.
func (s PvarSet) appendTo(buf []byte) []byte { return s.b.appendNames(&pvarTab, buf) }

// CyclePair is one CYCLELINKS entry <Out, In>: every location represented
// by the node points via selector Out to a location that points back to it
// via selector In (a definite simple cycle, Sect. 3).
type CyclePair struct {
	Out string // the forward selector (sel_i in the paper)
	In  string // the returning selector (sel_j in the paper)
}

// String renders the pair as "<out,in>".
func (p CyclePair) String() string { return "<" + p.Out + "," + p.In + ">" }

func cyclePairLess(a, b CyclePair) bool {
	if a.Out != b.Out {
		return a.Out < b.Out
	}
	return a.In < b.In
}

// CycleSet is a set of CYCLELINKS pairs, stored as a sorted small slice
// (cycle sets are nearly always empty or a single pair). Mutations are
// copy-on-write, so struct copies share the slice safely.
type CycleSet struct {
	pairs []CyclePair // sorted by (Out, In)
}

// NewCycleSet builds a cycle-link set from the given pairs.
func NewCycleSet(pairs ...CyclePair) CycleSet {
	var s CycleSet
	for _, p := range pairs {
		s.Add(p)
	}
	return s
}

func (s CycleSet) search(p CyclePair) int {
	return sort.Search(len(s.pairs), func(i int) bool { return !cyclePairLess(s.pairs[i], p) })
}

// Has reports whether pair is in the set.
func (s CycleSet) Has(p CyclePair) bool {
	i := s.search(p)
	return i < len(s.pairs) && s.pairs[i] == p
}

// Add inserts pair into the set.
func (s *CycleSet) Add(p CyclePair) {
	i := s.search(p)
	if i < len(s.pairs) && s.pairs[i] == p {
		return
	}
	next := make([]CyclePair, len(s.pairs)+1)
	copy(next, s.pairs[:i])
	next[i] = p
	copy(next[i+1:], s.pairs[i:])
	s.pairs = next
}

// Remove deletes pair from the set.
func (s *CycleSet) Remove(p CyclePair) {
	i := s.search(p)
	if i >= len(s.pairs) || s.pairs[i] != p {
		return
	}
	if len(s.pairs) == 1 {
		s.pairs = nil
		return
	}
	next := make([]CyclePair, 0, len(s.pairs)-1)
	next = append(next, s.pairs[:i]...)
	next = append(next, s.pairs[i+1:]...)
	s.pairs = next
}

// Len returns the number of pairs in the set.
func (s CycleSet) Len() int { return len(s.pairs) }

// Empty reports whether the set has no members.
func (s CycleSet) Empty() bool { return len(s.pairs) == 0 }

// Clone returns an independent copy of the set.
func (s CycleSet) Clone() CycleSet { return s } // mutations are copy-on-write

// Equal reports whether two sets hold the same pairs.
func (s CycleSet) Equal(o CycleSet) bool {
	if len(s.pairs) != len(o.pairs) {
		return false
	}
	for i, p := range s.pairs {
		if o.pairs[i] != p {
			return false
		}
	}
	return true
}

// Sorted returns the pairs ordered by (Out, In). The returned slice is
// the set's backing store; callers must not modify it (mutating the set
// while iterating is safe — mutators copy on write).
func (s CycleSet) Sorted() []CyclePair { return s.pairs }

// String renders the set with sorted elements.
func (s CycleSet) String() string {
	parts := make([]string, 0, len(s.pairs))
	for _, p := range s.pairs {
		parts = append(parts, p.String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// appendTo appends the String form to buf without intermediate strings.
func (s CycleSet) appendTo(buf []byte) []byte {
	buf = append(buf, '{')
	for i, p := range s.pairs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '<')
		buf = append(buf, p.Out...)
		buf = append(buf, ',')
		buf = append(buf, p.In...)
		buf = append(buf, '>')
	}
	return append(buf, '}')
}

// SPath is one simple path <pvar, sel> (Sect. 3): an access path of
// length at most one from a pointer variable to the node. Sel == "" is
// the zero-length path (the pvar points directly at the node).
type SPath struct {
	Pvar string
	Sel  string // "" for the zero-length path
}

// Len returns the path length as the paper defines it: 0 when Sel is
// empty, 1 otherwise.
func (p SPath) Len() int {
	if p.Sel == "" {
		return 0
	}
	return 1
}

// String renders the path as "<pvar,sel>" or "<pvar,.>" for length 0.
func (p SPath) String() string {
	if p.Sel == "" {
		return "<" + p.Pvar + ",.>"
	}
	return "<" + p.Pvar + "," + p.Sel + ">"
}

func spathLess(a, b SPath) bool {
	if a.Pvar != b.Pvar {
		return a.Pvar < b.Pvar
	}
	return a.Sel < b.Sel
}

// SPathSet is a set of simple paths, stored as a sorted small slice.
// Mutations are copy-on-write.
type SPathSet struct {
	paths []SPath // sorted by (Pvar, Sel)
}

// NewSPathSet builds a simple-path set from the given paths.
func NewSPathSet(paths ...SPath) SPathSet {
	var s SPathSet
	for _, p := range paths {
		s.Add(p)
	}
	return s
}

func (s SPathSet) search(p SPath) int {
	return sort.Search(len(s.paths), func(i int) bool { return !spathLess(s.paths[i], p) })
}

// Has reports whether path is in the set.
func (s SPathSet) Has(p SPath) bool {
	i := s.search(p)
	return i < len(s.paths) && s.paths[i] == p
}

// Add inserts path into the set.
func (s *SPathSet) Add(p SPath) {
	i := s.search(p)
	if i < len(s.paths) && s.paths[i] == p {
		return
	}
	next := make([]SPath, len(s.paths)+1)
	copy(next, s.paths[:i])
	next[i] = p
	copy(next[i+1:], s.paths[i:])
	s.paths = next
}

// Len returns the number of paths in the set.
func (s SPathSet) Len() int { return len(s.paths) }

// Clone returns an independent copy of the set.
func (s SPathSet) Clone() SPathSet { return s } // mutations are copy-on-write

// ZeroLen returns the subset of zero-length paths.
func (s SPathSet) ZeroLen() SPathSet {
	var out SPathSet
	for _, p := range s.paths {
		if p.Len() == 0 {
			out.paths = append(out.paths, p)
		}
	}
	sort.Slice(out.paths, func(i, j int) bool { return spathLess(out.paths[i], out.paths[j]) })
	return out
}

// OneLen returns the subset of one-length paths.
func (s SPathSet) OneLen() SPathSet {
	var out SPathSet
	for _, p := range s.paths {
		if p.Len() == 1 {
			out.paths = append(out.paths, p)
		}
	}
	return out
}

// Equal reports whether two sets hold the same paths.
func (s SPathSet) Equal(o SPathSet) bool {
	if len(s.paths) != len(o.paths) {
		return false
	}
	for i, p := range s.paths {
		if o.paths[i] != p {
			return false
		}
	}
	return true
}

// Intersects reports whether the two sets have a common path.
func (s SPathSet) Intersects(o SPathSet) bool {
	i, j := 0, 0
	for i < len(s.paths) && j < len(o.paths) {
		switch {
		case s.paths[i] == o.paths[j]:
			return true
		case spathLess(s.paths[i], o.paths[j]):
			i++
		default:
			j++
		}
	}
	return false
}

// zeroLenEqual reports ZeroLen().Equal(o.ZeroLen()) without building
// the subsets — the hot C_SPATH0 comparison.
func (s SPathSet) zeroLenEqual(o SPathSet) bool {
	i, j := 0, 0
	for {
		for i < len(s.paths) && s.paths[i].Sel != "" {
			i++
		}
		for j < len(o.paths) && o.paths[j].Sel != "" {
			j++
		}
		si, sj := i < len(s.paths), j < len(o.paths)
		if !si || !sj {
			return si == sj
		}
		if s.paths[i] != o.paths[j] {
			return false
		}
		i++
		j++
	}
}

// oneLenEmpty reports whether the set has no one-length path.
func (s SPathSet) oneLenEmpty() bool {
	for _, p := range s.paths {
		if p.Sel != "" {
			return false
		}
	}
	return true
}

// oneLenIntersects reports whether the one-length subsets share a path.
func (s SPathSet) oneLenIntersects(o SPathSet) bool {
	i, j := 0, 0
	for {
		for i < len(s.paths) && s.paths[i].Sel == "" {
			i++
		}
		for j < len(o.paths) && o.paths[j].Sel == "" {
			j++
		}
		if i >= len(s.paths) || j >= len(o.paths) {
			return false
		}
		switch {
		case s.paths[i] == o.paths[j]:
			return true
		case spathLess(s.paths[i], o.paths[j]):
			i++
		default:
			j++
		}
	}
}

// Sorted returns the paths ordered by (Pvar, Sel). The returned slice
// is the set's backing store; callers must not modify it.
func (s SPathSet) Sorted() []SPath { return s.paths }

// String renders the set with sorted elements.
func (s SPathSet) String() string {
	parts := make([]string, 0, len(s.paths))
	for _, p := range s.paths {
		parts = append(parts, p.String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// appendTo appends the String form to buf without intermediate strings.
func (s SPathSet) appendTo(buf []byte) []byte {
	buf = append(buf, '{')
	for i, p := range s.paths {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, '<')
		buf = append(buf, p.Pvar...)
		buf = append(buf, ',')
		if p.Sel == "" {
			buf = append(buf, '.')
		} else {
			buf = append(buf, p.Sel...)
		}
		buf = append(buf, '>')
	}
	return append(buf, '}')
}
