// Package rsg implements Reference Shape Graphs (RSGs), the core
// abstraction of Corbera, Asenjo and Zapata, "Progressive Shape Analysis
// for Real C Codes" (ICPP 2001).
//
// An RSG is a finite graph that over-approximates a set of concrete
// memory configurations. Nodes summarize memory locations that share a
// set of properties (type, structure, reference pattern, share
// information, cycle links, simple paths and touch sets); edges record
// pointer-variable references (PL) and selector links between nodes (NL).
//
// The package provides the graph operations the paper defines:
// COMPRESS (node summarization, Sect. 3.1), DIVIDE (Sect. 4.1),
// PRUNE (Sect. 4.2), JOIN (Sect. 4.3) and the materialization step used
// by the abstract semantics (Fig. 1(d)).
package rsg

import (
	"sort"
	"strings"
)

// SelSet is a set of selector names (struct pointer fields).
type SelSet map[string]struct{}

// NewSelSet builds a selector set from the given names.
func NewSelSet(sels ...string) SelSet {
	s := make(SelSet, len(sels))
	for _, sel := range sels {
		s[sel] = struct{}{}
	}
	return s
}

// Has reports whether sel is in the set.
func (s SelSet) Has(sel string) bool {
	_, ok := s[sel]
	return ok
}

// Add inserts sel into the set.
func (s SelSet) Add(sel string) { s[sel] = struct{}{} }

// Remove deletes sel from the set.
func (s SelSet) Remove(sel string) { delete(s, sel) }

// Clone returns an independent copy of the set.
func (s SelSet) Clone() SelSet {
	c := make(SelSet, len(s))
	for sel := range s {
		c[sel] = struct{}{}
	}
	return c
}

// Equal reports whether two sets hold the same selectors.
func (s SelSet) Equal(o SelSet) bool {
	if len(s) != len(o) {
		return false
	}
	for sel := range s {
		if !o.Has(sel) {
			return false
		}
	}
	return true
}

// Union returns a new set with all elements of s and o.
func (s SelSet) Union(o SelSet) SelSet {
	c := s.Clone()
	for sel := range o {
		c[sel] = struct{}{}
	}
	return c
}

// Intersect returns a new set with the elements common to s and o.
func (s SelSet) Intersect(o SelSet) SelSet {
	c := make(SelSet)
	for sel := range s {
		if o.Has(sel) {
			c[sel] = struct{}{}
		}
	}
	return c
}

// Minus returns a new set with the elements of s not in o.
func (s SelSet) Minus(o SelSet) SelSet {
	c := make(SelSet)
	for sel := range s {
		if !o.Has(sel) {
			c[sel] = struct{}{}
		}
	}
	return c
}

// Sorted returns the selectors in lexicographic order.
func (s SelSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for sel := range s {
		out = append(out, sel)
	}
	sort.Strings(out)
	return out
}

// String renders the set as "{a,b,c}" with sorted elements.
func (s SelSet) String() string {
	return "{" + strings.Join(s.Sorted(), ",") + "}"
}

// appendTo appends the String form to buf without intermediate strings;
// used by the signature/digest encoder.
func (s SelSet) appendTo(buf []byte) []byte {
	buf = append(buf, '{')
	if len(s) > 0 {
		for i, sel := range s.Sorted() {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, sel...)
		}
	}
	return append(buf, '}')
}

// PvarSet is a set of pointer-variable names. It is used for TOUCH sets
// and for alias groups.
type PvarSet map[string]struct{}

// NewPvarSet builds a pvar set from the given names.
func NewPvarSet(pvars ...string) PvarSet {
	s := make(PvarSet, len(pvars))
	for _, p := range pvars {
		s[p] = struct{}{}
	}
	return s
}

// Has reports whether p is in the set.
func (s PvarSet) Has(p string) bool {
	_, ok := s[p]
	return ok
}

// Add inserts p into the set.
func (s PvarSet) Add(p string) { s[p] = struct{}{} }

// Remove deletes p from the set.
func (s PvarSet) Remove(p string) { delete(s, p) }

// Clone returns an independent copy of the set.
func (s PvarSet) Clone() PvarSet {
	c := make(PvarSet, len(s))
	for p := range s {
		c[p] = struct{}{}
	}
	return c
}

// Equal reports whether two sets hold the same pvars.
func (s PvarSet) Equal(o PvarSet) bool {
	if len(s) != len(o) {
		return false
	}
	for p := range s {
		if !o.Has(p) {
			return false
		}
	}
	return true
}

// Sorted returns the pvars in lexicographic order.
func (s PvarSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// String renders the set as "{p,q}" with sorted elements.
func (s PvarSet) String() string {
	return "{" + strings.Join(s.Sorted(), ",") + "}"
}

// appendTo appends the String form to buf without intermediate strings.
func (s PvarSet) appendTo(buf []byte) []byte {
	buf = append(buf, '{')
	if len(s) > 0 {
		for i, p := range s.Sorted() {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, p...)
		}
	}
	return append(buf, '}')
}

// CyclePair is one CYCLELINKS entry <Out, In>: every location represented
// by the node points via selector Out to a location that points back to it
// via selector In (a definite simple cycle, Sect. 3).
type CyclePair struct {
	Out string // the forward selector (sel_i in the paper)
	In  string // the returning selector (sel_j in the paper)
}

// String renders the pair as "<out,in>".
func (p CyclePair) String() string { return "<" + p.Out + "," + p.In + ">" }

// CycleSet is a set of CYCLELINKS pairs.
type CycleSet map[CyclePair]struct{}

// NewCycleSet builds a cycle-link set from the given pairs.
func NewCycleSet(pairs ...CyclePair) CycleSet {
	s := make(CycleSet, len(pairs))
	for _, p := range pairs {
		s[p] = struct{}{}
	}
	return s
}

// Has reports whether pair is in the set.
func (s CycleSet) Has(p CyclePair) bool {
	_, ok := s[p]
	return ok
}

// Add inserts pair into the set.
func (s CycleSet) Add(p CyclePair) { s[p] = struct{}{} }

// Remove deletes pair from the set.
func (s CycleSet) Remove(p CyclePair) { delete(s, p) }

// Clone returns an independent copy of the set.
func (s CycleSet) Clone() CycleSet {
	c := make(CycleSet, len(s))
	for p := range s {
		c[p] = struct{}{}
	}
	return c
}

// Equal reports whether two sets hold the same pairs.
func (s CycleSet) Equal(o CycleSet) bool {
	if len(s) != len(o) {
		return false
	}
	for p := range s {
		if !o.Has(p) {
			return false
		}
	}
	return true
}

// Sorted returns the pairs ordered by (Out, In).
func (s CycleSet) Sorted() []CyclePair {
	out := make([]CyclePair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Out != out[j].Out {
			return out[i].Out < out[j].Out
		}
		return out[i].In < out[j].In
	})
	return out
}

// String renders the set with sorted elements.
func (s CycleSet) String() string {
	parts := make([]string, 0, len(s))
	for _, p := range s.Sorted() {
		parts = append(parts, p.String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// appendTo appends the String form to buf without intermediate strings.
func (s CycleSet) appendTo(buf []byte) []byte {
	buf = append(buf, '{')
	if len(s) > 0 {
		for i, p := range s.Sorted() {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, '<')
			buf = append(buf, p.Out...)
			buf = append(buf, ',')
			buf = append(buf, p.In...)
			buf = append(buf, '>')
		}
	}
	return append(buf, '}')
}

// SPath is one simple path <pvar, sel> (Sect. 3): an access path of
// length at most one from a pointer variable to the node. Sel == "" is
// the zero-length path (the pvar points directly at the node).
type SPath struct {
	Pvar string
	Sel  string // "" for the zero-length path
}

// Len returns the path length as the paper defines it: 0 when Sel is
// empty, 1 otherwise.
func (p SPath) Len() int {
	if p.Sel == "" {
		return 0
	}
	return 1
}

// String renders the path as "<pvar,sel>" or "<pvar,.>" for length 0.
func (p SPath) String() string {
	if p.Sel == "" {
		return "<" + p.Pvar + ",.>"
	}
	return "<" + p.Pvar + "," + p.Sel + ">"
}

// SPathSet is a set of simple paths.
type SPathSet map[SPath]struct{}

// NewSPathSet builds a simple-path set from the given paths.
func NewSPathSet(paths ...SPath) SPathSet {
	s := make(SPathSet, len(paths))
	for _, p := range paths {
		s[p] = struct{}{}
	}
	return s
}

// Has reports whether path is in the set.
func (s SPathSet) Has(p SPath) bool {
	_, ok := s[p]
	return ok
}

// Add inserts path into the set.
func (s SPathSet) Add(p SPath) { s[p] = struct{}{} }

// Clone returns an independent copy of the set.
func (s SPathSet) Clone() SPathSet {
	c := make(SPathSet, len(s))
	for p := range s {
		c[p] = struct{}{}
	}
	return c
}

// ZeroLen returns the subset of zero-length paths.
func (s SPathSet) ZeroLen() SPathSet {
	c := make(SPathSet)
	for p := range s {
		if p.Len() == 0 {
			c[p] = struct{}{}
		}
	}
	return c
}

// OneLen returns the subset of one-length paths.
func (s SPathSet) OneLen() SPathSet {
	c := make(SPathSet)
	for p := range s {
		if p.Len() == 1 {
			c[p] = struct{}{}
		}
	}
	return c
}

// Equal reports whether two sets hold the same paths.
func (s SPathSet) Equal(o SPathSet) bool {
	if len(s) != len(o) {
		return false
	}
	for p := range s {
		if !o.Has(p) {
			return false
		}
	}
	return true
}

// Intersects reports whether the two sets have a common path.
func (s SPathSet) Intersects(o SPathSet) bool {
	for p := range s {
		if o.Has(p) {
			return true
		}
	}
	return false
}

// Sorted returns the paths ordered by (Pvar, Sel).
func (s SPathSet) Sorted() []SPath {
	out := make([]SPath, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pvar != out[j].Pvar {
			return out[i].Pvar < out[j].Pvar
		}
		return out[i].Sel < out[j].Sel
	})
	return out
}

// String renders the set with sorted elements.
func (s SPathSet) String() string {
	parts := make([]string, 0, len(s))
	for _, p := range s.Sorted() {
		parts = append(parts, p.String())
	}
	return "{" + strings.Join(parts, ",") + "}"
}
