package rsg

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
)

// Signature returns a canonical textual form of the graph, independent
// of node IDs for deterministically generated graphs. It is used for
// fixed-point detection (has an RSRSG changed?) and for de-duplicating
// graphs inside an RSRSG.
//
// The ordering is computed by a breadth-first traversal from the pvars
// in sorted order, following selectors in sorted order; ties between
// sibling targets are broken by a local node descriptor (properties +
// SPATH), and as a last resort by node ID. The last-resort tie-break
// means two differently-generated isomorphic graphs can, in rare
// symmetric cases, produce different signatures; that costs a duplicate
// RSG in the set (a precision/space issue, never a soundness issue),
// and cannot prevent fixed-point detection because the transfer
// functions themselves are deterministic.
//
// Hot paths should prefer the fixed-size binary Digest over the full
// string: the two agree (Digest is a hash of exactly these bytes), and
// frozen graphs memoize the digest.
func Signature(g *Graph) string {
	return string(appendSignature(g, make([]byte, 0, 512)))
}

// Digest is a fixed-size binary summary of a graph's Signature. Two
// graphs have equal digests iff they have equal signatures (up to a
// 2^-128 collision chance). Digest is a comparable value type, so it can
// key maps directly without the allocation and comparison cost of the
// multi-kilobyte signature strings it replaces.
type Digest [16]byte

// String renders the digest in hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Less orders digests lexicographically; used to keep RSRSG entries in
// a deterministic order.
func (d Digest) Less(o Digest) bool {
	for i := range d {
		if d[i] != o[i] {
			return d[i] < o[i]
		}
	}
	return false
}

// computeDigest hashes the signature bytes without materializing the
// string.
func computeDigest(g *Graph) Digest {
	sum := sha256.Sum256(appendSignature(g, make([]byte, 0, 512)))
	var d Digest
	copy(d[:], sum[:16])
	return d
}

// Hash returns the hex form of the graph's digest (memoized on frozen
// graphs); kept for textual call sites like trace output.
func Hash(g *Graph) string {
	d := g.Digest()
	return d.String()
}

// appendSignature appends the canonical encoding of g to buf. The
// encoding is built with byte appends instead of fmt so the dedup and
// equality paths of the analysis do not allocate per emitted line.
func appendSignature(g *Graph, buf []byte) []byte {
	order := canonicalOrder(g)
	index := make(map[NodeID]int, len(order))
	for i, id := range order {
		index[id] = i
	}

	for _, p := range g.Pvars() {
		buf = append(buf, 'P', ' ')
		buf = append(buf, p...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(index[g.PvarTarget(p).ID]), 10)
		buf = append(buf, '\n')
	}
	for i, id := range order {
		buf = append(buf, 'N', ' ')
		buf = strconv.AppendInt(buf, int64(i), 10)
		buf = append(buf, ' ')
		buf = appendNodeDescriptor(buf, g.Node(id))
		buf = append(buf, '\n')
	}
	// Emit edges grouped by canonical source index and selector; only
	// the destination indices of each small group need sorting.
	var dsts []int
	for _, id := range order {
		srcIdx := index[id]
		for _, sel := range g.OutSelectors(id) {
			targets := g.Targets(id, sel)
			dsts = dsts[:0]
			for _, t := range targets {
				dsts = append(dsts, index[t])
			}
			sort.Ints(dsts)
			for _, d := range dsts {
				buf = append(buf, 'L', ' ')
				buf = strconv.AppendInt(buf, int64(srcIdx), 10)
				buf = append(buf, ' ')
				buf = append(buf, sel...)
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(d), 10)
				buf = append(buf, '\n')
			}
		}
	}
	return buf
}

// nodeDescriptor encodes every intrinsic property of a node (ID
// excluded) for use in signatures and tie-breaking.
func nodeDescriptor(n *Node) string {
	return string(appendNodeDescriptor(make([]byte, 0, 64), n))
}

func appendNodeDescriptor(buf []byte, n *Node) []byte {
	buf = append(buf, n.Type...)
	if n.Singleton {
		buf = append(buf, '|', '1', '|')
	} else {
		buf = append(buf, '|', '*', '|')
	}
	if n.Shared {
		buf = append(buf, 'S', '|')
	} else {
		buf = append(buf, 's', '|')
	}
	buf = n.ShSel.appendTo(buf)
	buf = append(buf, '|')
	buf = n.SelIn.appendTo(buf)
	buf = append(buf, '|')
	buf = n.SelOut.appendTo(buf)
	buf = append(buf, '|')
	buf = n.PosSelIn.appendTo(buf)
	buf = append(buf, '|')
	buf = n.PosSelOut.appendTo(buf)
	buf = append(buf, '|')
	buf = n.Cycle.appendTo(buf)
	buf = append(buf, '|')
	buf = n.Touch.appendTo(buf)
	return buf
}

// canonicalOrder returns the node IDs in BFS order from the sorted
// pvars, with deterministic tie-breaking; unreachable nodes follow in
// descriptor order.
func canonicalOrder(g *Graph) []NodeID {
	spaths := g.SPaths()
	local := make(map[NodeID]string, g.NumNodes())
	var scratch []byte
	for _, id := range g.NodeIDs() {
		scratch = appendNodeDescriptor(scratch[:0], g.Node(id))
		scratch = append(scratch, '@')
		scratch = append(scratch, spaths[id].String()...)
		local[id] = string(scratch)
	}

	var order []NodeID
	seen := make(map[NodeID]struct{}, g.NumNodes())
	push := func(id NodeID) {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			order = append(order, id)
		}
	}
	var queue []NodeID
	for _, p := range g.Pvars() {
		t := g.PvarTarget(p).ID
		if _, ok := seen[t]; !ok {
			push(t)
			queue = append(queue, t)
		}
	}
	var targets []NodeID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, sel := range g.OutSelectors(id) {
			// Copy before sorting: on frozen graphs Targets returns a
			// shared cached slice that must not be reordered.
			targets = append(targets[:0], g.Targets(id, sel)...)
			sort.Slice(targets, func(i, j int) bool {
				a, b := targets[i], targets[j]
				_, sa := seen[a]
				_, sb := seen[b]
				if sa != sb {
					return sa // already-ordered nodes first, keeping BFS stable
				}
				if local[a] != local[b] {
					return local[a] < local[b]
				}
				return a < b
			})
			for _, t := range targets {
				if _, ok := seen[t]; !ok {
					push(t)
					queue = append(queue, t)
				}
			}
		}
	}
	// Unreachable leftovers (normally garbage collected before this).
	var rest []NodeID
	for _, id := range g.NodeIDs() {
		if _, ok := seen[id]; !ok {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if local[rest[i]] != local[rest[j]] {
			return local[rest[i]] < local[rest[j]]
		}
		return rest[i] < rest[j]
	})
	order = append(order, rest...)
	return order
}
