package rsg

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Signature returns a canonical textual form of the graph, independent
// of node IDs for deterministically generated graphs. It is used for
// fixed-point detection (has an RSRSG changed?) and for de-duplicating
// graphs inside an RSRSG.
//
// The ordering is computed by a breadth-first traversal from the pvars
// in sorted order, following selectors in sorted order; ties between
// sibling targets are broken by a local node descriptor (properties +
// SPATH), and as a last resort by node ID. The last-resort tie-break
// means two differently-generated isomorphic graphs can, in rare
// symmetric cases, produce different signatures; that costs a duplicate
// RSG in the set (a precision/space issue, never a soundness issue),
// and cannot prevent fixed-point detection because the transfer
// functions themselves are deterministic.
func Signature(g *Graph) string {
	order := canonicalOrder(g)
	index := make(map[NodeID]int, len(order))
	for i, id := range order {
		index[id] = i
	}

	var b strings.Builder
	for _, p := range g.Pvars() {
		fmt.Fprintf(&b, "P %s %d\n", p, index[g.PvarTarget(p).ID])
	}
	for i, id := range order {
		n := g.Node(id)
		fmt.Fprintf(&b, "N %d %s\n", i, nodeDescriptor(n))
	}
	// Emit edges grouped by canonical source index and selector; only
	// the destination indices of each small group need sorting.
	for _, id := range order {
		srcIdx := index[id]
		for _, sel := range g.OutSelectors(id) {
			targets := g.Targets(id, sel)
			dsts := make([]int, len(targets))
			for i, t := range targets {
				dsts[i] = index[t]
			}
			sort.Ints(dsts)
			for _, d := range dsts {
				fmt.Fprintf(&b, "L %d %s %d\n", srcIdx, sel, d)
			}
		}
	}
	return b.String()
}

// Hash returns a fixed-size digest of Signature(g).
func Hash(g *Graph) string {
	sum := sha256.Sum256([]byte(Signature(g)))
	return hex.EncodeToString(sum[:16])
}

// nodeDescriptor encodes every intrinsic property of a node (ID
// excluded) for use in signatures and tie-breaking.
func nodeDescriptor(n *Node) string {
	var b strings.Builder
	b.WriteString(n.Type)
	if n.Singleton {
		b.WriteString("|1|")
	} else {
		b.WriteString("|*|")
	}
	if n.Shared {
		b.WriteString("S|")
	} else {
		b.WriteString("s|")
	}
	b.WriteString(n.ShSel.String())
	b.WriteByte('|')
	b.WriteString(n.SelIn.String())
	b.WriteByte('|')
	b.WriteString(n.SelOut.String())
	b.WriteByte('|')
	b.WriteString(n.PosSelIn.String())
	b.WriteByte('|')
	b.WriteString(n.PosSelOut.String())
	b.WriteByte('|')
	b.WriteString(n.Cycle.String())
	b.WriteByte('|')
	b.WriteString(n.Touch.String())
	return b.String()
}

// canonicalOrder returns the node IDs in BFS order from the sorted
// pvars, with deterministic tie-breaking; unreachable nodes follow in
// descriptor order.
func canonicalOrder(g *Graph) []NodeID {
	spaths := g.SPaths()
	local := make(map[NodeID]string, g.NumNodes())
	for _, id := range g.NodeIDs() {
		local[id] = nodeDescriptor(g.Node(id)) + "@" + spaths[id].String()
	}

	var order []NodeID
	seen := make(map[NodeID]struct{}, g.NumNodes())
	push := func(id NodeID) {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			order = append(order, id)
		}
	}
	var queue []NodeID
	for _, p := range g.Pvars() {
		t := g.PvarTarget(p).ID
		if _, ok := seen[t]; !ok {
			push(t)
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, sel := range g.OutSelectors(id) {
			targets := g.Targets(id, sel)
			sort.Slice(targets, func(i, j int) bool {
				a, b := targets[i], targets[j]
				_, sa := seen[a]
				_, sb := seen[b]
				if sa != sb {
					return sa // already-ordered nodes first, keeping BFS stable
				}
				if local[a] != local[b] {
					return local[a] < local[b]
				}
				return a < b
			})
			for _, t := range targets {
				if _, ok := seen[t]; !ok {
					push(t)
					queue = append(queue, t)
				}
			}
		}
	}
	// Unreachable leftovers (normally garbage collected before this).
	var rest []NodeID
	for _, id := range g.NodeIDs() {
		if _, ok := seen[id]; !ok {
			rest = append(rest, id)
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if local[rest[i]] != local[rest[j]] {
			return local[rest[i]] < local[rest[j]]
		}
		return rest[i] < rest[j]
	})
	order = append(order, rest...)
	return order
}
