package rsg

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
)

// Signature returns a canonical textual form of the graph, independent
// of node IDs for deterministically generated graphs. It is used for
// fixed-point detection (has an RSRSG changed?) and for de-duplicating
// graphs inside an RSRSG.
//
// The ordering is computed by a breadth-first traversal from the pvars
// in sorted order, following selectors in sorted order; ties between
// sibling targets are broken by a local node descriptor (properties +
// SPATH), and as a last resort by node ID. The last-resort tie-break
// means two differently-generated isomorphic graphs can, in rare
// symmetric cases, produce different signatures; that costs a duplicate
// RSG in the set (a precision/space issue, never a soundness issue),
// and cannot prevent fixed-point detection because the transfer
// functions themselves are deterministic.
//
// Hot paths should prefer the fixed-size binary Digest over the full
// string: the two agree (Digest is a hash of exactly these bytes), and
// frozen graphs memoize the digest.
func Signature(g *Graph) string {
	cs := getCanonScratch()
	s := string(appendSignature(g, make([]byte, 0, 512), cs))
	putCanonScratch(cs)
	return s
}

// Digest is a fixed-size binary summary of a graph's Signature. Two
// graphs have equal digests iff they have equal signatures (up to a
// 2^-128 collision chance). Digest is a comparable value type, so it can
// key maps directly without the allocation and comparison cost of the
// multi-kilobyte signature strings it replaces.
type Digest [16]byte

// String renders the digest in hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Less orders digests lexicographically; used to keep RSRSG entries in
// a deterministic order.
func (d Digest) Less(o Digest) bool {
	for i := range d {
		if d[i] != o[i] {
			return d[i] < o[i]
		}
	}
	return false
}

// computeDigest hashes the signature bytes without materializing the
// string, accumulating them in pooled scratch.
func computeDigest(g *Graph) Digest {
	cs := getCanonScratch()
	cs.sig = appendSignature(g, cs.sig[:0], cs)
	sum := sha256.Sum256(cs.sig)
	putCanonScratch(cs)
	var d Digest
	copy(d[:], sum[:16])
	return d
}

// Hash returns the hex form of the graph's digest (memoized on frozen
// graphs); kept for textual call sites like trace output.
func Hash(g *Graph) string {
	d := g.Digest()
	return d.String()
}

// appendSignature appends the canonical encoding of g to buf, working
// entirely in position-indexed scratch (positions into g.ids), with
// byte appends instead of fmt so the dedup and equality paths of the
// analysis do not allocate per emitted line.
func appendSignature(g *Graph, buf []byte, cs *canonScratch) []byte {
	n := len(g.ids)
	canonicalOrder(g, cs)
	cs.idx = growInt32(cs.idx, n)
	for ci, pos := range cs.order {
		cs.idx[pos] = int32(ci)
	}

	psnap := pvarTab.load()
	for _, e := range g.pl {
		buf = append(buf, 'P', ' ')
		buf = append(buf, psnap.names[e.sym-1]...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(cs.idx[g.posOf(e.id)]), 10)
		buf = append(buf, '\n')
	}
	for ci, pos := range cs.order {
		buf = append(buf, 'N', ' ')
		buf = strconv.AppendInt(buf, int64(ci), 10)
		buf = append(buf, ' ')
		buf = appendNodeDescriptor(buf, g.nodes[pos])
		buf = append(buf, '\n')
	}
	// Emit edges grouped by canonical source index and selector; only
	// the destination indices of each small group need sorting. The out
	// run of a node is already (selector-name, dst) ordered.
	ssnap := selTab.load()
	for _, pos := range cs.order {
		srcIdx := int64(cs.idx[pos])
		run := g.outRun(g.ids[pos])
		for i := 0; i < len(run); {
			sel := run[i].sel
			cs.dsts = cs.dsts[:0]
			for ; i < len(run) && run[i].sel == sel; i++ {
				cs.dsts = append(cs.dsts, int(cs.idx[g.posOf(run[i].b)]))
			}
			sort.Ints(cs.dsts)
			name := ssnap.names[sel-1]
			for _, d := range cs.dsts {
				buf = append(buf, 'L', ' ')
				buf = strconv.AppendInt(buf, srcIdx, 10)
				buf = append(buf, ' ')
				buf = append(buf, name...)
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(d), 10)
				buf = append(buf, '\n')
			}
		}
	}
	return buf
}

// nodeDescriptor encodes every intrinsic property of a node (ID
// excluded) for use in signatures and tie-breaking.
func nodeDescriptor(n *Node) string {
	return string(appendNodeDescriptor(make([]byte, 0, 64), n))
}

func appendNodeDescriptor(buf []byte, n *Node) []byte {
	buf = append(buf, n.Type...)
	if n.Singleton {
		buf = append(buf, '|', '1', '|')
	} else {
		buf = append(buf, '|', '*', '|')
	}
	if n.Shared {
		buf = append(buf, 'S', '|')
	} else {
		buf = append(buf, 's', '|')
	}
	buf = n.ShSel.appendTo(buf)
	buf = append(buf, '|')
	buf = n.SelIn.appendTo(buf)
	buf = append(buf, '|')
	buf = n.SelOut.appendTo(buf)
	buf = append(buf, '|')
	buf = n.PosSelIn.appendTo(buf)
	buf = append(buf, '|')
	buf = n.PosSelOut.appendTo(buf)
	buf = append(buf, '|')
	buf = n.Cycle.appendTo(buf)
	buf = append(buf, '|')
	buf = n.Touch.appendTo(buf)
	return buf
}

// canonicalOrder fills cs.order with the node positions in BFS order
// from the sorted pvars, with deterministic tie-breaking; unreachable
// nodes follow in descriptor order. cs.spaths and cs.local are left
// holding the per-position SPATH sets and tie-break descriptors.
func canonicalOrder(g *Graph, cs *canonScratch) {
	n := len(g.ids)
	cs.spaths = growSPathSets(cs.spaths, n)
	g.spathsByPos(cs.spaths)
	cs.local = growStrings(cs.local, n)
	for i := range g.ids {
		cs.buf = appendNodeDescriptor(cs.buf[:0], g.nodes[i])
		cs.buf = append(cs.buf, '@')
		cs.buf = cs.spaths[i].appendTo(cs.buf)
		cs.local[i] = string(cs.buf)
	}

	cs.order = cs.order[:0]
	cs.seen = growBool(cs.seen, n)
	push := func(pos int) {
		if !cs.seen[pos] {
			cs.seen[pos] = true
			cs.order = append(cs.order, pos)
		}
	}
	cs.queue = cs.queue[:0]
	for _, e := range g.pl {
		t := g.posOf(e.id)
		if !cs.seen[t] {
			push(t)
			cs.queue = append(cs.queue, t)
		}
	}
	for qi := 0; qi < len(cs.queue); qi++ {
		pos := cs.queue[qi]
		run := g.outRun(g.ids[pos])
		for i := 0; i < len(run); {
			sel := run[i].sel
			cs.targets = cs.targets[:0]
			for ; i < len(run) && run[i].sel == sel; i++ {
				cs.targets = append(cs.targets, g.posOf(run[i].b))
			}
			sort.Slice(cs.targets, func(i, j int) bool {
				a, b := cs.targets[i], cs.targets[j]
				if cs.seen[a] != cs.seen[b] {
					return cs.seen[a] // already-ordered nodes first, keeping BFS stable
				}
				if cs.local[a] != cs.local[b] {
					return cs.local[a] < cs.local[b]
				}
				return a < b
			})
			for _, t := range cs.targets {
				if !cs.seen[t] {
					push(t)
					cs.queue = append(cs.queue, t)
				}
			}
		}
	}
	// Unreachable leftovers (normally garbage collected before this).
	restStart := len(cs.order)
	for pos := range g.ids {
		if !cs.seen[pos] {
			cs.order = append(cs.order, pos)
		}
	}
	rest := cs.order[restStart:]
	sort.Slice(rest, func(i, j int) bool {
		if cs.local[rest[i]] != cs.local[rest[j]] {
			return cs.local[rest[i]] < cs.local[rest[j]]
		}
		return rest[i] < rest[j]
	})
}
