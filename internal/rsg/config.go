package rsg

// Level selects one of the paper's three progressive analysis levels
// (Sect. 5). Each level enables more node properties, trading analysis
// cost for precision:
//
//	L1: TOUCH disabled, C_SPATH0 (zero-length simple paths only).
//	L2: TOUCH disabled, C_SPATH1 (one-length simple paths constrain
//	    summarization too).
//	L3: every property enabled, including TOUCH.
type Level int

const (
	// L1 is the cheapest level: SPATH compatibility uses C_SPATH0 and
	// TOUCH sets are neither built nor compared.
	L1 Level = 1
	// L2 adds the C_SPATH1 compatibility constraint.
	L2 Level = 2
	// L3 additionally builds and compares TOUCH sets.
	L3 Level = 3
)

// String returns "L1", "L2" or "L3".
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	}
	return "L?"
}

// SPathMode returns 0 for C_SPATH0 and 1 for C_SPATH1, the parameter m
// of the paper's C_SPATH function.
func (l Level) SPathMode() int {
	if l >= L2 {
		return 1
	}
	return 0
}

// UseTouch reports whether TOUCH sets are maintained and compared.
func (l Level) UseTouch() bool { return l >= L3 }

// CSPath is the paper's C_SPATH(n1, n2, m) compatibility function over
// the derived SPATH sets of two nodes.
//
// m = 0 (C_SPATH0): the nodes must have the same zero-length simple
// paths — i.e. be referenced directly by the same pvars.
//
// m = 1 (C_SPATH1): additionally the one-length path sets must be
// compatible: either both nodes have no one-length simple path, or the
// two sets share at least one one-length path. This keeps locations one
// step away from a traversal pvar in their own node instead of folding
// them into far-away summaries — the refinement that fixes the
// Barnes-Hut SHSEL(body) imprecision in the paper's Sect. 5.1.
func CSPath(sp1, sp2 SPathSet, m int) bool {
	if !sp1.zeroLenEqual(sp2) {
		return false
	}
	if m == 0 {
		return true
	}
	if sp1.oneLenEmpty() && sp2.oneLenEmpty() {
		return true
	}
	return sp1.oneLenIntersects(sp2)
}

// CRefPat is the reference-pattern compatibility C_REFPAT(n1, n2): the
// definite reference-pattern sets must match. The possible sets may
// differ; MERGE_NODES reconciles them conservatively (Sect. 3.1). This
// is the definition that keeps the head, middle and tail of the paper's
// doubly-linked list example in distinct nodes.
func CRefPat(n1, n2 *Node) bool {
	return n1.SelIn.Equal(n2.SelIn) && n1.SelOut.Equal(n2.SelOut)
}

// CNodes is the paper's C_NODES(n1, n2) predicate (Sect. 4.3), used to
// decide whether nodes of two *different* RSGs may be merged by JOIN.
// It compares TYPE, SHARED, SHSEL, TOUCH (at L3), the reference
// patterns and the SPATHs — but not STRUCTURE, which only constrains
// intra-graph summarization.
func CNodes(lvl Level, n1, n2 *Node, sp1, sp2 SPathSet) bool {
	if n1.Type != n2.Type || n1.Shared != n2.Shared || !n1.ShSel.Equal(n2.ShSel) {
		return false
	}
	if lvl.UseTouch() && !n1.Touch.Equal(n2.Touch) {
		return false
	}
	if !CRefPat(n1, n2) {
		return false
	}
	return CSPath(sp1, sp2, lvl.SPathMode())
}

// CNodesJoin is the node-compatibility gate used by the COMPATIBLE
// predicate when deciding whether two whole RSGs may be fused. It
// checks TYPE, the share attributes, TOUCH and SPATH, but not C_REFPAT:
// MERGE_NODES reconciles differing reference patterns conservatively
// (definite sets intersect, possible sets union), so requiring equality
// here only multiplies the RSGs per sentence — on tree-building codes
// the number of per-alias-class reference-pattern combinations grows
// combinatorially and the RSRSG never collapses. Summarization inside
// one graph (C_NODES_RSG) keeps the strict C_REFPAT check, which is
// what preserves the head/middle/tail distinction of the paper's
// examples.
// CNodesJoin always compares SPATHs in mode 0: pvar-referenced nodes of
// two same-alias graphs trivially share their zero-length paths, and
// requiring common one-length paths at L2/L3 only fragments the RSRSG
// (the per-sentence sets grow past practicability on the sparse-matrix
// codes, while the paper reports quick L2 convergence). The L2/L3
// precision gains live in the summarization predicate C_NODES_RSG,
// which keeps the full C_SPATH(m) check.
func CNodesJoin(lvl Level, n1, n2 *Node, sp1, sp2 SPathSet) bool {
	if n1.Type != n2.Type || n1.Shared != n2.Shared || !n1.ShSel.Equal(n2.ShSel) {
		return false
	}
	if lvl.UseTouch() && !n1.Touch.Equal(n2.Touch) {
		return false
	}
	return CSPath(sp1, sp2, 0)
}

// CNodesRSG is the paper's C_NODES_RSG(n1, n2) predicate (Sect. 3.1),
// used to decide whether two nodes of the *same* RSG are summarized by
// COMPRESS. It is C_NODES plus the STRUCTURE requirement.
func CNodesRSG(lvl Level, n1, n2 *Node, sp1, sp2 SPathSet, st1, st2 string) bool {
	if st1 != st2 {
		return false
	}
	return CNodes(lvl, n1, n2, sp1, sp2)
}
