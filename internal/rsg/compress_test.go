package rsg

import "testing"

// chain builds a singly-linked chain of n singleton nodes of type "t"
// with selector "nxt", head referenced by pvar "h".
func chain(n int) (*Graph, []*Node) {
	g := NewGraph()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nd := NewNode("t")
		nd.Singleton = true
		if i > 0 {
			nd.MarkDefiniteIn("nxt")
		}
		if i < n-1 {
			nd.MarkDefiniteOut("nxt")
		}
		g.AddNode(nd)
		nodes[i] = nd
	}
	for i := 0; i+1 < n; i++ {
		g.AddLink(nodes[i].ID, "nxt", nodes[i+1].ID)
	}
	g.SetPvar("h", nodes[0].ID)
	return g, nodes
}

func TestCompressSummarizesChainMiddle(t *testing.T) {
	g, _ := chain(6)
	merges := Compress(g, L1)
	if merges == 0 {
		t.Fatal("no merges on a 6-element chain")
	}
	// Expected classes: head (pvar zero-path), the node one step from
	// the head is distinguishable only at L2; at L1 middles merge. The
	// tail differs by SELOUT.
	if got := g.NumNodes(); got != 3 {
		t.Errorf("compressed chain has %d nodes, want 3 (head/middle/tail):\n%s", got, g)
	}
	// Exactly one summary node.
	summaries := 0
	for _, n := range g.Nodes() {
		if !n.Singleton {
			summaries++
		}
	}
	if summaries != 1 {
		t.Errorf("%d summary nodes, want 1", summaries)
	}
}

func TestCompressRespectsTypes(t *testing.T) {
	g := NewGraph()
	a := NewNode("t1")
	b := NewNode("t2")
	g.AddNode(a)
	g.AddNode(b)
	h := NewNode("t1")
	h.MarkDefiniteOut("s")
	g.AddNode(h)
	g.SetPvar("h", h.ID)
	g.AddLink(h.ID, "s", a.ID)
	g.AddLink(h.ID, "s", b.ID)
	a.MarkPossibleIn("s")
	b.MarkPossibleIn("s")
	if Compress(g, L1) != 0 {
		t.Error("nodes of different TYPE must never merge")
	}
}

func TestCompressRespectsStructure(t *testing.T) {
	// Two disjoint single-node structures anchored by different pvars:
	// identical properties but different STRUCTURE, so no merge.
	g := NewGraph()
	a := g.AddNode(NewNode("t"))
	b := g.AddNode(NewNode("t"))
	g.SetPvar("x", a.ID)
	g.SetPvar("y", b.ID)
	if Compress(g, L1) != 0 {
		t.Error("nodes in different structures (and different SPATHs) must not merge")
	}
}

func TestCompressRespectsShare(t *testing.T) {
	g, _ := chain(6)
	// Taint one middle node's share bit: it must stay out of the summary.
	ids := g.NodeIDs()
	mid := g.Node(ids[3])
	mid.Shared = true
	Compress(g, L1)
	found := false
	for _, n := range g.Nodes() {
		if n.Shared {
			found = true
			if !n.Singleton {
				// the shared node may only merge with other shared nodes
				t.Errorf("shared node merged into an unshared summary: %s", n)
			}
		}
	}
	if !found {
		t.Error("shared node disappeared")
	}
}

func TestCompressL2KeepsOneStepNodesSeparate(t *testing.T) {
	g, _ := chain(6)
	merges := Compress(g, L2)
	if merges == 0 {
		t.Fatal("no merges at L2")
	}
	// At L2 the node one step from h (<h,nxt>) cannot merge with far
	// middles (C_SPATH1), so we get head / second / middles / tail.
	if got := g.NumNodes(); got != 4 {
		t.Errorf("L2-compressed chain has %d nodes, want 4:\n%s", got, g)
	}
}

func TestCompressTouchSeparation(t *testing.T) {
	g, nodes := chain(6)
	// Mark nodes 1..2 as visited by induction pvar p.
	nodes[1].Touch.Add("p")
	nodes[2].Touch.Add("p")
	Compress(g, L3)
	// Touched middles and untouched middles must be distinct nodes.
	var touchedSummary, untouched bool
	for _, n := range g.Nodes() {
		if !n.Touch.Empty() {
			touchedSummary = true
		} else {
			untouched = true
		}
	}
	if !touchedSummary || !untouched {
		t.Errorf("TOUCH separation lost:\n%s", g)
	}
	// At L1 the same graph merges regardless of TOUCH.
	g2, nodes2 := chain(6)
	nodes2[1].Touch.Add("p")
	nodes2[2].Touch.Add("p")
	m1 := Compress(g2, L1)
	if m1 == 0 {
		t.Error("L1 must ignore TOUCH when summarizing")
	}
}

func TestCompressIdempotent(t *testing.T) {
	g, _ := chain(8)
	Compress(g, L1)
	sig := Signature(g)
	if again := Compress(g, L1); again != 0 {
		t.Errorf("second compress merged %d more nodes", again)
	}
	if Signature(g) != sig {
		t.Error("second compress changed the graph")
	}
}

func TestMergeNodesPaperRules(t *testing.T) {
	g := NewGraph()
	n1 := NewNode("t")
	n1.MarkDefiniteIn("a")
	n1.MarkDefiniteIn("b")
	n1.MarkDefiniteOut("x")
	n1.MarkPossibleOut("y")
	n2 := NewNode("t")
	n2.MarkDefiniteIn("a")
	n2.MarkDefiniteOut("x")
	n2.MarkDefiniteOut("y")
	g.AddNode(n1)
	g.AddNode(n2)

	m := MergeNodes(g, n1, g, n2, true)
	if !m.SelIn.Equal(NewSelSet("a")) {
		t.Errorf("SELIN = %s, want {a}", m.SelIn)
	}
	if !m.PosSelIn.Equal(NewSelSet("b")) {
		t.Errorf("PosSELIN = %s, want {b}", m.PosSelIn)
	}
	if !m.SelOut.Equal(NewSelSet("x")) {
		t.Errorf("SELOUT = %s, want {x}", m.SelOut)
	}
	if !m.PosSelOut.Equal(NewSelSet("y")) {
		t.Errorf("PosSELOUT = %s, want {y}", m.PosSelOut)
	}
	if m.Singleton {
		t.Error("intra-graph merge must clear Singleton")
	}
}

func TestMergeNodesCycleRule(t *testing.T) {
	g := NewGraph()
	n1 := NewNode("t")
	n1.Cycle.Add(CyclePair{Out: "nxt", In: "prv"})
	n2 := NewNode("t")
	g.AddNode(n1)
	g.AddNode(n2)
	other := g.AddNode(NewNode("t"))

	// n2 has no nxt link: the pair survives (vacuously true for n2).
	m := MergeNodes(g, n1, g, n2, true)
	if !m.Cycle.Has(CyclePair{Out: "nxt", In: "prv"}) {
		t.Errorf("pair should survive when the other node has no nxt link: %s", m.Cycle)
	}

	// Give n2 an nxt link: now the pair must be dropped.
	g.AddLink(n2.ID, "nxt", other.ID)
	m = MergeNodes(g, n1, g, n2, true)
	if m.Cycle.Has(CyclePair{Out: "nxt", In: "prv"}) {
		t.Errorf("pair must drop when the other node has an nxt link without the cycle: %s", m.Cycle)
	}

	// Pair present in both always survives.
	n2.Cycle.Add(CyclePair{Out: "nxt", In: "prv"})
	m = MergeNodes(g, n1, g, n2, true)
	if !m.Cycle.Has(CyclePair{Out: "nxt", In: "prv"}) {
		t.Errorf("common pair must survive: %s", m.Cycle)
	}
}

func TestMergeNodesJoinKeepsSingleton(t *testing.T) {
	g1 := NewGraph()
	g2 := NewGraph()
	a := NewNode("t")
	a.Singleton = true
	b := NewNode("t")
	b.Singleton = true
	g1.AddNode(a)
	g2.AddNode(b)
	if m := MergeNodes(g1, a, g2, b, false); !m.Singleton {
		t.Error("inter-graph merge of singletons stays a per-config singleton")
	}
	b.Singleton = false
	if m := MergeNodes(g1, a, g2, b, false); m.Singleton {
		t.Error("merging with a summary clears Singleton")
	}
}
