package rsg

import (
	"sort"
	"strings"
)

// SPathOf computes the SPATH derived property of a node: the set of
// access paths of length <= 1 from pvars to it (Sect. 3). The
// zero-length path <p, ""> is present when p references the node
// directly; <p, sel> is present when p references a node m and
// <m, sel, n> is in NL.
func (g *Graph) SPathOf(id NodeID) SPathSet {
	var s SPathSet
	for _, e := range g.pl {
		if e.id == id {
			s.Add(SPath{Pvar: pvarTab.name(e.sym)})
		}
	}
	for _, e := range g.pl {
		for _, ed := range g.outRun(e.id) {
			if ed.b == id {
				s.Add(SPath{Pvar: pvarTab.name(e.sym), Sel: selTab.name(ed.sel)})
			}
		}
	}
	return s
}

// spathsByPos fills sets (parallel to g.ids, pre-zeroed) with the SPATH
// of every node; the allocation-sensitive core shared by SPaths and the
// canonical encoder.
func (g *Graph) spathsByPos(sets []SPathSet) {
	if len(g.pl) == 0 {
		return
	}
	psnap := pvarTab.load()
	var ssnap *symSnap
	for _, e := range g.pl {
		pname := psnap.names[e.sym-1]
		sets[g.posOf(e.id)].Add(SPath{Pvar: pname})
		run := g.outRun(e.id)
		if len(run) > 0 && ssnap == nil {
			ssnap = selTab.load()
		}
		for _, ed := range run {
			sets[g.posOf(ed.b)].Add(SPath{Pvar: pname, Sel: ssnap.names[ed.sel-1]})
		}
	}
}

// SPaths computes SPATH for every node at once. On a frozen graph the
// map is computed once at freeze time and shared; callers must not
// modify it or the sets it holds.
func (g *Graph) SPaths() map[NodeID]SPathSet {
	if g.frozen {
		return g.cSPaths
	}
	sets := make([]SPathSet, len(g.ids))
	g.spathsByPos(sets)
	out := make(map[NodeID]SPathSet, len(g.ids))
	for i, id := range g.ids {
		out[id] = sets[i]
	}
	return out
}

// StructureOf computes the STRUCTURE derived property for every node:
// an identifier of the weakly-connected component the node belongs to,
// keyed by the sorted set of pvars that can reach the component. Nodes
// of different components are never summarized ("Structure avoids the
// summarization of nodes representing non-connected components").
func (g *Graph) StructureOf() map[NodeID]string {
	// Union-find over undirected adjacency, on node positions.
	n := len(g.ids)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.outE {
		ra, rb := find(int32(g.posOf(e.a))), find(int32(g.posOf(e.b)))
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	// Collect, per component, the sorted pvars anchored in it.
	pvarsByRoot := make(map[int32][]string)
	for _, e := range g.pl {
		r := find(int32(g.posOf(e.id)))
		pvarsByRoot[r] = append(pvarsByRoot[r], pvarTab.name(e.sym))
	}
	out := make(map[NodeID]string, n)
	for i, id := range g.ids {
		r := find(int32(i))
		ps := pvarsByRoot[r]
		sort.Strings(ps)
		if len(ps) == 0 {
			// Unreachable component: identify by its root id so distinct
			// garbage components stay distinct until collected.
			out[id] = "#" + itoa(int(g.ids[r]))
			continue
		}
		out[id] = strings.Join(ps, ",")
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Reachable returns the set of nodes reachable from any pvar by
// following NL links forward.
func (g *Graph) Reachable() map[NodeID]struct{} {
	seen := make(map[NodeID]struct{}, len(g.ids))
	var stack []NodeID
	for _, e := range g.pl {
		if _, ok := seen[e.id]; !ok {
			seen[e.id] = struct{}{}
			stack = append(stack, e.id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ed := range g.outRun(id) {
			if _, ok := seen[ed.b]; !ok {
				seen[ed.b] = struct{}{}
				stack = append(stack, ed.b)
			}
		}
	}
	return seen
}

// reachableByPos marks reach (parallel to g.ids, pre-zeroed) for every
// node reachable from a pvar, using stack as DFS scratch; the grown
// stack is returned so pooled callers keep its capacity.
func (g *Graph) reachableByPos(reach []bool, stack []int) []int {
	stack = stack[:0]
	for _, e := range g.pl {
		p := g.posOf(e.id)
		if !reach[p] {
			reach[p] = true
			stack = append(stack, p)
		}
	}
	for len(stack) > 0 {
		pos := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ed := range g.outRun(g.ids[pos]) {
			p := g.posOf(ed.b)
			if !reach[p] {
				reach[p] = true
				stack = append(stack, p)
			}
		}
	}
	return stack
}

// CollectGarbage removes every node not reachable from a pvar and
// returns how many nodes were removed. Memory that no pvar can reach
// can never be navigated by the program again, so dropping it keeps the
// graph a valid approximation of the live structure (this is how node
// n2 disappears in the paper's Fig. 1(c) walk-through).
//
// A garbage location may still reference surviving locations, so before
// a garbage node is dropped, the definite SELIN entries of its
// surviving link targets are demoted to possible when the dropped link
// was their witness: the incoming reference still exists concretely,
// the graph just stops modelling its origin.
func (g *Graph) CollectGarbage() int {
	n := len(g.ids)
	if n == 0 {
		return 0
	}
	ws := getWorkScratch()
	ws.marks = growBool(ws.marks, n)
	ws.stack = g.reachableByPos(ws.marks, ws.stack)
	// Snapshot the garbage IDs: positions shift as nodes are removed.
	ws.nodeIDs = ws.nodeIDs[:0]
	for pos, ok := range ws.marks {
		if !ok {
			ws.nodeIDs = append(ws.nodeIDs, g.ids[pos])
		}
	}
	// Survivor check by ID against the pre-removal snapshot: garbage
	// IDs are in ws.nodeIDs (sorted, since positions are).
	garbage := ws.nodeIDs
	isGarbage := func(id NodeID) bool {
		i := sort.Search(len(garbage), func(i int) bool { return garbage[i] >= id })
		return i < len(garbage) && garbage[i] == id
	}
	for _, id := range garbage {
		for _, ed := range g.outRun(id) {
			if ed.b == id || isGarbage(ed.b) {
				continue
			}
			dst := g.Node(ed.b)
			if dst != nil && dst.SelIn.HasSym(ed.sel) {
				dst.SelIn.RemoveSym(ed.sel)
				dst.PosSelIn.AddSym(ed.sel)
			}
		}
		g.RemoveNode(id)
	}
	removed := len(garbage)
	putWorkScratch(ws)
	return removed
}

// DefiniteLink reports whether <src, sel, dst> holds in *every* concrete
// configuration the graph covers: the source is a singleton whose sel
// reference definitely exists (sel in SELOUT) and dst is its only
// possible target.
func (g *Graph) DefiniteLink(src NodeID, sel string, dst NodeID) bool {
	return g.definiteLinkSym(src, selTab.lookup(sel), dst)
}

// DefiniteLinkSym is DefiniteLink addressed by interned selector.
func (g *Graph) DefiniteLinkSym(src NodeID, sel Sym, dst NodeID) bool {
	return g.definiteLinkSym(src, sel, dst)
}

func (g *Graph) definiteLinkSym(src NodeID, sel Sym, dst NodeID) bool {
	s := g.Node(src)
	if s == nil || !s.Singleton || !s.SelOut.HasSym(sel) {
		return false
	}
	t, ok := g.soleTarget(src, sel)
	return ok && t == dst
}

// RefreshSingleton recomputes the share and reference-pattern state of a
// singleton node from the graph after links around it changed. For a
// singleton the graph is the ground truth:
//
//   - sel in SELIN iff some incoming sel link is definite; otherwise
//     sel in PosSELIN iff any incoming sel link remains.
//   - SHSEL(n, sel) can be reset to false when every remaining incoming
//     sel link comes from a singleton source and at most one remains.
//     Links from summary sources have unknown multiplicity, so they can
//     sustain sharing but never prove its absence: in that case the
//     previous value is kept.
//   - SHARED aggregates the same reasoning across all selectors.
//
// Outgoing definite sets are left to the abstract semantics, which
// knows whether a store created or destroyed the reference; this
// function only demotes definite-out entries that no longer have any
// witnessing link.
func (g *Graph) RefreshSingleton(id NodeID) {
	n := g.Node(id)
	if n == nil || !n.Singleton {
		return
	}
	// Incoming reference pattern.
	var allSels SelSet
	for _, e := range g.inRun(id) {
		allSels.AddSym(e.sel)
	}
	allSels = allSels.Union(n.SelIn).Union(n.PosSelIn)
	allSels.EachSym(func(sel Sym) {
		definite := false
		any := false
		for _, e := range g.inRun(id) {
			if e.sel != sel {
				continue
			}
			any = true
			if g.definiteLinkSym(e.b, sel, id) {
				definite = true
				break
			}
		}
		switch {
		case !any:
			n.ClearInSym(sel)
		case definite:
			n.MarkDefiniteInSym(sel)
		default:
			n.SelIn.RemoveSym(sel)
			n.MarkPossibleInSym(sel)
		}
	})
	// Share information. Refresh only ever *lowers* the share flags:
	// sharing is created exclusively by the store semantics (absem's
	// link), where the update is exact. Raising here on link counts
	// would confuse may-links (e.g. the duplicated candidates left by
	// materialization) with simultaneous references and poison whole
	// fixed points with spurious SHARED attributes.
	totalLinks := 0
	anySummarySource := false
	run := g.inRun(id)
	for i := 0; i < len(run); i++ {
		// Count and classify the sources of one selector. The run is
		// (src, sel-rank) ordered, so same-sel entries are not
		// contiguous; gather per selector explicitly.
		sel := run[i].sel
		seenBefore := false
		for j := 0; j < i; j++ {
			if run[j].sel == sel {
				seenBefore = true
				break
			}
		}
		if seenBefore {
			continue
		}
		srcs := 0
		allSingleton := true
		for j := i; j < len(run); j++ {
			if run[j].sel != sel {
				continue
			}
			srcs++
			if sn := g.Node(run[j].b); sn == nil || !sn.Singleton {
				allSingleton = false
				anySummarySource = true
			}
		}
		if allSingleton && srcs < 2 {
			n.ShSel.RemoveSym(sel)
		}
		totalLinks += srcs
	}
	// Drop SHSEL entries for selectors with no incoming links at all.
	n.ShSel.EachSym(func(sel Sym) {
		if g.countSources(id, sel) == 0 {
			n.ShSel.RemoveSym(sel)
		}
	})
	if !anySummarySource && totalLinks < 2 && n.ShSel.Empty() {
		n.Shared = false
	}
	// Demote definite-out entries with no witnessing link.
	n.SelOut.EachSym(func(sel Sym) {
		if !g.hasTarget(id, sel) {
			n.ClearOutSym(sel)
		}
	})
	n.PosSelOut.EachSym(func(sel Sym) {
		if !g.hasTarget(id, sel) {
			n.PosSelOut.RemoveSym(sel)
		}
	})
}

// RefreshCycleLinks recomputes CYCLELINKS for a singleton node: the pair
// <selOut, selIn> is definite when the node's selOut reference
// definitely exists, has a single target, and that target definitely
// points back through selIn.
func (g *Graph) RefreshCycleLinks(id NodeID) {
	n := g.Node(id)
	if n == nil || !n.Singleton {
		return
	}
	n.Cycle = CycleSet{}
	g.eachOutSelector(id, func(selOut Sym) {
		t, ok := g.soleTarget(id, selOut)
		if !ok || !n.SelOut.HasSym(selOut) {
			return
		}
		g.eachOutSelector(t, func(selIn Sym) {
			if g.definiteLinkSym(t, selIn, id) {
				n.Cycle.Add(CyclePair{Out: selTab.name(selOut), In: selTab.name(selIn)})
			}
		})
	})
}
