package rsg

import (
	"sort"
	"strings"
)

// SPathOf computes the SPATH derived property of a node: the set of
// access paths of length <= 1 from pvars to it (Sect. 3). The
// zero-length path <p, ""> is present when p references the node
// directly; <p, sel> is present when p references a node m and
// <m, sel, n> is in NL.
func (g *Graph) SPathOf(id NodeID) SPathSet {
	s := NewSPathSet()
	for p, t := range g.pl {
		if t == id {
			s.Add(SPath{Pvar: p})
		}
	}
	for p, t := range g.pl {
		for _, sel := range g.OutSelectors(t) {
			for _, dst := range g.Targets(t, sel) {
				if dst == id {
					s.Add(SPath{Pvar: p, Sel: sel})
				}
			}
		}
	}
	return s
}

// SPaths computes SPATH for every node at once. On a frozen graph the
// map is computed once at freeze time and shared; callers must not
// modify it or the sets it holds.
func (g *Graph) SPaths() map[NodeID]SPathSet {
	if g.frozen {
		return g.cSPaths
	}
	out := make(map[NodeID]SPathSet, len(g.nodes))
	for id := range g.nodes {
		out[id] = NewSPathSet()
	}
	for p, t := range g.pl {
		out[t].Add(SPath{Pvar: p})
		for _, sel := range g.OutSelectors(t) {
			for _, dst := range g.Targets(t, sel) {
				out[dst].Add(SPath{Pvar: p, Sel: sel})
			}
		}
	}
	return out
}

// StructureOf computes the STRUCTURE derived property for every node:
// an identifier of the weakly-connected component the node belongs to,
// keyed by the sorted set of pvars that can reach the component. Nodes
// of different components are never summarized ("Structure avoids the
// summarization of nodes representing non-connected components").
func (g *Graph) StructureOf() map[NodeID]string {
	// Union-find over undirected adjacency.
	parent := make(map[NodeID]NodeID, len(g.nodes))
	var find func(NodeID) NodeID
	find = func(x NodeID) NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b NodeID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for id := range g.nodes {
		parent[id] = id
	}
	for _, l := range g.Links() {
		union(l.Src, l.Dst)
	}
	// Collect, per component, the sorted pvars anchored in it.
	pvarsByRoot := make(map[NodeID][]string)
	for p, t := range g.pl {
		r := find(t)
		pvarsByRoot[r] = append(pvarsByRoot[r], p)
	}
	out := make(map[NodeID]string, len(g.nodes))
	for id := range g.nodes {
		r := find(id)
		ps := pvarsByRoot[r]
		sort.Strings(ps)
		if len(ps) == 0 {
			// Unreachable component: identify by its root id so distinct
			// garbage components stay distinct until collected.
			out[id] = "#" + itoa(int(r))
			continue
		}
		out[id] = strings.Join(ps, ",")
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Reachable returns the set of nodes reachable from any pvar by
// following NL links forward.
func (g *Graph) Reachable() map[NodeID]struct{} {
	seen := make(map[NodeID]struct{})
	var stack []NodeID
	for _, t := range g.pl {
		if _, ok := seen[t]; !ok {
			seen[t] = struct{}{}
			stack = append(stack, t)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, sel := range g.OutSelectors(id) {
			for _, dst := range g.Targets(id, sel) {
				if _, ok := seen[dst]; !ok {
					seen[dst] = struct{}{}
					stack = append(stack, dst)
				}
			}
		}
	}
	return seen
}

// CollectGarbage removes every node not reachable from a pvar and
// returns how many nodes were removed. Memory that no pvar can reach
// can never be navigated by the program again, so dropping it keeps the
// graph a valid approximation of the live structure (this is how node
// n2 disappears in the paper's Fig. 1(c) walk-through).
//
// A garbage location may still reference surviving locations, so before
// a garbage node is dropped, the definite SELIN entries of its
// surviving link targets are demoted to possible when the dropped link
// was their witness: the incoming reference still exists concretely,
// the graph just stops modelling its origin.
func (g *Graph) CollectGarbage() int {
	reach := g.Reachable()
	removed := 0
	for _, id := range g.NodeIDs() {
		if _, ok := reach[id]; !ok {
			for _, l := range g.OutLinks(id) {
				if _, survives := reach[l.Dst]; !survives || l.Dst == id {
					continue
				}
				dst := g.nodes[l.Dst]
				if dst != nil && dst.SelIn.Has(l.Sel) {
					dst.SelIn.Remove(l.Sel)
					dst.PosSelIn.Add(l.Sel)
				}
			}
			g.RemoveNode(id)
			removed++
		}
	}
	return removed
}

// DefiniteLink reports whether <src, sel, dst> holds in *every* concrete
// configuration the graph covers: the source is a singleton whose sel
// reference definitely exists (sel in SELOUT) and dst is its only
// possible target.
func (g *Graph) DefiniteLink(src NodeID, sel string, dst NodeID) bool {
	s := g.nodes[src]
	if s == nil || !s.Singleton || !s.SelOut.Has(sel) {
		return false
	}
	ts := g.Targets(src, sel)
	return len(ts) == 1 && ts[0] == dst
}

// RefreshSingleton recomputes the share and reference-pattern state of a
// singleton node from the graph after links around it changed. For a
// singleton the graph is the ground truth:
//
//   - sel in SELIN iff some incoming sel link is definite; otherwise
//     sel in PosSELIN iff any incoming sel link remains.
//   - SHSEL(n, sel) can be reset to false when every remaining incoming
//     sel link comes from a singleton source and at most one remains.
//     Links from summary sources have unknown multiplicity, so they can
//     sustain sharing but never prove its absence: in that case the
//     previous value is kept.
//   - SHARED aggregates the same reasoning across all selectors.
//
// Outgoing definite sets are left to the abstract semantics, which
// knows whether a store created or destroyed the reference; this
// function only demotes definite-out entries that no longer have any
// witnessing link.
func (g *Graph) RefreshSingleton(id NodeID) {
	n := g.nodes[id]
	if n == nil || !n.Singleton {
		return
	}
	// Incoming reference pattern.
	allSels := NewSelSet()
	for _, sel := range g.InSelectors(id) {
		allSels.Add(sel)
	}
	for _, sel := range n.SelIn.Sorted() {
		allSels.Add(sel)
	}
	for _, sel := range n.PosSelIn.Sorted() {
		allSels.Add(sel)
	}
	for _, sel := range allSels.Sorted() {
		srcs := g.Sources(id, sel)
		if len(srcs) == 0 {
			n.ClearIn(sel)
			continue
		}
		definite := false
		for _, s := range srcs {
			if g.DefiniteLink(s, sel, id) {
				definite = true
				break
			}
		}
		if definite {
			n.MarkDefiniteIn(sel)
		} else {
			n.SelIn.Remove(sel)
			n.MarkPossibleIn(sel)
		}
	}
	// Share information. Refresh only ever *lowers* the share flags:
	// sharing is created exclusively by the store semantics (absem's
	// link), where the update is exact. Raising here on link counts
	// would confuse may-links (e.g. the duplicated candidates left by
	// materialization) with simultaneous references and poison whole
	// fixed points with spurious SHARED attributes.
	totalLinks := 0
	anySummarySource := false
	for _, sel := range g.InSelectors(id) {
		srcs := g.Sources(id, sel)
		allSingleton := true
		for _, s := range srcs {
			if sn := g.nodes[s]; sn == nil || !sn.Singleton {
				allSingleton = false
				anySummarySource = true
			}
		}
		if allSingleton && len(srcs) < 2 {
			n.ShSel.Remove(sel)
		}
		totalLinks += len(srcs)
	}
	// Drop SHSEL entries for selectors with no incoming links at all.
	for _, sel := range n.ShSel.Sorted() {
		if len(g.Sources(id, sel)) == 0 {
			n.ShSel.Remove(sel)
		}
	}
	if !anySummarySource && totalLinks < 2 && len(n.ShSel) == 0 {
		n.Shared = false
	}
	// Demote definite-out entries with no witnessing link.
	for _, sel := range n.SelOut.Sorted() {
		if len(g.Targets(id, sel)) == 0 {
			n.ClearOut(sel)
		}
	}
	for _, sel := range n.PosSelOut.Sorted() {
		if len(g.Targets(id, sel)) == 0 {
			n.PosSelOut.Remove(sel)
		}
	}
}

// RefreshCycleLinks recomputes CYCLELINKS for a singleton node: the pair
// <selOut, selIn> is definite when the node's selOut reference
// definitely exists, has a single target, and that target definitely
// points back through selIn.
func (g *Graph) RefreshCycleLinks(id NodeID) {
	n := g.nodes[id]
	if n == nil || !n.Singleton {
		return
	}
	n.Cycle = NewCycleSet()
	for _, selOut := range g.OutSelectors(id) {
		ts := g.Targets(id, selOut)
		if len(ts) != 1 || !n.SelOut.Has(selOut) {
			continue
		}
		t := ts[0]
		for _, selIn := range g.OutSelectors(t) {
			if g.DefiniteLink(t, selIn, id) {
				n.Cycle.Add(CyclePair{Out: selOut, In: selIn})
			}
		}
	}
}
