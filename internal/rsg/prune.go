package rsg

// Prune applies the paper's PRUNE operation (Sect. 4.2) in place: an
// iterative removal of the nodes and links that contradict the graph's
// own properties, typically after DIVIDE or materialization left stale
// elements behind. It returns false when the graph turns out to be
// infeasible — a node directly referenced by a pvar violates its
// properties, so no concrete configuration matches the graph and the
// caller must discard it.
//
// Four rules run to a fixed point:
//
//  1. NL_PRUNE: a link <n1, sel_i, n2> is removed when n1 has a cycle
//     link <sel_i, sel_j> but <n2, sel_j, n1> is not in NL — the
//     candidate target provably does not close the definite cycle.
//  2. Share pruning: when a singleton node b has SHSEL(b, sel) = false
//     and one incoming sel link is definite, every other incoming sel
//     link is removed ("because node n3 is not shared by selector nxt
//     and we are sure that <n1,nxt,n3> exists ..."). Likewise, when
//     SHARED(b) = false, a definite incoming link evicts all other
//     incoming links regardless of selector.
//  3. N_PRUNE: a node is removed when a definite reference-pattern
//     entry (SELIN/SELOUT minus the possible sets) has no witnessing
//     link left.
//  4. Unreachable nodes are garbage collected.
func Prune(g *Graph) bool {
	for {
		changed := false

		// Rule 1: NL_PRUNE.
		for _, l := range g.Links() {
			if !g.HasLink(l.Src, l.Sel, l.Dst) {
				continue // removed by an earlier iteration this round
			}
			n1 := g.Node(l.Src)
			if n1 == nil {
				continue
			}
			for pair := range n1.Cycle {
				if pair.Out != l.Sel {
					continue
				}
				if !g.HasLink(l.Dst, pair.In, l.Src) {
					g.RemoveLink(l.Src, l.Sel, l.Dst)
					changed = true
					break
				}
			}
		}

		// Rule 2: share pruning.
		for _, id := range g.NodeIDs() {
			b := g.Node(id)
			if b == nil || !b.Singleton {
				continue
			}
			for _, sel := range g.InSelectors(id) {
				if b.SharedBy(sel) {
					continue
				}
				srcs := g.Sources(id, sel)
				if len(srcs) < 2 {
					continue
				}
				var definite NodeID = -1
				for _, s := range srcs {
					if g.DefiniteLink(s, sel, id) {
						definite = s
						break
					}
				}
				if definite < 0 {
					continue
				}
				for _, s := range srcs {
					if s != definite {
						g.RemoveLink(s, sel, id)
						changed = true
					}
				}
			}
			if !b.Shared {
				// At most one heap reference in total: a definite link
				// evicts every other incoming link.
				inLinks := g.InLinks(id)
				if len(inLinks) >= 2 {
					var keep *Link
					for i := range inLinks {
						l := inLinks[i]
						if g.DefiniteLink(l.Src, l.Sel, l.Dst) {
							keep = &inLinks[i]
							break
						}
					}
					if keep != nil {
						for _, l := range inLinks {
							if l != *keep {
								g.RemoveLink(l.Src, l.Sel, l.Dst)
								changed = true
							}
						}
					}
				}
			}
		}

		// Rule 3: N_PRUNE.
		for _, id := range g.NodeIDs() {
			n := g.Node(id)
			if n == nil {
				continue
			}
			if !nPrune(g, n) {
				continue
			}
			if len(g.PvarsOf(id)) > 0 {
				return false // infeasible branch
			}
			g.RemoveNode(id)
			changed = true
		}

		// Rule 4: garbage collection.
		if g.CollectGarbage() > 0 {
			changed = true
		}

		if !changed {
			return true
		}
	}
}

// nPrune is the paper's N_PRUNE(n) predicate.
func nPrune(g *Graph, n *Node) bool {
	for sel := range n.SelOut {
		if n.PosSelOut.Has(sel) {
			continue
		}
		if len(g.Targets(n.ID, sel)) == 0 {
			return true
		}
	}
	for sel := range n.SelIn {
		if n.PosSelIn.Has(sel) {
			continue
		}
		if len(g.Sources(n.ID, sel)) == 0 {
			return true
		}
	}
	return false
}
