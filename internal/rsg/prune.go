package rsg

// Prune applies the paper's PRUNE operation (Sect. 4.2) in place: an
// iterative removal of the nodes and links that contradict the graph's
// own properties, typically after DIVIDE or materialization left stale
// elements behind. It returns false when the graph turns out to be
// infeasible — a node directly referenced by a pvar violates its
// properties, so no concrete configuration matches the graph and the
// caller must discard it.
//
// Four rules run to a fixed point:
//
//  1. NL_PRUNE: a link <n1, sel_i, n2> is removed when n1 has a cycle
//     link <sel_i, sel_j> but <n2, sel_j, n1> is not in NL — the
//     candidate target provably does not close the definite cycle.
//  2. Share pruning: when a singleton node b has SHSEL(b, sel) = false
//     and one incoming sel link is definite, every other incoming sel
//     link is removed ("because node n3 is not shared by selector nxt
//     and we are sure that <n1,nxt,n3> exists ..."). Likewise, when
//     SHARED(b) = false, a definite incoming link evicts all other
//     incoming links regardless of selector.
//  3. N_PRUNE: a node is removed when a definite reference-pattern
//     entry (SELIN/SELOUT minus the possible sets) has no witnessing
//     link left.
//  4. Unreachable nodes are garbage collected.
func Prune(g *Graph) bool { return prune(g, false) }

// PruneLegacyShare is Prune without the anchoring restriction on rule
// 2: any definite incoming link evicts its siblings, even when its
// source node is an unmatched JOIN copy that exists only in some of the
// covered configurations. That was the pre-anchoring behavior and it is
// unsound (it loses links of the configurations the copy is absent
// from); the variant is kept as an ablation so the triage tooling can
// reproduce and regression-test historical failures. Only
// absem.Context.LegacyUnsound routes here.
func PruneLegacyShare(g *Graph) bool { return prune(g, true) }

func prune(g *Graph, legacyShare bool) bool {
	ws := getWorkScratch()
	defer putWorkScratch(ws)
	anchored := ws.marks
	defer func() { ws.marks = anchored }()
	for {
		changed := false

		// Rule 1: NL_PRUNE. Iterate a snapshot of the links; removal
		// mutates the live slices.
		ws.edges = append(ws.edges[:0], g.outE...)
		for _, e := range ws.edges {
			n1 := g.Node(e.a)
			if n1 == nil || n1.Cycle.Empty() {
				continue
			}
			if !g.HasLinkSym(e.a, e.sel, e.b) {
				continue // removed by an earlier iteration this round
			}
			selName := selTab.name(e.sel)
			for _, pair := range n1.Cycle.Sorted() {
				if pair.Out != selName {
					continue
				}
				if !g.HasLinkSym(e.b, selTab.lookup(pair.In), e.a) {
					g.RemoveLinkSym(e.a, e.sel, e.b)
					changed = true
					break
				}
			}
		}

		// Rule 2: share pruning. Only links are removed here, so the
		// node slices are stable. The rule may only trust a definite
		// link whose source node is anchored: guaranteed to represent a
		// location in *every* configuration the graph covers. After
		// JOIN, nodes copied unmatched from one operand exist only in
		// that operand's configurations (embeddings are not surjective),
		// so a definite link out of such a node proves nothing about the
		// other configurations and must not evict their links.
		anchored = growBool(anchored[:0], len(g.ids))
		if legacyShare {
			for i := range anchored {
				anchored[i] = true
			}
		} else {
			g.anchoredByPos(anchored)
		}
		for pos := 0; pos < len(g.ids); pos++ {
			id := g.ids[pos]
			b := g.nodes[pos]
			if !b.Singleton {
				continue
			}
			if g.shareProneSelPrune(id, b, ws, anchored) {
				changed = true
			}
			if !b.Shared {
				// At most one heap reference in total: a definite link
				// evicts every other incoming link.
				ws.edges = append(ws.edges[:0], g.inRun(id)...)
				if len(ws.edges) >= 2 {
					keep := -1
					for i, e := range ws.edges {
						if anchored[g.posOf(e.b)] && g.definiteLinkSym(e.b, e.sel, id) {
							keep = i
							break
						}
					}
					if keep >= 0 {
						for i, e := range ws.edges {
							if i != keep {
								g.RemoveLinkSym(e.b, e.sel, id)
								changed = true
							}
						}
					}
				}
			}
		}

		// Rule 3: N_PRUNE. Snapshot the IDs; nodes are removed inside.
		ws.nodeIDs = append(ws.nodeIDs[:0], g.ids...)
		for _, id := range ws.nodeIDs {
			n := g.Node(id)
			if n == nil {
				continue
			}
			if !nPrune(g, n) {
				continue
			}
			if g.pvarReferenced(id) {
				return false // infeasible branch
			}
			g.RemoveNode(id)
			changed = true
		}

		// Rule 4: garbage collection.
		if g.CollectGarbage() > 0 {
			changed = true
		}

		if !changed {
			return true
		}
	}
}

// anchoredByPos marks marks[pos] (parallel to g.ids, pre-zeroed) for
// every node guaranteed to represent at least one location in every
// concrete configuration the graph covers. Pvar-referenced nodes are
// anchored (PL agreement forces the binding concretely); from there, a
// definite out-reference of an anchored node with a single candidate
// target proves the target is materialized too, so anchoring propagates
// until a fixed point.
func (g *Graph) anchoredByPos(marks []bool) {
	for _, e := range g.pl {
		marks[g.posOf(e.id)] = true
	}
	for {
		changed := false
		for pos, ok := range marks {
			if !ok {
				continue
			}
			n := g.nodes[pos]
			n.SelOut.EachSym(func(sel Sym) {
				t, sole := g.soleTarget(n.ID, sel)
				if !sole {
					return
				}
				if tp := g.posOf(t); tp >= 0 && !marks[tp] {
					marks[tp] = true
					changed = true
				}
			})
		}
		if !changed {
			return
		}
	}
}

// shareProneSelPrune applies rule 2's per-selector eviction to one
// singleton node; reports whether a link was removed. A definite link
// counts as an eviction witness only when its source is anchored (see
// anchoredByPos).
func (g *Graph) shareProneSelPrune(id NodeID, b *Node, ws *workScratch, anchored []bool) bool {
	changed := false
	// Distinct incoming selectors; the in run is (src, sel-rank)
	// ordered, so dedup explicitly. Snapshot the run: we remove links.
	ws.edges = append(ws.edges[:0], g.inRun(id)...)
	run := ws.edges
	for i := 0; i < len(run); i++ {
		sel := run[i].sel
		dup := false
		for j := 0; j < i; j++ {
			if run[j].sel == sel {
				dup = true
				break
			}
		}
		if dup || b.ShSel.HasSym(sel) {
			continue
		}
		srcs := 0
		definite := NodeID(-1)
		for _, e := range run {
			if e.sel != sel {
				continue
			}
			srcs++
			if definite < 0 && anchored[g.posOf(e.b)] && g.definiteLinkSym(e.b, sel, id) {
				definite = e.b
			}
		}
		if srcs < 2 || definite < 0 {
			continue
		}
		for _, e := range run {
			if e.sel == sel && e.b != definite {
				g.RemoveLinkSym(e.b, sel, id)
				changed = true
			}
		}
	}
	return changed
}

// nPrune is the paper's N_PRUNE(n) predicate.
func nPrune(g *Graph, n *Node) bool {
	prune := false
	n.SelOut.EachSym(func(sel Sym) {
		if prune || n.PosSelOut.HasSym(sel) {
			return
		}
		if !g.hasTarget(n.ID, sel) {
			prune = true
		}
	})
	if prune {
		return true
	}
	n.SelIn.EachSym(func(sel Sym) {
		if prune || n.PosSelIn.HasSym(sel) {
			return
		}
		if g.countSources(n.ID, sel) == 0 {
			prune = true
		}
	})
	return prune
}
