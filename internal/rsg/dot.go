package rsg

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. Summary nodes are drawn
// with doubled borders; shared nodes are shaded; pvars appear as
// plaintext sources.
func DOT(g *Graph, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=record, fontsize=10];\n")
	for _, p := range g.Pvars() {
		fmt.Fprintf(&b, "  pv_%s [shape=plaintext, label=%q];\n", sanitizeDot(p), p)
	}
	for _, n := range g.Nodes() {
		var attrs []string
		if !n.Singleton {
			attrs = append(attrs, "peripheries=2")
		}
		if n.Shared {
			attrs = append(attrs, `style=filled`, `fillcolor="#f2d7d5"`)
		}
		label := fmt.Sprintf("n%d: %s", n.ID, n.Type)
		var props []string
		if !n.ShSel.Empty() {
			props = append(props, "shsel="+n.ShSel.String())
		}
		if !n.Cycle.Empty() {
			props = append(props, "cyc="+n.Cycle.String())
		}
		if !n.Touch.Empty() {
			props = append(props, "touch="+n.Touch.String())
		}
		if len(props) > 0 {
			label += "\\n" + strings.Join(props, " ")
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, strings.Join(attrs, ", "))
	}
	for _, p := range g.Pvars() {
		fmt.Fprintf(&b, "  pv_%s -> n%d;\n", sanitizeDot(p), g.PvarTarget(p).ID)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", l.Src, l.Dst, l.Sel)
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeDot(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
