package rsg

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax. Summary nodes are drawn
// with doubled borders; shared nodes are shaded; pvars appear as
// plaintext sources.
func DOT(g *Graph, name string) string {
	return DOTWith(g, name, nil, false)
}

// DOTStyle overrides the rendering of one node in DOTWith.
type DOTStyle struct {
	// Fill replaces the fill color (shared nodes default to a red
	// shade, every other node to unfilled).
	Fill string
	// Tag is an extra label line, e.g. the concrete cells a partial
	// embedding maps onto the node.
	Tag string
}

// DOTWith renders like DOT with per-node style overrides; the triage
// explainer uses it to highlight the partial embedding on the nearest
// RSG. When cluster is set, the output is a `subgraph cluster_<name>`
// block (no digraph wrapper) so the caller can place several graphs
// side by side in one drawing; node names are prefixed with the cluster
// name to keep them distinct.
func DOTWith(g *Graph, name string, styles map[NodeID]DOTStyle, cluster bool) string {
	var b strings.Builder
	prefix := ""
	if cluster {
		prefix = sanitizeDot(name) + "_"
		fmt.Fprintf(&b, "subgraph cluster_%s {\n  label=%q;\n", sanitizeDot(name), name)
	} else {
		fmt.Fprintf(&b, "digraph %q {\n", name)
	}
	b.WriteString("  rankdir=LR;\n  node [shape=record, fontsize=10];\n")
	for _, p := range g.Pvars() {
		fmt.Fprintf(&b, "  %spv_%s [shape=plaintext, label=%q];\n", prefix, sanitizeDot(p), p)
	}
	for _, n := range g.Nodes() {
		var attrs []string
		if !n.Singleton {
			attrs = append(attrs, "peripheries=2")
		}
		st := styles[n.ID]
		switch {
		case st.Fill != "":
			attrs = append(attrs, `style=filled`, fmt.Sprintf("fillcolor=%q", st.Fill))
		case n.Shared:
			attrs = append(attrs, `style=filled`, `fillcolor="#f2d7d5"`)
		}
		label := fmt.Sprintf("n%d: %s", n.ID, n.Type)
		var props []string
		if !n.ShSel.Empty() {
			props = append(props, "shsel="+n.ShSel.String())
		}
		if !n.Cycle.Empty() {
			props = append(props, "cyc="+n.Cycle.String())
		}
		if !n.Touch.Empty() {
			props = append(props, "touch="+n.Touch.String())
		}
		if len(props) > 0 {
			label += "\\n" + strings.Join(props, " ")
		}
		if st.Tag != "" {
			label += "\\n" + st.Tag
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		fmt.Fprintf(&b, "  %sn%d [%s];\n", prefix, n.ID, strings.Join(attrs, ", "))
	}
	for _, p := range g.Pvars() {
		fmt.Fprintf(&b, "  %spv_%s -> %sn%d;\n", prefix, sanitizeDot(p), prefix, g.PvarTarget(p).ID)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "  %sn%d -> %sn%d [label=%q];\n", prefix, l.Src, prefix, l.Dst, l.Sel)
	}
	b.WriteString("}\n")
	return b.String()
}

func sanitizeDot(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
