package rsg

import (
	"sort"
	"strings"
)

// AliasKey returns a canonical encoding of the paper's ALIAS(rsg)
// relation: the partition of the non-NULL pvars by referenced node.
// Two graphs have the same alias relation iff their keys are equal.
// Frozen graphs serve the key from the cache built at freeze time.
func AliasKey(g *Graph) string {
	if g.frozen {
		return g.cAlias
	}
	return aliasKey(g)
}

func aliasKey(g *Graph) string {
	groups := make(map[NodeID][]string)
	for _, p := range g.Pvars() {
		t := g.PvarTarget(p)
		groups[t.ID] = append(groups[t.ID], p)
	}
	keys := make([]string, 0, len(groups))
	for _, ps := range groups {
		sort.Strings(ps)
		keys = append(keys, strings.Join(ps, ","))
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// Compatible is the paper's COMPATIBLE(rsg1, rsg2) predicate
// (Sect. 4.3): the alias relations must match and, for every pvar, the
// two directly referenced nodes must satisfy the join compatibility
// check.
func Compatible(lvl Level, g1, g2 *Graph) bool {
	if AliasKey(g1) != AliasKey(g2) {
		return false
	}
	return CompatibleSP(lvl, g1, g2, g1.SPaths(), g2.SPaths())
}

// CompatibleSP is Compatible with the alias keys already known equal
// and the SPATH maps precomputed by the caller (the RSRSG reduction
// caches them per graph).
func CompatibleSP(lvl Level, g1, g2 *Graph, sp1, sp2 map[NodeID]SPathSet) bool {
	for _, p := range g1.Pvars() {
		n1 := g1.PvarTarget(p)
		n2 := g2.PvarTarget(p)
		if n2 == nil {
			return false // alias keys equal => cannot happen, defensive
		}
		if !CNodesJoin(lvl, n1, n2, sp1[n1.ID], sp2[n2.ID]) {
			return false
		}
	}
	return true
}

// Join implements the paper's JOIN(rsg1, rsg2) = rsg operation
// (Sect. 4.3) for two COMPATIBLE graphs. Compatible node pairs are
// merged with MERGE_NODES; unmatched nodes are copied; PL and NL are
// translated through the MAP function. The caller typically compresses
// the result.
//
// The paper's set formula merges every compatible (n_i, n_j) pair; to
// keep MAP well defined we compute a deterministic one-to-one matching:
// pvar-referenced nodes are matched by their alias group first (required
// so each pvar keeps a single target), then remaining nodes greedily in
// ID order.
func Join(lvl Level, g1, g2 *Graph) *Graph {
	sp1, sp2 := g1.SPaths(), g2.SPaths()

	match := make(map[NodeID]NodeID)   // g1 node -> g2 node
	taken := make(map[NodeID]struct{}) // matched g2 nodes

	// Pass 1: force-match pvar targets (alias groups correspond 1:1).
	for _, p := range g1.Pvars() {
		n1 := g1.PvarTarget(p)
		n2 := g2.PvarTarget(p)
		if n1 == nil || n2 == nil {
			continue
		}
		if _, ok := match[n1.ID]; ok {
			continue
		}
		match[n1.ID] = n2.ID
		taken[n2.ID] = struct{}{}
	}

	// Pass 2: greedy matching of the remaining nodes.
	for _, id1 := range g1.NodeIDs() {
		if _, ok := match[id1]; ok {
			continue
		}
		n1 := g1.Node(id1)
		for _, id2 := range g2.NodeIDs() {
			if _, ok := taken[id2]; ok {
				continue
			}
			n2 := g2.Node(id2)
			if CNodes(lvl, n1, n2, sp1[id1], sp2[id2]) {
				match[id1] = id2
				taken[id2] = struct{}{}
				break
			}
		}
	}

	out := NewGraph()
	map1 := make(map[NodeID]NodeID, g1.NumNodes())
	map2 := make(map[NodeID]NodeID, g2.NumNodes())

	for _, id1 := range g1.NodeIDs() {
		n1 := g1.Node(id1)
		if id2, ok := match[id1]; ok {
			merged := MergeNodes(g1, n1, g2, g2.Node(id2), false)
			nn := out.AddNode(merged)
			map1[id1] = nn.ID
			map2[id2] = nn.ID
		} else {
			nn := out.AddNode(n1.Clone())
			map1[id1] = nn.ID
		}
	}
	for _, id2 := range g2.NodeIDs() {
		if _, ok := map2[id2]; ok {
			continue
		}
		nn := out.AddNode(g2.Node(id2).Clone())
		map2[id2] = nn.ID
	}

	for _, p := range g1.Pvars() {
		out.SetPvar(p, map1[g1.PvarTarget(p).ID])
	}
	for _, p := range g2.Pvars() {
		out.SetPvar(p, map2[g2.PvarTarget(p).ID])
	}
	for _, l := range g1.Links() {
		out.AddLink(map1[l.Src], l.Sel, map1[l.Dst])
	}
	for _, l := range g2.Links() {
		out.AddLink(map2[l.Src], l.Sel, map2[l.Dst])
	}
	return out
}
