package rsg

import (
	"sort"
	"strings"
)

// AliasKey returns a canonical encoding of the paper's ALIAS(rsg)
// relation: the partition of the non-NULL pvars by referenced node.
// Two graphs have the same alias relation iff their keys are equal.
// Frozen graphs serve the key from the cache built at freeze time.
func AliasKey(g *Graph) string {
	if g.frozen {
		return g.cAlias
	}
	return aliasKey(g)
}

func aliasKey(g *Graph) string {
	if len(g.pl) == 0 {
		return ""
	}
	// g.pl is name-ordered, so each group's pvars come out sorted.
	groups := make(map[NodeID][]string, len(g.pl))
	snap := pvarTab.load()
	for _, e := range g.pl {
		groups[e.id] = append(groups[e.id], snap.names[e.sym-1])
	}
	keys := make([]string, 0, len(groups))
	for _, ps := range groups {
		keys = append(keys, strings.Join(ps, ","))
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// Compatible is the paper's COMPATIBLE(rsg1, rsg2) predicate
// (Sect. 4.3): the alias relations must match and, for every pvar, the
// two directly referenced nodes must satisfy the join compatibility
// check.
func Compatible(lvl Level, g1, g2 *Graph) bool {
	if AliasKey(g1) != AliasKey(g2) {
		return false
	}
	return CompatibleSP(lvl, g1, g2, g1.SPaths(), g2.SPaths())
}

// CompatibleSP is Compatible with the alias keys already known equal
// and the SPATH maps precomputed by the caller (the RSRSG reduction
// caches them per graph).
func CompatibleSP(lvl Level, g1, g2 *Graph, sp1, sp2 map[NodeID]SPathSet) bool {
	for _, e := range g1.pl {
		n1 := g1.Node(e.id)
		n2 := g2.PvarTargetSym(e.sym)
		if n2 == nil {
			return false // alias keys equal => cannot happen, defensive
		}
		if !CNodesJoin(lvl, n1, n2, sp1[n1.ID], sp2[n2.ID]) {
			return false
		}
	}
	return true
}

// Join implements the paper's JOIN(rsg1, rsg2) = rsg operation
// (Sect. 4.3) for two COMPATIBLE graphs. Compatible node pairs are
// merged with MERGE_NODES; unmatched nodes are copied; PL and NL are
// translated through the MAP function. The caller typically compresses
// the result.
//
// The paper's set formula merges every compatible (n_i, n_j) pair; to
// keep MAP well defined we compute a deterministic one-to-one matching:
// pvar-referenced nodes are matched by their alias group first (required
// so each pvar keeps a single target), then remaining nodes greedily in
// ID order.
func Join(lvl Level, g1, g2 *Graph) *Graph {
	sp1, sp2 := g1.SPaths(), g2.SPaths()
	n1len, n2len := len(g1.ids), len(g2.ids)

	match := make([]int, n1len) // g1 pos -> g2 pos, -1 unmatched
	for i := range match {
		match[i] = -1
	}
	taken := make([]bool, n2len) // matched g2 positions

	// Pass 1: force-match pvar targets (alias groups correspond 1:1).
	for _, e := range g1.pl {
		t2 := g2.PvarTargetSym(e.sym)
		if t2 == nil {
			continue
		}
		p1 := g1.posOf(e.id)
		if match[p1] >= 0 {
			continue
		}
		p2 := g2.posOf(t2.ID)
		match[p1] = p2
		taken[p2] = true
	}

	// Pass 2: greedy matching of the remaining nodes, in ID order.
	for p1 := 0; p1 < n1len; p1++ {
		if match[p1] >= 0 {
			continue
		}
		node1 := g1.nodes[p1]
		for p2 := 0; p2 < n2len; p2++ {
			if taken[p2] {
				continue
			}
			node2 := g2.nodes[p2]
			if CNodes(lvl, node1, node2, sp1[node1.ID], sp2[node2.ID]) {
				match[p1] = p2
				taken[p2] = true
				break
			}
		}
	}

	out := NewGraph()
	map1 := make([]NodeID, n1len) // g1 pos -> out ID
	map2 := make([]NodeID, n2len) // g2 pos -> out ID

	for p1 := 0; p1 < n1len; p1++ {
		node1 := g1.nodes[p1]
		if p2 := match[p1]; p2 >= 0 {
			merged := MergeNodes(g1, node1, g2, g2.nodes[p2], false)
			nn := out.AddNode(merged)
			map1[p1] = nn.ID
			map2[p2] = nn.ID
		} else {
			nn := out.AddNode(node1.Clone())
			map1[p1] = nn.ID
		}
	}
	for p2 := 0; p2 < n2len; p2++ {
		if taken[p2] {
			continue
		}
		nn := out.AddNode(g2.nodes[p2].Clone())
		map2[p2] = nn.ID
	}

	for _, e := range g1.pl {
		out.SetPvar(pvarTab.name(e.sym), map1[g1.posOf(e.id)])
	}
	for _, e := range g2.pl {
		out.SetPvar(pvarTab.name(e.sym), map2[g2.posOf(e.id)])
	}
	for _, e := range g1.outE {
		out.AddLinkSym(map1[g1.posOf(e.a)], e.sel, map1[g1.posOf(e.b)])
	}
	for _, e := range g2.outE {
		out.AddLinkSym(map2[g2.posOf(e.a)], e.sel, map2[g2.posOf(e.b)])
	}
	return out
}
