package rsg

import "testing"

// These tests walk the paper's Fig. 1 example step by step: the
// abstract interpretation of "x->nxt = NULL" on a doubly-linked list of
// two or more elements.

// TestFigure1Divide checks Fig. 1(b): DIVIDE(rsg, x, nxt) produces one
// graph per destination of x->nxt, each with a single nxt link out of
// n1. No NULL branch appears because nxt is definite in SELOUT(n1).
func TestFigure1Divide(t *testing.T) {
	g, n1, n2, n3 := dlist(true)

	divs := Divide(g, "x", "nxt")
	if len(divs) != 2 {
		t.Fatalf("Divide produced %d graphs, want 2", len(divs))
	}
	byTarget := map[NodeID]*Graph{}
	for _, d := range divs {
		if d.Target < 0 {
			t.Fatalf("unexpected NULL branch: nxt is definite in SELOUT(n1)")
		}
		byTarget[d.Target] = d.G
	}
	if _, ok := byTarget[n2.ID]; !ok {
		t.Fatalf("missing division branch targeting the middle summary n%d", n2.ID)
	}
	if _, ok := byTarget[n3.ID]; !ok {
		t.Fatalf("missing division branch targeting the tail n%d", n3.ID)
	}

	for target, gi := range byTarget {
		targets := gi.Targets(n1.ID, "nxt")
		if len(targets) != 1 || targets[0] != target {
			t.Errorf("branch %d: x's node has nxt targets %v, want [%d]", target, targets, target)
		}
	}
}

// TestFigure1PruneMiddleBranch checks Fig. 1(c) for the branch where
// x->nxt keeps the middle summary: the link <n3,prv,n1> is removed by
// the cycle-link rule (following prv then nxt from n3 no longer reaches
// n3 through n1).
func TestFigure1PruneMiddleBranch(t *testing.T) {
	g, n1, n2, n3 := dlist(true)
	divs := Divide(g, "x", "nxt")
	var branch *Graph
	for _, d := range divs {
		if d.Target == n2.ID {
			branch = d.G
		}
	}
	if branch == nil {
		t.Fatal("no branch targeting n2")
	}
	// Divide already pruned: the stale tail-to-head back link is gone.
	if branch.HasLink(n3.ID, "prv", n1.ID) {
		t.Errorf("<n3,prv,n1> survived pruning; cycle links should remove it")
	}
	// The real back link of the chosen branch remains.
	if !branch.HasLink(n2.ID, "prv", n1.ID) {
		t.Errorf("<n2,prv,n1> should survive: it closes the <nxt,prv> cycle of n1")
	}
}

// TestFigure1PruneTailBranch checks Fig. 1(c) for the two-element
// branch (x->nxt = n3): <n2,prv,n1> and <n2,nxt,n3> and <n3,prv,n2>
// disappear and the unreachable middle summary n2 is collected.
func TestFigure1PruneTailBranch(t *testing.T) {
	g, n1, n2, n3 := dlist(true)
	divs := Divide(g, "x", "nxt")
	var branch *Graph
	for _, d := range divs {
		if d.Target == n3.ID {
			branch = d.G
		}
	}
	if branch == nil {
		t.Fatal("no branch targeting n3")
	}
	if branch.Node(n2.ID) != nil {
		t.Errorf("middle summary n2 should be pruned away in the two-element branch:\n%s", branch)
	}
	if !branch.HasLink(n3.ID, "prv", n1.ID) {
		t.Errorf("<n3,prv,n1> must survive: the two-element list closes its cycle through it")
	}
	if branch.HasLink(n1.ID, "nxt", n2.ID) {
		t.Errorf("division should have removed <n1,nxt,n2> in this branch")
	}
}

// TestFigure1Materialize checks Fig. 1(d): materializing the single
// element referenced by x->nxt out of the middle summary n2 yields a
// singleton n4 whose spurious links are pruned away by cycle-link
// reasoning.
func TestFigure1Materialize(t *testing.T) {
	g, n1, n2, n3 := dlist(true)
	divs := Divide(g, "x", "nxt")
	var branch *Graph
	for _, d := range divs {
		if d.Target == n2.ID {
			branch = d.G
		}
	}
	if branch == nil {
		t.Fatal("no branch targeting n2")
	}

	n4 := Materialize(branch, n1.ID, "nxt")
	if n4 == n2.ID {
		t.Fatalf("materialization should create a fresh node, got the summary back")
	}
	if !branch.Node(n4).Singleton {
		t.Errorf("materialized node must be a singleton")
	}
	if !Prune(branch) {
		t.Fatalf("branch became infeasible after materialization")
	}

	// x->nxt references exactly the materialized node.
	targets := branch.Targets(n1.ID, "nxt")
	if len(targets) != 1 || targets[0] != n4 {
		t.Fatalf("x's node nxt targets = %v, want [%d]", targets, n4)
	}
	// The materialized element points back at the head...
	if !branch.HasLink(n4, "prv", n1.ID) {
		t.Errorf("missing <n4,prv,n1>")
	}
	// ...and not at the remaining middles or itself.
	if branch.HasLink(n4, "prv", n2.ID) {
		t.Errorf("spurious <n4,prv,n2> survived pruning:\n%s", branch)
	}
	if branch.HasLink(n4, "prv", n4) {
		t.Errorf("spurious <n4,prv,n4> survived pruning:\n%s", branch)
	}
	// The summary keeps only its own cycle-consistent links: no middle
	// may reference the head anymore.
	if branch.HasLink(n2.ID, "prv", n1.ID) {
		t.Errorf("spurious <n2,prv,n1> survived pruning:\n%s", branch)
	}
	// Forward chain stays intact: n4 -nxt-> {n2,n3} (one-or-more
	// middles remain possible), n2 -nxt-> {n2,n3}.
	if !branch.HasLink(n4, "nxt", n2.ID) || !branch.HasLink(n4, "nxt", n3.ID) {
		t.Errorf("materialized node lost its forward links:\n%s", branch)
	}
}
