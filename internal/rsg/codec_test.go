package rsg

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// buildRandomGraph constructs a random well-formed graph from a seeded
// source: a pool of types/selectors/pvars, random links and property
// marks. Deterministic per seed so failures replay.
func buildRandomGraph(rng *rand.Rand) *Graph {
	types := []string{"list", "tree", "blob"}
	sels := []string{"nxt", "prv", "left", "right", "dat"}
	pvars := []string{"p", "q", "r", "s", "root", "aux"}

	g := NewGraph()
	nNodes := 1 + rng.Intn(8)
	ids := make([]NodeID, 0, nNodes)
	for i := 0; i < nNodes; i++ {
		n := NewNode(types[rng.Intn(len(types))])
		n.Singleton = rng.Intn(2) == 0
		n.Shared = rng.Intn(3) == 0
		if n.Shared {
			for k := 0; k < rng.Intn(3); k++ {
				n.ShSel.Add(sels[rng.Intn(len(sels))])
			}
		}
		for k := 0; k < rng.Intn(3); k++ {
			n.Cycle.Add(CyclePair{Out: sels[rng.Intn(len(sels))], In: sels[rng.Intn(len(sels))]})
		}
		for k := 0; k < rng.Intn(3); k++ {
			n.Touch.Add(pvars[rng.Intn(len(pvars))])
		}
		g.AddNode(n)
		ids = append(ids, n.ID)
	}
	nLinks := rng.Intn(3 * nNodes)
	for i := 0; i < nLinks; i++ {
		src := ids[rng.Intn(len(ids))]
		dst := ids[rng.Intn(len(ids))]
		sel := sels[rng.Intn(len(sels))]
		g.AddLink(src, sel, dst)
		if rng.Intn(2) == 0 {
			g.Node(src).MarkDefiniteOut(sel)
			g.Node(dst).MarkDefiniteIn(sel)
		} else {
			g.Node(src).MarkPossibleOut(sel)
			g.Node(dst).MarkPossibleIn(sel)
		}
	}
	nPl := rng.Intn(len(pvars))
	for i := 0; i < nPl; i++ {
		g.SetPvar(pvars[rng.Intn(len(pvars))], ids[rng.Intn(len(ids))])
	}
	return g
}

// TestCodecRoundTripRandom is the property test the store's content
// addressing rests on: decode(encode(g)) must digest-equal g, for any
// graph. 500 seeded random graphs.
func TestCodecRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0DEC))
	for i := 0; i < 500; i++ {
		g := buildRandomGraph(rng).Freeze()
		data := EncodeFrozen(g)
		got, err := DecodeFrozen(data)
		if err != nil {
			t.Fatalf("graph %d: decode failed: %v", i, err)
		}
		if got.Digest() != g.Digest() {
			t.Fatalf("graph %d: digest mismatch after round trip:\nwant %x\ngot  %x\noriginal:\n%s\ndecoded:\n%s",
				i, g.Digest(), got.Digest(), g, got)
		}
		// The re-encoding must be byte-identical too: the codec is
		// canonical, not just digest-preserving.
		if !bytes.Equal(EncodeFrozen(got), data) {
			t.Fatalf("graph %d: re-encoding differs from original encoding", i)
		}
	}
}

// TestCodecRoundTripStructure checks full structural equality (not just
// digest) on a hand-built graph covering every encoded field.
func TestCodecRoundTripStructure(t *testing.T) {
	g := NewGraph()
	a := g.AddNode(NewNode("list"))
	b := g.AddNode(NewNode("list"))
	c := g.AddNode(NewNode("tree"))
	a.Singleton = true
	b.Shared = true
	b.ShSel.Add("nxt")
	b.ShSel.Add("prv")
	b.Cycle.Add(CyclePair{Out: "nxt", In: "prv"})
	c.Touch.Add("p")
	c.Touch.Add("q")
	g.AddLink(a.ID, "nxt", b.ID)
	g.AddLink(b.ID, "nxt", c.ID)
	g.AddLink(b.ID, "prv", a.ID)
	a.MarkDefiniteOut("nxt")
	b.MarkDefiniteIn("nxt")
	b.MarkPossibleOut("nxt")
	c.MarkPossibleIn("nxt")
	g.SetPvar("p", a.ID)
	g.SetPvar("root", a.ID)
	frozen := g.Freeze()

	got, err := DecodeFrozen(EncodeFrozen(frozen))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Digest() != frozen.Digest() {
		t.Fatalf("digest mismatch")
	}
	if got.NumNodes() != 3 || got.NumLinks() != 3 {
		t.Fatalf("shape mismatch: %d nodes %d links", got.NumNodes(), got.NumLinks())
	}
	if got.PvarTarget("p") == nil || got.PvarTarget("p").ID != a.ID {
		t.Fatalf("pvar p lost")
	}
	if !got.HasLink(b.ID, "prv", a.ID) {
		t.Fatalf("link b-prv->a lost")
	}
	gb := got.Node(b.ID)
	if !gb.Shared || !gb.SharedBy("nxt") || !gb.SharedBy("prv") {
		t.Fatalf("share state lost: %v", gb)
	}
	if pairs := gb.Cycle.Sorted(); len(pairs) != 1 || pairs[0] != (CyclePair{Out: "nxt", In: "prv"}) {
		t.Fatalf("cycle pairs lost: %v", pairs)
	}
	gc := got.Node(c.ID)
	if tv := gc.Touch.Sorted(); len(tv) != 2 || tv[0] != "p" || tv[1] != "q" {
		t.Fatalf("touch lost: %v", tv)
	}
	// Sources (the inE index) must be rebuilt correctly.
	if srcs := got.Sources(a.ID, "prv"); len(srcs) != 1 || srcs[0] != b.ID {
		t.Fatalf("inE not rebuilt: sources(a, prv) = %v", srcs)
	}
}

// TestCodecEmptyGraph: the entry set's empty graph must round trip.
func TestCodecEmptyGraph(t *testing.T) {
	g := NewGraph().Freeze()
	got, err := DecodeFrozen(EncodeFrozen(g))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Digest() != g.Digest() || got.NumNodes() != 0 {
		t.Fatalf("empty graph round trip broken")
	}
}

// TestCodecRejectsCorruption: decoding must fail cleanly (error, not
// panic, not silent wrong graph) on truncated or bit-flipped input.
func TestCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := buildRandomGraph(rng).Freeze()
	data := EncodeFrozen(g)

	for cut := 0; cut < len(data); cut++ {
		t.Run(fmt.Sprintf("truncate_%d", cut), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncated input: %v", r)
				}
			}()
			got, err := DecodeFrozen(data[:cut])
			// Truncation may still parse if the cut lands after all
			// fields; then the digest must still be right.
			if err == nil && got.Digest() != g.Digest() {
				t.Fatalf("truncated decode produced wrong graph silently")
			}
		})
	}
	for i := 0; i < len(data); i++ {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupt byte %d: %v", i, r)
				}
			}()
			// Error or a decodable-but-different graph are both fine
			// (the store checks the digest); a panic is not.
			_, _ = DecodeFrozen(corrupt)
		}()
	}
}

// TestEncodeUnfrozenPanics pins the API contract.
func TestEncodeUnfrozenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("EncodeFrozen on unfrozen graph did not panic")
		}
	}()
	EncodeFrozen(NewGraph())
}
