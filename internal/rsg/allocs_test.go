package rsg

import "testing"

// Allocation regression guards for the hot kernels on the flat
// encoding. The ceilings are ~2x the measured counts at the time they
// were recorded — loose enough to survive toolchain drift, tight
// enough that reintroducing a per-edge or per-node map blows through
// them immediately.

// midGraph returns a frozen chain of 24 singleton nodes with a pvar on
// the head: big enough that per-node costs dominate the fixed ones,
// small enough to keep the guards fast.
func midGraph() *Graph {
	g, _ := chain(24)
	g.Freeze()
	return g
}

func TestCloneAllocCeiling(t *testing.T) {
	g := midGraph()
	avg := testing.AllocsPerRun(100, func() {
		_ = g.Clone()
	})
	// Measured ~10 allocs/op: the Graph shell plus one backing array
	// per flat slice (nodes, ids, index, outE, inE, pvars...).
	if avg > 20 {
		t.Fatalf("Clone of a frozen %d-node graph: %.1f allocs/op, ceiling 20", g.NumNodes(), avg)
	}
}

func TestCompressAllocCeiling(t *testing.T) {
	g := midGraph()
	avg := testing.AllocsPerRun(100, func() {
		c := g.Clone()
		Compress(c, L1)
	})
	// Clone + full chain-middle summarization into one shared node.
	if avg > 260 {
		t.Fatalf("Clone+Compress of a frozen %d-node graph: %.1f allocs/op, ceiling 260", g.NumNodes(), avg)
	}
}

func TestJoinAllocCeiling(t *testing.T) {
	g1 := midGraph()
	g2 := midGraph()
	if !Compatible(L1, g1, g2) {
		t.Fatal("fixture graphs must be compatible")
	}
	avg := testing.AllocsPerRun(100, func() {
		_ = Join(L1, g1, g2)
	})
	if avg > 400 {
		t.Fatalf("Join of two frozen %d-node graphs: %.1f allocs/op, ceiling 400", g1.NumNodes(), avg)
	}
}
