// Package concrete implements a concrete interpreter for the IR, an
// abstraction function from concrete heaps to RSGs, and an embedding
// check that validates the analysis results: every concrete memory
// configuration observable at a program point must be covered by some
// RSG of the computed RSRSG. The analysis tests use it to machine-check
// soundness on randomized executions.
package concrete

import (
	"fmt"
	"sort"
	"strings"
)

// Loc identifies one allocated cell.
type Loc int

// Cell is one concrete heap cell.
type Cell struct {
	Loc    Loc
	Type   string
	Fields map[string]Loc // selector -> target (0 = NULL)
}

// Heap is a concrete memory configuration: cells plus pvar bindings.
type Heap struct {
	Cells map[Loc]*Cell
	Pvars map[string]Loc // pvar -> cell (absent or 0 = NULL)
	// Freed records the locations released by free(); allocation never
	// reuses a Loc, so a nonzero reference to a freed location is a
	// dangling pointer and dereferencing it a use-after-free.
	Freed map[Loc]bool
	next  Loc
}

// NewHeap returns an empty heap.
func NewHeap() *Heap {
	return &Heap{
		Cells: make(map[Loc]*Cell),
		Pvars: make(map[string]Loc),
		Freed: make(map[Loc]bool),
	}
}

// Free releases the cell at l: the cell (and its outgoing references)
// disappears from the heap and the location is recorded as freed.
func (h *Heap) Free(l Loc) {
	delete(h.Cells, l)
	h.Freed[l] = true
}

// Alloc creates a fresh cell of the given type with NULL fields.
func (h *Heap) Alloc(typ string, selectors []string) Loc {
	h.next++
	c := &Cell{Loc: h.next, Type: typ, Fields: make(map[string]Loc, len(selectors))}
	for _, s := range selectors {
		c.Fields[s] = 0
	}
	h.Cells[h.next] = c
	return h.next
}

// Get returns the pvar binding (0 = NULL).
func (h *Heap) Get(p string) Loc { return h.Pvars[p] }

// Set binds a pvar (0 clears it).
func (h *Heap) Set(p string, l Loc) {
	if l == 0 {
		delete(h.Pvars, p)
		return
	}
	h.Pvars[p] = l
}

// Cell returns the cell at l, or nil.
func (h *Heap) Cell(l Loc) *Cell { return h.Cells[l] }

// Reachable returns every cell reachable from the pvars.
func (h *Heap) Reachable() map[Loc]struct{} {
	seen := make(map[Loc]struct{})
	var stack []Loc
	for _, l := range h.Pvars {
		if l != 0 {
			if _, ok := seen[l]; !ok {
				seen[l] = struct{}{}
				stack = append(stack, l)
			}
		}
	}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := h.Cells[l]
		if c == nil {
			continue
		}
		for _, t := range c.Fields {
			if t != 0 {
				if _, ok := seen[t]; !ok {
					seen[t] = struct{}{}
					stack = append(stack, t)
				}
			}
		}
	}
	return seen
}

// GC drops unreachable cells (mirrors the abstraction's garbage
// collection so embeddings compare live structure only) and returns
// the collected locations. A collected cell was still allocated when
// it became unreachable — in C terms its storage leaked.
func (h *Heap) GC() []Loc {
	reach := h.Reachable()
	var leaked []Loc
	for l := range h.Cells {
		if _, ok := reach[l]; !ok {
			delete(h.Cells, l)
			leaked = append(leaked, l)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i] < leaked[j] })
	return leaked
}

// Clone returns a deep copy of the heap.
func (h *Heap) Clone() *Heap {
	c := NewHeap()
	c.next = h.next
	for l, cell := range h.Cells {
		nc := &Cell{Loc: l, Type: cell.Type, Fields: make(map[string]Loc, len(cell.Fields))}
		for s, t := range cell.Fields {
			nc.Fields[s] = t
		}
		c.Cells[l] = nc
	}
	for p, l := range h.Pvars {
		c.Pvars[p] = l
	}
	for l := range h.Freed {
		c.Freed[l] = true
	}
	return c
}

// InDegree returns, per cell, the number of incoming heap references
// and the per-selector incoming reference counts.
func (h *Heap) InDegree() (total map[Loc]int, bySel map[Loc]map[string]int) {
	total = make(map[Loc]int)
	bySel = make(map[Loc]map[string]int)
	for _, c := range h.Cells {
		for sel, t := range c.Fields {
			if t == 0 {
				continue
			}
			total[t]++
			m := bySel[t]
			if m == nil {
				m = make(map[string]int)
				bySel[t] = m
			}
			m[sel]++
		}
	}
	return total, bySel
}

// String renders the heap deterministically.
func (h *Heap) String() string {
	var b strings.Builder
	var ps []string
	for p := range h.Pvars {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	for _, p := range ps {
		fmt.Fprintf(&b, "%s -> L%d\n", p, h.Pvars[p])
	}
	var ls []Loc
	for l := range h.Cells {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	for _, l := range ls {
		c := h.Cells[l]
		fmt.Fprintf(&b, "L%d:%s{", l, c.Type)
		var sels []string
		for s := range c.Fields {
			sels = append(sels, s)
		}
		sort.Strings(sels)
		for i, s := range sels {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s=L%d", s, c.Fields[s])
		}
		b.WriteString("}\n")
	}
	return b.String()
}
