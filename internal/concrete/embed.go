package concrete

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// RejectKind names the embedding constraint that rejected a candidate
// cell-to-node match (or a whole graph). The kinds mirror the node
// properties of the paper: the reference-pattern sets SELIN/SELOUT,
// the share flags SHARED/SHSEL, CYCLELINKS, and the pvar paths (SPATH).
// TOUCH never rejects: it records traversal history across a loop, not
// a constraint any single heap snapshot can violate.
type RejectKind string

const (
	// RejectPvarNull: a pvar is non-NULL concretely but NULL in PL.
	RejectPvarNull RejectKind = "PVAR-NULL"
	// RejectPvarBound: a pvar is NULL concretely but bound in PL.
	RejectPvarBound RejectKind = "PVAR-BOUND"
	// RejectSPath: the node PL forces for a pvar-referenced cell does
	// not accept the cell, so no pvar-respecting assignment exists.
	RejectSPath RejectKind = "SPATH"
	// RejectType: the TYPE property differs from the cell's type.
	RejectType RejectKind = "TYPE"
	// RejectShared: SHARED(n) = false but the cell has 2+ incoming
	// heap references.
	RejectShared RejectKind = "SHARED"
	// RejectShSel: SHSEL(n, sel) = false but the cell has 2+ incoming
	// sel references.
	RejectShSel RejectKind = "SHSEL"
	// RejectSelOut: sel is in the definite SELOUT pattern but the
	// cell's sel field is NULL.
	RejectSelOut RejectKind = "SELOUT"
	// RejectSelOutPattern: the cell's sel field is non-NULL but sel is
	// in neither SELOUT nor PosSELOUT — the node claims no represented
	// location has the reference.
	RejectSelOutPattern RejectKind = "SELOUT-PATTERN"
	// RejectSelIn: sel is in the definite SELIN pattern but nothing
	// references the cell through sel.
	RejectSelIn RejectKind = "SELIN"
	// RejectCycle: a CYCLELINKS pair <out,in> does not close on the
	// cell (cell.out.in != cell).
	RejectCycle RejectKind = "CYCLELINKS"
	// RejectSingleton: the node is a singleton already carrying another
	// cell in the current partial assignment.
	RejectSingleton RejectKind = "SINGLETON"
	// RejectLink: a concrete reference between two assigned cells has
	// no corresponding NL link between their nodes.
	RejectLink RejectKind = "LINK"
)

// Reject pinpoints one rejected match: which concrete cell, which
// abstract node, and the property that refused it.
type Reject struct {
	Cell Loc        // concrete cell (0 when the reject is not cell-specific)
	Node rsg.NodeID // abstract node (-1 when no node is involved)
	Kind RejectKind
	Sel  string // selector involved, when the property is per-selector
	// Detail is a short human-readable elaboration.
	Detail string
}

func (r Reject) String() string {
	var b strings.Builder
	b.WriteString(string(r.Kind))
	if r.Cell != 0 || r.Node >= 0 {
		b.WriteString(" [")
		if r.Cell != 0 {
			fmt.Fprintf(&b, "L%d", r.Cell)
		}
		if r.Node >= 0 {
			if r.Cell != 0 {
				b.WriteString(" vs ")
			}
			fmt.Fprintf(&b, "n%d", r.Node)
		}
		b.WriteString("]")
	}
	if r.Sel != "" {
		fmt.Fprintf(&b, " sel=%s", r.Sel)
	}
	if r.Detail != "" {
		b.WriteString(": ")
		b.WriteString(r.Detail)
	}
	return b.String()
}

// EmbedFailure explains why one RSG admits no embedding of a heap. The
// search records the deepest consistent partial embedding it reached
// and the rejections observed at that frontier, so the report can name
// the exact node property that broke the match.
type EmbedFailure struct {
	// GraphIndex is the RSG's position in the RSRSG (-1 for a direct
	// ExplainEmbedding call).
	GraphIndex int
	Graph      *rsg.Graph
	// Headline is the most informative rejection: the reason at the
	// deepest point the search reached.
	Headline Reject
	// Rejects lists every distinct rejection observed at the failure
	// frontier (all for the same cell): one per candidate node in the
	// candidate phase, one per tried assignment in the search phase.
	Rejects []Reject
	// BestAssign is the deepest consistent partial embedding
	// (cell -> node), and BestDepth its size; Cells is the number of
	// live cells that needed assignment. Both are only tracked in
	// explain mode (ExplainEmbedding / ExplainCover) and stay nil/0 for
	// the fast path.
	BestAssign map[Loc]rsg.NodeID
	BestDepth  int
	Cells      int
	// FrontierCell is the first cell the best partial embedding could
	// not extend to (0 when the failure precedes the search).
	FrontierCell Loc
}

// Summary renders the failure as one line.
func (f *EmbedFailure) Summary() string { return f.Headline.String() }

// Format renders the failure with the partial embedding.
func (f *EmbedFailure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rejected by %s\n", f.Headline)
	if f.BestAssign != nil {
		fmt.Fprintf(&b, "best partial embedding (%d of %d cells):\n", f.BestDepth, f.Cells)
		var ls []Loc
		for l := range f.BestAssign {
			ls = append(ls, l)
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		for _, l := range ls {
			fmt.Fprintf(&b, "  L%d -> n%d\n", l, f.BestAssign[l])
		}
		if f.FrontierCell != 0 {
			fmt.Fprintf(&b, "frontier cell L%d admits no node:\n", f.FrontierCell)
		}
	}
	for _, r := range f.Rejects {
		if r == f.Headline && len(f.Rejects) == 1 {
			continue // already printed
		}
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// Covers reports whether the RSRSG covers the concrete heap: some
// member RSG admits an embedding of the heap. detail explains a
// negative verdict with one line per rejecting RSG; ExplainCover gives
// the full structured account.
func Covers(set *rsrsg.Set, h *Heap) (bool, string) {
	if set == nil {
		return false, "nil RSRSG"
	}
	var reasons []string
	for i, g := range set.Graphs() {
		f := embed(g, h, false)
		if f == nil {
			return true, ""
		}
		reasons = append(reasons, fmt.Sprintf("rsg#%d: %s", i, f.Summary()))
	}
	return false, fmt.Sprintf("no RSG embeds the heap (%d candidates): %v\nheap:\n%s",
		set.Len(), reasons, h)
}

// ExplainCover replays the embedding search against every RSG of the
// set with full introspection. It returns one EmbedFailure per RSG (in
// set order); nil when some RSG embeds the heap, i.e. the heap is
// covered. An empty (or nil) set yields an empty, non-nil slice.
func ExplainCover(set *rsrsg.Set, h *Heap) []*EmbedFailure {
	fails := []*EmbedFailure{}
	if set == nil {
		return fails
	}
	for i, g := range set.Graphs() {
		f := embed(g, h, true)
		if f == nil {
			return nil
		}
		f.GraphIndex = i
		fails = append(fails, f)
	}
	return fails
}

// Embeds reports whether the RSG admits an embedding of the concrete
// heap: a mapping m from live cells to nodes such that
//
//   - pvar bindings agree: p -> l in the heap iff p -> m(l) in PL
//     (and p NULL iff p unbound in PL);
//   - every heap reference maps to an NL link: l1.sel = l2 implies
//     <m(l1), sel, m(l2)> in NL; l1.sel = NULL implies sel not in
//     SELOUT(m(l1)) unless some cell mapped to the node has the field
//     (definite SELOUT requires *all* represented cells to have it);
//   - node properties are respected: types match; a Singleton node
//     receives at most one cell; SHARED(n)=false forbids mapping a
//     cell with 2+ incoming heap references to n; SHSEL(n,sel)=false
//     forbids a cell with 2+ incoming sel references; definite SELIN /
//     SELOUT entries hold for every mapped cell; cycle links hold for
//     every mapped cell.
//
// Nodes may be unmapped (embeddings are not surjective; see the
// materialization notes in the rsg package).
func Embeds(g *rsg.Graph, h *Heap) (bool, string) {
	if f := embed(g, h, false); f != nil {
		return false, f.Summary()
	}
	return true, ""
}

// ExplainEmbedding is Embeds with full introspection: nil when the
// graph embeds the heap, otherwise the structured failure including the
// best partial embedding the search reached.
func ExplainEmbedding(g *rsg.Graph, h *Heap) *EmbedFailure {
	return embed(g, h, true)
}

// embedSearch carries the state of one embedding attempt.
type embedSearch struct {
	g     *rsg.Graph
	h     *Heap
	cells []*Cell
	// sels[i] holds cells[i]'s selectors in sorted order, so rejection
	// reports do not depend on map iteration order.
	sels   [][]string
	cand   map[Loc][]rsg.NodeID
	assign map[Loc]rsg.NodeID
	// explain enables frontier tracking; fail accumulates the result.
	explain bool
	fail    *EmbedFailure
}

// embed runs the embedding check; nil means the graph embeds the heap.
// In fast mode (explain=false) the failure carries only the headline.
func embed(g *rsg.Graph, h *Heap, explain bool) *EmbedFailure {
	s := &embedSearch{
		g: g, h: h, explain: explain,
		fail: &EmbedFailure{GraphIndex: -1, Graph: g, Headline: Reject{Node: -1}},
	}
	reach := h.Reachable()
	for l := range reach {
		if c := h.Cell(l); c != nil {
			s.cells = append(s.cells, c)
		}
	}
	sort.Slice(s.cells, func(i, j int) bool { return s.cells[i].Loc < s.cells[j].Loc })
	s.sels = make([][]string, len(s.cells))
	for i, c := range s.cells {
		for sel := range c.Fields {
			s.sels[i] = append(s.sels[i], sel)
		}
		sort.Strings(s.sels[i])
	}
	s.fail.Cells = len(s.cells)

	// Pvar agreement first (cheap rejection). Sorted for deterministic
	// reports.
	var ps []string
	for p := range h.Pvars {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	for _, p := range ps {
		if h.Pvars[p] != 0 && g.PvarTarget(p) == nil {
			s.fail.Headline = Reject{Node: -1, Kind: RejectPvarNull,
				Detail: fmt.Sprintf("pvar %s non-NULL concretely but NULL in RSG", p)}
			s.fail.Rejects = []Reject{s.fail.Headline}
			return s.fail
		}
	}
	for _, p := range g.Pvars() {
		if h.Get(p) == 0 {
			s.fail.Headline = Reject{Node: -1, Kind: RejectPvarBound,
				Detail: fmt.Sprintf("pvar %s NULL concretely but bound in RSG", p)}
			s.fail.Rejects = []Reject{s.fail.Headline}
			return s.fail
		}
	}

	total, bySel := h.InDegree()

	// Candidate nodes per cell.
	s.cand = make(map[Loc][]rsg.NodeID)
	for i, c := range s.cells {
		var ns []rsg.NodeID
		var rejects []Reject
		for _, n := range g.Nodes() {
			rej, ok := cellReject(s.h, c, s.sels[i], n, total[c.Loc], bySel[c.Loc])
			if ok {
				ns = append(ns, n.ID)
			} else if explain {
				rejects = append(rejects, rej)
			} else if s.fail.Headline.Kind == "" || (s.fail.Headline.Kind == RejectType && rej.Kind != RejectType) {
				// Fast mode: keep one representative, preferring a
				// property reject over a plain type mismatch.
				s.fail.Headline = rej
			}
		}
		if len(ns) == 0 {
			if explain {
				s.fail.Headline = pickHeadline(rejects)
				s.fail.Rejects = rejects
				s.fail.BestAssign = map[Loc]rsg.NodeID{}
				s.fail.FrontierCell = c.Loc
			}
			return s.fail
		}
		// Pvar-forced assignment.
		for _, p := range ps {
			if h.Pvars[p] != c.Loc {
				continue
			}
			want := g.PvarTarget(p)
			found := false
			for _, id := range ns {
				if id == want.ID {
					found = true
					break
				}
			}
			if !found {
				rej, _ := cellReject(s.h, c, s.sels[i], want, total[c.Loc], bySel[c.Loc])
				rej = Reject{Cell: c.Loc, Node: want.ID, Kind: RejectSPath, Sel: rej.Sel,
					Detail: fmt.Sprintf("PL forces %s -> n%d, which rejects L%d by %s", p, want.ID, c.Loc, rej.Kind)}
				s.fail.Headline = rej
				s.fail.Rejects = []Reject{rej}
				if explain {
					s.fail.BestAssign = map[Loc]rsg.NodeID{}
					s.fail.FrontierCell = c.Loc
				}
				return s.fail
			}
			ns = []rsg.NodeID{want.ID}
		}
		s.cand[c.Loc] = ns
	}

	// Backtracking search for a consistent assignment. Link coverage is
	// enforced incrementally as each cell is placed, so a completed
	// assignment needs no final pass.
	s.assign = make(map[Loc]rsg.NodeID, len(s.cells))
	if s.place(0) {
		return nil
	}
	if s.fail.Headline.Kind == "" {
		s.fail.Headline = Reject{Node: -1, Kind: RejectLink,
			Detail: "no consistent cell-to-node assignment"}
	}
	return s.fail
}

// pickHeadline selects the most informative rejection: the first whose
// kind is not TYPE (a type mismatch against an unrelated node explains
// nothing), falling back to the first.
func pickHeadline(rejects []Reject) Reject {
	for _, r := range rejects {
		if r.Kind != RejectType {
			return r
		}
	}
	return rejects[0]
}

// cellReject checks the per-cell constraints against one node; ok=false
// comes with the rejecting property. sels is the cell's sorted selector
// list (determinism), inTotal/inBySel its concrete in-degrees.
func cellReject(h *Heap, c *Cell, sels []string, n *rsg.Node, inTotal int, inBySel map[string]int) (Reject, bool) {
	rej := func(kind RejectKind, sel, detail string) Reject {
		return Reject{Cell: c.Loc, Node: n.ID, Kind: kind, Sel: sel, Detail: detail}
	}
	if n.Type != c.Type {
		return rej(RejectType, "", fmt.Sprintf("cell type %s vs node type %s", c.Type, n.Type)), false
	}
	if !n.Shared && inTotal >= 2 {
		return rej(RejectShared, "", fmt.Sprintf("SHARED(n%d)=false but L%d has %d incoming references", n.ID, c.Loc, inTotal)), false
	}
	for _, sel := range sels {
		if cnt := inBySel[sel]; cnt >= 2 && !n.SharedBy(sel) {
			return rej(RejectShSel, sel, fmt.Sprintf("SHSEL(n%d,%s)=false but L%d has %d incoming %s references", n.ID, sel, c.Loc, cnt, sel)), false
		}
	}
	// Incoming selectors the cell declares no field for (possible only
	// with hand-built heaps mixing struct layouts) still carry sharing.
	var extra []string
	for sel := range inBySel {
		if _, known := c.Fields[sel]; !known {
			extra = append(extra, sel)
		}
	}
	sort.Strings(extra)
	for _, sel := range extra {
		if inBySel[sel] >= 2 && !n.SharedBy(sel) {
			return rej(RejectShSel, sel, fmt.Sprintf("SHSEL(n%d,%s)=false but L%d has %d incoming %s references", n.ID, sel, c.Loc, inBySel[sel], sel)), false
		}
	}
	// Definite SELOUT: the cell must have the reference.
	for _, sel := range n.SelOut.Sorted() {
		if c.Fields[sel] == 0 {
			return rej(RejectSelOut, sel, fmt.Sprintf("SELOUT(n%d) requires %s but L%d.%s is NULL", n.ID, sel, c.Loc, sel)), false
		}
	}
	// SELOUT completeness: a non-NULL field requires sel in SELOUT or
	// PosSELOUT (otherwise the node claims no location has it).
	for _, sel := range sels {
		if c.Fields[sel] != 0 && !n.SelOut.Has(sel) && !n.PosSelOut.Has(sel) {
			return rej(RejectSelOutPattern, sel, fmt.Sprintf("L%d.%s is set but %s is in neither SELOUT nor PosSELOUT of n%d", c.Loc, sel, sel, n.ID)), false
		}
	}
	// Definite SELIN: the cell must be referenced through the selector.
	for _, sel := range n.SelIn.Sorted() {
		if inBySel[sel] == 0 {
			return rej(RejectSelIn, sel, fmt.Sprintf("SELIN(n%d) requires an incoming %s reference into L%d", n.ID, sel, c.Loc)), false
		}
	}
	// Cycle links: following Out then In from the cell returns to it.
	// A NULL Out field is vacuous: the pair claims the return path only
	// for existing references (the paper couples it with SELOUT).
	for _, pair := range n.Cycle.Sorted() {
		t := c.Fields[pair.Out]
		if t == 0 {
			continue
		}
		tc := h.Cell(t)
		if tc == nil || tc.Fields[pair.In] != c.Loc {
			return rej(RejectCycle, pair.Out, fmt.Sprintf("CYCLELINKS(n%d) pair <%s,%s> does not close: L%d.%s.%s != L%d", n.ID, pair.Out, pair.In, c.Loc, pair.Out, pair.In, c.Loc)), false
		}
	}
	return Reject{}, true
}

// place extends the assignment to cells[idx:]; true on success.
func (s *embedSearch) place(idx int) bool {
	if idx == len(s.cells) {
		return true
	}
	c := s.cells[idx]
	for _, id := range s.cand[c.Loc] {
		if s.g.Node(id).Singleton {
			used := false
			for _, a := range s.assign {
				if a == id {
					used = true
					break
				}
			}
			if used {
				s.note(idx, Reject{Cell: c.Loc, Node: id, Kind: RejectSingleton,
					Detail: fmt.Sprintf("singleton n%d already carries another cell", id)})
				continue
			}
		}
		s.assign[c.Loc] = id
		if rej, bad := s.linkViolation(idx, c, id); bad {
			delete(s.assign, c.Loc)
			s.note(idx, rej)
			continue
		}
		if s.place(idx + 1) {
			return true
		}
		delete(s.assign, c.Loc)
	}
	return false
}

// linkViolation checks the concrete references between the newly placed
// cell c (cells[idx], mapped to id) and every already-assigned cell;
// references among earlier cells were checked when the later endpoint
// was placed, so the incremental check covers all pairs.
func (s *embedSearch) linkViolation(idx int, c *Cell, id rsg.NodeID) (Reject, bool) {
	for _, sel := range s.sels[idx] {
		t := c.Fields[sel]
		if t == 0 {
			continue
		}
		dst, ok := s.assign[t]
		if !ok {
			continue
		}
		if !s.g.HasLink(id, sel, dst) {
			return Reject{Cell: c.Loc, Node: id, Kind: RejectLink, Sel: sel,
				Detail: fmt.Sprintf("L%d.%s = L%d but <n%d,%s,n%d> is not in NL", c.Loc, sel, t, id, sel, dst)}, true
		}
	}
	for j, d := range s.cells {
		if d.Loc == c.Loc {
			continue
		}
		src, ok := s.assign[d.Loc]
		if !ok {
			continue
		}
		for _, sel := range s.sels[j] {
			if d.Fields[sel] != c.Loc {
				continue
			}
			if !s.g.HasLink(src, sel, id) {
				return Reject{Cell: c.Loc, Node: id, Kind: RejectLink, Sel: sel,
					Detail: fmt.Sprintf("L%d.%s = L%d but <n%d,%s,n%d> is not in NL", d.Loc, sel, c.Loc, src, sel, id)}, true
			}
		}
	}
	return Reject{}, false
}

// note records a rejection at search depth idx (idx cells are assigned,
// cells[idx] was refused). The deepest frontier wins; rejections at the
// same depth accumulate.
func (s *embedSearch) note(idx int, rej Reject) {
	if s.fail.Headline.Kind == "" || idx >= s.fail.BestDepth {
		s.fail.Headline = rej
	}
	if !s.explain {
		return
	}
	if s.fail.BestAssign == nil || idx > s.fail.BestDepth {
		s.fail.BestDepth = idx
		s.fail.BestAssign = make(map[Loc]rsg.NodeID, idx)
		for l, n := range s.assign {
			s.fail.BestAssign[l] = n
		}
		s.fail.FrontierCell = s.cells[idx].Loc
		s.fail.Rejects = s.fail.Rejects[:0]
	}
	if idx == s.fail.BestDepth && len(s.fail.Rejects) < 16 {
		s.fail.Rejects = append(s.fail.Rejects, rej)
	}
}
