package concrete

import (
	"fmt"
	"sort"

	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// Covers reports whether the RSRSG covers the concrete heap: some
// member RSG admits an embedding of the heap. detail explains a
// negative verdict.
func Covers(set *rsrsg.Set, h *Heap) (bool, string) {
	if set == nil {
		return false, "nil RSRSG"
	}
	var reasons []string
	for i, g := range set.Graphs() {
		if ok, why := Embeds(g, h); ok {
			return true, ""
		} else {
			reasons = append(reasons, fmt.Sprintf("rsg#%d: %s", i, why))
		}
	}
	return false, fmt.Sprintf("no RSG embeds the heap (%d candidates): %v\nheap:\n%s",
		set.Len(), reasons, h)
}

// Embeds reports whether the RSG admits an embedding of the concrete
// heap: a mapping m from live cells to nodes such that
//
//   - pvar bindings agree: p -> l in the heap iff p -> m(l) in PL
//     (and p NULL iff p unbound in PL);
//   - every heap reference maps to an NL link: l1.sel = l2 implies
//     <m(l1), sel, m(l2)> in NL; l1.sel = NULL implies sel not in
//     SELOUT(m(l1)) unless some cell mapped to the node has the field
//     (definite SELOUT requires *all* represented cells to have it);
//   - node properties are respected: types match; a Singleton node
//     receives at most one cell; SHARED(n)=false forbids mapping a
//     cell with 2+ incoming heap references to n; SHSEL(n,sel)=false
//     forbids a cell with 2+ incoming sel references; definite SELIN /
//     SELOUT entries hold for every mapped cell; cycle links hold for
//     every mapped cell.
//
// Nodes may be unmapped (embeddings are not surjective; see the
// materialization notes in the rsg package).
func Embeds(g *rsg.Graph, h *Heap) (bool, string) {
	reach := h.Reachable()
	var cells []*Cell
	for l := range reach {
		if c := h.Cell(l); c != nil {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Loc < cells[j].Loc })

	// Pvar agreement first (cheap rejection).
	for p, l := range h.Pvars {
		if l != 0 && g.PvarTarget(p) == nil {
			return false, fmt.Sprintf("pvar %s non-NULL concretely but NULL in RSG", p)
		}
	}
	for _, p := range g.Pvars() {
		if h.Get(p) == 0 {
			return false, fmt.Sprintf("pvar %s NULL concretely but bound in RSG", p)
		}
	}

	total, bySel := h.InDegree()

	// Candidate nodes per cell.
	cand := make(map[Loc][]rsg.NodeID)
	for _, c := range cells {
		var ns []rsg.NodeID
		for _, n := range g.Nodes() {
			if cellFitsNode(g, h, c, n, total[c.Loc], bySel[c.Loc]) {
				ns = append(ns, n.ID)
			}
		}
		if len(ns) == 0 {
			return false, fmt.Sprintf("cell L%d (%s) fits no node", c.Loc, c.Type)
		}
		// Pvar-forced assignment.
		for p, l := range h.Pvars {
			if l == c.Loc {
				want := g.PvarTarget(p)
				found := false
				for _, id := range ns {
					if id == want.ID {
						found = true
						break
					}
				}
				if !found {
					return false, fmt.Sprintf("cell L%d bound to %s cannot map to its PL node", c.Loc, p)
				}
				ns = []rsg.NodeID{want.ID}
			}
		}
		cand[c.Loc] = ns
	}

	// Backtracking search for a consistent assignment.
	assign := make(map[Loc]rsg.NodeID, len(cells))
	if ok := assignCells(g, h, cells, 0, cand, assign); !ok {
		return false, "no consistent cell-to-node assignment"
	}
	return true, ""
}

// cellFitsNode checks the per-cell constraints against one node.
func cellFitsNode(g *rsg.Graph, h *Heap, c *Cell, n *rsg.Node, inTotal int, inBySel map[string]int) bool {
	if n.Type != c.Type {
		return false
	}
	if !n.Shared && inTotal >= 2 {
		return false
	}
	for sel, cnt := range inBySel {
		if cnt >= 2 && !n.SharedBy(sel) {
			return false
		}
	}
	// Definite SELOUT: the cell must have the reference.
	for _, sel := range n.SelOut.Sorted() {
		if c.Fields[sel] == 0 {
			return false
		}
	}
	// SELOUT completeness: a non-NULL field requires sel in SELOUT or
	// PosSELOUT (otherwise the node claims no location has it)...
	for sel, t := range c.Fields {
		if t != 0 && !n.SelOut.Has(sel) && !n.PosSelOut.Has(sel) {
			return false
		}
	}
	// Definite SELIN: the cell must be referenced through the selector.
	_, bySel := h.InDegree()
	for _, sel := range n.SelIn.Sorted() {
		if bySel[c.Loc][sel] == 0 {
			return false
		}
	}
	// Cycle links: following Out then In from the cell returns to it.
	for _, pair := range n.Cycle.Sorted() {
		t := c.Fields[pair.Out]
		if t == 0 {
			continue // vacuous when the Out field is NULL? No: the pair
			// claims the reference pattern only for existing refs; the
			// paper couples it with SELOUT. Treat NULL as vacuous.
		}
		tc := h.Cell(t)
		if tc == nil || tc.Fields[pair.In] != c.Loc {
			return false
		}
	}
	return true
}

// assignCells backtracks over candidate assignments, enforcing link
// coverage and singleton capacity.
func assignCells(g *rsg.Graph, h *Heap, cells []*Cell, idx int, cand map[Loc][]rsg.NodeID, assign map[Loc]rsg.NodeID) bool {
	if idx == len(cells) {
		return checkLinks(g, h, assign)
	}
	c := cells[idx]
	for _, id := range cand[c.Loc] {
		if g.Node(id).Singleton {
			used := false
			for _, a := range assign {
				if a == id {
					used = true
					break
				}
			}
			if used {
				continue
			}
		}
		assign[c.Loc] = id
		if partialLinksOK(g, h, cells[:idx+1], assign) && assignCells(g, h, cells, idx+1, cand, assign) {
			return true
		}
		delete(assign, c.Loc)
	}
	return false
}

// partialLinksOK verifies link coverage among already-assigned cells.
func partialLinksOK(g *rsg.Graph, h *Heap, done []*Cell, assign map[Loc]rsg.NodeID) bool {
	for _, c := range done {
		src, ok := assign[c.Loc]
		if !ok {
			continue
		}
		for sel, t := range c.Fields {
			if t == 0 {
				continue
			}
			dst, ok := assign[t]
			if !ok {
				continue
			}
			if !g.HasLink(src, sel, dst) {
				return false
			}
		}
	}
	return true
}

// checkLinks verifies full link coverage.
func checkLinks(g *rsg.Graph, h *Heap, assign map[Loc]rsg.NodeID) bool {
	for l, src := range assign {
		c := h.Cell(l)
		for sel, t := range c.Fields {
			if t == 0 {
				continue
			}
			dst, ok := assign[t]
			if !ok {
				return false
			}
			if !g.HasLink(src, sel, dst) {
				return false
			}
		}
	}
	return true
}
