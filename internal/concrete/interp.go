package concrete

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// Trace is one recorded execution: the statements executed and the heap
// after each.
type Trace struct {
	// Steps[i] pairs the executed statement ID with the heap state
	// after it (already garbage collected).
	Steps []Step
	// NullDeref is set when the execution dereferenced NULL; the trace
	// stops at that point.
	NullDeref bool
}

// Step is one executed statement and the resulting heap.
type Step struct {
	StmtID int
	Heap   *Heap
}

// Interp executes the IR concretely. Branch decisions at opaque
// conditions are drawn from rng; loops and the total step count are
// bounded so every run terminates.
type Interp struct {
	Prog *ir.Program
	Rng  *rand.Rand
	// MaxSteps bounds the executed statements (default 4000).
	MaxSteps int
}

// Run executes from the entry and returns the trace.
func (it *Interp) Run() (*Trace, error) {
	maxSteps := it.MaxSteps
	if maxSteps == 0 {
		maxSteps = 4000
	}
	h := NewHeap()
	tr := &Trace{}
	cur := it.Prog.Entry
	for steps := 0; steps < maxSteps; steps++ {
		s := it.Prog.Stmt(cur)
		ok, err := it.exec(s, h)
		if err != nil {
			return nil, err
		}
		if !ok {
			tr.NullDeref = true
			return tr, nil
		}
		h.GC()
		tr.Steps = append(tr.Steps, Step{StmtID: cur, Heap: h.Clone()})
		if s.Op == ir.OpExit {
			return tr, nil
		}
		next, err := it.pick(s, h)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	// Step budget exhausted mid-loop: the trace so far is still a valid
	// prefix execution.
	return tr, nil
}

// exec applies one statement; ok=false signals a NULL dereference.
func (it *Interp) exec(s *ir.Stmt, h *Heap) (bool, error) {
	switch s.Op {
	case ir.OpNil:
		h.Set(s.X, 0)
	case ir.OpMalloc:
		sels := it.Prog.Selectors[s.Type]
		h.Set(s.X, h.Alloc(s.Type, sels))
	case ir.OpCopy:
		h.Set(s.X, h.Get(s.Y))
	case ir.OpSelNil:
		l := h.Get(s.X)
		if l == 0 {
			return false, nil
		}
		c := h.Cell(l)
		if c == nil {
			return false, fmt.Errorf("concrete: dangling pvar %s", s.X)
		}
		c.Fields[s.Sel] = 0
	case ir.OpSelCopy:
		l := h.Get(s.X)
		if l == 0 {
			return false, nil
		}
		c := h.Cell(l)
		if c == nil {
			return false, fmt.Errorf("concrete: dangling pvar %s", s.X)
		}
		c.Fields[s.Sel] = h.Get(s.Y)
	case ir.OpLoad:
		l := h.Get(s.Y)
		if l == 0 {
			return false, nil
		}
		c := h.Cell(l)
		if c == nil {
			return false, fmt.Errorf("concrete: dangling pvar %s", s.Y)
		}
		h.Set(s.X, c.Fields[s.Sel])
	case ir.OpAssumeNull, ir.OpAssumeNonNull,
		ir.OpNoop, ir.OpEntry, ir.OpExit:
		// Assumes are handled by successor selection; no heap effect.
	}
	return true, nil
}

// pick chooses the successor, respecting assume statements.
func (it *Interp) pick(s *ir.Stmt, h *Heap) (int, error) {
	var viable []int
	for _, succ := range s.Succs {
		n := it.Prog.Stmt(succ)
		switch n.Op {
		case ir.OpAssumeNull:
			if h.Get(n.X) == 0 {
				viable = append(viable, succ)
			}
		case ir.OpAssumeNonNull:
			if h.Get(n.X) != 0 {
				viable = append(viable, succ)
			}
		default:
			viable = append(viable, succ)
		}
	}
	if len(viable) == 0 {
		if len(s.Succs) == 0 {
			return 0, fmt.Errorf("concrete: statement %d has no successors", s.ID)
		}
		return 0, fmt.Errorf("concrete: statement %d: no viable successor (assume deadlock)", s.ID)
	}
	return viable[it.Rng.Intn(len(viable))], nil
}
