package concrete

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// Fault classifies how an execution went wrong. The interpreter stops
// the trace at the faulting statement (the post-state of a fault is
// undefined behaviour, so there is nothing to record or cover).
type Fault int

const (
	// FaultNone: the execution completed (or ran out of its budget).
	FaultNone Fault = iota
	// FaultNullDeref: a statement dereferenced a NULL pvar.
	FaultNullDeref
	// FaultUseAfterFree: a statement dereferenced a dangling pvar — a
	// nonzero binding to a location released by free().
	FaultUseAfterFree
	// FaultDoubleFree: free() of an already-freed location.
	FaultDoubleFree
)

// String returns the fault mnemonic.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultNullDeref:
		return "null-deref"
	case FaultUseAfterFree:
		return "use-after-free"
	case FaultDoubleFree:
		return "double-free"
	}
	return "?"
}

// Trace is one recorded execution: the statements executed and the heap
// after each.
type Trace struct {
	// Steps[i] pairs the executed statement ID with the heap state
	// after it (already garbage collected).
	Steps []Step
	// NullDeref is set when the execution dereferenced NULL; the trace
	// stops at that point. (Kept alongside Fault for the established
	// callers; NullDeref == (Fault == FaultNullDeref).)
	NullDeref bool
	// Fault records how the execution stopped, FaultNone when it
	// completed. FaultStmt is the faulting statement ID (-1 when none).
	Fault     Fault
	FaultStmt int
	// Leaks records every cell that became unreachable while still
	// allocated, keyed by the statement that stranded it.
	Leaks []Leak
}

// Leak is one leaked cell: the statement whose execution stranded it.
type Leak struct {
	StmtID int
	Loc    Loc
}

// Step is one executed statement and the resulting heap.
type Step struct {
	StmtID int
	Heap   *Heap
}

// Interp executes the IR concretely. Branch decisions at opaque
// conditions are drawn from rng; loops and the total step count are
// bounded so every run terminates.
type Interp struct {
	Prog *ir.Program
	Rng  *rand.Rand
	// MaxSteps bounds the executed statements (default 4000).
	MaxSteps int
}

// Run executes from the entry and returns the trace.
func (it *Interp) Run() (*Trace, error) {
	maxSteps := it.MaxSteps
	if maxSteps == 0 {
		maxSteps = 4000
	}
	h := NewHeap()
	tr := &Trace{FaultStmt: -1}
	cur := it.Prog.Entry
	for steps := 0; steps < maxSteps; steps++ {
		s := it.Prog.Stmt(cur)
		fault, err := it.exec(s, h)
		if err != nil {
			return nil, err
		}
		if fault != FaultNone {
			tr.Fault = fault
			tr.FaultStmt = cur
			tr.NullDeref = fault == FaultNullDeref
			return tr, nil
		}
		for _, l := range h.GC() {
			tr.Leaks = append(tr.Leaks, Leak{StmtID: cur, Loc: l})
		}
		tr.Steps = append(tr.Steps, Step{StmtID: cur, Heap: h.Clone()})
		if s.Op == ir.OpExit {
			return tr, nil
		}
		next, err := it.pick(s, h)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	// Step budget exhausted mid-loop: the trace so far is still a valid
	// prefix execution.
	return tr, nil
}

// RunSeed executes the program once with a deterministic branch seed
// and the default step budget.
func RunSeed(prog *ir.Program, seed int64) (*Trace, error) {
	it := &Interp{Prog: prog, Rng: rand.New(rand.NewSource(seed))}
	return it.Run()
}

// exec applies one statement; a non-FaultNone result stops the trace.
func (it *Interp) exec(s *ir.Stmt, h *Heap) (Fault, error) {
	// deref resolves the dereferenced pvar p to its cell, classifying
	// NULL and dangling bindings.
	deref := func(p string) (*Cell, Fault, error) {
		l := h.Get(p)
		if l == 0 {
			return nil, FaultNullDeref, nil
		}
		c := h.Cell(l)
		if c == nil {
			if h.Freed[l] {
				return nil, FaultUseAfterFree, nil
			}
			return nil, FaultNone, fmt.Errorf("concrete: dangling pvar %s (never freed)", p)
		}
		return c, FaultNone, nil
	}
	switch s.Op {
	case ir.OpNil:
		h.Set(s.X, 0)
	case ir.OpMalloc:
		sels := it.Prog.Selectors[s.Type]
		h.Set(s.X, h.Alloc(s.Type, sels))
	case ir.OpCopy:
		h.Set(s.X, h.Get(s.Y))
	case ir.OpSelNil:
		c, fault, err := deref(s.X)
		if fault != FaultNone || err != nil {
			return fault, err
		}
		c.Fields[s.Sel] = 0
	case ir.OpSelCopy:
		c, fault, err := deref(s.X)
		if fault != FaultNone || err != nil {
			return fault, err
		}
		c.Fields[s.Sel] = h.Get(s.Y)
	case ir.OpLoad:
		c, fault, err := deref(s.Y)
		if fault != FaultNone || err != nil {
			return fault, err
		}
		h.Set(s.X, c.Fields[s.Sel])
	case ir.OpFree:
		l := h.Get(s.X)
		if l == 0 {
			break // free(NULL) is a no-op
		}
		if h.Cell(l) == nil {
			if h.Freed[l] {
				return FaultDoubleFree, nil
			}
			return FaultNone, fmt.Errorf("concrete: dangling pvar %s (never freed)", s.X)
		}
		h.Free(l)
		h.Set(s.X, 0) // the dialect nullifies the freed pvar
	case ir.OpAssumeNull, ir.OpAssumeNonNull,
		ir.OpNoop, ir.OpEntry, ir.OpExit:
		// Assumes are handled by successor selection; no heap effect.
	}
	return FaultNone, nil
}

// pick chooses the successor, respecting assume statements.
func (it *Interp) pick(s *ir.Stmt, h *Heap) (int, error) {
	var viable []int
	for _, succ := range s.Succs {
		n := it.Prog.Stmt(succ)
		switch n.Op {
		case ir.OpAssumeNull:
			if h.Get(n.X) == 0 {
				viable = append(viable, succ)
			}
		case ir.OpAssumeNonNull:
			if h.Get(n.X) != 0 {
				viable = append(viable, succ)
			}
		default:
			viable = append(viable, succ)
		}
	}
	if len(viable) == 0 {
		if len(s.Succs) == 0 {
			return 0, fmt.Errorf("concrete: statement %d has no successors", s.ID)
		}
		return 0, fmt.Errorf("concrete: statement %d: no viable successor (assume deadlock)", s.ID)
	}
	return viable[it.Rng.Intn(len(viable))], nil
}
