package concrete

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// CoverFailure is the structured account of one soundness violation: a
// concrete heap, observed after a statement on a randomized execution,
// that no RSG of the statement's RSRSG embeds. It records where
// coverage broke (run/step/statement) and, per RSG, why the embedding
// search rejected the heap.
type CoverFailure struct {
	// Run and StepIndex locate the violation in the trace sweep; StmtID
	// and Stmt name the statement whose post-state failed.
	Run       int
	StepIndex int
	StmtID    int
	Stmt      string
	Level     rsg.Level
	// Heap is the uncovered concrete configuration.
	Heap *Heap
	// Set is the statement's RSRSG; nil when the analysis produced no
	// RSRSG for a statement the interpreter reached (itself a
	// violation — EmptySet distinguishes a missing set from an empty
	// one).
	Set      *rsrsg.Set
	EmptySet bool
	// Graphs holds one EmbedFailure per RSG, in set order.
	Graphs []*EmbedFailure
}

// Nearest returns the EmbedFailure whose search got furthest — the
// "nearest RSG" the reports and DOT output focus on. Ties break toward
// the lower graph index; nil when the set was missing or empty.
func (f *CoverFailure) Nearest() *EmbedFailure {
	var best *EmbedFailure
	for _, ef := range f.Graphs {
		if best == nil || ef.BestDepth > best.BestDepth {
			best = ef
		}
	}
	return best
}

// String renders the failure report.
func (f *CoverFailure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "soundness violation at %s: statement %d (%s) not covered (run %d, step %d)\n",
		f.Level, f.StmtID, f.Stmt, f.Run, f.StepIndex)
	b.WriteString("concrete heap:\n")
	for _, line := range strings.Split(strings.TrimRight(f.Heap.String(), "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	switch {
	case f.Set == nil && f.EmptySet:
		b.WriteString("the analysis computed no RSRSG for the statement\n")
	case len(f.Graphs) == 0:
		b.WriteString("the statement's RSRSG is empty: every abstract branch was pruned as infeasible\n")
	default:
		fmt.Fprintf(&b, "none of the %d RSGs embeds the heap:\n", len(f.Graphs))
		nearest := f.Nearest()
		for _, ef := range f.Graphs {
			marker := " "
			if ef == nearest {
				marker = "*"
			}
			fmt.Fprintf(&b, "%s rsg#%d: %s\n", marker, ef.GraphIndex, ef.Summary())
		}
		if nearest != nil {
			fmt.Fprintf(&b, "nearest RSG (rsg#%d):\n", nearest.GraphIndex)
			for _, line := range strings.Split(strings.TrimRight(nearest.Format(), "\n"), "\n") {
				b.WriteString("  " + line + "\n")
			}
		}
	}
	return b.String()
}

// HeapDOT renders the uncovered heap in Graphviz dot syntax, annotated
// with the nearest RSG's best partial embedding: mapped cells are green
// and tagged with their node, the frontier cell is red. When cluster is
// set, the output is a subgraph cluster for side-by-side drawings.
func (f *CoverFailure) HeapDOT(cluster bool) string {
	nearest := f.Nearest()
	var b strings.Builder
	if cluster {
		b.WriteString("subgraph cluster_heap {\n  label=\"concrete heap\";\n")
	} else {
		b.WriteString("digraph \"concrete heap\" {\n")
	}
	b.WriteString("  rankdir=LR;\n  node [shape=record, fontsize=10];\n")
	var ps []string
	for p := range f.Heap.Pvars {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	for _, p := range ps {
		fmt.Fprintf(&b, "  hpv_%s [shape=plaintext, label=%q];\n", p, p)
	}
	var ls []Loc
	for l := range f.Heap.Cells {
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	for _, l := range ls {
		c := f.Heap.Cells[l]
		label := fmt.Sprintf("L%d: %s", l, c.Type)
		var attrs []string
		if nearest != nil {
			if n, ok := nearest.BestAssign[l]; ok {
				label += fmt.Sprintf("\\n-> n%d", n)
				attrs = append(attrs, `style=filled`, `fillcolor="#d5f5e3"`)
			} else if l == nearest.FrontierCell {
				label += "\\n(unplaceable)"
				attrs = append(attrs, `style=filled`, `fillcolor="#f5b7b1"`)
			}
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		fmt.Fprintf(&b, "  hL%d [%s];\n", l, strings.Join(attrs, ", "))
	}
	for _, p := range ps {
		if t := f.Heap.Pvars[p]; t != 0 {
			fmt.Fprintf(&b, "  hpv_%s -> hL%d;\n", p, t)
		}
	}
	for _, l := range ls {
		c := f.Heap.Cells[l]
		var sels []string
		for sel := range c.Fields {
			sels = append(sels, sel)
		}
		sort.Strings(sels)
		for _, sel := range sels {
			if t := c.Fields[sel]; t != 0 {
				fmt.Fprintf(&b, "  hL%d -> hL%d [label=%q];\n", l, t, sel)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the side-by-side pair — concrete heap on the left,
// nearest RSG on the right, partial embedding highlighted on both — as
// one Graphviz digraph with two clusters.
func (f *CoverFailure) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph \"cover-failure stmt %d\" {\n", f.StmtID)
	b.WriteString(indent(f.HeapDOT(true)))
	if nearest := f.Nearest(); nearest != nil {
		styles := make(map[rsg.NodeID]rsg.DOTStyle)
		var ls []Loc
		for l := range nearest.BestAssign {
			ls = append(ls, l)
		}
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		for _, l := range ls {
			id := nearest.BestAssign[l]
			st := styles[id]
			st.Fill = "#d5f5e3"
			if st.Tag == "" {
				st.Tag = fmt.Sprintf("<- L%d", l)
			} else {
				st.Tag += fmt.Sprintf(",L%d", l)
			}
			styles[id] = st
		}
		if n := nearest.Headline.Node; n >= 0 {
			st := styles[n]
			st.Fill = "#f5b7b1"
			if st.Tag == "" {
				st.Tag = "(" + string(nearest.Headline.Kind) + ")"
			}
			styles[n] = st
		}
		b.WriteString(indent(rsg.DOTWith(nearest.Graph, fmt.Sprintf("nearest RSG %d", nearest.GraphIndex), styles, true)))
	}
	b.WriteString("}\n")
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// FindCoverFailure replays `runs` randomized concrete executions of the
// program against the per-statement RSRSGs and returns the first
// soundness violation with the full embedding introspection, or nil
// when every observed heap is covered. An interpreter error (not a
// coverage failure) is returned as err.
func FindCoverFailure(prog *ir.Program, out map[int]*rsrsg.Set, lvl rsg.Level, runs int, seed int64) (*CoverFailure, error) {
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < runs; r++ {
		it := &Interp{Prog: prog, Rng: rand.New(rand.NewSource(rng.Int63())), MaxSteps: 1500}
		tr, err := it.Run()
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", r, err)
		}
		for i, step := range tr.Steps {
			set := out[step.StmtID]
			if set == nil {
				return &CoverFailure{
					Run: r, StepIndex: i, StmtID: step.StmtID,
					Stmt: prog.Stmt(step.StmtID).String(), Level: lvl,
					Heap: step.Heap, EmptySet: true,
				}, nil
			}
			if ok, _ := Covers(set, step.Heap); !ok {
				return &CoverFailure{
					Run: r, StepIndex: i, StmtID: step.StmtID,
					Stmt: prog.Stmt(step.StmtID).String(), Level: lvl,
					Heap: step.Heap, Set: set,
					Graphs: ExplainCover(set, step.Heap),
				}, nil
			}
		}
	}
	return nil, nil
}
