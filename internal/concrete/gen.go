package concrete

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenProgram emits a random mini-C program over three node pointers and
// two selectors, with one loop in the middle. Dereferences through
// possibly-NULL pvars are fine: the interpreter stops the trace and the
// analysis drops the branch, and both must agree. The fuzz sweep and
// shapetriage's seed mode share this generator, so a failing sweep seed
// can be replayed and triaged outside the test harness.
func GenProgram(r *rand.Rand) string {
	sels := []string{"nxt", "prv"}
	return genProgramOver(r, "node", sels, sels, false)
}

// GenFreeProgram is GenProgram with deallocation in the statement mix:
// free() of a possibly-NULL, possibly-dangling pvar. Traces may fault
// (double free, use-after-free) exactly like NULL dereferences — the
// interpreter stops and the analysis drops the branch — and cells may
// leak; the soundness sweep must cover the surviving prefixes, and the
// verdict fuzzer cross-checks the checkers' SAFE claims against the
// observed faults.
func GenFreeProgram(r *rand.Rand) string {
	sels := []string{"nxt", "prv"}
	return genProgramOver(r, "node", sels, sels, true)
}

// GenWideProgram is GenProgram over a struct with 68 pointer fields, so
// the interned selector Syms run past the 64-bit inline mask and the
// random statements hit the bitset spill slice. The statements draw
// from the four highest-numbered selectors to make spills certain
// regardless of what earlier tests interned.
func GenWideProgram(r *rand.Rand) string {
	all := make([]string, 68)
	for i := range all {
		all[i] = fmt.Sprintf("w%02d", i)
	}
	return genProgramOver(r, "wide", all, all[64:], false)
}

// genProgramOver emits the random program skeleton over a struct named
// structName declaring the given pointer fields; the generated
// statements draw selectors from sels (a subset of fields). withFree
// adds free() to the statement mix.
func genProgramOver(r *rand.Rand, structName string, fields, sels []string, withFree bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s { int v;", structName)
	for _, f := range fields {
		fmt.Fprintf(&b, " struct %s *%s;", structName, f)
	}
	b.WriteString(" };\n")
	b.WriteString("void main(void) {\n")
	fmt.Fprintf(&b, "    struct %s *p;\n    struct %s *q;\n    struct %s *r;\n",
		structName, structName, structName)

	pvars := []string{"p", "q", "r"}
	stmt := func() string {
		x := pvars[r.Intn(3)]
		y := pvars[r.Intn(3)]
		sel := sels[r.Intn(len(sels))]
		if withFree && r.Intn(6) == 0 {
			return fmt.Sprintf("free(%s);", x) // free(NULL) is a no-op; stale aliases fault
		}
		switch r.Intn(12) {
		case 0, 1, 2:
			return fmt.Sprintf("%s = malloc(sizeof(struct %s));", x, structName)
		case 3:
			return fmt.Sprintf("%s = NULL;", x)
		case 4, 5:
			return fmt.Sprintf("%s = %s;", x, y)
		case 6, 7:
			return fmt.Sprintf("if (%s != NULL) { %s->%s = %s; }", x, x, sel, y)
		case 8:
			return fmt.Sprintf("if (%s != NULL) { %s->%s = NULL; }", x, x, sel)
		case 9, 10:
			return fmt.Sprintf("if (%s != NULL) { %s = %s->%s; }", y, x, y, sel)
		default:
			return fmt.Sprintf("%s->%s = %s;", x, sel, y) // may NULL-deref
		}
	}
	n := 4 + r.Intn(5)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    %s\n", stmt())
	}
	b.WriteString("    while (cond) {\n")
	m := 3 + r.Intn(4)
	for i := 0; i < m; i++ {
		fmt.Fprintf(&b, "        %s\n", stmt())
	}
	b.WriteString("    }\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "    %s\n", stmt())
	}
	b.WriteString("}\n")
	return b.String()
}
