package concrete

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	file, err := cminic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := ir.LowerMain(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return prog
}

const listSrc = `
struct node { int val; struct node *nxt; };

void main(void) {
    struct node *head;
    struct node *p;
    struct node *q;
    head = malloc(sizeof(struct node));
    head->nxt = NULL;
    p = head;
    while (more) {
        q = malloc(sizeof(struct node));
        q->nxt = NULL;
        p->nxt = q;
        p = q;
    }
    q = NULL;
    p = head;
    while (p != NULL) {
        p = p->nxt;
    }
}
`

func TestInterpreterRuns(t *testing.T) {
	prog := compile(t, listSrc)
	it := &Interp{Prog: prog, Rng: rand.New(rand.NewSource(1))}
	tr, err := it.Run()
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if tr.NullDeref {
		t.Fatalf("unexpected NULL dereference")
	}
	if len(tr.Steps) == 0 {
		t.Fatalf("empty trace")
	}
}

// TestSoundnessOnList validates the analysis against concrete
// executions: every heap observed after statement s must be covered by
// the RSRSG the analysis computed for s.
func TestSoundnessOnList(t *testing.T) {
	prog := compile(t, listSrc)
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		res, err := analysis.Run(prog, analysis.Options{Level: lvl})
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		CheckTraces(t, prog, res, 25, 20250706)
	}
}

// CheckTraces runs `runs` randomized concrete executions and asserts
// coverage of every step's heap by the per-statement RSRSG. It
// delegates to FindCoverFailure, so a failure prints the structured
// cover-diff report (frontier statement, best partial embedding,
// rejecting node property) instead of a bare verdict.
func CheckTraces(t *testing.T, prog *ir.Program, res *analysis.Result, runs int, seed int64) {
	t.Helper()
	fail, err := FindCoverFailure(prog, res.Out, res.Level, runs, seed)
	if err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatalf("%s", fail)
	}
}

const treeSrc = `
struct tnode { int key; struct tnode *left; struct tnode *right; };

void main(void) {
    struct tnode *root;
    struct tnode *cur;
    struct tnode *kid;
    root = malloc(sizeof(struct tnode));
    root->left = NULL;
    root->right = NULL;
    while (grow) {
        cur = root;
        while (descend) {
            if (goleft) {
                if (cur->left == NULL) {
                    kid = malloc(sizeof(struct tnode));
                    kid->left = NULL;
                    kid->right = NULL;
                    cur->left = kid;
                }
                cur = cur->left;
            } else {
                if (cur->right == NULL) {
                    kid = malloc(sizeof(struct tnode));
                    kid->left = NULL;
                    kid->right = NULL;
                    cur->right = kid;
                }
                cur = cur->right;
            }
        }
    }
}
`

func TestSoundnessOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("tree soundness check is slow")
	}
	prog := compile(t, treeSrc)
	res, err := analysis.Run(prog, analysis.Options{Level: rsg.L1})
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	CheckTraces(t, prog, res, 10, 7)
}
