package concrete

import (
	"testing"

	"repro/internal/rsg"
	"repro/internal/rsrsg"
)

// listHeap builds a concrete singly-linked list of n cells with pvar
// "h" at the head.
func listHeap(n int) *Heap {
	h := NewHeap()
	var prev Loc
	for i := 0; i < n; i++ {
		l := h.Alloc("node", []string{"nxt"})
		if i == 0 {
			h.Set("h", l)
		} else {
			h.Cell(prev).Fields["nxt"] = l
		}
		prev = l
	}
	return h
}

// listRSG builds the abstract 2+-element list (head/middle/tail) with
// pvar "h".
func listRSG() *rsg.Graph {
	g := rsg.NewGraph()
	hd := rsg.NewNode("node")
	hd.Singleton = true
	hd.MarkDefiniteOut("nxt")
	g.AddNode(hd)
	mid := rsg.NewNode("node")
	mid.MarkDefiniteIn("nxt")
	mid.MarkDefiniteOut("nxt")
	g.AddNode(mid)
	tl := rsg.NewNode("node")
	tl.Singleton = true
	tl.MarkDefiniteIn("nxt")
	g.AddNode(tl)
	g.AddLink(hd.ID, "nxt", mid.ID)
	g.AddLink(hd.ID, "nxt", tl.ID)
	g.AddLink(mid.ID, "nxt", mid.ID)
	g.AddLink(mid.ID, "nxt", tl.ID)
	g.SetPvar("h", hd.ID)
	return g
}

func TestEmbedsList(t *testing.T) {
	g := listRSG()
	for _, n := range []int{2, 3, 6} {
		if ok, why := Embeds(g, listHeap(n)); !ok {
			t.Errorf("%d-element list must embed: %s", n, why)
		}
	}
	// A 1-element list does not embed: the head claims a definite nxt.
	if ok, _ := Embeds(g, listHeap(1)); ok {
		t.Error("1-element list must not embed (head SELOUT is definite)")
	}
}

func TestEmbedsRejectsWrongPvars(t *testing.T) {
	g := listRSG()
	h := listHeap(3)
	h.Set("x", h.Get("h")) // extra bound pvar not in the RSG
	if ok, _ := Embeds(g, h); ok {
		t.Error("heap with extra bound pvar must not embed")
	}
	h2 := listHeap(3)
	h2.Set("h", 0) // h NULL concretely but bound in the RSG
	if ok, _ := Embeds(g, h2); ok {
		t.Error("heap with NULL h must not embed")
	}
}

func TestEmbedsRespectsSharing(t *testing.T) {
	// Concrete: two cells point at one target through nxt.
	h := NewHeap()
	a := h.Alloc("node", []string{"nxt"})
	b := h.Alloc("node", []string{"nxt"})
	tgt := h.Alloc("node", []string{"nxt"})
	h.Set("a", a)
	h.Set("b", b)
	h.Cell(a).Fields["nxt"] = tgt
	h.Cell(b).Fields["nxt"] = tgt

	// Abstract graph without SHSEL on the target: must reject.
	g := rsg.NewGraph()
	na := rsg.NewNode("node")
	na.Singleton = true
	na.MarkDefiniteOut("nxt")
	g.AddNode(na)
	nb := rsg.NewNode("node")
	nb.Singleton = true
	nb.MarkDefiniteOut("nxt")
	g.AddNode(nb)
	nt := rsg.NewNode("node")
	nt.Singleton = true
	nt.MarkDefiniteIn("nxt")
	g.AddNode(nt)
	g.AddLink(na.ID, "nxt", nt.ID)
	g.AddLink(nb.ID, "nxt", nt.ID)
	g.SetPvar("a", na.ID)
	g.SetPvar("b", nb.ID)

	if ok, _ := Embeds(g, h); ok {
		t.Error("doubly-referenced cell must not embed into an unshared node")
	}
	nt.Shared = true
	nt.ShSel.Add("nxt")
	if ok, why := Embeds(g, h); !ok {
		t.Errorf("with SHSEL the heap must embed: %s", why)
	}
}

func TestEmbedsRespectsCycleLinks(t *testing.T) {
	// Concrete: a -> b via nxt, b -> a via prv (a doubly pair).
	h := NewHeap()
	a := h.Alloc("node", []string{"nxt", "prv"})
	b := h.Alloc("node", []string{"nxt", "prv"})
	h.Set("a", a)
	h.Cell(a).Fields["nxt"] = b
	h.Cell(b).Fields["prv"] = a

	g := rsg.NewGraph()
	na := rsg.NewNode("node")
	na.Singleton = true
	na.MarkDefiniteOut("nxt")
	na.Cycle.Add(rsg.CyclePair{Out: "nxt", In: "prv"})
	g.AddNode(na)
	nb := rsg.NewNode("node")
	nb.Singleton = true
	nb.MarkDefiniteIn("nxt")
	nb.MarkDefiniteOut("prv")
	g.AddNode(nb)
	g.AddLink(na.ID, "nxt", nb.ID)
	g.AddLink(nb.ID, "prv", na.ID)
	g.SetPvar("a", na.ID)

	if ok, why := Embeds(g, h); !ok {
		t.Fatalf("cyclic pair must embed: %s", why)
	}

	// Break the concrete back link: the cycle-link claim now fails.
	h.Cell(b).Fields["prv"] = 0
	if ok, _ := Embeds(g, h); ok {
		t.Error("broken cycle must not embed into a node with the cycle link")
	}
}

func TestEmbedsSingletonCapacity(t *testing.T) {
	// Two concrete cells cannot both map onto one singleton node.
	h := NewHeap()
	a := h.Alloc("node", []string{"nxt"})
	b := h.Alloc("node", []string{"nxt"})
	h.Set("a", a)
	h.Cell(a).Fields["nxt"] = b

	g := rsg.NewGraph()
	n := rsg.NewNode("node")
	n.Singleton = true
	n.MarkPossibleOut("nxt")
	n.MarkPossibleIn("nxt")
	g.AddNode(n)
	g.AddLink(n.ID, "nxt", n.ID)
	g.SetPvar("a", n.ID)

	if ok, _ := Embeds(g, h); ok {
		t.Error("two cells must not share one singleton node")
	}
	n.Singleton = false
	if ok, why := Embeds(g, h); !ok {
		t.Errorf("a summary accepts both cells: %s", why)
	}
}

func TestCoversReportsDetail(t *testing.T) {
	set := rsrsg.New()
	set.Add(listRSG())
	ok, why := Covers(set, listHeap(1))
	if ok {
		t.Fatal("1-element list must not be covered")
	}
	if why == "" {
		t.Error("negative verdicts must carry an explanation")
	}
	if ok, _ := Covers(set, listHeap(4)); !ok {
		t.Error("4-element list must be covered")
	}
}
