package concrete

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/rsg"
)

// genProgram emits a random mini-C program over three node pointers and
// two selectors, with one loop in the middle. Dereferences through
// possibly-NULL pvars are fine: the interpreter stops the trace and the
// analysis drops the branch, and both must agree.
func genProgram(r *rand.Rand) string {
	sels := []string{"nxt", "prv"}
	return genProgramOver(r, "node", sels, sels)
}

// genWideProgram is genProgram over a struct with 68 pointer fields, so
// the interned selector Syms run past the 64-bit inline mask and the
// random statements hit the bitset spill slice. The statements draw
// from the four highest-numbered selectors to make spills certain
// regardless of what earlier tests interned.
func genWideProgram(r *rand.Rand) string {
	all := make([]string, 68)
	for i := range all {
		all[i] = fmt.Sprintf("w%02d", i)
	}
	return genProgramOver(r, "wide", all, all[64:])
}

// genProgramOver emits the random program skeleton over a struct named
// structName declaring the given pointer fields; the generated
// statements draw selectors from sels (a subset of fields).
func genProgramOver(r *rand.Rand, structName string, fields, sels []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s { int v;", structName)
	for _, f := range fields {
		fmt.Fprintf(&b, " struct %s *%s;", structName, f)
	}
	b.WriteString(" };\n")
	b.WriteString("void main(void) {\n")
	fmt.Fprintf(&b, "    struct %s *p;\n    struct %s *q;\n    struct %s *r;\n",
		structName, structName, structName)

	pvars := []string{"p", "q", "r"}
	stmt := func() string {
		x := pvars[r.Intn(3)]
		y := pvars[r.Intn(3)]
		sel := sels[r.Intn(len(sels))]
		switch r.Intn(12) {
		case 0, 1, 2:
			return fmt.Sprintf("%s = malloc(sizeof(struct %s));", x, structName)
		case 3:
			return fmt.Sprintf("%s = NULL;", x)
		case 4, 5:
			return fmt.Sprintf("%s = %s;", x, y)
		case 6, 7:
			return fmt.Sprintf("if (%s != NULL) { %s->%s = %s; }", x, x, sel, y)
		case 8:
			return fmt.Sprintf("if (%s != NULL) { %s->%s = NULL; }", x, x, sel)
		case 9, 10:
			return fmt.Sprintf("if (%s != NULL) { %s = %s->%s; }", y, x, y, sel)
		default:
			return fmt.Sprintf("%s->%s = %s;", x, sel, y) // may NULL-deref
		}
	}
	n := 4 + r.Intn(5)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    %s\n", stmt())
	}
	b.WriteString("    while (cond) {\n")
	m := 3 + r.Intn(4)
	for i := 0; i < m; i++ {
		fmt.Fprintf(&b, "        %s\n", stmt())
	}
	b.WriteString("    }\n")
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&b, "    %s\n", stmt())
	}
	b.WriteString("}\n")
	return b.String()
}

// TestFuzzSoundness cross-validates the analysis against the concrete
// interpreter on randomly generated programs: every reachable concrete
// heap must be covered by the RSRSG of its statement, at every level.
// The abstract side runs with Workers: 4 so the fuzzer also sweeps the
// parallel engine — soundness must hold on the parallel results too
// (they are digest-identical to sequential by the determinism
// property, so a divergence here is a determinism bug as much as a
// soundness one).
func TestFuzzSoundness(t *testing.T) {
	programs := 30
	traces := 10
	if testing.Short() {
		programs, traces = 4, 4
	}
	seedRng := rand.New(rand.NewSource(20260706))
	for i := 0; i < programs; i++ {
		gen := genProgram
		if i%5 == 4 { // every fifth program sweeps the spill path
			gen = genWideProgram
		}
		src := gen(rand.New(rand.NewSource(seedRng.Int63())))
		prog := compile(t, src)
		for _, lvl := range []rsg.Level{rsg.L1, rsg.L3} {
			res, err := analysis.Run(prog, analysis.Options{Level: lvl, MaxVisits: 50000, Workers: 4})
			if err != nil {
				t.Fatalf("program %d at %s: %v\n%s", i, lvl, err, src)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("program %d at %s panicked: %v\n%s", i, lvl, r, src)
					}
				}()
				CheckTraces(t, prog, res, traces, int64(1000+i))
			}()
		}
	}
}

// TestCorpusSoundness replays the regression corpus under testdata/:
// programs distilled from past fuzzer finds and hand-written stress
// shapes (cycles, sharing, NULL-deref branch drops). Unlike the fuzz
// sweep, the corpus is stable across seed-RNG changes, so a regression
// on a previously-found case cannot hide behind a reshuffled sweep.
func TestCorpusSoundness(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty regression corpus: no testdata/*.c files")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(file), func(t *testing.T) {
			prog := compile(t, string(src))
			for _, lvl := range []rsg.Level{rsg.L1, rsg.L3} {
				res, err := analysis.Run(prog, analysis.Options{Level: lvl, MaxVisits: 50000, Workers: 4})
				if err != nil {
					t.Fatalf("%s at %s: %v", file, lvl, err)
				}
				CheckTraces(t, prog, res, 10, 42)
			}
		})
	}
}
