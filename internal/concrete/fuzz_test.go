package concrete

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/rsg"
)

// fuzzSeed returns the master generator seed: the FUZZ_SEED environment
// variable when set (the nightly sweep rotates it; `make fuzz
// FUZZ_SEED=...` replays a rotation), else the committed default.
func fuzzSeed(t *testing.T) int64 {
	if env := os.Getenv("FUZZ_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("invalid FUZZ_SEED %q: %v", env, err)
		}
		return seed
	}
	return 20260706
}

// TestFuzzSoundness cross-validates the analysis against the concrete
// interpreter on randomly generated programs: every reachable concrete
// heap must be covered by the RSRSG of its statement, at every level.
// The abstract side runs with Workers: 4 so the fuzzer also sweeps the
// parallel engine — soundness must hold on the parallel results too
// (they are digest-identical to sequential by the determinism
// property, so a divergence here is a determinism bug as much as a
// soundness one).
//
// On a failure, re-run the per-program seed printed in the message
// through `shapetriage -genseed N` for the structured cover-diff
// report, and `-shrink` to distill a corpus case (DESIGN.md §11).
func TestFuzzSoundness(t *testing.T) {
	programs := 30
	traces := 10
	if testing.Short() {
		programs, traces = 4, 4
	}
	seedRng := rand.New(rand.NewSource(fuzzSeed(t)))
	for i := 0; i < programs; i++ {
		gen := GenProgram
		if i%3 == 2 { // every third program mixes in free()
			gen = GenFreeProgram
		}
		if i%5 == 4 { // every fifth program sweeps the spill path
			gen = GenWideProgram
		}
		genSeed := seedRng.Int63()
		src := gen(rand.New(rand.NewSource(genSeed)))
		prog := compile(t, src)
		for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
			res, err := analysis.Run(prog, analysis.Options{Level: lvl, MaxVisits: 50000, Workers: 4})
			if err != nil {
				t.Fatalf("program %d (genseed %d) at %s: %v\n%s", i, genSeed, lvl, err, src)
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("program %d (genseed %d) at %s panicked: %v\n%s", i, genSeed, lvl, r, src)
					}
				}()
				CheckTraces(t, prog, res, traces, int64(1000+i))
			}()
		}
	}
}

// TestCorpusSoundness replays the regression corpus under testdata/:
// programs distilled from past fuzzer finds (several by the triage
// shrinker) and hand-written stress shapes (cycles, sharing, NULL-deref
// branch drops). Unlike the fuzz sweep, the corpus is stable across
// seed-RNG changes, so a regression on a previously-found case cannot
// hide behind a reshuffled sweep.
func TestCorpusSoundness(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty regression corpus: no testdata/*.c files")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(filepath.Base(file), func(t *testing.T) {
			prog := compile(t, string(src))
			for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
				res, err := analysis.Run(prog, analysis.Options{Level: lvl, MaxVisits: 50000, Workers: 4})
				if err != nil {
					t.Fatalf("%s at %s: %v", file, lvl, err)
				}
				CheckTraces(t, prog, res, 10, 42)
			}
		})
	}
}
