package concrete

import (
	"strings"
	"testing"

	"repro/internal/rsg"
)

// The tests below hand-build one near-miss embedding per rejecting
// property: a heap and an RSG that agree everywhere except for the
// property under test, so ExplainEmbedding must name exactly that
// property in its headline.

// heapCell allocates a cell and returns its Loc.
func heapCell(h *Heap, typ string, fields map[string]Loc) Loc {
	var sels []string
	for s := range fields {
		sels = append(sels, s)
	}
	l := h.Alloc(typ, sels)
	c := h.Cell(l)
	for s, t := range fields {
		c.Fields[s] = t
	}
	return l
}

func wantHeadline(t *testing.T, g *rsg.Graph, h *Heap, kind RejectKind) *EmbedFailure {
	t.Helper()
	f := ExplainEmbedding(g, h)
	if f == nil {
		t.Fatalf("graph unexpectedly embeds the heap")
	}
	if f.Headline.Kind != kind {
		t.Fatalf("headline kind = %s, want %s\n%s", f.Headline.Kind, kind, f.Format())
	}
	if f.Headline.Detail == "" {
		t.Fatalf("headline has no detail: %s", f.Headline)
	}
	return f
}

func TestExplainPvarNull(t *testing.T) {
	h := NewHeap()
	h.Set("p", heapCell(h, "node", nil))
	g := rsg.NewGraph()
	g.AddNode(rsg.NewNode("node"))
	wantHeadline(t, g, h, RejectPvarNull)
}

func TestExplainPvarBound(t *testing.T) {
	h := NewHeap() // p is NULL concretely
	g := rsg.NewGraph()
	n := g.AddNode(rsg.NewNode("node"))
	g.SetPvar("p", n.ID)
	wantHeadline(t, g, h, RejectPvarBound)
}

func TestExplainType(t *testing.T) {
	h := NewHeap()
	h.Set("p", heapCell(h, "node", nil))
	g := rsg.NewGraph()
	n := g.AddNode(rsg.NewNode("other"))
	g.SetPvar("p", n.ID)
	f := wantHeadline(t, g, h, RejectType)
	if f.FrontierCell != 1 {
		t.Errorf("frontier cell = L%d, want L1", f.FrontierCell)
	}
}

func TestExplainShared(t *testing.T) {
	h := NewHeap()
	tail := heapCell(h, "node", nil)
	hub := heapCell(h, "hub", map[string]Loc{"a": tail, "b": tail})
	h.Set("p", hub)

	g := rsg.NewGraph()
	n0 := g.AddNode(rsg.NewNode("hub"))
	n1 := g.AddNode(rsg.NewNode("node")) // Shared stays false: the near-miss
	g.SetPvar("p", n0.ID)
	g.AddLink(n0.ID, "a", n1.ID)
	g.AddLink(n0.ID, "b", n1.ID)
	n0.MarkPossibleOut("a")
	n0.MarkPossibleOut("b")
	wantHeadline(t, g, h, RejectShared)
}

func TestExplainShSel(t *testing.T) {
	h := NewHeap()
	tail := heapCell(h, "node", nil)
	h.Set("p", heapCell(h, "a", map[string]Loc{"nxt": tail}))
	h.Set("q", heapCell(h, "b", map[string]Loc{"nxt": tail}))

	g := rsg.NewGraph()
	n0 := g.AddNode(rsg.NewNode("a"))
	n2 := g.AddNode(rsg.NewNode("b"))
	n1 := g.AddNode(rsg.NewNode("node"))
	g.SetPvar("p", n0.ID)
	g.SetPvar("q", n2.ID)
	g.AddLink(n0.ID, "nxt", n1.ID)
	g.AddLink(n2.ID, "nxt", n1.ID)
	n0.MarkPossibleOut("nxt")
	n2.MarkPossibleOut("nxt")
	n1.Shared = true // total sharing admitted, per-selector sharing not
	f := wantHeadline(t, g, h, RejectShSel)
	if f.Headline.Sel != "nxt" {
		t.Errorf("headline selector = %q, want nxt", f.Headline.Sel)
	}
}

func TestExplainSelOut(t *testing.T) {
	h := NewHeap()
	l := h.Alloc("node", []string{"nxt"}) // nxt stays NULL
	h.Set("p", l)
	g := rsg.NewGraph()
	n := g.AddNode(rsg.NewNode("node"))
	g.SetPvar("p", n.ID)
	n.MarkDefiniteOut("nxt") // claims every location has the reference
	f := wantHeadline(t, g, h, RejectSelOut)
	if f.Headline.Sel != "nxt" {
		t.Errorf("headline selector = %q, want nxt", f.Headline.Sel)
	}
}

func TestExplainSelOutPattern(t *testing.T) {
	h := NewHeap()
	tail := heapCell(h, "tail", nil)
	h.Set("p", heapCell(h, "node", map[string]Loc{"nxt": tail}))
	g := rsg.NewGraph()
	n0 := g.AddNode(rsg.NewNode("node")) // nxt in neither SELOUT nor PosSELOUT
	n1 := g.AddNode(rsg.NewNode("tail"))
	g.SetPvar("p", n0.ID)
	g.AddLink(n0.ID, "nxt", n1.ID)
	wantHeadline(t, g, h, RejectSelOutPattern)
}

func TestExplainSelIn(t *testing.T) {
	h := NewHeap()
	h.Set("p", heapCell(h, "node", nil)) // nothing references the cell
	g := rsg.NewGraph()
	n := g.AddNode(rsg.NewNode("node"))
	g.SetPvar("p", n.ID)
	n.MarkDefiniteIn("nxt")
	wantHeadline(t, g, h, RejectSelIn)
}

func TestExplainCycle(t *testing.T) {
	h := NewHeap()
	fwd := h.Alloc("node", []string{"nxt", "prv"}) // prv does not point back
	head := heapCell(h, "node", map[string]Loc{"nxt": fwd, "prv": 0})
	h.Set("p", head)
	g := rsg.NewGraph()
	n0 := g.AddNode(rsg.NewNode("node"))
	n1 := g.AddNode(rsg.NewNode("node"))
	g.SetPvar("p", n0.ID)
	g.AddLink(n0.ID, "nxt", n1.ID)
	n0.MarkPossibleOut("nxt")
	n0.Cycle.Add(rsg.CyclePair{Out: "nxt", In: "prv"})
	f := wantHeadline(t, g, h, RejectCycle)
	if !strings.Contains(f.Headline.Detail, "<nxt,prv>") {
		t.Errorf("headline does not name the pair: %s", f.Headline)
	}
}

func TestExplainSingleton(t *testing.T) {
	h := NewHeap()
	h.Set("p", heapCell(h, "node", nil))
	h.Set("q", heapCell(h, "node", nil))
	g := rsg.NewGraph()
	n := g.AddNode(rsg.NewNode("node"))
	n.Singleton = true
	g.SetPvar("p", n.ID)
	g.SetPvar("q", n.ID) // both pvars force the one singleton
	f := wantHeadline(t, g, h, RejectSingleton)
	if f.BestDepth != 1 {
		t.Errorf("best partial embedding depth = %d, want 1", f.BestDepth)
	}
}

func TestExplainLink(t *testing.T) {
	h := NewHeap()
	b := heapCell(h, "b", nil)
	a := heapCell(h, "a", map[string]Loc{"nxt": b})
	h.Set("p", a)
	h.Set("q", b)
	g := rsg.NewGraph()
	n0 := g.AddNode(rsg.NewNode("a"))
	n1 := g.AddNode(rsg.NewNode("b"))
	g.SetPvar("p", n0.ID)
	g.SetPvar("q", n1.ID)
	n0.MarkPossibleOut("nxt") // pattern admits the field, NL has no link
	f := wantHeadline(t, g, h, RejectLink)
	if f.Headline.Sel != "nxt" {
		t.Errorf("headline selector = %q, want nxt", f.Headline.Sel)
	}
}

func TestExplainSPath(t *testing.T) {
	h := NewHeap()
	h.Set("p", heapCell(h, "node", nil))
	g := rsg.NewGraph()
	free := g.AddNode(rsg.NewNode("node")) // would accept the cell
	forced := g.AddNode(rsg.NewNode("node"))
	forced.MarkDefiniteIn("nxt") // rejects it
	g.SetPvar("p", forced.ID)
	_ = free
	f := wantHeadline(t, g, h, RejectSPath)
	if !strings.Contains(f.Headline.Detail, string(RejectSelIn)) {
		t.Errorf("SPATH detail does not name the underlying property: %s", f.Headline)
	}
}

// TestExplainTouchNeverRejects pins the documented exception: TOUCH
// records traversal history, not a constraint a single heap snapshot
// can violate, so a touched node must still accept a matching cell.
func TestExplainTouchNeverRejects(t *testing.T) {
	h := NewHeap()
	h.Set("p", heapCell(h, "node", nil))
	g := rsg.NewGraph()
	n := g.AddNode(rsg.NewNode("node"))
	g.SetPvar("p", n.ID)
	n.Touch.Add("p")
	if f := ExplainEmbedding(g, h); f != nil {
		t.Fatalf("TOUCH rejected an embedding:\n%s", f.Format())
	}
}

// TestExplainDeepestFrontier checks that the report carries the deepest
// consistent partial embedding, not the first dead end.
func TestExplainDeepestFrontier(t *testing.T) {
	h := NewHeap()
	// Allocation order fixes Loc order, which is the placement order.
	a := h.Alloc("a", []string{"nxt"})
	b := h.Alloc("b", []string{"nxt"})
	c := h.Alloc("c", nil)
	h.Cell(a).Fields["nxt"] = b
	h.Cell(b).Fields["nxt"] = c
	h.Set("p", a)
	g := rsg.NewGraph()
	n0 := g.AddNode(rsg.NewNode("a"))
	n1 := g.AddNode(rsg.NewNode("b"))
	g.AddNode(rsg.NewNode("c")) // no link n1 -> n2: the chain breaks at c
	g.SetPvar("p", n0.ID)
	g.AddLink(n0.ID, "nxt", n1.ID)
	n0.MarkPossibleOut("nxt")
	n1.MarkPossibleOut("nxt")
	f := wantHeadline(t, g, h, RejectLink)
	if f.BestDepth != 2 || f.Cells != 3 {
		t.Errorf("best depth %d of %d cells, want 2 of 3\n%s", f.BestDepth, f.Cells, f.Format())
	}
	if f.FrontierCell != c {
		t.Errorf("frontier cell = L%d, want L%d", f.FrontierCell, c)
	}
	if f.BestAssign[a] != n0.ID || f.BestAssign[b] != n1.ID {
		t.Errorf("best assignment wrong: %v", f.BestAssign)
	}
}
