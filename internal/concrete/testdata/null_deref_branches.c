struct node { int v; struct node *nxt; struct node *prv; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    p = NULL;
    q = malloc(sizeof(struct node));
    q->nxt = NULL;
    if (pick) { p = q; }
    p->nxt = q;
    r = p->nxt;
    while (step) {
        if (r != NULL) { r = r->nxt; }
        r->prv = q;
    }
}
