// Wide-struct stress: 70 distinct selectors on one struct, so the
// interned selector Syms run past 64 and every per-node selector
// bitset (SELOUT/SELIN/possible/shared/touch) exercises the spill
// slice beyond the inline 64-bit mask. The shape itself is a hub
// whose high-numbered selectors are relinked in a loop.
struct fat { int v; struct fat *s00; struct fat *s01; struct fat *s02; struct fat *s03; struct fat *s04; struct fat *s05; struct fat *s06; struct fat *s07; struct fat *s08; struct fat *s09; struct fat *s10; struct fat *s11; struct fat *s12; struct fat *s13; struct fat *s14; struct fat *s15; struct fat *s16; struct fat *s17; struct fat *s18; struct fat *s19; struct fat *s20; struct fat *s21; struct fat *s22; struct fat *s23; struct fat *s24; struct fat *s25; struct fat *s26; struct fat *s27; struct fat *s28; struct fat *s29; struct fat *s30; struct fat *s31; struct fat *s32; struct fat *s33; struct fat *s34; struct fat *s35; struct fat *s36; struct fat *s37; struct fat *s38; struct fat *s39; struct fat *s40; struct fat *s41; struct fat *s42; struct fat *s43; struct fat *s44; struct fat *s45; struct fat *s46; struct fat *s47; struct fat *s48; struct fat *s49; struct fat *s50; struct fat *s51; struct fat *s52; struct fat *s53; struct fat *s54; struct fat *s55; struct fat *s56; struct fat *s57; struct fat *s58; struct fat *s59; struct fat *s60; struct fat *s61; struct fat *s62; struct fat *s63; struct fat *s64; struct fat *s65; struct fat *s66; struct fat *s67; struct fat *s68; struct fat *s69; };
void main(void) {
    struct fat *h;
    struct fat *p;
    struct fat *q;
    h = malloc(sizeof(struct fat));
    p = malloc(sizeof(struct fat));
    h->s00 = p;
    h->s01 = p;
    h->s02 = p;
    h->s03 = p;
    h->s04 = p;
    h->s05 = p;
    h->s06 = p;
    h->s07 = p;
    h->s08 = p;
    h->s09 = p;
    h->s10 = p;
    h->s11 = p;
    h->s12 = p;
    h->s13 = p;
    h->s14 = p;
    h->s15 = p;
    h->s16 = p;
    h->s17 = p;
    h->s18 = p;
    h->s19 = p;
    h->s20 = p;
    h->s21 = p;
    h->s22 = p;
    h->s23 = p;
    h->s24 = p;
    h->s25 = p;
    h->s26 = p;
    h->s27 = p;
    h->s28 = p;
    h->s29 = p;
    h->s30 = p;
    h->s31 = p;
    h->s32 = p;
    h->s33 = p;
    h->s34 = p;
    h->s35 = p;
    h->s36 = p;
    h->s37 = p;
    h->s38 = p;
    h->s39 = p;
    h->s40 = p;
    h->s41 = p;
    h->s42 = p;
    h->s43 = p;
    h->s44 = p;
    h->s45 = p;
    h->s46 = p;
    h->s47 = p;
    h->s48 = p;
    h->s49 = p;
    h->s50 = p;
    h->s51 = p;
    h->s52 = p;
    h->s53 = p;
    h->s54 = p;
    h->s55 = p;
    h->s56 = p;
    h->s57 = p;
    h->s58 = p;
    h->s59 = p;
    h->s60 = p;
    h->s61 = p;
    h->s62 = p;
    h->s63 = p;
    h->s64 = p;
    h->s65 = p;
    h->s66 = p;
    h->s67 = p;
    h->s68 = p;
    h->s69 = p;
    while (grow) {
        q = malloc(sizeof(struct fat));
        q->s69 = h;
        q->s68 = p;
        p->s67 = q;
        h->s66 = q;
        p = q;
    }
    h->s65 = NULL;
    p->s64 = NULL;
    q = h->s69;
}
