struct node { int v; struct node *nxt; struct node *prv; };
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    p->nxt = p;
    p->prv = p;
    q = p;
    while (spin) {
        q = q->nxt;
        q->prv = p;
        p->nxt = q;
        p = p->prv;
    }
    p->nxt = NULL;
    q->prv = NULL;
}
