struct node { int v; struct node *nxt; struct node *prv; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    p = NULL;
    while (build) {
        q = malloc(sizeof(struct node));
        q->nxt = p;
        p = q;
    }
    q = NULL;
    while (p != NULL) {
        r = p->nxt;
        p->nxt = q;
        q = p;
        p = r;
    }
}
