struct node { int v; struct node *nxt; struct node *prv; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    p = malloc(sizeof(struct node));
    p->nxt = NULL;
    q = malloc(sizeof(struct node));
    q->nxt = p;
    r = malloc(sizeof(struct node));
    r->nxt = p;
    while (cond) {
        if (q != NULL) { q = q->nxt; }
        if (r != NULL) { r = r->nxt; }
    }
    p->nxt = q;
}
