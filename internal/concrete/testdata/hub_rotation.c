// Hub-rotation soundness regression, distilled by triage.Shrink from
// the fuzzer find: a hub h keeps two selectors into the growing chain
// while the chain head rotates (p = q). The pre-anchoring PRUNE evicted
// the hub's prv sharing and dropped reachable heaps at L1; see
// analysis.Options.LegacyUnsound and DESIGN.md §11.
struct node { struct node *nxt; struct node *prv; };
void main(void) {
    struct node *h;
    struct node *p;
    struct node *q;
    h = malloc(sizeof(struct node));
    p = malloc(sizeof(struct node));
    h->nxt = p;
    while (cond) {
        q = malloc(sizeof(struct node));
        p->nxt = q;
        h->prv = q;
        p = q;
    }
}
