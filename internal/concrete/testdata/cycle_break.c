struct node { int v; struct node *nxt; struct node *prv; };
void main(void) {
    struct node *h;
    struct node *p;
    struct node *q;
    h = malloc(sizeof(struct node));
    h->nxt = h;
    h->prv = h;
    p = h;
    while (grow) {
        q = malloc(sizeof(struct node));
        q->nxt = h;
        q->prv = p;
        p->nxt = q;
        h->prv = q;
        p = q;
    }
    h->prv = NULL;
    p->nxt = NULL;
}
