package rsrsg

import (
	"sort"

	"repro/internal/rsg"
)

// Accum is the semi-naïve accumulator behind one statement's out-state
// (DESIGN.md §8). The engine's full transfer computes
//
//	out = Reduce(U_{g in members(in)} F(g))
//
// where F(g) is the memoized per-graph transfer part. Accum maintains
// exactly that value incrementally: it holds the refcounted union of
// the live parts' entries (the pre-reduce "raw" state, partitioned by
// alias bucket) plus the cached reduction of every bucket, and
// MergeDeltaDirty re-runs the bucket reduction only where the raw
// contents actually changed. Per-bucket reduction is a pure function of
// the bucket's entry set — Reduce sorts each group by digest before
// reduceGroup/forceGroup, and COMPRESS/JOIN preserve the alias key, so
// a clean bucket's cached reduction is byte-identical to what a full
// recompute would produce and is reused as-is. Entries are refcounted
// because distinct input graphs routinely step to overlapping outputs;
// an entry leaves its bucket only when its last contributing part is
// retracted.
type Accum struct {
	lvl rsg.Level
	// refs counts, per raw entry digest, how many live parts contribute
	// it; the entry is live in its alias bucket while the count is > 0.
	refs map[rsg.Digest]int
	// raw holds the live pre-reduce entries per alias bucket, sorted
	// ascending by digest (the order Reduce would establish).
	raw map[string][]entry
	// dirty marks buckets whose raw contents changed since the last
	// reduction flush.
	dirty map[string]struct{}
	// reduced caches each bucket's post-reduction entries; out is their
	// union across buckets, maintained incrementally.
	reduced map[string][]entry
	out     *Set
	// snap is the clone of out handed to the last MergeDeltaDirty
	// caller; it is reused verbatim while out is unchanged (a dirty
	// bucket whose re-reduction reproduces the cached entries — the
	// common case near convergence, where new raw graphs join into
	// existing members) and dropped whenever out mutates.
	snap *Set
}

// NewAccum returns an empty accumulator for the given analysis level.
func NewAccum(lvl rsg.Level) *Accum {
	return &Accum{
		lvl:     lvl,
		refs:    make(map[rsg.Digest]int),
		raw:     make(map[string][]entry),
		dirty:   make(map[string]struct{}),
		reduced: make(map[string][]entry),
		out:     New(),
	}
}

// Len returns the number of graphs in the current reduced out-state.
func (a *Accum) Len() int { return a.out.Len() }

// add folds one part's entries into the raw state.
func (a *Accum) add(p *Set) {
	for _, e := range p.entries {
		a.refs[e.dig]++
		if a.refs[e.dig] > 1 {
			continue
		}
		b := a.raw[e.alias]
		i := sort.Search(len(b), func(i int) bool { return !b[i].dig.Less(e.dig) })
		b = append(b, entry{})
		copy(b[i+1:], b[i:])
		b[i] = e
		a.raw[e.alias] = b
		a.dirty[e.alias] = struct{}{}
	}
}

// remove retracts one part's entries from the raw state.
func (a *Accum) remove(p *Set) {
	for _, e := range p.entries {
		n := a.refs[e.dig] - 1
		if n > 0 {
			a.refs[e.dig] = n
			continue
		}
		delete(a.refs, e.dig)
		b := a.raw[e.alias]
		i := sort.Search(len(b), func(i int) bool { return !b[i].dig.Less(e.dig) })
		if i >= len(b) || b[i].dig != e.dig {
			continue // retraction of a part never added; ignore
		}
		b = append(b[:i], b[i+1:]...)
		if len(b) == 0 {
			delete(a.raw, e.alias)
		} else {
			a.raw[e.alias] = b
		}
		a.dirty[e.alias] = struct{}{}
	}
}

// MergeDeltaDirty folds the given part deltas into the accumulator and
// returns the updated reduced out-state plus the number of alias
// buckets whose reduction had to be re-run. Buckets untouched by the
// delta keep their cached reduction. Dirty buckets re-reduce as
// independent tasks through opts.Exec (like Reduce), and results are
// applied in sorted bucket-key order, so the outcome is bit-identical
// at any worker count. The returned set shares its frozen member graphs
// with the accumulator but is independently mutable.
func (a *Accum) MergeDeltaDirty(add, remove []*Set, opts Options) (*Set, int) {
	for _, p := range remove {
		if p != nil {
			a.remove(p)
		}
	}
	for _, p := range add {
		if p != nil {
			a.add(p)
		}
	}
	if len(a.dirty) == 0 {
		if a.snap == nil {
			a.snap = a.out.Clone()
		}
		return a.snap, 0
	}
	keys := make([]string, 0, len(a.dirty))
	for k := range a.dirty {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	results := make([][]entry, len(keys))
	var tasks []func()
	for i, key := range keys {
		group := a.raw[key]
		if opts.DisableJoin || len(group) < 2 {
			// Mirror Reduce: join-disabled or trivial buckets pass the
			// raw entries through unreduced.
			results[i] = append([]entry(nil), group...)
			continue
		}
		i, group := i, group
		tasks = append(tasks, func() {
			// Work on a copy: reduceGroup reslices its argument, and the
			// raw bucket must stay intact for future deltas. The copy is
			// already digest-sorted, exactly as Reduce would sort it. The
			// shared join cache (opts.Joins) is internally synchronized.
			g := append([]entry(nil), group...)
			g, _ = reduceGroup(a.lvl, g, false, opts.Joins, opts.Stats)
			if opts.MaxGraphs > 0 && len(g) > opts.MaxGraphs {
				g, _ = forceGroup(a.lvl, g, opts.MaxGraphs, opts.Joins, opts.Stats)
			}
			results[i] = g
		})
	}
	opts.run(tasks)

	for i, key := range keys {
		if entriesEqual(a.reduced[key], results[i]) {
			continue // re-reduction reproduced the cached entries
		}
		a.snap = nil
		// Reduced entries inherit their bucket's alias key (JOIN and
		// COMPRESS preserve the alias relation), so per-bucket swaps in
		// the shared out-set cannot collide across buckets.
		for _, e := range a.reduced[key] {
			a.out.removeEntry(e.dig)
		}
		if len(results[i]) == 0 {
			delete(a.reduced, key)
		} else {
			a.reduced[key] = results[i]
		}
		for _, e := range results[i] {
			a.out.addEntry(e)
		}
	}
	dirtied := len(keys)
	a.dirty = make(map[string]struct{}, 4)
	if a.snap == nil {
		a.snap = a.out.Clone()
	}
	return a.snap, dirtied
}

// entriesEqual reports whether two reduced-bucket slices hold the same
// entries in the same order. The bucket reduction pipeline is
// deterministic, so an unchanged bucket reproduces its previous result
// elementwise; a false negative merely costs an unnecessary clone.
func entriesEqual(a, b []entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].dig != b[i].dig {
			return false
		}
	}
	return true
}
