package rsrsg

// MergeDeltaBatch equivalence: admitting a visit's contributions in
// one batched round must land exactly where sequential MergeDelta
// calls land — same membership, same net Delta — whenever no
// mid-batch force-join fires (the engine's common case). Under a tight
// MaxGraphs the force-join timing may differ, but the Delta replay
// contract must still hold.

import (
	"math/rand"
	"testing"

	"repro/internal/rsg"
)

func TestMergeDeltaBatchMatchesSequential(t *testing.T) {
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		for seed := int64(0); seed < 8; seed++ {
			r := rand.New(rand.NewSource(seed))
			opts := Options{} // no widening bound: join order is identical
			base := FromGraphs(lvl, randomGraphs(r, 4), opts)
			seq, bat := New(), New()
			seq.MergeDelta(lvl, base, opts)
			bat.MergeDelta(lvl, base, opts)

			contribs := []*Set{
				FromGraphs(lvl, randomGraphs(r, 3), opts),
				nil, // nil and empty contributions must be skipped
				New(),
				FromGraphs(lvl, randomGraphs(r, 5), opts),
				base, // fully-absorbed repeat: dismissed O(1)
			}
			var seqDelta Delta
			for _, c := range contribs {
				seqDelta.Merge(seq.MergeDelta(lvl, c, opts))
			}
			batDelta := bat.MergeDeltaBatch(lvl, contribs, opts)

			sameMembership(t, membership(seq), bat, "batch vs sequential membership")
			if seqDelta.Changed != batDelta.Changed {
				t.Fatalf("lvl=%v seed=%d: Changed %v vs %v", lvl, seed, seqDelta.Changed, batDelta.Changed)
			}
			if len(seqDelta.Added) != len(batDelta.Added) || len(seqDelta.Removed) != len(batDelta.Removed) {
				t.Fatalf("lvl=%v seed=%d: delta shape %d+/%d- vs %d+/%d-", lvl, seed,
					len(seqDelta.Added), len(seqDelta.Removed), len(batDelta.Added), len(batDelta.Removed))
			}
			for i := range seqDelta.Added {
				if seqDelta.Added[i].Digest() != batDelta.Added[i].Digest() {
					t.Fatalf("lvl=%v seed=%d: added[%d] differs", lvl, seed, i)
				}
			}
			for i := range seqDelta.Removed {
				if seqDelta.Removed[i] != batDelta.Removed[i] {
					t.Fatalf("lvl=%v seed=%d: removed[%d] differs", lvl, seed, i)
				}
			}
		}
	}
}

func TestMergeDeltaBatchDeltaContractUnderWidening(t *testing.T) {
	// With MaxGraphs in play the batch may force-join at a different
	// point than per-contribution merging would; what must survive is
	// the Delta contract — replaying Added/Removed onto the pre-merge
	// membership reconstructs the post-merge membership exactly.
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		for seed := int64(0); seed < 8; seed++ {
			r := rand.New(rand.NewSource(seed))
			opts := Options{MaxGraphs: 3}
			s := New()
			s.MergeDelta(lvl, FromGraphs(lvl, randomGraphs(r, 4), Options{}), opts)
			for step := 0; step < 4; step++ {
				contribs := []*Set{
					FromGraphs(lvl, randomGraphs(r, 3), Options{}),
					FromGraphs(lvl, randomGraphs(r, 4), Options{}),
				}
				shadow := membership(s)
				d := s.MergeDeltaBatch(lvl, contribs, opts)
				applyDelta(shadow, d)
				sameMembership(t, shadow, s, "batched delta replay")
			}
		}
	}
}
