// Package rsrsg implements the Reduced Set of Reference Shape Graphs
// (Sect. 4 of the paper): the set of RSGs associated with one program
// sentence. The set is "reduced" because graphs that satisfy the
// COMPATIBLE predicate are fused by JOIN, keeping the number of RSGs
// per sentence bounded and the analysis practicable.
package rsrsg

import (
	"sort"
	"strings"

	"repro/internal/rsg"
)

// entry caches the derived keys of one member graph. Graphs inside a
// Set are frozen (rsg.Graph.Freeze) on insertion: any mutation panics,
// so the immutability the analysis relies on is enforced by the type
// system, not convention. Member graphs are interned, so
// structurally-identical graphs share one instance across sets.
type entry struct {
	g     *rsg.Graph
	dig   rsg.Digest
	alias string
}

// newEntry freezes and interns g and caches its derived keys.
func newEntry(g *rsg.Graph) entry {
	g = rsg.Intern(g)
	return entry{g: g, dig: g.Digest(), alias: rsg.AliasKey(g)}
}

// Set is one RSRSG: a reduced set of RSGs, deduplicated by canonical
// digest. Entries are kept sorted by digest, so iteration order is
// deterministic without per-call sorting, and the set-level digest is
// maintained incrementally so Equal is O(1).
type Set struct {
	entries []entry // sorted ascending by dig
	byDig   map[rsg.Digest]struct{}
	// absorbed records every digest ever folded in through MergeDelta,
	// including graphs that were joined away; it prevents re-absorbing
	// (and re-joining) recurring contributions during the fixed point.
	// Lazily initialized by MergeDelta.
	absorbed map[rsg.Digest]struct{}
	// setDig is the XOR of the member digests: order-independent,
	// updated in O(1) per insertion/removal. Two sets with equal length
	// and equal setDig hold the same members (up to hash collision).
	setDig rsg.Digest
}

// New returns an empty RSRSG.
func New() *Set {
	return &Set{byDig: make(map[rsg.Digest]struct{})}
}

// FromGraphs builds a reduced set from the given graphs at the given
// level: graphs are deduplicated, then compatible graphs are joined.
func FromGraphs(lvl rsg.Level, graphs []*rsg.Graph, opts Options) *Set {
	s := New()
	for _, g := range graphs {
		s.Add(g)
	}
	s.Reduce(lvl, opts)
	return s
}

// Exec runs a batch of independent tasks and returns when all have
// completed. Implementations may run the tasks concurrently (the
// analysis engine supplies a worker-pool executor); a nil Exec runs
// them sequentially in order. Tasks handed to an Exec never share
// mutable state, so any schedule produces the same result.
type Exec func(tasks []func())

// Options tunes the reduction. The zero value is the paper's behaviour.
type Options struct {
	// DisableJoin keeps every distinct RSG instead of joining compatible
	// ones; used by the ablation benchmarks.
	DisableJoin bool
	// MaxGraphs, when positive, force-joins graphs with equal alias
	// relations once the set exceeds the bound (a widening safeguard).
	MaxGraphs int
	// Exec, when non-nil, runs the per-alias-bucket reduction tasks of
	// Reduce and MergeDelta concurrently. Buckets are independent —
	// compatibility requires equal alias keys, digest-equal graphs have
	// equal alias keys, and JOIN/COMPRESS preserve the alias relation
	// (C_SPATH demands equal zero-length paths, so nodes referenced by
	// different pvars never merge) — and results are recombined in
	// sorted bucket-key order, so the outcome is bit-identical to a
	// sequential run.
	Exec Exec
}

// run executes tasks through opts.Exec, falling back to a sequential
// loop when no executor is configured or the batch is trivial.
func (o Options) run(tasks []func()) {
	if o.Exec == nil || len(tasks) < 2 {
		for _, t := range tasks {
			t()
		}
		return
	}
	o.Exec(tasks)
}

// Add freezes g and inserts it if no digest-identical graph is present.
func (s *Set) Add(g *rsg.Graph) bool {
	return s.addEntry(newEntry(g))
}

// addEntry inserts e at its sorted position unless a digest-identical
// member exists, keeping byDig and the set digest in sync.
func (s *Set) addEntry(e entry) bool {
	if _, dup := s.byDig[e.dig]; dup {
		return false
	}
	s.byDig[e.dig] = struct{}{}
	i := sort.Search(len(s.entries), func(i int) bool { return !s.entries[i].dig.Less(e.dig) })
	s.entries = append(s.entries, entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	xorDigest(&s.setDig, e.dig)
	return true
}

// removeEntry deletes the member with the given digest, if present.
func (s *Set) removeEntry(dig rsg.Digest) bool {
	if _, ok := s.byDig[dig]; !ok {
		return false
	}
	delete(s.byDig, dig)
	i := sort.Search(len(s.entries), func(i int) bool { return !s.entries[i].dig.Less(dig) })
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	xorDigest(&s.setDig, dig)
	return true
}

// reset clears the member state (absorbed history is kept).
func (s *Set) reset(capacity int) {
	s.entries = s.entries[:0]
	s.byDig = make(map[rsg.Digest]struct{}, capacity)
	s.setDig = rsg.Digest{}
}

func xorDigest(dst *rsg.Digest, d rsg.Digest) {
	for i := range dst {
		dst[i] ^= d[i]
	}
}

// ForEachEntry calls f with every member graph and its cached canonical
// digest, in deterministic (digest) order. Entries are kept sorted on
// insertion, so this is a plain scan.
func (s *Set) ForEachEntry(f func(g *rsg.Graph, dig rsg.Digest)) {
	for _, e := range s.entries {
		f(e.g, e.dig)
	}
}

// Graphs returns the member RSGs in deterministic (digest) order.
func (s *Set) Graphs() []*rsg.Graph {
	out := make([]*rsg.Graph, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.g
	}
	return out
}

// Len returns the number of RSGs in the set.
func (s *Set) Len() int { return len(s.entries) }

// NumNodes returns the total node count across all member graphs.
func (s *Set) NumNodes() int {
	n := 0
	for _, e := range s.entries {
		n += e.g.NumNodes()
	}
	return n
}

// NumLinks returns the total NL entry count across all member graphs.
func (s *Set) NumLinks() int {
	n := 0
	for _, e := range s.entries {
		n += e.g.NumLinks()
	}
	return n
}

// Reduce joins compatible member graphs until no two members are
// compatible (the "union of RSGs" of Sect. 4.3), compressing each join
// result. Only graphs with equal alias relations can be compatible, so
// the search works per alias bucket; buckets are independent and run
// through opts.Exec (concurrently when the engine provides a pool),
// with the results recombined in sorted bucket-key order so the final
// set is identical regardless of schedule. Returns the number of joins.
func (s *Set) Reduce(lvl rsg.Level, opts Options) int {
	if opts.DisableJoin || len(s.entries) < 2 {
		return 0
	}

	buckets := make(map[string][]entry)
	var order []string
	for _, e := range s.entries {
		if _, ok := buckets[e.alias]; !ok {
			order = append(order, e.alias)
		}
		buckets[e.alias] = append(buckets[e.alias], e)
	}
	sort.Strings(order)

	results := make([][]entry, len(order))
	bucketJoins := make([]int, len(order))
	var tasks []func()
	for i, key := range order {
		group := buckets[key]
		if len(group) < 2 {
			results[i] = group
			continue
		}
		i, group := i, group
		tasks = append(tasks, func() {
			sort.Slice(group, func(a, b int) bool { return group[a].dig.Less(group[b].dig) })
			group, j := reduceGroup(lvl, group, false)
			if opts.MaxGraphs > 0 && len(group) > opts.MaxGraphs {
				// Widening: force-join within the alias bucket, ignoring
				// the node compatibility conditions (JOIN still
				// over-approximates both operands, so this is sound —
				// just lossier).
				var fj int
				group, fj = forceGroup(lvl, group, opts.MaxGraphs)
				j += fj
			}
			results[i], bucketJoins[i] = group, j
		})
	}
	opts.run(tasks)

	joins, total := 0, 0
	for i := range results {
		joins += bucketJoins[i]
		total += len(results[i])
	}
	s.reset(total)
	for _, group := range results {
		for _, e := range group {
			s.addEntry(e)
		}
	}
	return joins
}

// reduceGroup joins compatible graphs within one alias bucket until a
// fixed point. SPATH maps are cached per graph across the pairwise
// compatibility scan.
func reduceGroup(lvl rsg.Level, group []entry, force bool) ([]entry, int) {
	joins := 0
	spCache := make(map[*rsg.Graph]map[rsg.NodeID]rsg.SPathSet, len(group))
	spaths := func(g *rsg.Graph) map[rsg.NodeID]rsg.SPathSet {
		sp, ok := spCache[g]
		if !ok {
			sp = g.SPaths()
			spCache[g] = sp
		}
		return sp
	}
	for {
		joined := false
	scan:
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if !force && !rsg.CompatibleSP(lvl, group[i].g, group[j].g,
					spaths(group[i].g), spaths(group[j].g)) {
					continue
				}
				merged := rsg.Join(lvl, group[i].g, group[j].g)
				rsg.Compress(merged, lvl)
				e := newEntry(merged)
				ng := make([]entry, 0, len(group)-1)
				for k := range group {
					if k != i && k != j {
						ng = append(ng, group[k])
					}
				}
				group = append(ng, e)
				joins++
				joined = true
				break scan
			}
		}
		if !joined {
			return dedupe(group), joins
		}
	}
}

// forceGroup widens a bucket down to the bound.
func forceGroup(lvl rsg.Level, group []entry, max int) ([]entry, int) {
	joins := 0
	for len(group) > max {
		merged := rsg.Join(lvl, group[0].g, group[1].g)
		rsg.Compress(merged, lvl)
		e := newEntry(merged)
		group = append(group[2:], e)
		group = dedupe(group)
		joins++
	}
	return group, joins
}

func dedupe(group []entry) []entry {
	seen := make(map[rsg.Digest]struct{}, len(group))
	out := group[:0]
	for _, e := range group {
		if _, ok := seen[e.dig]; ok {
			continue
		}
		seen[e.dig] = struct{}{}
		out = append(out, e)
	}
	return out
}

// MergeDelta inserts the graphs of other that s does not already hold,
// then incrementally re-reduces: only pairs involving a new (or
// newly-joined) graph are tested for compatibility, because the
// existing members are already pairwise incompatible. Returns whether s
// changed. This is the engine's accumulation primitive: in-states grow
// monotonically, and each growth step costs O(delta x bucket) instead
// of O(bucket^2).
func (s *Set) MergeDelta(lvl rsg.Level, other *Set, opts Options) bool {
	if other == nil {
		return false
	}
	if s.absorbed == nil {
		s.absorbed = make(map[rsg.Digest]struct{}, len(s.entries))
		for _, e := range s.entries {
			s.absorbed[e.dig] = struct{}{}
		}
	}
	var delta []entry
	for _, e := range other.entries {
		if _, seen := s.absorbed[e.dig]; seen {
			continue
		}
		s.absorbed[e.dig] = struct{}{}
		delta = append(delta, e)
	}
	if len(delta) == 0 {
		return false
	}
	if opts.DisableJoin {
		changed := false
		for _, e := range delta {
			if s.addEntry(e) {
				changed = true
			}
		}
		return changed
	}

	changed := false
	// Process the delta per alias bucket: a new entry can only
	// deduplicate against or join with members of its own bucket
	// (digest-equal graphs have equal alias keys, and compatibility
	// requires them), so buckets are independent tasks run through
	// opts.Exec and their outcomes applied in sorted-key order —
	// bit-identical to sequential processing. Merged graphs whose alias
	// key left the bucket (not possible for the current JOIN/COMPRESS,
	// which preserve the alias relation; handled defensively) are
	// re-queued into follow-up sequential rounds.
	queue := delta
	for len(queue) > 0 {
		keyed := make(map[string][]entry)
		var order []string
		for _, e := range queue {
			if _, ok := keyed[e.alias]; !ok {
				order = append(order, e.alias)
			}
			keyed[e.alias] = append(keyed[e.alias], e)
		}
		sort.Strings(order)

		// Snapshot each touched bucket from the current members.
		buckets := make(map[string][]entry, len(order))
		for _, e := range s.entries {
			if _, ok := keyed[e.alias]; ok {
				buckets[e.alias] = append(buckets[e.alias], e)
			}
		}

		results := make([]bucketDelta, len(order))
		tasks := make([]func(), len(order))
		for i, key := range order {
			i, key := i, key
			tasks[i] = func() {
				results[i] = mergeBucket(lvl, key, buckets[key], keyed[key])
			}
		}
		opts.run(tasks)

		queue = queue[:0:0]
		for i, key := range order {
			d := &results[i]
			before := buckets[key]
			inFinal := make(map[rsg.Digest]struct{}, len(d.final))
			for _, e := range d.final {
				inFinal[e.dig] = struct{}{}
			}
			for _, e := range before {
				if _, keep := inFinal[e.dig]; !keep {
					s.removeEntry(e.dig)
					changed = true
				}
			}
			for _, e := range d.final {
				if s.addEntry(e) {
					changed = true
				}
			}
			for _, dig := range d.absorbed {
				s.absorbed[dig] = struct{}{}
			}
			queue = append(queue, d.deferred...)
		}
	}
	if !changed {
		return false
	}
	if opts.MaxGraphs > 0 {
		s.Reduce(lvl, opts) // applies the per-bucket widening bound
	}
	return true
}

// bucketDelta is the outcome of merging one alias bucket's queue.
type bucketDelta struct {
	// final is the bucket's complete membership after the merge round.
	final []entry
	// absorbed lists the digests of intermediate join results, which
	// must be recorded so recurring contributions are not re-joined.
	absorbed []rsg.Digest
	// deferred holds merged entries whose alias key differs from the
	// bucket's (defensive; unreachable for the current operators).
	deferred []entry
}

// mergeBucket folds queue into bucket — the sequential inner loop of
// the RSRSG accumulation — touching no shared state, so buckets can run
// concurrently. Entries already present (by digest) are dropped; an
// entry compatible with a member is joined, compressed, and re-queued;
// anything else becomes a new member.
func mergeBucket(lvl rsg.Level, key string, bucket, queue []entry) bucketDelta {
	var d bucketDelta
	have := make(map[rsg.Digest]struct{}, len(bucket)+len(queue))
	for _, e := range bucket {
		have[e.dig] = struct{}{}
	}
	spCache := make(map[*rsg.Graph]map[rsg.NodeID]rsg.SPathSet, len(bucket)+len(queue))
	spaths := func(g *rsg.Graph) map[rsg.NodeID]rsg.SPathSet {
		sp, ok := spCache[g]
		if !ok {
			sp = g.SPaths()
			spCache[g] = sp
		}
		return sp
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if _, dup := have[e.dig]; dup {
			continue // an identical member already exists
		}
		joined := -1
		for i, old := range bucket {
			if rsg.CompatibleSP(lvl, old.g, e.g, spaths(old.g), spaths(e.g)) {
				joined = i
				break
			}
		}
		if joined < 0 {
			bucket = append(bucket, e)
			have[e.dig] = struct{}{}
			continue
		}
		old := bucket[joined]
		merged := rsg.Join(lvl, old.g, e.g)
		rsg.Compress(merged, lvl)
		me := newEntry(merged)
		if me.dig == old.dig {
			continue // absorbing e did not change the member
		}
		bucket = append(append([]entry{}, bucket[:joined]...), bucket[joined+1:]...)
		delete(have, old.dig)
		d.absorbed = append(d.absorbed, me.dig)
		if me.alias != key {
			d.deferred = append(d.deferred, me)
			continue
		}
		queue = append(queue, me)
	}
	d.final = bucket
	return d
}

// UnionAll returns a new set holding the graphs of all the given sets,
// reduced. Cached digests are reused, so no graph is re-canonicalized.
func UnionAll(lvl rsg.Level, sets []*Set, opts Options) *Set {
	out := New()
	for _, s := range sets {
		if s == nil {
			continue
		}
		for _, e := range s.entries {
			out.addEntry(e)
		}
	}
	out.Reduce(lvl, opts)
	return out
}

// Union returns a new set holding the graphs of both sets, reduced.
func Union(lvl rsg.Level, a, b *Set, opts Options) *Set {
	out := New()
	if a != nil {
		for _, e := range a.entries {
			out.addEntry(e)
		}
	}
	if b != nil {
		for _, e := range b.entries {
			out.addEntry(e)
		}
	}
	out.Reduce(lvl, opts)
	return out
}

// Digest returns the order-independent set-level digest: the XOR of the
// member digests, maintained incrementally. Equal sets have equal
// digests; two different sets of the same size collide only with hash
// probability (~2^-128).
func (s *Set) Digest() rsg.Digest { return s.setDig }

// Signature returns a canonical textual form of the whole set (the hex
// member digests in sorted order); kept for traces and debugging —
// fixed-point detection uses the O(1) Digest/Equal instead.
func (s *Set) Signature() string {
	var b strings.Builder
	b.Grow(len(s.entries) * 33)
	for i, e := range s.entries {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(e.dig.String())
	}
	return b.String()
}

// Equal reports whether two sets hold the same member graphs. Thanks to
// the incrementally-maintained set digest this is O(1): no signature
// strings are rebuilt or compared.
func (s *Set) Equal(o *Set) bool {
	if s == nil || o == nil {
		return s == o
	}
	return len(s.entries) == len(o.entries) && s.setDig == o.setDig
}

// Clone returns a copy of the set sharing the member graphs. Graphs
// inside a Set are frozen, so sharing is safe and avoids the deep
// copies that would otherwise dominate no-op transfers.
func (s *Set) Clone() *Set {
	out := New()
	for _, e := range s.entries {
		out.addEntry(e)
	}
	return out
}

// Filter returns a set holding the member graphs satisfying pred,
// sharing them (and their cached digests) with the receiver.
func (s *Set) Filter(pred func(*rsg.Graph) bool) *Set {
	out := New()
	for _, e := range s.entries {
		if pred(e.g) {
			out.addEntry(e)
		}
	}
	return out
}

// String renders a compact summary.
func (s *Set) String() string {
	var b strings.Builder
	for i, g := range s.Graphs() {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(g.String())
	}
	return b.String()
}
