// Package rsrsg implements the Reduced Set of Reference Shape Graphs
// (Sect. 4 of the paper): the set of RSGs associated with one program
// sentence. The set is "reduced" because graphs that satisfy the
// COMPATIBLE predicate are fused by JOIN, keeping the number of RSGs
// per sentence bounded and the analysis practicable.
package rsrsg

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/rsg"
)

// entry caches the derived keys of one member graph. Graphs inside a
// Set are frozen (rsg.Graph.Freeze) on insertion: any mutation panics,
// so the immutability the analysis relies on is enforced by the type
// system, not convention. Member graphs are interned, so
// structurally-identical graphs share one instance across sets.
type entry struct {
	g     *rsg.Graph
	dig   rsg.Digest
	alias string
}

// newEntry freezes and interns g and caches its derived keys. rec,
// when non-nil, attributes the digest/freeze/intern work to one run
// (Options.Stats): this is the only place outside the store's decoder
// where graphs enter the interner, so threading the recorder through
// here makes per-run cache stats exact under overlapping runs.
func newEntry(g *rsg.Graph, rec *rsg.RunStats) entry {
	g = rsg.InternStats(g, rec)
	return entry{g: g, dig: g.DigestStats(rec), alias: rsg.AliasKey(g)}
}

// joinKey identifies one ordered pair of canonical (interned) graphs at
// one analysis level.
type joinKey struct {
	lvl  rsg.Level
	a, b rsg.Digest
}

// JoinCache memoizes the pure pairwise primitives of bucket reduction —
// CompatibleSP verdicts and JOIN+COMPRESS results — keyed by the
// operands' canonical digests and the analysis level. It is semi-naïve
// engine state: the engine shares one cache across every statement's
// accumulator (NewAccum), because dirty-bucket re-reduction replays
// join chains over raw sets that grew by a handful of digests, and the
// same canonical pairs recur across statements as graphs propagate
// through the CFG. Both primitives are pure functions of their frozen
// operands, so a cached result is bit-identical to recomputation at any
// worker count; the mutex only guards the maps, never the computation,
// and a racing duplicate computation is harmless — both sides intern to
// the same canonical graph. The stateless full path (Reduce, and the
// engine's NoDelta mode) uses a nil cache and recomputes from scratch:
// that asymmetry is exactly the A/B the -nodelta flag measures.
type JoinCache struct {
	mu     sync.Mutex
	compat map[joinKey]bool
	joined map[joinKey]entry
}

// joinCacheCap bounds each of the cache's maps; a map that reaches the
// cap is reset wholesale, like the intern table — entries are
// pure-function results, so eviction only costs recomputation.
const joinCacheCap = 1 << 15

// NewJoinCache returns an empty join cache for sharing across Accums.
func NewJoinCache() *JoinCache {
	return &JoinCache{
		compat: make(map[joinKey]bool),
		joined: make(map[joinKey]entry),
	}
}

// compatible is CompatibleSP through the cache; a nil receiver
// recomputes. Frozen graphs serve their SPATH maps from the freeze-time
// cache, so no per-scan SPATH memo is needed.
func (c *JoinCache) compatible(lvl rsg.Level, a, b entry) bool {
	k := joinKey{lvl: lvl, a: a.dig, b: b.dig}
	if c != nil {
		c.mu.Lock()
		v, ok := c.compat[k]
		c.mu.Unlock()
		if ok {
			return v
		}
	}
	v := rsg.CompatibleSP(lvl, a.g, b.g, a.g.SPaths(), b.g.SPaths())
	if c != nil {
		c.mu.Lock()
		if len(c.compat) >= joinCacheCap {
			c.compat = make(map[joinKey]bool, 64)
		}
		c.compat[k] = v
		c.mu.Unlock()
	}
	return v
}

// join is JOIN+COMPRESS in interned entry form through the cache; a nil
// receiver recomputes. rec attributes a cache miss's intern work to the
// calling run; a cache hit touches no counters (the entry's keys were
// computed when it was first joined).
func (c *JoinCache) join(lvl rsg.Level, a, b entry, rec *rsg.RunStats) entry {
	k := joinKey{lvl: lvl, a: a.dig, b: b.dig}
	if c != nil {
		c.mu.Lock()
		e, ok := c.joined[k]
		c.mu.Unlock()
		if ok {
			return e
		}
	}
	merged := rsg.Join(lvl, a.g, b.g)
	rsg.Compress(merged, lvl)
	e := newEntry(merged, rec)
	if c != nil {
		c.mu.Lock()
		if len(c.joined) >= joinCacheCap {
			c.joined = make(map[joinKey]entry, 64)
		}
		c.joined[k] = e
		c.mu.Unlock()
	}
	return e
}

// Set is one RSRSG: a reduced set of RSGs, deduplicated by canonical
// digest. Entries are kept sorted by digest, so iteration order is
// deterministic without per-call sorting, and the set-level digest is
// maintained incrementally so Equal is O(1).
type Set struct {
	entries []entry // sorted ascending by dig
	// byDig indexes the members; nil on a fresh Clone and rebuilt on
	// first mutation, so read-only copies never pay for the map.
	byDig map[rsg.Digest]struct{}
	// absorbed records every digest ever folded in through MergeDelta,
	// including graphs that were joined away; it prevents re-absorbing
	// (and re-joining) recurring contributions during the fixed point.
	// Lazily initialized by MergeDelta.
	absorbed map[rsg.Digest]struct{}
	// absorbedContribs records whole contribution sets already folded in
	// through MergeDelta, keyed by the same (length, set digest) pair
	// Equal compares. A statement is revisited whenever any predecessor
	// changes, so the out-states of its unchanged predecessors are
	// re-merged verbatim on every visit; this lets MergeDelta dismiss
	// such repeats in O(1) instead of re-scanning every member.
	absorbedContribs map[contribKey]struct{}
	// setDig is the XOR of the member digests: order-independent,
	// updated in O(1) per insertion/removal. Two sets with equal length
	// and equal setDig hold the same members (up to hash collision).
	setDig rsg.Digest
	// numNodes/numLinks are the totals across member graphs, maintained
	// incrementally so the engine's per-visit accounting is O(1).
	numNodes int
	numLinks int
}

// New returns an empty RSRSG.
func New() *Set {
	return &Set{byDig: make(map[rsg.Digest]struct{})}
}

// FromGraphs builds a reduced set from the given graphs at the given
// level: graphs are deduplicated, then compatible graphs are joined.
func FromGraphs(lvl rsg.Level, graphs []*rsg.Graph, opts Options) *Set {
	s := &Set{
		entries: make([]entry, 0, len(graphs)),
		byDig:   make(map[rsg.Digest]struct{}, len(graphs)),
	}
	for _, g := range graphs {
		s.AddStats(g, opts.Stats)
	}
	s.Reduce(lvl, opts)
	return s
}

// Exec runs a batch of independent tasks and returns when all have
// completed. Implementations may run the tasks concurrently (the
// analysis engine supplies a worker-pool executor); a nil Exec runs
// them sequentially in order. Tasks handed to an Exec never share
// mutable state, so any schedule produces the same result.
type Exec func(tasks []func())

// Options tunes the reduction. The zero value is the paper's behaviour.
type Options struct {
	// DisableJoin keeps every distinct RSG instead of joining compatible
	// ones; used by the ablation benchmarks.
	DisableJoin bool
	// MaxGraphs, when positive, force-joins graphs with equal alias
	// relations once the set exceeds the bound (a widening safeguard).
	MaxGraphs int
	// Exec, when non-nil, runs the per-alias-bucket reduction tasks of
	// Reduce and MergeDelta concurrently. Buckets are independent —
	// compatibility requires equal alias keys, digest-equal graphs have
	// equal alias keys, and JOIN/COMPRESS preserve the alias relation
	// (C_SPATH demands equal zero-length paths, so nodes referenced by
	// different pvars never merge) — and results are recombined in
	// sorted bucket-key order, so the outcome is bit-identical to a
	// sequential run.
	Exec Exec
	// Joins, when non-nil, memoizes pairwise CompatibleSP verdicts and
	// JOIN+COMPRESS results across Reduce/MergeDelta/Accum calls (see
	// JoinCache). Both primitives are pure functions of their frozen
	// operands, so supplying a cache never changes results. The
	// semi-naïve engine shares one cache per run; the stateless NoDelta
	// path leaves this nil and recomputes.
	Joins *JoinCache
	// Stats, when non-nil, receives per-run attribution of the rsg
	// digest/freeze/intern work done on this run's behalf. The rsg
	// counters are process-global; the recorder is what lets a process
	// running several analyses at once (the daemon) report exact
	// per-run cache stats. Recording never changes results.
	Stats *rsg.RunStats
}

// run executes tasks through opts.Exec, falling back to a sequential
// loop when no executor is configured or the batch is trivial.
func (o Options) run(tasks []func()) {
	if o.Exec == nil || len(tasks) < 2 {
		for _, t := range tasks {
			t()
		}
		return
	}
	o.Exec(tasks)
}

// Add freezes g and inserts it if no digest-identical graph is present.
func (s *Set) Add(g *rsg.Graph) bool {
	return s.AddStats(g, nil)
}

// AddStats is Add with the freeze/intern work attributed to rec
// (typically Options.Stats); a nil rec is identical to Add.
func (s *Set) AddStats(g *rsg.Graph, rec *rsg.RunStats) bool {
	return s.addEntry(newEntry(g, rec))
}

// ensureByDig materializes the member index after a lazy Clone.
func (s *Set) ensureByDig() {
	if s.byDig == nil {
		s.byDig = make(map[rsg.Digest]struct{}, len(s.entries))
		for _, e := range s.entries {
			s.byDig[e.dig] = struct{}{}
		}
	}
}

// addEntry inserts e at its sorted position unless a digest-identical
// member exists, keeping byDig and the set digest in sync.
func (s *Set) addEntry(e entry) bool {
	s.ensureByDig()
	if _, dup := s.byDig[e.dig]; dup {
		return false
	}
	s.byDig[e.dig] = struct{}{}
	i := sort.Search(len(s.entries), func(i int) bool { return !s.entries[i].dig.Less(e.dig) })
	s.entries = append(s.entries, entry{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	xorDigest(&s.setDig, e.dig)
	s.numNodes += e.g.NumNodes()
	s.numLinks += e.g.NumLinks()
	return true
}

// removeEntry deletes the member with the given digest, if present.
func (s *Set) removeEntry(dig rsg.Digest) bool {
	s.ensureByDig()
	if _, ok := s.byDig[dig]; !ok {
		return false
	}
	delete(s.byDig, dig)
	i := sort.Search(len(s.entries), func(i int) bool { return !s.entries[i].dig.Less(dig) })
	e := s.entries[i]
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	xorDigest(&s.setDig, dig)
	s.numNodes -= e.g.NumNodes()
	s.numLinks -= e.g.NumLinks()
	return true
}

// Remove deletes the member with the given digest, if present. Used by
// the engine's incremental filter caches (Assume* delta variants).
func (s *Set) Remove(dig rsg.Digest) bool { return s.removeEntry(dig) }

// reset clears the member state (absorbed history is kept).
func (s *Set) reset(capacity int) {
	s.entries = s.entries[:0]
	s.byDig = make(map[rsg.Digest]struct{}, capacity)
	s.setDig = rsg.Digest{}
	s.numNodes, s.numLinks = 0, 0
}

func xorDigest(dst *rsg.Digest, d rsg.Digest) {
	for i := range dst {
		dst[i] ^= d[i]
	}
}

// ForEachEntry calls f with every member graph and its cached canonical
// digest, in deterministic (digest) order. Entries are kept sorted on
// insertion, so this is a plain scan.
func (s *Set) ForEachEntry(f func(g *rsg.Graph, dig rsg.Digest)) {
	for _, e := range s.entries {
		f(e.g, e.dig)
	}
}

// Graphs returns the member RSGs in deterministic (digest) order.
func (s *Set) Graphs() []*rsg.Graph {
	out := make([]*rsg.Graph, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.g
	}
	return out
}

// Len returns the number of RSGs in the set.
func (s *Set) Len() int { return len(s.entries) }

// NumNodes returns the total node count across all member graphs. The
// counter is maintained on insertion/removal, so this is O(1).
func (s *Set) NumNodes() int { return s.numNodes }

// NumLinks returns the total NL entry count across all member graphs,
// maintained incrementally like NumNodes.
func (s *Set) NumLinks() int { return s.numLinks }

// Reduce joins compatible member graphs until no two members are
// compatible (the "union of RSGs" of Sect. 4.3), compressing each join
// result. Only graphs with equal alias relations can be compatible, so
// the search works per alias bucket; buckets are independent and run
// through opts.Exec (concurrently when the engine provides a pool),
// with the results recombined in sorted bucket-key order so the final
// set is identical regardless of schedule. Returns the number of joins.
func (s *Set) Reduce(lvl rsg.Level, opts Options) int {
	if opts.DisableJoin || len(s.entries) < 2 {
		return 0
	}

	buckets := make(map[string][]entry)
	var order []string
	for _, e := range s.entries {
		if _, ok := buckets[e.alias]; !ok {
			order = append(order, e.alias)
		}
		buckets[e.alias] = append(buckets[e.alias], e)
	}
	sort.Strings(order)

	results := make([][]entry, len(order))
	bucketJoins := make([]int, len(order))
	var tasks []func()
	for i, key := range order {
		group := buckets[key]
		if len(group) < 2 {
			results[i] = group
			continue
		}
		i, group := i, group
		tasks = append(tasks, func() {
			sort.Slice(group, func(a, b int) bool { return group[a].dig.Less(group[b].dig) })
			group, j := reduceGroup(lvl, group, false, opts.Joins, opts.Stats)
			if opts.MaxGraphs > 0 && len(group) > opts.MaxGraphs {
				// Widening: force-join within the alias bucket, ignoring
				// the node compatibility conditions (JOIN still
				// over-approximates both operands, so this is sound —
				// just lossier).
				var fj int
				group, fj = forceGroup(lvl, group, opts.MaxGraphs, opts.Joins, opts.Stats)
				j += fj
			}
			results[i], bucketJoins[i] = group, j
		})
	}
	opts.run(tasks)

	joins, total := 0, 0
	for i := range results {
		joins += bucketJoins[i]
		total += len(results[i])
	}
	s.reset(total)
	for _, group := range results {
		for _, e := range group {
			s.addEntry(e)
		}
	}
	return joins
}

// reduceGroup joins compatible graphs within one alias bucket until a
// fixed point. Member graphs are frozen, so SPATH maps come from the
// freeze-time cache. jc, when non-nil, memoizes the pairwise
// compatibility verdicts and join results across calls (the Accum's
// dirty-bucket replays); nil recomputes everything.
func reduceGroup(lvl rsg.Level, group []entry, force bool, jc *JoinCache, rec *rsg.RunStats) ([]entry, int) {
	joins := 0
	for {
		joined := false
	scan:
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if !force && !jc.compatible(lvl, group[i], group[j]) {
					continue
				}
				e := jc.join(lvl, group[i], group[j], rec)
				ng := make([]entry, 0, len(group)-1)
				for k := range group {
					if k != i && k != j {
						ng = append(ng, group[k])
					}
				}
				group = append(ng, e)
				joins++
				joined = true
				break scan
			}
		}
		if !joined {
			return dedupe(group), joins
		}
	}
}

// forceGroup widens a bucket down to the bound.
func forceGroup(lvl rsg.Level, group []entry, max int, jc *JoinCache, rec *rsg.RunStats) ([]entry, int) {
	joins := 0
	for len(group) > max {
		e := jc.join(lvl, group[0], group[1], rec)
		group = append(group[2:], e)
		group = dedupe(group)
		joins++
	}
	return group, joins
}

func dedupe(group []entry) []entry {
	seen := make(map[rsg.Digest]struct{}, len(group))
	out := group[:0]
	for _, e := range group {
		if _, ok := seen[e.dig]; ok {
			continue
		}
		seen[e.dig] = struct{}{}
		out = append(out, e)
	}
	return out
}

// Delta is the net membership change reported by one MergeDelta call:
// Added holds the graphs that are members now but were not before the
// call, Removed the digests of former members that were joined away,
// and Keys the alias-bucket keys whose membership changed (sorted). Changed
// reports whether any membership churn happened at all — it can be true
// with an empty net delta when an addition and a removal cancel out.
// The engine's semi-naïve transfer consumes the delta: only Added
// graphs are stepped through the abstract semantics, and only the parts
// of Removed members are retracted from the cached out-state.
type Delta struct {
	Changed bool
	Added   []*rsg.Graph
	Removed []rsg.Digest
	Keys    []string
}

// Merge folds a later call's delta into d, netting additions against
// removals, so d always describes the membership change relative to the
// state before the first merged call (the engine accumulates one Delta
// per statement visit across all predecessor contributions).
func (d *Delta) Merge(o Delta) {
	d.Changed = d.Changed || o.Changed
	d.Keys = mergeKeys(d.Keys, o.Keys)
	if len(o.Added) == 0 && len(o.Removed) == 0 {
		return
	}
	track := newDeltaTracker()
	for _, g := range d.Added {
		track.added[g.Digest()] = g
	}
	for _, dig := range d.Removed {
		track.removed[dig] = struct{}{}
	}
	// A member removed now was either added earlier this visit (the two
	// cancel) or predates the visit (net removal); symmetrically, a
	// member added now may restore one removed earlier.
	for _, dig := range o.Removed {
		if _, ok := track.added[dig]; ok {
			delete(track.added, dig)
		} else {
			track.removed[dig] = struct{}{}
		}
	}
	for _, g := range o.Added {
		dig := g.Digest()
		if _, ok := track.removed[dig]; ok {
			delete(track.removed, dig)
		} else {
			track.added[dig] = g
		}
	}
	keys := d.Keys
	*d = track.delta(d.Changed)
	d.Keys = keys
}

// mergeKeys unions two sorted key slices, keeping the result sorted.
func mergeKeys(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]string(nil), b...)
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// deltaTracker nets per-call membership churn into a Delta.
type deltaTracker struct {
	added   map[rsg.Digest]*rsg.Graph
	removed map[rsg.Digest]struct{}
	keys    map[string]struct{}
}

func newDeltaTracker() *deltaTracker {
	return &deltaTracker{
		added:   make(map[rsg.Digest]*rsg.Graph),
		removed: make(map[rsg.Digest]struct{}),
		keys:    make(map[string]struct{}),
	}
}

func (t *deltaTracker) add(e entry) {
	t.keys[e.alias] = struct{}{}
	if _, ok := t.removed[e.dig]; ok {
		delete(t.removed, e.dig)
		return
	}
	t.added[e.dig] = e.g
}

func (t *deltaTracker) remove(e entry) {
	t.keys[e.alias] = struct{}{}
	if _, ok := t.added[e.dig]; ok {
		delete(t.added, e.dig)
		return
	}
	t.removed[e.dig] = struct{}{}
}

// delta renders the net change with deterministic (digest/key) order.
func (t *deltaTracker) delta(changed bool) Delta {
	d := Delta{Changed: changed}
	if len(t.added) > 0 {
		d.Added = make([]*rsg.Graph, 0, len(t.added))
		for _, g := range t.added {
			d.Added = append(d.Added, g)
		}
		sort.Slice(d.Added, func(i, j int) bool { return d.Added[i].Digest().Less(d.Added[j].Digest()) })
	}
	if len(t.removed) > 0 {
		d.Removed = make([]rsg.Digest, 0, len(t.removed))
		for dig := range t.removed {
			d.Removed = append(d.Removed, dig)
		}
		sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i].Less(d.Removed[j]) })
	}
	if len(t.keys) > 0 {
		d.Keys = make([]string, 0, len(t.keys))
		for k := range t.keys {
			d.Keys = append(d.Keys, k)
		}
		sort.Strings(d.Keys)
	}
	return d
}

// MergeDelta inserts the graphs of other that s does not already hold,
// then incrementally re-reduces: only pairs involving a new (or
// newly-joined) graph are tested for compatibility, because the
// existing members are already pairwise incompatible. The widening
// bound (Options.MaxGraphs) is enforced per touched bucket — untouched
// buckets cannot have grown. Returns the net membership Delta. This is
// the engine's accumulation primitive: in-states grow monotonically,
// each growth step costs O(delta x bucket) instead of O(bucket^2), and
// the returned delta feeds the semi-naïve transfer.
func (s *Set) MergeDelta(lvl rsg.Level, other *Set, opts Options) Delta {
	delta := s.absorbContrib(other, nil)
	if len(delta) == 0 {
		return Delta{}
	}
	return s.mergeEntries(lvl, delta, opts)
}

// MergeDeltaBatch merges a sequence of contributions in one reduction
// round: the genuinely-new entries of every contribution (in order)
// form a single delta queue, so the per-round fixed costs — bucket
// snapshots, task dispatch, delta netting — are paid once per batch
// instead of once per contribution. The admissions and joins happen in
// the same order as sequential MergeDelta calls would perform them;
// the only divergence is widening timing (the MaxGraphs force-join
// bound is enforced once per touched bucket per batch rather than
// after every contribution), which can leave a mid-batch bucket
// transiently above the bound and join it differently — rarer, never
// unsound, and deterministic. Returns the net membership Delta across
// the whole batch.
func (s *Set) MergeDeltaBatch(lvl rsg.Level, contribs []*Set, opts Options) Delta {
	var delta []entry
	for _, other := range contribs {
		delta = s.absorbContrib(other, delta)
	}
	if len(delta) == 0 {
		return Delta{}
	}
	return s.mergeEntries(lvl, delta, opts)
}

// absorbContrib folds one contribution into the absorbed history and
// appends its genuinely-new entries to delta. A contribution whose
// (length, set digest) pair was fully absorbed before is dismissed in
// O(1).
func (s *Set) absorbContrib(other *Set, delta []entry) []entry {
	if other == nil || len(other.entries) == 0 {
		return delta
	}
	ck := contribKey{n: len(other.entries), dig: other.setDig}
	if _, done := s.absorbedContribs[ck]; done {
		return delta
	}
	if s.absorbed == nil {
		s.absorbed = make(map[rsg.Digest]struct{}, len(s.entries))
		for _, e := range s.entries {
			s.absorbed[e.dig] = struct{}{}
		}
	}
	for _, e := range other.entries {
		if _, seen := s.absorbed[e.dig]; seen {
			continue
		}
		s.absorbed[e.dig] = struct{}{}
		delta = append(delta, e)
	}
	// Every member of other is now in the absorbed history, so merging
	// an identical contribution again cannot produce a delta; remember
	// the whole set so the repeat is dismissed before the scan above.
	if s.absorbedContribs == nil {
		s.absorbedContribs = make(map[contribKey]struct{}, 8)
	}
	s.absorbedContribs[ck] = struct{}{}
	return delta
}

// mergeEntries admits a collected delta queue and incrementally
// re-reduces the touched alias buckets (the shared tail of MergeDelta
// and MergeDeltaBatch).
func (s *Set) mergeEntries(lvl rsg.Level, delta []entry, opts Options) Delta {
	track := newDeltaTracker()
	if opts.DisableJoin {
		changed := false
		for _, e := range delta {
			if s.addEntry(e) {
				changed = true
				track.add(e)
			}
		}
		return track.delta(changed)
	}

	changed := false
	// Process the delta per alias bucket: a new entry can only
	// deduplicate against or join with members of its own bucket
	// (digest-equal graphs have equal alias keys, and compatibility
	// requires them), so buckets are independent tasks run through
	// opts.Exec and their outcomes applied in sorted-key order —
	// bit-identical to sequential processing. Merged graphs whose alias
	// key left the bucket (not possible for the current JOIN/COMPRESS,
	// which preserve the alias relation; handled defensively) are
	// re-queued into follow-up sequential rounds.
	queue := delta
	for len(queue) > 0 {
		keyed := make(map[string][]entry)
		var order []string
		for _, e := range queue {
			if _, ok := keyed[e.alias]; !ok {
				order = append(order, e.alias)
			}
			keyed[e.alias] = append(keyed[e.alias], e)
		}
		sort.Strings(order)

		// Snapshot each touched bucket from the current members.
		buckets := make(map[string][]entry, len(order))
		for _, e := range s.entries {
			if _, ok := keyed[e.alias]; ok {
				buckets[e.alias] = append(buckets[e.alias], e)
			}
		}

		results := make([]bucketDelta, len(order))
		tasks := make([]func(), len(order))
		for i, key := range order {
			i, key := i, key
			tasks[i] = func() {
				bd := mergeBucket(lvl, key, buckets[key], keyed[key], opts.Joins, opts.Stats)
				if opts.MaxGraphs > 0 && len(bd.final) > opts.MaxGraphs {
					// Widening: mergeBucket keeps the bucket pairwise
					// incompatible, so the reduceGroup pass the former
					// whole-set Reduce ran here is a provable no-op; only
					// the force-join bound needs enforcing, and only on
					// touched buckets (untouched ones cannot have grown).
					sort.Slice(bd.final, func(a, b int) bool { return bd.final[a].dig.Less(bd.final[b].dig) })
					bd.final, _ = forceGroup(lvl, bd.final, opts.MaxGraphs, opts.Joins, opts.Stats)
				}
				results[i] = bd
			}
		}
		opts.run(tasks)

		queue = queue[:0:0]
		for i, key := range order {
			bd := &results[i]
			before := buckets[key]
			inFinal := make(map[rsg.Digest]struct{}, len(bd.final))
			for _, e := range bd.final {
				inFinal[e.dig] = struct{}{}
			}
			for _, e := range before {
				if _, keep := inFinal[e.dig]; !keep {
					s.removeEntry(e.dig)
					changed = true
					track.remove(e)
				}
			}
			for _, e := range bd.final {
				if s.addEntry(e) {
					changed = true
					track.add(e)
				}
			}
			for _, dig := range bd.absorbed {
				s.absorbed[dig] = struct{}{}
			}
			queue = append(queue, bd.deferred...)
		}
	}
	return track.delta(changed)
}

// bucketDelta is the outcome of merging one alias bucket's queue.
// contribKey identifies a fully-absorbed contribution set by the same
// O(1) (length, set digest) pair Equal compares.
type contribKey struct {
	n   int
	dig rsg.Digest
}

type bucketDelta struct {
	// final is the bucket's complete membership after the merge round.
	final []entry
	// absorbed lists the digests of intermediate join results, which
	// must be recorded so recurring contributions are not re-joined.
	absorbed []rsg.Digest
	// deferred holds merged entries whose alias key differs from the
	// bucket's (defensive; unreachable for the current operators).
	deferred []entry
}

// mergeBucket folds queue into bucket — the sequential inner loop of
// the RSRSG accumulation — touching no shared state except the
// internally-synchronized join cache, so buckets can run concurrently.
// Entries already present (by digest) are dropped; an entry compatible
// with a member is joined, compressed, and re-queued; anything else
// becomes a new member. Out-states propagate along the CFG, so the same
// canonical pairs are tested and joined at successive statements — with
// a shared jc those recurrences are map hits.
func mergeBucket(lvl rsg.Level, key string, bucket, queue []entry, jc *JoinCache, rec *rsg.RunStats) bucketDelta {
	var d bucketDelta
	have := make(map[rsg.Digest]struct{}, len(bucket)+len(queue))
	for _, e := range bucket {
		have[e.dig] = struct{}{}
	}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if _, dup := have[e.dig]; dup {
			continue // an identical member already exists
		}
		joined := -1
		for i, old := range bucket {
			if jc.compatible(lvl, old, e) {
				joined = i
				break
			}
		}
		if joined < 0 {
			bucket = append(bucket, e)
			have[e.dig] = struct{}{}
			continue
		}
		old := bucket[joined]
		me := jc.join(lvl, old, e, rec)
		if me.dig == old.dig {
			continue // absorbing e did not change the member
		}
		bucket = append(append([]entry{}, bucket[:joined]...), bucket[joined+1:]...)
		delete(have, old.dig)
		d.absorbed = append(d.absorbed, me.dig)
		if me.alias != key {
			d.deferred = append(d.deferred, me)
			continue
		}
		queue = append(queue, me)
	}
	d.final = bucket
	return d
}

// UnionAll returns a new set holding the graphs of all the given sets,
// reduced. Cached digests are reused, so no graph is re-canonicalized.
func UnionAll(lvl rsg.Level, sets []*Set, opts Options) *Set {
	total := 0
	for _, s := range sets {
		if s != nil {
			total += len(s.entries)
		}
	}
	out := &Set{
		entries: make([]entry, 0, total),
		byDig:   make(map[rsg.Digest]struct{}, total),
	}
	for _, s := range sets {
		if s == nil {
			continue
		}
		for _, e := range s.entries {
			out.addEntry(e)
		}
	}
	out.Reduce(lvl, opts)
	return out
}

// Union returns a new set holding the graphs of both sets, reduced.
func Union(lvl rsg.Level, a, b *Set, opts Options) *Set {
	out := New()
	if a != nil {
		for _, e := range a.entries {
			out.addEntry(e)
		}
	}
	if b != nil {
		for _, e := range b.entries {
			out.addEntry(e)
		}
	}
	out.Reduce(lvl, opts)
	return out
}

// Digest returns the order-independent set-level digest: the XOR of the
// member digests, maintained incrementally. Equal sets have equal
// digests; two different sets of the same size collide only with hash
// probability (~2^-128).
func (s *Set) Digest() rsg.Digest { return s.setDig }

// Signature returns a canonical textual form of the whole set (the hex
// member digests in sorted order); kept for traces and debugging —
// fixed-point detection uses the O(1) Digest/Equal instead.
func (s *Set) Signature() string {
	var b strings.Builder
	b.Grow(len(s.entries) * 33)
	for i, e := range s.entries {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(e.dig.String())
	}
	return b.String()
}

// Equal reports whether two sets hold the same member graphs. Thanks to
// the incrementally-maintained set digest this is O(1): no signature
// strings are rebuilt or compared.
func (s *Set) Equal(o *Set) bool {
	if s == nil || o == nil {
		return s == o
	}
	return len(s.entries) == len(o.entries) && s.setDig == o.setDig
}

// Clone returns a copy of the set sharing the member graphs. Graphs
// inside a Set are frozen, so sharing is safe and avoids the deep
// copies that would otherwise dominate no-op transfers. The entries are
// already sorted and deduplicated, so the copy is one slice copy; the
// byDig index is rebuilt lazily on first mutation, which most clones
// (per-visit out-state snapshots) never perform.
func (s *Set) Clone() *Set {
	return &Set{
		entries:  append([]entry(nil), s.entries...),
		setDig:   s.setDig,
		numNodes: s.numNodes,
		numLinks: s.numLinks,
	}
}

// Filter returns a set holding the member graphs satisfying pred,
// sharing them (and their cached digests) with the receiver.
func (s *Set) Filter(pred func(*rsg.Graph) bool) *Set {
	out := &Set{
		entries: make([]entry, 0, len(s.entries)),
		byDig:   make(map[rsg.Digest]struct{}, len(s.entries)),
	}
	for _, e := range s.entries {
		if pred(e.g) {
			out.addEntry(e)
		}
	}
	return out
}

// String renders a compact summary.
func (s *Set) String() string {
	var b strings.Builder
	for i, g := range s.Graphs() {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(g.String())
	}
	return b.String()
}
