// Package rsrsg implements the Reduced Set of Reference Shape Graphs
// (Sect. 4 of the paper): the set of RSGs associated with one program
// sentence. The set is "reduced" because graphs that satisfy the
// COMPATIBLE predicate are fused by JOIN, keeping the number of RSGs
// per sentence bounded and the analysis practicable.
package rsrsg

import (
	"sort"
	"strings"

	"repro/internal/rsg"
)

// entry caches the derived keys of one member graph. Graphs inside a
// Set are treated as immutable; every mutation path in the analysis
// clones first.
type entry struct {
	g     *rsg.Graph
	sig   string
	alias string
}

// Set is one RSRSG: a reduced set of RSGs, deduplicated by canonical
// signature.
type Set struct {
	entries []entry
	bySig   map[string]struct{}
	// absorbed records every signature ever folded in through
	// MergeDelta, including graphs that were joined away; it prevents
	// re-absorbing (and re-joining) recurring contributions during the
	// fixed point. Lazily initialized by MergeDelta.
	absorbed map[string]struct{}
}

// New returns an empty RSRSG.
func New() *Set {
	return &Set{bySig: make(map[string]struct{})}
}

// FromGraphs builds a reduced set from the given graphs at the given
// level: graphs are deduplicated, then compatible graphs are joined.
func FromGraphs(lvl rsg.Level, graphs []*rsg.Graph, opts Options) *Set {
	s := New()
	for _, g := range graphs {
		s.Add(g)
	}
	s.Reduce(lvl, opts)
	return s
}

// Options tunes the reduction. The zero value is the paper's behaviour.
type Options struct {
	// DisableJoin keeps every distinct RSG instead of joining compatible
	// ones; used by the ablation benchmarks.
	DisableJoin bool
	// MaxGraphs, when positive, force-joins graphs with equal alias
	// relations once the set exceeds the bound (a widening safeguard).
	MaxGraphs int
}

// Add inserts a graph if no signature-identical graph is present.
func (s *Set) Add(g *rsg.Graph) bool {
	sig := rsg.Signature(g)
	if _, ok := s.bySig[sig]; ok {
		return false
	}
	s.bySig[sig] = struct{}{}
	s.entries = append(s.entries, entry{g: g, sig: sig, alias: rsg.AliasKey(g)})
	return true
}

// ForEachEntry calls f with every member graph and its cached canonical
// signature, in deterministic (signature) order.
func (s *Set) ForEachEntry(f func(g *rsg.Graph, sig string)) {
	idx := make([]int, len(s.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.entries[idx[a]].sig < s.entries[idx[b]].sig })
	for _, j := range idx {
		f(s.entries[j].g, s.entries[j].sig)
	}
}

// Graphs returns the member RSGs in deterministic (signature) order.
func (s *Set) Graphs() []*rsg.Graph {
	idx := make([]int, len(s.entries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.entries[idx[a]].sig < s.entries[idx[b]].sig })
	out := make([]*rsg.Graph, len(idx))
	for i, j := range idx {
		out[i] = s.entries[j].g
	}
	return out
}

// Len returns the number of RSGs in the set.
func (s *Set) Len() int { return len(s.entries) }

// NumNodes returns the total node count across all member graphs.
func (s *Set) NumNodes() int {
	n := 0
	for _, e := range s.entries {
		n += e.g.NumNodes()
	}
	return n
}

// NumLinks returns the total NL entry count across all member graphs.
func (s *Set) NumLinks() int {
	n := 0
	for _, e := range s.entries {
		n += e.g.NumLinks()
	}
	return n
}

// Reduce joins compatible member graphs until no two members are
// compatible (the "union of RSGs" of Sect. 4.3), compressing each join
// result. Only graphs with equal alias relations can be compatible, so
// the search works per alias bucket. Returns the number of joins.
func (s *Set) Reduce(lvl rsg.Level, opts Options) int {
	if opts.DisableJoin || len(s.entries) < 2 {
		return 0
	}
	joins := 0

	buckets := make(map[string][]entry)
	var order []string
	for _, e := range s.entries {
		if _, ok := buckets[e.alias]; !ok {
			order = append(order, e.alias)
		}
		buckets[e.alias] = append(buckets[e.alias], e)
	}
	sort.Strings(order)

	var result []entry
	for _, key := range order {
		group := buckets[key]
		sort.Slice(group, func(i, j int) bool { return group[i].sig < group[j].sig })
		group, j := reduceGroup(lvl, group, false)
		joins += j
		if opts.MaxGraphs > 0 && len(group) > opts.MaxGraphs {
			// Widening: force-join within the alias bucket, ignoring the
			// node compatibility conditions (JOIN still over-approximates
			// both operands, so this is sound — just lossier).
			group, j = forceGroup(lvl, group, opts.MaxGraphs)
			joins += j
		}
		result = append(result, group...)
	}

	s.entries = nil
	s.bySig = make(map[string]struct{}, len(result))
	for _, e := range result {
		if _, ok := s.bySig[e.sig]; ok {
			continue
		}
		s.bySig[e.sig] = struct{}{}
		s.entries = append(s.entries, e)
	}
	return joins
}

// reduceGroup joins compatible graphs within one alias bucket until a
// fixed point. SPATH maps are cached per graph across the pairwise
// compatibility scan.
func reduceGroup(lvl rsg.Level, group []entry, force bool) ([]entry, int) {
	joins := 0
	spCache := make(map[*rsg.Graph]map[rsg.NodeID]rsg.SPathSet, len(group))
	spaths := func(g *rsg.Graph) map[rsg.NodeID]rsg.SPathSet {
		sp, ok := spCache[g]
		if !ok {
			sp = g.SPaths()
			spCache[g] = sp
		}
		return sp
	}
	for {
		joined := false
	scan:
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if !force && !rsg.CompatibleSP(lvl, group[i].g, group[j].g,
					spaths(group[i].g), spaths(group[j].g)) {
					continue
				}
				merged := rsg.Join(lvl, group[i].g, group[j].g)
				rsg.Compress(merged, lvl)
				e := entry{g: merged, sig: rsg.Signature(merged), alias: rsg.AliasKey(merged)}
				ng := make([]entry, 0, len(group)-1)
				for k := range group {
					if k != i && k != j {
						ng = append(ng, group[k])
					}
				}
				group = append(ng, e)
				joins++
				joined = true
				break scan
			}
		}
		if !joined {
			return dedupe(group), joins
		}
	}
}

// forceGroup widens a bucket down to the bound.
func forceGroup(lvl rsg.Level, group []entry, max int) ([]entry, int) {
	joins := 0
	for len(group) > max {
		merged := rsg.Join(lvl, group[0].g, group[1].g)
		rsg.Compress(merged, lvl)
		e := entry{g: merged, sig: rsg.Signature(merged), alias: rsg.AliasKey(merged)}
		group = append(group[2:], e)
		group = dedupe(group)
		joins++
	}
	return group, joins
}

func dedupe(group []entry) []entry {
	seen := make(map[string]struct{}, len(group))
	out := group[:0]
	for _, e := range group {
		if _, ok := seen[e.sig]; ok {
			continue
		}
		seen[e.sig] = struct{}{}
		out = append(out, e)
	}
	return out
}

// MergeDelta inserts the graphs of other that s does not already hold,
// then incrementally re-reduces: only pairs involving a new (or
// newly-joined) graph are tested for compatibility, because the
// existing members are already pairwise incompatible. Returns whether s
// changed. This is the engine's accumulation primitive: in-states grow
// monotonically, and each growth step costs O(delta x bucket) instead
// of O(bucket^2).
func (s *Set) MergeDelta(lvl rsg.Level, other *Set, opts Options) bool {
	if other == nil {
		return false
	}
	if s.absorbed == nil {
		s.absorbed = make(map[string]struct{})
		for _, e := range s.entries {
			s.absorbed[e.sig] = struct{}{}
		}
	}
	var delta []entry
	for _, e := range other.entries {
		if _, seen := s.absorbed[e.sig]; seen {
			continue
		}
		s.absorbed[e.sig] = struct{}{}
		delta = append(delta, e)
	}
	if len(delta) == 0 {
		return false
	}
	if opts.DisableJoin {
		changed := false
		for _, e := range delta {
			if _, dup := s.bySig[e.sig]; !dup {
				s.bySig[e.sig] = struct{}{}
				s.entries = append(s.entries, e)
				changed = true
			}
		}
		return changed
	}

	// Bucket the existing entries by alias key.
	buckets := make(map[string][]entry)
	for _, e := range s.entries {
		buckets[e.alias] = append(buckets[e.alias], e)
	}
	spCache := make(map[*rsg.Graph]map[rsg.NodeID]rsg.SPathSet)
	spaths := func(g *rsg.Graph) map[rsg.NodeID]rsg.SPathSet {
		sp, ok := spCache[g]
		if !ok {
			sp = g.SPaths()
			spCache[g] = sp
		}
		return sp
	}

	changed := false
	// Process each new entry against its bucket; joins re-enter the
	// queue as new entries.
	queue := delta
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if _, dup := s.bySig[e.sig]; dup {
			continue // an identical member already exists
		}
		bucket := buckets[e.alias]
		joined := -1
		for i, old := range bucket {
			if rsg.CompatibleSP(lvl, old.g, e.g, spaths(old.g), spaths(e.g)) {
				joined = i
				break
			}
		}
		if joined < 0 {
			buckets[e.alias] = append(bucket, e)
			s.bySig[e.sig] = struct{}{}
			changed = true
			continue
		}
		old := bucket[joined]
		merged := rsg.Join(lvl, old.g, e.g)
		rsg.Compress(merged, lvl)
		msig := rsg.Signature(merged)
		if msig == old.sig {
			continue // absorbing e did not change the member
		}
		// Remove the old member and queue the merged graph.
		buckets[e.alias] = append(append([]entry{}, bucket[:joined]...), bucket[joined+1:]...)
		delete(s.bySig, old.sig)
		s.absorbed[msig] = struct{}{}
		changed = true
		queue = append(queue, entry{g: merged, sig: msig, alias: rsg.AliasKey(merged)})
	}
	if !changed {
		return false
	}

	// Rebuild the entry list from the buckets (bySig is already live).
	s.entries = s.entries[:0]
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seen := make(map[string]struct{}, len(s.bySig))
	for _, k := range keys {
		for _, e := range buckets[k] {
			if _, dup := seen[e.sig]; dup {
				continue
			}
			seen[e.sig] = struct{}{}
			s.entries = append(s.entries, e)
		}
	}
	if opts.MaxGraphs > 0 {
		s.Reduce(lvl, opts) // applies the per-bucket widening bound
	}
	return true
}

// UnionAll returns a new set holding the graphs of all the given sets,
// reduced. Cached signatures are reused, so no graph is re-canonicalized.
func UnionAll(lvl rsg.Level, sets []*Set, opts Options) *Set {
	out := New()
	for _, s := range sets {
		if s == nil {
			continue
		}
		for _, e := range s.entries {
			out.addEntry(e)
		}
	}
	out.Reduce(lvl, opts)
	return out
}

// Union returns a new set holding the graphs of both sets, reduced.
func Union(lvl rsg.Level, a, b *Set, opts Options) *Set {
	out := New()
	if a != nil {
		for _, e := range a.entries {
			out.addEntry(e)
		}
	}
	if b != nil {
		for _, e := range b.entries {
			out.addEntry(e)
		}
	}
	out.Reduce(lvl, opts)
	return out
}

func (s *Set) addEntry(e entry) {
	if _, ok := s.bySig[e.sig]; ok {
		return
	}
	s.bySig[e.sig] = struct{}{}
	s.entries = append(s.entries, e)
}

// Signature returns a canonical signature of the whole set, used for
// fixed-point detection.
func (s *Set) Signature() string {
	sigs := make([]string, 0, len(s.entries))
	for _, e := range s.entries {
		sigs = append(sigs, e.sig)
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "\x00")
}

// Equal reports whether two sets have identical canonical signatures.
func (s *Set) Equal(o *Set) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.entries) != len(o.entries) {
		return false
	}
	return s.Signature() == o.Signature()
}

// Clone returns a copy of the set sharing the member graphs. Graphs
// inside a Set are immutable by convention — every analysis path clones
// a graph before mutating it — so sharing is safe and avoids the deep
// copies that would otherwise dominate no-op transfers.
func (s *Set) Clone() *Set {
	out := New()
	for _, e := range s.entries {
		out.addEntry(e)
	}
	return out
}

// Filter returns a set holding the member graphs satisfying pred,
// sharing them (and their cached signatures) with the receiver.
func (s *Set) Filter(pred func(*rsg.Graph) bool) *Set {
	out := New()
	for _, e := range s.entries {
		if pred(e.g) {
			out.addEntry(e)
		}
	}
	return out
}

// String renders a compact summary.
func (s *Set) String() string {
	var b strings.Builder
	for i, g := range s.Graphs() {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(g.String())
	}
	return b.String()
}
