package rsrsg

import (
	"testing"

	"repro/internal/rsg"
)

// mkGraph builds a one-node graph with the pvar bindings given.
func mkGraph(typ string, pvars ...string) *rsg.Graph {
	g := rsg.NewGraph()
	n := rsg.NewNode(typ)
	n.Singleton = true
	g.AddNode(n)
	for _, p := range pvars {
		g.SetPvar(p, n.ID)
	}
	return g
}

func TestAddDeduplicates(t *testing.T) {
	s := New()
	if !s.Add(mkGraph("t", "x")) {
		t.Fatal("first add rejected")
	}
	if s.Add(mkGraph("t", "x")) {
		t.Fatal("identical graph not deduplicated")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Add(mkGraph("t", "y")) {
		t.Fatal("distinct graph rejected")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestReduceJoinsCompatible(t *testing.T) {
	// Two compatible graphs (same alias, same node class, different
	// link structure) must fuse.
	g1 := mkGraph("t", "x")
	g2 := mkGraph("t", "x")
	n2 := rsg.NewNode("t")
	g2.AddNode(n2)
	xt := g2.PvarTarget("x")
	xt.MarkDefiniteOut("s")
	n2.MarkDefiniteIn("s")
	g2.AddLink(xt.ID, "s", n2.ID)

	s := FromGraphs(rsg.L1, []*rsg.Graph{g1, g2}, Options{})
	if s.Len() != 1 {
		t.Fatalf("Reduce kept %d graphs, want 1 joined:\n%s", s.Len(), s)
	}
}

func TestReduceKeepsIncompatible(t *testing.T) {
	// Different alias relations never join.
	s := FromGraphs(rsg.L1, []*rsg.Graph{mkGraph("t", "x"), mkGraph("t", "y")}, Options{})
	if s.Len() != 2 {
		t.Fatalf("Reduce joined incompatible graphs: %d", s.Len())
	}
	// Same alias, different SHARED on the pvar target: kept apart.
	g1 := mkGraph("t", "x")
	g2 := mkGraph("t", "x")
	g2.PvarTarget("x").Shared = true
	s = FromGraphs(rsg.L1, []*rsg.Graph{g1, g2}, Options{})
	if s.Len() != 2 {
		t.Fatalf("Reduce joined graphs with mismatched SHARED: %d", s.Len())
	}
}

func TestReduceDisableJoin(t *testing.T) {
	g1 := mkGraph("t", "x")
	g2 := mkGraph("t", "x")
	g2.AddNode(rsg.NewNode("t")) // unreachable, still distinct signature
	s := FromGraphs(rsg.L1, []*rsg.Graph{g1, g2}, Options{DisableJoin: true})
	if s.Len() != 2 {
		t.Fatalf("DisableJoin must keep both graphs, got %d", s.Len())
	}
}

func TestForceReduceBounds(t *testing.T) {
	// Build many same-alias graphs with different SHSEL sets so that
	// normal reduction cannot join them, then check the widening bound.
	var graphs []*rsg.Graph
	sels := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 5; i++ {
		g := mkGraph("t", "x")
		n := g.PvarTarget("x")
		n.Shared = true
		n.ShSel.Add(sels[i])
		graphs = append(graphs, g)
	}
	s := FromGraphs(rsg.L1, graphs, Options{})
	if s.Len() != 5 {
		t.Fatalf("expected 5 unjoinable graphs, got %d", s.Len())
	}
	s = FromGraphs(rsg.L1, graphs, Options{MaxGraphs: 2})
	if s.Len() > 2 {
		t.Fatalf("MaxGraphs=2 not enforced: %d", s.Len())
	}
}

func TestUnionAllSharesSignatures(t *testing.T) {
	a := New()
	a.Add(mkGraph("t", "x"))
	b := New()
	b.Add(mkGraph("t", "x"))
	b.Add(mkGraph("t", "y"))
	u := UnionAll(rsg.L1, []*Set{a, b, nil}, Options{})
	if u.Len() != 2 {
		t.Fatalf("UnionAll Len = %d, want 2", u.Len())
	}
}

func TestSignatureAndEqual(t *testing.T) {
	a := New()
	a.Add(mkGraph("t", "x"))
	a.Add(mkGraph("t", "y"))
	b := New()
	b.Add(mkGraph("t", "y"))
	b.Add(mkGraph("t", "x"))
	if !a.Equal(b) {
		t.Error("set equality must ignore insertion order")
	}
	b.Add(mkGraph("u", "z"))
	if a.Equal(b) {
		t.Error("different sets compare equal")
	}
}

func TestCloneSharesButIsIndependent(t *testing.T) {
	a := New()
	a.Add(mkGraph("t", "x"))
	c := a.Clone()
	c.Add(mkGraph("t", "y"))
	if a.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: a=%d c=%d", a.Len(), c.Len())
	}
}

func TestFilter(t *testing.T) {
	s := New()
	s.Add(mkGraph("t", "x"))
	s.Add(mkGraph("t", "x", "y"))
	f := s.Filter(func(g *rsg.Graph) bool { return g.PvarTarget("y") != nil })
	if f.Len() != 1 {
		t.Fatalf("Filter kept %d graphs", f.Len())
	}
	if f.Graphs()[0].PvarTarget("y") == nil {
		t.Error("wrong graph kept")
	}
}

func TestCountsAggregation(t *testing.T) {
	s := New()
	g := mkGraph("t", "x")
	n2 := rsg.NewNode("t")
	g.AddNode(n2)
	g.AddLink(g.PvarTarget("x").ID, "s", n2.ID)
	s.Add(g)
	s.Add(mkGraph("t", "y"))
	if s.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", s.NumNodes())
	}
	if s.NumLinks() != 1 {
		t.Errorf("NumLinks = %d, want 1", s.NumLinks())
	}
}

func TestEntriesSortedByDigest(t *testing.T) {
	s := New()
	s.Add(mkGraph("t", "x"))
	s.Add(mkGraph("u", "y"))
	s.Add(mkGraph("t", "x", "y"))
	s.Add(mkGraph("v", "z"))
	var prev rsg.Digest
	first := true
	s.ForEachEntry(func(g *rsg.Graph, dig rsg.Digest) {
		if !first && !prev.Less(dig) {
			t.Errorf("entries not strictly sorted: %s before %s", prev, dig)
		}
		prev, first = dig, false
	})
	// Graphs() must agree with the iteration order.
	gs := s.Graphs()
	i := 0
	s.ForEachEntry(func(g *rsg.Graph, dig rsg.Digest) {
		if gs[i] != g {
			t.Errorf("Graphs()[%d] disagrees with ForEachEntry order", i)
		}
		i++
	})
}

func TestSetDigestIncremental(t *testing.T) {
	// The incrementally-maintained set digest must equal the XOR of the
	// member digests recomputed from scratch, across adds and merges.
	s := New()
	graphs := []*rsg.Graph{mkGraph("t", "x"), mkGraph("u", "y"), mkGraph("t", "x", "y")}
	for _, g := range graphs {
		s.Add(g)
		var want rsg.Digest
		s.ForEachEntry(func(_ *rsg.Graph, dig rsg.Digest) {
			for i := range want {
				want[i] ^= dig[i]
			}
		})
		if s.Digest() != want {
			t.Fatalf("incremental digest %s != recomputed %s", s.Digest(), want)
		}
	}
	// Order independence.
	r := New()
	r.Add(graphs[2])
	r.Add(graphs[0])
	r.Add(graphs[1])
	if r.Digest() != s.Digest() {
		t.Fatal("set digest must be insertion-order independent")
	}
	if !r.Equal(s) {
		t.Fatal("Equal must hold for same members in different insertion order")
	}
}

func TestAddFreezesGraphs(t *testing.T) {
	s := New()
	g := mkGraph("t", "x")
	s.Add(g)
	for _, m := range s.Graphs() {
		if !m.Frozen() {
			t.Fatal("graphs inside a Set must be frozen")
		}
	}
	// The caller's instance is frozen too (or substituted by an interned
	// twin); either way the original must no longer be silently mutable
	// if it IS the stored instance.
	if s.Graphs()[0] == g && !g.Frozen() {
		t.Fatal("stored caller instance left mutable")
	}
}

func TestMergeDeltaMaintainsDigest(t *testing.T) {
	a := New()
	a.Add(mkGraph("t", "x"))
	b := New()
	b.Add(mkGraph("u", "y"))
	b.Add(mkGraph("t", "x"))
	if !a.MergeDelta(rsg.L1, b, Options{}).Changed {
		t.Fatal("MergeDelta must report change")
	}
	var want rsg.Digest
	a.ForEachEntry(func(_ *rsg.Graph, dig rsg.Digest) {
		for i := range want {
			want[i] ^= dig[i]
		}
	})
	if a.Digest() != want {
		t.Fatalf("digest drifted after MergeDelta: %s != %s", a.Digest(), want)
	}
	if a.MergeDelta(rsg.L1, b, Options{}).Changed {
		t.Fatal("re-merging the same set must be a no-op")
	}
}
