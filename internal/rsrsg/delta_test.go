package rsrsg

import (
	"math/rand"
	"testing"

	"repro/internal/rsg"
)

// membership returns the set's member digests.
func membership(s *Set) map[rsg.Digest]struct{} {
	m := make(map[rsg.Digest]struct{}, s.Len())
	s.ForEachEntry(func(_ *rsg.Graph, dig rsg.Digest) { m[dig] = struct{}{} })
	return m
}

// applyDelta replays a reported Delta onto a membership snapshot.
func applyDelta(m map[rsg.Digest]struct{}, d Delta) {
	for _, dig := range d.Removed {
		delete(m, dig)
	}
	for _, g := range d.Added {
		m[g.Digest()] = struct{}{}
	}
}

func sameMembership(t *testing.T, want map[rsg.Digest]struct{}, s *Set, msg string) {
	t.Helper()
	got := membership(s)
	if len(got) != len(want) {
		t.Fatalf("%s: replayed membership has %d members, set has %d", msg, len(want), len(got))
	}
	for dig := range want {
		if _, ok := got[dig]; !ok {
			t.Fatalf("%s: replayed membership contains %s, set does not", msg, dig)
		}
	}
}

// TestMergeDeltaReportsExactMembershipDelta is the Delta contract the
// semi-naïve engine rests on: replaying the reported Added/Removed onto
// a snapshot of the pre-merge membership must reconstruct the
// post-merge membership exactly — across levels, widening-cap
// boundaries, join-disabled runs, duplicate digests, and empty
// contributions.
func TestMergeDeltaReportsExactMembershipDelta(t *testing.T) {
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		for _, opts := range []Options{
			{},
			{MaxGraphs: 2}, // at/below the forceGroup boundary
			{MaxGraphs: 3},
			{MaxGraphs: 8},
			{DisableJoin: true},
		} {
			for seed := int64(0); seed < 6; seed++ {
				r := rand.New(rand.NewSource(seed))
				s := New()
				shadow := membership(s)
				for step := 0; step < 8; step++ {
					var contribution *Set
					switch step {
					case 3:
						contribution = New() // empty contribution
					case 5:
						// Duplicate digests: re-send an earlier round's
						// graphs mixed with fresh ones.
						gs := randomGraphs(rand.New(rand.NewSource(seed)), 4)
						gs = append(gs, randomGraphs(r, 3)...)
						contribution = FromGraphs(lvl, gs, Options{})
					default:
						contribution = FromGraphs(lvl, randomGraphs(r, 5), Options{})
					}
					d := s.MergeDelta(lvl, contribution, opts)
					if !d.Changed && (len(d.Added) > 0 || len(d.Removed) > 0) {
						t.Fatalf("%v %+v seed %d step %d: non-empty delta with Changed=false", lvl, opts, seed, step)
					}
					applyDelta(shadow, d)
					sameMembership(t, shadow, s, "after MergeDelta")
					if opts.MaxGraphs > 0 {
						buckets := make(map[string]int)
						s.ForEachEntry(func(g *rsg.Graph, _ rsg.Digest) {
							buckets[rsg.AliasKey(g)]++
						})
						for key, n := range buckets {
							if n > opts.MaxGraphs {
								t.Fatalf("%v %+v seed %d step %d: bucket %q holds %d > MaxGraphs",
									lvl, opts, seed, step, key, n)
							}
						}
					}
				}
			}
		}
	}
}

// TestDeltaMergeNets checks Delta.Merge across multiple MergeDelta
// calls within one "visit": the accumulated delta replayed onto the
// pre-visit snapshot must match the final membership, with adds and
// removes netted (a digest never appears in both lists).
func TestDeltaMergeNets(t *testing.T) {
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L3} {
		for seed := int64(20); seed < 26; seed++ {
			r := rand.New(rand.NewSource(seed))
			s := New()
			for warm := 0; warm < 2; warm++ {
				s.MergeDelta(lvl, FromGraphs(lvl, randomGraphs(r, 5), Options{}), Options{MaxGraphs: 4})
			}
			shadow := membership(s)
			var visit Delta
			for call := 0; call < 4; call++ {
				visit.Merge(s.MergeDelta(lvl, FromGraphs(lvl, randomGraphs(r, 4), Options{}), Options{MaxGraphs: 4}))
			}
			added := make(map[rsg.Digest]struct{}, len(visit.Added))
			for _, g := range visit.Added {
				added[g.Digest()] = struct{}{}
			}
			for _, dig := range visit.Removed {
				if _, ok := added[dig]; ok {
					t.Fatalf("%v seed %d: digest %s in both Added and Removed", lvl, seed, dig)
				}
			}
			applyDelta(shadow, visit)
			sameMembership(t, shadow, s, "after merged visit delta")
		}
	}
}

// TestAccumMatchesFullReduce is the dirty-bucket re-reduction property:
// after every random add/remove of transfer parts, the accumulator's
// incrementally maintained out-state must be digest-identical to a full
// UnionAll reduction over the currently live parts.
func TestAccumMatchesFullReduce(t *testing.T) {
	// One join cache shared across every accumulator in the sweep, as the
	// engine shares one per run: cached compat/join results must keep
	// every accumulator identical to the cache-free UnionAll reference.
	jc := NewJoinCache()
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		for _, base := range []Options{{}, {MaxGraphs: 2}, {MaxGraphs: 8}, {DisableJoin: true}} {
			opts := base
			opts.Joins = jc
			for seed := int64(40); seed < 44; seed++ {
				r := rand.New(rand.NewSource(seed))
				acc := NewAccum(lvl)
				var live []*Set
				for step := 0; step < 10; step++ {
					var add, remove []*Set
					// Mostly grow (the engine's in-states are monotone;
					// removals model members joined away), sometimes with
					// an empty delta.
					switch {
					case step == 4:
						// no-op delta: must return the cached state
					case len(live) > 2 && r.Intn(3) == 0:
						i := r.Intn(len(live))
						remove = append(remove, live[i])
						live = append(live[:i], live[i+1:]...)
						add = append(add, FromGraphs(lvl, randomGraphs(r, 3), Options{}))
						live = append(live, add[0])
					default:
						for n := 1 + r.Intn(2); n > 0; n-- {
							p := FromGraphs(lvl, randomGraphs(r, 3), Options{})
							add = append(add, p)
							live = append(live, p)
						}
					}
					out, dirty := acc.MergeDeltaDirty(add, remove, opts)
					if len(add) == 0 && len(remove) == 0 && dirty != 0 {
						t.Fatalf("%v %+v seed %d step %d: empty delta dirtied %d buckets", lvl, opts, seed, step, dirty)
					}
					want := UnionAll(lvl, live, opts)
					if !out.Equal(want) {
						t.Fatalf("%v %+v seed %d step %d: accum diverged from full reduce:\naccum %s\nfull  %s",
							lvl, opts, seed, step, out.Signature(), want.Signature())
					}
					if acc.Len() != want.Len() {
						t.Fatalf("%v %+v seed %d step %d: Accum.Len=%d want %d", lvl, opts, seed, step, acc.Len(), want.Len())
					}
				}
			}
		}
	}
}

// TestAccumDuplicatePartsRefcount pins the refcount semantics: two
// identical parts added then one removed must leave the entries live;
// removing the second retracts them.
func TestAccumDuplicatePartsRefcount(t *testing.T) {
	p1 := New()
	p1.Add(mkGraph("t", "x"))
	p2 := p1.Clone()
	acc := NewAccum(rsg.L1)
	out, _ := acc.MergeDeltaDirty([]*Set{p1, p2}, nil, Options{})
	if out.Len() != 1 {
		t.Fatalf("after two identical parts: Len=%d, want 1", out.Len())
	}
	out, _ = acc.MergeDeltaDirty(nil, []*Set{p1}, Options{})
	if out.Len() != 1 {
		t.Fatalf("after removing one of two refs: Len=%d, want 1", out.Len())
	}
	out, _ = acc.MergeDeltaDirty(nil, []*Set{p2}, Options{})
	if out.Len() != 0 {
		t.Fatalf("after removing the last ref: Len=%d, want 0", out.Len())
	}
}

// TestAccumParallelMatchesSequential runs the dirty-bucket reduction
// with the adversarial goroutine executor: identical membership to the
// sequential accumulator at every step.
func TestAccumParallelMatchesSequential(t *testing.T) {
	for seed := int64(60); seed < 64; seed++ {
		r := rand.New(rand.NewSource(seed))
		seq := NewAccum(rsg.L1)
		par := NewAccum(rsg.L1)
		for step := 0; step < 6; step++ {
			p := FromGraphs(rsg.L1, randomGraphs(r, 6), Options{})
			so, _ := seq.MergeDeltaDirty([]*Set{p}, nil, Options{MaxGraphs: 4})
			po, _ := par.MergeDeltaDirty([]*Set{p}, nil, Options{MaxGraphs: 4, Exec: goExec})
			if !so.Equal(po) {
				t.Fatalf("seed %d step %d: parallel accum diverged:\nseq %s\npar %s",
					seed, step, so.Signature(), po.Signature())
			}
		}
	}
}
