package rsrsg

import "repro/internal/rsg"

// Snapshot support for the persistent analysis store: a Set is
// persisted as its member digests (the graphs themselves live in the
// store's content-addressed graph log, deduplicated across statements
// and runs), and restored by re-adding the decoded graphs. Restore
// deliberately does not Reduce — stored sets are already reduced
// fixpoint values, and re-reducing could only perturb them.

// MemberDigests returns the digests of the member graphs in canonical
// (sorted) order. The set digest is derivable from these (XOR), so this
// list is the complete persistent identity of the set.
func (s *Set) MemberDigests() []rsg.Digest {
	if s == nil {
		return nil
	}
	out := make([]rsg.Digest, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.dig
	}
	return out
}

// RestoreSet rebuilds a Set from decoded member graphs without reducing.
// Graphs are interned (decode already froze them; Intern dedups against
// the process cache) and inserted in canonical digest order, so the
// restored set is structurally identical — same entries, same order,
// same XOR digest — to the set MemberDigests was taken from.
func RestoreSet(graphs []*rsg.Graph) *Set {
	return RestoreSetStats(graphs, nil)
}

// RestoreSetStats is RestoreSet with the intern work attributed to rec;
// a nil rec is identical to RestoreSet.
func RestoreSetStats(graphs []*rsg.Graph, rec *rsg.RunStats) *Set {
	s := New()
	for _, g := range graphs {
		s.addEntry(newEntry(g, rec))
	}
	return s
}
