package rsrsg

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/rsg"
)

// goExec is a test executor that runs every task in its own goroutine —
// the most adversarial schedule an Exec may use.
func goExec(tasks []func()) {
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(task)
	}
	wg.Wait()
}

// randomGraphs builds a population of list/tree-shaped graphs spread
// over several alias classes so Reduce and MergeDelta exercise multiple
// buckets with joinable members.
func randomGraphs(r *rand.Rand, n int) []*rsg.Graph {
	pvarSets := [][]string{{"x"}, {"y"}, {"x", "y"}, {"x", "z"}, {"z"}}
	var out []*rsg.Graph
	for i := 0; i < n; i++ {
		g := rsg.NewGraph()
		root := rsg.NewNode("t")
		root.Singleton = true
		g.AddNode(root)
		for _, p := range pvarSets[r.Intn(len(pvarSets))] {
			g.SetPvar(p, root.ID)
		}
		prev := root
		for k := r.Intn(4); k > 0; k-- {
			c := rsg.NewNode("t")
			c.Singleton = r.Intn(2) == 0
			g.AddNode(c)
			sel := []string{"nxt", "prv"}[r.Intn(2)]
			g.AddLink(prev.ID, sel, c.ID)
			prev.MarkDefiniteOut(sel)
			if c.Singleton {
				c.MarkDefiniteIn(sel)
			} else {
				c.MarkPossibleIn(sel)
			}
			prev = c
		}
		out = append(out, g)
	}
	return out
}

// TestReduceParallelMatchesSequential asserts the tentpole determinism
// property at the rsrsg layer: Reduce with a concurrent executor must
// produce a set with exactly the digests of the sequential reduction.
func TestReduceParallelMatchesSequential(t *testing.T) {
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L2, rsg.L3} {
		for seed := int64(0); seed < 8; seed++ {
			graphs := randomGraphs(rand.New(rand.NewSource(seed)), 24)
			seq := New()
			par := New()
			for _, g := range graphs {
				seq.Add(g.Clone())
				par.Add(g.Clone())
			}
			seqJoins := seq.Reduce(lvl, Options{})
			parJoins := par.Reduce(lvl, Options{Exec: goExec})
			if !seq.Equal(par) {
				t.Fatalf("%v seed %d: parallel Reduce diverged:\nseq %s\npar %s",
					lvl, seed, seq.Signature(), par.Signature())
			}
			if seqJoins != parJoins {
				t.Errorf("%v seed %d: join counts differ: %d vs %d", lvl, seed, seqJoins, parJoins)
			}
		}
	}
}

// TestMergeDeltaParallelMatchesSequential folds a stream of
// contribution sets into an accumulator both sequentially and with the
// concurrent executor, comparing membership after every step (the
// engine's in-state accumulation pattern).
func TestMergeDeltaParallelMatchesSequential(t *testing.T) {
	for _, lvl := range []rsg.Level{rsg.L1, rsg.L3} {
		for seed := int64(100); seed < 105; seed++ {
			r := rand.New(rand.NewSource(seed))
			seq, par := New(), New()
			for step := 0; step < 6; step++ {
				contribution := FromGraphs(lvl, randomGraphs(r, 6), Options{})
				seqChanged := seq.MergeDelta(lvl, contribution, Options{MaxGraphs: 8}).Changed
				parChanged := par.MergeDelta(lvl, contribution, Options{MaxGraphs: 8, Exec: goExec}).Changed
				if seqChanged != parChanged {
					t.Fatalf("%v seed %d step %d: changed verdicts differ (%v vs %v)",
						lvl, seed, step, seqChanged, parChanged)
				}
				if !seq.Equal(par) {
					t.Fatalf("%v seed %d step %d: parallel MergeDelta diverged:\nseq %s\npar %s",
						lvl, seed, step, seq.Signature(), par.Signature())
				}
			}
		}
	}
}

// TestUnionAllWithExec checks the engine's transfer-join entry point
// under a concurrent executor.
func TestUnionAllWithExec(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var parts []*Set
	for i := 0; i < 5; i++ {
		parts = append(parts, FromGraphs(rsg.L1, randomGraphs(r, 5), Options{}))
	}
	seq := UnionAll(rsg.L1, parts, Options{})
	par := UnionAll(rsg.L1, parts, Options{Exec: goExec})
	if !seq.Equal(par) {
		t.Fatalf("UnionAll diverged under Exec:\nseq %s\npar %s", seq.Signature(), par.Signature())
	}
	if seq.Len() == 0 {
		t.Fatal("degenerate union")
	}
}

// TestExecTaskIndependence documents that tasks see disjoint buckets:
// a Reduce over many alias classes must hand each class to its own
// task exactly once.
func TestExecTaskIndependence(t *testing.T) {
	s := New()
	for i := 0; i < 6; i++ {
		g := mkGraph("t", fmt.Sprintf("p%d", i))
		s.Add(g)
		h := mkGraph("t", fmt.Sprintf("p%d", i))
		extra := rsg.NewNode("t")
		h.AddNode(extra)
		root := h.PvarTarget(fmt.Sprintf("p%d", i))
		h.AddLink(root.ID, "nxt", extra.ID)
		root.MarkDefiniteOut("nxt")
		extra.MarkDefiniteIn("nxt")
		s.Add(h)
	}
	var mu sync.Mutex
	calls := 0
	counting := func(tasks []func()) {
		mu.Lock()
		calls += len(tasks)
		mu.Unlock()
		goExec(tasks)
	}
	s.Reduce(rsg.L1, Options{Exec: counting})
	if calls != 6 {
		t.Fatalf("expected 6 bucket tasks (one per alias class), got %d", calls)
	}
	if s.Len() != 6 {
		t.Fatalf("each alias class should reduce to one member, got %d", s.Len())
	}
}
