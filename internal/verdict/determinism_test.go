package verdict

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestVerdictDeterminism extends the engine's determinism matrix to
// the verdict layer: over worker counts x delta propagation modes, the
// rendered report, the per-class alarm lists and the witness texts
// must be bit-identical. The tasks cover the three verdict outcomes
// and a free-heavy program (uaf_unlink_loop exercises OpFree through
// the parallel transfer memo).
func TestVerdictDeterminism(t *testing.T) {
	tasks := []string{
		"null_walk_escalates.c",      // escalating safe verdicts
		"uaf_unlink_loop_safe.c",     // free under a loop-built summary
		"uaf_dangling_ref_unknown.c", // surviving alarms, no witness
		"leak_cond_drop_unsafe.c",    // unsafe with a concrete witness
	}
	configs := []struct {
		workers int
		noDelta bool
	}{
		{1, false}, {4, false}, {1, true}, {4, true},
	}
	for _, task := range tasks {
		src, err := os.ReadFile(filepath.Join(corpusDir, task))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		var want string
		for i, cfg := range configs {
			rep := Check(prog, Options{
				Analysis: analysis.Options{Workers: cfg.workers, NoDelta: cfg.noDelta},
			})
			if rep.Err != nil {
				t.Fatalf("%s %+v: %v", task, cfg, rep.Err)
			}
			got := renderReport(rep)
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: %+v diverged from %+v:\n--- want\n%s\n--- got\n%s",
					task, cfg, configs[0], want, got)
			}
		}
	}
}

// renderReport flattens everything a client of the verdict layer can
// observe into one comparable string.
func renderReport(rep *Report) string {
	var b strings.Builder
	b.WriteString(rep.String())
	for _, v := range rep.Verdicts {
		for _, a := range v.Alarms {
			fmt.Fprintf(&b, "alarm %s\n", a)
		}
		if v.Witness != nil {
			b.WriteString(v.Witness.Text())
		}
	}
	fmt.Fprintf(&b, "levels=%d final=%s\n", len(rep.Progressive.Levels), rep.Progressive.AchievedLevel())
	return b.String()
}
