// Package verdict implements memory-safety verdict clients over the
// shape analysis: null-dereference, use-after-free and memory-leak
// checkers phrased as queries on the per-statement RSRSGs. Each checker
// is an analysis.Goal, so the progressive driver escalates per query
// exactly as for the parallelization clients: a program that is UNKNOWN
// at L1 (the cheap C_SPATH0 summarization merges the evidence away) can
// settle SAFE at L2 or L3. Verdicts record the level that settled them;
// alarms that survive the final level are confirmed against randomized
// concrete executions and either become UNSAFE (with a concrete witness
// trace, rendered by triage) or stay UNKNOWN. DESIGN.md §12 documents
// the obligations each checker discharges and why they are sound.
package verdict

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/concrete"
	"repro/internal/ir"
	"repro/internal/rsg"
	"repro/internal/triage"
)

// Class identifies one memory-safety property.
type Class int

const (
	// NullDeref: no statement dereferences a pvar that may be NULL.
	NullDeref Class = iota
	// UseAfterFree: no free() leaves a reference behind — covers
	// dangling dereferences and double frees.
	UseAfterFree
	// Leak: no cell ever becomes unreachable while still allocated, and
	// every exit configuration keeps its cells reachable.
	Leak
	numClasses
)

// String returns the corpus-header key of the class.
func (c Class) String() string {
	switch c {
	case NullDeref:
		return "null-deref"
	case UseAfterFree:
		return "use-after-free"
	case Leak:
		return "leak"
	}
	return "?"
}

// Classes lists every class in canonical order.
func Classes() []Class { return []Class{NullDeref, UseAfterFree, Leak} }

// Status is the outcome of one class's query.
type Status int

const (
	// Safe: the analysis proved the property at some level.
	Safe Status = iota
	// Unsafe: a concrete execution exhibits the fault.
	Unsafe
	// Unknown: alarms survived the final level but no concrete
	// execution confirmed them.
	Unknown
)

// String returns "safe", "unsafe" or "unknown".
func (s Status) String() string {
	switch s {
	case Safe:
		return "safe"
	case Unsafe:
		return "unsafe"
	case Unknown:
		return "unknown"
	}
	return "?"
}

// Verdict is the settled outcome of one class.
type Verdict struct {
	Class  Class
	Status Status
	// Level is the analysis level that settled a Safe verdict (the
	// first level whose result carries no alarm for the class).
	Level rsg.Level
	// Alarms holds the surviving alarms of the final level for Unsafe
	// and Unknown verdicts.
	Alarms []Alarm
	// Witness is the concrete counterexample backing an Unsafe verdict.
	Witness *triage.Witness
}

// String renders the verdict in the corpus-header syntax: "safe@L2",
// "unsafe", "unknown".
func (v Verdict) String() string {
	if v.Status == Safe {
		return fmt.Sprintf("safe@%s", v.Level)
	}
	return v.Status.String()
}

// Alarm is one possible property violation reported by a checker.
type Alarm struct {
	Class  Class
	StmtID int
	Line   int
	// Detail explains the abstract evidence.
	Detail string
}

// String renders the alarm.
func (a Alarm) String() string {
	return fmt.Sprintf("%s at stmt %d (line %d): %s", a.Class, a.StmtID, a.Line, a.Detail)
}

// Checker is a memory-safety query: an analysis.Goal whose Met
// criterion is "no alarm", plus the alarm enumeration the verdict
// driver re-evaluates per level.
type Checker interface {
	analysis.Goal
	// Class identifies the property the checker decides.
	Class() Class
	// Alarms enumerates the surviving possible violations,
	// deterministically ordered.
	Alarms(res *analysis.Result) []Alarm
}

// CheckerFor returns the checker deciding the class.
func CheckerFor(c Class) Checker {
	switch c {
	case NullDeref:
		return NullSafe{}
	case UseAfterFree:
		return FreeSafe{}
	case Leak:
		return LeakFree{}
	}
	return nil
}

// Options configures Check.
type Options struct {
	// Analysis applies to every level of the progressive run;
	// Analysis.Level is ignored.
	Analysis analysis.Options
	// ConfirmRuns is the number of randomized concrete executions used
	// to confirm surviving alarms (default 64).
	ConfirmRuns int
	// ConfirmSeed seeds the confirmation executions (default 1).
	ConfirmSeed int64
}

// Report is the outcome of a full memory-safety check.
type Report struct {
	Prog *ir.Program
	// Progressive is the underlying progressive run (its Levels retain
	// the per-level results and goal details).
	Progressive *analysis.ProgressiveResult
	// Verdicts holds one settled verdict per class, in Classes() order.
	Verdicts []Verdict
	// Err is set when every level of the progressive run failed; the
	// verdicts are all Unknown in that case.
	Err error
}

// VerdictFor returns the verdict of one class.
func (r *Report) VerdictFor(c Class) Verdict { return r.Verdicts[int(c)] }

// String renders one line per class.
func (r *Report) String() string {
	var b strings.Builder
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "%-16s %s\n", v.Class.String()+":", v)
	}
	return b.String()
}

// Check runs the progressive analysis with the three memory-safety
// checkers as goals and settles one verdict per class:
//
//   - Safe@Lk: level k is the first whose result carries no alarm for
//     the class. Escalation is per query — the driver moves past a
//     level exactly when some class still alarms there.
//   - Unsafe: alarms survived the final level and a randomized concrete
//     execution exhibits a fault of the class; the verdict carries the
//     witness trace.
//   - Unknown: alarms survived but no execution confirmed them.
func Check(prog *ir.Program, opts Options) *Report {
	if opts.ConfirmRuns == 0 {
		opts.ConfirmRuns = 64
	}
	if opts.ConfirmSeed == 0 {
		opts.ConfirmSeed = 1
	}
	checkers := make([]Checker, 0, numClasses)
	goals := make([]analysis.Goal, 0, numClasses)
	for _, c := range Classes() {
		ck := CheckerFor(c)
		checkers = append(checkers, ck)
		goals = append(goals, ck)
	}
	pr := analysis.Progressive(prog, goals, opts.Analysis)
	rep := &Report{Prog: prog, Progressive: pr, Verdicts: make([]Verdict, numClasses)}

	// Settle Safe verdicts from the level reports.
	var confirm []Class
	for i, ck := range checkers {
		v := Verdict{Class: ck.Class(), Status: Unknown}
		var finalAlarms []Alarm
		sawResult := false
		for _, lr := range pr.Levels {
			if lr.Err != nil || lr.Result == nil {
				continue
			}
			sawResult = true
			alarms := ck.Alarms(lr.Result)
			if len(alarms) == 0 {
				v.Status = Safe
				v.Level = lr.Level
				finalAlarms = nil
				break
			}
			finalAlarms = alarms
		}
		v.Alarms = finalAlarms
		if !sawResult {
			rep.Err = pr.Final.Err
		}
		if v.Status != Safe && sawResult {
			confirm = append(confirm, ck.Class())
		}
		rep.Verdicts[i] = v
	}

	if len(confirm) > 0 {
		witnesses := confirmAlarms(prog, confirm, opts)
		for _, c := range confirm {
			if w := witnesses[c]; w != nil {
				rep.Verdicts[int(c)].Status = Unsafe
				rep.Verdicts[int(c)].Witness = w
			}
		}
	}
	return rep
}

// confirmAlarms searches randomized concrete executions for faults of
// the given classes and returns one witness per confirmed class.
func confirmAlarms(prog *ir.Program, classes []Class, opts Options) map[Class]*triage.Witness {
	want := make(map[Class]bool, len(classes))
	for _, c := range classes {
		want[c] = true
	}
	out := make(map[Class]*triage.Witness)
	for run := 0; run < opts.ConfirmRuns && len(out) < len(classes); run++ {
		seed := opts.ConfirmSeed + int64(run)
		tr, err := concrete.RunSeed(prog, seed)
		if err != nil {
			continue
		}
		if c, ok := classOfFault(tr.Fault); ok && want[c] && out[c] == nil {
			out[c] = triage.NewWitness(prog, tr, seed)
		}
		if want[Leak] && out[Leak] == nil && len(tr.Leaks) > 0 {
			out[Leak] = triage.NewWitness(prog, tr, seed)
		}
	}
	return out
}

// classOfFault maps an interpreter fault to the checker class that owns
// it.
func classOfFault(f concrete.Fault) (Class, bool) {
	switch f {
	case concrete.FaultNullDeref:
		return NullDeref, true
	case concrete.FaultUseAfterFree, concrete.FaultDoubleFree:
		return UseAfterFree, true
	}
	return 0, false
}

// sortAlarms orders alarms by statement then detail and drops
// duplicates.
func sortAlarms(alarms []Alarm) []Alarm {
	sort.Slice(alarms, func(i, j int) bool {
		if alarms[i].StmtID != alarms[j].StmtID {
			return alarms[i].StmtID < alarms[j].StmtID
		}
		return alarms[i].Detail < alarms[j].Detail
	})
	out := alarms[:0]
	for i, a := range alarms {
		if i > 0 && a == alarms[i-1] {
			continue
		}
		out = append(out, a)
	}
	return out
}
