// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L1
// Unlinks and frees the second cell of a loop-built list: the
// unshared summary keeps materialization exact even at L1.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *t;
    p = malloc(sizeof(struct node));
    p->nxt = NULL;
    while (cond) {
        q = malloc(sizeof(struct node));
        q->nxt = p;
        p = q;
    }
    q = NULL;
    q = p->nxt;
    if (q != NULL) {
        t = q->nxt;
        p->nxt = t;
        q->nxt = NULL;
        free(q);
    }
}
