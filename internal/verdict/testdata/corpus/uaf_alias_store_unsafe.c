// VERDICT: null-deref=safe@L1 use-after-free=unsafe leak=safe@L1
// Stores through an alias of a freed cell.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    q = p;
    free(p);
    q->nxt = NULL;
}
