// VERDICT: null-deref=unsafe use-after-free=safe@L1 leak=safe@L1
// Stores through a pvar that is definitely NULL.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    p = NULL;
    p->nxt = NULL;
}
