// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L1
// free(NULL) is a no-op in the dialect, exactly as in C.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    p = NULL;
    free(p);
    p = malloc(sizeof(struct node));
    free(p);
    free(p);
}
