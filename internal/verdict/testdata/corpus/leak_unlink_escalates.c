// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L2
// Unlinks and frees a middle cell. At L1 the bridge store q->nxt=t
// may spuriously write NULL (t read through the summarized middle),
// abstractly stranding the tail; L2 walks exactly.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    struct node *t;
    p = malloc(sizeof(struct node));
    t = malloc(sizeof(struct node));
    p->nxt = t;
    q = malloc(sizeof(struct node));
    t->nxt = q;
    r = malloc(sizeof(struct node));
    q->nxt = r;
    t = NULL;
    q = NULL;
    r = NULL;
    q = p->nxt;
    r = q->nxt;
    t = r->nxt;
    q->nxt = t;
    t = NULL;
    r->nxt = NULL;
    free(r);
}
