// VERDICT: null-deref=safe@L1 use-after-free=unknown leak=safe@L1
// Frees a cell while a heap link into it survives. No execution ever
// dereferences the dangling link, so the concrete runs cannot confirm
// the alarm — but the sole-reference criterion rightly refuses to
// prove the free safe at any level: the code is one load away from a
// use-after-free.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *s;
    p = malloc(sizeof(struct node));
    q = malloc(sizeof(struct node));
    s = malloc(sizeof(struct node));
    p->nxt = s;
    q->nxt = s;
    s = NULL;
    s = q->nxt;
    q->nxt = NULL;
    free(s);
}
