// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L1
// Grows a binary tree by pushing new roots; everything stays reachable.
struct tree { struct tree *lft; struct tree *rgt; };
void main(void) {
    struct tree *root;
    struct tree *t;
    struct tree *l;
    root = NULL;
    while (cond) {
        t = malloc(sizeof(struct tree));
        t->lft = root;
        l = malloc(sizeof(struct tree));
        l->lft = NULL;
        l->rgt = NULL;
        t->rgt = l;
        root = t;
    }
    t = NULL;
    l = NULL;
}
