// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L1
// Push-front construction followed by a guarded traversal: the
// canonical safe singly-linked-list workload.
struct node { struct node *nxt; };
void main(void) {
    struct node *h;
    struct node *p;
    struct node *t;
    h = NULL;
    while (cond) {
        t = malloc(sizeof(struct node));
        t->nxt = h;
        h = t;
    }
    t = NULL;
    p = h;
    while (p != NULL) {
        p = p->nxt;
    }
}
