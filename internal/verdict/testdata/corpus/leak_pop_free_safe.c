// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L1
// Deallocates the whole list by popping the head: every free() sees a
// sole-referenced cell and nothing is stranded.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    p = NULL;
    while (cond) {
        q = malloc(sizeof(struct node));
        q->nxt = p;
        p = q;
    }
    q = NULL;
    while (p != NULL) {
        q = p->nxt;
        free(p);
        p = q;
    }
}
