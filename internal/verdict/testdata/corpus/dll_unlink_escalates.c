// VERDICT: null-deref=safe@L2 use-after-free=safe@L1 leak=safe@L2
// Unlinks and frees a middle cell of a four-cell doubly-linked
// list; the back-pointer store t->prv=q trips over the L1 summary
// short-cut (t spuriously NULL) until L2 walks the list exactly.
struct node { struct node *nxt; struct node *prv; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    struct node *t;
    p = malloc(sizeof(struct node));
    t = malloc(sizeof(struct node));
    p->nxt = t;
    t->prv = p;
    q = malloc(sizeof(struct node));
    t->nxt = q;
    q->prv = t;
    r = malloc(sizeof(struct node));
    q->nxt = r;
    r->prv = q;
    t = NULL;
    q = NULL;
    r = NULL;
    q = p->nxt;
    r = q->nxt;
    t = r->nxt;
    q->nxt = t;
    t->prv = q;
    r->nxt = NULL;
    r->prv = NULL;
    free(r);
}
