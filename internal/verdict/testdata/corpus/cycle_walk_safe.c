// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L1
// Walks a two-cell cycle: the links never read NULL and the cycle
// stays reachable through p.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    p = malloc(sizeof(struct node));
    q = malloc(sizeof(struct node));
    p->nxt = q;
    q->nxt = p;
    q = NULL;
    r = p->nxt;
    q = r->nxt;
    r = q->nxt;
}
