// VERDICT: null-deref=safe@L2 use-after-free=safe@L1 leak=safe@L1
// Four-cell list walked by repeated loads. At L1 the two middle
// cells summarize, materialization leaves a possible short-cut to
// the terminal, and the walk spuriously reads NULL one step early;
// the L2 spath distinction keeps the walk exact.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    struct node *s;
    struct node *w;
    struct node *t;
    p = malloc(sizeof(struct node));
    t = malloc(sizeof(struct node));
    p->nxt = t;
    q = malloc(sizeof(struct node));
    t->nxt = q;
    r = malloc(sizeof(struct node));
    q->nxt = r;
    t = NULL;
    q = NULL;
    r = NULL;
    q = p->nxt;
    r = q->nxt;
    s = r->nxt;
    w = s->nxt;
}
