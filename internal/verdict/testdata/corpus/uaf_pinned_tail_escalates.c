// VERDICT: null-deref=safe@L1 use-after-free=safe@L2 leak=safe@L1
// Frees the third cell of a four-cell list whose terminal is pinned
// by pvar w. At L1 the summarized middles let the cursor spuriously
// alias w one step early, so the freed cell may still be referenced
// by another pvar; the L2 spath distinction removes the alias.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    struct node *s;
    struct node *w;
    p = malloc(sizeof(struct node));
    q = malloc(sizeof(struct node));
    p->nxt = q;
    r = malloc(sizeof(struct node));
    q->nxt = r;
    s = malloc(sizeof(struct node));
    r->nxt = s;
    w = s;
    q = NULL;
    r = NULL;
    s = NULL;
    q = p->nxt;
    r = q->nxt;
    s = r->nxt;
    q->nxt = s;
    r->nxt = NULL;
    free(r);
}
