// VERDICT: null-deref=safe@L1 use-after-free=unsafe leak=safe@L1
// Loads through a stale alias of a freed cell.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    p = malloc(sizeof(struct node));
    p->nxt = NULL;
    q = p;
    free(p);
    r = q->nxt;
}
