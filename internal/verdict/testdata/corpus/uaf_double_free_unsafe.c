// VERDICT: null-deref=safe@L1 use-after-free=unsafe leak=safe@L1
// free() through a stale alias releases the same cell twice.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    q = p;
    free(p);
    free(q);
}
