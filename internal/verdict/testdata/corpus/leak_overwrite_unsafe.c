// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=unsafe
// Re-binding the only pvar of an allocated cell strands it.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    p = malloc(sizeof(struct node));
    p = malloc(sizeof(struct node));
    p->nxt = NULL;
}
