// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L1
// Two pvar-held cells converge on a shared head whose tail is then
// unlinked and freed; the sharing flags keep the shared cell out of
// every summary, so the free stays provable at L1.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    struct node *r;
    struct node *s;
    struct node *t;
    p = malloc(sizeof(struct node));
    q = malloc(sizeof(struct node));
    r = malloc(sizeof(struct node));
    p->nxt = r;
    q->nxt = r;
    s = malloc(sizeof(struct node));
    r->nxt = s;
    s->nxt = NULL;
    while (cond) {
        t = malloc(sizeof(struct node));
        t->nxt = NULL;
        s->nxt = t;
        s = t;
    }
    r = NULL;
    s = NULL;
    t = NULL;
    r = q->nxt;
    s = r->nxt;
    t = s->nxt;
    r->nxt = t;
    s->nxt = NULL;
    free(s);
}
