// VERDICT: null-deref=unsafe use-after-free=safe@L1 leak=safe@L1
// Loads the uninitialised (NULL) nxt field and dereferences it.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    q = p->nxt;
    q->nxt = NULL;
}
