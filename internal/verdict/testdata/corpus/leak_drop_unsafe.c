// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=unsafe
// Drops the only reference to an allocated cell.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    p = malloc(sizeof(struct node));
    p = NULL;
}
