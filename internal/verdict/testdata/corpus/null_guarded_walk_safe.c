// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=safe@L1
// The loop guard proves p non-NULL before every load.
struct node { struct node *nxt; };
void main(void) {
    struct node *h;
    struct node *p;
    struct node *q;
    h = NULL;
    while (cond) {
        q = malloc(sizeof(struct node));
        q->nxt = h;
        h = q;
    }
    q = NULL;
    p = h;
    while (p != NULL) {
        q = p->nxt;
        p = q;
    }
}
