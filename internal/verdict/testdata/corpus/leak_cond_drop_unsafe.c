// VERDICT: null-deref=safe@L1 use-after-free=safe@L1 leak=unsafe
// One branch strands the cell, the other keeps it: some executions
// leak, so the verdict is unsafe with a concrete witness.
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    q = p;
    if (cond) {
        p = NULL;
        q = NULL;
    }
}
