package verdict

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/analysis"
	"repro/internal/concrete"
)

// fuzzSeed mirrors the concrete package's sweep seeding: FUZZ_SEED
// rotates the master seed, the committed default keeps the run
// reproducible.
func fuzzSeed(t *testing.T) int64 {
	if env := os.Getenv("FUZZ_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("invalid FUZZ_SEED %q: %v", env, err)
		}
		return seed
	}
	return 20260808
}

// TestFuzzDifferentialVerdicts is the differential hook between the
// checkers and the interpreter: on randomly generated free()-heavy
// programs, a checker must NEVER settle SAFE for a class some concrete
// execution violates. Unsafe/unknown verdicts are unconstrained (random
// programs fault all the time); the property under test is one-sided
// soundness of the SAFE claims — exactly the guarantee the corpus
// cross-validation pins on the curated tasks, extended here to
// adversarial inputs.
func TestFuzzDifferentialVerdicts(t *testing.T) {
	programs := 25
	seeds := int64(60)
	if testing.Short() {
		programs, seeds = 5, 20
	}
	seedRng := rand.New(rand.NewSource(fuzzSeed(t)))
	for i := 0; i < programs; i++ {
		gen := concrete.GenFreeProgram
		if i%4 == 3 { // every fourth program is free-less
			gen = concrete.GenProgram
		}
		genSeed := seedRng.Int63()
		src := gen(rand.New(rand.NewSource(genSeed)))
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("program %d (genseed %d): %v\n%s", i, genSeed, err, src)
		}
		rep := Check(prog, Options{Analysis: analysis.Options{MaxVisits: 50000, Workers: 4}})
		if rep.Err != nil {
			// The bounded analysis did not converge on this program; there
			// are no SAFE claims to falsify.
			continue
		}
		observed := make(map[Class]bool)
		for seed := int64(1); seed <= seeds; seed++ {
			tr, err := concrete.RunSeed(prog, seed)
			if err != nil {
				t.Fatalf("program %d (genseed %d) seed %d: %v\n%s", i, genSeed, seed, err, src)
			}
			if c, ok := classOfFault(tr.Fault); ok {
				observed[c] = true
			}
			if len(tr.Leaks) > 0 {
				observed[Leak] = true
			}
		}
		for _, c := range Classes() {
			v := rep.VerdictFor(c)
			if v.Status == Safe && observed[c] {
				t.Errorf("program %d (genseed %d): checker claims %s %s but the interpreter violates it\n%s",
					i, genSeed, c, v, src)
			}
		}
	}
}
