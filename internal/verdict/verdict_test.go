package verdict

import (
	"strings"
	"testing"

	"repro/internal/rsg"
)

func mustCompile(t *testing.T, src string) *TaskResult {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(prog, Options{})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	return &TaskResult{Report: rep}
}

const uafSrc = `
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    struct node *q;
    p = malloc(sizeof(struct node));
    q = p;
    free(p);
    q->nxt = NULL;
}`

func TestCheckSettlesUnsafeWithWitness(t *testing.T) {
	rep := mustCompile(t, uafSrc).Report
	v := rep.VerdictFor(UseAfterFree)
	if v.Status != Unsafe {
		t.Fatalf("use-after-free = %s, want unsafe", v)
	}
	if len(v.Alarms) == 0 {
		t.Error("unsafe verdict carries no alarms")
	}
	if v.Witness == nil {
		t.Fatal("unsafe verdict carries no witness")
	}
	txt := v.Witness.Text()
	for _, want := range []string{"use-after-free", "seed", "statement context", ">>", "execution tail", "heap before the violation"} {
		if !strings.Contains(txt, want) {
			t.Errorf("witness text misses %q:\n%s", want, txt)
		}
	}
	// The other two classes are provable at L1 on this program.
	for _, c := range []Class{NullDeref, Leak} {
		if v := rep.VerdictFor(c); v.Status != Safe || v.Level != rsg.L1 {
			t.Errorf("%s = %s, want safe@L1", c, v)
		}
	}
	if s := rep.String(); !strings.Contains(s, "use-after-free: ") && !strings.Contains(s, "unsafe") {
		t.Errorf("report string incomplete:\n%s", s)
	}
}

func TestLeakWitnessText(t *testing.T) {
	rep := mustCompile(t, `
struct node { struct node *nxt; };
void main(void) {
    struct node *p;
    p = malloc(sizeof(struct node));
    p = NULL;
}`).Report
	v := rep.VerdictFor(Leak)
	if v.Status != Unsafe || v.Witness == nil {
		t.Fatalf("leak = %s (witness %v), want unsafe with witness", v, v.Witness)
	}
	txt := v.Witness.Text()
	if !strings.Contains(txt, "strands cell") {
		t.Errorf("leak witness text misses the stranded cell:\n%s", txt)
	}
}

func TestVerdictString(t *testing.T) {
	cases := []struct {
		v    Verdict
		want string
	}{
		{Verdict{Class: NullDeref, Status: Safe, Level: rsg.L2}, "safe@L2"},
		{Verdict{Class: Leak, Status: Unsafe}, "unsafe"},
		{Verdict{Class: UseAfterFree, Status: Unknown}, "unknown"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseHeader(t *testing.T) {
	exp, ok, err := ParseHeader("// a comment\n// VERDICT: null-deref=safe@L2 use-after-free=unsafe leak=unknown\nstruct node{};")
	if err != nil || !ok {
		t.Fatalf("ParseHeader = (%v, %v)", ok, err)
	}
	if e := exp[NullDeref]; e.Status != Safe || e.Level != rsg.L2 {
		t.Errorf("null-deref expectation = %+v", e)
	}
	if e := exp[UseAfterFree]; e.Status != Unsafe {
		t.Errorf("use-after-free expectation = %+v", e)
	}
	if e := exp[Leak]; e.Status != Unknown {
		t.Errorf("leak expectation = %+v", e)
	}

	if _, ok, _ := ParseHeader("struct node{};"); ok {
		t.Error("headerless source parsed as carrying a header")
	}
	for _, bad := range []string{
		"// VERDICT: null-deref=safe",                                               // missing classes
		"// VERDICT: null-deref=safe use-after-free=safe leak=maybe",                // bad status
		"// VERDICT: null-deref=unsafe@L2 use-after-free=safe leak=safe",            // level on unsafe
		"// VERDICT: null-deref=safe@L9 use-after-free=safe leak=safe",              // bad level
		"// VERDICT: null-deref=safe null-deref=safe use-after-free=safe leak=safe", // duplicate
		"// VERDICT: nulls=safe use-after-free=safe leak=safe",                      // unknown class
		"// VERDICT: null-deref use-after-free=safe leak=safe",                      // not k=v
	} {
		if _, ok, err := ParseHeader(bad); !ok || err == nil {
			t.Errorf("ParseHeader(%q) = (%v, %v), want error", bad, ok, err)
		}
	}
}

func TestExpectationMatches(t *testing.T) {
	anySafe := Expectation{Status: Safe}
	l2Safe := Expectation{Status: Safe, Level: rsg.L2}
	if !anySafe.Matches(Verdict{Status: Safe, Level: rsg.L3}) {
		t.Error("level-agnostic safe must match any safe level")
	}
	if l2Safe.Matches(Verdict{Status: Safe, Level: rsg.L1}) {
		t.Error("safe@L2 must not match safe@L1")
	}
	if !l2Safe.Matches(Verdict{Status: Safe, Level: rsg.L2}) {
		t.Error("safe@L2 must match safe@L2")
	}
	if anySafe.Matches(Verdict{Status: Unknown}) {
		t.Error("safe must not match unknown")
	}
	if got := l2Safe.String(); got != "safe@L2" {
		t.Errorf("String() = %q", got)
	}
}

func TestSortAlarmsDeterministicAndDeduped(t *testing.T) {
	in := []Alarm{
		{Class: NullDeref, StmtID: 9, Detail: "b"},
		{Class: NullDeref, StmtID: 3, Detail: "z"},
		{Class: NullDeref, StmtID: 9, Detail: "a"},
		{Class: NullDeref, StmtID: 3, Detail: "z"},
	}
	out := sortAlarms(in)
	if len(out) != 3 {
		t.Fatalf("dedup kept %d alarms, want 3", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].StmtID > out[i].StmtID {
			t.Fatalf("alarms out of order: %+v", out)
		}
	}
}

func TestCheckerForCoversAllClasses(t *testing.T) {
	for _, c := range Classes() {
		ck := CheckerFor(c)
		if ck == nil {
			t.Fatalf("no checker for %s", c)
		}
		if ck.Class() != c {
			t.Errorf("CheckerFor(%s).Class() = %s", c, ck.Class())
		}
		if ck.Name() == "" {
			t.Errorf("%s checker has no name", c)
		}
	}
}
