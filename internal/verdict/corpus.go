package verdict

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cminic"
	"repro/internal/ir"
	"repro/internal/rsg"
)

// Expectation is one class's expected verdict, parsed from a corpus
// header.
type Expectation struct {
	Status Status
	// Level constrains a safe expectation to the exact level that must
	// settle it ("safe@L2"); 0 accepts any level ("safe").
	Level rsg.Level
}

// String renders the expectation in header syntax.
func (e Expectation) String() string {
	if e.Status == Safe && e.Level != 0 {
		return fmt.Sprintf("safe@%s", e.Level)
	}
	return e.Status.String()
}

// Matches reports whether a settled verdict satisfies the expectation.
func (e Expectation) Matches(v Verdict) bool {
	if v.Status != e.Status {
		return false
	}
	return e.Status != Safe || e.Level == 0 || e.Level == v.Level
}

// Expectations maps each class to its expected verdict.
type Expectations map[Class]Expectation

// ParseHeader extracts the expected-verdict header from a corpus task:
//
//	// VERDICT: null-deref=safe@L1 use-after-free=safe leak=unsafe
//
// Every class must be assigned exactly once; the verdict values are
// "safe", "safe@L1".."safe@L3", "unsafe" and "unknown". The header may
// appear on any comment line of the file. ok is false when no header is
// present.
func ParseHeader(src string) (Expectations, bool, error) {
	const marker = "VERDICT:"
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "//") {
			continue
		}
		body := strings.TrimSpace(strings.TrimPrefix(line, "//"))
		if !strings.HasPrefix(body, marker) {
			continue
		}
		exp := make(Expectations, numClasses)
		for _, field := range strings.Fields(strings.TrimPrefix(body, marker)) {
			k, val, found := strings.Cut(field, "=")
			if !found {
				return nil, true, fmt.Errorf("verdict header: %q is not class=verdict", field)
			}
			var class Class
			switch k {
			case NullDeref.String():
				class = NullDeref
			case UseAfterFree.String():
				class = UseAfterFree
			case Leak.String():
				class = Leak
			default:
				return nil, true, fmt.Errorf("verdict header: unknown class %q", k)
			}
			if _, dup := exp[class]; dup {
				return nil, true, fmt.Errorf("verdict header: class %q assigned twice", k)
			}
			e, err := parseExpectation(val)
			if err != nil {
				return nil, true, err
			}
			exp[class] = e
		}
		for _, c := range Classes() {
			if _, ok := exp[c]; !ok {
				return nil, true, fmt.Errorf("verdict header: class %q missing", c)
			}
		}
		return exp, true, nil
	}
	return nil, false, nil
}

func parseExpectation(val string) (Expectation, error) {
	status, level, _ := strings.Cut(val, "@")
	var e Expectation
	switch status {
	case "safe":
		e.Status = Safe
	case "unsafe":
		e.Status = Unsafe
	case "unknown":
		e.Status = Unknown
	default:
		return e, fmt.Errorf("verdict header: unknown verdict %q", val)
	}
	switch level {
	case "":
	case "L1":
		e.Level = rsg.L1
	case "L2":
		e.Level = rsg.L2
	case "L3":
		e.Level = rsg.L3
	default:
		return e, fmt.Errorf("verdict header: unknown level in %q", val)
	}
	if e.Level != 0 && e.Status != Safe {
		return e, fmt.Errorf("verdict header: %q — only safe verdicts carry a level", val)
	}
	return e, nil
}

// Compile parses and lowers a mini-C source.
func Compile(src string) (*ir.Program, error) {
	file, err := cminic.Parse(src)
	if err != nil {
		return nil, err
	}
	return ir.LowerMain(file)
}

// TaskResult is the outcome of one corpus task.
type TaskResult struct {
	Path   string
	Report *Report
	Expect Expectations
	// Mismatches lists the classes whose settled verdict contradicts
	// the expectation, one line each.
	Mismatches []string
}

// RunTask compiles one task source, checks it, and compares the
// verdicts against the expected-verdict header. An error means the
// task could not be evaluated (parse failure, missing header).
func RunTask(path, src string, opts Options) (*TaskResult, error) {
	exp, ok, err := ParseHeader(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !ok {
		return nil, fmt.Errorf("%s: no `// VERDICT:` header", path)
	}
	prog, err := Compile(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rep := Check(prog, opts)
	if rep.Err != nil {
		return nil, fmt.Errorf("%s: analysis failed: %w", path, rep.Err)
	}
	tr := &TaskResult{Path: path, Report: rep, Expect: exp}
	for _, c := range Classes() {
		v := rep.VerdictFor(c)
		if !exp[c].Matches(v) {
			tr.Mismatches = append(tr.Mismatches,
				fmt.Sprintf("%s: expected %s, got %s", c, exp[c], v))
		}
	}
	return tr, nil
}

// CorpusFiles lists the .c tasks of a corpus directory, sorted.
func CorpusFiles(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// RunCorpus sweeps a corpus directory and returns one result per task.
func RunCorpus(dir string, opts Options) ([]*TaskResult, error) {
	paths, err := CorpusFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .c tasks in %s", dir)
	}
	var out []*TaskResult
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		tr, err := RunTask(p, string(src), opts)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}
