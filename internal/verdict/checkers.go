package verdict

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/rsg"
)

// inGraphs enumerates the RSGs reaching a statement: the union of its
// predecessors' out-states, deduplicated by digest. This is the state
// *before* the statement's own transfer (and before any join with other
// paths' results), which is what a checker must inspect: a fault
// happens on the way into the statement, and faulting configurations
// never appear in its out-state.
func inGraphs(res *analysis.Result, s *ir.Stmt) []*rsg.Graph {
	var out []*rsg.Graph
	seen := make(map[rsg.Digest]struct{})
	for _, pred := range s.Preds {
		set := res.Out[pred]
		if set == nil {
			continue
		}
		for _, g := range set.Graphs() {
			d := g.Digest()
			if _, ok := seen[d]; ok {
				continue
			}
			seen[d] = struct{}{}
			out = append(out, g)
		}
	}
	return out
}

// NullSafe is the null-dereference checker: every statement that
// dereferences a pvar (x->sel = ..., ... = y->sel) must find that pvar
// bound in every reaching configuration. Pvar NULL-ness is exact per
// RSG (division separates the NULL branch of every load), so "unbound
// in some reaching graph" is precisely "NULL on some abstract path".
//
// Reading a selector that is NULL is well defined in the dialect (the
// load yields NULL), so a node without an outgoing sel link is not by
// itself an error — the error surfaces when the loaded pvar is later
// dereferenced, which this checker catches at that statement.
type NullSafe struct{}

// Class implements Checker.
func (NullSafe) Class() Class { return NullDeref }

// Name implements analysis.Goal.
func (NullSafe) Name() string { return "null-safe" }

// Met implements analysis.Goal.
func (c NullSafe) Met(res *analysis.Result) (bool, string) { return met(c, res) }

// Alarms implements Checker.
func (NullSafe) Alarms(res *analysis.Result) []Alarm {
	var alarms []Alarm
	for _, s := range res.Program.Stmts {
		var pvar string
		var sym rsg.Sym
		switch s.Op {
		case ir.OpSelNil, ir.OpSelCopy:
			pvar, sym = s.X, s.XSym
		case ir.OpLoad:
			pvar, sym = s.Y, s.YSym
		default:
			continue
		}
		for _, g := range inGraphs(res, s) {
			if g.PvarTargetSym(sym) == nil {
				alarms = append(alarms, Alarm{
					Class:  NullDeref,
					StmtID: s.ID,
					Line:   s.Line,
					Detail: fmt.Sprintf("%s may be NULL at `%s`", pvar, s),
				})
				break
			}
		}
	}
	return sortAlarms(alarms)
}

// FreeSafe is the use-after-free checker. It enforces the
// sole-reference criterion at every free site: in every reaching
// configuration, the freed node is referenced by the freed pvar only —
// no other pvar and no heap reference from another node. Pvar bindings
// are exact per RSG and the embedding maps every concrete reference to
// an abstract one, so the criterion guarantees no reference to the cell
// survives the free: no later statement can dereference it (no
// use-after-free through a stale configuration) and no later free can
// release it again (no double free). Self references die with the cell
// and are permitted.
//
// free(NULL) is a no-op and never alarms.
type FreeSafe struct{}

// Class implements Checker.
func (FreeSafe) Class() Class { return UseAfterFree }

// Name implements analysis.Goal.
func (FreeSafe) Name() string { return "free-safe" }

// Met implements analysis.Goal.
func (c FreeSafe) Met(res *analysis.Result) (bool, string) { return met(c, res) }

// Alarms implements Checker.
func (FreeSafe) Alarms(res *analysis.Result) []Alarm {
	var alarms []Alarm
	for _, s := range res.Program.Stmts {
		if s.Op != ir.OpFree {
			continue
		}
		for _, g := range inGraphs(res, s) {
			n := g.PvarTargetSym(s.XSym)
			if n == nil {
				continue // free(NULL)
			}
			if detail, ok := soleReference(g, n, s.X); !ok {
				alarms = append(alarms, Alarm{
					Class:  UseAfterFree,
					StmtID: s.ID,
					Line:   s.Line,
					Detail: fmt.Sprintf("`%s` may leave a dangling reference: %s", s, detail),
				})
				break
			}
		}
	}
	return sortAlarms(alarms)
}

// soleReference reports whether the node's only possible incoming
// reference is the pvar x (self links excluded: they die with the
// cell).
func soleReference(g *rsg.Graph, n *rsg.Node, x string) (string, bool) {
	for _, p := range g.PvarsOf(n.ID) {
		if p != x {
			return fmt.Sprintf("pvar %s still references the freed cell", p), false
		}
	}
	for _, l := range g.InLinks(n.ID) {
		if l.Src != n.ID {
			return fmt.Sprintf("heap reference %s may survive", l), false
		}
	}
	return "", true
}

// LeakFree is the memory-leak checker. A leak happens the moment a
// still-allocated cell becomes unreachable from the pvars, so the
// checker inspects every statement that kills a reference: pvar
// rebindings (x = NULL, x = y, x = y->sel, x = malloc), selector kills
// (x->sel = NULL, x->sel = y) and free(x) (which kills the freed cell's
// outgoing references; the freed cell itself is properly disposed, not
// leaked).
//
// Every concrete path that the kill can sever passes through the killed
// reference's target cell, and the suffix of any simple path survives
// the kill, so it suffices to prove that each *immediate* target of a
// killed reference is still reachable afterwards ("anchored", see
// anchoredNodes). Abstract garbage collection mirrors the concrete
// interpreter's GC, so the per-statement RSRSGs only cover fully
// reachable heaps and a statement-local check is complete.
//
// At the exit the checker additionally requires every node of every
// exit RSG to be reachable from the pvars — the paper-style
// leak-at-exit scan (near-vacuous here precisely because abstract GC
// removed unreachable nodes the moment they arose, which is where the
// kill-site alarms fire).
type LeakFree struct{}

// Class implements Checker.
func (LeakFree) Class() Class { return Leak }

// Name implements analysis.Goal.
func (LeakFree) Name() string { return "leak-free" }

// Met implements analysis.Goal.
func (c LeakFree) Met(res *analysis.Result) (bool, string) { return met(c, res) }

// Alarms implements Checker.
func (LeakFree) Alarms(res *analysis.Result) []Alarm {
	var alarms []Alarm
	for _, s := range res.Program.Stmts {
		spec, ok := killOf(s)
		if !ok {
			continue
		}
		for _, g := range inGraphs(res, s) {
			if detail, ok := killSafe(g, s, spec); !ok {
				alarms = append(alarms, Alarm{
					Class:  Leak,
					StmtID: s.ID,
					Line:   s.Line,
					Detail: fmt.Sprintf("`%s` may strand cells: %s", s, detail),
				})
				break
			}
		}
	}
	if set := res.ExitSet(); set != nil {
		for _, g := range set.Graphs() {
			reach := g.Reachable()
			for _, n := range g.Nodes() {
				if _, ok := reach[n.ID]; !ok {
					alarms = append(alarms, Alarm{
						Class:  Leak,
						StmtID: res.Program.Exit,
						Line:   res.Program.Stmt(res.Program.Exit).Line,
						Detail: fmt.Sprintf("exit configuration holds an unreachable %s cell", n.Type),
					})
				}
			}
		}
	}
	return sortAlarms(alarms)
}

// killKind classifies reference-killing statements.
type killKind int

const (
	killPvar killKind = iota // x rebound: old pvar reference dies
	killSel                  // x->sel overwritten: one heap reference dies
	killFree                 // free(x): pvar and all outgoing references die
)

// killOf classifies a statement's reference-kill effect.
func killOf(s *ir.Stmt) (killKind, bool) {
	switch s.Op {
	case ir.OpNil, ir.OpMalloc, ir.OpLoad:
		return killPvar, true
	case ir.OpCopy:
		if s.X == s.Y {
			return 0, false
		}
		return killPvar, true
	case ir.OpSelNil, ir.OpSelCopy:
		return killSel, true
	case ir.OpFree:
		return killFree, true
	}
	return 0, false
}

// killSafe checks one reference-killing statement against one reaching
// RSG: every immediate target of a killed reference must remain
// reachable (anchored) after the kill.
func killSafe(g *rsg.Graph, s *ir.Stmt, kind killKind) (string, bool) {
	xn := g.PvarTargetSym(s.XSym)
	if xn == nil {
		// x is NULL: nothing to kill (pvar kills and free(NULL)), or
		// the statement faults here and has no post-state (sel kills —
		// the null checker owns that report).
		return "", true
	}
	k := kill{graph: g, kind: kind, xn: xn.ID}
	var targets []rsg.NodeID
	switch kind {
	case killPvar:
		if s.Op == ir.OpLoad && g.PvarTargetSym(s.YSym) == nil {
			return "", true // the load faults; no post-state to leak in
		}
		k.killedPvar = s.XSym
		targets = []rsg.NodeID{xn.ID}
	case killSel:
		k.killedSel = s.SelSym
		targets = g.TargetsSym(xn.ID, s.SelSym)
	case killFree:
		k.killedPvar = s.XSym
		k.freed = true
		seen := map[rsg.NodeID]struct{}{xn.ID: {}}
		for _, l := range g.OutLinks(xn.ID) {
			if _, ok := seen[l.Dst]; !ok {
				seen[l.Dst] = struct{}{}
				targets = append(targets, l.Dst)
			}
		}
	}
	if len(targets) == 0 {
		return "", true
	}
	anchored := k.anchoredNodes(targets)
	for _, t := range targets {
		if !anchored[t] {
			return fmt.Sprintf("node %s may lose its last reference", g.Node(t)), false
		}
	}
	return "", true
}

// kill describes one statement's reference-kill effect on one graph.
type kill struct {
	graph      *rsg.Graph
	kind       killKind
	xn         rsg.NodeID // target of the killed/freed pvar x, or source of the killed selector
	killedPvar rsg.Sym    // pvar whose reference dies (killPvar, killFree)
	killedSel  rsg.Sym    // selector whose reference from xn dies (killSel)
	freed      bool       // xn's cell is deallocated (killFree)
}

// anchoredNodes computes the set of nodes whose every represented cell
// is definitely still reachable from the pvars after the kill, as a
// least fixed point over definite evidence:
//
//   - Nodes outside the may-reach cone of the kill never lose a path:
//     all their concrete access paths avoid the killed references
//     (any path using a killed reference immediately enters the cone).
//   - A singleton referenced by a surviving pvar is anchored.
//   - A singleton with a surviving definite link from an anchored
//     source is anchored.
//   - A node with a definite SELIN selector is anchored when every
//     possible source of that selector is anchored and none of the
//     selector's references died (each represented cell keeps at least
//     one reference from a reachable cell).
//
// The freed node never anchors anything: its outgoing references die
// with the cell. Starting from "not anchored" makes circular
// justification (garbage cycles) fail, which is exactly the
// conservative direction.
func (k *kill) anchoredNodes(entries []rsg.NodeID) map[rsg.NodeID]bool {
	g := k.graph

	// May-reach cone of the killed references.
	cone := make(map[rsg.NodeID]bool)
	stack := append([]rsg.NodeID(nil), entries...)
	if k.freed {
		stack = append(stack, k.xn)
	}
	for _, id := range stack {
		cone[id] = true
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, l := range g.OutLinks(id) {
			if !cone[l.Dst] {
				cone[l.Dst] = true
				stack = append(stack, l.Dst)
			}
		}
	}

	anchored := make(map[rsg.NodeID]bool, g.NumNodes())
	for _, n := range g.Nodes() {
		if !cone[n.ID] && !(k.freed && n.ID == k.xn) {
			anchored[n.ID] = true
		}
	}

	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if anchored[n.ID] || (k.freed && n.ID == k.xn) {
				continue
			}
			if k.nodeAnchored(n, anchored) {
				anchored[n.ID] = true
				changed = true
			}
		}
	}
	return anchored
}

// nodeAnchored evaluates the evidence rules for one node against the
// current anchored set.
func (k *kill) nodeAnchored(n *rsg.Node, anchored map[rsg.NodeID]bool) bool {
	g := k.graph
	if n.Singleton {
		for _, p := range g.PvarsOf(n.ID) {
			if rsg.PvarSym(p) != k.killedPvar {
				return true
			}
		}
		for _, l := range g.InLinks(n.ID) {
			src := l.Src
			if !anchored[src] || (k.freed && src == k.xn) {
				continue
			}
			sel := rsg.SelSym(l.Sel)
			if k.kind == killSel && src == k.xn && sel == k.killedSel {
				continue
			}
			if g.DefiniteLinkSym(src, sel, n.ID) {
				return true
			}
		}
	}
	var ok bool
	n.SelIn.EachSym(func(sel rsg.Sym) {
		if ok {
			return
		}
		if k.kind == killSel && sel == k.killedSel && k.sourcedFromXn(n.ID, sel) {
			return // the killed reference may have been a cell's only one
		}
		srcs := k.graph.SourcesSym(n.ID, sel)
		if len(srcs) == 0 {
			return
		}
		for _, m := range srcs {
			if !anchored[m] || (k.freed && m == k.xn) {
				return
			}
		}
		ok = true
	})
	return ok
}

// sourcedFromXn reports whether xn is among the possible sel sources of
// the node.
func (k *kill) sourcedFromXn(id rsg.NodeID, sel rsg.Sym) bool {
	for _, m := range k.graph.SourcesSym(id, sel) {
		if m == k.xn {
			return true
		}
	}
	return false
}

// met adapts a Checker's alarm enumeration to the Goal criterion.
func met(c Checker, res *analysis.Result) (bool, string) {
	alarms := c.Alarms(res)
	if len(alarms) == 0 {
		return true, "no alarms"
	}
	return false, alarms[0].String()
}
