package verdict

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/concrete"
	"repro/internal/rsg"
)

const corpusDir = "testdata/corpus"

// corpusResults runs the whole corpus once and caches the results for
// the package's tests.
var corpusResults = func() func(t *testing.T) []*TaskResult {
	var cached []*TaskResult
	return func(t *testing.T) []*TaskResult {
		t.Helper()
		if cached == nil {
			var err error
			cached, err = RunCorpus(corpusDir, Options{})
			if err != nil {
				t.Fatalf("corpus: %v", err)
			}
		}
		return cached
	}
}()

// TestCorpusVerdictsMatch asserts every task settles exactly the
// verdicts its header declares — statuses and, where the header pins
// one, the settling level.
func TestCorpusVerdictsMatch(t *testing.T) {
	results := corpusResults(t)
	if len(results) < 20 {
		t.Fatalf("corpus has %d tasks, want >= 20", len(results))
	}
	for _, tr := range results {
		for _, m := range tr.Mismatches {
			t.Errorf("%s: %s", filepath.Base(tr.Path), m)
		}
	}
}

// TestCorpusProvesEscalation requires, per checker class, at least one
// task that is UNKNOWN at L1 but settles SAFE at L2 or L3 — the
// progressive escalation working per query, not just in aggregate.
func TestCorpusProvesEscalation(t *testing.T) {
	results := corpusResults(t)
	escalated := make(map[Class]string)
	for _, tr := range results {
		for _, c := range Classes() {
			v := tr.Report.VerdictFor(c)
			if v.Status == Safe && v.Level > rsg.L1 {
				escalated[c] = filepath.Base(tr.Path)
			}
		}
	}
	for _, c := range Classes() {
		if task, ok := escalated[c]; !ok {
			t.Errorf("no corpus task escalates the %s checker past L1", c)
		} else {
			t.Logf("%s escalation: %s", c, task)
		}
	}
}

// TestCorpusCrossValidation replays every task on the concrete
// interpreter over many seeds and checks the verdicts against the
// observed executions:
//
//   - a checker must never claim SAFE for a class some execution
//     violates (soundness of the safe verdicts), and
//   - every UNSAFE expectation must be backed by at least one observed
//     violation (the witness is real, not a checker artifact).
func TestCorpusCrossValidation(t *testing.T) {
	const seeds = 200
	results := corpusResults(t)
	for _, tr := range results {
		name := filepath.Base(tr.Path)
		src, err := os.ReadFile(tr.Path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(string(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		observed := make(map[Class]bool)
		for seed := int64(1); seed <= seeds; seed++ {
			trace, err := concrete.RunSeed(prog, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if c, ok := faultClass(trace.Fault); ok {
				observed[c] = true
			}
			if len(trace.Leaks) > 0 {
				observed[Leak] = true
			}
		}
		for _, c := range Classes() {
			v := tr.Report.VerdictFor(c)
			if v.Status == Safe && observed[c] {
				t.Errorf("%s: checker claims %s %s but the interpreter violates it", name, c, v)
			}
			if tr.Expect[c].Status == Unsafe && !observed[c] {
				t.Errorf("%s: expected %s unsafe but no execution in %d seeds violates it", name, c, seeds)
			}
			if v.Status == Unsafe && v.Witness == nil {
				t.Errorf("%s: unsafe %s verdict without a witness", name, c)
			}
		}
	}
}

// faultClass re-exports classOfFault for the cross-validation loop.
func faultClass(f concrete.Fault) (Class, bool) { return classOfFault(f) }
