// Package ir defines the normalized intermediate representation the
// shape analyzer executes symbolically: a statement-level control-flow
// graph whose pointer statements are exactly the paper's six simple
// instructions (Sect. 2), produced by lowering the mini-C AST with
// temporary pvars.
package ir

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rsg"
)

// Op enumerates IR statement kinds.
type Op int

// The six simple pointer statements of the paper, plus the control
// operations the engine needs.
const (
	// OpNil is "x = NULL".
	OpNil Op = iota
	// OpMalloc is "x = malloc(sizeof(struct Type))".
	OpMalloc
	// OpCopy is "x = y".
	OpCopy
	// OpSelNil is "x->sel = NULL".
	OpSelNil
	// OpSelCopy is "x->sel = y".
	OpSelCopy
	// OpLoad is "x = y->sel".
	OpLoad
	// OpFree is "free(x)": the cell x references is deallocated, its
	// outgoing references die with it, and x itself becomes NULL (the
	// dialect nullifies the freed pvar so the abstract and concrete
	// semantics agree on the pvar layer; aliases of x keep their now
	// dangling bindings).
	OpFree
	// OpNoop has no pointer effect (scalar statements, labels).
	OpNoop
	// OpAssumeNull filters configurations where X is non-NULL (the true
	// edge of an `x == NULL` condition).
	OpAssumeNull
	// OpAssumeNonNull filters configurations where X is NULL.
	OpAssumeNonNull
	// OpEntry is the unique function entry.
	OpEntry
	// OpExit is the unique function exit.
	OpExit
)

// String returns the op mnemonic.
func (o Op) String() string {
	switch o {
	case OpNil:
		return "nil"
	case OpMalloc:
		return "malloc"
	case OpCopy:
		return "copy"
	case OpSelNil:
		return "selnil"
	case OpSelCopy:
		return "selcopy"
	case OpLoad:
		return "load"
	case OpFree:
		return "free"
	case OpNoop:
		return "noop"
	case OpAssumeNull:
		return "assume-null"
	case OpAssumeNonNull:
		return "assume-nonnull"
	case OpEntry:
		return "entry"
	case OpExit:
		return "exit"
	}
	return "?"
}

// Stmt is one IR statement, a node of the CFG.
type Stmt struct {
	ID   int
	Op   Op
	X    string // destination pvar / dereferenced pvar
	Y    string // source pvar (copy, selcopy, load)
	Sel  string // selector (selnil, selcopy, load)
	Type string // allocated struct type (malloc)
	Line int    // source line
	// XSym, YSym, SelSym and TypeSym are the interned forms of X, Y,
	// Sel and Type, filled in by Program.ResolveSyms so the per-visit
	// transfer functions address the graph by symbol instead of
	// hashing strings.
	XSym    rsg.Sym
	YSym    rsg.Sym
	SelSym  rsg.Sym
	TypeSym rsg.Sym
	// SelSyms holds, for OpFree, the interned selectors of the freed
	// struct type (declaration order): the abstract semantics unlinks
	// every outgoing reference of the freed cell.
	SelSyms []rsg.Sym
	// Succs are the IDs of the successor statements.
	Succs []int
	// Preds are the IDs of the predecessor statements (computed).
	Preds []int
	// Loops lists the IDs of the loops whose body contains this
	// statement, innermost last.
	Loops []int
}

// String renders the statement in C-like syntax.
func (s *Stmt) String() string {
	switch s.Op {
	case OpNil:
		return fmt.Sprintf("%s = NULL", s.X)
	case OpMalloc:
		return fmt.Sprintf("%s = malloc(struct %s)", s.X, s.Type)
	case OpCopy:
		return fmt.Sprintf("%s = %s", s.X, s.Y)
	case OpSelNil:
		return fmt.Sprintf("%s->%s = NULL", s.X, s.Sel)
	case OpSelCopy:
		return fmt.Sprintf("%s->%s = %s", s.X, s.Sel, s.Y)
	case OpLoad:
		return fmt.Sprintf("%s = %s->%s", s.X, s.Y, s.Sel)
	case OpFree:
		return fmt.Sprintf("free(%s)", s.X)
	case OpAssumeNull:
		return fmt.Sprintf("assume %s == NULL", s.X)
	case OpAssumeNonNull:
		return fmt.Sprintf("assume %s != NULL", s.X)
	default:
		return s.Op.String()
	}
}

// Loop describes one loop of the CFG.
type Loop struct {
	ID int
	// Header is the statement ID the back edge returns to.
	Header int
	// Body is the set of statement IDs inside the loop (condition
	// evaluation, body and post statements).
	Body map[int]struct{}
	// Induction is the set of induction pvars of this loop (filled by
	// the induction package).
	Induction map[string]struct{}
	// Parent is the enclosing loop's ID, or -1.
	Parent int
	// Line is the source line of the loop statement.
	Line int
}

// Program is a lowered function: the CFG plus type and loop metadata.
type Program struct {
	Name  string
	Stmts []*Stmt
	Entry int
	Exit  int
	Loops []*Loop
	// PtrVars maps each pointer variable (including compiler
	// temporaries) to its pointee struct name.
	PtrVars map[string]string
	// Selectors maps each struct name to its pointer-field selectors.
	Selectors map[string][]string
	// Temps lists the compiler-generated temporary pvars.
	Temps []string
}

// Stmt returns the statement with the given ID.
func (p *Program) Stmt(id int) *Stmt { return p.Stmts[id] }

// ResolveSyms interns every name appearing in the program — pvars,
// selectors, struct types — and stamps each statement with the interned
// forms of its operands. Lowering calls it once per program; it is
// idempotent, and the engine re-runs it defensively so hand-built
// programs (tests, benchmarks) work too.
func (p *Program) ResolveSyms() {
	for v := range p.PtrVars {
		rsg.PvarSym(v)
	}
	for typ, sels := range p.Selectors {
		rsg.TypeSym(typ)
		for _, sel := range sels {
			rsg.SelSym(sel)
		}
	}
	for _, s := range p.Stmts {
		if s.X != "" {
			s.XSym = rsg.PvarSym(s.X)
		}
		if s.Y != "" {
			s.YSym = rsg.PvarSym(s.Y)
		}
		if s.Sel != "" {
			s.SelSym = rsg.SelSym(s.Sel)
		}
		if s.Type != "" {
			s.TypeSym = rsg.TypeSym(s.Type)
		}
		if s.Op == OpFree {
			sels := p.Selectors[s.Type]
			s.SelSyms = make([]rsg.Sym, len(sels))
			for i, sel := range sels {
				s.SelSyms[i] = rsg.SelSym(sel)
			}
		}
	}
}

// ComputePreds fills in the Preds lists from the Succs lists.
func (p *Program) ComputePreds() {
	for _, s := range p.Stmts {
		s.Preds = nil
	}
	for _, s := range p.Stmts {
		for _, succ := range s.Succs {
			p.Stmts[succ].Preds = append(p.Stmts[succ].Preds, s.ID)
		}
	}
	for _, s := range p.Stmts {
		sort.Ints(s.Preds)
	}
}

// LoopsExited returns the loops left by the edge from stmt u to stmt v:
// every loop containing u but not v, ordered innermost first.
func (p *Program) LoopsExited(u, v int) []*Loop {
	su, sv := p.Stmts[u], p.Stmts[v]
	in := make(map[int]struct{}, len(sv.Loops))
	for _, l := range sv.Loops {
		in[l] = struct{}{}
	}
	var out []*Loop
	for i := len(su.Loops) - 1; i >= 0; i-- {
		l := su.Loops[i]
		if _, ok := in[l]; !ok {
			out = append(out, p.Loops[l])
		}
	}
	return out
}

// InLoop reports whether the statement is inside any loop body.
func (p *Program) InLoop(id int) bool { return len(p.Stmts[id].Loops) > 0 }

// InductionFor returns the union of the induction pvar sets of every
// loop enclosing the statement.
func (p *Program) InductionFor(id int) map[string]struct{} {
	out := make(map[string]struct{})
	for _, l := range p.Stmts[id].Loops {
		for pv := range p.Loops[l].Induction {
			out[pv] = struct{}{}
		}
	}
	return out
}

// String renders the program listing with successor edges.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (entry=%d exit=%d)\n", p.Name, p.Entry, p.Exit)
	for _, s := range p.Stmts {
		fmt.Fprintf(&b, "%4d: %-30s -> %v", s.ID, s.String(), s.Succs)
		if len(s.Loops) > 0 {
			fmt.Fprintf(&b, "  loops=%v", s.Loops)
		}
		b.WriteString("\n")
	}
	for _, l := range p.Loops {
		ids := make([]int, 0, len(l.Body))
		for id := range l.Body {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Fprintf(&b, "loop %d: header=%d body=%v\n", l.ID, l.Header, ids)
	}
	return b.String()
}
