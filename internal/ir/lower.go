package ir

import (
	"fmt"
	"sort"

	"repro/internal/cminic"
)

// Lower normalizes one parsed function into the six-statement IR and
// builds its control-flow graph. Complex pointer statements are
// decomposed with typed compiler temporaries ("more complex pointer
// instructions can be built upon these simple ones and temporal
// variables", Sect. 2 of the paper).
func Lower(file *cminic.File, fn *cminic.FuncDecl) (*Program, error) {
	l := &lowerer{
		file: file,
		prog: &Program{
			Name:      fn.Name,
			PtrVars:   make(map[string]string),
			Selectors: make(map[string][]string),
		},
		temps: make(map[string]string),
	}
	for name, typ := range file.PtrVars {
		if _, known := file.Types[typ]; !known {
			return nil, fmt.Errorf("%s: pointer %s declared with undefined struct %s",
				fn.Name, name, typ)
		}
		l.prog.PtrVars[name] = typ
	}
	for _, s := range file.Structs {
		l.prog.Selectors[s.Name] = s.Selectors()
	}

	entry := l.emit(&Stmt{Op: OpEntry, Line: fn.Line})
	l.prog.Entry = entry
	l.pending = []int{entry}

	l.lowerBlock(fn.Body)

	exit := l.add(&Stmt{Op: OpExit, Line: fn.Line})
	for _, p := range append(l.pending, l.returns...) {
		l.edge(p, exit)
	}
	l.prog.Exit = exit

	if l.err != nil {
		return nil, l.err
	}
	l.prog.ComputePreds()
	l.prog.ResolveSyms()
	return l.prog, nil
}

// LowerMain parses nothing; it lowers the function called "main", or
// the only function when there is exactly one.
func LowerMain(file *cminic.File) (*Program, error) {
	if len(file.Funcs) == 1 {
		return Lower(file, file.Funcs[0])
	}
	for _, fn := range file.Funcs {
		if fn.Name == "main" {
			return Lower(file, fn)
		}
	}
	return nil, fmt.Errorf("ir: %d functions and none named main", len(file.Funcs))
}

type loopFrame struct {
	loop      *Loop
	continues []int // pending edges to the continue target
	breaks    []int // pending edges past the loop
	start     int   // first statement index belonging to the loop
}

type lowerer struct {
	file    *cminic.File
	prog    *Program
	pending []int // statements whose successor is the next emitted one
	returns []int
	loops   []*loopFrame
	temps   map[string]string // temp name -> pointee type (reuse pool)
	live    map[string]bool   // temps currently holding a value
	tempSeq int
	err     error
}

func (l *lowerer) fail(line int, format string, args ...interface{}) {
	if l.err == nil {
		l.err = fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
	}
}

// add appends a statement without wiring the frontier.
func (l *lowerer) add(s *Stmt) int {
	s.ID = len(l.prog.Stmts)
	l.prog.Stmts = append(l.prog.Stmts, s)
	return s.ID
}

// emit appends a statement and attaches every pending predecessor.
func (l *lowerer) emit(s *Stmt) int {
	id := l.add(s)
	for _, p := range l.pending {
		l.edge(p, id)
	}
	l.pending = []int{id}
	return id
}

func (l *lowerer) edge(from, to int) {
	s := l.prog.Stmts[from]
	for _, x := range s.Succs {
		if x == to {
			return
		}
	}
	s.Succs = append(s.Succs, to)
	sort.Ints(s.Succs)
}

// newTemp returns a temporary pvar of the given pointee type, reusing a
// pool slot that is not currently live (several temps of one type can
// be live at once inside a single lowered statement, e.g. when both
// sides of `a->f->g = b->h` need a prefix evaluation).
func (l *lowerer) newTemp(typ string) string {
	if l.live == nil {
		l.live = make(map[string]bool)
	}
	var names []string
	for name, t := range l.temps {
		if t == typ && !l.live[name] {
			names = append(names, name)
		}
	}
	if len(names) > 0 {
		sort.Strings(names) // deterministic reuse
		l.live[names[0]] = true
		return names[0]
	}
	l.tempSeq++
	name := fmt.Sprintf("__t%d_%s", l.tempSeq, typ)
	l.temps[name] = typ
	l.live[name] = true
	l.prog.PtrVars[name] = typ
	l.prog.Temps = append(l.prog.Temps, name)
	return name
}

// releaseTemp returns a temp to the pool after its OpNil cleanup.
func (l *lowerer) releaseTemp(name string) {
	if l.live != nil {
		l.live[name] = false
	}
}

func (l *lowerer) lowerBlock(b *cminic.Block) {
	for _, s := range b.Stmts {
		if l.err != nil {
			return
		}
		l.lowerStmt(s)
	}
}

func (l *lowerer) lowerStmt(s cminic.Stmt) {
	switch st := s.(type) {
	case *cminic.Block:
		l.lowerBlock(st)
	case *cminic.EmptyStmt:
		// No statement emitted; the frontier passes through.
	case *cminic.DeclStmt:
		l.lowerDecl(st)
	case *cminic.AssignStmt:
		l.lowerAssign(st)
	case *cminic.FreeStmt:
		l.lowerFree(st)
	case *cminic.IfStmt:
		l.lowerIf(st)
	case *cminic.WhileStmt:
		l.lowerWhile(st)
	case *cminic.ForStmt:
		l.lowerFor(st)
	case *cminic.BreakStmt:
		if len(l.loops) == 0 {
			l.fail(st.Line, "break outside loop")
			return
		}
		f := l.loops[len(l.loops)-1]
		f.breaks = concat(f.breaks, l.pending)
		l.pending = nil
	case *cminic.ContinueStmt:
		if len(l.loops) == 0 {
			l.fail(st.Line, "continue outside loop")
			return
		}
		f := l.loops[len(l.loops)-1]
		f.continues = concat(f.continues, l.pending)
		l.pending = nil
	case *cminic.ReturnStmt:
		l.returns = concat(l.returns, l.pending)
		l.pending = nil
	default:
		l.fail(0, "unknown statement %T", s)
	}
}

func (l *lowerer) lowerDecl(d *cminic.DeclStmt) {
	if d.PointsTo == "" {
		if d.Init != nil {
			l.emit(&Stmt{Op: OpNoop, Line: d.Line})
		}
		return
	}
	// Pointer locals start undefined; the analysis models them as NULL
	// until the first assignment.
	l.emit(&Stmt{Op: OpNil, X: d.Name, Line: d.Line})
	if d.Init != nil {
		l.lowerPtrAssign(&cminic.Path{Base: d.Name, Line: d.Line}, d.Init, d.Line)
	}
}

func (l *lowerer) lowerAssign(a *cminic.AssignStmt) {
	// Validate the access path even for scalar stores: an unknown field
	// is a frontend error either way.
	scalar := l.isScalarPath(a.LHS, a.Line)
	if a.IsScalar || scalar {
		l.emit(&Stmt{Op: OpNoop, Line: a.Line})
		return
	}
	l.lowerPtrAssign(a.LHS, a.RHS, a.Line)
}

// lowerFree lowers `free(path)`: the path is evaluated into a pvar
// (loading through a temp when it has selectors) and an OpFree is
// emitted for it. The freed struct type rides on the statement so the
// abstract semantics knows which outgoing selectors die with the cell.
func (l *lowerer) lowerFree(st *cminic.FreeStmt) {
	if _, ok := l.prog.PtrVars[st.Arg.Base]; !ok {
		l.fail(st.Line, "free of %s: not a declared struct pointer", st.Arg.Base)
		return
	}
	if l.isScalarPath(st.Arg, st.Line) {
		l.fail(st.Line, "free of a scalar path")
		return
	}
	var cleanup []string
	x := l.evalPathValue(st.Arg, st.Line, &cleanup)
	if l.err != nil {
		return
	}
	l.emit(&Stmt{Op: OpFree, X: x, Type: l.prog.PtrVars[x], Line: st.Line})
	for _, t := range cleanup {
		l.emit(&Stmt{Op: OpNil, X: t, Line: st.Line})
		l.releaseTemp(t)
	}
}

// isScalarPath reports whether the path denotes scalar data (so the
// assignment has no pointer effect). A selector chain through declared
// structs must name existing fields; accessing an unknown field is a
// frontend error, not a silent scalar.
func (l *lowerer) isScalarPath(p *cminic.Path, line int) bool {
	typ, ok := l.prog.PtrVars[p.Base]
	if !ok {
		return true // scalar local: any member access is opaque data
	}
	for i, sel := range p.Sels {
		decl := l.file.Types[typ]
		if decl == nil {
			l.fail(line, "unknown struct %s", typ)
			return true
		}
		f := decl.Selector(sel)
		if f == nil {
			l.fail(line, "struct %s has no field %s", typ, sel)
			return true
		}
		if f.PointsTo == "" {
			// Scalar field: must be the last selector.
			if i != len(p.Sels)-1 {
				l.fail(line, "struct %s field %s is not a struct pointer", typ, sel)
			}
			return true
		}
		typ = f.PointsTo
	}
	return false
}

// evalPathPrefix lowers the access of all but the last selector of a
// path into a pvar, returning (pvar, lastSel). Emits load statements
// through a temp when needed and records it for cleanup.
func (l *lowerer) evalPathPrefix(p *cminic.Path, line int, cleanup *[]string) (string, string) {
	if len(p.Sels) == 0 {
		return p.Base, ""
	}
	base := p.Base
	typ, ok := l.prog.PtrVars[base]
	if !ok {
		l.fail(line, "%s is not a declared struct pointer", base)
		return base, ""
	}
	cur := base
	for i := 0; i < len(p.Sels)-1; i++ {
		sel := p.Sels[i]
		next, ok := l.selectorType(typ, sel, line)
		if !ok {
			return cur, ""
		}
		t := l.newTemp(next)
		l.emit(&Stmt{Op: OpLoad, X: t, Y: cur, Sel: sel, Line: line})
		*cleanup = append(*cleanup, t)
		cur, typ = t, next
	}
	last := p.Sels[len(p.Sels)-1]
	if _, ok := l.selectorType(typ, last, line); !ok {
		return cur, ""
	}
	return cur, last
}

// evalPathValue lowers a full path used as a value into a pvar.
func (l *lowerer) evalPathValue(p *cminic.Path, line int, cleanup *[]string) string {
	if len(p.Sels) == 0 {
		return p.Base
	}
	base, lastSel := l.evalPathPrefix(p, line, cleanup)
	if l.err != nil {
		return base
	}
	typ := l.prog.PtrVars[base]
	next, _ := l.selectorType(typ, lastSel, line)
	t := l.newTemp(next)
	l.emit(&Stmt{Op: OpLoad, X: t, Y: base, Sel: lastSel, Line: line})
	*cleanup = append(*cleanup, t)
	return t
}

func (l *lowerer) selectorType(typ, sel string, line int) (string, bool) {
	decl := l.file.Types[typ]
	if decl == nil {
		l.fail(line, "unknown struct %s", typ)
		return "", false
	}
	f := decl.Selector(sel)
	if f == nil {
		l.fail(line, "struct %s has no field %s", typ, sel)
		return "", false
	}
	if f.PointsTo == "" {
		l.fail(line, "struct %s field %s is not a struct pointer", typ, sel)
		return "", false
	}
	return f.PointsTo, true
}

func (l *lowerer) lowerPtrAssign(lhs *cminic.Path, rhs cminic.Expr, line int) {
	var cleanup []string
	defer func() {
		for _, t := range cleanup {
			l.emit(&Stmt{Op: OpNil, X: t, Line: line})
			l.releaseTemp(t)
		}
	}()

	if len(lhs.Sels) == 0 {
		x := lhs.Base
		switch r := rhs.(type) {
		case *cminic.NullExpr:
			l.emit(&Stmt{Op: OpNil, X: x, Line: line})
		case *cminic.MallocExpr:
			l.checkMallocType(lhs, r, line)
			l.emit(&Stmt{Op: OpMalloc, X: x, Type: r.Type, Line: line})
		case *cminic.PathExpr:
			if len(r.Path.Sels) == 0 {
				l.emit(&Stmt{Op: OpCopy, X: x, Y: r.Path.Base, Line: line})
				return
			}
			base, lastSel := l.evalPathPrefix(r.Path, line, &cleanup)
			if l.err != nil {
				return
			}
			l.emit(&Stmt{Op: OpLoad, X: x, Y: base, Sel: lastSel, Line: line})
		default:
			l.fail(line, "unsupported pointer right-hand side %T", rhs)
		}
		return
	}

	// LHS with selectors: evaluate the prefix, then store.
	base, lastSel := l.evalPathPrefix(lhs, line, &cleanup)
	if l.err != nil {
		return
	}
	switch r := rhs.(type) {
	case *cminic.NullExpr:
		l.emit(&Stmt{Op: OpSelNil, X: base, Sel: lastSel, Line: line})
	case *cminic.MallocExpr:
		t := l.newTemp(r.Type)
		l.emit(&Stmt{Op: OpMalloc, X: t, Type: r.Type, Line: line})
		l.emit(&Stmt{Op: OpSelNil, X: base, Sel: lastSel, Line: line})
		l.emit(&Stmt{Op: OpSelCopy, X: base, Sel: lastSel, Y: t, Line: line})
		cleanup = append(cleanup, t)
	case *cminic.PathExpr:
		y := l.evalPathValue(r.Path, line, &cleanup)
		if l.err != nil {
			return
		}
		l.emit(&Stmt{Op: OpSelNil, X: base, Sel: lastSel, Line: line})
		l.emit(&Stmt{Op: OpSelCopy, X: base, Sel: lastSel, Y: y, Line: line})
	default:
		l.fail(line, "unsupported pointer right-hand side %T", rhs)
	}
}

func (l *lowerer) checkMallocType(lhs *cminic.Path, m *cminic.MallocExpr, line int) {
	want, ok := l.file.PathType(l.prog.PtrVars, lhs)
	if ok && want != m.Type {
		l.fail(line, "malloc of struct %s assigned to pointer to struct %s", m.Type, want)
	}
	if _, known := l.file.Types[m.Type]; !known {
		l.fail(line, "malloc of unknown struct %s", m.Type)
	}
}

// lowerCond lowers a condition and returns the frontiers of the true
// and false branches.
func (l *lowerer) lowerCond(cond cminic.Expr, line int) (truePend, falsePend []int) {
	switch c := cond.(type) {
	case *cminic.CmpNullExpr:
		var cleanup []string
		v := c.Path.Base
		if len(c.Path.Sels) > 0 {
			v = l.evalPathValue(c.Path, line, &cleanup)
			if l.err != nil {
				return l.pending, l.pending
			}
		}
		branch := l.pending
		// True edge.
		l.pending = branch
		opT, opF := OpAssumeNonNull, OpAssumeNull
		if c.Equal { // (p == NULL)
			opT, opF = OpAssumeNull, OpAssumeNonNull
		}
		l.emit(&Stmt{Op: opT, X: v, Line: line})
		l.cleanupTemps(cleanup, line)
		truePend = l.pending
		// False edge.
		l.pending = branch
		l.emit(&Stmt{Op: opF, X: v, Line: line})
		l.cleanupTemps(cleanup, line)
		falsePend = l.pending
		return truePend, falsePend
	case nil:
		// `for (;;)`: always true.
		return l.pending, nil
	default:
		// Opaque condition (scalar comparisons, pointer-pointer
		// comparisons): both branches are possible from here. The two
		// frontiers are independent copies — callers append to them.
		return concat(l.pending, nil), concat(l.pending, nil)
	}
}

// concat returns a freshly allocated concatenation; frontier slices are
// shared across branches, so in-place appends would alias.
func concat(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func (l *lowerer) cleanupTemps(temps []string, line int) {
	for _, t := range temps {
		l.emit(&Stmt{Op: OpNil, X: t, Line: line})
		l.releaseTemp(t)
	}
}

func (l *lowerer) lowerIf(s *cminic.IfStmt) {
	tp, fp := l.lowerCond(s.Cond, s.Line)
	l.pending = tp
	l.lowerStmt(s.Then)
	thenEnd := l.pending
	l.pending = fp
	if s.Else != nil {
		l.lowerStmt(s.Else)
	}
	l.pending = concat(thenEnd, l.pending)
}

func (l *lowerer) beginLoop(line int) *loopFrame {
	loop := &Loop{
		ID:        len(l.prog.Loops),
		Body:      make(map[int]struct{}),
		Induction: make(map[string]struct{}),
		Parent:    -1,
		Line:      line,
	}
	if len(l.loops) > 0 {
		loop.Parent = l.loops[len(l.loops)-1].loop.ID
	}
	l.prog.Loops = append(l.prog.Loops, loop)
	f := &loopFrame{loop: loop}
	l.loops = append(l.loops, f)
	return f
}

func (l *lowerer) endLoop(f *loopFrame, end int) {
	l.loops = l.loops[:len(l.loops)-1]
	for id := f.start; id < end; id++ {
		f.loop.Body[id] = struct{}{}
		l.prog.Stmts[id].Loops = append(l.prog.Stmts[id].Loops, f.loop.ID)
	}
	// Loop ID lists must be outermost-first.
	for id := f.start; id < end; id++ {
		s := l.prog.Stmts[id]
		sort.Slice(s.Loops, func(i, j int) bool { return s.Loops[i] < s.Loops[j] })
	}
}

func (l *lowerer) lowerWhile(s *cminic.WhileStmt) {
	f := l.beginLoop(s.Line)
	header := l.emit(&Stmt{Op: OpNoop, Line: s.Line})
	f.loop.Header = header
	f.start = header

	if s.DoWhile {
		l.lowerStmt(s.Body)
		l.pending = concat(l.pending, f.continues)
		f.continues = nil
		tp, fp := l.lowerCond(s.Cond, s.Line)
		for _, t := range tp {
			l.edge(t, header)
		}
		l.pending = concat(fp, f.breaks)
	} else {
		tp, fp := l.lowerCond(s.Cond, s.Line)
		l.pending = tp
		l.lowerStmt(s.Body)
		l.pending = concat(l.pending, f.continues)
		for _, p := range l.pending {
			l.edge(p, header)
		}
		l.pending = concat(fp, f.breaks)
	}
	l.endLoop(f, len(l.prog.Stmts))
}

func (l *lowerer) lowerFor(s *cminic.ForStmt) {
	if s.Init != nil {
		l.lowerStmt(s.Init)
	}
	f := l.beginLoop(s.Line)
	header := l.emit(&Stmt{Op: OpNoop, Line: s.Line})
	f.loop.Header = header
	f.start = header

	tp, fp := l.lowerCond(s.Cond, s.Line)
	l.pending = tp
	l.lowerStmt(s.Body)
	l.pending = concat(l.pending, f.continues)
	if s.Post != nil {
		l.lowerStmt(s.Post)
	}
	for _, p := range l.pending {
		l.edge(p, header)
	}
	l.pending = concat(fp, f.breaks)
	l.endLoop(f, len(l.prog.Stmts))
}
