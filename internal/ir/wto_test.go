package ir

import "testing"

// cfg hand-builds a Program skeleton from an adjacency list; only the
// fields WTO reads (Stmts' Succs and Entry) are populated.
func cfg(entry int, succs [][]int) *Program {
	p := &Program{Entry: entry}
	for id := range succs {
		p.Stmts = append(p.Stmts, &Stmt{ID: id, Succs: succs[id]})
	}
	return p
}

// checkWTO verifies the structural invariants of a weak topological
// order: Order is a permutation of all statement IDs with Pos its
// inverse, components are properly nested contiguous ranges headed by
// their first element, Encl/Depth agree with the component ranges, and
// every backward-or-stationary edge targets the head of a component
// containing its source — the property the recursive iteration
// strategy rests on.
func checkWTO(t *testing.T, p *Program, w *WTO) {
	t.Helper()
	n := len(p.Stmts)
	if len(w.Order) != n || len(w.Pos) != n {
		t.Fatalf("order covers %d of %d statements", len(w.Order), n)
	}
	for pos, id := range w.Order {
		if w.Pos[id] != pos {
			t.Fatalf("Pos[%d]=%d, want %d", id, w.Pos[id], pos)
		}
	}
	for c, comp := range w.Comps {
		if comp.Start >= comp.End || comp.End > n {
			t.Fatalf("component %d has range [%d,%d)", c, comp.Start, comp.End)
		}
		if w.Order[comp.Start] != comp.Head {
			t.Fatalf("component %d headed by %d but starts with %d", c, comp.Head, w.Order[comp.Start])
		}
		if w.HeadComp[comp.Start] != c {
			t.Fatalf("HeadComp[%d]=%d, want %d", comp.Start, w.HeadComp[comp.Start], c)
		}
		if comp.Parent >= 0 {
			par := w.Comps[comp.Parent]
			if comp.Start <= par.Start || comp.End > par.End {
				t.Fatalf("component %d [%d,%d) not nested in parent %d [%d,%d)",
					c, comp.Start, comp.End, comp.Parent, par.Start, par.End)
			}
		}
	}
	for pos := range w.Order {
		depth := 0
		for c := w.Encl[pos]; c >= 0; c = w.Comps[c].Parent {
			if !w.InComponent(c, pos) {
				t.Fatalf("pos %d has Encl chain component %d [%d,%d) not containing it",
					pos, c, w.Comps[c].Start, w.Comps[c].End)
			}
			depth++
		}
		// A head sits at its component's depth; its Encl chain includes
		// its own component, so the chain is one longer.
		want := depth
		if w.HeadComp[pos] >= 0 {
			want--
		}
		if w.Depth[pos] != want {
			t.Fatalf("Depth[%d]=%d, want %d", pos, w.Depth[pos], want)
		}
	}
	for _, s := range p.Stmts {
		for _, succ := range s.Succs {
			u, v := w.Pos[s.ID], w.Pos[succ]
			if v > u {
				continue
			}
			c := w.HeadComp[v]
			if c < 0 {
				t.Fatalf("backward edge %d->%d targets non-head (pos %d -> %d)", s.ID, succ, u, v)
			}
			if !w.InComponent(c, u) {
				t.Fatalf("backward edge %d->%d leaves its target's component [%d,%d)",
					s.ID, succ, w.Comps[c].Start, w.Comps[c].End)
			}
		}
	}
}

func TestWTOStraightLine(t *testing.T) {
	p := cfg(0, [][]int{{1}, {2}, {3}, {}})
	w := p.WTO()
	checkWTO(t, p, w)
	if len(w.Comps) != 0 {
		t.Fatalf("loop-free CFG got %d components", len(w.Comps))
	}
	if got := w.String(); got != "0 1 2 3" {
		t.Fatalf("order %q", got)
	}
}

func TestWTOSimpleLoop(t *testing.T) {
	// 0 -> 1 <-> 2, 1 -> 3
	p := cfg(0, [][]int{{1}, {2, 3}, {1}, {}})
	w := p.WTO()
	checkWTO(t, p, w)
	if got := w.String(); got != "0 (1 2) 3" {
		t.Fatalf("order %q", got)
	}
	if len(w.Comps) != 1 || w.Comps[0].Head != 1 || w.Comps[0].Parent != -1 {
		t.Fatalf("components %+v", w.Comps)
	}
}

func TestWTONestedLoops(t *testing.T) {
	// 0 -> 1 -> 2 <-> 3, 2-loop exits to 4 -> 1, 4 -> 5
	p := cfg(0, [][]int{{1}, {2}, {3, 4}, {2}, {1, 5}, {}})
	w := p.WTO()
	checkWTO(t, p, w)
	if got := w.String(); got != "0 (1 (2 3) 4) 5" {
		t.Fatalf("order %q", got)
	}
	if len(w.Comps) != 2 {
		t.Fatalf("want 2 components, got %+v", w.Comps)
	}
	var outer, inner *WTOComp
	for i := range w.Comps {
		switch w.Comps[i].Head {
		case 1:
			outer = &w.Comps[i]
		case 2:
			inner = &w.Comps[i]
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("components %+v", w.Comps)
	}
	if inner.Parent < 0 || w.Comps[inner.Parent].Head != 1 {
		t.Fatalf("inner loop's parent is not the outer loop: %+v", w.Comps)
	}
	if outer.Parent != -1 {
		t.Fatalf("outer loop has a parent: %+v", w.Comps)
	}
}

func TestWTOSelfLoop(t *testing.T) {
	p := cfg(0, [][]int{{1}, {1, 2}, {}})
	w := p.WTO()
	checkWTO(t, p, w)
	if got := w.String(); got != "0 (1) 2" {
		t.Fatalf("order %q", got)
	}
}

func TestWTOIrreducible(t *testing.T) {
	// Two-entry loop: 0 branches to 1 and 2, 1 <-> 2 — no dominating
	// header exists, but the WTO property must still hold (one of the
	// two becomes the component head).
	p := cfg(0, [][]int{{1, 2}, {2, 3}, {1, 3}, {}})
	w := p.WTO()
	checkWTO(t, p, w)
	if len(w.Comps) != 1 {
		t.Fatalf("want 1 component, got %+v", w.Comps)
	}
}

func TestWTOUnreachableAppended(t *testing.T) {
	// 3 and 4 are unreachable from the entry (4 even loops back to 3).
	p := cfg(0, [][]int{{1}, {2}, {}, {4}, {}})
	w := p.WTO()
	if len(w.Order) != 5 {
		t.Fatalf("order %v misses statements", w.Order)
	}
	if w.Pos[3] < 3 || w.Pos[4] < 3 {
		t.Fatalf("unreachable statements ordered before reachable ones: %v", w.Order)
	}
	// Unreachable statements are trivial vertices even when they form
	// cycles among themselves: they are never scheduled, so no
	// component structure is needed (mirrors reversePostOrder, which
	// appends them without visiting their edges' implications either).
	for _, comp := range w.Comps {
		if comp.Head == 3 || comp.Head == 4 {
			t.Fatalf("unreachable statement heads a component: %+v", w.Comps)
		}
	}
}

func TestWTOLoopWithIfAndTail(t *testing.T) {
	// while (c) { if (d) {5} else {6} } with a diamond in the body and
	// a loop tail joining back to the head.
	//   0 -> 1(head) -> 2 -> {3,4} -> 5 -> 1, 1 -> 6
	p := cfg(0, [][]int{{1}, {2, 6}, {3, 4}, {5}, {5}, {1}, {}})
	w := p.WTO()
	checkWTO(t, p, w)
	if len(w.Comps) != 1 || w.Comps[0].Head != 1 {
		t.Fatalf("components %+v", w.Comps)
	}
	if w.Comps[0].End-w.Comps[0].Start != 5 {
		t.Fatalf("component should span head+4 body statements: %+v (order %v)", w.Comps, w.Order)
	}
}
