package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// This file derives stable content digests for programs and statements,
// the key material of the persistent analysis store (DESIGN.md §13).
// Digests are computed from names and structure only — never from
// interned Sym values, pointer identities or source line numbers — so
// the same program lowered in a different process (or re-parsed from a
// reformatted source) produces the same keys.

// StmtDigest is the 128-bit identity of one statement *in context*: the
// operation and operand names plus everything about the CFG neighbourhood
// that the engine's transfer of this statement depends on — the sorted
// predecessor list, the TOUCH-erasure pvar set of each incoming edge,
// loop membership and the statement's induction pvar set. Two statements
// with equal StmtDigests at the same analysis options compute identical
// in-states from identical predecessor out-states, which is exactly the
// property the edit-delta differ needs: an unchanged digest means the
// statement's fixpoint value is reusable as long as no changed statement
// can reach it.
type StmtDigest [16]byte

// appendStrings appends a length-prefixed string list.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendSortedSet(b []byte, set map[string]struct{}) []byte {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, n := range names {
		b = appendString(b, n)
	}
	return b
}

// transferIdentity renders the context-free part of a statement's
// digest pre-image: everything the statement's abstract transfer
// function depends on — op, operand names, OpFree's selector list, loop
// membership and the induction pvar set — and nothing about where the
// statement sits in the CFG. Two statements with equal transfer
// identities compute identical outputs from identical input graphs at
// the same analysis options, even across different programs; this is
// the key space of the persistent transfer memo. The caller must have
// run induction annotation first.
func (p *Program) transferIdentity(b []byte, id int) []byte {
	s := p.Stmts[id]
	b = binary.AppendUvarint(b, uint64(s.Op))
	b = appendString(b, s.X)
	b = appendString(b, s.Y)
	b = appendString(b, s.Sel)
	b = appendString(b, s.Type)
	// OpFree unlinks every selector of the freed type in declaration
	// order; the selector list is part of the transfer's meaning.
	if s.Op == OpFree {
		sels := p.Selectors[s.Type]
		b = binary.AppendUvarint(b, uint64(len(sels)))
		for _, sel := range sels {
			b = appendString(b, sel)
		}
	} else {
		b = binary.AppendUvarint(b, 0)
	}
	// Loop context: InLoop gates materialization behaviour, the
	// induction set feeds TOUCH at L3.
	if p.InLoop(id) {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return appendSortedSet(b, p.InductionFor(id))
}

// TransferDigests returns the per-statement context-free transfer
// digests (see transferIdentity), indexed by statement ID. Induction
// annotation must have run first.
func (p *Program) TransferDigests() []StmtDigest {
	out := make([]StmtDigest, len(p.Stmts))
	buf := make([]byte, 0, 128)
	for id := range p.Stmts {
		buf = p.transferIdentity(buf[:0], id)
		sum := sha256.Sum256(buf)
		copy(out[id][:], sum[:16])
	}
	return out
}

// stmtIdentity renders the digest pre-image of one statement: its
// transfer identity plus the CFG in-flow context. The caller must have
// run induction annotation first: the erase sets and induction sets
// below come from Loop.Induction.
func (p *Program) stmtIdentity(b []byte, id int) []byte {
	s := p.Stmts[id]
	b = p.transferIdentity(b, id)
	// Incoming edges: the predecessor IDs and, per edge, the induction
	// pvars of the loops the edge exits (the TOUCH-erasure set). A
	// statement whose in-flow wiring changed must be re-analyzed even if
	// its own operation did not.
	b = binary.AppendUvarint(b, uint64(len(s.Preds)))
	for _, pred := range s.Preds {
		b = binary.AppendUvarint(b, uint64(pred))
		erase := make(map[string]struct{})
		for _, l := range p.LoopsExited(pred, id) {
			for pv := range l.Induction {
				erase[pv] = struct{}{}
			}
		}
		b = appendSortedSet(b, erase)
	}
	return b
}

// StmtDigests returns the per-statement identity digests, indexed by
// statement ID. Induction annotation must have run (the engine runs it
// before consulting the store).
func (p *Program) StmtDigests() []StmtDigest {
	out := make([]StmtDigest, len(p.Stmts))
	buf := make([]byte, 0, 256)
	for id := range p.Stmts {
		buf = p.stmtIdentity(buf[:0], id)
		sum := sha256.Sum256(buf)
		copy(out[id][:], sum[:16])
	}
	return out
}

// Digest returns the 128-bit identity of the whole program: every
// statement's contextual identity plus the CFG edges, entry/exit, the
// declared pvar and selector tables, and the loop forest. Two programs
// with equal digests are indistinguishable to the analysis engine, so a
// stored fixpoint snapshot keyed on this digest can be replayed
// verbatim. Name and source lines are deliberately excluded:
// reformatting a source, or renaming the function, keeps the key.
func (p *Program) Digest() [16]byte {
	b := make([]byte, 0, 4096)
	b = binary.AppendUvarint(b, uint64(len(p.Stmts)))
	b = binary.AppendUvarint(b, uint64(p.Entry))
	b = binary.AppendUvarint(b, uint64(p.Exit))
	for id, s := range p.Stmts {
		b = p.stmtIdentity(b, id)
		b = binary.AppendUvarint(b, uint64(len(s.Succs)))
		for _, succ := range s.Succs {
			b = binary.AppendUvarint(b, uint64(succ))
		}
	}
	// Declared pvars and their pointee types, sorted by name.
	pvars := make([]string, 0, len(p.PtrVars))
	for v := range p.PtrVars {
		pvars = append(pvars, v)
	}
	sort.Strings(pvars)
	b = binary.AppendUvarint(b, uint64(len(pvars)))
	for _, v := range pvars {
		b = appendString(b, v)
		b = appendString(b, p.PtrVars[v])
	}
	// Struct selector tables, sorted by type name, selectors in
	// declaration order (the order OpFree unlinks them).
	types := make([]string, 0, len(p.Selectors))
	for t := range p.Selectors {
		types = append(types, t)
	}
	sort.Strings(types)
	b = binary.AppendUvarint(b, uint64(len(types)))
	for _, t := range types {
		b = appendString(b, t)
		b = binary.AppendUvarint(b, uint64(len(p.Selectors[t])))
		for _, sel := range p.Selectors[t] {
			b = appendString(b, sel)
		}
	}
	// The loop forest with induction sets.
	b = binary.AppendUvarint(b, uint64(len(p.Loops)))
	for _, l := range p.Loops {
		b = binary.AppendUvarint(b, uint64(l.Header))
		b = binary.AppendUvarint(b, uint64(uint32(l.Parent+1)))
		body := make([]int, 0, len(l.Body))
		for id := range l.Body {
			body = append(body, id)
		}
		sort.Ints(body)
		b = binary.AppendUvarint(b, uint64(len(body)))
		for _, id := range body {
			b = binary.AppendUvarint(b, uint64(id))
		}
		ind := make([]string, 0, len(l.Induction))
		for pv := range l.Induction {
			ind = append(ind, pv)
		}
		sort.Strings(ind)
		b = binary.AppendUvarint(b, uint64(len(ind)))
		for _, pv := range ind {
			b = appendString(b, pv)
		}
	}
	sum := sha256.Sum256(b)
	var out [16]byte
	copy(out[:], sum[:16])
	return out
}
