package ir

// Weak topological order (Bourdoncle 1993): a hierarchical total order
// of the CFG in which every cycle is confined to a *component* — a
// head vertex followed by a nested sub-order of the component body.
// The defining property is that every edge u -> v that goes backward
// or stays put in the order (Pos[v] <= Pos[u]) targets the head of a
// component containing u. A fixpoint engine that stabilizes each
// component before moving past it (the "recursive iteration strategy")
// therefore never revisits a statement because of a ripple that is
// still confined to an inner loop (DESIGN.md §14).
//
// The construction is Bourdoncle's adaptation of Tarjan's SCC
// algorithm: a DFS numbers vertices, a stack collects candidate
// component members, and when an SCC is recognized its interior is
// un-numbered and re-traversed to decompose nested sub-components
// recursively.

// WTO is the flattened weak topological order of a Program's CFG.
// Order lists statement IDs; components are contiguous ranges of it
// described by Comps. Statements unreachable from the entry are
// appended after the reachable order as trivial (non-component)
// vertices, mirroring reversePostOrder's handling.
type WTO struct {
	// Order is the weak topological order of statement IDs.
	Order []int
	// Pos is the inverse permutation: Pos[id] is id's index in Order.
	Pos []int
	// HeadComp[pos] is the index into Comps of the component headed at
	// Order[pos], or -1 when Order[pos] is not a component head.
	HeadComp []int
	// Encl[pos] is the index of the innermost component whose range
	// contains pos, or -1 at the top level. A head belongs to its own
	// component: Encl[Comps[c].Start] == c.
	Encl []int
	// Depth[pos] is the component-nesting depth of Order[pos]
	// (0 = top level; a head is at its component's depth).
	Depth []int
	// Comps lists the components in order of their heads' positions.
	Comps []WTOComp
}

// WTOComp is one component (loop) of a weak topological order.
type WTOComp struct {
	// Head is the statement ID of the component head.
	Head int
	// Start is the head's position in Order; End is the exclusive end
	// of the component's range. Start < End always (the range includes
	// at least the head; a self-loop is a component of size one).
	Start, End int
	// Parent is the index of the enclosing component, or -1.
	Parent int
}

// wtoNode is a node of the hierarchical order before flattening:
// either a plain vertex (comp == false) or a component with a head
// and a nested body order.
type wtoNode struct {
	id   int
	comp bool
	body []*wtoNode
}

// WTO computes the weak topological order of the statement CFG with
// Bourdoncle's recursive-SCC algorithm. The result is a pure function
// of the CFG shape (Succs and Entry), which the program digest already
// covers; schedule choice is keyed separately in the analysis options
// fingerprint.
func (p *Program) WTO() *WTO {
	n := len(p.Stmts)
	const done = int(^uint(0) >> 1) // +inf sentinel: vertex fully placed
	dfn := make([]int, n)
	num := 0
	stack := make([]int, 0, n)

	var visit func(v int, partition *[]*wtoNode) int
	var component func(v int) *wtoNode

	visit = func(v int, partition *[]*wtoNode) int {
		stack = append(stack, v)
		num++
		dfn[v] = num
		head := dfn[v]
		loop := false
		for _, w := range p.Stmts[v].Succs {
			var min int
			if dfn[w] == 0 {
				min = visit(w, partition)
			} else {
				min = dfn[w]
			}
			if min <= head {
				head = min
				loop = true
			}
		}
		if head == dfn[v] {
			dfn[v] = done
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if loop {
				// Un-number the component's interior so component() can
				// re-traverse it and decompose nested cycles.
				for top != v {
					dfn[top] = 0
					top = stack[len(stack)-1]
					stack = stack[:len(stack)-1]
				}
				*partition = append(*partition, component(v))
			} else {
				*partition = append(*partition, &wtoNode{id: v})
			}
		}
		return head
	}

	component = func(v int) *wtoNode {
		var body []*wtoNode
		for _, w := range p.Stmts[v].Succs {
			if dfn[w] == 0 {
				visit(w, &body)
			}
		}
		reverseNodes(body)
		return &wtoNode{id: v, comp: true, body: body}
	}

	var top []*wtoNode
	if n > 0 {
		visit(p.Entry, &top)
	}
	// visit() builds partitions in postorder (it appends each element
	// when its subtree completes); the WTO is the reverse.
	reverseNodes(top)
	// Unreachable statements: trivial trailing vertices in ID order.
	for id := 0; id < n; id++ {
		if dfn[id] == 0 {
			top = append(top, &wtoNode{id: id})
		}
	}

	w := &WTO{
		Order:    make([]int, 0, n),
		Pos:      make([]int, n),
		HeadComp: make([]int, 0, n),
		Encl:     make([]int, 0, n),
		Depth:    make([]int, 0, n),
	}
	var flatten func(nodes []*wtoNode, encl, depth int)
	flatten = func(nodes []*wtoNode, encl, depth int) {
		for _, nd := range nodes {
			pos := len(w.Order)
			w.Order = append(w.Order, nd.id)
			w.Pos[nd.id] = pos
			if !nd.comp {
				w.HeadComp = append(w.HeadComp, -1)
				w.Encl = append(w.Encl, encl)
				w.Depth = append(w.Depth, depth)
				continue
			}
			c := len(w.Comps)
			w.Comps = append(w.Comps, WTOComp{Head: nd.id, Start: pos, Parent: encl})
			w.HeadComp = append(w.HeadComp, c)
			w.Encl = append(w.Encl, c)
			w.Depth = append(w.Depth, depth)
			flatten(nd.body, c, depth+1)
			w.Comps[c].End = len(w.Order)
		}
	}
	flatten(top, -1, 0)
	return w
}

func reverseNodes(nodes []*wtoNode) {
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
}

// InComponent reports whether position pos lies inside component c's
// range (head included).
func (w *WTO) InComponent(c, pos int) bool {
	return pos >= w.Comps[c].Start && pos < w.Comps[c].End
}

// String renders the order in Bourdoncle's parenthesized notation,
// e.g. "0 1 (2 3 (4 5) 6) 7" — component bodies in parentheses after
// their head. Debug/test aid.
func (w *WTO) String() string {
	var b []byte
	depth := 0
	for pos, id := range w.Order {
		for depth > 0 && w.componentEndsAt(pos, depth) {
			b = append(b, ')')
			depth--
		}
		if pos > 0 {
			b = append(b, ' ')
		}
		if c := w.HeadComp[pos]; c >= 0 {
			b = append(b, '(')
			depth++
		}
		b = appendInt(b, id)
	}
	for depth > 0 {
		b = append(b, ')')
		depth--
	}
	return string(b)
}

// componentEndsAt reports whether some currently-open component's
// range ends exactly at pos, i.e. Depth drops below the current depth.
func (w *WTO) componentEndsAt(pos, depth int) bool {
	// Depth[pos] counts enclosing components of the element at pos; a
	// head's own component opens after it is printed, so a head at
	// depth d has Depth d and sits inside d open parens before its own.
	d := w.Depth[pos]
	return d < depth
}

func appendInt(b []byte, x int) []byte {
	if x < 0 {
		b = append(b, '-')
		x = -x
	}
	if x >= 10 {
		b = appendInt(b, x/10)
	}
	return append(b, byte('0'+x%10))
}
