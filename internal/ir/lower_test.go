package ir

import (
	"strings"
	"testing"

	"repro/internal/cminic"
)

func lower(t *testing.T, src string) *Program {
	t.Helper()
	f, err := cminic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := LowerMain(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

const prologue = `
struct node { int val; struct node *nxt; struct leaf *down; };
struct leaf { int v; struct leaf *sib; };
`

func wrapMain(body string) string {
	return prologue + "\nvoid main(void) {\n struct node *p;\n struct node *q;\n struct leaf *l;\n" + body + "\n}\n"
}

// ops extracts the op sequence (excluding entry/exit and the decl
// initializations) as strings.
func ops(p *Program) []string {
	var out []string
	for _, s := range p.Stmts {
		out = append(out, s.String())
	}
	return out
}

func hasStmt(p *Program, repr string) bool {
	for _, s := range p.Stmts {
		if s.String() == repr {
			return true
		}
	}
	return false
}

func TestLowerSimpleStatements(t *testing.T) {
	p := lower(t, wrapMain(`
p = malloc(sizeof(struct node));
p->nxt = NULL;
q = p;
p->nxt = q;
q = p->nxt;
q = NULL;
`))
	for _, want := range []string{
		"p = malloc(struct node)",
		"p->nxt = NULL",
		"q = p",
		"p->nxt = q",
		"q = p->nxt",
		"q = NULL",
	} {
		if !hasStmt(p, want) {
			t.Errorf("missing statement %q in:\n%s", want, p)
		}
	}
}

func TestLowerComplexPathsUseTemps(t *testing.T) {
	p := lower(t, wrapMain(`p->nxt->down = l->sib;`))
	// The two-selector LHS requires a prefix load into a temp; the RHS
	// value requires its own load.
	var loads, stores int
	for _, s := range p.Stmts {
		switch s.Op {
		case OpLoad:
			loads++
		case OpSelCopy:
			stores++
		}
	}
	if loads < 2 {
		t.Errorf("expected >=2 loads (LHS prefix + RHS value), got %d:\n%s", loads, p)
	}
	if stores != 1 {
		t.Errorf("expected exactly 1 selector store, got %d:\n%s", stores, p)
	}
	// Temps must be nulled afterwards.
	if len(p.Temps) == 0 {
		t.Fatal("no temps allocated")
	}
	for _, tmp := range p.Temps {
		found := false
		for _, s := range p.Stmts {
			if s.Op == OpNil && s.X == tmp {
				found = true
			}
		}
		if !found {
			t.Errorf("temp %s never cleaned up", tmp)
		}
	}
}

func TestLowerTempsAreTyped(t *testing.T) {
	p := lower(t, wrapMain(`l = p->nxt->down;`))
	for _, tmp := range p.Temps {
		if p.PtrVars[tmp] == "" {
			t.Errorf("temp %s has no pointee type", tmp)
		}
	}
	// The prefix temp must be a node pointer (p->nxt), not a leaf.
	foundNodeTemp := false
	for _, tmp := range p.Temps {
		if p.PtrVars[tmp] == "node" {
			foundNodeTemp = true
		}
	}
	if !foundNodeTemp {
		t.Errorf("expected a node-typed temp, temps: %v", p.Temps)
	}
}

func TestLowerMallocIntoField(t *testing.T) {
	p := lower(t, wrapMain(`p->nxt = malloc(sizeof(struct node));`))
	// Lowered as: t = malloc; p->nxt = NULL; p->nxt = t; t = NULL.
	var mallocTemp string
	for _, s := range p.Stmts {
		if s.Op == OpMalloc {
			mallocTemp = s.X
		}
	}
	if mallocTemp == "" || !strings.HasPrefix(mallocTemp, "__t") {
		t.Fatalf("malloc destination should be a temp, got %q:\n%s", mallocTemp, p)
	}
	if !hasStmt(p, "p->nxt = "+mallocTemp) {
		t.Errorf("missing store of malloc temp:\n%s", p)
	}
}

func TestLowerTypeErrors(t *testing.T) {
	cases := []struct {
		body string
		want string
	}{
		{`p->bogus = NULL;`, "no field"},
		{`p->val = NULL;`, "not a struct pointer"}, // scalar field as pointer: LHS is scalar, so becomes noop — no error
		{`p = malloc(sizeof(struct leaf));`, "malloc of struct leaf assigned"},
	}
	for _, c := range cases {
		f, err := cminic.Parse(wrapMain(c.body))
		if err != nil {
			// Some cases fail at parse time; that is acceptable too.
			continue
		}
		_, err = LowerMain(f)
		if c.want == "not a struct pointer" {
			// `p->val = NULL` parses as a scalar assignment (RHS opaque)
			// and lowers to a noop; no error expected.
			if err != nil && !strings.Contains(err.Error(), c.want) {
				t.Errorf("%s: unexpected error %v", c.body, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.body, err, c.want)
		}
	}
}

func TestLowerCFGStructure(t *testing.T) {
	p := lower(t, wrapMain(`
if (c) { p = NULL; } else { q = NULL; }
while (d) { p = NULL; }
`))
	// Entry has successors; exit has none.
	if len(p.Stmt(p.Entry).Succs) == 0 {
		t.Error("entry has no successors")
	}
	if len(p.Stmt(p.Exit).Succs) != 0 {
		t.Error("exit must have no successors")
	}
	// Every statement except entry is reachable and has predecessors.
	for _, s := range p.Stmts {
		if s.ID != p.Entry && len(s.Preds) == 0 {
			t.Errorf("statement %d (%s) unreachable", s.ID, s)
		}
	}
	if len(p.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(p.Loops))
	}
}

func TestLowerLoopBodies(t *testing.T) {
	p := lower(t, wrapMain(`
while (a) {
    p = q;
    while (b) {
        q = p;
    }
}
`))
	if len(p.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(p.Loops))
	}
	outer, inner := p.Loops[0], p.Loops[1]
	if inner.Parent != outer.ID {
		t.Errorf("inner loop parent = %d, want %d", inner.Parent, outer.ID)
	}
	// Inner body is a subset of the outer body.
	for id := range inner.Body {
		if _, ok := outer.Body[id]; !ok {
			t.Errorf("inner-loop stmt %d not inside the outer loop", id)
		}
	}
	// The q = p statement is in both loops' bodies, in order.
	for _, s := range p.Stmts {
		if s.String() == "q = p" {
			if len(s.Loops) != 2 || s.Loops[0] != outer.ID || s.Loops[1] != inner.ID {
				t.Errorf("q = p loop list = %v", s.Loops)
			}
		}
	}
}

func TestLowerBreakContinue(t *testing.T) {
	p := lower(t, wrapMain(`
while (a) {
    if (b) { break; }
    if (c) { continue; }
    p = NULL;
}
q = p;
`))
	// The statement after the loop must be reachable through an edge
	// leaving the loop body (break or exhausted condition; with opaque
	// conditions both share the branch point).
	var qnil *Stmt
	for _, s := range p.Stmts {
		if s.String() == "q = p" {
			qnil = s
		}
	}
	if qnil == nil {
		t.Fatal("q = p missing")
	}
	fromLoop := false
	for _, pred := range qnil.Preds {
		if len(p.Stmt(pred).Loops) > 0 {
			fromLoop = true
		}
	}
	if !fromLoop {
		t.Errorf("q = p not reachable from inside the loop; preds=%v", qnil.Preds)
	}
	// The break makes the loop exit reachable even though the loop
	// condition is opaque: verify p = NULL inside the body cannot flow
	// around the break via a missing edge (i.e. the body still loops).
	if len(p.Loops) != 1 || len(p.Loops[0].Body) == 0 {
		t.Errorf("loop structure lost: %v", p.Loops)
	}
}

func TestLowerConditionAssumes(t *testing.T) {
	p := lower(t, wrapMain(`
while (p != NULL) { p = p->nxt; }
`))
	var nonNull, null int
	for _, s := range p.Stmts {
		switch s.Op {
		case OpAssumeNonNull:
			nonNull++
		case OpAssumeNull:
			null++
		}
	}
	if nonNull != 1 || null != 1 {
		t.Errorf("assume counts: nonnull=%d null=%d, want 1/1:\n%s", nonNull, null, ops(p))
	}
}

func TestLowerConditionOnField(t *testing.T) {
	p := lower(t, wrapMain(`
if (p->nxt == NULL) { q = NULL; }
`))
	// The condition loads p->nxt into a temp and assumes on the temp.
	foundLoad := false
	for _, s := range p.Stmts {
		if s.Op == OpLoad && s.Y == "p" && s.Sel == "nxt" {
			foundLoad = true
		}
	}
	if !foundLoad {
		t.Errorf("condition did not load p->nxt:\n%s", p)
	}
}

func TestLowerForLoop(t *testing.T) {
	p := lower(t, wrapMain(`
for (p = q; c; q = p) { l = NULL; }
`))
	if len(p.Loops) != 1 {
		t.Fatalf("got %d loops", len(p.Loops))
	}
	loop := p.Loops[0]
	// init (p = NULL) outside the loop; post (q = NULL) inside.
	for _, s := range p.Stmts {
		switch s.String() {
		case "p = q":
			if _, in := loop.Body[s.ID]; in {
				t.Error("for-init must be outside the loop body")
			}
		case "q = p":
			if _, in := loop.Body[s.ID]; !in {
				t.Error("for-post must be inside the loop body")
			}
		}
	}
}

func TestLowerDoWhile(t *testing.T) {
	p := lower(t, wrapMain(`
do { p = NULL; } while (c);
q = NULL;
`))
	if len(p.Loops) != 1 {
		t.Fatalf("got %d loops", len(p.Loops))
	}
	// The body executes at least once: p=NULL dominates q=NULL.
	if !hasStmt(p, "p = NULL") || !hasStmt(p, "q = NULL") {
		t.Fatalf("missing statements:\n%s", p)
	}
}

func TestLowerScalarsBecomeNoops(t *testing.T) {
	p := lower(t, wrapMain(`
i = i + 1;
p->val = 7;
`))
	for _, s := range p.Stmts {
		switch s.Op {
		case OpNil, OpMalloc, OpCopy, OpSelNil, OpSelCopy, OpLoad:
			if !strings.HasPrefix(s.X, "__t") && s.X != "p" && s.X != "q" && s.X != "l" {
				t.Errorf("scalar statement lowered to pointer op: %s", s)
			}
			if s.Op != OpNil {
				t.Errorf("unexpected pointer op from scalar statements: %s", s)
			}
		}
	}
}

func TestLoopsExited(t *testing.T) {
	p := lower(t, wrapMain(`
while (a) {
    while (b) {
        p = q;
    }
    q = p;
}
l = p->down;
`))
	if len(p.Loops) != 2 {
		t.Fatalf("got %d loops", len(p.Loops))
	}
	// Find an edge from inside the inner loop to q = NULL (exits inner only).
	var qn, ln *Stmt
	for _, s := range p.Stmts {
		switch s.String() {
		case "q = p":
			qn = s
		case "l = p->down":
			ln = s
		}
	}
	for _, pred := range qn.Preds {
		exited := p.LoopsExited(pred, qn.ID)
		for _, lp := range exited {
			if lp.ID == p.Loops[0].ID {
				t.Errorf("edge %d->%d must not exit the outer loop", pred, qn.ID)
			}
		}
	}
	exitsOuter := false
	for _, pred := range ln.Preds {
		for _, lp := range p.LoopsExited(pred, ln.ID) {
			if lp.ID == p.Loops[0].ID {
				exitsOuter = true
			}
		}
	}
	if !exitsOuter {
		t.Error("no edge into l = NULL exits the outer loop")
	}
}
