package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/rsg"
)

// TestOpenLockConflict is the regression test for the unguarded
// concurrent-access bug: before the flock discipline, two Opens of one
// path each got a live write path and could interleave appends. Now
// the second writer (and any reader while a writer lives) is refused
// with ErrLocked, readers coexist with each other, and closing the
// holder releases the path.
func TestOpenLockConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.rsgstore")

	w, err := Open(path)
	if err != nil {
		t.Fatalf("open writer: %v", err)
	}
	if _, err := Open(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("second writer Open: got %v, want ErrLocked", err)
	}
	if _, err := OpenReadOnly(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("reader while writer holds the lock: got %v, want ErrLocked", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}

	r1, err := OpenReadOnly(path)
	if err != nil {
		t.Fatalf("first reader: %v", err)
	}
	r2, err := OpenReadOnly(path)
	if err != nil {
		t.Fatalf("second reader (shared lock): %v", err)
	}
	if _, err := Open(path); !errors.Is(err, ErrLocked) {
		t.Fatalf("writer while readers hold the lock: got %v, want ErrLocked", err)
	}
	r1.Close()
	r2.Close()

	w2, err := Open(path)
	if err != nil {
		t.Fatalf("writer after readers closed: %v", err)
	}
	w2.Close()
}

// TestReadOnlyStore: a reader serves everything the writer recorded,
// refuses writes with ErrReadOnly, and does not truncate a torn tail
// (repairing the log is the writer's job).
func TestReadOnlyStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.rsgstore")
	rng := rand.New(rand.NewSource(11))

	w, err := Open(path)
	if err != nil {
		t.Fatalf("open writer: %v", err)
	}
	g := testGraph(rng)
	if err := w.PutGraph(g); err != nil {
		t.Fatalf("put graph: %v", err)
	}
	if err := w.PutMemo(dig(1), g.Digest(), []rsg.Digest{g.Digest()}); err != nil {
		t.Fatalf("put memo: %v", err)
	}
	snap := &Snapshot{Prog: dig(9), Name: "t", Fp: 1, Converged: true,
		Stmts: []SnapStmt{{ID: 0, Digest: dig(2), HasOut: true, Out: []rsg.Digest{g.Digest()}}}}
	if err := w.PutSnapshot(snap); err != nil {
		t.Fatalf("put snapshot: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close writer: %v", err)
	}

	// Tear the tail: a half-written record a crashed writer left.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{kindGraph, 0x80}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	torn, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	r, err := OpenReadOnly(path)
	if err != nil {
		t.Fatalf("open reader: %v", err)
	}
	if !r.ReadOnly() {
		t.Fatal("ReadOnly() = false on an OpenReadOnly store")
	}
	if got, ok := r.Graph(g.Digest()); !ok || got.Digest() != g.Digest() {
		t.Fatalf("reader Graph: ok=%v", ok)
	}
	if _, ok := r.Memo(dig(1), g.Digest()); !ok {
		t.Fatal("reader Memo miss")
	}
	if _, ok := r.Snapshot(dig(9), 1); !ok {
		t.Fatal("reader Snapshot miss")
	}
	if err := r.PutGraph(testGraph(rng)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("reader PutGraph: got %v, want ErrReadOnly", err)
	}
	if err := r.PutMemo(dig(3), g.Digest(), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("reader PutMemo: got %v, want ErrReadOnly", err)
	}
	if err := r.PutSnapshot(snap); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("reader PutSnapshot: got %v, want ErrReadOnly", err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != torn.Size() {
		t.Fatalf("reader truncated the file: %d -> %d bytes", torn.Size(), after.Size())
	}
	r.Close()

	// The writer that reopens the path is the one that repairs it.
	w2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen writer over torn tail: %v", err)
	}
	defer w2.Close()
	repaired, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Size() != torn.Size()-2 {
		t.Fatalf("writer did not truncate the torn tail: %d bytes, want %d", repaired.Size(), torn.Size()-2)
	}
}

// TestReadOnlyEmptyFile: a reader over a zero-length file (created but
// never stamped by a writer) serves an empty store instead of writing
// the magic or failing.
func TestReadOnlyEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.rsgstore")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReadOnly(path)
	if err != nil {
		t.Fatalf("open reader on empty file: %v", err)
	}
	defer r.Close()
	if ng, nm, ns := r.Counts(); ng+nm+ns != 0 {
		t.Fatalf("empty file produced a non-empty store: %d/%d/%d", ng, nm, ns)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("reader wrote %d bytes into the empty file", st.Size())
	}
}

// TestConcurrentStoreHammer drives every public Store operation from
// many goroutines over one shared instance — the in-process shape of
// the daemon's steady state. Run under -race via `make test-race`.
func TestConcurrentStoreHammer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.rsgstore")
	s, err := Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()

	const workers = 8
	const opsPerWorker = 120
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var digs []rsg.Digest
			for i := 0; i < opsPerWorker; i++ {
				g := testGraph(rng)
				if err := s.PutGraph(g); err != nil {
					errs <- err
					return
				}
				digs = append(digs, g.Digest())
				probe := digs[rng.Intn(len(digs))]
				if _, ok := s.Graph(probe); !ok {
					errs <- errors.New("Graph lost a stored digest")
					return
				}
				stmt := dig(byte(rng.Intn(16)))
				if err := s.PutMemo(stmt, probe, digs[:1+rng.Intn(len(digs))]); err != nil {
					errs <- err
					return
				}
				s.Memo(stmt, probe)
				if i%16 == 0 {
					snap := &Snapshot{Prog: dig(byte(seed)), Name: "hammer", Fp: uint64(seed),
						Visits: i, Converged: true,
						Stmts: []SnapStmt{{ID: 0, Digest: dig(1), HasOut: true, Out: digs[:1]}}}
					if err := s.PutSnapshot(snap); err != nil {
						errs <- err
						return
					}
					s.Snapshot(dig(byte(seed)), uint64(seed))
					s.SnapshotByName("hammer", uint64(seed))
				}
				s.Counts()
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The log all those interleaved appends produced must replay
	// cleanly and completely.
	ng, nm, ns := s.Counts()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after hammer: %v", err)
	}
	defer s2.Close()
	if ng2, nm2, ns2 := s2.Counts(); ng2 != ng || nm2 != nm || ns2 != ns {
		t.Fatalf("replay lost records: %d/%d/%d -> %d/%d/%d", ng, nm, ns, ng2, nm2, ns2)
	}
}
