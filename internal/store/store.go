// Package store is the persistent content-addressed analysis store
// (DESIGN.md §13): a single-file append-only log, no external
// dependencies, that outlives the process and backs two caches of the
// analysis engine —
//
//   - the transfer memo: (statement-transfer key, input-RSG digest) →
//     output-RSG digest list, with the graphs themselves stored once in
//     a content-addressed graph log (rsg.EncodeFrozen bytes keyed by
//     the 16-byte canonical digest), and
//   - per-statement fixpoint snapshots of whole runs, keyed by
//     (program digest, options fingerprint), which warm-start a repeat
//     run and seed edit-delta re-analysis of a changed program.
//
// Durability model: every record carries a CRC; Open scans the log and
// truncates at the first torn or corrupt record, so a crash mid-append
// costs at most the tail. Any read failure — missing record, version
// skew, corrupt graph bytes, digest mismatch — degrades to a cache
// miss, never an error and never a wrong value: graph payloads are
// re-digested on decode and rejected if they do not match their key.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/rsg"
)

// magic identifies the file format; the trailing digit is the format
// version and is bumped on incompatible layout changes.
var magic = []byte("RSGSTORE1\n")

// Record kinds.
const (
	kindGraph    = 'G' // digest[16] + EncodeFrozen bytes
	kindMemo     = 'M' // stmtKey[16] + inDigest[16] + uvarint n + n×digest[16]
	kindSnapshot = 'S' // encoded Snapshot
)

// maxRecordLen bounds a single record so a corrupt length prefix cannot
// drive an unbounded allocation during the recovery scan.
const maxRecordLen = 64 << 20

// graphCacheCap bounds the decoded-graph cache. Eviction is arbitrary
// (map iteration order); the cache is a decode-avoidance layer, not a
// correctness layer, so any policy is sound.
const graphCacheCap = 8192

// Key is the 128-bit content key used throughout the store.
type Key = [16]byte

type memoKey struct {
	stmt Key
	in   rsg.Digest
}

type snapKey struct {
	prog Key
	fp   uint64
}

type nameKey struct {
	name string
	fp   uint64
}

// span locates a graph payload (excluding the digest prefix) in the log.
type span struct {
	off int64
	len int64
}

// SnapStmt is one statement's slice of a fixpoint snapshot.
type SnapStmt struct {
	ID     int
	Digest Key          // ir.StmtDigest of the statement at record time
	HasOut bool         // false: statement was never visited (unreachable)
	Out    []rsg.Digest // member digests of the out-state set, canonical order
}

// Snapshot is the persistent record of one whole-program run: the
// per-statement out-states plus enough run metadata to decide when the
// snapshot may be served (see analysis/persist.go for the rules).
type Snapshot struct {
	Prog        Key    // ir.(*Program).Digest()
	Name        string // program name, the handle for edit-delta lookup
	Fp          uint64 // options fingerprint (level, soundness & widening knobs)
	Converged   bool   // true: a real fixpoint; false: budget-bounded prefix
	VisitBudget int    // the resolved MaxVisits the run executed under
	NodeBudget  int    // the resolved NodeBudget
	Visits      int    // visits actually performed
	Stmts       []SnapStmt
}

// ErrLocked reports that another process holds a conflicting advisory
// lock on the store file: a writer excludes everyone, readers exclude
// the writer. Callers should refuse or degrade (read-only, or no store
// at all) rather than share the write path.
var ErrLocked = errors.New("store: locked by another process")

// ErrReadOnly reports a write on a store opened with OpenReadOnly.
var ErrReadOnly = errors.New("store: opened read-only")

// Store is safe for concurrent use within one process; across
// processes, Open's advisory flock enforces a single-writer/
// many-readers discipline.
type Store struct {
	mu     sync.Mutex
	f      *os.File
	ro     bool  // opened by OpenReadOnly: reads only, no truncation
	size   int64 // durable log length == append offset
	graphs map[rsg.Digest]span
	memos  map[memoKey][]rsg.Digest
	snaps  map[snapKey]*Snapshot
	byName map[nameKey]*Snapshot // latest snapshot per (program name, fp)
	cache  map[rsg.Digest]*rsg.Graph
}

// Open opens (creating if absent) the store file at path for writing,
// replays the log into the in-memory indexes, and truncates any torn
// tail left by a crash. A non-empty file that does not start with the
// store magic is refused rather than clobbered.
//
// Open takes an exclusive advisory lock (flock) on the file and holds
// it until Close: a second writer — another process, or a second Open
// in this one — gets ErrLocked instead of a chance to interleave
// appends with ours. Readers opened with OpenReadOnly are excluded
// too, because the writer may truncate a torn tail out from under a
// replay in progress.
func Open(path string) (*Store, error) {
	return open(path, false)
}

// OpenReadOnly opens an existing store file for serving only: reads
// share an advisory lock (any number of readers coexist, but never
// with a writer), every Put returns ErrReadOnly, and replay tolerates
// a torn tail by ignoring it instead of truncating the file. This is
// the mode for read replicas of a store another process maintains.
func OpenReadOnly(path string) (*Store, error) {
	return open(path, true)
}

func open(path string, readOnly bool) (*Store, error) {
	flags, mode := os.O_RDWR|os.O_CREATE, os.FileMode(0o644)
	if readOnly {
		flags, mode = os.O_RDONLY, 0
	}
	f, err := os.OpenFile(path, flags, mode)
	if err != nil {
		return nil, err
	}
	if err := lockFile(f.Fd(), !readOnly); err != nil {
		f.Close()
		if errors.Is(err, ErrLocked) {
			return nil, fmt.Errorf("%s: %w", path, ErrLocked)
		}
		return nil, err
	}
	s := &Store{
		f:      f,
		ro:     readOnly,
		graphs: make(map[rsg.Digest]span),
		memos:  make(map[memoKey][]rsg.Digest),
		snaps:  make(map[snapKey]*Snapshot),
		byName: make(map[nameKey]*Snapshot),
		cache:  make(map[rsg.Digest]*rsg.Graph),
	}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// replay scans the log, building the indexes, and truncates the file at
// the first malformed record.
func (s *Store) replay() error {
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		if s.ro {
			// A brand-new (or concurrently created, not yet stamped)
			// file: nothing to serve, and a reader must not write the
			// magic. Every lookup on the empty indexes simply misses.
			s.size = 0
			return nil
		}
		if _, err := s.f.Write(magic); err != nil {
			return err
		}
		s.size = int64(len(magic))
		return nil
	}
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, 0, st.Size()), 1<<20)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil || string(hdr) != string(magic) {
		return fmt.Errorf("store: %s is not a store file", s.f.Name())
	}
	good := int64(len(magic))
	var scratch []byte
	for {
		recLen, kind, body, err := readRecord(r, &scratch)
		if err != nil {
			break // torn/corrupt tail: keep everything before it
		}
		s.index(kind, body, good)
		good += recLen
	}
	if good < st.Size() && !s.ro {
		// Writers repair the log; readers just ignore the torn tail —
		// the writer that owns the file will truncate it, and nothing
		// before the tear is affected either way.
		if err := s.f.Truncate(good); err != nil {
			return err
		}
	}
	s.size = good
	return nil
}

// readRecord reads one framed record: kind byte, uvarint body length,
// body, crc32(kind+body). Returns the total on-disk record length, the
// kind, and the body (aliasing *scratch).
func readRecord(r *bufio.Reader, scratch *[]byte) (int64, byte, []byte, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return 0, 0, nil, err
	}
	blen, err := binary.ReadUvarint(r)
	if err != nil || blen > maxRecordLen {
		return 0, 0, nil, errors.New("store: bad record length")
	}
	need := int(blen) + 1 // kind prepended for the CRC
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	buf := (*scratch)[:need]
	buf[0] = kind
	if _, err := io.ReadFull(r, buf[1:]); err != nil {
		return 0, 0, nil, err
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return 0, 0, nil, err
	}
	if crc32.ChecksumIEEE(buf) != binary.LittleEndian.Uint32(crcb[:]) {
		return 0, 0, nil, errors.New("store: checksum mismatch")
	}
	total := int64(1 + uvarintLen(blen) + int(blen) + 4)
	return total, kind, buf[1:], nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// index registers one verified record. off is the record's start
// offset; graph spans point into the body past the digest prefix.
func (s *Store) index(kind byte, body []byte, off int64) {
	switch kind {
	case kindGraph:
		if len(body) < 16 {
			return
		}
		var d rsg.Digest
		copy(d[:], body[:16])
		// The body starts at off + 1 (kind) + uvarint(len); the graph
		// bytes start 16 further in, past the digest prefix.
		hdr := int64(1 + uvarintLen(uint64(len(body))))
		s.graphs[d] = span{off: off + hdr + 16, len: int64(len(body) - 16)}
	case kindMemo:
		if k, v, ok := decodeMemo(body); ok {
			s.memos[k] = v
		}
	case kindSnapshot:
		if snap, ok := decodeSnapshot(body); ok {
			s.snaps[snapKey{prog: snap.Prog, fp: snap.Fp}] = snap
			s.byName[nameKey{name: snap.Name, fp: snap.Fp}] = snap
		}
	}
}

// append frames and writes one record under the lock. The CRC covers
// kind+body, matching readRecord.
func (s *Store) append(kind byte, body []byte) error {
	rec := make([]byte, 0, len(body)+16)
	rec = append(rec, kind)
	rec = binary.AppendUvarint(rec, uint64(len(body)))
	bodyStart := len(rec)
	rec = append(rec, body...)
	crc := crc32.NewIEEE()
	crc.Write([]byte{kind})
	crc.Write(rec[bodyStart:])
	rec = binary.LittleEndian.AppendUint32(rec, crc.Sum32())
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return err
	}
	s.size += int64(len(rec))
	return nil
}

// Close flushes and closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// PutGraph persists a frozen graph under its digest; duplicate puts are
// free no-ops (content addressing).
func (s *Store) PutGraph(g *rsg.Graph) error {
	d := g.Digest()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return os.ErrClosed
	}
	if _, ok := s.graphs[d]; ok {
		return nil
	}
	if s.ro {
		return ErrReadOnly
	}
	enc := rsg.EncodeFrozen(g)
	body := make([]byte, 0, 16+len(enc))
	body = append(body, d[:]...)
	body = append(body, enc...)
	off := s.size
	if err := s.append(kindGraph, body); err != nil {
		return err
	}
	hdr := int64(1 + uvarintLen(uint64(len(body))))
	s.graphs[d] = span{off: off + hdr + 16, len: int64(len(enc))}
	s.cachePut(d, g)
	return nil
}

// Graph loads the graph stored under d. Returns false on any failure:
// absent, unreadable, undecodable, or — the content-address check — if
// the decoded graph's recomputed digest does not equal d.
func (s *Store) Graph(d rsg.Digest) (*rsg.Graph, bool) {
	s.mu.Lock()
	if g, ok := s.cache[d]; ok {
		s.mu.Unlock()
		return g, true
	}
	sp, ok := s.graphs[d]
	f := s.f
	s.mu.Unlock()
	if !ok || f == nil {
		return nil, false
	}
	buf := make([]byte, sp.len)
	if _, err := f.ReadAt(buf, sp.off); err != nil {
		return nil, false
	}
	g, err := rsg.DecodeFrozen(buf)
	if err != nil || g.Digest() != d {
		return nil, false
	}
	g = rsg.Intern(g)
	s.mu.Lock()
	s.cachePut(d, g)
	s.mu.Unlock()
	return g, true
}

// cachePut inserts into the decode cache, evicting arbitrarily at the
// cap. Caller holds s.mu.
func (s *Store) cachePut(d rsg.Digest, g *rsg.Graph) {
	if len(s.cache) >= graphCacheCap {
		for k := range s.cache {
			delete(s.cache, k)
			break
		}
	}
	s.cache[d] = g
}

// PutMemo persists one transfer-memo entry: stmt is the statement
// transfer key (options fingerprint + statement identity), in the input
// graph digest, out the output set's member digests. The caller must
// have PutGraph'd every output graph first.
func (s *Store) PutMemo(stmt Key, in rsg.Digest, out []rsg.Digest) error {
	k := memoKey{stmt: stmt, in: in}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return os.ErrClosed
	}
	if _, ok := s.memos[k]; ok {
		return nil
	}
	if s.ro {
		return ErrReadOnly
	}
	body := make([]byte, 0, 40+16*len(out))
	body = append(body, stmt[:]...)
	body = append(body, in[:]...)
	body = binary.AppendUvarint(body, uint64(len(out)))
	for _, d := range out {
		body = append(body, d[:]...)
	}
	if err := s.append(kindMemo, body); err != nil {
		return err
	}
	s.memos[k] = append([]rsg.Digest(nil), out...)
	return nil
}

// Memo looks up a transfer-memo entry.
func (s *Store) Memo(stmt Key, in rsg.Digest) ([]rsg.Digest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.memos[memoKey{stmt: stmt, in: in}]
	return v, ok
}

func decodeMemo(body []byte) (memoKey, []rsg.Digest, bool) {
	if len(body) < 32 {
		return memoKey{}, nil, false
	}
	var k memoKey
	copy(k.stmt[:], body[:16])
	copy(k.in[:], body[16:32])
	body = body[32:]
	n, sz := binary.Uvarint(body)
	if sz <= 0 || uint64(len(body[sz:])) != n*16 {
		return memoKey{}, nil, false
	}
	body = body[sz:]
	out := make([]rsg.Digest, n)
	for i := range out {
		copy(out[i][:], body[i*16:])
	}
	return k, out, true
}

// PutSnapshot persists a whole-run snapshot. The caller must have
// PutGraph'd every member graph referenced by the statement out-sets.
// A later snapshot under the same (program, fingerprint) key shadows
// earlier ones (last-writer-wins on replay, in log order).
func (s *Store) PutSnapshot(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return os.ErrClosed
	}
	if s.ro {
		return ErrReadOnly
	}
	body := encodeSnapshot(snap)
	if err := s.append(kindSnapshot, body); err != nil {
		return err
	}
	s.snaps[snapKey{prog: snap.Prog, fp: snap.Fp}] = snap
	s.byName[nameKey{name: snap.Name, fp: snap.Fp}] = snap
	return nil
}

// Snapshot looks up the snapshot for an exact (program digest,
// fingerprint) pair — the warm-start probe.
func (s *Store) Snapshot(prog Key, fp uint64) (*Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.snaps[snapKey{prog: prog, fp: fp}]
	return v, ok
}

// SnapshotByName looks up the latest snapshot recorded under a program
// name and fingerprint, regardless of program digest — the edit-delta
// probe, for finding the previous version of a changed program.
func (s *Store) SnapshotByName(name string, fp uint64) (*Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.byName[nameKey{name: name, fp: fp}]
	return v, ok
}

// ReadOnly reports whether the store was opened with OpenReadOnly.
func (s *Store) ReadOnly() bool { return s.ro }

// Counts reports index sizes (graphs, memo entries, snapshots) for
// tests and CLI diagnostics.
func (s *Store) Counts() (graphs, memos, snaps int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.graphs), len(s.memos), len(s.snaps)
}

func encodeSnapshot(snap *Snapshot) []byte {
	b := make([]byte, 0, 64+48*len(snap.Stmts))
	b = append(b, snap.Prog[:]...)
	b = binary.AppendUvarint(b, uint64(len(snap.Name)))
	b = append(b, snap.Name...)
	b = binary.LittleEndian.AppendUint64(b, snap.Fp)
	if snap.Converged {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(snap.VisitBudget))
	b = binary.AppendUvarint(b, uint64(snap.NodeBudget))
	b = binary.AppendUvarint(b, uint64(snap.Visits))
	b = binary.AppendUvarint(b, uint64(len(snap.Stmts)))
	for _, st := range snap.Stmts {
		b = binary.AppendUvarint(b, uint64(st.ID))
		b = append(b, st.Digest[:]...)
		if st.HasOut {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, uint64(len(st.Out)))
		for _, d := range st.Out {
			b = append(b, d[:]...)
		}
	}
	return b
}

func decodeSnapshot(body []byte) (*Snapshot, bool) {
	snap := &Snapshot{}
	if len(body) < 16 {
		return nil, false
	}
	copy(snap.Prog[:], body[:16])
	body = body[16:]
	nameLen, sz := binary.Uvarint(body)
	if sz <= 0 || uint64(len(body[sz:])) < nameLen {
		return nil, false
	}
	body = body[sz:]
	snap.Name = string(body[:nameLen])
	body = body[nameLen:]
	if len(body) < 9 {
		return nil, false
	}
	snap.Fp = binary.LittleEndian.Uint64(body[:8])
	snap.Converged = body[8] != 0
	body = body[9:]
	var vals [4]uint64
	for i := range vals {
		v, sz := binary.Uvarint(body)
		if sz <= 0 {
			return nil, false
		}
		vals[i] = v
		body = body[sz:]
	}
	snap.VisitBudget, snap.NodeBudget, snap.Visits = int(vals[0]), int(vals[1]), int(vals[2])
	nStmts := vals[3]
	if nStmts > maxRecordLen/17 {
		return nil, false
	}
	snap.Stmts = make([]SnapStmt, 0, nStmts)
	for i := uint64(0); i < nStmts; i++ {
		var st SnapStmt
		id, sz := binary.Uvarint(body)
		if sz <= 0 {
			return nil, false
		}
		body = body[sz:]
		st.ID = int(id)
		if len(body) < 17 {
			return nil, false
		}
		copy(st.Digest[:], body[:16])
		st.HasOut = body[16] != 0
		body = body[17:]
		n, sz := binary.Uvarint(body)
		if sz <= 0 || uint64(len(body[sz:])) < n*16 {
			return nil, false
		}
		body = body[sz:]
		st.Out = make([]rsg.Digest, n)
		for j := range st.Out {
			copy(st.Out[j][:], body[j*16:])
		}
		body = body[n*16:]
		snap.Stmts = append(snap.Stmts, st)
	}
	return snap, len(body) == 0
}
