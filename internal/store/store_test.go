package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rsg"
)

func testGraph(rng *rand.Rand) *rsg.Graph {
	g := rsg.NewGraph()
	n := 1 + rng.Intn(5)
	ids := make([]rsg.NodeID, 0, n)
	for i := 0; i < n; i++ {
		nd := g.AddNode(rsg.NewNode("list"))
		nd.Singleton = rng.Intn(2) == 0
		ids = append(ids, nd.ID)
	}
	for i := 0; i < rng.Intn(2*n); i++ {
		g.AddLink(ids[rng.Intn(n)], "nxt", ids[rng.Intn(n)])
	}
	g.SetPvar("p", ids[0])
	return g.Freeze()
}

func dig(b byte) (d Key) {
	for i := range d {
		d[i] = b
	}
	return
}

// TestStoreRoundTrip: graphs, memos and snapshots all survive a
// close/reopen cycle with identical content.
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.rsgstore")
	rng := rand.New(rand.NewSource(7))

	s, err := Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	graphs := make([]*rsg.Graph, 8)
	for i := range graphs {
		graphs[i] = testGraph(rng)
		if err := s.PutGraph(graphs[i]); err != nil {
			t.Fatalf("put graph: %v", err)
		}
		// Duplicate put must be a no-op, not an error or a second record.
		if err := s.PutGraph(graphs[i]); err != nil {
			t.Fatalf("dup put graph: %v", err)
		}
	}
	outDigs := []rsg.Digest{graphs[0].Digest(), graphs[1].Digest()}
	if err := s.PutMemo(dig(1), graphs[2].Digest(), outDigs); err != nil {
		t.Fatalf("put memo: %v", err)
	}
	snap := &Snapshot{
		Prog: dig(9), Name: "fig1", Fp: 0xDEADBEEF,
		Converged: true, VisitBudget: 200000, NodeBudget: 40, Visits: 17,
		Stmts: []SnapStmt{
			{ID: 0, Digest: dig(2), HasOut: true, Out: outDigs},
			{ID: 1, Digest: dig(3), HasOut: false},
		},
	}
	if err := s.PutSnapshot(snap); err != nil {
		t.Fatalf("put snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if ng, nm, ns := s2.Counts(); ng != len(graphs) || nm != 1 || ns != 1 {
		t.Fatalf("counts after reopen: %d graphs %d memos %d snaps", ng, nm, ns)
	}
	for i, g := range graphs {
		got, ok := s2.Graph(g.Digest())
		if !ok {
			t.Fatalf("graph %d missing after reopen", i)
		}
		if got.Digest() != g.Digest() {
			t.Fatalf("graph %d digest mismatch", i)
		}
	}
	if v, ok := s2.Memo(dig(1), graphs[2].Digest()); !ok || len(v) != 2 || v[0] != outDigs[0] || v[1] != outDigs[1] {
		t.Fatalf("memo lost: %v %v", v, ok)
	}
	if _, ok := s2.Memo(dig(1), graphs[3].Digest()); ok {
		t.Fatalf("phantom memo hit")
	}
	got, ok := s2.Snapshot(dig(9), 0xDEADBEEF)
	if !ok {
		t.Fatalf("snapshot lost")
	}
	if got.Name != "fig1" || !got.Converged || got.VisitBudget != 200000 ||
		got.NodeBudget != 40 || got.Visits != 17 || len(got.Stmts) != 2 {
		t.Fatalf("snapshot fields mangled: %+v", got)
	}
	if got.Stmts[0].Digest != dig(2) || !got.Stmts[0].HasOut || len(got.Stmts[0].Out) != 2 ||
		got.Stmts[1].HasOut || got.Stmts[1].Digest != dig(3) {
		t.Fatalf("snapshot stmts mangled: %+v", got.Stmts)
	}
	if _, ok := s2.Snapshot(dig(9), 0xBADF00D); ok {
		t.Fatalf("snapshot hit under wrong fingerprint")
	}
	if byName, ok := s2.SnapshotByName("fig1", 0xDEADBEEF); !ok || byName.Prog != dig(9) {
		t.Fatalf("by-name lookup broken")
	}
}

// TestStoreSnapshotShadowing: the latest snapshot under a key wins,
// including across reopen (log order).
func TestStoreSnapshotShadowing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.rsgstore")
	s, _ := Open(path)
	s.PutSnapshot(&Snapshot{Prog: dig(1), Name: "k", Fp: 5, Visits: 1})
	s.PutSnapshot(&Snapshot{Prog: dig(1), Name: "k", Fp: 5, Visits: 2})
	s.PutSnapshot(&Snapshot{Prog: dig(2), Name: "k", Fp: 5, Visits: 3})
	s.Close()

	s2, _ := Open(path)
	defer s2.Close()
	if got, ok := s2.Snapshot(dig(1), 5); !ok || got.Visits != 2 {
		t.Fatalf("shadowing broken: %+v", got)
	}
	// By name, the newest record for the name wins regardless of digest.
	if got, ok := s2.SnapshotByName("k", 5); !ok || got.Visits != 3 {
		t.Fatalf("by-name latest broken: %+v", got)
	}
}

// TestStoreTornTailRecovery: appending garbage, a truncated record, or
// flipping bits in the tail must cost at most the tail — Open succeeds,
// earlier records stay readable, and no read ever returns a graph whose
// digest does not match its key.
func TestStoreTornTailRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := filepath.Join(t.TempDir(), "cache.rsgstore")
	s, _ := Open(base)
	gKeep := testGraph(rng)
	s.PutGraph(gKeep)
	s.Close()
	pristine, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	// A second graph whose record we will mutilate.
	s, _ = Open(base)
	var gTail *rsg.Graph
	for gTail == nil || gTail.Digest() == gKeep.Digest() {
		gTail = testGraph(rng)
	}
	s.PutGraph(gTail)
	s.Close()
	full, _ := os.ReadFile(base)

	mutations := map[string][]byte{
		"trailing_garbage": append(append([]byte(nil), full...), 0xFF, 0x13, 0x37),
		"torn_record":      full[:len(pristine)+(len(full)-len(pristine))/2],
		"flipped_crc":      flipByte(full, len(full)-1),
		"flipped_body":     flipByte(full, len(pristine)+24),
	}
	for name, data := range mutations {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "mut.rsgstore")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(path)
			if err != nil {
				t.Fatalf("open after %s: %v", name, err)
			}
			defer s.Close()
			got, ok := s.Graph(gKeep.Digest())
			if !ok || got.Digest() != gKeep.Digest() {
				t.Fatalf("pristine prefix lost after %s", name)
			}
			// The damaged tail record must be either gone or still
			// correct — never wrong.
			if got, ok := s.Graph(gTail.Digest()); ok && got.Digest() != gTail.Digest() {
				t.Fatalf("corrupt record served wrong graph")
			}
			// The store must be appendable again after recovery.
			gNew := testGraph(rng)
			if err := s.PutGraph(gNew); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if _, ok := s.Graph(gNew.Digest()); !ok {
				t.Fatalf("append after recovery unreadable")
			}
		})
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

// TestStoreRejectsForeignFile: a non-empty file without the magic is
// refused, not clobbered.
func TestStoreRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("#!/bin/sh\necho hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatalf("opened a foreign file as a store")
	}
	data, _ := os.ReadFile(path)
	if string(data) != "#!/bin/sh\necho hello\n" {
		t.Fatalf("foreign file was modified")
	}
}
