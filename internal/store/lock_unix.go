//go:build unix

package store

import (
	"errors"
	"syscall"
)

// lockFile takes the store's advisory inter-process lock on an open
// file: flock(2) exclusive for the single writer, shared for read-only
// replicas. Non-blocking — a conflict reports ErrLocked immediately so
// the caller can refuse or degrade rather than silently interleaving
// appends with another process. flock locks belong to the open file
// description, so two Opens of one path conflict even inside a single
// process, which is what the regression test exercises.
func lockFile(fd uintptr, exclusive bool) error {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	err := syscall.Flock(int(fd), how|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return ErrLocked
	}
	return err
}
