//go:build !unix

package store

// Platforms without flock get no inter-process lock; single-process
// exclusion still holds through Store.mu, and the CRC/truncate recovery
// bounds the damage of an unlikely cross-process interleave to the
// torn tail.
func lockFile(fd uintptr, exclusive bool) error { return nil }
